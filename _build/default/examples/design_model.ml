(* Design-by-model, the way §6 describes it: before building anything,
   score design alternatives with the analytic disk model and discard
   the poor ones. This example re-runs three of the design questions the
   paper's author faced.

     dune exec examples/design_model.exe *)

open Cedar_disk
open Cedar_model
open Script

let g = Geometry.trident_t300
let c = Ops.default
let pf = Printf.printf

let show title alts =
  pf "\n%s\n" title;
  let best = List.fold_left (fun acc (_, t) -> min acc t) infinity alts in
  List.iter
    (fun (name, ms) ->
      pf "  %-44s %8.1f ms%s\n" name ms (if ms = best then "   <- best" else ""))
    alts

let () =
  pf "Scoring design alternatives with the section-6 analytic model\n";
  pf "(disk: %s)\n" (Format.asprintf "%a" Geometry.pp g);

  (* 1. Where should the log live? Every group commit seeks there from
     wherever the last data operation left the arm. *)
  let force_at cyls =
    time_ms g (Ops.fsd_log_force { c with Ops.file_center_cyls = cyls })
  in
  show "1. Log placement (cost of one group-commit force)"
    [
      ("central cylinders (seek ~400 cyl worst-case)", force_at 400);
      ("2/3 of the way out (seek ~550)", force_at 550);
      ("edge of the volume (seek ~800)", force_at 800);
    ];

  (* 2. Label-based create vs logged create: the heart of Table 2. *)
  show "2. Creating a one-page file"
    [
      ("CFS: labels + header + name table (7 I/Os)", time_ms g (Ops.cfs_small_create c));
      ( "FSD: one leader+data write, metadata logged",
        time_ms g (Ops.fsd_small_create c) );
      ( "FSD if every create forced the log itself",
        time_ms g (Ops.fsd_small_create c) +. time_ms g (Ops.fsd_log_force c) );
    ];

  (* 3. Double-writing the name table: §5.1 says the log's buffering
     makes replication nearly free. The model agrees: the second copy
     rides on a home write that happens once per third, not per update. *)
  let home_write copies =
    time_ms g
      (List.concat
         (List.init copies (fun _ -> [ Short_seek 30; Latency; Transfer c.Ops.fnt_page_sectors ])))
  in
  let updates_per_home_write = 20.0 in
  show
    "3. Name-table replication (cost per metadata update, home writes amortized\n\
    \   over ~20 logged updates per page per third)"
    [
      ("single copy", home_write 1 /. updates_per_home_write);
      ("two copies with independent failures", home_write 2 /. updates_per_home_write);
      ( "two copies written synchronously per update (no log)",
        home_write 2 );
    ];
  pf
    "\nConclusion (as in the paper): put the log and name table centrally, log\n\
     metadata instead of labelling sectors, and buy replication with the\n\
     traffic the log already saved.\n"
