(* A MakeDo-style build (the paper's metadata-intensive client) run on
   all three file systems through the common interface, comparing disk
   I/Os and elapsed virtual time.

     dune exec examples/bulk_build.exe *)

open Cedar_util
open Cedar_disk
open Cedar_workload

let spec = { Makedo.default with Makedo.modules = 30 }

let run_on label ops =
  Makedo.prepare ops spec;
  let s = Makedo.build ops spec in
  Printf.printf "%-8s %6d I/Os  %8.1f ms  (%d reads, %d writes)\n" label
    s.Measure.ios (Measure.time_ms s) s.Measure.reads s.Measure.writes;
  s

let () =
  Printf.printf "MakeDo build of %d modules (reads, temps, derived objects, DF file)\n\n"
    spec.Makedo.modules;
  let fsd =
    let clock = Simclock.create () in
    let device = Device.create ~clock Geometry.trident_t300 in
    Cedar_fsd.Fsd.format device Cedar_fsd.Params.default;
    let fs, _ = Cedar_fsd.Fsd.boot device in
    run_on "FSD" (Cedar_fsd.Fsd.ops fs)
  in
  let cfs =
    let clock = Simclock.create () in
    let device = Device.create ~clock Geometry.trident_t300 in
    Cedar_cfs.Cfs.format device Cedar_cfs.Cfs_layout.default_params;
    match Cedar_cfs.Cfs.boot device with
    | `Ok fs -> run_on "CFS" (Cedar_cfs.Cfs.ops fs)
    | `Needs_scavenge -> assert false
  in
  let ufs =
    let clock = Simclock.create () in
    let device = Device.create ~clock Geometry.trident_t300 in
    Cedar_unixfs.Ufs.mkfs device Cedar_unixfs.Ufs_params.default;
    match Cedar_unixfs.Ufs.mount device with
    | `Ok fs -> run_on "4.3BSD" (Cedar_unixfs.Ufs.ops fs)
    | `Needs_fsck -> assert false
  in
  Printf.printf
    "\nCFS does %.1fx the I/Os of FSD; 4.3BSD does %.1fx (paper's MakeDo row: 1.52x for CFS/FSD)\n"
    (float_of_int cfs.Measure.ios /. float_of_int fsd.Measure.ios)
    (float_of_int ufs.Measure.ios /. float_of_int fsd.Measure.ios);
  Printf.printf
    "Time: FSD finishes the build in %.0f%% of CFS's time.\n"
    (100.0 *. Measure.time_ms fsd /. Measure.time_ms cfs)
