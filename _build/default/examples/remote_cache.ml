(* Cached remote files and the group-commit motivation (§5.4).

   Most files on a Cedar workstation are immutable cached copies of
   remote files. Every open updates the copy's last-used time — a pure
   metadata write. Group commit absorbs a whole burst of such updates
   into a single half-second log write, and the name-table page itself
   is almost never written home (the hot-spot effect).

     dune exec examples/remote_cache.exe *)

open Cedar_util
open Cedar_disk
open Cedar_fsd
open Cedar_workload

let () =
  let clock = Simclock.create () in
  let device = Device.create ~clock Geometry.trident_t300 in
  Fsd.format device Params.default;
  let fs, _ = Fsd.boot device in

  (* A file server publishes some sources; the workstation caches them. *)
  let server = Remote.create ~name:"ivy" ~seed:7 in
  let rng = Rng.create 42 in
  for i = 0 to 19 do
    let path = Printf.sprintf "remote/Pkg%02d.mesa" i in
    ignore (Remote.publish_random server ~path rng)
  done;
  List.iter
    (fun path ->
      match Remote.fetch server ~path with
      | Some data ->
        ignore (Fsd.import_cached fs ~name:path ~server:(Remote.name server) data)
      | None -> assert false)
    (Remote.paths server);
  Fsd.force fs;
  Printf.printf "cached %d remote files locally\n" (List.length (Remote.paths server));

  (* A burst of opens: each updates last-used-time in the name table.
     Count the disk traffic it generates. *)
  let before = Iostats.copy (Device.stats device) in
  let records0 = (Fsd.log_stats fs).Log.records in
  for round = 0 to 4 do
    List.iter
      (fun path ->
        Fsd.touch_cached fs ~name:path;
        (* reading the cached copy is ordinary data I/O; skip it here to
           isolate the metadata traffic *)
        ignore round)
      (Remote.paths server);
    (* the workstation idles past the commit interval *)
    Fsd.tick fs ~us:600_000
  done;
  let d = Iostats.diff ~after:(Device.stats device) ~before in
  let records = (Fsd.log_stats fs).Log.records - records0 in
  Printf.printf
    "100 last-used-time updates -> %d disk writes (%d log records of ~%.0f sectors)\n"
    d.Iostats.writes records
    (Stats.mean (Fsd.log_stats fs).Log.record_sizes);
  Printf.printf "name-table pages written home so far: %d (hot pages stay in the log)\n"
    (Fsd.fnt_home_writes fs);

  (* The update is recoverable like any other committed metadata. *)
  let sample = List.hd (Remote.paths server) in
  let lu_before = Option.get (Fsd.last_used fs ~name:sample) in
  let fs, _ = Fsd.boot device in
  let lu_after = Option.get (Fsd.last_used fs ~name:sample) in
  Printf.printf "last-used time survives a crash: %b (%d us)\n"
    (lu_before = lu_after) lu_after;

  (* "Loss of up to a half a second is not significant": an uncommitted
     touch may vanish with a crash — that is the deal group commit makes. *)
  Fsd.touch_cached fs ~name:sample;
  let uncommitted = Option.get (Fsd.last_used fs ~name:sample) in
  let fs, _ = Fsd.boot device in
  let recovered = Option.get (Fsd.last_used fs ~name:sample) in
  Printf.printf
    "uncommitted touch (%d us) rolled back to the committed value (%d us): %b\n"
    uncommitted recovered
    (recovered = lu_after);

  (* The same burst on CFS, where the last-used time lives in the file
     header: every touch rewrites the header pair on disk. *)
  print_endline "\n--- the old system, for contrast ---";
  let clock2 = Simclock.create () in
  let device2 = Device.create ~clock:clock2 Geometry.trident_t300 in
  Cedar_cfs.Cfs.format device2 Cedar_cfs.Cfs_layout.default_params;
  let cfs =
    match Cedar_cfs.Cfs.boot device2 with `Ok c -> c | `Needs_scavenge -> assert false
  in
  List.iter
    (fun path ->
      match Remote.fetch server ~path with
      | Some data ->
        ignore (Cedar_cfs.Cfs.import_cached cfs ~name:path ~server:"ivy" data)
      | None -> assert false)
    (Remote.paths server);
  let before = Iostats.copy (Device.stats device2) in
  for _ = 0 to 4 do
    List.iter (fun path -> Cedar_cfs.Cfs.touch_cached cfs ~name:path) (Remote.paths server)
  done;
  let d2 = Iostats.diff ~after:(Device.stats device2) ~before in
  Printf.printf "CFS: the same 100 updates -> %d disk writes (one header rewrite each)\n"
    d2.Iostats.writes
