(* Crash recovery, the paper's headline robustness story.

   A workload runs; the machine dies mid-flight — including right in the
   middle of a group-commit log write (a torn multi-sector write). FSD
   replays its redo log in a couple of simulated seconds and loses only
   the uncommitted half-second. The same crash on CFS corrupts the name
   table and costs a full scavenge.

     dune exec examples/crash_recovery.exe *)

open Cedar_util
open Cedar_disk
open Cedar_fsd

let payload i n = Bytes.init n (fun j -> Char.chr ((i + j) mod 251))

let () =
  let clock = Simclock.create () in
  let device = Device.create ~clock Geometry.trident_t300 in
  Fsd.format device Params.default;
  let fs, _ = Fsd.boot device in

  (* A burst of work, committed. *)
  for i = 0 to 199 do
    ignore (Fsd.create fs ~name:(Printf.sprintf "work/f%03d" i) (payload i 2_000))
  done;
  Fsd.force fs;
  Printf.printf "committed 200 files; free sectors: %d\n" (Fsd.free_sectors fs);

  (* More work that will never commit... *)
  for i = 0 to 9 do
    ignore (Fsd.create fs ~name:(Printf.sprintf "doomed/f%02d" i) (payload i 2_000))
  done;

  (* ...because the machine dies DURING the group-commit write itself:
     the log record is torn after 6 sectors and two more are damaged. *)
  Device.plan_write_crash device ~after_sectors:6 ~damage_tail:2;
  (match Fsd.force fs with
  | () -> assert false
  | exception Device.Crash_during_write { sector } ->
    Printf.printf "CRASH during the log force at sector %d\n" sector);

  (* Reboot: recovery replays the committed records and rebuilds the
     volatile allocation map from the name table. *)
  let fs, report = Fsd.boot device in
  Printf.printf
    "FSD recovered in %.1f s (log replay %.2f s, %d records, %d sectors read from replicas; VAM rebuilt in %.1f s)\n"
    (Simclock.s_of_us report.Fsd.total_us)
    (Simclock.s_of_us report.Fsd.log_replay_us)
    report.Fsd.replayed_records report.Fsd.corrected_sectors
    (Simclock.s_of_us report.Fsd.vam_us);

  let committed = List.length (Fsd.list fs ~prefix:"work/") in
  let doomed = List.length (Fsd.list fs ~prefix:"doomed/") in
  Printf.printf "work/ files after recovery: %d (expected 200)\n" committed;
  Printf.printf "doomed/ files after recovery: %d (uncommitted, expected 0)\n" doomed;
  (match Fsd.check fs with
  | Ok () -> print_endline "structural check: ok"
  | Error m -> Printf.printf "structural check FAILED: %s\n" m);
  (* every committed file is readable, byte for byte *)
  let ok = ref true in
  for i = 0 to 199 do
    let name = Printf.sprintf "work/f%03d" i in
    if not (Bytes.equal (payload i 2_000) (Fsd.read_all fs ~name)) then ok := false
  done;
  Printf.printf "all committed contents intact: %b\n" !ok;

  (* The same story on CFS: a crash means the scavenger. *)
  print_endline "\n--- the old system, for contrast ---";
  let clock2 = Simclock.create () in
  let device2 = Device.create ~clock:clock2 Geometry.trident_t300 in
  Cedar_cfs.Cfs.format device2 Cedar_cfs.Cfs_layout.default_params;
  let cfs =
    match Cedar_cfs.Cfs.boot device2 with `Ok fs -> fs | `Needs_scavenge -> assert false
  in
  for i = 0 to 199 do
    ignore
      (Cedar_cfs.Cfs.create cfs ~name:(Printf.sprintf "work/f%03d" i) (payload i 2_000))
  done;
  (* crash without shutdown *)
  (match Cedar_cfs.Cfs.boot device2 with
  | `Needs_scavenge -> print_endline "CFS crash: the name table cannot be trusted"
  | `Ok _ -> assert false);
  let _cfs, report = Cedar_cfs.Cfs.scavenge device2 in
  Printf.printf "CFS scavenge took %.1f s for %d files (every label on the disk read)\n"
    (Simclock.s_of_us report.Cedar_cfs.Cfs.duration_us)
    report.Cedar_cfs.Cfs.files_recovered
