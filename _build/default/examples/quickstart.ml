(* Quickstart: format a volume, create files, list, read, survive a
   reboot.

     dune exec examples/quickstart.exe *)

open Cedar_util
open Cedar_disk
open Cedar_fsbase
open Cedar_fsd

let () =
  (* A Dorado-class workstation disk, simulated. Time is virtual: the
     clock only advances when the disk arm moves or CPU work is charged. *)
  let clock = Simclock.create () in
  let device = Device.create ~clock Geometry.trident_t300 in

  (* Lay down an empty FSD volume and boot it. *)
  Fsd.format device Params.default;
  let fs, report = Fsd.boot device in
  Printf.printf "booted in %.1f ms (boot #%d)\n"
    (Simclock.ms_of_us report.Fsd.total_us)
    report.Fsd.boot_count;

  (* Create a few files. Each create costs one synchronous disk write
     (leader + data combined); the name-table update is logged at the
     next group commit. *)
  let greeting = Bytes.of_string "Hello from the Cedar file system!" in
  let info = Fsd.create fs ~name:"doc/hello.txt" greeting in
  Printf.printf "created %s (version %d, %d bytes)\n" info.Fs_ops.name
    info.Fs_ops.version info.Fs_ops.byte_size;

  ignore (Fsd.create fs ~name:"doc/notes.txt" (Bytes.make 5000 'n'));
  ignore (Fsd.create fs ~name:"src/main.mesa" (Bytes.make 12_000 'm'));

  (* A second create of the same name makes a new version. *)
  let v2 = Fsd.create fs ~name:"doc/hello.txt" (Bytes.of_string "Hello again!") in
  Printf.printf "new version: %d; versions kept: [%s]\n" v2.Fs_ops.version
    (String.concat "; " (List.map string_of_int (Fsd.versions fs ~name:"doc/hello.txt")));

  (* Listing needs no disk I/O: the name table holds all properties. *)
  print_endline "directory doc/:";
  List.iter
    (fun i ->
      Printf.printf "  %s!%d  %d bytes\n" i.Fs_ops.name i.Fs_ops.version
        i.Fs_ops.byte_size)
    (Fsd.list fs ~prefix:"doc/");

  (* Read the newest version back. *)
  Printf.printf "read: %S\n" (Bytes.to_string (Fsd.read_all fs ~name:"doc/hello.txt"));

  (* A clean shutdown saves the free-page map; the next boot loads it
     instead of reconstructing. *)
  Fsd.shutdown fs;
  let fs, report = Fsd.boot device in
  Printf.printf "rebooted: VAM %s, %d log records replayed\n"
    (match report.Fsd.vam_source with
    | Fsd.Vam_loaded -> "loaded"
    | Fsd.Vam_replayed -> "replayed from the log"
    | Fsd.Vam_reconstructed -> "reconstructed")
    report.Fsd.replayed_records;
  Printf.printf "still there: %S\n"
    (Bytes.to_string (Fsd.read_all fs ~name:"doc/hello.txt"));
  match Fsd.check fs with
  | Ok () -> print_endline "structural check: ok"
  | Error m -> Printf.printf "structural check FAILED: %s\n" m
