examples/remote_cache.ml: Cedar_cfs Cedar_disk Cedar_fsd Cedar_util Cedar_workload Device Fsd Geometry Iostats List Log Option Params Printf Remote Rng Simclock Stats
