examples/quickstart.ml: Bytes Cedar_disk Cedar_fsbase Cedar_fsd Cedar_util Device Fs_ops Fsd Geometry List Params Printf Simclock String
