examples/design_model.ml: Cedar_disk Cedar_model Format Geometry List Ops Printf Script
