examples/bulk_build.ml: Cedar_cfs Cedar_disk Cedar_fsd Cedar_unixfs Cedar_util Cedar_workload Device Geometry Makedo Measure Printf Simclock
