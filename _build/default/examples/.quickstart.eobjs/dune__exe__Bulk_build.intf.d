examples/bulk_build.mli:
