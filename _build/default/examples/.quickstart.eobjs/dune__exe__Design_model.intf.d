examples/design_model.mli:
