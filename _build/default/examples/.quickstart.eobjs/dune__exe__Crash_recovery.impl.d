examples/crash_recovery.ml: Bytes Cedar_cfs Cedar_disk Cedar_fsd Cedar_util Char Device Fsd Geometry List Params Printf Simclock
