examples/remote_cache.mli:
