examples/quickstart.mli:
