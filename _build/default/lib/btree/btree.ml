open Cedar_util

module type STORE = sig
  type t

  val page_bytes : t -> int
  val read : t -> int -> bytes
  val write : t -> int -> bytes -> unit
  val alloc : t -> int
  val free : t -> int -> unit
  val get_root : t -> int option
  val set_root : t -> int option -> unit
end

type stats = { depth : int; pages : int; entries : int; used_bytes : int }

exception Corrupt of string

module Make (S : STORE) = struct
  type node =
    | Leaf of (string * string) array
    | Internal of { keys : string array; children : int array }

  type t = { store : S.t; page_bytes : int }

  let attach store = { store; page_bytes = S.page_bytes store }

  (* ---------------------------------------------------------------- *)
  (* Node codec                                                        *)

  let leaf_kind = 1
  let internal_kind = 2
  let node_overhead = 3 (* kind byte + u16 count *)
  let leaf_entry_bytes k v = 4 + String.length k + String.length v
  let internal_key_bytes k = 2 + String.length k

  let encoded_bytes = function
    | Leaf entries ->
      Array.fold_left
        (fun acc (k, v) -> acc + leaf_entry_bytes k v)
        node_overhead entries
    | Internal { keys; children } ->
      Array.fold_left (fun acc k -> acc + internal_key_bytes k) node_overhead keys
      + (4 * Array.length children)

  let encode t node =
    let w = Bytebuf.Writer.create ~initial:t.page_bytes () in
    (match node with
    | Leaf entries ->
      Bytebuf.Writer.u8 w leaf_kind;
      Bytebuf.Writer.u16 w (Array.length entries);
      Array.iter
        (fun (k, v) ->
          Bytebuf.Writer.string w k;
          Bytebuf.Writer.string w v)
        entries
    | Internal { keys; children } ->
      assert (Array.length children = Array.length keys + 1);
      Bytebuf.Writer.u8 w internal_kind;
      Bytebuf.Writer.u16 w (Array.length keys);
      Array.iter (Bytebuf.Writer.string w) keys;
      Array.iter (Bytebuf.Writer.u32 w) children);
    Bytebuf.Writer.to_sector w ~size:t.page_bytes

  let decode b =
    let r = Bytebuf.Reader.of_bytes b in
    match Bytebuf.Reader.u8 r with
    | k when k = leaf_kind ->
      let n = Bytebuf.Reader.u16 r in
      Leaf
        (Array.init n (fun _ ->
             let k = Bytebuf.Reader.string r in
             let v = Bytebuf.Reader.string r in
             (k, v)))
    | k when k = internal_kind ->
      let n = Bytebuf.Reader.u16 r in
      let keys = Array.init n (fun _ -> Bytebuf.Reader.string r) in
      let children = Array.init (n + 1) (fun _ -> Bytebuf.Reader.u32 r) in
      Internal { keys; children }
    | k -> raise (Corrupt (Printf.sprintf "unknown node kind %d" k))

  let read_node t id =
    match decode (S.read t.store id) with
    | node -> node
    | exception Bytebuf.Decode_error msg ->
      raise (Corrupt (Printf.sprintf "page %d: %s" id msg))

  let write_node t id node = S.write t.store id (encode t node)

  (* ---------------------------------------------------------------- *)
  (* Search helpers                                                    *)

  (* Number of separator keys <= [key]; the index of the child subtree in
     which [key] itself belongs. *)
  let child_index keys key =
    let rec go lo hi =
      (* invariant: keys.(lo-1) <= key < keys.(hi) (with sentinels) *)
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if String.compare keys.(mid) key <= 0 then go (mid + 1) hi
        else go lo mid
    in
    go 0 (Array.length keys)

  (* Position of [key] in a sorted entry array: [Found i] or [Insert_at i]. *)
  let leaf_position entries key =
    let rec go lo hi =
      if lo >= hi then `Insert_at lo
      else
        let mid = (lo + hi) / 2 in
        let c = String.compare (fst entries.(mid)) key in
        if c = 0 then `Found mid else if c < 0 then go (mid + 1) hi else go lo mid
    in
    go 0 (Array.length entries)

  let array_insert a i x =
    let n = Array.length a in
    Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

  let array_remove a i =
    let n = Array.length a in
    Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

  (* ---------------------------------------------------------------- *)
  (* Insert                                                            *)

  let max_entry_bytes t = (t.page_bytes - node_overhead) / 4

  (* Split a leaf entry array at the byte midpoint. *)
  let split_leaf entries =
    let total = Array.fold_left (fun acc (k, v) -> acc + leaf_entry_bytes k v) 0 entries in
    let n = Array.length entries in
    let rec cut i acc =
      if i >= n - 1 then n - 1
      else
        let acc = acc + leaf_entry_bytes (fst entries.(i)) (snd entries.(i)) in
        if acc * 2 >= total then i + 1 else cut (i + 1) acc
    in
    let at = max 1 (cut 0 0) in
    (Array.sub entries 0 at, Array.sub entries at (n - at))

  let rec insert_rec t id key value =
    match read_node t id with
    | Leaf entries ->
      let entries =
        match leaf_position entries key with
        | `Found i ->
          let a = Array.copy entries in
          a.(i) <- (key, value);
          a
        | `Insert_at i -> array_insert entries i (key, value)
      in
      let node = Leaf entries in
      if encoded_bytes node <= t.page_bytes then begin
        write_node t id node;
        `Ok
      end
      else begin
        let left, right = split_leaf entries in
        let rid = S.alloc t.store in
        write_node t id (Leaf left);
        write_node t rid (Leaf right);
        `Split (fst right.(0), rid)
      end
    | Internal { keys; children } -> (
      let i = child_index keys key in
      match insert_rec t children.(i) key value with
      | `Ok -> `Ok
      | `Split (sep, rid) ->
        let keys = array_insert keys i sep in
        let children = array_insert children (i + 1) rid in
        let node = Internal { keys; children } in
        if encoded_bytes node <= t.page_bytes then begin
          write_node t id node;
          `Ok
        end
        else begin
          (* Promote the middle key; it is kept in neither half. *)
          let mid = Array.length keys / 2 in
          let sep_up = keys.(mid) in
          let left =
            Internal
              { keys = Array.sub keys 0 mid; children = Array.sub children 0 (mid + 1) }
          in
          let nright = Array.length keys - mid - 1 in
          let right =
            Internal
              {
                keys = Array.sub keys (mid + 1) nright;
                children = Array.sub children (mid + 1) (nright + 1);
              }
          in
          let rid2 = S.alloc t.store in
          write_node t id left;
          write_node t rid2 right;
          `Split (sep_up, rid2)
        end)

  let insert t ~key ~value =
    if leaf_entry_bytes key value > max_entry_bytes t then
      invalid_arg
        (Printf.sprintf "Btree.insert: entry of %d bytes exceeds max %d"
           (leaf_entry_bytes key value) (max_entry_bytes t));
    match S.get_root t.store with
    | None ->
      let id = S.alloc t.store in
      write_node t id (Leaf [| (key, value) |]);
      S.set_root t.store (Some id)
    | Some root -> (
      match insert_rec t root key value with
      | `Ok -> ()
      | `Split (sep, rid) ->
        let nid = S.alloc t.store in
        write_node t nid (Internal { keys = [| sep |]; children = [| root; rid |] });
        S.set_root t.store (Some nid))

  (* ---------------------------------------------------------------- *)
  (* Find                                                              *)

  let rec find_rec t id key =
    match read_node t id with
    | Leaf entries -> (
      match leaf_position entries key with
      | `Found i -> Some (snd entries.(i))
      | `Insert_at _ -> None)
    | Internal { keys; children } -> find_rec t children.(child_index keys key) key

  let find t key =
    match S.get_root t.store with None -> None | Some root -> find_rec t root key

  (* ---------------------------------------------------------------- *)
  (* Delete                                                            *)

  let min_fill t = t.page_bytes / 4

  let underfull t node = encoded_bytes node < min_fill t

  (* Rebalance or merge children [i] and [i+1] of the internal node in
     page [id]. Returns the updated parent node. *)
  let fix_pair t ~keys ~children i =
    let li = children.(i) and ri = children.(i + 1) in
    match (read_node t li, read_node t ri) with
    | Leaf le, Leaf re ->
      let all = Array.append le re in
      let merged = Leaf all in
      if encoded_bytes merged <= t.page_bytes then begin
        write_node t li merged;
        S.free t.store ri;
        Internal { keys = array_remove keys i; children = array_remove children (i + 1) }
      end
      else begin
        let l, r = split_leaf all in
        write_node t li (Leaf l);
        write_node t ri (Leaf r);
        let keys = Array.copy keys in
        keys.(i) <- fst r.(0);
        Internal { keys; children }
      end
    | Internal l, Internal r ->
      let all_keys = Array.concat [ l.keys; [| keys.(i) |]; r.keys ] in
      let all_children = Array.append l.children r.children in
      let merged = Internal { keys = all_keys; children = all_children } in
      if encoded_bytes merged <= t.page_bytes then begin
        write_node t li merged;
        S.free t.store ri;
        Internal { keys = array_remove keys i; children = array_remove children (i + 1) }
      end
      else begin
        let mid = Array.length all_keys / 2 in
        let sep = all_keys.(mid) in
        write_node t li
          (Internal
             { keys = Array.sub all_keys 0 mid; children = Array.sub all_children 0 (mid + 1) });
        let nr = Array.length all_keys - mid - 1 in
        write_node t ri
          (Internal
             {
               keys = Array.sub all_keys (mid + 1) nr;
               children = Array.sub all_children (mid + 1) (nr + 1);
             });
        let keys = Array.copy keys in
        keys.(i) <- sep;
        Internal { keys; children }
      end
    | Leaf _, Internal _ | Internal _, Leaf _ ->
      raise (Corrupt "sibling nodes of different kinds")

  let rec delete_rec t id key =
    match read_node t id with
    | Leaf entries -> (
      match leaf_position entries key with
      | `Insert_at _ -> false
      | `Found i ->
        write_node t id (Leaf (array_remove entries i));
        true)
    | Internal { keys; children } ->
      let i = child_index keys key in
      let found = delete_rec t children.(i) key in
      if found && underfull t (read_node t children.(i)) && Array.length children > 1
      then begin
        let pair = if i = Array.length children - 1 then i - 1 else i in
        let node' = fix_pair t ~keys ~children pair in
        write_node t id node'
      end;
      found

  let delete t key =
    match S.get_root t.store with
    | None -> false
    | Some root ->
      let found = delete_rec t root key in
      (if found then
         match read_node t root with
         | Leaf [||] ->
           S.free t.store root;
           S.set_root t.store None
         | Internal { keys = [||]; children = [| only |] } ->
           S.free t.store root;
           S.set_root t.store (Some only)
         | Leaf _ | Internal _ -> ());
      found

  (* ---------------------------------------------------------------- *)
  (* Iteration                                                         *)

  let in_lo lo k = match lo with None -> true | Some l -> String.compare k l >= 0
  let in_hi hi k = match hi with None -> true | Some h -> String.compare k h < 0

  let rec iter_rec t ?lo ?hi id f =
    match read_node t id with
    | Leaf entries ->
      Array.iter (fun (k, v) -> if in_lo lo k && in_hi hi k then f k v) entries
    | Internal { keys; children } ->
      let n = Array.length keys in
      for j = 0 to n do
        (* Subtree j spans [keys.(j-1), keys.(j)). *)
        let subtree_min_below_hi =
          j = 0 || match hi with None -> true | Some h -> String.compare keys.(j - 1) h < 0
        in
        let subtree_max_above_lo =
          j = n || match lo with None -> true | Some l -> String.compare keys.(j) l > 0
        in
        if subtree_min_below_hi && subtree_max_above_lo then
          iter_rec t ?lo ?hi children.(j) f
      done

  let iter_range ?lo ?hi t f =
    match S.get_root t.store with
    | None -> ()
    | Some root -> iter_rec t ?lo ?hi root f

  let fold_range ?lo ?hi t ~init ~f =
    let acc = ref init in
    iter_range ?lo ?hi t (fun k v -> acc := f !acc k v);
    !acc

  let iter t f = iter_range t f

  let min_key t =
    let rec go id =
      match read_node t id with
      | Leaf [||] -> None
      | Leaf entries -> Some (fst entries.(0))
      | Internal { children; _ } -> go children.(0)
    in
    match S.get_root t.store with None -> None | Some r -> go r

  let max_key t =
    let rec go id =
      match read_node t id with
      | Leaf [||] -> None
      | Leaf entries -> Some (fst entries.(Array.length entries - 1))
      | Internal { children; _ } -> go children.(Array.length children - 1)
    in
    match S.get_root t.store with None -> None | Some r -> go r

  let rec max_binding t id =
    match read_node t id with
    | Leaf [||] -> None
    | Leaf entries -> Some entries.(Array.length entries - 1)
    | Internal { children; _ } -> max_binding t children.(Array.length children - 1)

  let find_last_below t key =
    let rec go id =
      match read_node t id with
      | Leaf entries ->
        let best = ref None in
        Array.iter
          (fun (k, v) -> if String.compare k key < 0 then best := Some (k, v))
          entries;
        !best
      | Internal { keys; children } ->
        let i = child_index keys key in
        let rec try_from j =
          if j < 0 then None
          else
            match if j = i then go children.(j) else max_binding t children.(j) with
            | Some kv -> Some kv
            | None -> try_from (j - 1)
        in
        try_from i
    in
    match S.get_root t.store with None -> None | Some r -> go r

  let is_empty t =
    match S.get_root t.store with
    | None -> true
    | Some r -> ( match read_node t r with Leaf [||] -> true | _ -> false)

  (* ---------------------------------------------------------------- *)
  (* Stats and validation                                              *)

  let stats t =
    let pages = ref 0 and entries = ref 0 and used = ref 0 and depth = ref 0 in
    let rec go d id =
      incr pages;
      if d > !depth then depth := d;
      match read_node t id with
      | Leaf e ->
        entries := !entries + Array.length e;
        used := !used + encoded_bytes (Leaf e)
      | Internal { keys; children } ->
        used := !used + encoded_bytes (Internal { keys; children });
        Array.iter (go (d + 1)) children
    in
    (match S.get_root t.store with None -> () | Some r -> go 1 r);
    { depth = !depth; pages = !pages; entries = !entries; used_bytes = !used }

  let check t =
    let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
    let exception Bad of string in
    let bad fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt in
    let leaf_depths = ref [] in
    let check_sorted what keys =
      for i = 1 to Array.length keys - 1 do
        if String.compare keys.(i - 1) keys.(i) >= 0 then
          bad "%s keys not strictly sorted at %d" what i
      done
    in
    let rec go d lo hi id =
      let node = read_node t id in
      if encoded_bytes node > t.page_bytes then
        bad "page %d oversize: %d > %d" id (encoded_bytes node) t.page_bytes;
      match node with
      | Leaf entries ->
        check_sorted "leaf" (Array.map fst entries);
        Array.iter
          (fun (k, _) ->
            if not (in_lo lo k) then bad "leaf key %S below bound" k;
            if not (in_hi hi k) then bad "leaf key %S above bound" k)
          entries;
        leaf_depths := d :: !leaf_depths
      | Internal { keys; children } ->
        if Array.length children <> Array.length keys + 1 then
          bad "page %d child/key count mismatch" id;
        if Array.length keys = 0 then bad "internal page %d with no keys" id;
        check_sorted "internal" keys;
        Array.iter
          (fun k ->
            if not (in_lo lo k) then bad "separator %S below bound" k;
            if not (in_hi hi k) then bad "separator %S above bound" k)
          keys;
        Array.iteri
          (fun j child ->
            let lo' = if j = 0 then lo else Some keys.(j - 1) in
            let hi' = if j = Array.length keys then hi else Some keys.(j) in
            go (d + 1) lo' hi' child)
          children
    in
    match S.get_root t.store with
    | None -> Ok ()
    | Some root -> (
      match go 1 None None root with
      | () -> (
        match List.sort_uniq compare !leaf_depths with
        | [] | [ _ ] -> Ok ()
        | ds -> fail "leaves at %d distinct depths" (List.length ds))
      | exception Bad msg -> Error msg
      | exception Corrupt msg -> Error ("corrupt: " ^ msg))
end
