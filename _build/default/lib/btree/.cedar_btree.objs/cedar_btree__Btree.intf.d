lib/btree/btree.mli:
