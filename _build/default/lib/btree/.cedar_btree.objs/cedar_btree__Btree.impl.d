lib/btree/btree.ml: Array Bytebuf Cedar_util Format List Printf String
