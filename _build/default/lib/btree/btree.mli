(** Page-based B-tree with variable-length string keys and values.

    Both file name tables are instances of this functor: CFS runs it over a
    store that writes pages straight to disk (so a crash between the page
    writes of a split corrupts the tree — the flaw §5.3 calls out), while
    FSD runs it over the logged, double-written page cache (so every
    multi-page update is atomic).

    Keys are ordered by [String.compare]. Entries must be small relative
    to the page: an entry whose encoded size exceeds a quarter of the page
    is rejected with [Invalid_argument] so that splits always succeed. *)

module type STORE = sig
  type t

  val page_bytes : t -> int

  val read : t -> int -> bytes
  (** [read t id] returns the page's current contents. *)

  val write : t -> int -> bytes -> unit

  val alloc : t -> int
  (** A fresh page id, distinct from all live pages. *)

  val free : t -> int -> unit

  val get_root : t -> int option
  (** The root page id, or [None] for an empty tree. *)

  val set_root : t -> int option -> unit
end

type stats = { depth : int; pages : int; entries : int; used_bytes : int }

exception Corrupt of string
(** Raised when a page fails to decode — e.g. after a torn CFS write. *)

module Make (S : STORE) : sig
  type t

  val attach : S.t -> t
  (** Attach to a store; the tree may be empty (no root) or existing. *)

  val insert : t -> key:string -> value:string -> unit
  (** Inserts or replaces. *)

  val find : t -> string -> string option

  val delete : t -> string -> bool
  (** [true] if the key was present. *)

  val iter_range : ?lo:string -> ?hi:string -> t -> (string -> string -> unit) -> unit
  (** In-order over keys with [lo <= key < hi] (each bound optional). *)

  val fold_range :
    ?lo:string -> ?hi:string -> t -> init:'a -> f:('a -> string -> string -> 'a) -> 'a

  val iter : t -> (string -> string -> unit) -> unit

  val min_key : t -> string option
  val max_key : t -> string option

  val find_last_below : t -> string -> (string * string) option
  (** Greatest binding with key strictly less than the argument — used to
      find the newest version of a file name. *)

  val is_empty : t -> bool
  val stats : t -> stats

  val check : t -> (unit, string) result
  (** Full structural validation: sorted keys, separator bounds, uniform
      leaf depth, page-size respect. *)
end
