open Cedar_util
open Cedar_disk
open Cedar_fsbase

type sample = {
  elapsed_us : int;
  ios : int;
  reads : int;
  writes : int;
  sectors_read : int;
  sectors_written : int;
}

let run (ops : Fs_ops.t) f =
  let before = Iostats.copy (Device.stats ops.Fs_ops.device) in
  let t0 = Simclock.now ops.Fs_ops.clock in
  let r = f () in
  let elapsed_us = Simclock.now ops.Fs_ops.clock - t0 in
  let d = Iostats.diff ~after:(Device.stats ops.Fs_ops.device) ~before in
  ( r,
    {
      elapsed_us;
      ios = d.Iostats.ios;
      reads = d.Iostats.reads;
      writes = d.Iostats.writes;
      sectors_read = d.Iostats.sectors_read;
      sectors_written = d.Iostats.sectors_written;
    } )

let time_ms s = float_of_int s.elapsed_us /. 1000.0

let bandwidth_fraction geom ~bytes_moved ~elapsed_us =
  let bytes_per_us =
    float_of_int geom.Geometry.sector_bytes
    /. float_of_int (Geometry.sector_time_us geom)
  in
  if elapsed_us = 0 then 0.0
  else float_of_int bytes_moved /. (bytes_per_us *. float_of_int elapsed_us)

let pp ppf s =
  Format.fprintf ppf "%.1f ms, %d ios (%dr/%dw, %d+%d sectors)" (time_ms s)
    s.ios s.reads s.writes s.sectors_read s.sectors_written
