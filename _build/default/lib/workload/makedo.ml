open Cedar_util
open Cedar_fsbase

type spec = {
  modules : int;
  deps_per_module : int;
  source_bytes : int;
  seed : int;
}

let default = { modules = 24; deps_per_module = 2; source_bytes = 6_000; seed = 1 }

let source_name i = Printf.sprintf "src/M%03d.mesa" i
let object_name i = Printf.sprintf "bin/M%03d.bcd" i
let temp_name i = Printf.sprintf "tmp/M%03d.tmp" i
let df_name = "build/program.df"

let content rng n = Bytes.init n (fun i -> Char.chr ((i + Rng.int rng 251) mod 251))

let prepare (ops : Fs_ops.t) spec =
  let rng = Rng.create spec.seed in
  for i = 0 to spec.modules - 1 do
    let size = max 256 (spec.source_bytes / 2 + Rng.int rng spec.source_bytes) in
    ignore (ops.Fs_ops.create ~name:(source_name i) ~data:(content rng size))
  done;
  ignore (ops.Fs_ops.create ~name:df_name ~data:(content rng 2_000));
  ops.Fs_ops.force ()

let build (ops : Fs_ops.t) spec =
  let rng = Rng.create (spec.seed + 17) in
  let (), sample =
    Measure.run ops (fun () ->
        for i = 0 to spec.modules - 1 do
          (* read the module source *)
          let src = ops.Fs_ops.read_all ~name:(source_name i) in
          (* read the interfaces it depends on *)
          for d = 1 to spec.deps_per_module do
            let dep = (i + d) mod spec.modules in
            ignore (ops.Fs_ops.open_stat ~name:(source_name dep));
            ignore (ops.Fs_ops.read_page ~name:(source_name dep) ~page:0)
          done;
          (* compiler temp: created, used, deleted *)
          ignore (ops.Fs_ops.create ~name:(temp_name i) ~data:(content rng 1_500));
          ignore (ops.Fs_ops.read_page ~name:(temp_name i) ~page:0);
          ops.Fs_ops.delete ~name:(temp_name i);
          (* derived object, roughly half the source size *)
          let obj_size = max 512 (Bytes.length src / 2) in
          ignore (ops.Fs_ops.create ~name:(object_name i) ~data:(content rng obj_size))
        done;
        (* rewrite the build description *)
        ignore (ops.Fs_ops.create ~name:df_name ~data:(content rng 2_200));
        ignore (ops.Fs_ops.list ~prefix:"bin/");
        ops.Fs_ops.force ())
  in
  sample
