(** File-size distribution matching §5.6's measurement: about half of all
    files are under 4,000 bytes yet use only ~8 % of the sectors. *)

val sample : Cedar_util.Rng.t -> int
(** One file size in bytes; never zero. *)

val check_distribution : Cedar_util.Rng.t -> samples:int -> float * float
(** [(small_file_fraction, small_byte_fraction)] over a sample run — used
    by tests to pin the 50 %/8 % shape. *)
