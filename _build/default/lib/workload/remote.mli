(** A fake remote file server.

    Cedar workstations cache immutable copies of remote files locally;
    most local files are such cached copies whose size is known when
    fetched and never changes (§5.6). This module supplies the remote
    side so examples and benchmarks can exercise the cached-entry code
    paths (import, last-used-time updates). *)

type t

val create : name:string -> seed:int -> t
val name : t -> string

val publish : t -> path:string -> bytes -> unit
val publish_random : t -> path:string -> Cedar_util.Rng.t -> bytes
(** Make up content with a realistic size; returns it. *)

val fetch : t -> path:string -> bytes option
val paths : t -> string list
