open Cedar_fsbase

let file_name ~dir i = Printf.sprintf "%s/file%04d" dir i

let payload i n = Bytes.init n (fun j -> Char.chr ((i + j) mod 251))

let create_many (ops : Fs_ops.t) ~dir ~n ~bytes_each =
  let (), s =
    Measure.run ops (fun () ->
        for i = 0 to n - 1 do
          ignore (ops.Fs_ops.create ~name:(file_name ~dir i) ~data:(payload i bytes_each))
        done;
        ops.Fs_ops.force ())
  in
  s

let list_dir (ops : Fs_ops.t) ~dir ~expect =
  let infos, s = Measure.run ops (fun () -> ops.Fs_ops.list ~prefix:(dir ^ "/")) in
  if List.length infos < expect then
    failwith
      (Printf.sprintf "list %s: expected at least %d entries, got %d" dir expect
         (List.length infos));
  s

let read_many (ops : Fs_ops.t) ~dir ~n =
  let (), s =
    Measure.run ops (fun () ->
        for i = 0 to n - 1 do
          ignore (ops.Fs_ops.read_all ~name:(file_name ~dir i))
        done)
  in
  s

let delete_many (ops : Fs_ops.t) ~dir ~n =
  let (), s =
    Measure.run ops (fun () ->
        for i = 0 to n - 1 do
          ops.Fs_ops.delete ~name:(file_name ~dir i)
        done;
        ops.Fs_ops.force ())
  in
  s
