(** A MakeDo-like build workload (Table 3's "typical of clients that
    intensively use the file system").

    For each module of a synthetic program the build: reads the source,
    reads a couple of interface files it depends on, writes a derived
    object file (a new version), writes and then deletes a compiler temp
    file, and finally rewrites the build description file. All through
    the generic {!Cedar_fsbase.Fs_ops} interface, so it runs unchanged on
    CFS, FSD, and the BSD baseline. *)

type spec = {
  modules : int;
  deps_per_module : int;
  source_bytes : int;  (** mean; actual sizes vary around it *)
  seed : int;
}

val default : spec

val prepare : Cedar_fsbase.Fs_ops.t -> spec -> unit
(** Create the source tree (not part of the measured build). *)

val build : Cedar_fsbase.Fs_ops.t -> spec -> Measure.sample
(** Run the build and measure it. *)

(** {1 Name scheme (for checking build outputs)} *)

val source_name : int -> string
val object_name : int -> string
val temp_name : int -> string
val df_name : string
