open Cedar_util

type t = {
  name : string;
  files : (string, bytes) Hashtbl.t;
  rng : Rng.t;
}

let create ~name ~seed = { name; files = Hashtbl.create 64; rng = Rng.create seed }
let name t = t.name
let publish t ~path data = Hashtbl.replace t.files path (Bytes.copy data)

let publish_random t ~path rng =
  let size = Sizes.sample rng in
  let data = Bytes.init size (fun i -> Char.chr ((i * 31) mod 251)) in
  ignore t.rng;
  publish t ~path data;
  data

let fetch t ~path = Option.map Bytes.copy (Hashtbl.find_opt t.files path)
let paths t = Hashtbl.fold (fun p _ acc -> p :: acc) t.files [] |> List.sort compare
