open Cedar_util

let small_cutoff = 4_000

(* Half the files are small (uniform up to the cutoff, mean ~2 KB); the
   rest are spread so that the small half holds ~8 % of the bytes: the
   large half then needs a ~23 KB mean. A two-tier mix of medium files
   and a tail of big ones gives that mean with a plausible shape. *)
let sample rng =
  if Rng.chance rng 0.5 then max 1 (Rng.int rng small_cutoff)
  else if Rng.chance rng 0.8 then Rng.int_in rng ~lo:small_cutoff ~hi:24_000
  else Rng.int_in rng ~lo:24_000 ~hi:90_000

let check_distribution rng ~samples =
  let small_n = ref 0 and small_b = ref 0 and total_b = ref 0 in
  for _ = 1 to samples do
    let s = sample rng in
    total_b := !total_b + s;
    if s < small_cutoff then begin
      incr small_n;
      small_b := !small_b + s
    end
  done;
  ( float_of_int !small_n /. float_of_int samples,
    float_of_int !small_b /. float_of_int !total_b )
