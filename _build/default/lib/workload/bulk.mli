(** The simple bulk operations of Tables 3 and 4: 100 small creates, list
    100 files, read 100 small files — all in one directory, as the paper
    benchmarks them. *)

val create_many :
  Cedar_fsbase.Fs_ops.t -> dir:string -> n:int -> bytes_each:int -> Measure.sample

val list_dir : Cedar_fsbase.Fs_ops.t -> dir:string -> expect:int -> Measure.sample

val read_many : Cedar_fsbase.Fs_ops.t -> dir:string -> n:int -> Measure.sample

val delete_many : Cedar_fsbase.Fs_ops.t -> dir:string -> n:int -> Measure.sample

val file_name : dir:string -> int -> string
