lib/workload/bulk.mli: Cedar_fsbase Measure
