lib/workload/remote.mli: Cedar_util
