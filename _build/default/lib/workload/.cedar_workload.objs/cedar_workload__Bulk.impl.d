lib/workload/bulk.ml: Bytes Cedar_fsbase Char Fs_ops List Measure Printf
