lib/workload/remote.ml: Bytes Cedar_util Char Hashtbl List Option Rng Sizes
