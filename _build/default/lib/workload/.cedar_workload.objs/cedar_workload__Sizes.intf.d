lib/workload/sizes.mli: Cedar_util
