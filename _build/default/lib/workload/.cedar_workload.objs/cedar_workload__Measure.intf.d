lib/workload/measure.mli: Cedar_disk Cedar_fsbase Format
