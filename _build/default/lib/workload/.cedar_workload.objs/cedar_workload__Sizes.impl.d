lib/workload/sizes.ml: Cedar_util Rng
