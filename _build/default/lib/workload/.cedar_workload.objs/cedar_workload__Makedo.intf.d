lib/workload/makedo.mli: Cedar_fsbase Measure
