lib/workload/makedo.ml: Bytes Cedar_fsbase Cedar_util Char Fs_ops Measure Printf Rng
