lib/workload/measure.ml: Cedar_disk Cedar_fsbase Cedar_util Device Format Fs_ops Geometry Iostats Simclock
