(** Measurement helpers shared by benchmarks and examples: virtual elapsed
    time and disk I/O counts around a piece of work. *)

type sample = {
  elapsed_us : int;
  ios : int;
  reads : int;
  writes : int;
  sectors_read : int;
  sectors_written : int;
}

val run : Cedar_fsbase.Fs_ops.t -> (unit -> 'a) -> 'a * sample

val time_ms : sample -> float

val bandwidth_fraction :
  Cedar_disk.Geometry.t -> bytes_moved:int -> elapsed_us:int -> float
(** Fraction of the raw media rate achieved. *)

val pp : Format.formatter -> sample -> unit
