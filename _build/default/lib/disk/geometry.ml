type t = {
  cylinders : int;
  heads : int;
  sectors_per_track : int;
  sector_bytes : int;
  rpm : int;
  min_seek_us : int;
  avg_seek_us : int;
  max_seek_us : int;
  head_switch_us : int;
}

(* 815 * 19 * 38 sectors * 512 B = 301 MB, close to the paper's "300
   megabyte file system". 3600 rpm gives the 16.7 ms revolution typical of
   the era; seeks are slow relative to modern drives, as §6 assumes. *)
let trident_t300 =
  {
    cylinders = 815;
    heads = 19;
    sectors_per_track = 38;
    sector_bytes = 512;
    rpm = 3600;
    min_seek_us = 6_000;
    avg_seek_us = 28_000;
    max_seek_us = 55_000;
    head_switch_us = 200;
  }

let small_test =
  {
    cylinders = 80;
    heads = 4;
    sectors_per_track = 32;
    sector_bytes = 512;
    rpm = 3600;
    min_seek_us = 6_000;
    avg_seek_us = 28_000;
    max_seek_us = 55_000;
    head_switch_us = 200;
  }

let tiny_test =
  {
    cylinders = 24;
    heads = 2;
    sectors_per_track = 16;
    sector_bytes = 512;
    rpm = 3600;
    min_seek_us = 6_000;
    avg_seek_us = 28_000;
    max_seek_us = 55_000;
    head_switch_us = 200;
  }

type chs = { cyl : int; head : int; sector : int }

let sectors_per_cylinder g = g.heads * g.sectors_per_track
let total_sectors g = g.cylinders * sectors_per_cylinder g
let capacity_bytes g = total_sectors g * g.sector_bytes
let rotation_us g = 60_000_000 / g.rpm
let sector_time_us g = rotation_us g / g.sectors_per_track

let to_chs g s =
  if s < 0 || s >= total_sectors g then invalid_arg "Geometry.to_chs";
  let per_cyl = sectors_per_cylinder g in
  {
    cyl = s / per_cyl;
    head = s mod per_cyl / g.sectors_per_track;
    sector = s mod g.sectors_per_track;
  }

let of_chs g { cyl; head; sector } =
  if
    cyl < 0 || cyl >= g.cylinders || head < 0 || head >= g.heads || sector < 0
    || sector >= g.sectors_per_track
  then invalid_arg "Geometry.of_chs";
  (cyl * sectors_per_cylinder g) + (head * g.sectors_per_track) + sector

let seek_us g d =
  if d < 0 then invalid_arg "Geometry.seek_us";
  if d = 0 then 0
  else begin
    (* Fit a + b*sqrt(d) through (1, min_seek) and (cyls-1, max_seek). *)
    let full = float_of_int (max 1 (g.cylinders - 1)) in
    let b =
      float_of_int (g.max_seek_us - g.min_seek_us) /. (sqrt full -. 1.0)
    in
    let a = float_of_int g.min_seek_us -. b in
    int_of_float (a +. (b *. sqrt (float_of_int d)))
  end

let avg_rotational_latency_us g = rotation_us g / 2

let pp ppf g =
  Format.fprintf ppf
    "%d cyl x %d heads x %d spt, %d B sectors (%.1f MB), %d rpm (rot %.1f ms), seek %d..%d us"
    g.cylinders g.heads g.sectors_per_track g.sector_bytes
    (float_of_int (capacity_bytes g) /. 1_048_576.0)
    g.rpm
    (float_of_int (rotation_us g) /. 1000.0)
    g.min_seek_us g.max_seek_us
