(** Per-sector hardware labels, as on the Trident disk interface.

    CFS writes a label on every sector identifying the file (uid), the
    logical page number within the file, and the page's role. Before a data
    transfer the "microcode" verifies the expected label against the one on
    disk, catching wild writes and stale run tables. FSD does not use
    labels at all — that is the point of the paper. *)

type kind =
  | Free        (** the sector belongs to no file *)
  | Header      (** CFS file header sector *)
  | Data        (** file data sector *)
  | Fnt         (** file name table sector *)
  | Vam         (** allocation-map save area *)
  | Boot        (** boot/root pages *)

type t = { uid : int64; page : int; kind : kind }

val free : t
(** The label of an unallocated sector: zero uid, page 0, [Free]. *)

val equal : t -> t -> bool
val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit

val encode : t -> bytes
val decode : bytes -> t
(** Raises [Bytebuf.Decode_error] on a malformed label. *)
