(** Disk geometry and the timing primitives of the paper's §6 model.

    The simulator and the analytic model share these numbers: rotation
    time, per-sector transfer time, and a seek-time curve fitted between the
    single-cylinder and full-stroke seek times. *)

type t = {
  cylinders : int;
  heads : int;  (** tracks per cylinder *)
  sectors_per_track : int;
  sector_bytes : int;
  rpm : int;
  min_seek_us : int;  (** single-cylinder seek *)
  avg_seek_us : int;  (** third-of-stroke seek, for reporting *)
  max_seek_us : int;  (** full-stroke seek *)
  head_switch_us : int;
}

val trident_t300 : t
(** A Trident-T300-like 300 MB drive as used on the Dorado: 815 cylinders,
    19 heads, ~16.7 ms rotation, ~28 ms average seek, 512-byte sectors. *)

val small_test : t
(** A few-megabyte geometry for unit tests (fast to format and scan). *)

val tiny_test : t
(** A sub-megabyte geometry for property tests that format thousands of
    volumes. *)

type chs = { cyl : int; head : int; sector : int }

val total_sectors : t -> int
val sectors_per_cylinder : t -> int
val capacity_bytes : t -> int
val rotation_us : t -> int
val sector_time_us : t -> int

val to_chs : t -> int -> chs
val of_chs : t -> chs -> int

val seek_us : t -> int -> int
(** [seek_us g d] is the time to seek across [d] cylinders ([d >= 0]); zero
    for [d = 0]. Uses the standard [a + b*sqrt d] curve fitted through
    [min_seek_us] at distance 1 and [max_seek_us] at full stroke. *)

val avg_rotational_latency_us : t -> int
(** Half a revolution. *)

val pp : Format.formatter -> t -> unit
