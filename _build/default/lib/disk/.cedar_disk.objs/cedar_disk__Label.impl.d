lib/disk/label.ml: Bytebuf Cedar_util Format Printf
