lib/disk/label.mli: Format
