lib/disk/iostats.ml: Format
