lib/disk/iostats.mli: Format
