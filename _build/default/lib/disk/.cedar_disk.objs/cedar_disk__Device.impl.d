lib/disk/device.ml: Bytebuf Bytes Cedar_util Char Geometry Hashtbl Iostats Label List Printf Rng Simclock
