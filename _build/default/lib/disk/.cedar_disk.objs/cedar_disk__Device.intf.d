lib/disk/device.mli: Cedar_util Geometry Iostats Label
