open Cedar_util

type kind = Free | Header | Data | Fnt | Vam | Boot
type t = { uid : int64; page : int; kind : kind }

let free = { uid = 0L; page = 0; kind = Free }

let equal a b = a.uid = b.uid && a.page = b.page && a.kind = b.kind

let kind_to_int = function
  | Free -> 0
  | Header -> 1
  | Data -> 2
  | Fnt -> 3
  | Vam -> 4
  | Boot -> 5

let kind_of_int = function
  | 0 -> Free
  | 1 -> Header
  | 2 -> Data
  | 3 -> Fnt
  | 4 -> Vam
  | 5 -> Boot
  | n -> raise (Bytebuf.Decode_error (Printf.sprintf "bad label kind %d" n))

let kind_to_string = function
  | Free -> "free"
  | Header -> "header"
  | Data -> "data"
  | Fnt -> "fnt"
  | Vam -> "vam"
  | Boot -> "boot"

let pp ppf t =
  Format.fprintf ppf "{uid=%Ld page=%d kind=%s}" t.uid t.page
    (kind_to_string t.kind)

let encode t =
  let w = Bytebuf.Writer.create ~initial:16 () in
  Bytebuf.Writer.u64 w t.uid;
  Bytebuf.Writer.u32 w t.page;
  Bytebuf.Writer.u8 w (kind_to_int t.kind);
  Bytebuf.Writer.contents w

let decode b =
  let r = Bytebuf.Reader.of_bytes b in
  let uid = Bytebuf.Reader.u64 r in
  let page = Bytebuf.Reader.u32 r in
  let kind = kind_of_int (Bytebuf.Reader.u8 r) in
  { uid; page; kind }
