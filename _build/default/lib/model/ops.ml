open Script

type config = {
  fnt_page_sectors : int;
  fnt_leaf_hit : float;
  file_center_cyls : int;
  force_pages : int;
  cpu_op_us : int;
  cpu_page_us : int;
}

let default =
  {
    fnt_page_sectors = 4;
    fnt_leaf_hit = 0.9;
    file_center_cyls = 400;
    force_pages = 1;
    cpu_op_us = 8_000;
    cpu_page_us = 150;
  }

(* The validation protocol parks the arm at the central cylinders (the
   FNT/log region) between operations, so a file access starts with a
   seek of [file_center_cyls] and name-table traffic seeks back. *)
let to_file c = Short_seek c.file_center_cyls
let to_center c = Short_seek c.file_center_cyls

(* ------------------------------------------------------------------ *)
(* CFS                                                                 *)

(* The paper's worked example, step for step against our implementation:
   1 verify the three candidate pages' labels;
   2 write the header labels -- the two sectors just passed the head;
   3 write the data label -- the head is phase-aligned after (2);
   4 write the header contents -- those sectors passed again;
   5 write the data page -- aligned again;
   6 write the name-table leaf (in place, at the center; leaf cached);
   7 seek back and rewrite the header with the final byte count. *)
let cfs_small_create c =
  [
    to_file c;
    Latency;
    Transfer 3;
    Rev_minus_transfer 3;
    Transfer 2;
    Transfer 1;
    Rev_minus_transfer 3;
    Transfer 2;
    Transfer 1;
    to_center c;
    Latency;
    Transfer c.fnt_page_sectors;
    to_file c;
    Latency;
    Transfer 2;
    Cpu (c.cpu_op_us + c.cpu_page_us);
  ]

(* A large create writes the data in one long verified transfer; the
   label verification and claim each scan the same [pages]+2 sectors. *)
let cfs_large_create c ~pages =
  [
    to_file c;
    Latency;
    Long_transfer (pages + 2);
    Rev_minus_transfer 2;
    Transfer 2;
    Long_transfer pages;
    Rev_minus_transfer 2;
    Transfer 2;
    Long_transfer pages;
    to_center c;
    Latency;
    Transfer c.fnt_page_sectors;
    to_file c;
    Latency;
    Transfer 2;
    Cpu (c.cpu_op_us + (pages * c.cpu_page_us));
  ]

(* Name-table leaf cached; the header read remains. *)
let cfs_open c = [ to_file c; Latency; Transfer 2; Cpu c.cpu_op_us ]

let cfs_read_page c = [ to_file c; Latency; Transfer 1; Cpu c.cpu_op_us ]

(* Free the header-pair labels, free the data label (aligned), then
   update the name table; the header itself is in the open cache. *)
let cfs_small_delete c =
  [
    to_file c;
    Latency;
    Transfer 2;
    Transfer 1;
    to_center c;
    Latency;
    Transfer c.fnt_page_sectors;
    Cpu (c.cpu_op_us + (c.cpu_page_us / 2));
  ]

(* ------------------------------------------------------------------ *)
(* FSD                                                                 *)

(* One combined leader+data write; everything else is in memory. The
   group-commit force is shared across the window and modelled by
   [fsd_log_force]. *)
let fsd_small_create c =
  [ to_file c; Latency; Transfer 2; Cpu (c.cpu_op_us + (2 * c.cpu_page_us)) ]

(* One synchronous record: header, blank, header copy, the logged pages,
   end, page copies, end copy (5.3). Declared early so long operations
   can account for the commits that fire while they run. *)
let fsd_log_force c =
  let data = c.force_pages * c.fnt_page_sectors in
  [ to_center c; Latency; Transfer ((2 * data) + 5) ]

(* One combined leader+data transfer, however long. A 1000-page write
   outlasts the half-second commit interval, so one group commit fires
   within the operation. *)
let fsd_large_create c ~pages =
  [ to_file c; Latency; Long_transfer (pages + 1); Cpu (c.cpu_op_us + (pages * c.cpu_page_us)) ]
  @ fsd_log_force c

let fsd_open c = [ Cpu c.cpu_op_us ]

(* First data access: the leader is the physically preceding sector, so
   verification rides along for one extra sector of transfer (5.7). *)
let fsd_open_read c =
  [ to_file c; Latency; Transfer 2; Cpu (c.cpu_op_us + c.cpu_page_us) ]

let fsd_small_delete c = [ Cpu (c.cpu_op_us + (c.cpu_page_us / 2)) ]

let fsd_read_page c =
  [ to_file c; Latency; Transfer 1; Cpu (c.cpu_op_us + c.cpu_page_us) ]

let all c =
  [
    ("cfs_small_create", cfs_small_create c);
    ("cfs_large_create(1000)", cfs_large_create c ~pages:1000);
    ("fsd_large_create(1000)", fsd_large_create c ~pages:1000);
    ("cfs_open", cfs_open c);
    ("cfs_small_delete", cfs_small_delete c);
    ("cfs_read_page", cfs_read_page c);
    ("fsd_small_create", fsd_small_create c);
    ("fsd_open", fsd_open c);
    ("fsd_open_read", fsd_open_read c);
    ("fsd_small_delete", fsd_small_delete c);
    ("fsd_log_force", fsd_log_force c);
    ("fsd_read_page", fsd_read_page c);
  ]
