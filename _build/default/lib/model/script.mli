(** The paper's §6 analytic performance model.

    An operation is described by a {e script}: a sequence of mechanical
    steps whose expected durations are computed from the disk geometry.
    Scripts incorporate known rotational and radial locality — e.g. a
    rewrite of sectors that just passed the head costs a revolution minus
    the preceding transfer, and a same-cylinder access is a short seek.

    The model "almost always predicted performance to within five percent
    of measured performance"; [test/test_model.ml] and bench R5 hold this
    implementation to the same standard against the simulator. *)

type step =
  | Seek  (** average-length seek *)
  | Short_seek of int  (** a few cylinders *)
  | Latency  (** half a revolution of rotational delay *)
  | Revolution  (** a full lost revolution *)
  | Rev_minus_transfer of int
      (** a revolution minus the time of the preceding [n]-sector
          transfer: the read-then-immediately-rewrite pattern *)
  | Transfer of int  (** [n] consecutive sectors *)
  | Long_transfer of int
      (** [n] consecutive sectors including the expected head switches
          and track-to-track seeks a multi-track transfer incurs *)
  | Cpu of int  (** microseconds of processing *)

type t = step list

val step_us : Cedar_disk.Geometry.t -> step -> float
val time_us : Cedar_disk.Geometry.t -> t -> float
val time_ms : Cedar_disk.Geometry.t -> t -> float

val weighted : Cedar_disk.Geometry.t -> (float * t) list -> float
(** [weighted g [(p1, s1); ...]] is the probability-weighted expected time
    in microseconds — used to average the cache-hit and cache-miss cases.
    The probabilities must sum to 1 (within 1e-6). *)

val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit
