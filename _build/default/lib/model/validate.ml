type row = {
  name : string;
  predicted_ms : float;
  measured_ms : float;
  error_pct : float;
}

let row ~name ~predicted_ms ~measured_ms =
  let error_pct =
    if measured_ms = 0.0 then 0.0
    else (predicted_ms -. measured_ms) /. measured_ms *. 100.0
  in
  { name; predicted_ms; measured_ms; error_pct }

let pp_table ppf rows =
  Format.fprintf ppf "%-24s %12s %12s %8s@." "operation" "model (ms)"
    "measured" "error";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-24s %12.2f %12.2f %+7.1f%%@." r.name r.predicted_ms
        r.measured_ms r.error_pct)
    rows

let max_abs_error_pct rows =
  List.fold_left (fun acc r -> max acc (abs_float r.error_pct)) 0.0 rows
