open Cedar_disk

type step =
  | Seek
  | Short_seek of int
  | Latency
  | Revolution
  | Rev_minus_transfer of int
  | Transfer of int
  | Long_transfer of int
  | Cpu of int

type t = step list

let step_us g = function
  | Seek -> float_of_int g.Geometry.avg_seek_us
  | Short_seek cyls -> float_of_int (Geometry.seek_us g (max 1 cyls))
  | Latency -> float_of_int (Geometry.avg_rotational_latency_us g)
  | Revolution -> float_of_int (Geometry.rotation_us g)
  | Rev_minus_transfer n ->
    float_of_int (Geometry.rotation_us g - (n * Geometry.sector_time_us g))
  | Transfer n -> float_of_int (n * Geometry.sector_time_us g)
  | Long_transfer n ->
    (* raw transfer plus the expected track and cylinder boundary costs:
       a head switch loses one sector of skew; a cylinder crossing costs
       a single-cylinder seek and half a revolution of realignment *)
    let spt = g.Geometry.sectors_per_track in
    let spc = Geometry.sectors_per_cylinder g in
    let track_crossings = max 0 ((n - 1) / spt) in
    let cyl_crossings = max 0 ((n - 1) / spc) in
    let head_switches = track_crossings - cyl_crossings in
    float_of_int
      ((n * Geometry.sector_time_us g)
      + (head_switches * (g.Geometry.head_switch_us + Geometry.sector_time_us g))
      + (cyl_crossings * (Geometry.seek_us g 1 + (Geometry.rotation_us g / 2))))
  | Cpu us -> float_of_int us

let time_us g s = List.fold_left (fun acc st -> acc +. step_us g st) 0.0 s
let time_ms g s = time_us g s /. 1000.0

let weighted g cases =
  let psum = List.fold_left (fun acc (p, _) -> acc +. p) 0.0 cases in
  if abs_float (psum -. 1.0) > 1e-6 then
    invalid_arg "Script.weighted: probabilities must sum to 1";
  List.fold_left (fun acc (p, s) -> acc +. (p *. time_us g s)) 0.0 cases

let pp_step ppf = function
  | Seek -> Format.fprintf ppf "seek"
  | Short_seek c -> Format.fprintf ppf "short-seek(%d)" c
  | Latency -> Format.fprintf ppf "latency"
  | Revolution -> Format.fprintf ppf "revolution"
  | Rev_minus_transfer n -> Format.fprintf ppf "rev-%dxfer" n
  | Transfer n -> Format.fprintf ppf "transfer(%d)" n
  | Long_transfer n -> Format.fprintf ppf "long-transfer(%d)" n
  | Cpu us -> Format.fprintf ppf "cpu(%dus)" us

let pp ppf s =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_step)
    s
