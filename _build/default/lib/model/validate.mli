(** Model-vs-measurement comparison (the paper's "within five percent"). *)

type row = {
  name : string;
  predicted_ms : float;
  measured_ms : float;
  error_pct : float;  (** signed, (predicted - measured) / measured * 100 *)
}

val row : name:string -> predicted_ms:float -> measured_ms:float -> row

val pp_table : Format.formatter -> row list -> unit

val max_abs_error_pct : row list -> float
