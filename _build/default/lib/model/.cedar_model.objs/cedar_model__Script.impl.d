lib/model/script.ml: Cedar_disk Format Geometry List
