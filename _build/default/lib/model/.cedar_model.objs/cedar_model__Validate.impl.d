lib/model/validate.ml: Format List
