lib/model/validate.mli: Format
