lib/model/script.mli: Cedar_disk Format
