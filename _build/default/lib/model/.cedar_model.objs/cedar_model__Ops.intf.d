lib/model/ops.mli: Script
