lib/model/ops.ml: Script
