(** Predefined operation scripts for CFS and FSD, in the style of the
    paper's section 6.

    Each script is derived by reading the corresponding implementation
    and writing down where it does I/O, incorporating known locality —
    the name table and log live at the central cylinders, a
    freshly-verified sector has just passed the head, the leader page
    physically precedes the first data page. Bench R5 measures the same
    operations on the simulator with the arm parked at the central
    cylinders between operations, and checks the predictions against the
    measurements (the paper reports agreement within ~5 %). *)

type config = {
  fnt_page_sectors : int;  (** sectors per name-table page *)
  fnt_leaf_hit : float;  (** probability the leaf is in cache *)
  file_center_cyls : int;
      (** seek distance between the active file area and the central
          metadata region *)
  force_pages : int;  (** name-table pages logged by a typical force *)
  cpu_op_us : int;
  cpu_page_us : int;
}

val default : config

(** {1 CFS} *)

val cfs_small_create : config -> Script.t
(** The section 6 worked example: verify three free pages, write header
    labels, write the data label, write the header, update the name
    table, write the data, rewrite the header. *)

val cfs_large_create : config -> pages:int -> Script.t
val cfs_open : config -> Script.t
(** Name-table lookup (cached) then the header read. *)

val cfs_small_delete : config -> Script.t
val cfs_read_page : config -> Script.t

(** {1 FSD} *)

val fsd_small_create : config -> Script.t
(** One combined leader+data write. The group-commit force is shared by
    all operations of a half-second window and is modelled separately as
    {!fsd_log_force}. *)

val fsd_large_create : config -> pages:int -> Script.t
(** One combined leader+data transfer, however long. *)

val fsd_open : config -> Script.t
(** No I/O at all on a cache hit. *)

val fsd_open_read : config -> Script.t
(** Open plus first data access, the leader verified by piggybacking. *)

val fsd_small_delete : config -> Script.t
val fsd_read_page : config -> Script.t

val fsd_log_force : config -> Script.t
(** The synchronous group-commit write: a seek to the central log, the
    rotational latency, then the record (5 overhead sectors plus twice
    the logged pages). *)

val all : config -> (string * Script.t) list
