let max_name_bytes = 100
let max_version = 999_999

let validate name =
  if String.length name = 0 then Error "empty name"
  else if String.length name > max_name_bytes then Error "name too long"
  else if
    String.exists (fun c -> c = '!' || Char.code c < 0x20 || Char.code c = 0x7f) name
  then Error "name contains '!' or control characters"
  else Ok ()

let key ~name ~version =
  if version < 1 || version > max_version then invalid_arg "Fname.key: version";
  (match validate name with
  | Ok () -> ()
  | Error m -> invalid_arg ("Fname.key: " ^ m));
  Printf.sprintf "%s!%06d" name version

let bounds ~name =
  (* '!' is 0x21 and '"' is 0x22, so this brackets exactly the keys of
     [name]'s versions; a longer name ("foo.txt" vs "foo") sorts outside. *)
  (name ^ "!", name ^ "\"")

let parse k =
  match String.rindex_opt k '!' with
  | None -> None
  | Some i ->
    let name = String.sub k 0 i in
    let v = String.sub k (i + 1) (String.length k - i - 1) in
    (match int_of_string_opt v with
    | Some version when version >= 1 && version <= max_version -> Some (name, version)
    | Some _ | None -> None)

let pp ppf (name, version) = Format.fprintf ppf "%s!%d" name version
