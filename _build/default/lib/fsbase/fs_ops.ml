type info = { name : string; version : int; byte_size : int; uid : int64 }

type t = {
  label : string;
  create : name:string -> data:bytes -> info;
  open_stat : name:string -> info;
  read_all : name:string -> bytes;
  read_page : name:string -> page:int -> bytes;
  delete : name:string -> unit;
  list : prefix:string -> info list;
  force : unit -> unit;
  device : Cedar_disk.Device.t;
  clock : Cedar_util.Simclock.t;
}

let pp_info ppf i =
  Format.fprintf ppf "%s!%d %dB uid=%Ld" i.name i.version i.byte_size i.uid
