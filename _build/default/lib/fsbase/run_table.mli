(** Run tables: a file's pages as a list of extents of consecutive disk
    sectors, in logical page order. Both CFS (in the header) and FSD (in
    the name-table entry) describe files this way. One page = one sector. *)

type run = { start : int; len : int }
type t

val empty : t
val of_runs : run list -> t
(** Validates: positive lengths, non-negative starts, no overlap between
    runs. Raises [Invalid_argument] otherwise. Adjacent runs are
    coalesced. *)

val runs : t -> run list
val pages : t -> int
(** Total number of pages (sectors). *)

val append : t -> run -> t
(** Extends the file; coalesces with the final run when contiguous. *)

val sector_of_page : t -> int -> int
(** [sector_of_page t p] is the disk sector of logical page [p]. Raises
    [Invalid_argument] if [p] is out of range. *)

val contiguous_prefix : t -> page:int -> int
(** Number of pages starting at [page] that are physically consecutive on
    disk — the largest single transfer beginning there. *)

val truncate : t -> pages:int -> t * run list
(** [truncate t ~pages] keeps the first [pages] pages; returns the
    remainder as freed runs. *)

val first_sector : t -> int option
val iter_sectors : t -> (int -> unit) -> unit
val equal : t -> t -> bool
val crc : t -> int
(** Checksum over the run list, stored in the FSD leader page. *)

val encode : Cedar_util.Bytebuf.Writer.t -> t -> unit
val decode : Cedar_util.Bytebuf.Reader.t -> t
val pp : Format.formatter -> t -> unit
