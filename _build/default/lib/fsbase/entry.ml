open Cedar_util

type kind =
  | Local
  | Symlink of { target : string }
  | Cached of { server : string; mutable last_used : int }

type t = {
  uid : int64;
  keep : int;
  byte_size : int;
  created : int;
  runs : Run_table.t;
  anchor : int;
  kind : kind;
}

let local ~uid ~keep ~byte_size ~created ~runs ~anchor =
  { uid; keep; byte_size; created; runs; anchor; kind = Local }

let encode t =
  let w = Bytebuf.Writer.create ~initial:64 () in
  Bytebuf.Writer.u64 w t.uid;
  Bytebuf.Writer.u16 w t.keep;
  Bytebuf.Writer.i64 w t.byte_size;
  Bytebuf.Writer.i64 w t.created;
  Bytebuf.Writer.u32 w (t.anchor + 1);
  Run_table.encode w t.runs;
  (match t.kind with
  | Local -> Bytebuf.Writer.u8 w 0
  | Symlink { target } ->
    Bytebuf.Writer.u8 w 1;
    Bytebuf.Writer.string w target
  | Cached { server; last_used } ->
    Bytebuf.Writer.u8 w 2;
    Bytebuf.Writer.string w server;
    Bytebuf.Writer.i64 w last_used);
  Bytes.to_string (Bytebuf.Writer.contents w)

let decode s =
  let r = Bytebuf.Reader.of_bytes (Bytes.unsafe_of_string s) in
  let uid = Bytebuf.Reader.u64 r in
  let keep = Bytebuf.Reader.u16 r in
  let byte_size = Bytebuf.Reader.i64 r in
  let created = Bytebuf.Reader.i64 r in
  let anchor = Bytebuf.Reader.u32 r - 1 in
  let runs = Run_table.decode r in
  let kind =
    match Bytebuf.Reader.u8 r with
    | 0 -> Local
    | 1 -> Symlink { target = Bytebuf.Reader.string r }
    | 2 ->
      let server = Bytebuf.Reader.string r in
      let last_used = Bytebuf.Reader.i64 r in
      Cached { server; last_used }
    | n -> raise (Bytebuf.Decode_error (Printf.sprintf "bad entry kind %d" n))
  in
  { uid; keep; byte_size; created; runs; anchor; kind }

let equal a b =
  a.uid = b.uid && a.keep = b.keep && a.byte_size = b.byte_size
  && a.created = b.created && a.anchor = b.anchor
  && Run_table.equal a.runs b.runs
  &&
  match (a.kind, b.kind) with
  | Local, Local -> true
  | Symlink { target = t1 }, Symlink { target = t2 } -> t1 = t2
  | Cached { server = s1; last_used = l1 }, Cached { server = s2; last_used = l2 } ->
    s1 = s2 && l1 = l2
  | (Local | Symlink _ | Cached _), _ -> false

let pp ppf t =
  let kind =
    match t.kind with
    | Local -> "local"
    | Symlink { target } -> "symlink->" ^ target
    | Cached { server; _ } -> "cached@" ^ server
  in
  Format.fprintf ppf "{uid=%Ld %s %dB keep=%d runs=%a}" t.uid kind t.byte_size
    t.keep Run_table.pp t.runs
