(** A first-class view of a file system, so that workloads, examples and
    the benchmark harness can drive CFS, FSD, and the BSD baseline through
    one interface. *)

type info = { name : string; version : int; byte_size : int; uid : int64 }

type t = {
  label : string;  (** "CFS", "FSD", ... for table headings *)
  create : name:string -> data:bytes -> info;
      (** Creates a new (newest) version of [name] holding [data]. *)
  open_stat : name:string -> info;
      (** Open without data I/O: resolve the newest version's metadata. *)
  read_all : name:string -> bytes;
  read_page : name:string -> page:int -> bytes;
  delete : name:string -> unit;  (** deletes the newest version *)
  list : prefix:string -> info list;
      (** Directory-style enumeration with properties, newest versions. *)
  force : unit -> unit;  (** commit / flush metadata (no-op where N/A) *)
  device : Cedar_disk.Device.t;
  clock : Cedar_util.Simclock.t;
}

val pp_info : Format.formatter -> info -> unit
