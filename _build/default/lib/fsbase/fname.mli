(** Cedar file names with versions ("name!version").

    The name table is keyed so that all versions of a name are contiguous
    and lexicographic key order equals (name, version-number) order; the
    newest version of a name is the greatest key below the name's upper
    bound. *)

val max_name_bytes : int

val validate : string -> (unit, string) result
(** A valid name is non-empty, at most {!max_name_bytes} bytes, and
    contains neither ['!'] nor control characters. *)

val key : name:string -> version:int -> string
(** B-tree key for a specific version. Versions are in [1, 999999]. *)

val bounds : name:string -> string * string
(** [(lo, hi)] such that a key belongs to [name] iff [lo <= key < hi]. *)

val parse : string -> (string * int) option
(** Inverse of {!key}. *)

val pp : Format.formatter -> string * int -> unit
(** Prints "name!version". *)
