open Cedar_util

type run = { start : int; len : int }
type t = { runs : run list; pages : int }

let empty = { runs = []; pages = 0 }

let coalesce runs =
  let rec go = function
    | a :: b :: rest when a.start + a.len = b.start ->
      go ({ start = a.start; len = a.len + b.len } :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go runs

let validate runs =
  List.iter
    (fun r ->
      if r.len <= 0 || r.start < 0 then invalid_arg "Run_table: bad run")
    runs;
  (* No two runs may overlap, regardless of logical order. *)
  let sorted = List.sort (fun a b -> compare a.start b.start) runs in
  let rec check = function
    | a :: (b :: _ as rest) ->
      if a.start + a.len > b.start then invalid_arg "Run_table: overlapping runs";
      check rest
    | [ _ ] | [] -> ()
  in
  check sorted

let of_runs runs =
  validate runs;
  let runs = coalesce runs in
  { runs; pages = List.fold_left (fun acc r -> acc + r.len) 0 runs }

let runs t = t.runs
let pages t = t.pages

let append t r =
  of_runs (t.runs @ [ r ])

let sector_of_page t p =
  if p < 0 || p >= t.pages then invalid_arg "Run_table.sector_of_page";
  let rec go p = function
    | r :: rest -> if p < r.len then r.start + p else go (p - r.len) rest
    | [] -> assert false
  in
  go p t.runs

let contiguous_prefix t ~page =
  if page < 0 || page >= t.pages then invalid_arg "Run_table.contiguous_prefix";
  let rec go p = function
    | r :: rest -> if p < r.len then r.len - p else go (p - r.len) rest
    | [] -> assert false
  in
  go page t.runs

let truncate t ~pages =
  if pages < 0 || pages > t.pages then invalid_arg "Run_table.truncate";
  let rec go keep acc = function
    | [] -> (List.rev acc, [])
    | r :: rest ->
      if keep = 0 then (List.rev acc, r :: rest)
      else if r.len <= keep then go (keep - r.len) (r :: acc) rest
      else
        ( List.rev ({ r with len = keep } :: acc),
          { start = r.start + keep; len = r.len - keep } :: rest )
  in
  let kept, freed = go pages [] t.runs in
  ({ runs = kept; pages }, freed)

let first_sector t =
  match t.runs with [] -> None | r :: _ -> Some r.start

let iter_sectors t f =
  List.iter
    (fun r ->
      for i = r.start to r.start + r.len - 1 do
        f i
      done)
    t.runs

let equal a b = a.runs = b.runs

let crc t =
  let w = Bytebuf.Writer.create () in
  List.iter
    (fun r ->
      Bytebuf.Writer.u32 w r.start;
      Bytebuf.Writer.u32 w r.len)
    t.runs;
  Crc32.bytes (Bytebuf.Writer.contents w)

let encode w t =
  Bytebuf.Writer.list w
    (fun w r ->
      Bytebuf.Writer.u32 w r.start;
      Bytebuf.Writer.u32 w r.len)
    t.runs

let decode r =
  let runs =
    Bytebuf.Reader.list r (fun r ->
        let start = Bytebuf.Reader.u32 r in
        let len = Bytebuf.Reader.u32 r in
        { start; len })
  in
  of_runs runs

let pp ppf t =
  Format.fprintf ppf "[%a] (%d pages)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf r -> Format.fprintf ppf "%d+%d" r.start r.len))
    t.runs t.pages
