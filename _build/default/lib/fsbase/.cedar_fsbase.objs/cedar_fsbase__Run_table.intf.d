lib/fsbase/run_table.mli: Cedar_util Format
