lib/fsbase/fs_error.mli: Format
