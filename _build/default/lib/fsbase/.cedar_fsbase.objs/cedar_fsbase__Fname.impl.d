lib/fsbase/fname.ml: Char Format Printf String
