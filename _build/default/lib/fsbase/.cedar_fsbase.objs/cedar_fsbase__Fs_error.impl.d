lib/fsbase/fs_error.ml: Format
