lib/fsbase/run_table.ml: Bytebuf Cedar_util Crc32 Format List
