lib/fsbase/entry.ml: Bytebuf Bytes Cedar_util Format Printf Run_table
