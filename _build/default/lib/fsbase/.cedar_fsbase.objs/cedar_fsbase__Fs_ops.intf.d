lib/fsbase/fs_ops.mli: Cedar_disk Cedar_util Format
