lib/fsbase/fs_ops.ml: Cedar_disk Cedar_util Format
