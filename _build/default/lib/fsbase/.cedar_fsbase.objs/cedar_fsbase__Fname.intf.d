lib/fsbase/fname.mli: Format
