lib/fsbase/entry.mli: Format Run_table
