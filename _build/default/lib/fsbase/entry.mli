(** File-name-table entries.

    The paper's Table 1: in FSD the name table holds everything — text
    name (the key), version (in the key), keep, uid, run table, byte size,
    and create time. Three kinds of entries exist (§4): local files,
    symbolic links to remote files, and cached copies of remote files. In
    CFS the same record type is split: the FNT entry holds only
    [uid]/[keep] plus the header address, and the run table and properties
    live in the file header. *)

type kind =
  | Local
  | Symlink of { target : string }
  | Cached of { server : string; mutable last_used : int }
      (** [last_used] is the property whose lazy update motivates group
          commit (§5.4). *)

type t = {
  uid : int64;
  keep : int;  (** number of versions to keep; 0 = unlimited *)
  byte_size : int;
  created : int;  (** virtual time, microseconds *)
  runs : Run_table.t;  (** data pages only *)
  anchor : int;
      (** CFS: the "header page 0 disk address" of Table 1. FSD: the
          leader-page sector, which by construction physically precedes
          the first data page. [-1] when the entry has no disk pages
          (symlinks). *)
  kind : kind;
}

val local :
  uid:int64 ->
  keep:int ->
  byte_size:int ->
  created:int ->
  runs:Run_table.t ->
  anchor:int ->
  t

val encode : t -> string
val decode : string -> t
(** Raises [Bytebuf.Decode_error] on malformed input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
