type t = { bits : int; data : Bytes.t }

let create bits =
  if bits < 0 then invalid_arg "Bitmap.create";
  { bits; data = Bytes.make ((bits + 7) / 8) '\000' }

let length t = t.bits

let check t i =
  if i < 0 || i >= t.bits then
    invalid_arg (Printf.sprintf "Bitmap: index %d out of [0,%d)" i t.bits)

let get t i =
  check t i;
  Char.code (Bytes.get t.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  let b = i lsr 3 in
  Bytes.set t.data b
    (Char.chr (Char.code (Bytes.get t.data b) lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let b = i lsr 3 in
  Bytes.set t.data b
    (Char.chr (Char.code (Bytes.get t.data b) land lnot (1 lsl (i land 7)) land 0xff))

let assign t i v = if v then set t i else clear t i

let popcount_byte =
  lazy
    (Array.init 256 (fun n ->
         let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
         go n 0))

let count t =
  let pc = Lazy.force popcount_byte in
  let total = ref 0 in
  Bytes.iter (fun c -> total := !total + pc.(Char.code c)) t.data;
  (* Bits past [t.bits] in the final byte are never set. *)
  !total

let set_run t ~pos ~len =
  for i = pos to pos + len - 1 do
    set t i
  done

let clear_run t ~pos ~len =
  for i = pos to pos + len - 1 do
    clear t i
  done

let all_set_in_run t ~pos ~len =
  let rec go i = i >= pos + len || (get t i && go (i + 1)) in
  pos >= 0 && pos + len <= t.bits && go pos

let find_set t ~from =
  let rec go i =
    if i >= t.bits then None else if get t i then Some i else go (i + 1)
  in
  go (max 0 from)

let find_run_set t ~from ~upto ~len =
  if len <= 0 then invalid_arg "Bitmap.find_run_set";
  let upto = min upto t.bits in
  (* [run] counts consecutive set bits ending just before [i]. *)
  let rec go i run =
    if run >= len then Some (i - len)
    else if i >= upto then None
    else if get t i then go (i + 1) (run + 1)
    else go (i + 1) 0
  in
  if from < 0 || from >= upto then None else go from 0

let find_run_set_down t ~from ~downto_ ~len =
  if len <= 0 then invalid_arg "Bitmap.find_run_set_down";
  let from = min from (t.bits - 1) in
  (* Scan downward for the highest window [pos, pos+len) entirely set. *)
  let rec go pos =
    if pos < downto_ then None
    else if all_set_in_run t ~pos ~len then Some pos
    else go (pos - 1)
  in
  if from - len + 1 < downto_ then None else go (from - len + 1)

let iter_set t f =
  for i = 0 to t.bits - 1 do
    if get t i then f i
  done

let union_into ~dst ~src =
  if dst.bits <> src.bits then invalid_arg "Bitmap.union_into";
  for b = 0 to Bytes.length dst.data - 1 do
    Bytes.set dst.data b
      (Char.chr
         (Char.code (Bytes.get dst.data b) lor Char.code (Bytes.get src.data b)))
  done

let clear_all t = Bytes.fill t.data 0 (Bytes.length t.data) '\000'
let copy t = { bits = t.bits; data = Bytes.copy t.data }
let equal a b = a.bits = b.bits && Bytes.equal a.data b.data
let to_bytes t = Bytes.copy t.data

let overwrite_bytes t ~off src =
  if off < 0 || off + Bytes.length src > Bytes.length t.data then
    invalid_arg "Bitmap.overwrite_bytes";
  Bytes.blit src 0 t.data off (Bytes.length src);
  (* re-mask stray bits beyond [bits] *)
  if t.bits land 7 <> 0 && Bytes.length t.data > 0 then begin
    let last = Bytes.length t.data - 1 in
    let mask = (1 lsl (t.bits land 7)) - 1 in
    Bytes.set t.data last (Char.chr (Char.code (Bytes.get t.data last) land mask))
  end

let of_bytes ~bits b =
  if Bytes.length b < (bits + 7) / 8 then invalid_arg "Bitmap.of_bytes";
  let t = { bits; data = Bytes.sub b 0 ((bits + 7) / 8) } in
  (* Clear any stray bits beyond [bits] so [count] and [equal] are exact. *)
  if bits land 7 <> 0 then begin
    let last = Bytes.length t.data - 1 in
    let mask = (1 lsl (bits land 7)) - 1 in
    Bytes.set t.data last (Char.chr (Char.code (Bytes.get t.data last) land mask))
  end;
  t
