(* Hashtable plus a doubly-linked recency list; head = most recent. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable pinned : bool;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable unpinned : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create";
  { capacity; table = Hashtbl.create 64; head = None; tail = None; unpinned = 0 }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let promote t n =
  unlink t n;
  push_front t n

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
    promote t n;
    Some n.value

let peek t k =
  match Hashtbl.find_opt t.table k with None -> None | Some n -> Some n.value

let remove_node t n =
  unlink t n;
  Hashtbl.remove t.table n.key;
  if not n.pinned then t.unpinned <- t.unpinned - 1

let evict t =
  (* Walk from least-recently-used, skipping pinned entries. *)
  let rec oldest = function
    | None -> None
    | Some n -> if n.pinned then oldest n.prev else Some n
  in
  let rec go acc =
    if t.unpinned <= t.capacity then acc
    else
      match oldest t.tail with
      | None -> acc
      | Some n ->
        remove_node t n;
        go ((n.key, n.value) :: acc)
  in
  go []

let add t k v =
  (match Hashtbl.find_opt t.table k with
  | Some n ->
    n.value <- v;
    promote t n
  | None ->
    let n = { key = k; value = v; pinned = false; prev = None; next = None } in
    Hashtbl.replace t.table k n;
    push_front t n;
    t.unpinned <- t.unpinned + 1);
  evict t

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some n -> remove_node t n

let mem t k = Hashtbl.mem t.table k

let pin t k =
  match Hashtbl.find_opt t.table k with
  | None -> invalid_arg "Lru.pin: absent key"
  | Some n ->
    if not n.pinned then begin
      n.pinned <- true;
      t.unpinned <- t.unpinned - 1
    end

let unpin t k =
  match Hashtbl.find_opt t.table k with
  | None -> invalid_arg "Lru.unpin: absent key"
  | Some n ->
    if n.pinned then begin
      n.pinned <- false;
      t.unpinned <- t.unpinned + 1;
      ignore (evict t : _ list)
    end

let pinned t k =
  match Hashtbl.find_opt t.table k with None -> false | Some n -> n.pinned

let iter t f = Hashtbl.iter (fun k n -> f k n.value) t.table
let size t = Hashtbl.length t.table

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.unpinned <- 0
