type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64: fast, well distributed, and trivially portable. *)
let int64 t =
  let open Int64 in
  t.state <- add t.state 0x9e3779b97f4a7c15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let split t = { state = int64 t }

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.logand (int64 t) Int64.max_int) (Int64.of_int n))

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in";
  lo + int t (hi - lo + 1)

let float t x =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. x

let bool t = Int64.logand (int64 t) 1L = 1L
let chance t p = float t 1.0 < p

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
