(** CRC-32 (IEEE 802.3 polynomial), used as the page and log-record
    checksum. The file system treats a checksum mismatch as a damaged
    sector. *)

val bytes : ?pos:int -> ?len:int -> bytes -> int
(** [bytes b] is the CRC-32 of [b] (or the given slice) as a non-negative
    int that fits in 32 bits. *)

val string : string -> int
