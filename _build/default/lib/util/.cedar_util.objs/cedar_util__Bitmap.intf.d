lib/util/bitmap.mli:
