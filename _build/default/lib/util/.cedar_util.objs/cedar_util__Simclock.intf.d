lib/util/simclock.mli:
