lib/util/rng.mli:
