lib/util/lru.mli:
