lib/util/simclock.ml:
