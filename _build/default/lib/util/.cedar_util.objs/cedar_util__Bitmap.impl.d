lib/util/bitmap.ml: Array Bytes Char Lazy Printf
