lib/util/bytebuf.mli:
