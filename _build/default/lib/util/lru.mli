(** Generic LRU cache with pinning.

    The FSD name-table cache must never evict a "dirty but logged" page
    (its only durable copy lives in the log, which will be overwritten);
    such pages are kept pinned until the thirds algorithm writes them
    home. Eviction therefore skips pinned entries. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** [capacity] bounds the number of {e unpinned} entries; pinned entries may
    push the total size above it. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Looks up and promotes to most-recently-used. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Looks up without promoting. *)

val add : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) list
(** [add t k v] inserts or replaces the binding, promoting it. Returns the
    (unpinned) entries evicted to respect capacity. *)

val remove : ('k, 'v) t -> 'k -> unit
val mem : ('k, 'v) t -> 'k -> bool

val pin : ('k, 'v) t -> 'k -> unit
val unpin : ('k, 'v) t -> 'k -> unit
val pinned : ('k, 'v) t -> 'k -> bool

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
val size : ('k, 'v) t -> int
val clear : ('k, 'v) t -> unit
