(** Fixed-size mutable bit vectors.

    Used for the volume allocation map (VAM), the shadow bitmap of
    not-yet-committed deletions, and the cylinder-group bitmaps of the BSD
    baseline. Bit [i] set means "page [i] is free" for the VAM. *)

type t

val create : int -> t
(** [create n] is a bitmap of [n] bits, all clear. *)

val length : t -> int
val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val assign : t -> int -> bool -> unit

val count : t -> int
(** Number of set bits. *)

val set_run : t -> pos:int -> len:int -> unit
val clear_run : t -> pos:int -> len:int -> unit

val all_set_in_run : t -> pos:int -> len:int -> bool

val find_set : t -> from:int -> int option
(** First set bit at index >= [from], or [None]. *)

val find_run_set : t -> from:int -> upto:int -> len:int -> int option
(** [find_run_set t ~from ~upto ~len] finds the lowest [pos] with
    [from <= pos] and [pos + len <= upto] such that bits [pos .. pos+len-1]
    are all set. *)

val find_run_set_down : t -> from:int -> downto_:int -> len:int -> int option
(** Like {!find_run_set} but searching from high addresses downward:
    the highest [pos] with [downto_ <= pos] and [pos + len <= from + 1]. *)

val iter_set : t -> (int -> unit) -> unit

val union_into : dst:t -> src:t -> unit
(** [union_into ~dst ~src] sets in [dst] every bit set in [src]. Both
    bitmaps must have the same length. *)

val clear_all : t -> unit

val copy : t -> t
val equal : t -> t -> bool

val to_bytes : t -> bytes
(** Packed little-endian-bit representation, 8 bits per byte. *)

val overwrite_bytes : t -> off:int -> bytes -> unit
(** Patch a byte range of the packed representation in place (used to
    apply logged allocation-map chunks); bits beyond [length] stay
    clear. *)

val of_bytes : bits:int -> bytes -> t
(** Inverse of {!to_bytes}; raises [Invalid_argument] if [bytes] is too
    short for [bits]. *)
