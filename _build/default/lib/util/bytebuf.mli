(** Binary encoding and decoding of fixed-layout structures.

    All multi-byte integers are little-endian. Strings and byte blobs are
    length-prefixed with a 16-bit length unless a fixed width is requested.
    Decoding performs bounds checks and raises {!Decode_error} on any
    malformed input; file-system code relies on this to treat damaged
    sectors as decode failures rather than crashes. *)

exception Decode_error of string

(** Append-only encoder. *)
module Writer : sig
  type t

  val create : ?initial:int -> unit -> t

  val u8 : t -> int -> unit
  (** [u8 w v] appends one byte. [v] must be in [0, 255]. *)

  val u16 : t -> int -> unit
  val u32 : t -> int -> unit

  val u64 : t -> int64 -> unit

  val i64 : t -> int -> unit
  (** [i64 w v] appends an OCaml [int] as a 64-bit value. *)

  val bool : t -> bool -> unit

  val bytes : t -> bytes -> unit
  (** Length-prefixed (u16) byte blob; length must fit 16 bits. *)

  val string : t -> string -> unit
  (** Length-prefixed (u16) string. *)

  val raw : t -> bytes -> unit
  (** Appends bytes with no length prefix. *)

  val fixed_string : t -> width:int -> string -> unit
  (** Exactly [width] bytes: the string NUL-padded. The string must be at
      most [width] bytes and contain no NUL. *)

  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** u16 count followed by each element. *)

  val length : t -> int

  val contents : t -> bytes

  val to_sector : t -> size:int -> bytes
  (** [to_sector w ~size] pads the contents with zero bytes up to exactly
      [size] bytes. Raises [Invalid_argument] if the contents overflow. *)
end

(** Bounds-checked decoder over a byte buffer. *)
module Reader : sig
  type t

  val of_bytes : ?pos:int -> ?len:int -> bytes -> t

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int64
  val i64 : t -> int
  val bool : t -> bool
  val bytes : t -> bytes
  val string : t -> string
  val raw : t -> int -> bytes
  val fixed_string : t -> width:int -> string
  val list : t -> (t -> 'a) -> 'a list

  val pos : t -> int
  val remaining : t -> int

  val expect_u32 : t -> int -> string -> unit
  (** [expect_u32 r v what] reads a u32 and raises {!Decode_error} mentioning
      [what] unless it equals [v]. Used for magic numbers. *)
end
