type t = { mutable now : int }

let create () = { now = 0 }
let now t = t.now

let advance t us =
  if us < 0 then invalid_arg "Simclock.advance";
  t.now <- t.now + us

let advance_to t deadline = if deadline > t.now then t.now <- deadline
let us_of_ms ms = int_of_float (ms *. 1000.0)
let ms_of_us us = float_of_int us /. 1000.0
let s_of_us us = float_of_int us /. 1_000_000.0
