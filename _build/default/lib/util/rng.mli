(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic component (workload generators, fault injection,
    property tests' data) draws from an explicit [Rng.t] so that runs are
    reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** An independent generator derived from the current state. *)

val int64 : t -> int64
val int : t -> int -> int
(** [int t n] is uniform in [0, n). [n] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool
val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val choose : t -> 'a array -> 'a
val shuffle : t -> 'a array -> unit
