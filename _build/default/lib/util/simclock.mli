(** Virtual time, in microseconds.

    The disk simulator and the file systems advance this clock; nothing in
    the repository reads wall-clock time. The FSD group-commit "demon" is
    simulated by checking elapsed virtual time at operation boundaries,
    which reproduces the paper's half-second force interval
    deterministically. *)

type t

val create : unit -> t

val now : t -> int
(** Current virtual time in microseconds since boot of the simulation. *)

val advance : t -> int -> unit
(** [advance t us] moves time forward; [us] must be non-negative. *)

val advance_to : t -> int -> unit
(** [advance_to t deadline] moves time forward to [deadline] if it is in
    the future, otherwise does nothing. *)

val us_of_ms : float -> int
val ms_of_us : int -> float
val s_of_us : int -> float
