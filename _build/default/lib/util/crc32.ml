let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let bytes ?(pos = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - pos in
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.bytes";
  let t = Lazy.force table in
  let c = ref 0xffffffff in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (Bytes.get b i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let string s = bytes (Bytes.unsafe_of_string s)
