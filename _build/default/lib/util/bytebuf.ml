exception Decode_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

module Writer = struct
  type t = Buffer.t

  let create ?(initial = 256) () = Buffer.create initial
  let u8 w v =
    if v < 0 || v > 0xff then invalid_arg "Bytebuf.Writer.u8";
    Buffer.add_char w (Char.chr v)

  let u16 w v =
    if v < 0 || v > 0xffff then invalid_arg "Bytebuf.Writer.u16";
    Buffer.add_uint16_le w v

  let u32 w v =
    if v < 0 || v > 0xffffffff then invalid_arg "Bytebuf.Writer.u32";
    Buffer.add_int32_le w (Int32.of_int v)

  let u64 w v = Buffer.add_int64_le w v
  let i64 w v = u64 w (Int64.of_int v)
  let bool w b = u8 w (if b then 1 else 0)

  let bytes w b =
    u16 w (Bytes.length b);
    Buffer.add_bytes w b

  let string w s =
    u16 w (String.length s);
    Buffer.add_string w s

  let raw w b = Buffer.add_bytes w b

  let fixed_string w ~width s =
    if String.length s > width then invalid_arg "Bytebuf.Writer.fixed_string";
    if String.contains s '\000' then
      invalid_arg "Bytebuf.Writer.fixed_string: embedded NUL";
    Buffer.add_string w s;
    for _ = String.length s + 1 to width do
      Buffer.add_char w '\000'
    done

  let list w f xs =
    u16 w (List.length xs);
    List.iter (f w) xs

  let length = Buffer.length
  let contents w = Buffer.to_bytes w

  let to_sector w ~size =
    let n = Buffer.length w in
    if n > size then
      invalid_arg
        (Printf.sprintf "Bytebuf.Writer.to_sector: %d bytes > sector %d" n size);
    let out = Bytes.make size '\000' in
    Buffer.blit w 0 out 0 n;
    out
end

module Reader = struct
  type t = { buf : bytes; limit : int; mutable pos : int }

  let of_bytes ?(pos = 0) ?len buf =
    let len = match len with Some l -> l | None -> Bytes.length buf - pos in
    if pos < 0 || len < 0 || pos + len > Bytes.length buf then
      invalid_arg "Bytebuf.Reader.of_bytes";
    { buf; limit = pos + len; pos }

  let need r n = if r.pos + n > r.limit then fail "truncated input (need %d at %d, limit %d)" n r.pos r.limit

  let u8 r =
    need r 1;
    let v = Char.code (Bytes.get r.buf r.pos) in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    need r 2;
    let v = Bytes.get_uint16_le r.buf r.pos in
    r.pos <- r.pos + 2;
    v

  let u32 r =
    need r 4;
    let v = Int32.to_int (Bytes.get_int32_le r.buf r.pos) land 0xffffffff in
    r.pos <- r.pos + 4;
    v

  let u64 r =
    need r 8;
    let v = Bytes.get_int64_le r.buf r.pos in
    r.pos <- r.pos + 8;
    v

  let i64 r = Int64.to_int (u64 r)

  let bool r =
    match u8 r with
    | 0 -> false
    | 1 -> true
    | v -> fail "invalid boolean byte %d" v

  let raw r n =
    need r n;
    let b = Bytes.sub r.buf r.pos n in
    r.pos <- r.pos + n;
    b

  let bytes r =
    let n = u16 r in
    raw r n

  let string r = Bytes.to_string (bytes r)

  let fixed_string r ~width =
    let b = raw r width in
    let len =
      match Bytes.index_opt b '\000' with Some i -> i | None -> width
    in
    Bytes.sub_string b 0 len

  let list r f =
    let n = u16 r in
    List.init n (fun _ -> f r)

  let pos r = r.pos
  let remaining r = r.limit - r.pos

  let expect_u32 r v what =
    let got = u32 r in
    if got <> v then fail "bad %s: expected %#x, got %#x" what v got
end
