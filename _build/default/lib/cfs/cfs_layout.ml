open Cedar_disk

type params = {
  fnt_page_sectors : int;
  fnt_pages : int;
  cache_pages : int;
  cpu_op_us : int;
  cpu_page_us : int;
}

let default_params =
  {
    fnt_page_sectors = 4;
    fnt_pages = 4096;
    cache_pages = 128;
    cpu_op_us = 8_000;
    cpu_page_us = 150;
  }

let params_for_geometry g =
  let total = Geometry.total_sectors g in
  if total >= Geometry.total_sectors Geometry.trident_t300 / 2 then default_params
  else
    {
      default_params with
      fnt_page_sectors = 2;
      fnt_pages = max 32 (total / 64 / 2);
      cache_pages = 64;
    }

type t = {
  geom : Geometry.t;
  params : params;
  boot_a : int;
  boot_b : int;
  vam_start : int;
  vam_sectors : int;
  fnt_start : int;
  fnt_sectors : int;
  data_lo : int;
  data_hi : int;
}

let compute geom params =
  let total = Geometry.total_sectors geom in
  let vam_sectors = 1 + ((total + 4095) / 4096) in
  let fnt_sectors = params.fnt_pages * params.fnt_page_sectors in
  let fnt_start = max ((total / 2) - (fnt_sectors / 2)) (3 + vam_sectors + 1) in
  if fnt_start + fnt_sectors >= total then
    invalid_arg "Cfs_layout.compute: volume too small";
  {
    geom;
    params;
    boot_a = 0;
    boot_b = 2;
    vam_start = 3;
    vam_sectors;
    fnt_start;
    fnt_sectors;
    data_lo = 3 + vam_sectors;
    data_hi = total;
  }

let fnt_sector t ~page =
  if page < 0 || page >= t.params.fnt_pages then invalid_arg "Cfs_layout.fnt_sector";
  t.fnt_start + (page * t.params.fnt_page_sectors)

let is_data_sector t s =
  s >= t.data_lo && s < t.data_hi
  && not (s >= t.fnt_start && s < t.fnt_start + t.fnt_sectors)

let data_sectors t = t.data_hi - t.data_lo - t.fnt_sectors
