lib/cfs/cfs_layout.ml: Cedar_disk Geometry
