lib/cfs/cfs_layout.mli: Cedar_disk
