lib/cfs/header.ml: Bytebuf Bytes Cedar_disk Cedar_fsbase Cedar_util Crc32 Label List Run_table
