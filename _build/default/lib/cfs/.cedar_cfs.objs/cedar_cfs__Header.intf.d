lib/cfs/header.mli: Cedar_disk Cedar_fsbase
