lib/cfs/cfs.mli: Cedar_disk Cedar_fsbase Cfs_layout
