open Cedar_util
open Cedar_disk
open Cedar_fsbase

type kind = Local | Cached of { server : string; last_used : int }

type t = {
  uid : int64;
  name : string;
  version : int;
  keep : int;
  byte_size : int;
  created : int;
  runs : Run_table.t;
  kind : kind;
}

let sectors = 2
let magic = 0x43484431 (* "CHD1" *)

let encode t ~sector_bytes =
  let w = Bytebuf.Writer.create () in
  Bytebuf.Writer.u32 w magic;
  Bytebuf.Writer.u64 w t.uid;
  Bytebuf.Writer.string w t.name;
  Bytebuf.Writer.u32 w t.version;
  Bytebuf.Writer.u16 w t.keep;
  Bytebuf.Writer.i64 w t.byte_size;
  Bytebuf.Writer.i64 w t.created;
  Run_table.encode w t.runs;
  (match t.kind with
  | Local -> Bytebuf.Writer.u8 w 0
  | Cached { server; last_used } ->
    Bytebuf.Writer.u8 w 1;
    Bytebuf.Writer.string w server;
    Bytebuf.Writer.i64 w last_used);
  let body = Bytebuf.Writer.contents w in
  Bytebuf.Writer.u32 w (Crc32.bytes body);
  let out = Bytes.make (sectors * sector_bytes) '\000' in
  let b = Bytebuf.Writer.contents w in
  if Bytes.length b > Bytes.length out then invalid_arg "Header.encode: too large";
  Bytes.blit b 0 out 0 (Bytes.length b);
  out

let decode image =
  match
    let r = Bytebuf.Reader.of_bytes image in
    let m = Bytebuf.Reader.u32 r in
    if m <> magic then None
    else begin
      let uid = Bytebuf.Reader.u64 r in
      let name = Bytebuf.Reader.string r in
      let version = Bytebuf.Reader.u32 r in
      let keep = Bytebuf.Reader.u16 r in
      let byte_size = Bytebuf.Reader.i64 r in
      let created = Bytebuf.Reader.i64 r in
      let runs = Run_table.decode r in
      let kind =
        match Bytebuf.Reader.u8 r with
        | 0 -> Local
        | 1 ->
          let server = Bytebuf.Reader.string r in
          let last_used = Bytebuf.Reader.i64 r in
          Cached { server; last_used }
        | _ -> raise (Bytebuf.Decode_error "bad header kind")
      in
      let body_len = Bytebuf.Reader.pos r in
      let crc = Bytebuf.Reader.u32 r in
      if crc <> Crc32.bytes ~pos:0 ~len:body_len image then None
      else Some { uid; name; version; keep; byte_size; created; runs; kind }
    end
  with
  | v -> v
  | exception Bytebuf.Decode_error _ -> None
  | exception Invalid_argument _ -> None

let labels t =
  [
    { Label.uid = t.uid; page = 0; kind = Label.Header };
    { Label.uid = t.uid; page = 1; kind = Label.Header };
  ]

let data_labels t =
  List.init (Run_table.pages t.runs) (fun i ->
      { Label.uid = t.uid; page = i; kind = Label.Data })
