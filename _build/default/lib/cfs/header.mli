(** CFS file headers (Table 1): two labelled sectors per file holding the
    run table, byte size, keep, create time, version, and text name —
    the information FSD later moved into the name table. The header
    serves the role UNIX inodes do, with a different implementation. *)

type kind =
  | Local
  | Cached of { server : string; last_used : int }
      (** a cached copy of a remote file; CFS keeps its last-used time in
          the header, so every update costs a header rewrite *)

type t = {
  uid : int64;
  name : string;
  version : int;
  keep : int;
  byte_size : int;
  created : int;
  runs : Cedar_fsbase.Run_table.t;  (** data sectors only *)
  kind : kind;
}

val sectors : int
(** Always 2: "header page 0" and "header page 1". *)

val encode : t -> sector_bytes:int -> bytes
(** Exactly [sectors * sector_bytes] long, checksummed. *)

val decode : bytes -> t option
(** [None] when the image is damaged or not a header. *)

val labels : t -> Cedar_disk.Label.t list
(** The two header labels, for verified I/O. *)

val data_labels : t -> Cedar_disk.Label.t list
(** One [Data] label per data page, in logical page order. *)
