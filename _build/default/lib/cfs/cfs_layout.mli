(** CFS volume layout and tuning.

    One file-name-table region (not replicated — CFS relies on labels and
    scavenging instead), an on-disk VAM hint area, and a single data pool
    allocated first-fit with a rotating hint (the allocator whose
    fragmentation §5.6 complains about). *)

type params = {
  fnt_page_sectors : int;
  fnt_pages : int;
  cache_pages : int;
  cpu_op_us : int;
  cpu_page_us : int;
}

val default_params : params
val params_for_geometry : Cedar_disk.Geometry.t -> params

type t = {
  geom : Cedar_disk.Geometry.t;
  params : params;
  boot_a : int;
  boot_b : int;
  vam_start : int;
  vam_sectors : int;
  fnt_start : int;
  fnt_sectors : int;
  data_lo : int;
  data_hi : int;  (** [data_lo, fnt_start) and [fnt_end, data_hi) are data *)
}

val compute : Cedar_disk.Geometry.t -> params -> t
val fnt_sector : t -> page:int -> int
val is_data_sector : t -> int -> bool
val data_sectors : t -> int
