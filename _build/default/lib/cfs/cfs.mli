(** CFS — the previous Cedar file system, reimplemented as the paper's
    baseline (§2, §4).

    Robustness comes from hardware labels on every sector and from keeping
    information twice (name table + file headers): every data transfer is
    a verified, labelled I/O, creation writes labels then contents then
    the name table then the header again (≥ 6 I/Os for a one-byte file),
    and the name table is updated in place with {e no} atomicity across
    pages — a crash can corrupt it, and consistency is re-established only
    by the (very slow) scavenger, which reads every label on the disk. *)

type t

type scavenge_report = {
  files_recovered : int;
  files_lost : int;  (** headers that no longer decode *)
  duration_us : int;
}

val format : Cedar_disk.Device.t -> Cfs_layout.params -> unit
(** Labels every sector free, lays out the name table region, writes an
    empty VAM and a clean boot page. *)

val boot : Cedar_disk.Device.t -> [ `Ok of t | `Needs_scavenge ]
(** After a controlled shutdown, attaches directly. After a crash the
    name table and VAM cannot be trusted: the caller must {!scavenge}. *)

val scavenge : Cedar_disk.Device.t -> t * scavenge_report
(** Rebuild the name table and the VAM by scanning every label on the
    volume and re-reading every file header (§5.9: "an hour or more on a
    300 megabyte disk"). *)

val shutdown : t -> unit

(** {1 Operations (newest version unless stated)} *)

val create : t -> name:string -> ?keep:int -> bytes -> Cedar_fsbase.Fs_ops.info
val open_stat : t -> name:string -> Cedar_fsbase.Fs_ops.info
val exists : t -> name:string -> bool
val read_all : t -> name:string -> bytes
val read_page : t -> name:string -> page:int -> bytes
val write_page : t -> name:string -> page:int -> bytes -> unit
val delete : t -> name:string -> unit
val list : t -> prefix:string -> Cedar_fsbase.Fs_ops.info list
(** Properties come from the headers: one disk read per (uncached) file. *)

val versions : t -> name:string -> int list

(** {1 Remote-file entries (Table 1's other kinds)} *)

val create_symlink : t -> name:string -> target:string -> unit
(** Symbolic links live only in the name table — the scavenger cannot
    recover them (nothing on disk carries their labels). *)

val readlink : t -> name:string -> string option

val import_cached :
  t -> name:string -> server:string -> bytes -> Cedar_fsbase.Fs_ops.info

val touch_cached : t -> name:string -> unit
(** CFS keeps the last-used time in the header: every update rewrites the
    header pair on disk — the cost §5.4's group commit eliminates. *)

val last_used : t -> name:string -> int option

val drop_open_cache : t -> unit
(** Forget cached headers (cold-cache benchmarking). *)

(** {1 Introspection} *)

val ops : t -> Cedar_fsbase.Fs_ops.t
val layout : t -> Cfs_layout.t
val device : t -> Cedar_disk.Device.t
val free_sector_hints : t -> int

val check : t -> (unit, string) result
(** Cross-checks the name table against headers and labels. *)
