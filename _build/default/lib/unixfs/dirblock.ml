open Cedar_util

let entry_bytes name = 4 + 1 + String.length name

let fits ~block_bytes entries =
  List.fold_left (fun acc (_, n) -> acc + entry_bytes n) 4 entries <= block_bytes

let encode ~block_bytes entries =
  if not (fits ~block_bytes entries) then None
  else begin
    let w = Bytebuf.Writer.create ~initial:block_bytes () in
    List.iter
      (fun (inum, name) ->
        if inum <= 0 then invalid_arg "Dirblock.encode: bad inum";
        if String.length name > 255 || String.length name = 0 then
          invalid_arg "Dirblock.encode: bad name";
        Bytebuf.Writer.u32 w inum;
        Bytebuf.Writer.u8 w (String.length name);
        Bytebuf.Writer.raw w (Bytes.of_string name))
      entries;
    Bytebuf.Writer.u32 w 0;
    Some (Bytebuf.Writer.to_sector w ~size:block_bytes)
  end

let entries block =
  let r = Bytebuf.Reader.of_bytes block in
  let rec go acc =
    let inum = Bytebuf.Reader.u32 r in
    if inum = 0 then List.rev acc
    else begin
      let len = Bytebuf.Reader.u8 r in
      let name = Bytes.to_string (Bytebuf.Reader.raw r len) in
      go ((inum, name) :: acc)
    end
  in
  go []
