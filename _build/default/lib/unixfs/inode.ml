open Cedar_util

type kind = Reg | Dir

type t = {
  kind : kind;
  mutable nlink : int;
  mutable size : int;
  mutable mtime : int;
  direct : int array;
  mutable indirect : int;
}

let n_direct = 10
let bytes_per_inode = 128
let magic = 0x494e (* "IN", u16 *)

let empty kind ~mtime =
  { kind; nlink = 1; size = 0; mtime; direct = Array.make n_direct 0; indirect = 0 }

let encode t =
  let w = Bytebuf.Writer.create ~initial:bytes_per_inode () in
  Bytebuf.Writer.u16 w magic;
  Bytebuf.Writer.u8 w (match t.kind with Reg -> 1 | Dir -> 2);
  Bytebuf.Writer.u16 w t.nlink;
  Bytebuf.Writer.i64 w t.size;
  Bytebuf.Writer.i64 w t.mtime;
  Array.iter (Bytebuf.Writer.u32 w) t.direct;
  Bytebuf.Writer.u32 w t.indirect;
  let body = Bytebuf.Writer.contents w in
  Bytebuf.Writer.u32 w (Crc32.bytes body);
  let out = Bytes.make bytes_per_inode '\000' in
  let b = Bytebuf.Writer.contents w in
  Bytes.blit b 0 out 0 (Bytes.length b);
  out

let is_free_slot b =
  let free = ref true in
  Bytes.iter (fun c -> if c <> '\000' then free := false) b;
  !free

let decode b =
  if Bytes.length b <> bytes_per_inode then None
  else if is_free_slot b then None
  else
    match
      let r = Bytebuf.Reader.of_bytes b in
      let m = Bytebuf.Reader.u16 r in
      if m <> magic then None
      else begin
        let kind =
          match Bytebuf.Reader.u8 r with
          | 1 -> Reg
          | 2 -> Dir
          | _ -> raise (Bytebuf.Decode_error "bad inode kind")
        in
        let nlink = Bytebuf.Reader.u16 r in
        let size = Bytebuf.Reader.i64 r in
        let mtime = Bytebuf.Reader.i64 r in
        let direct = Array.init n_direct (fun _ -> Bytebuf.Reader.u32 r) in
        let indirect = Bytebuf.Reader.u32 r in
        let body_len = Bytebuf.Reader.pos r in
        let crc = Bytebuf.Reader.u32 r in
        if crc <> Crc32.bytes ~pos:0 ~len:body_len b then None
        else Some { kind; nlink; size; mtime; direct; indirect }
      end
    with
    | v -> v
    | exception Bytebuf.Decode_error _ -> None
