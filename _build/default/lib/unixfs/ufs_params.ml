type t = {
  block_sectors : int;
  cylinders_per_group : int;
  inode_ratio_blocks : int;
  rotdelay_blocks : int;
  cache_blocks : int;
  cpu_op_us : int;
  cpu_block_read_us : int;
  cpu_block_write_us : int;
}

let default =
  {
    block_sectors = 8;
    cylinders_per_group = 16;
    inode_ratio_blocks = 1; (* newfs defaulted to ~1 inode per 2 KB *)
    rotdelay_blocks = 0;
    cache_blocks = 64;
    cpu_op_us = 2_500;
    cpu_block_read_us = 3_800;
    cpu_block_write_us = 6_600;
  }

let bsd42 = { default with rotdelay_blocks = 1 }

let for_geometry g =
  let open Cedar_disk in
  if Geometry.total_sectors g >= Geometry.total_sectors Geometry.trident_t300 / 2
  then default
  else { default with cylinders_per_group = 8; cache_blocks = 32 }
