lib/unixfs/dirblock.mli:
