lib/unixfs/dirblock.ml: Bytebuf Bytes Cedar_util List String
