lib/unixfs/ufs_params.ml: Cedar_disk Geometry
