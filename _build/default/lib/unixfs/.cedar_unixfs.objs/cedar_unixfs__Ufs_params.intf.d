lib/unixfs/ufs_params.mli: Cedar_disk
