lib/unixfs/inode.mli:
