lib/unixfs/inode.ml: Array Bytebuf Bytes Cedar_util Crc32
