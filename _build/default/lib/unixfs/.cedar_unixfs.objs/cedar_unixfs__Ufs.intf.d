lib/unixfs/ufs.mli: Cedar_disk Cedar_fsbase Ufs_params
