(** On-disk inodes: 128 bytes each, 32 per 4 KB block. Ten direct block
    pointers plus one single-indirect, like the early FFS. Pointer 0
    means "no block" (block 0 holds the boot block, never file data). *)

type kind = Reg | Dir

type t = {
  kind : kind;
  mutable nlink : int;
  mutable size : int;  (** bytes *)
  mutable mtime : int;
  direct : int array;  (** length {!n_direct} *)
  mutable indirect : int;  (** block of pointers, or 0 *)
}

val n_direct : int
val bytes_per_inode : int

val empty : kind -> mtime:int -> t

val encode : t -> bytes
(** Exactly {!bytes_per_inode} long. *)

val decode : bytes -> t option
(** [None] for a free slot (all zero) or a damaged image. *)

val is_free_slot : bytes -> bool
