(** Parameters of the simplified BSD fast file system used as the paper's
    Tables 4/5 comparison point.

    [rotdelay_blocks = 1] reproduces 4.2-style rotationally-spaced block
    allocation (about half the raw bandwidth on sequential transfers);
    [rotdelay_blocks = 0] is 4.3-style contiguous allocation. Data-path
    CPU ([cpu_block_us]) is modelled as overlapping the rotational gaps,
    which is how a VAX could burn 95 % CPU while still moving 47 % of the
    disk's bandwidth (Table 5). *)

type t = {
  block_sectors : int;  (** 8 x 512 = the 4 KB FFS block *)
  cylinders_per_group : int;
  inode_ratio_blocks : int;  (** one inode per this many data blocks *)
  rotdelay_blocks : int;
  cache_blocks : int;
  cpu_op_us : int;
  cpu_block_read_us : int;
  cpu_block_write_us : int;
}

val default : t
(** 4.3-style (clustered allocation). *)

val bsd42 : t
(** 4.2-style (rotational spacing). *)

val for_geometry : Cedar_disk.Geometry.t -> t
