(** A simplified 4.3 BSD fast file system — the paper's Table 4/5
    comparison point.

    Faithful to what the comparison measures: cylinder groups holding
    bitmaps + inode blocks + data, a buffer cache, {e synchronous} writes
    of directories and inodes on create/unlink (the ordering discipline
    §5.3 contrasts with logging), delayed data writes, optional
    rotational spacing of data blocks (4.2 mode), and [fsck] after a
    crash. Omitted relative to real FFS: fragments, quotas, symlinks,
    and multi-level indirects — none affect the counted quantities. *)

type t

type fsck_report = {
  inodes_checked : int;
  dirs_checked : int;
  problems_fixed : int;
  duration_us : int;
}

val mkfs : Cedar_disk.Device.t -> Ufs_params.t -> unit
val mount : Cedar_disk.Device.t -> [ `Ok of t | `Needs_fsck ]
val unmount : t -> unit
val fsck : Cedar_disk.Device.t -> t * fsck_report
val sync : t -> unit

(** {1 Files (paths with [/] separators; directories created on demand)} *)

val create : t -> path:string -> bytes -> Cedar_fsbase.Fs_ops.info
(** Overwrites an existing file (BSD has no versions). *)

val read_all : t -> path:string -> bytes
val read_page : t -> path:string -> page:int -> bytes
(** [page] indexes 512-byte units, for parity with the Cedar systems. *)

val stat : t -> path:string -> Cedar_fsbase.Fs_ops.info
val unlink : t -> path:string -> unit
val readdir : t -> path:string -> Cedar_fsbase.Fs_ops.info list
(** Directory listing with per-entry stat (what [ls -l] costs). *)

val exists : t -> path:string -> bool

(** {1 Introspection} *)

val ops : t -> Cedar_fsbase.Fs_ops.t
(** [list ~prefix] maps to [readdir] of the directory named by the
    prefix (with any trailing [/] removed). *)

val device : t -> Cedar_disk.Device.t
val cpu_overlapped_us : t -> int
(** Data-path CPU charged as overlapping rotational gaps (Table 5). *)

val drop_clean_cache : t -> unit
(** Evict clean buffers (cold-cache benchmarking). *)

val free_blocks : t -> int

val inode_sector : t -> int -> int
(** The sector holding inode [inum]'s slot (fault-injection tests target
    it). *)

val check : t -> (unit, string) result
