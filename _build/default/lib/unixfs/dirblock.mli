(** Directory data blocks: a packed sequence of (inode number, name)
    entries, zero-terminated. *)

val entries : bytes -> (int * string) list
(** Decodes a block; raises [Bytebuf.Decode_error] on damage. *)

val encode : block_bytes:int -> (int * string) list -> bytes option
(** [None] if the entries do not fit the block. *)

val entry_bytes : string -> int
val fits : block_bytes:int -> (int * string) list -> bool
