open Cedar_util
open Cedar_disk

type mode = Snapshot | Log_based

type t = {
  layout : Layout.t;
  free : Bitmap.t;
  shadow : Bitmap.t;
  dirty_chunks : (int, unit) Hashtbl.t; (* bitmap chunks touched since drain *)
}

let total t = Bitmap.length t.free

let chunk_bytes layout = layout.Layout.geom.Geometry.sector_bytes

let create_none_free layout =
  let bits = Geometry.total_sectors layout.Layout.geom in
  {
    layout;
    free = Bitmap.create bits;
    shadow = Bitmap.create bits;
    dirty_chunks = Hashtbl.create 16;
  }

let create_all_free layout =
  let t = create_none_free layout in
  let set_range lo hi = if hi > lo then Bitmap.set_run t.free ~pos:lo ~len:(hi - lo) in
  set_range layout.Layout.small_lo layout.Layout.small_hi;
  set_range layout.Layout.big_lo layout.Layout.big_hi;
  t

let layout t = t.layout
let is_free t s = Bitmap.get t.free s
let free_count t = Bitmap.count t.free

let check_run t ~pos ~len =
  if len <= 0 || pos < 0 || pos + len > total t then invalid_arg "Vam: bad run"

(* Chunk c covers bits [c * 8 * chunk_bytes, ...): one save-area sector. *)
let mark_chunks t ~pos ~len =
  let per = 8 * chunk_bytes t.layout in
  for c = pos / per to (pos + len - 1) / per do
    Hashtbl.replace t.dirty_chunks c ()
  done

let allocate_run t ~pos ~len =
  check_run t ~pos ~len;
  if not (Bitmap.all_set_in_run t.free ~pos ~len) then
    invalid_arg (Printf.sprintf "Vam.allocate_run: [%d,+%d) not free" pos len);
  Bitmap.clear_run t.free ~pos ~len;
  mark_chunks t ~pos ~len

let release_run t ~pos ~len =
  check_run t ~pos ~len;
  for s = pos to pos + len - 1 do
    if not (Layout.is_data_sector t.layout s) then
      invalid_arg "Vam.release_run: metadata sector";
    if Bitmap.get t.free s then invalid_arg "Vam.release_run: double free";
    Bitmap.set t.free s
  done;
  mark_chunks t ~pos ~len

let shadow_release_run t ~pos ~len =
  check_run t ~pos ~len;
  Bitmap.set_run t.shadow ~pos ~len

let commit_shadow t =
  Bitmap.iter_set t.shadow (fun s -> mark_chunks t ~pos:s ~len:1);
  Bitmap.union_into ~dst:t.free ~src:t.shadow;
  Bitmap.clear_all t.shadow

let shadow_count t = Bitmap.count t.shadow
let find_free_run t = Bitmap.find_run_set t.free
let find_free_run_down t = Bitmap.find_run_set_down t.free

let mark_allocated_for_rebuild t s =
  if Bitmap.get t.free s then Bitmap.clear t.free s

(* --- chunk interface for the VAM-logging extension ------------------- *)

let chunk_count t = t.layout.Layout.vam_sectors - 1

let chunk_image t c =
  if c < 0 || c >= chunk_count t then invalid_arg "Vam.chunk_image";
  let cb = chunk_bytes t.layout in
  let packed = Bitmap.to_bytes t.free in
  let out = Bytes.make cb '\000' in
  let off = c * cb in
  let len = max 0 (min cb (Bytes.length packed - off)) in
  if len > 0 then Bytes.blit packed off out 0 len;
  out

let apply_chunk t c image =
  if c < 0 || c >= chunk_count t then invalid_arg "Vam.apply_chunk";
  let cb = chunk_bytes t.layout in
  if Bytes.length image <> cb then invalid_arg "Vam.apply_chunk: image size";
  let packed_len = (Bitmap.length t.free + 7) / 8 in
  let off = c * cb in
  let len = max 0 (min cb (packed_len - off)) in
  if len > 0 then Bitmap.overwrite_bytes t.free ~off (Bytes.sub image 0 len)

let drain_dirty_chunks t =
  let cs = Hashtbl.fold (fun c () acc -> c :: acc) t.dirty_chunks [] in
  Hashtbl.reset t.dirty_chunks;
  List.sort compare cs

let dirty_chunk_count t = Hashtbl.length t.dirty_chunks

let mark_free_for_rebuild t ~pos ~len = Bitmap.set_run t.free ~pos ~len

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)

let magic = 0x56414d31 (* "VAM1" *)

let save ?(mode = Snapshot) ?(epoch = 0L) t device =
  let sb = t.layout.Layout.geom.Geometry.sector_bytes in
  let bits = total t in
  let body = Bitmap.to_bytes t.free in
  let header = Bytebuf.Writer.create () in
  Bytebuf.Writer.u32 header magic;
  Bytebuf.Writer.u32 header bits;
  Bytebuf.Writer.bool header true; (* clean *)
  Bytebuf.Writer.u8 header (match mode with Snapshot -> 0 | Log_based -> 1);
  Bytebuf.Writer.u64 header epoch;
  Bytebuf.Writer.u32 header (Crc32.bytes body);
  Device.write device t.layout.Layout.vam_start
    (Bytebuf.Writer.to_sector header ~size:sb);
  (* Body sectors follow the header in one command. *)
  let body_sectors = t.layout.Layout.vam_sectors - 1 in
  let padded = Bytes.make (body_sectors * sb) '\000' in
  Bytes.blit body 0 padded 0 (Bytes.length body);
  Device.write_run device ~sector:(t.layout.Layout.vam_start + 1) padded

let load layout device =
  let bits = Geometry.total_sectors layout.Layout.geom in
  match Device.read device layout.Layout.vam_start with
  | exception Device.Error _ -> None
  | header -> (
    let r = Bytebuf.Reader.of_bytes header in
    match
      let m = Bytebuf.Reader.u32 r in
      let saved_bits = Bytebuf.Reader.u32 r in
      let clean = Bytebuf.Reader.bool r in
      let mode = match Bytebuf.Reader.u8 r with 0 -> Snapshot | _ -> Log_based in
      let epoch = Bytebuf.Reader.u64 r in
      let crc = Bytebuf.Reader.u32 r in
      (m, saved_bits, clean, mode, epoch, crc)
    with
    | exception Bytebuf.Decode_error _ -> None
    | m, saved_bits, clean, mode, epoch, crc ->
      if m <> magic || saved_bits <> bits || not clean then None
      else begin
        let body_sectors = layout.Layout.vam_sectors - 1 in
        match
          Device.read_run device ~sector:(layout.Layout.vam_start + 1)
            ~count:body_sectors
        with
        | exception Device.Error _ -> None
        | body ->
          let body = Bytes.sub body 0 ((bits + 7) / 8) in
          if Crc32.bytes body <> crc then None
          else
            Some
              ( {
                  layout;
                  free = Bitmap.of_bytes ~bits body;
                  shadow = Bitmap.create bits;
                  dirty_chunks = Hashtbl.create 16;
                },
                mode,
                epoch )
      end)

let invalidate_saved layout device =
  let sb = layout.Layout.geom.Geometry.sector_bytes in
  let header = Bytebuf.Writer.create () in
  Bytebuf.Writer.u32 header magic;
  Bytebuf.Writer.u32 header (Geometry.total_sectors layout.Layout.geom);
  Bytebuf.Writer.bool header false; (* not clean *)
  Bytebuf.Writer.u8 header 0;
  Bytebuf.Writer.u64 header 0L;
  Bytebuf.Writer.u32 header 0;
  Device.write device layout.Layout.vam_start
    (Bytebuf.Writer.to_sector header ~size:sb)
