(** Leader pages (§5.2).

    Each FSD file has one leader page, physically preceding its first data
    page. It carries no information needed for operation — it is a
    mutually-checking structure against the name table (uid, the preamble
    of the run table, and a checksum of the whole run table). It is
    verified opportunistically by piggybacking its read on the file's
    first data access (§5.7). *)

type t = {
  uid : int64;
  preamble : Cedar_fsbase.Run_table.run option;  (** first run of the table *)
  run_crc : int;
  created : int;
}

val of_entry : Cedar_fsbase.Entry.t -> t

val encode : t -> sector_bytes:int -> bytes

val decode : bytes -> t option
(** [None] when the sector does not hold a well-formed leader. *)

val matches : t -> Cedar_fsbase.Entry.t -> bool
(** The §5.8 software check: does this leader corroborate the name-table
    entry? *)
