open Cedar_util
open Cedar_fsbase

type t = {
  uid : int64;
  preamble : Run_table.run option;
  run_crc : int;
  created : int;
}

let magic = 0x4c445231 (* "LDR1" *)

let of_entry (e : Entry.t) =
  {
    uid = e.Entry.uid;
    preamble = (match Run_table.runs e.Entry.runs with [] -> None | r :: _ -> Some r);
    run_crc = Run_table.crc e.Entry.runs;
    created = e.Entry.created;
  }

let encode t ~sector_bytes =
  let w = Bytebuf.Writer.create () in
  Bytebuf.Writer.u32 w magic;
  Bytebuf.Writer.u64 w t.uid;
  (match t.preamble with
  | None -> Bytebuf.Writer.bool w false
  | Some r ->
    Bytebuf.Writer.bool w true;
    Bytebuf.Writer.u32 w r.Run_table.start;
    Bytebuf.Writer.u32 w r.Run_table.len);
  Bytebuf.Writer.u32 w t.run_crc;
  Bytebuf.Writer.i64 w t.created;
  (* Self-checksum so a torn or wild write is detectable. *)
  let body = Bytebuf.Writer.contents w in
  Bytebuf.Writer.u32 w (Crc32.bytes body);
  Bytebuf.Writer.to_sector w ~size:sector_bytes

let decode b =
  match
    let r = Bytebuf.Reader.of_bytes b in
    let m = Bytebuf.Reader.u32 r in
    if m <> magic then None
    else begin
      let uid = Bytebuf.Reader.u64 r in
      let preamble =
        if Bytebuf.Reader.bool r then begin
          let start = Bytebuf.Reader.u32 r in
          let len = Bytebuf.Reader.u32 r in
          Some { Run_table.start; len }
        end
        else None
      in
      let run_crc = Bytebuf.Reader.u32 r in
      let created = Bytebuf.Reader.i64 r in
      let body_len = Bytebuf.Reader.pos r in
      let crc = Bytebuf.Reader.u32 r in
      if crc <> Crc32.bytes ~pos:0 ~len:body_len b then None
      else Some { uid; preamble; run_crc; created }
    end
  with
  | v -> v
  | exception Bytebuf.Decode_error _ -> None

let matches t (e : Entry.t) =
  let expected = of_entry e in
  t.uid = expected.uid && t.run_crc = expected.run_crc
  && t.preamble = expected.preamble
  && t.created = expected.created
