(** Run (extent) allocator over the VAM (§5.6).

    Small files are placed in the small-file area, allocated upward with a
    next-fit pointer; big files in the big-file area, allocated downward —
    like heap and stack growing toward each other. The areas are only
    hints: when the preferred area cannot satisfy a request, the other
    area is used. A request is satisfied by as few runs as possible,
    preferring one contiguous run. *)

type t

val create : Vam.t -> t

val allocate :
  t -> sectors:int -> small:bool -> (Cedar_fsbase.Run_table.run list, [ `Volume_full | `Too_fragmented ]) result
(** At most [Params.max_runs_per_file] runs. On success the sectors are
    already marked allocated in the VAM. *)

val free_on_commit : t -> Cedar_fsbase.Run_table.run list -> unit
val free_now : t -> Cedar_fsbase.Run_table.run list -> unit
val commit : t -> unit
(** Apply all pending shadow frees (the delete commit point). *)

val vam : t -> Vam.t
