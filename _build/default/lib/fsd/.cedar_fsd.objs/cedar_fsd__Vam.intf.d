lib/fsd/vam.mli: Cedar_disk Layout
