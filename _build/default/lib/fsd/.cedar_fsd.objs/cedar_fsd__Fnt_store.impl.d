lib/fsd/fnt_store.ml: Bitmap Bytebuf Bytes Cedar_disk Cedar_fsbase Cedar_util Crc32 Device Fs_error Geometry Int64 Layout List Lru Params Printf
