lib/fsd/alloc.ml: Cedar_fsbase Layout List Params Run_table Vam
