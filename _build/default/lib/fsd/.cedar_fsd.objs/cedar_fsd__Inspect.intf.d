lib/fsd/inspect.mli: Cedar_disk Format Fsd Layout
