lib/fsd/params.ml: Cedar_disk Geometry Printf
