lib/fsd/fnt_store.mli: Cedar_disk Layout
