lib/fsd/log.ml: Array Bytebuf Bytes Cedar_disk Cedar_util Crc32 Device Geometry Hashtbl Int64 Layout List Option Params Stats
