lib/fsd/boot_page.ml: Bytebuf Bytes Cedar_disk Cedar_util Crc32 Device
