lib/fsd/boot_page.mli: Cedar_disk
