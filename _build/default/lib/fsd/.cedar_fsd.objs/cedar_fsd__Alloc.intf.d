lib/fsd/alloc.mli: Cedar_fsbase Vam
