lib/fsd/fsd.mli: Cedar_btree Cedar_disk Cedar_fsbase Layout Log Params
