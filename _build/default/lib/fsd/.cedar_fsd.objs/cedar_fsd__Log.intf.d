lib/fsd/log.mli: Cedar_disk Cedar_util Layout
