lib/fsd/vam.ml: Bitmap Bytebuf Bytes Cedar_disk Cedar_util Crc32 Device Geometry Hashtbl Layout List Printf
