lib/fsd/inspect.ml: Buffer Bytes Cedar_btree Cedar_disk Cedar_fsbase Entry Format Fsd Geometry Int64 Layout List Log Params
