lib/fsd/leader.mli: Cedar_fsbase
