lib/fsd/layout.mli: Cedar_disk Format Params
