lib/fsd/leader.ml: Bytebuf Cedar_fsbase Cedar_util Crc32 Entry Run_table
