lib/fsd/layout.ml: Cedar_disk Format Geometry Params
