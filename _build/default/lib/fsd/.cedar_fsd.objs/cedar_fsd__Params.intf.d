lib/fsd/params.mli: Cedar_disk
