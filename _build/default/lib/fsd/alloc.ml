open Cedar_fsbase

type t = { vam : Vam.t; mutable small_hint : int; mutable big_hint : int }

let create vam =
  let l = Vam.layout vam in
  { vam; small_hint = l.Layout.small_lo; big_hint = l.Layout.big_hi - 1 }

let vam t = t.vam

(* Find one free run of exactly [len] in the small area (next-fit, upward). *)
let find_small t len =
  let l = Vam.layout t.vam in
  let lo = l.Layout.small_lo and hi = l.Layout.small_hi in
  if hi - lo < len then None
  else
    match Vam.find_free_run t.vam ~from:t.small_hint ~upto:hi ~len with
    | Some pos -> Some pos
    | None -> Vam.find_free_run t.vam ~from:lo ~upto:(min hi (t.small_hint + len)) ~len

let find_big t len =
  let l = Vam.layout t.vam in
  let lo = l.Layout.big_lo and hi = l.Layout.big_hi in
  if hi - lo < len then None
  else
    match Vam.find_free_run_down t.vam ~from:t.big_hint ~downto_:lo ~len with
    | Some pos -> Some pos
    | None -> Vam.find_free_run_down t.vam ~from:(hi - 1) ~downto_:(max lo (t.big_hint - len)) ~len

let claim t ~small pos len =
  Vam.allocate_run t.vam ~pos ~len;
  if small then t.small_hint <- pos + len else t.big_hint <- pos - 1;
  { Run_table.start = pos; len }

(* One run of [len], in the preferred area first, then the other. *)
let find_one t ~small len =
  let primary, secondary = if small then (find_small, find_big) else (find_big, find_small) in
  match primary t len with
  | Some pos -> Some (claim t ~small pos len)
  | None -> (
    match secondary t len with
    | Some pos -> Some (claim t ~small:(not small) pos len)
    | None -> None)

let release_all t runs =
  List.iter
    (fun r -> Vam.release_run t.vam ~pos:r.Run_table.start ~len:r.Run_table.len)
    runs

let max_runs t =
  (Vam.layout t.vam).Layout.params.Params.max_runs_per_file

let allocate t ~sectors ~small =
  if sectors <= 0 then invalid_arg "Alloc.allocate";
  (* Prefer a single contiguous run; otherwise take the biggest pieces we
     can find, halving the request until something fits. *)
  let rec gather acc remaining chunk nruns =
    if remaining = 0 then Ok (List.rev acc)
    else if nruns >= max_runs t then begin
      release_all t acc;
      Error `Too_fragmented
    end
    else
      let want = min remaining chunk in
      match find_one t ~small want with
      | Some run -> gather (run :: acc) (remaining - want) chunk (nruns + 1)
      | None ->
        if chunk = 1 then begin
          release_all t acc;
          Error `Volume_full
        end
        else gather acc remaining (max 1 (chunk / 2)) nruns
  in
  gather [] sectors sectors 0

let free_on_commit t runs =
  List.iter (fun r -> Vam.shadow_release_run t.vam ~pos:r.Run_table.start ~len:r.Run_table.len) runs

let free_now t runs =
  List.iter (fun r -> Vam.release_run t.vam ~pos:r.Run_table.start ~len:r.Run_table.len) runs

let commit t = Vam.commit_shadow t.vam
