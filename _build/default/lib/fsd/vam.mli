(** The Volume Allocation Map (§5.5).

    Kept entirely in volatile memory during normal operation — FSD does no
    disk writes to track free pages. A set bit means "free". Pages of
    deleted-but-uncommitted files sit in the {e shadow} bitmap and only
    become allocatable when the deletion commits; this keeps a crashed
    uncommitted delete from having handed the pages to a new file.

    The map is saved to its disk area on controlled shutdown, loaded on a
    clean boot, and reconstructed from the name table otherwise. *)

type t

type mode =
  | Snapshot
      (** a full map, valid only while nothing has changed since the save
          (the paper's scheme: saved at shutdown and idle) *)
  | Log_based
      (** a base image whose subsequent changes live in the redo log as
          {!Cedar_fsd.Log.Vam_chunk} records — the extension §5.3
          declined to build *)

val create_all_free : Layout.t -> t
(** Every data sector free; metadata regions permanently non-free. *)

val create_none_free : Layout.t -> t
(** Every sector non-free: the starting point for reconstruction. *)

val layout : t -> Layout.t
val is_free : t -> int -> bool
val free_count : t -> int

val allocate_run : t -> pos:int -> len:int -> unit
(** Marks the run allocated. Raises [Invalid_argument] if any sector is
    not currently free. *)

val release_run : t -> pos:int -> len:int -> unit
(** Immediate release (used by reconstruction and by aborted creates). *)

val shadow_release_run : t -> pos:int -> len:int -> unit
(** Deferred release: free only at the next {!commit_shadow}. *)

val commit_shadow : t -> unit
val shadow_count : t -> int

val find_free_run : t -> from:int -> upto:int -> len:int -> int option
val find_free_run_down : t -> from:int -> downto_:int -> len:int -> int option

val mark_allocated_for_rebuild : t -> int -> unit
(** During reconstruction: claim one sector found referenced by the FNT. *)

val mark_free_for_rebuild : t -> pos:int -> len:int -> unit

(** {1 Persistence (§5.5: saved on shutdown, read if properly saved)} *)

val save : ?mode:mode -> ?epoch:int64 -> t -> Cedar_disk.Device.t -> unit
(** Writes the bitmap and a checksummed header marking it cleanly saved.
    [mode] defaults to [Snapshot]. For a [Log_based] base, [epoch] is the
    highest log record number whose effects the image already contains:
    recovery applies only chunk images from records numbered above it. *)

val load : Layout.t -> Cedar_disk.Device.t -> (t * mode * int64) option
(** [None] if the save area is absent, damaged, or not marked clean. *)

val invalidate_saved : Layout.t -> Cedar_disk.Device.t -> unit
(** Marks the on-disk copy stale; called as soon as a boot proceeds so a
    later crash cannot reuse it. *)

(** {1 Chunks (the VAM-logging extension)}

    The packed bitmap is divided into sector-sized chunks, chunk [c]
    being what {!save} writes at save-area sector [c + 1]. Mutations
    mark the covering chunks dirty; the extension logs dirty chunk
    images at each group commit so recovery can rebuild the map from the
    saved base plus the log, skipping the name-table scan. *)

val chunk_count : t -> int
val chunk_image : t -> int -> bytes
val apply_chunk : t -> int -> bytes -> unit
val drain_dirty_chunks : t -> int list
(** Chunks touched since the last drain, ascending; clears the set. *)

val dirty_chunk_count : t -> int
