(* Negative-path tests: every module must reject API misuse loudly
   (Invalid_argument) and malformed input predictably (Decode_error /
   option / result) — never by silent corruption. *)

open Cedar_util
open Cedar_disk
open Cedar_fsbase

let check = Alcotest.check
let bool = Alcotest.bool

let inv f =
  match f () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Bytebuf                                                              *)

let test_writer_bounds () =
  let w = Bytebuf.Writer.create () in
  inv (fun () -> Bytebuf.Writer.u8 w 256);
  inv (fun () -> Bytebuf.Writer.u8 w (-1));
  inv (fun () -> Bytebuf.Writer.u16 w 65536);
  inv (fun () -> Bytebuf.Writer.u32 w (-5));
  inv (fun () -> Bytebuf.Writer.fixed_string w ~width:3 "toolong");
  inv (fun () -> Bytebuf.Writer.fixed_string w ~width:8 "nul\000here");
  Bytebuf.Writer.raw w (Bytes.make 600 'x');
  inv (fun () -> Bytebuf.Writer.to_sector w ~size:512)

let test_reader_bounds () =
  inv (fun () -> Bytebuf.Reader.of_bytes ~pos:5 (Bytes.create 3));
  let r = Bytebuf.Reader.of_bytes (Bytes.create 2) in
  match Bytebuf.Reader.u32 r with
  | _ -> Alcotest.fail "expected Decode_error"
  | exception Bytebuf.Decode_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Bitmap / Lru / Rng / Simclock                                        *)

let test_bitmap_bounds () =
  let b = Bitmap.create 10 in
  inv (fun () -> Bitmap.get b 10);
  inv (fun () -> Bitmap.set b (-1));
  inv (fun () -> Bitmap.find_run_set b ~from:0 ~upto:10 ~len:0);
  inv (fun () -> Bitmap.of_bytes ~bits:100 (Bytes.create 2));
  inv (fun () -> Bitmap.union_into ~dst:b ~src:(Bitmap.create 11));
  inv (fun () -> Bitmap.overwrite_bytes b ~off:1 (Bytes.create 2))

let test_lru_misuse () =
  inv (fun () -> Lru.create ~capacity:0);
  let c = Lru.create ~capacity:2 in
  inv (fun () -> Lru.pin c 42);
  inv (fun () -> Lru.unpin c 42)

let test_rng_misuse () =
  let r = Rng.create 1 in
  inv (fun () -> Rng.int r 0);
  inv (fun () -> Rng.int_in r ~lo:5 ~hi:4);
  inv (fun () -> Rng.choose r [||])

let test_simclock_misuse () =
  let c = Simclock.create () in
  inv (fun () -> Simclock.advance c (-1))

(* ------------------------------------------------------------------ *)
(* Run_table / Fname                                                    *)

let test_run_table_misuse () =
  inv (fun () -> Run_table.of_runs [ { Run_table.start = -1; len = 2 } ]);
  inv (fun () -> Run_table.of_runs [ { Run_table.start = 3; len = 0 } ]);
  let t = Run_table.of_runs [ { Run_table.start = 10; len = 2 } ] in
  inv (fun () -> Run_table.sector_of_page t 2);
  inv (fun () -> Run_table.sector_of_page t (-1));
  inv (fun () -> Run_table.truncate t ~pages:3);
  inv (fun () -> Run_table.contiguous_prefix t ~page:2)

let test_fname_misuse () =
  inv (fun () -> Fname.key ~name:"ok" ~version:0);
  inv (fun () -> Fname.key ~name:"ok" ~version:1_000_000);
  inv (fun () -> Fname.key ~name:"bad!bang" ~version:1);
  inv (fun () -> Fname.key ~name:"" ~version:1)

(* ------------------------------------------------------------------ *)
(* Device                                                               *)

let test_device_misuse () =
  let d = Device.create ~clock:(Simclock.create ()) Geometry.tiny_test in
  let total = Geometry.total_sectors Geometry.tiny_test in
  inv (fun () -> Device.read d total);
  inv (fun () -> Device.read d (-1));
  inv (fun () -> Device.write d 0 (Bytes.create 100));
  inv (fun () -> Device.read_run d ~sector:0 ~count:0);
  inv (fun () -> Device.read_run d ~sector:(total - 2) ~count:5);
  inv (fun () -> Device.write_run d ~sector:0 (Bytes.create 700));
  inv (fun () -> Device.write_labels d ~sector:0 []);
  inv (fun () -> Device.plan_write_crash d ~after_sectors:(-1) ~damage_tail:1);
  inv (fun () -> Device.plan_write_crash d ~after_sectors:0 ~damage_tail:5)

(* ------------------------------------------------------------------ *)
(* FSD public API                                                       *)

let fsd () =
  let device = Device.create ~clock:(Simclock.create ()) Geometry.tiny_test in
  Cedar_fsd.Fsd.format device (Cedar_fsd.Params.for_geometry Geometry.tiny_test);
  fst (Cedar_fsd.Fsd.boot device)

let expect_fs_error pred f =
  match f () with
  | _ -> Alcotest.fail "expected Fs_error"
  | exception Fs_error.Fs_error e ->
    if not (pred e) then Alcotest.fail ("wrong error: " ^ Fs_error.to_string e)

let test_fsd_api_misuse () =
  let open Cedar_fsd in
  let fs = fsd () in
  ignore (Fsd.create fs ~name:"x" (Bytes.make 100 'a'));
  inv (fun () -> Fsd.extend fs ~name:"x" ~pages:0);
  inv (fun () -> Fsd.contract fs ~name:"x" ~pages:(-1));
  inv (fun () -> Fsd.set_keep fs ~name:"x" ~keep:(-1));
  inv (fun () -> Fsd.create_empty fs ~name:"y" ~pages:(-1) ());
  expect_fs_error
    (function Fs_error.Bad_page _ -> true | _ -> false)
    (fun () -> Fsd.contract fs ~name:"x" ~pages:99);
  expect_fs_error
    (function Fs_error.Corrupt_metadata _ -> true | _ -> false)
    (fun () -> Fsd.touch_cached fs ~name:"x");
  expect_fs_error
    (function Fs_error.No_such_file _ -> true | _ -> false)
    (fun () -> Fsd.rename fs ~from_:"ghost" ~to_:"elsewhere");
  (* a name too big for the name table *)
  expect_fs_error
    (function Fs_error.Bad_name _ -> true | _ -> false)
    (fun () -> Fsd.create fs ~name:(String.make 200 'n') (Bytes.create 1))

let test_fsd_volume_full () =
  let open Cedar_fsd in
  let fs = fsd () in
  expect_fs_error
    (function Fs_error.Volume_full -> true | _ -> false)
    (fun () ->
      for i = 0 to 10_000 do
        ignore (Fsd.create fs ~name:(Printf.sprintf "fill%05d" i) (Bytes.make 20_000 'f'))
      done)

(* ------------------------------------------------------------------ *)
(* Log                                                                  *)

let test_log_misuse () =
  let open Cedar_fsd in
  let geom = Geometry.tiny_test in
  let layout = Layout.compute geom (Params.for_geometry geom) in
  let device = Device.create ~clock:(Simclock.create ()) geom in
  Log.format device layout;
  let log =
    Log.attach device layout ~boot_count:1 ~next_record_no:1L ~write_off:0
      ~on_enter_third:(fun _ -> ())
  in
  inv (fun () -> Log.append log []);
  inv (fun () ->
      Log.append log [ { Log.kind = Log.Leader_page 9; image = Bytes.create 100 } ])

let suite =
  [
    ("bytebuf writer bounds", `Quick, test_writer_bounds);
    ("bytebuf reader bounds", `Quick, test_reader_bounds);
    ("bitmap bounds", `Quick, test_bitmap_bounds);
    ("lru misuse", `Quick, test_lru_misuse);
    ("rng misuse", `Quick, test_rng_misuse);
    ("simclock misuse", `Quick, test_simclock_misuse);
    ("run table misuse", `Quick, test_run_table_misuse);
    ("fname misuse", `Quick, test_fname_misuse);
    ("device misuse", `Quick, test_device_misuse);
    ("fsd api misuse", `Quick, test_fsd_api_misuse);
    ("fsd volume full", `Quick, test_fsd_volume_full);
    ("log misuse", `Quick, test_log_misuse);
  ]
