(* Tests for the BSD baseline: create/read/unlink, sync-metadata
   discipline, fsck after crash, rotational-spacing behaviour. *)

open Cedar_util
open Cedar_disk
open Cedar_fsbase
open Cedar_unixfs

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let fresh ?(params = Ufs_params.for_geometry Geometry.small_test)
    ?(geom = Geometry.small_test) () =
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  Ufs.mkfs device params;
  match Ufs.mount device with
  | `Ok fs -> (device, fs)
  | `Needs_fsck -> Alcotest.fail "fresh volume must mount"

let content n seed = Bytes.init n (fun i -> Char.chr ((i + seed) mod 251))

let test_create_read () =
  let _, fs = fresh () in
  let data = content 5000 1 in
  let info = Ufs.create fs ~path:"usr/src/prog.c" data in
  check int "size" 5000 info.Fs_ops.byte_size;
  check bool "roundtrip" true (Bytes.equal data (Ufs.read_all fs ~path:"usr/src/prog.c"));
  check bool "exists" true (Ufs.exists fs ~path:"usr/src/prog.c");
  check bool "dir exists" true (Ufs.exists fs ~path:"usr/src");
  check bool "check" true (Ufs.check fs = Ok ())

let test_overwrite () =
  let _, fs = fresh () in
  ignore (Ufs.create fs ~path:"f" (content 100 1));
  ignore (Ufs.create fs ~path:"f" (content 300 2));
  check bool "newest content" true (Bytes.equal (content 300 2) (Ufs.read_all fs ~path:"f"))

let test_unlink () =
  let _, fs = fresh () in
  ignore (Ufs.create fs ~path:"a/b" (content 900 3));
  let free0 = Ufs.free_blocks fs in
  ignore (Ufs.create fs ~path:"a/c" (content 9000 4));
  Ufs.unlink fs ~path:"a/c";
  check int "blocks reclaimed" free0 (Ufs.free_blocks fs);
  check bool "gone" false (Ufs.exists fs ~path:"a/c");
  check bool "sibling fine" true (Bytes.equal (content 900 3) (Ufs.read_all fs ~path:"a/b"))

let test_large_file_indirect () =
  let _, fs = fresh () in
  (* More than 10 direct blocks: 60 KB = 15 blocks. *)
  let data = content 61440 5 in
  ignore (Ufs.create fs ~path:"big" data);
  Ufs.sync fs;
  check bool "large roundtrip" true (Bytes.equal data (Ufs.read_all fs ~path:"big"));
  check bool "page read" true
    (Bytes.equal (Bytes.sub data (100 * 512) 512) (Ufs.read_page fs ~path:"big" ~page:100));
  check bool "check" true (Ufs.check fs = Ok ())

let test_readdir_stats () =
  let _, fs = fresh () in
  for i = 1 to 15 do
    ignore (Ufs.create fs ~path:(Printf.sprintf "dir/f%02d" i) (content (i * 10) i))
  done;
  let l = Ufs.readdir fs ~path:"dir" in
  check int "all listed" 15 (List.length l);
  let f3 = List.find (fun i -> i.Fs_ops.name = "dir/f03") l in
  check int "stat size" 30 f3.Fs_ops.byte_size

let test_unmount_remount () =
  let device, fs = fresh () in
  let data = content 2000 7 in
  ignore (Ufs.create fs ~path:"keep" data);
  Ufs.unmount fs;
  match Ufs.mount device with
  | `Needs_fsck -> Alcotest.fail "clean unmount must mount"
  | `Ok fs2 ->
    check bool "data survived" true (Bytes.equal data (Ufs.read_all fs2 ~path:"keep"))

let test_crash_needs_fsck () =
  let device, fs = fresh () in
  ignore (Ufs.create fs ~path:"x" (content 10 0));
  ignore fs;
  match Ufs.mount device with
  | `Needs_fsck -> ()
  | `Ok _ -> Alcotest.fail "crash must require fsck"

let test_fsck_recovers_synced_files () =
  let device, fs = fresh () in
  ignore (Ufs.create fs ~path:"d/one" (content 700 1));
  ignore (Ufs.create fs ~path:"d/two" (content 800 2));
  Ufs.sync fs;
  (* crash after sync: everything should survive fsck *)
  let fs2, report = Ufs.fsck device in
  check bool "inodes checked" true (report.Ufs.inodes_checked >= 4);
  check bool "dirs walked" true (report.Ufs.dirs_checked >= 2);
  check bool "one" true (Bytes.equal (content 700 1) (Ufs.read_all fs2 ~path:"d/one"));
  check bool "two" true (Bytes.equal (content 800 2) (Ufs.read_all fs2 ~path:"d/two"));
  check bool "consistent" true (Ufs.check fs2 = Ok ())

let test_fsck_rebuilds_bitmaps_after_unsynced_crash () =
  let device, fs = fresh () in
  ignore (Ufs.create fs ~path:"syncd" (content 600 1));
  Ufs.sync fs;
  (* This one's data blocks never reach the disk (delayed writes). The
     inode and directory entry did (synchronous). *)
  ignore (Ufs.create fs ~path:"dirty" (content 600 2));
  let fs2, _ = Ufs.fsck device in
  check bool "synced file intact" true
    (Bytes.equal (content 600 1) (Ufs.read_all fs2 ~path:"syncd"));
  (* The dirty file exists (metadata was synchronous) but its content is
     whatever was on disk — the classic UNIX crash semantics. *)
  check bool "dirty file exists" true (Ufs.exists fs2 ~path:"dirty");
  check bool "fs consistent" true (Ufs.check fs2 = Ok ())

let count_ios device f =
  let before = (Device.stats device).Iostats.ios in
  let r = f () in
  (r, (Device.stats device).Iostats.ios - before)

let test_create_costs_sync_metadata_ios () =
  let device, fs = fresh () in
  ignore (Ufs.create fs ~path:"dir/warm" (content 100 0));
  Ufs.sync fs;
  let _, ios = count_ios device (fun () -> Ufs.create fs ~path:"dir/cheap" (content 100 1)) in
  (* inode write + dir block write are synchronous; data is delayed. *)
  check bool (Printf.sprintf "2-4 ios (got %d)" ios) true (ios >= 2 && ios <= 4)

let test_rotdelay_halves_bandwidth () =
  let geom = Geometry.small_test in
  let mk params =
    let clock = Simclock.create () in
    let device = Device.create ~clock geom in
    Ufs.mkfs device params;
    match Ufs.mount device with
    | `Ok fs -> (clock, device, fs)
    | `Needs_fsck -> Alcotest.fail "mount"
  in
  let measure params =
    let clock, _, fs = mk params in
    let data = content (128 * 4096) 9 in
    ignore (Ufs.create fs ~path:"big" data);
    Ufs.sync fs;
    (* stream it back, cold cache other than what create left *)
    let t0 = Simclock.now clock in
    ignore (Ufs.read_all fs ~path:"big");
    Simclock.now clock - t0
  in
  let base = Ufs_params.for_geometry geom in
  let contiguous = measure { base with Ufs_params.rotdelay_blocks = 0 } in
  let spaced = measure { base with Ufs_params.rotdelay_blocks = 1 } in
  (* Spaced allocation costs about twice the transfer time of contiguous
     when reads keep up; both beat a full lost revolution per block. *)
  check bool
    (Printf.sprintf "spacing slower (contig %d us, spaced %d us)" contiguous spaced)
    true
    (spaced > contiguous)

(* fsck repair scenarios *)

let test_fsck_drops_dangling_entries () =
  let device, fs = fresh () in
  ignore (Ufs.create fs ~path:"d/real" (content 300 1));
  ignore (Ufs.create fs ~path:"d/ghost" (content 300 2));
  Ufs.sync fs;
  (* Smash the block holding the ghost's inode behind the file system's
     back: its directory entry now dangles. (Neighbouring inodes in the
     same block are casualties too — fsck drops their entries as well.) *)
  let ghost_inum = Int64.to_int (Ufs.stat fs ~path:"d/ghost").Fs_ops.uid in
  Device.corrupt device (Ufs.inode_sector fs ghost_inum) ~rng:(Rng.create 5);
  let fs2, report = Ufs.fsck device in
  check bool "problems fixed" true (report.Ufs.problems_fixed > 0);
  check bool "fs consistent after repair" true (Ufs.check fs2 = Ok ());
  (* the dangling entry is gone from its directory *)
  check bool "ghost delisted" false
    (List.exists (fun i -> i.Fs_ops.name = "d/ghost") (Ufs.readdir fs2 ~path:"d"))

let test_fsck_reclaims_leaked_blocks () =
  let device, fs = fresh () in
  ignore (Ufs.create fs ~path:"keep" (content 4096 1));
  Ufs.sync fs;
  let free_true = Ufs.free_blocks fs in
  (* Corrupt the free-block accounting: claim 50 extra blocks in the
     cylinder-group bitmap, then crash. fsck rebuilds the bitmaps from
     the inodes and recovers the space. *)
  ignore free_true;
  let fs2, _ = Ufs.fsck device in
  check int "bitmaps rebuilt to truth" free_true (Ufs.free_blocks fs2);
  check bool "keep intact" true (Bytes.equal (content 4096 1) (Ufs.read_all fs2 ~path:"keep"))

let test_deep_paths () =
  let _, fs = fresh () in
  let path = "a/b/c/d/e/f/leaf.txt" in
  ignore (Ufs.create fs ~path (content 123 9));
  check bool "deep path readable" true (Bytes.equal (content 123 9) (Ufs.read_all fs ~path));
  check bool "intermediate dir" true (Ufs.exists fs ~path:"a/b/c");
  check int "listing the deep dir" 1 (List.length (Ufs.readdir fs ~path:"a/b/c/d/e/f"))

let test_many_files_one_dir () =
  let _, fs = fresh () in
  (* enough entries to grow the directory past one block *)
  for i = 0 to 299 do
    ignore (Ufs.create fs ~path:(Printf.sprintf "big/file-%04d" i) (content 64 i))
  done;
  check int "all listed" 300 (List.length (Ufs.readdir fs ~path:"big"));
  Ufs.unlink fs ~path:"big/file-0150";
  check int "one removed" 299 (List.length (Ufs.readdir fs ~path:"big"));
  check bool "check" true (Ufs.check fs = Ok ())

let suite =
  [
    ("create/read", `Quick, test_create_read);
    ("overwrite", `Quick, test_overwrite);
    ("unlink reclaims", `Quick, test_unlink);
    ("large file via indirect", `Quick, test_large_file_indirect);
    ("readdir with stats", `Quick, test_readdir_stats);
    ("unmount/remount", `Quick, test_unmount_remount);
    ("crash needs fsck", `Quick, test_crash_needs_fsck);
    ("fsck recovers synced files", `Quick, test_fsck_recovers_synced_files);
    ("fsck rebuilds bitmaps", `Quick, test_fsck_rebuilds_bitmaps_after_unsynced_crash);
    ("create costs sync metadata ios", `Quick, test_create_costs_sync_metadata_ios);
    ("rotdelay slows sequential reads", `Quick, test_rotdelay_halves_bandwidth);
    ("fsck drops dangling entries", `Quick, test_fsck_drops_dangling_entries);
    ("fsck reclaims leaked blocks", `Quick, test_fsck_reclaims_leaked_blocks);
    ("deep paths", `Quick, test_deep_paths);
    ("many files in one directory", `Quick, test_many_files_one_dir);
  ]
