open Cedar_btree

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* In-memory page store used to exercise the B-tree in isolation. *)
module Mem_store = struct
  type t = {
    page_bytes : int;
    pages : (int, bytes) Hashtbl.t;
    mutable next : int;
    mutable root : int option;
    mutable writes : int;
    free_list : (int, unit) Hashtbl.t;
  }

  let make ?(page_bytes = 512) () =
    {
      page_bytes;
      pages = Hashtbl.create 64;
      next = 0;
      root = None;
      writes = 0;
      free_list = Hashtbl.create 8;
    }

  let page_bytes t = t.page_bytes

  let read t id =
    match Hashtbl.find_opt t.pages id with
    | Some b -> Bytes.copy b
    | None -> failwith (Printf.sprintf "read of unallocated page %d" id)

  let write t id b =
    t.writes <- t.writes + 1;
    Hashtbl.replace t.pages id (Bytes.copy b)

  let alloc t =
    let id = t.next in
    t.next <- id + 1;
    id

  let free t id =
    if Hashtbl.mem t.free_list id then failwith "double free";
    Hashtbl.replace t.free_list id ();
    Hashtbl.remove t.pages id

  let get_root t = t.root
  let set_root t r = t.root <- r
  let live_pages t = Hashtbl.length t.pages
end

module T = Btree.Make (Mem_store)

let expect_ok t =
  match T.check t with Ok () -> () | Error m -> Alcotest.fail ("invariant: " ^ m)

let key_of i = Printf.sprintf "key-%06d" i
let value_of i = Printf.sprintf "value-%d-%s" i (String.make (i mod 40) 'v')

let build _n order =
  let s = Mem_store.make () in
  let t = T.attach s in
  List.iter (fun i -> T.insert t ~key:(key_of i) ~value:(value_of i)) order;
  (s, t)

let test_empty () =
  let s = Mem_store.make () in
  let t = T.attach s in
  check bool "empty" true (T.is_empty t);
  check (Alcotest.option Alcotest.string) "find" None (T.find t "x");
  check bool "delete absent" false (T.delete t "x");
  expect_ok t

let test_single () =
  let s = Mem_store.make () in
  let t = T.attach s in
  T.insert t ~key:"a" ~value:"1";
  check (Alcotest.option Alcotest.string) "found" (Some "1") (T.find t "a");
  check bool "not empty" false (T.is_empty t);
  T.insert t ~key:"a" ~value:"2";
  check (Alcotest.option Alcotest.string) "replaced" (Some "2") (T.find t "a");
  check int "one entry" 1 (T.stats t).entries;
  expect_ok t

let test_many_sequential () =
  let n = 2000 in
  let _, t = build n (List.init n (fun i -> i)) in
  expect_ok t;
  check int "entries" n (T.stats t).entries;
  check bool "deep enough to have split" true ((T.stats t).depth >= 2);
  for i = 0 to n - 1 do
    match T.find t (key_of i) with
    | Some v -> check Alcotest.string "value" (value_of i) v
    | None -> Alcotest.fail (key_of i ^ " lost")
  done

let test_many_reverse_and_shuffled () =
  let n = 1500 in
  let rev = List.init n (fun i -> n - 1 - i) in
  let _, t = build n rev in
  expect_ok t;
  check int "entries" n (T.stats t).entries;
  let shuffled = List.init n (fun i -> i * 7919 mod n) |> List.sort_uniq compare in
  let _, t2 = build (List.length shuffled) shuffled in
  expect_ok t2

let test_iteration_order () =
  let n = 500 in
  let order = List.init n (fun i -> (i * 263) mod n) |> List.sort_uniq compare in
  let _, t = build n order in
  let keys = ref [] in
  T.iter t (fun k _ -> keys := k :: !keys);
  let keys = List.rev !keys in
  check int "count" (List.length order) (List.length keys);
  check bool "sorted" true (keys = List.sort compare keys)

let test_range () =
  let n = 100 in
  let _, t = build n (List.init n (fun i -> i)) in
  let got = T.fold_range ~lo:(key_of 10) ~hi:(key_of 20) t ~init:0 ~f:(fun a _ _ -> a + 1) in
  check int "half-open range" 10 got;
  let got = T.fold_range ~lo:(key_of 95) t ~init:0 ~f:(fun a _ _ -> a + 1) in
  check int "open hi" 5 got;
  let got = T.fold_range ~hi:(key_of 5) t ~init:0 ~f:(fun a _ _ -> a + 1) in
  check int "open lo" 5 got

let test_min_max_last_below () =
  let _, t = build 50 (List.init 50 (fun i -> i)) in
  check (Alcotest.option Alcotest.string) "min" (Some (key_of 0)) (T.min_key t);
  check (Alcotest.option Alcotest.string) "max" (Some (key_of 49)) (T.max_key t);
  (match T.find_last_below t (key_of 30) with
  | Some (k, _) -> check Alcotest.string "predecessor" (key_of 29) k
  | None -> Alcotest.fail "expected predecessor");
  (match T.find_last_below t (key_of 0) with
  | None -> ()
  | Some _ -> Alcotest.fail "nothing below the minimum");
  match T.find_last_below t "zzz" with
  | Some (k, _) -> check Alcotest.string "below sentinel" (key_of 49) k
  | None -> Alcotest.fail "expected max"

let test_delete_all () =
  let n = 1200 in
  let s, t = build n (List.init n (fun i -> i)) in
  (* Delete in an order unrelated to insertion. *)
  let order = List.init n (fun i -> (i * 769) mod n) |> List.sort_uniq compare in
  List.iteri
    (fun step i ->
      check bool "deleted" true (T.delete t (key_of i));
      if step mod 100 = 0 then expect_ok t)
    order;
  expect_ok t;
  check bool "empty at end" true (T.is_empty t);
  check int "entries zero" 0 (T.stats t).entries;
  (* All pages but possibly the root freed: no leak. *)
  check bool "pages reclaimed" true (Mem_store.live_pages s <= 1)

let test_delete_interleaved () =
  let s = Mem_store.make () in
  let t = T.attach s in
  for i = 0 to 999 do
    T.insert t ~key:(key_of i) ~value:(value_of i);
    if i mod 3 = 0 then ignore (T.delete t (key_of (i / 2)))
  done;
  expect_ok t;
  (* Reference check against a Map. *)
  let module M = Map.Make (String) in
  let reference = ref M.empty in
  for i = 0 to 999 do
    reference := M.add (key_of i) (value_of i) !reference;
    if i mod 3 = 0 then reference := M.remove (key_of (i / 2)) !reference
  done;
  M.iter
    (fun k v ->
      match T.find t k with
      | Some v' -> check Alcotest.string "match ref" v v'
      | None -> Alcotest.fail (k ^ " missing"))
    !reference;
  check int "same size" (M.cardinal !reference) (T.stats t).entries

let test_oversized_entry_rejected () =
  let s = Mem_store.make ~page_bytes:256 () in
  let t = T.attach s in
  match T.insert t ~key:"k" ~value:(String.make 300 'x') with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_corrupt_page_detected () =
  let s = Mem_store.make () in
  let t = T.attach s in
  T.insert t ~key:"a" ~value:"1";
  (match Mem_store.get_root s with
  | Some root -> Hashtbl.replace s.Mem_store.pages root (Bytes.make 512 '\xff')
  | None -> Alcotest.fail "no root");
  match T.find t "a" with
  | _ -> Alcotest.fail "expected Corrupt"
  | exception Btree.Corrupt _ -> ()

let test_mixed_value_sizes () =
  (* entries from tiny to near the max size share pages; splits must
     balance by bytes, not counts *)
  let s = Mem_store.make () in
  let t = T.attach s in
  let n = 400 in
  for i = 0 to n - 1 do
    let vlen = 1 + (i * 37 mod (T.attach s |> fun _ -> 100)) in
    T.insert t ~key:(key_of i) ~value:(String.make vlen 'v')
  done;
  expect_ok t;
  check int "entries" n (T.stats t).entries;
  for i = 0 to n - 1 do
    match T.find t (key_of i) with
    | Some v -> check int ("len " ^ string_of_int i) (1 + (i * 37 mod 100)) (String.length v)
    | None -> Alcotest.fail (key_of i ^ " lost")
  done

let test_reinsert_after_empty () =
  let s = Mem_store.make () in
  let t = T.attach s in
  for round = 0 to 3 do
    for i = 0 to 199 do
      T.insert t ~key:(key_of i) ~value:(value_of (i + round))
    done;
    for i = 0 to 199 do
      ignore (T.delete t (key_of i))
    done;
    check bool (Printf.sprintf "round %d empty" round) true (T.is_empty t)
  done;
  expect_ok t

let prop_range_matches_filter =
  QCheck.Test.make ~name:"range queries match filtering the full iteration" ~count:80
    QCheck.(triple (small_list (int_bound 200)) (int_bound 220) (int_bound 220))
    (fun (keys, a, b) ->
      let lo = key_of (min a b) and hi = key_of (max a b) in
      let s = Mem_store.make () in
      let t = T.attach s in
      List.iter (fun i -> T.insert t ~key:(key_of i) ~value:(value_of i)) keys;
      let ranged = T.fold_range ~lo ~hi t ~init:[] ~f:(fun acc k _ -> k :: acc) in
      let all = T.fold_range t ~init:[] ~f:(fun acc k _ -> k :: acc) in
      let filtered = List.filter (fun k -> String.compare lo k <= 0 && String.compare k hi < 0) all in
      ranged = filtered)

(* Property: a random op sequence leaves the tree equivalent to a Map and
   structurally valid. *)
let prop_btree_vs_map =
  let open QCheck in
  Test.make ~name:"btree equivalent to Map under random ops" ~count:60
    (list (pair (int_bound 300) (option (int_bound 50))))
    (fun ops ->
      let module M = Map.Make (String) in
      let s = Mem_store.make () in
      let t = T.attach s in
      let reference = ref M.empty in
      List.iter
        (fun (k, v) ->
          let key = key_of k in
          match v with
          | Some v ->
            T.insert t ~key ~value:(value_of v);
            reference := M.add key (value_of v) !reference
          | None ->
            let in_map = M.mem key !reference in
            let in_tree = T.delete t key in
            if in_map <> in_tree then QCheck.Test.fail_report "delete disagreed";
            reference := M.remove key !reference)
        ops;
      (match T.check t with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_report ("invariant: " ^ m));
      M.for_all (fun k v -> T.find t k = Some v) !reference
      && (T.stats t).entries = M.cardinal !reference)

let suite =
  [
    ("empty tree", `Quick, test_empty);
    ("single entry", `Quick, test_single);
    ("many sequential inserts", `Quick, test_many_sequential);
    ("reverse and shuffled inserts", `Quick, test_many_reverse_and_shuffled);
    ("iteration order", `Quick, test_iteration_order);
    ("range queries", `Quick, test_range);
    ("min/max/find_last_below", `Quick, test_min_max_last_below);
    ("delete all", `Quick, test_delete_all);
    ("delete interleaved", `Quick, test_delete_interleaved);
    ("oversized entry rejected", `Quick, test_oversized_entry_rejected);
    ("corrupt page detected", `Quick, test_corrupt_page_detected);
    ("mixed value sizes", `Quick, test_mixed_value_sizes);
    ("reinsert after emptying", `Quick, test_reinsert_after_empty);
    QCheck_alcotest.to_alcotest prop_range_matches_filter;
    QCheck_alcotest.to_alcotest prop_btree_vs_map;
  ]
