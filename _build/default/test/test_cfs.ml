(* Tests for the CFS baseline: label discipline, header/name-table
   redundancy, the scavenger, and the I/O cost that motivates FSD. *)

open Cedar_util
open Cedar_disk
open Cedar_fsbase
open Cedar_cfs

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let fresh ?(geom = Geometry.small_test) () =
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  Cfs.format device (Cfs_layout.params_for_geometry geom);
  let fs = match Cfs.boot device with
    | `Ok fs -> fs
    | `Needs_scavenge -> Alcotest.fail "fresh volume must boot cleanly"
  in
  (device, fs)

let content n seed = Bytes.init n (fun i -> Char.chr ((i + seed) mod 251))

let expect_error expected f =
  match f () with
  | _ -> Alcotest.fail "expected Fs_error"
  | exception Fs_error.Fs_error e ->
    if not (expected e) then
      Alcotest.fail ("unexpected error: " ^ Fs_error.to_string e)

let test_create_read_roundtrip () =
  let _, fs = fresh () in
  let data = content 1500 3 in
  let info = Cfs.create fs ~name:"prog.mesa" data in
  check int "version" 1 info.Fs_ops.version;
  check bool "roundtrip" true (Bytes.equal data (Cfs.read_all fs ~name:"prog.mesa"));
  check bool "check ok" true (Cfs.check fs = Ok ())

let test_versions_keep_delete () =
  let _, fs = fresh () in
  for v = 1 to 4 do
    ignore (Cfs.create fs ~name:"v" ~keep:2 (content 64 v))
  done;
  check (Alcotest.list int) "keep 2" [ 3; 4 ] (Cfs.versions fs ~name:"v");
  Cfs.delete fs ~name:"v";
  check (Alcotest.list int) "delete newest" [ 3 ] (Cfs.versions fs ~name:"v");
  check bool "older readable" true
    (Bytes.equal (content 64 3) (Cfs.read_all fs ~name:"v"))

let test_list_reads_headers () =
  let device, fs = fresh () in
  for i = 1 to 10 do
    ignore (Cfs.create fs ~name:(Printf.sprintf "d/f%02d" i) (content 100 i))
  done;
  Cfs.drop_open_cache fs;
  let before = (Device.stats device).Iostats.ios in
  let l = Cfs.list fs ~prefix:"d/" in
  let ios = (Device.stats device).Iostats.ios - before in
  check int "10 files" 10 (List.length l);
  (* One header read per file, unlike FSD's zero. *)
  check bool "about one io per file" true (ios >= 10)

let test_create_costs_many_ios () =
  let device, fs = fresh () in
  ignore (Cfs.create fs ~name:"warm" (content 10 0));
  let before = (Device.stats device).Iostats.ios in
  ignore (Cfs.create fs ~name:"costly" (content 400 1));
  let ios = (Device.stats device).Iostats.ios - before in
  (* verify labels, write header labels, write data labels, header,
     data, name table, header rewrite: at least 6. *)
  check bool (Printf.sprintf "at least 6 ios (got %d)" ios) true (ios >= 6)

let test_label_mismatch_detected () =
  let device, fs = fresh () in
  ignore (Cfs.create fs ~name:"guarded" (content 512 1));
  (* Find the data sector via the observer, then smash its label as a
     wild write would. *)
  Cfs.drop_open_cache fs;
  let data_sector = ref (-1) in
  Device.set_observer device
    (Some
       (fun ~rw ~sector ~count ->
         if rw = `R && count = 1 && !data_sector < 0 then data_sector := sector));
  ignore (Cfs.read_page fs ~name:"guarded" ~page:0);
  Device.set_observer device None;
  check bool "found data sector" true (!data_sector >= 0);
  Device.write_labels device ~sector:!data_sector
    [ { Label.uid = 4242L; page = 9; kind = Label.Data } ];
  expect_error
    (function Fs_error.Corrupt_metadata _ -> true | _ -> false)
    (fun () -> Cfs.read_page fs ~name:"guarded" ~page:0)

let test_shutdown_reboot () =
  let device, fs = fresh () in
  let data = content 800 9 in
  ignore (Cfs.create fs ~name:"persist" data);
  Cfs.shutdown fs;
  match Cfs.boot device with
  | `Needs_scavenge -> Alcotest.fail "clean shutdown must boot"
  | `Ok fs2 ->
    check bool "data" true (Bytes.equal data (Cfs.read_all fs2 ~name:"persist"));
    check bool "check" true (Cfs.check fs2 = Ok ())

let test_crash_requires_scavenge () =
  let device, fs = fresh () in
  ignore (Cfs.create fs ~name:"x" (content 100 0));
  (* no shutdown: crash *)
  ignore fs;
  match Cfs.boot device with
  | `Needs_scavenge -> ()
  | `Ok _ -> Alcotest.fail "crash must force a scavenge"

let test_scavenge_recovers_files () =
  let device, fs = fresh () in
  let files = List.init 12 (fun i -> (Printf.sprintf "s/f%02d" i, content ((i * 131) mod 1400) i)) in
  List.iter (fun (name, data) -> ignore (Cfs.create fs ~name data)) files;
  (* crash *)
  let fs2, report = Cfs.scavenge device in
  check int "all recovered" (List.length files) report.Cfs.files_recovered;
  check int "none lost" 0 report.Cfs.files_lost;
  List.iter
    (fun (name, data) ->
      check bool (name ^ " content") true (Bytes.equal data (Cfs.read_all fs2 ~name)))
    files;
  check bool "check" true (Cfs.check fs2 = Ok ());
  check bool "scavenge takes real time" true (report.Cfs.duration_us > 100_000)

let test_scavenge_after_torn_name_table_write () =
  let device, fs = fresh () in
  for i = 1 to 20 do
    ignore (Cfs.create fs ~name:(Printf.sprintf "t/f%02d" i) (content 300 i))
  done;
  (* Crash mid name-table page write: tear the next multi-sector FNT
     write. The name table page is torn, but scavenging rebuilds it from
     the headers. *)
  Device.plan_write_crash device ~after_sectors:1 ~damage_tail:1;
  (match Cfs.create fs ~name:"t/killer" (content 300 99) with
  | _ -> Device.cancel_write_crash device
  | exception Device.Crash_during_write _ -> ());
  let fs2, report = Cfs.scavenge device in
  check bool "most files recovered" true (report.Cfs.files_recovered >= 20);
  check bool "post-scavenge check" true (Cfs.check fs2 = Ok ());
  for i = 1 to 20 do
    let name = Printf.sprintf "t/f%02d" i in
    check bool (name ^ " intact") true
      (Bytes.equal (content 300 i) (Cfs.read_all fs2 ~name))
  done

let test_scavenge_reclaims_lost_free_pages () =
  let device, fs = fresh () in
  ignore (Cfs.create fs ~name:"a" (content 2000 1));
  let free_after_create = Cfs.free_sector_hints fs in
  (* crash; scavenge must rediscover exactly the same free space *)
  let fs2, _ = Cfs.scavenge device in
  check int "free hints rebuilt" free_after_create (Cfs.free_sector_hints fs2)

let test_header_loss_loses_only_that_file () =
  let device, fs = fresh () in
  ignore (Cfs.create fs ~name:"victim" (content 600 1));
  ignore (Cfs.create fs ~name:"bystander" (content 600 2));
  (* Find the victim's header sector by observing an open. *)
  Cfs.drop_open_cache fs;
  let hdr = ref (-1) in
  Device.set_observer device
    (Some (fun ~rw ~sector ~count -> if rw = `R && count = 2 && !hdr < 0 then hdr := sector));
  ignore (Cfs.open_stat fs ~name:"victim");
  Device.set_observer device None;
  check bool "header located" true (!hdr >= 0);
  Device.damage device !hdr;
  Device.damage device (!hdr + 1);
  let fs2, report = Cfs.scavenge device in
  check int "one file lost" 1 report.Cfs.files_lost;
  check bool "bystander survives" true
    (Bytes.equal (content 600 2) (Cfs.read_all fs2 ~name:"bystander"));
  check bool "victim gone" false
    (List.exists (fun i -> i.Fs_ops.name = "victim") (Cfs.list fs2 ~prefix:""))

let test_open_costs_one_io_cold () =
  let device, fs = fresh () in
  ignore (Cfs.create fs ~name:"measured" (content 100 0));
  Cfs.drop_open_cache fs;
  let before = (Device.stats device).Iostats.ios in
  ignore (Cfs.open_stat fs ~name:"measured");
  let ios = (Device.stats device).Iostats.ios - before in
  (* name-table leaf cached from the create; the header read remains *)
  check int "one io" 1 ios

let test_vam_is_only_a_hint () =
  let device, fs = fresh () in
  (* Manually claim a sector behind the VAM's back (stale hint): the
     verified allocation must detect it via labels and go elsewhere. *)
  let layout = Cfs.layout fs in
  let s = layout.Cfs_layout.data_lo in
  Device.write_labels device ~sector:s
    (List.init 8 (fun i -> { Label.uid = 777L; page = i; kind = Label.Data }));
  let data = content 700 5 in
  ignore (Cfs.create fs ~name:"dodger" data);
  check bool "file fine despite stale hint" true
    (Bytes.equal data (Cfs.read_all fs ~name:"dodger"));
  check bool "check ok" true (Cfs.check fs = Ok ())

let test_symlink () =
  let _, fs = fresh () in
  ignore (Cfs.create fs ~name:"target" (content 333 1));
  Cfs.create_symlink fs ~name:"alias" ~target:"target";
  check (Alcotest.option Alcotest.string) "readlink" (Some "target")
    (Cfs.readlink fs ~name:"alias");
  check bool "read through link" true
    (Bytes.equal (content 333 1) (Cfs.read_all fs ~name:"alias"))

let test_symlinks_lost_by_scavenge () =
  (* The scavenger rebuilds the name table from labels and headers;
     symbolic links leave neither, so they do not survive — a real CFS
     weakness FSD's logging removes. *)
  let device, fs = fresh () in
  ignore (Cfs.create fs ~name:"real" (content 200 2));
  Cfs.create_symlink fs ~name:"alias" ~target:"real";
  check bool "alias resolvable before crash" true
    (Cfs.readlink fs ~name:"alias" = Some "real");
  let fs2, _ = Cfs.scavenge device in
  check bool "real file recovered" true (Cfs.exists fs2 ~name:"real");
  check bool "symlink lost" false (Cfs.exists fs2 ~name:"alias")

let test_cached_touch_costs_header_rewrite () =
  let device, fs = fresh () in
  ignore (Cfs.import_cached fs ~name:"cache/x" ~server:"ivy" (content 500 3));
  let t0 = Option.get (Cfs.last_used fs ~name:"cache/x") in
  let before = (Device.stats device).Iostats.writes in
  Cfs.touch_cached fs ~name:"cache/x";
  let writes = (Device.stats device).Iostats.writes - before in
  check int "one header rewrite per touch" 1 writes;
  check bool "time advanced" true (Option.get (Cfs.last_used fs ~name:"cache/x") >= t0)

let test_cached_survives_scavenge_with_properties () =
  let device, fs = fresh () in
  ignore (Cfs.import_cached fs ~name:"cache/y" ~server:"ivy" (content 700 4));
  Cfs.touch_cached fs ~name:"cache/y";
  let lu = Option.get (Cfs.last_used fs ~name:"cache/y") in
  let fs2, _ = Cfs.scavenge device in
  check bool "content" true (Bytes.equal (content 700 4) (Cfs.read_all fs2 ~name:"cache/y"));
  check (Alcotest.option int) "last-used survives (it is in the header)" (Some lu)
    (Cfs.last_used fs2 ~name:"cache/y")

let suite =
  [
    ("create/read roundtrip", `Quick, test_create_read_roundtrip);
    ("versions, keep, delete", `Quick, test_versions_keep_delete);
    ("list reads headers", `Quick, test_list_reads_headers);
    ("create costs many ios", `Quick, test_create_costs_many_ios);
    ("label mismatch detected", `Quick, test_label_mismatch_detected);
    ("shutdown/reboot", `Quick, test_shutdown_reboot);
    ("crash requires scavenge", `Quick, test_crash_requires_scavenge);
    ("scavenge recovers files", `Quick, test_scavenge_recovers_files);
    ("scavenge after torn name-table write", `Quick, test_scavenge_after_torn_name_table_write);
    ("scavenge reclaims free pages", `Quick, test_scavenge_reclaims_lost_free_pages);
    ("header loss loses only that file", `Quick, test_header_loss_loses_only_that_file);
    ("open costs one io cold", `Quick, test_open_costs_one_io_cold);
    ("vam is only a hint", `Quick, test_vam_is_only_a_hint);
    ("symlink create/read", `Quick, test_symlink);
    ("symlinks lost by scavenge", `Quick, test_symlinks_lost_by_scavenge);
    ("cached touch costs a header rewrite", `Quick, test_cached_touch_costs_header_rewrite);
    ("cached survives scavenge", `Quick, test_cached_survives_scavenge_with_properties);
  ]
