open Cedar_fsbase

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Run_table                                                           *)

let rt runs = Run_table.of_runs (List.map (fun (s, l) -> { Run_table.start = s; len = l }) runs)

let test_run_table_basics () =
  let t = rt [ (10, 3); (20, 2) ] in
  check int "pages" 5 (Run_table.pages t);
  check int "page 0" 10 (Run_table.sector_of_page t 0);
  check int "page 2" 12 (Run_table.sector_of_page t 2);
  check int "page 3" 20 (Run_table.sector_of_page t 3);
  check int "page 4" 21 (Run_table.sector_of_page t 4);
  check int "contig at 0" 3 (Run_table.contiguous_prefix t ~page:0);
  check int "contig at 1" 2 (Run_table.contiguous_prefix t ~page:1);
  check int "contig at 3" 2 (Run_table.contiguous_prefix t ~page:3)

let test_run_table_coalesce () =
  let t = rt [ (10, 3); (13, 2) ] in
  check int "coalesced to one run" 1 (List.length (Run_table.runs t));
  check int "pages" 5 (Run_table.pages t)

let test_run_table_append () =
  let t = Run_table.append Run_table.empty { Run_table.start = 5; len = 2 } in
  let t = Run_table.append t { Run_table.start = 7; len = 1 } in
  check int "coalesced" 1 (List.length (Run_table.runs t));
  let t = Run_table.append t { Run_table.start = 100; len = 1 } in
  check int "two runs" 2 (List.length (Run_table.runs t))

let test_run_table_overlap_rejected () =
  (match rt [ (10, 3); (11, 2) ] with
  | _ -> Alcotest.fail "expected overlap rejection"
  | exception Invalid_argument _ -> ());
  match rt [ (20, 2); (10, 15) ] with
  | _ -> Alcotest.fail "expected overlap rejection (reverse order)"
  | exception Invalid_argument _ -> ()

let test_run_table_truncate () =
  let t = rt [ (10, 3); (20, 4) ] in
  let kept, freed = Run_table.truncate t ~pages:4 in
  check int "kept pages" 4 (Run_table.pages kept);
  check int "freed runs" 1 (List.length freed);
  (match freed with
  | [ r ] ->
    check int "freed start" 21 r.Run_table.start;
    check int "freed len" 3 r.Run_table.len
  | _ -> Alcotest.fail "unexpected freed shape");
  let kept, freed = Run_table.truncate t ~pages:0 in
  check int "kept none" 0 (Run_table.pages kept);
  check int "freed all" 2 (List.length freed)

let test_run_table_codec () =
  let t = rt [ (10, 3); (20, 4); (99, 1) ] in
  let w = Cedar_util.Bytebuf.Writer.create () in
  Run_table.encode w t;
  let r = Cedar_util.Bytebuf.Reader.of_bytes (Cedar_util.Bytebuf.Writer.contents w) in
  check bool "roundtrip" true (Run_table.equal t (Run_table.decode r))

let prop_run_table_page_mapping =
  QCheck.Test.make ~name:"run table page/sector mapping is injective" ~count:100
    QCheck.(list_of_size Gen.(1 -- 8) (pair (int_range 0 50) (int_range 1 6)))
    (fun raw ->
      (* Space runs out so they cannot overlap: run i starts at 1000*i+s. *)
      let runs =
        List.mapi
          (fun i (s, l) -> { Run_table.start = (1000 * i) + s; len = l })
          raw
      in
      let t = Run_table.of_runs runs in
      let n = Run_table.pages t in
      let sectors = List.init n (Run_table.sector_of_page t) in
      List.length (List.sort_uniq compare sectors) = n)

(* ------------------------------------------------------------------ *)
(* Fname                                                               *)

let test_fname_key_order () =
  let k1 = Fname.key ~name:"a.txt" ~version:1 in
  let k2 = Fname.key ~name:"a.txt" ~version:2 in
  let k10 = Fname.key ~name:"a.txt" ~version:10 in
  check bool "v1 < v2" true (String.compare k1 k2 < 0);
  check bool "v2 < v10" true (String.compare k2 k10 < 0)

let test_fname_bounds () =
  let lo, hi = Fname.bounds ~name:"foo" in
  let inside = Fname.key ~name:"foo" ~version:999999 in
  let other = Fname.key ~name:"foo.txt" ~version:1 in
  let shorter = Fname.key ~name:"fo" ~version:1 in
  check bool "inside" true (String.compare lo inside <= 0 && String.compare inside hi < 0);
  check bool "longer name outside" false
    (String.compare lo other <= 0 && String.compare other hi < 0);
  check bool "shorter name outside" false
    (String.compare lo shorter <= 0 && String.compare shorter hi < 0)

let test_fname_parse () =
  (match Fname.parse (Fname.key ~name:"x.bcd" ~version:42) with
  | Some ("x.bcd", 42) -> ()
  | _ -> Alcotest.fail "parse roundtrip");
  check bool "garbage" true (Fname.parse "nobang" = None);
  check bool "bad version" true (Fname.parse "a!notanumber" = None)

let test_fname_validate () =
  check bool "ok" true (Fname.validate "Program.mesa" = Ok ());
  check bool "empty" true (Result.is_error (Fname.validate ""));
  check bool "bang" true (Result.is_error (Fname.validate "a!b"));
  check bool "control" true (Result.is_error (Fname.validate "a\nb"));
  check bool "too long" true (Result.is_error (Fname.validate (String.make 101 'x')))

(* ------------------------------------------------------------------ *)
(* Entry                                                               *)

let sample_local =
  Entry.local ~uid:77L ~keep:2 ~byte_size:1234 ~created:999
    ~runs:(rt [ (100, 3) ]) ~anchor:99

let test_entry_roundtrip_local () =
  let e = sample_local in
  check bool "local roundtrip" true (Entry.equal e (Entry.decode (Entry.encode e)))

let test_entry_roundtrip_symlink () =
  let e =
    {
      Entry.uid = 5L;
      keep = 0;
      byte_size = 0;
      created = 1;
      runs = Run_table.empty;
      anchor = -1;
      kind = Entry.Symlink { target = "remote/thing.mesa" };
    }
  in
  check bool "symlink roundtrip" true (Entry.equal e (Entry.decode (Entry.encode e)))

let test_entry_roundtrip_cached () =
  let e =
    {
      sample_local with
      Entry.kind = Entry.Cached { server = "ivy"; last_used = 123456 };
    }
  in
  check bool "cached roundtrip" true (Entry.equal e (Entry.decode (Entry.encode e)))

let test_entry_bad_input () =
  match Entry.decode "garbage" with
  | _ -> Alcotest.fail "expected Decode_error"
  | exception Cedar_util.Bytebuf.Decode_error _ -> ()

let suite =
  [
    ("run table basics", `Quick, test_run_table_basics);
    ("run table coalesce", `Quick, test_run_table_coalesce);
    ("run table append", `Quick, test_run_table_append);
    ("run table overlap rejected", `Quick, test_run_table_overlap_rejected);
    ("run table truncate", `Quick, test_run_table_truncate);
    ("run table codec", `Quick, test_run_table_codec);
    QCheck_alcotest.to_alcotest prop_run_table_page_mapping;
    ("fname key order", `Quick, test_fname_key_order);
    ("fname bounds", `Quick, test_fname_bounds);
    ("fname parse", `Quick, test_fname_parse);
    ("fname validate", `Quick, test_fname_validate);
    ("entry roundtrip local", `Quick, test_entry_roundtrip_local);
    ("entry roundtrip symlink", `Quick, test_entry_roundtrip_symlink);
    ("entry roundtrip cached", `Quick, test_entry_roundtrip_cached);
    ("entry bad input", `Quick, test_entry_bad_input);
  ]
