(* Tests for the VAM-logging extension (the alternative §5.3 weighs:
   "VAM logging would greatly decrease worst case crash recovery time
   ... about two seconds"). With [Params.log_vam], allocation-map chunks
   ride in the group-commit records and recovery rebuilds the map from
   the saved base plus the log, skipping the name-table scan. *)

open Cedar_util
open Cedar_disk
open Cedar_fsbase
open Cedar_fsd

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let params ?(log_vam = true) geom = { (Params.for_geometry geom) with Params.log_vam }

let fresh ?(geom = Geometry.small_test) ?(log_vam = true) () =
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  let p = params ~log_vam geom in
  Fsd.format device p;
  let fs, _ = Fsd.boot ~params:p device in
  (device, p, fs)

let content n seed = Bytes.init n (fun i -> Char.chr ((i + seed) mod 251))

let test_crash_recovery_replays_vam () =
  let device, p, fs = fresh () in
  for i = 0 to 29 do
    ignore (Fsd.create fs ~name:(Printf.sprintf "v/f%02d" i) (content ((i * 83) mod 1700) i))
  done;
  Fsd.force fs;
  let tracked = Fsd.free_sectors fs in
  (* crash *)
  let fs2, report = Fsd.boot ~params:p device in
  check bool "vam replayed, not reconstructed" true
    (report.Fsd.vam_source = Fsd.Vam_replayed);
  check int "free count exact" tracked (Fsd.free_sectors fs2);
  check bool "check" true (Fsd.check fs2 = Ok ())

let test_replay_much_faster_than_reconstruct () =
  let measure log_vam =
    let device, p, fs = fresh ~log_vam () in
    for i = 0 to 199 do
      ignore (Fsd.create fs ~name:(Printf.sprintf "t/f%03d" i) (content 900 i))
    done;
    Fsd.force fs;
    let _, report = Fsd.boot ~params:p device in
    (report.Fsd.vam_source, report.Fsd.vam_us)
  in
  let src_on, us_on = measure true in
  let src_off, us_off = measure false in
  check bool "on: replayed" true (src_on = Fsd.Vam_replayed);
  check bool "off: reconstructed" true (src_off = Fsd.Vam_reconstructed);
  check bool
    (Printf.sprintf "replay (%d us) at least 3x faster than rebuild (%d us)" us_on us_off)
    true
    (us_on * 3 < us_off)

let test_committed_delete_frees_pages_via_log () =
  let device, p, fs = fresh () in
  ignore (Fsd.create fs ~name:"gone" (content 1500 1));
  Fsd.force fs;
  Fsd.delete fs ~name:"gone";
  Fsd.force fs;
  let tracked = Fsd.free_sectors fs in
  let fs2, report = Fsd.boot ~params:p device in
  check bool "replayed" true (report.Fsd.vam_source = Fsd.Vam_replayed);
  check int "freed pages recovered as free" tracked (Fsd.free_sectors fs2)

let test_uncommitted_create_pages_leak_safely () =
  (* The replayed map reflects the last commit: an uncommitted create's
     pages stay marked allocated (a safe leak, never a double use). *)
  let device, p, fs = fresh () in
  ignore (Fsd.create fs ~name:"base" (content 500 1));
  Fsd.force fs;
  let committed_free = Fsd.free_sectors fs in
  ignore (Fsd.create fs ~name:"phantom" (content 500 2));
  let fs2, report = Fsd.boot ~params:p device in
  check bool "replayed" true (report.Fsd.vam_source = Fsd.Vam_replayed);
  check bool "phantom gone" false (Fsd.exists fs2 ~name:"phantom");
  check int "map as of last commit" committed_free (Fsd.free_sectors fs2);
  (* no double allocation is possible: every free sector really is free *)
  check bool "check" true (Fsd.check fs2 = Ok ())

let test_mode_mismatch_reconstructs () =
  (* Volume last ran with VAM logging; booting without it must not trust
     the log-based base. *)
  let device, _, fs = fresh ~log_vam:true () in
  ignore (Fsd.create fs ~name:"x" (content 100 0));
  Fsd.force fs;
  let p_off = params ~log_vam:false Geometry.small_test in
  let _, report = Fsd.boot ~params:p_off device in
  check bool "reconstructed on mismatch" true
    (report.Fsd.vam_source = Fsd.Vam_reconstructed);
  (* And the other direction: snapshot base under a log_vam boot. *)
  let device2, _, fs2 = fresh ~log_vam:false () in
  ignore (Fsd.create fs2 ~name:"y" (content 100 0));
  Fsd.shutdown fs2;
  let p_on = params ~log_vam:true Geometry.small_test in
  let _, report2 = Fsd.boot ~params:p_on device2 in
  check bool "snapshot base not replayed" true
    (report2.Fsd.vam_source = Fsd.Vam_reconstructed)

let test_survives_log_wrap () =
  (* Chunk images whose third is about to be overwritten must be folded
     into the overwriting record; after many cycles the replayed map is
     still exact. *)
  let device, p, fs = fresh ~geom:Geometry.small_test () in
  for round = 0 to 400 do
    let name = Printf.sprintf "w/r%04d" round in
    ignore (Fsd.create fs ~name ~keep:1 (content 600 round));
    if round mod 3 = 0 && round > 0 then
      Fsd.delete fs ~name:(Printf.sprintf "w/r%04d" (round - 1));
    Fsd.tick fs ~us:120_000
  done;
  Fsd.force fs;
  check bool "log wrapped at least once" true ((Fsd.log_stats fs).Log.third_entries > 3);
  let tracked = Fsd.free_sectors fs in
  let fs2, report = Fsd.boot ~params:p device in
  check bool "replayed after wraps" true (report.Fsd.vam_source = Fsd.Vam_replayed);
  check int "map exact after wraps" tracked (Fsd.free_sectors fs2);
  check bool "check" true (Fsd.check fs2 = Ok ())

let test_clean_shutdown_roundtrip () =
  let device, p, fs = fresh () in
  ignore (Fsd.create fs ~name:"s" (content 3333 3));
  Fsd.shutdown fs;
  let fs2, report = Fsd.boot ~params:p device in
  check bool "base replayed (nothing in the log)" true
    (report.Fsd.vam_source = Fsd.Vam_replayed);
  check int "no records" 0 report.Fsd.replayed_records;
  check bool "content" true (Bytes.equal (content 3333 3) (Fsd.read_all fs2 ~name:"s"))

let test_torn_commit_keeps_map_consistent () =
  let device, p, fs = fresh () in
  ignore (Fsd.create fs ~name:"pre" (content 400 1));
  Fsd.force fs;
  let committed_free = Fsd.free_sectors fs in
  ignore (Fsd.create fs ~name:"mid" (content 400 2));
  Device.plan_write_crash device ~after_sectors:4 ~damage_tail:2;
  (match Fsd.force fs with
  | () -> Alcotest.fail "expected crash"
  | exception Device.Crash_during_write _ -> ());
  let fs2, report = Fsd.boot ~params:p device in
  check bool "replayed" true (report.Fsd.vam_source = Fsd.Vam_replayed);
  check bool "mid gone" false (Fsd.exists fs2 ~name:"mid");
  check int "map matches the surviving commit" committed_free (Fsd.free_sectors fs2)

(* Property: random workload + crash, the replayed map always equals a
   reconstruction from the same name table. *)
let prop_replayed_equals_reconstructed =
  QCheck.Test.make ~name:"replayed VAM equals reconstructed VAM" ~count:15
    QCheck.(pair (int_bound 5_000) (int_range 5 40))
    (fun (seed, nops) ->
      let geom = Geometry.tiny_test in
      let clock = Simclock.create () in
      let device = Device.create ~clock geom in
      let p = params ~log_vam:true geom in
      Fsd.format device p;
      let fs = ref (fst (Fsd.boot ~params:p device)) in
      let rng = Rng.create (seed + 3) in
      (try
         for i = 0 to nops - 1 do
           let name = Printf.sprintf "p/%d" (Rng.int rng 8) in
           (match Rng.int rng 4 with
           | 0 | 1 ->
             ignore (Fsd.create !fs ~name ~keep:1 (content (Rng.int rng 1200) i))
           | 2 -> if Fsd.exists !fs ~name then Fsd.delete !fs ~name
           | _ -> Fsd.tick !fs ~us:100_000);
           if Rng.chance rng 0.15 then begin
             Fsd.force !fs;
             fs := fst (Fsd.boot ~params:p device)
           end
         done
       with Fs_error.Fs_error Fs_error.Volume_full -> ());
      Fsd.force !fs;
      (* crash, then compare the replayed map against a from-scratch
         reconstruction on the same device state *)
      let fs_replayed, r1 = Fsd.boot ~params:p device in
      let free_replayed = Fsd.free_sectors fs_replayed in
      ignore fs_replayed;
      let p_off = { p with Params.log_vam = false } in
      let fs_rebuilt, r2 = Fsd.boot ~params:p_off device in
      let free_rebuilt = Fsd.free_sectors fs_rebuilt in
      r1.Fsd.vam_source = Fsd.Vam_replayed
      && r2.Fsd.vam_source = Fsd.Vam_reconstructed
      && free_replayed = free_rebuilt)

(* The §3 whole-track extension, end to end: crash, then lose a whole
   track inside the log; the committed state still recovers. *)
let test_track_tolerant_fs_end_to_end () =
  let geom = Geometry.small_test in
  let p = { (Params.for_geometry geom) with Params.track_tolerant_log = true } in
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  Fsd.format device p;
  let fs, _ = Fsd.boot ~params:p device in
  for i = 0 to 19 do
    ignore (Fsd.create fs ~name:(Printf.sprintf "tt/f%02d" i) (content 800 i))
  done;
  Fsd.force fs;
  (* lose an entire track in the middle of the log body *)
  let layout = Fsd.layout fs in
  let spt = geom.Geometry.sectors_per_track in
  let track_start = (layout.Layout.log_start + 3 + spt) / spt * spt in
  for k = 0 to spt - 1 do
    Device.damage device (track_start + k)
  done;
  let fs2, report = Fsd.boot ~params:p device in
  check bool "records replayed despite track loss" true (report.Fsd.replayed_records > 0);
  for i = 0 to 19 do
    let name = Printf.sprintf "tt/f%02d" i in
    check bool (name ^ " intact") true (Bytes.equal (content 800 i) (Fsd.read_all fs2 ~name))
  done;
  check bool "check" true (Fsd.check fs2 = Ok ())

(* Both extensions together, under the crash sweep workload. *)
let test_both_extensions_together () =
  let geom = Geometry.small_test in
  let p =
    {
      (Params.for_geometry geom) with
      Params.log_vam = true;
      track_tolerant_log = true;
    }
  in
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  Fsd.format device p;
  let fs = ref (fst (Fsd.boot ~params:p device)) in
  for round = 0 to 60 do
    ignore (Fsd.create !fs ~name:(Printf.sprintf "duo/%03d" round) ~keep:1 (content 700 round));
    if round mod 4 = 0 then Fsd.force !fs;
    if round mod 15 = 14 then begin
      (* crash and also lose a whole track of the log *)
      let layout = Fsd.layout !fs in
      let spt = geom.Geometry.sectors_per_track in
      let track = (layout.Layout.log_start + 3 + (2 * spt)) / spt * spt in
      for k = 0 to spt - 1 do
        Device.damage device (track + k)
      done;
      let fs2, report = Fsd.boot ~params:p device in
      check bool
        (Printf.sprintf "round %d: vam replayed" round)
        true
        (report.Fsd.vam_source = Fsd.Vam_replayed);
      (match Fsd.check fs2 with
      | Ok () -> ()
      | Error m -> Alcotest.failf "round %d: %s" round m);
      fs := fs2
    end
  done

let suite =
  [
    ("crash recovery replays the VAM", `Quick, test_crash_recovery_replays_vam);
    ("replay much faster than reconstruct", `Quick, test_replay_much_faster_than_reconstruct);
    ("committed delete frees via log", `Quick, test_committed_delete_frees_pages_via_log);
    ("uncommitted create leaks safely", `Quick, test_uncommitted_create_pages_leak_safely);
    ("mode mismatch reconstructs", `Quick, test_mode_mismatch_reconstructs);
    ("survives log wrap", `Quick, test_survives_log_wrap);
    ("clean shutdown roundtrip", `Quick, test_clean_shutdown_roundtrip);
    ("torn commit keeps map consistent", `Quick, test_torn_commit_keeps_map_consistent);
    QCheck_alcotest.to_alcotest prop_replayed_equals_reconstructed;
    ("track-tolerant log end to end", `Quick, test_track_tolerant_fs_end_to_end);
    ("both extensions together", `Quick, test_both_extensions_together);
  ]
