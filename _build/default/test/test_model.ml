open Cedar_disk
open Cedar_model

let check = Alcotest.check
let bool = Alcotest.bool
let flt = Alcotest.float 1e-6

let g = Geometry.trident_t300

let test_step_times () =
  check flt "seek" (float_of_int g.Geometry.avg_seek_us) (Script.step_us g Script.Seek);
  check flt "latency"
    (float_of_int (Geometry.rotation_us g) /. 2.0 |> Float.round)
    (Float.round (Script.step_us g Script.Latency));
  check flt "revolution" (float_of_int (Geometry.rotation_us g))
    (Script.step_us g Script.Revolution);
  check flt "transfer 3"
    (float_of_int (3 * Geometry.sector_time_us g))
    (Script.step_us g (Script.Transfer 3));
  check flt "rev minus transfer"
    (float_of_int (Geometry.rotation_us g - (3 * Geometry.sector_time_us g)))
    (Script.step_us g (Script.Rev_minus_transfer 3));
  check flt "cpu" 1234.0 (Script.step_us g (Script.Cpu 1234))

let test_script_sum () =
  let s = [ Script.Seek; Script.Latency; Script.Transfer 2 ] in
  check flt "sum"
    (Script.step_us g Script.Seek
    +. Script.step_us g Script.Latency
    +. Script.step_us g (Script.Transfer 2))
    (Script.time_us g s)

let test_weighted () =
  let hit = [ Script.Cpu 100 ] and miss = [ Script.Cpu 1100 ] in
  check flt "expected value" 200.0 (Script.weighted g [ (0.9, hit); (0.1, miss) ]);
  Alcotest.check_raises "probabilities must sum to one"
    (Invalid_argument "Script.weighted: probabilities must sum to 1") (fun () ->
      ignore (Script.weighted g [ (0.5, hit) ]))

let test_paper_shape_cfs_vs_fsd () =
  (* The model alone already predicts the headline result: FSD creates are
     several times faster than CFS creates. *)
  let c = Ops.default in
  let cfs = Script.time_ms g (Ops.cfs_small_create c) in
  let fsd = Script.time_ms g (Ops.fsd_small_create c) in
  check bool "fsd at least 2x faster" true (cfs /. fsd > 2.0);
  (* Open without I/O vs header read. *)
  let cfs_open = Script.time_ms g (Ops.cfs_open c) in
  let fsd_open = Script.time_ms g (Ops.fsd_open c) in
  check bool "fsd open ~cpu only" true (fsd_open < 0.3 *. cfs_open);
  (* Read page nearly identical in both systems (Table 2's 1.0 row). *)
  let cr = Script.time_ms g (Ops.cfs_read_page c) in
  let fr = Script.time_ms g (Ops.fsd_read_page c) in
  check bool "read page within 5%" true (abs_float (cr -. fr) /. cr < 0.05)

let test_validate_rows () =
  let r = Validate.row ~name:"x" ~predicted_ms:105.0 ~measured_ms:100.0 in
  check flt "error pct" 5.0 r.Validate.error_pct;
  let rows =
    [ r; Validate.row ~name:"y" ~predicted_ms:90.0 ~measured_ms:100.0 ]
  in
  check flt "max abs" 10.0 (Validate.max_abs_error_pct rows)

let test_all_scripts_positive () =
  List.iter
    (fun (name, s) ->
      if Script.time_us g s <= 0.0 then Alcotest.fail (name ^ " has non-positive time"))
    (Ops.all Ops.default)

let suite =
  [
    ("step times", `Quick, test_step_times);
    ("script sum", `Quick, test_script_sum);
    ("weighted cases", `Quick, test_weighted);
    ("model predicts CFS/FSD shape", `Quick, test_paper_shape_cfs_vs_fsd);
    ("validation rows", `Quick, test_validate_rows);
    ("all scripts positive", `Quick, test_all_scripts_positive);
  ]
