test/test_btree.ml: Alcotest Btree Bytes Cedar_btree Hashtbl List Map Printf QCheck QCheck_alcotest String Test
