test/test_fsd_vamlog.ml: Alcotest Bytes Cedar_disk Cedar_fsbase Cedar_fsd Cedar_util Char Device Fs_error Fsd Geometry Layout Log Params Printf QCheck QCheck_alcotest Rng Simclock
