test/test_fsbase.ml: Alcotest Cedar_fsbase Cedar_util Entry Fname Gen List QCheck QCheck_alcotest Result Run_table String
