test/test_model.ml: Alcotest Cedar_disk Cedar_model Float Geometry List Ops Script Validate
