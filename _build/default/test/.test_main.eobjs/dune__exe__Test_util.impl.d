test/test_util.ml: Alcotest Bitmap Bytebuf Bytes Cedar_util Char Crc32 Hashtbl List Lru QCheck QCheck_alcotest Rng Simclock Stats
