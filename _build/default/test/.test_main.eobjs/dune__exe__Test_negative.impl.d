test/test_negative.ml: Alcotest Bitmap Bytebuf Bytes Cedar_disk Cedar_fsbase Cedar_fsd Cedar_util Device Fname Fs_error Fsd Geometry Layout Log Lru Params Printf Rng Run_table Simclock String
