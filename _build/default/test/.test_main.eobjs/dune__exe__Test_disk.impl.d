test/test_disk.ml: Alcotest Bytes Cedar_disk Cedar_util Char Device Filename Geometry Iostats Label List Rng Simclock String Sys
