test/test_cfs.ml: Alcotest Bytes Cedar_cfs Cedar_disk Cedar_fsbase Cedar_util Cfs Cfs_layout Char Device Fs_error Fs_ops Geometry Iostats Label List Option Printf Simclock
