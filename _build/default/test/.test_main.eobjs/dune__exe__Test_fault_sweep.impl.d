test/test_fault_sweep.ml: Alcotest Bytes Cedar_disk Cedar_fsd Cedar_util Char Device Fsd Geometry Iostats Layout List Log Params Printf Rng Simclock
