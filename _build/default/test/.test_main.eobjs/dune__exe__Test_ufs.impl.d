test/test_ufs.ml: Alcotest Bytes Cedar_disk Cedar_fsbase Cedar_unixfs Cedar_util Char Device Fs_ops Geometry Int64 Iostats List Printf Rng Simclock Ufs Ufs_params
