test/test_fsd_log.ml: Alcotest Bytes Cedar_disk Cedar_fsd Cedar_util Char Device Geometry Layout List Log Params Printf Simclock
