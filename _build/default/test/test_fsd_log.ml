(* Unit tests for the FSD redo log: record format, thirds, pointer
   maintenance, recovery under torn writes and sector damage. *)

open Cedar_util
open Cedar_disk
open Cedar_fsd

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let mk_layout () =
  let geom = Geometry.small_test in
  let params = Params.for_geometry geom in
  Layout.compute geom params

let mk () =
  let layout = mk_layout () in
  let clock = Simclock.create () in
  let device = Device.create ~clock layout.Layout.geom in
  Log.format device layout;
  (device, layout)

let attach ?(entered = ref []) device layout =
  Log.attach device layout ~boot_count:1 ~next_record_no:1_000_000L ~write_off:0
    ~on_enter_third:(fun j -> entered := j :: !entered)

let find_image images kind =
  List.find_map (fun (k, img, _no) -> if k = kind then Some img else None) images

let fnt_unit layout id fill =
  let n = layout.Layout.params.Params.fnt_page_sectors in
  let sb = layout.Layout.geom.Geometry.sector_bytes in
  { Log.kind = Log.Fnt_page id; image = Bytes.make (n * sb) fill }

let leader_unit layout sector fill =
  let sb = layout.Layout.geom.Geometry.sector_bytes in
  { Log.kind = Log.Leader_page sector; image = Bytes.make sb fill }

let test_append_and_recover_one () =
  let device, layout = mk () in
  let log = attach device layout in
  let units = [ fnt_unit layout 3 'a'; leader_unit layout 5000 'b' ] in
  ignore (Log.append log units : int);
  let r = Log.recover device layout in
  check int "one record" 1 r.Log.replayed_records;
  check int "two images" 2 (List.length r.Log.images);
  (match find_image r.Log.images (Log.Fnt_page 3) with
  | Some img -> check bool "fnt image content" true (Bytes.get img 0 = 'a')
  | None -> Alcotest.fail "fnt image missing");
  match find_image r.Log.images (Log.Leader_page 5000) with
  | Some img -> check bool "leader image content" true (Bytes.get img 0 = 'b')
  | None -> Alcotest.fail "leader image missing"

let test_record_numbering_chain () =
  let device, layout = mk () in
  let log = attach device layout in
  for i = 1 to 5 do
    ignore (Log.append log [ leader_unit layout (6000 + i) (Char.chr (48 + i)) ] : int)
  done;
  let r = Log.recover device layout in
  check int "five records" 5 r.Log.replayed_records;
  check int "five survivors" 5 (List.length r.Log.surviving)

let test_later_record_shadows_earlier () =
  let device, layout = mk () in
  let log = attach device layout in
  ignore (Log.append log [ fnt_unit layout 7 'x' ] : int);
  ignore (Log.append log [ fnt_unit layout 7 'y' ] : int);
  let r = Log.recover device layout in
  check int "both replayed" 2 r.Log.replayed_records;
  check int "deduped image" 1 (List.length r.Log.images);
  match r.Log.images with
  | [ (Log.Fnt_page 7, img, _) ] -> check bool "latest wins" true (Bytes.get img 0 = 'y')
  | _ -> Alcotest.fail "unexpected images"

let test_record_size_accounting () =
  (* The paper: a one-data-page record occupies 7 sectors (5 overhead +
     twice the data). *)
  let _device, layout = mk () in
  check int "7 sectors for 1 page"
    7
    (Log.record_total_sectors layout [ leader_unit layout 1234 'z' ]);
  (* 14 data pages -> 33 sectors, the paper's typical high-load record. *)
  let units = List.init 14 (fun i -> leader_unit layout (2000 + i) 'q') in
  check int "33 sectors for 14 pages" 33 (Log.record_total_sectors layout units)

let test_torn_write_drops_only_last_record () =
  let device, layout = mk () in
  let log = attach device layout in
  ignore (Log.append log [ fnt_unit layout 1 'a' ] : int);
  ignore (Log.append log [ fnt_unit layout 2 'b' ] : int);
  (* Cut the third record short before its end page can be written: the
     record has 4 data sectors, so header+blank+header' = 3 sectors, then
     cut mid-data. *)
  Device.plan_write_crash device ~after_sectors:5 ~damage_tail:1;
  (match Log.append log [ fnt_unit layout 3 'c' ] with
  | _ -> Alcotest.fail "expected crash"
  | exception Device.Crash_during_write _ -> ());
  let r = Log.recover device layout in
  check int "two committed records survive" 2 r.Log.replayed_records;
  check bool "torn record absent" true
    (find_image r.Log.images (Log.Fnt_page 3) = None)

let test_torn_write_after_end_page_commits () =
  let device, layout = mk () in
  let log = attach device layout in
  (* Prime the log so the pointer pages are not rewritten during the
     crashing append (a fresh log writes them on entering third 0). *)
  ignore (Log.append log [ fnt_unit layout 1 'a' ] : int);
  (* The end page is written at record offset 3+n; cutting during the
     data copies means the record is complete. *)
  let n = layout.Layout.params.Params.fnt_page_sectors in
  Device.plan_write_crash device ~after_sectors:(3 + n + 1 + 1) ~damage_tail:1;
  (match Log.append log [ fnt_unit layout 9 'k' ] with
  | _ -> Alcotest.fail "expected crash"
  | exception Device.Crash_during_write _ -> ());
  let r = Log.recover device layout in
  check int "both records committed despite torn copies" 2 r.Log.replayed_records;
  match find_image r.Log.images (Log.Fnt_page 9) with
  | Some img -> check bool "content" true (Bytes.get img 0 = 'k')
  | None -> Alcotest.fail "image missing"

let test_damage_tolerance_header_and_data () =
  let device, layout = mk () in
  let log = attach device layout in
  ignore (Log.append log [ fnt_unit layout 4 'm' ] : int);
  let body = layout.Layout.log_start + 3 in
  (* Damage the primary header and the first primary data sector: both are
     correctable from their copies. *)
  Device.damage device body;
  Device.damage device (body + 3);
  let r = Log.recover device layout in
  check int "still recovered" 1 r.Log.replayed_records;
  check bool "corrections counted" true (r.Log.corrected_sectors >= 2)

let test_damage_two_adjacent_sectors () =
  let device, layout = mk () in
  let log = attach device layout in
  ignore (Log.append log [ fnt_unit layout 4 'm' ] : int);
  let body = layout.Layout.log_start + 3 in
  (* The failure model: 1-2 consecutive sectors. Damage header+blank. *)
  Device.damage device body;
  Device.damage device (body + 1);
  let r = Log.recover device layout in
  check int "recovered via header copy" 1 r.Log.replayed_records

let test_pointer_replica_used () =
  let device, layout = mk () in
  let log = attach device layout in
  ignore (Log.append log [ fnt_unit layout 2 'p' ] : int);
  Device.damage device layout.Layout.log_start;
  let r = Log.recover device layout in
  check int "recovered from pointer copy" 1 r.Log.replayed_records

let test_thirds_flush_callback_and_wrap () =
  let device, layout = mk () in
  let entered = ref [] in
  let log = attach ~entered device layout in
  let third = (layout.Layout.log_sectors - 3) / 3 in
  let unit = fnt_unit layout 1 'w' in
  let size = Log.record_total_sectors layout [ unit ] in
  (* Write enough records to wrap the whole log twice. *)
  let records = 2 * 3 * third / size in
  for _ = 1 to records do
    ignore (Log.append log [ unit ] : int)
  done;
  let st = Log.stats log in
  check int "records counted" records st.Log.records;
  check bool "entered thirds several times" true (st.Log.third_entries >= 5);
  check bool "callback saw all thirds" true
    (List.sort_uniq compare !entered = [ 0; 1; 2 ]);
  (* After all that wrapping, the chain must still recover cleanly. *)
  let r = Log.recover device layout in
  check bool "some records recovered" true (r.Log.replayed_records > 0);
  check bool "images intact" true
    (match r.Log.images with
    | [ (Log.Fnt_page 1, img, _) ] -> Bytes.get img 0 = 'w'
    | _ -> false)

let test_utilization_five_sixths () =
  (* §5.3: the simple thirds algorithm averages 5/6 of the log in use.
     Live span = distance from the oldest pointed-to record to the write
     head; averaged over a long run it should be near 5/6 of the body. *)
  let device, layout = mk () in
  let log = attach device layout in
  let unit = fnt_unit layout 1 'u' in
  let size = Log.record_total_sectors layout [ unit ] in
  let body = 3 * ((layout.Layout.log_sectors - 3) / 3) in
  let samples = ref [] in
  for _ = 1 to 8 * body / size do
    ignore (Log.append log [ unit ] : int);
    let r = Log.recover device layout in
    let oldest = match r.Log.surviving with (o, _) :: _ -> o | [] -> 0 in
    let live = r.Log.next_write_off - oldest in
    let live = if live <= 0 then live + body else live in
    samples := float_of_int live :: !samples
  done;
  let mean = List.fold_left ( +. ) 0.0 !samples /. float_of_int (List.length !samples) in
  let frac = mean /. float_of_int body in
  check bool
    (Printf.sprintf "mean utilization %.2f within [0.55, 0.95]" frac)
    true
    (frac > 0.55 && frac < 0.95)

let test_thirds_entered_by () =
  let device, layout = mk () in
  let log = attach device layout in
  let third = (layout.Layout.log_sectors - 3) / 3 in
  (* Fresh log: current third is 0 and the write offset is 0, so a small
     record stays inside it... *)
  check (Alcotest.list int) "small record enters nothing new" []
    (Log.thirds_entered_by log ~record_sectors:9);
  (* ...while a record reaching past the boundary enters third 1. *)
  check (Alcotest.list int) "boundary-crossing record enters third 1" [ 1 ]
    (Log.thirds_entered_by log ~record_sectors:(third + 5));
  (* Fill most of third 0, then watch the prediction match reality. *)
  let unit = fnt_unit layout 1 'p' in
  let size = Log.record_total_sectors layout [ unit ] in
  for _ = 1 to third / size do
    ignore (Log.append log [ unit ] : int)
  done;
  let predicted = Log.thirds_entered_by log ~record_sectors:size in
  let before = (Log.stats log).Log.third_entries in
  ignore (Log.append log [ unit ] : int);
  let entered = (Log.stats log).Log.third_entries - before in
  check int "prediction matches entry count" (List.length predicted) entered

let test_oversized_record_rejected () =
  let device, layout = mk () in
  let log = attach device layout in
  let too_many =
    List.init (Log.max_data_sectors_hard layout + 1) (fun i -> leader_unit layout (3000 + i) 'x')
  in
  match Log.append log too_many with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- the track-tolerant record format (the §3 extension) ----------- *)

let tt_layout () =
  let geom = Geometry.small_test in
  let params =
    { (Params.for_geometry geom) with Params.track_tolerant_log = true }
  in
  Layout.compute geom params

let mk_tt () =
  let layout = tt_layout () in
  let clock = Simclock.create () in
  let device = Device.create ~clock layout.Layout.geom in
  Log.format device layout;
  (device, layout)

let test_tt_roundtrip () =
  let device, layout = mk_tt () in
  let log = attach device layout in
  let units = [ fnt_unit layout 3 'a'; leader_unit layout 5000 'b' ] in
  (* size: one track + data + header + end *)
  check int "tt record size"
    (layout.Layout.geom.Geometry.sectors_per_track
    + layout.Layout.params.Params.fnt_page_sectors
    + 1 + 2)
    (Log.record_total_sectors layout units);
  ignore (Log.append log units : int);
  ignore (Log.append log [ fnt_unit layout 4 'c' ] : int);
  let r = Log.recover device layout in
  check int "both recovered" 2 r.Log.replayed_records;
  check bool "image a" true
    (match find_image r.Log.images (Log.Fnt_page 3) with
    | Some img -> Bytes.get img 0 = 'a'
    | None -> false)

let test_tt_survives_whole_track_loss () =
  (* Damage every possible aligned AND unaligned window of a full track's
     width across the record: one copy of everything must survive. *)
  let spt = Geometry.small_test.Geometry.sectors_per_track in
  let layout = tt_layout () in
  let units = [ fnt_unit layout 7 'q'; leader_unit layout 6000 'r' ] in
  let size = Log.record_total_sectors layout units in
  let body = layout.Layout.log_start + 3 in
  for first = 0 to size - 1 do
    let clock = Simclock.create () in
    let device = Device.create ~clock layout.Layout.geom in
    Log.format device layout;
    let log =
      Log.attach device layout ~boot_count:1 ~next_record_no:1_000_000L ~write_off:0
        ~on_enter_third:(fun _ -> ())
    in
    ignore (Log.append log units : int);
    for k = 0 to spt - 1 do
      Device.damage device (body + first + k)
    done;
    let r = Log.recover device layout in
    if r.Log.replayed_records <> 1 then
      Alcotest.failf "track loss at offset %d destroyed the record" first;
    (match find_image r.Log.images (Log.Fnt_page 7) with
    | Some img when Bytes.get img 0 = 'q' -> ()
    | Some _ | None -> Alcotest.failf "track loss at %d: wrong/missing image" first)
  done

let test_classic_fails_under_track_loss () =
  (* The classic format (copies a few sectors apart) cannot survive a
     full-track hit placed over both copies — the reason the extension
     exists. *)
  let device, layout = mk () in
  let log = attach device layout in
  ignore (Log.append log [ fnt_unit layout 7 'x' ] : int);
  let spt = layout.Layout.geom.Geometry.sectors_per_track in
  let body = layout.Layout.log_start + 3 in
  for k = 0 to spt - 1 do
    Device.damage device (body + k)
  done;
  let r = Log.recover device layout in
  check int "record unrecoverable in classic mode" 0 r.Log.replayed_records

let test_tt_mixed_with_classic_records () =
  (* Per-record self-description: a volume can carry records of both
     layouts (e.g. after a runtime knob change) and recover them all. *)
  let geom = Geometry.small_test in
  let classic_params = Params.for_geometry geom in
  let tt_params = { classic_params with Params.track_tolerant_log = true } in
  let classic_layout = Layout.compute geom classic_params in
  let tt = Layout.compute geom tt_params in
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  Log.format device classic_layout;
  let log1 =
    Log.attach device classic_layout ~boot_count:1 ~next_record_no:10L ~write_off:0
      ~on_enter_third:(fun _ -> ())
  in
  ignore (Log.append log1 [ fnt_unit classic_layout 1 'c' ] : int);
  let off = (2 * classic_layout.Layout.params.Params.fnt_page_sectors) + 5 in
  let log2 =
    Log.attach device tt ~boot_count:1 ~next_record_no:11L ~write_off:off
      ~on_enter_third:(fun _ -> ())
  in
  (* attach rewrote the pointer to (off, 11): the classic record at 0 is
     no longer in the chain, but the tt record must recover *)
  ignore (Log.append log2 [ fnt_unit tt 2 't' ] : int);
  let r = Log.recover device tt in
  check int "tt record recovered" 1 r.Log.replayed_records;
  check bool "tt image" true
    (match find_image r.Log.images (Log.Fnt_page 2) with
    | Some img -> Bytes.get img 0 = 't'
    | None -> false)

let suite =
  [
    ("append and recover one", `Quick, test_append_and_recover_one);
    ("record numbering chain", `Quick, test_record_numbering_chain);
    ("later record shadows earlier", `Quick, test_later_record_shadows_earlier);
    ("record size accounting (7 and 33)", `Quick, test_record_size_accounting);
    ("torn write drops only last record", `Quick, test_torn_write_drops_only_last_record);
    ("torn write after end page commits", `Quick, test_torn_write_after_end_page_commits);
    ("damage tolerance header+data", `Quick, test_damage_tolerance_header_and_data);
    ("damage two adjacent sectors", `Quick, test_damage_two_adjacent_sectors);
    ("pointer replica used", `Quick, test_pointer_replica_used);
    ("thirds flush and wrap", `Quick, test_thirds_flush_callback_and_wrap);
    ("log utilization ~5/6", `Quick, test_utilization_five_sixths);
    ("thirds_entered_by predicts entries", `Quick, test_thirds_entered_by);
    ("oversized record rejected", `Quick, test_oversized_record_rejected);
    ("track-tolerant: roundtrip", `Quick, test_tt_roundtrip);
    ("track-tolerant: survives whole-track loss", `Slow, test_tt_survives_whole_track_loss);
    ("classic fails under track loss", `Quick, test_classic_fails_under_track_loss);
    ("mixed-format logs recover", `Quick, test_tt_mixed_with_classic_records);
  ]
