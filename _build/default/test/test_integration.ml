(* Cross-system integration tests: the same operation scripts driven
   through the generic Fs_ops interface on FSD, CFS and the BSD baseline
   must agree with an in-memory reference model — and with each other. *)

open Cedar_util
open Cedar_disk
open Cedar_fsbase

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

type system = { label : string; ops : Fs_ops.t; finish : unit -> unit }

let mk_fsd () =
  let clock = Simclock.create () in
  let device = Device.create ~clock Geometry.small_test in
  Cedar_fsd.Fsd.format device (Cedar_fsd.Params.for_geometry Geometry.small_test);
  let fs, _ = Cedar_fsd.Fsd.boot device in
  { label = "fsd"; ops = Cedar_fsd.Fsd.ops fs; finish = (fun () -> Cedar_fsd.Fsd.shutdown fs) }

let mk_cfs () =
  let clock = Simclock.create () in
  let device = Device.create ~clock Geometry.small_test in
  Cedar_cfs.Cfs.format device (Cedar_cfs.Cfs_layout.params_for_geometry Geometry.small_test);
  match Cedar_cfs.Cfs.boot device with
  | `Ok fs ->
    { label = "cfs"; ops = Cedar_cfs.Cfs.ops fs; finish = (fun () -> Cedar_cfs.Cfs.shutdown fs) }
  | `Needs_scavenge -> Alcotest.fail "cfs boot"

let mk_ufs () =
  let clock = Simclock.create () in
  let device = Device.create ~clock Geometry.small_test in
  Cedar_unixfs.Ufs.mkfs device (Cedar_unixfs.Ufs_params.for_geometry Geometry.small_test);
  match Cedar_unixfs.Ufs.mount device with
  | `Ok fs ->
    { label = "ufs"; ops = Cedar_unixfs.Ufs.ops fs; finish = (fun () -> Cedar_unixfs.Ufs.unmount fs) }
  | `Needs_fsck -> Alcotest.fail "ufs mount"

let all_systems () = [ mk_fsd (); mk_cfs (); mk_ufs () ]

let content n seed = Bytes.init n (fun i -> Char.chr ((i + seed) mod 251))

(* A deterministic op script interpreted against both the FS and a Map.
   BSD has no versions, so the script only ever overwrites or deletes
   the newest (= only) version — semantics all three share. *)
type op = Create of int * int * int | Delete of int | Read of int | List_all

let names = [| "w/alpha"; "w/beta"; "w/gamma"; "w/delta"; "w/epsilon" |]

let script_of_rng rng n =
  List.init n (fun _ ->
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 -> Create (Rng.int rng 5, Rng.int rng 3000, Rng.int rng 100)
      | 4 | 5 -> Delete (Rng.int rng 5)
      | 6 | 7 | 8 -> Read (Rng.int rng 5)
      | _ -> List_all)

let run_script sys script =
  let module M = Map.Make (String) in
  let reference = ref M.empty in
  let trace = Buffer.create 256 in
  List.iter
    (fun op ->
      match op with
      | Create (ni, size, seed) ->
        let name = names.(ni) in
        let data = content size seed in
        ignore (sys.ops.Fs_ops.create ~name ~data);
        (* CFS/FSD keep old versions; the reference tracks the newest,
           which is what read_all and list report. *)
        reference := M.add name data !reference;
        Buffer.add_string trace (Printf.sprintf "C%d;" ni)
      | Delete ni -> (
        let name = names.(ni) in
        match M.find_opt name !reference with
        | None -> (
          match sys.ops.Fs_ops.delete ~name with
          | () ->
            (* versioned systems may still hold an older version *)
            ()
          | exception Fs_error.Fs_error (Fs_error.No_such_file _) -> ())
        | Some _ ->
          sys.ops.Fs_ops.delete ~name;
          (* the newest version is gone; an older version may resurface
             on the versioned systems, so re-sync the reference *)
          (match sys.ops.Fs_ops.read_all ~name with
          | data -> reference := M.add name data !reference
          | exception Fs_error.Fs_error (Fs_error.No_such_file _) ->
            reference := M.remove name !reference);
          Buffer.add_string trace (Printf.sprintf "D%d;" ni))
      | Read ni -> (
        let name = names.(ni) in
        let got =
          match sys.ops.Fs_ops.read_all ~name with
          | d -> Some d
          | exception Fs_error.Fs_error (Fs_error.No_such_file _) -> None
        in
        match (M.find_opt name !reference, got) with
        | Some expected, Some data ->
          if not (Bytes.equal expected data) then
            Alcotest.fail
              (Printf.sprintf "%s: content mismatch on %s after %s" sys.label name
                 (Buffer.contents trace))
        | None, Some _ ->
          Alcotest.fail (Printf.sprintf "%s: phantom file %s" sys.label name)
        | Some _, None ->
          Alcotest.fail (Printf.sprintf "%s: lost file %s" sys.label name)
        | None, None -> ())
      | List_all ->
        let listed =
          match sys.ops.Fs_ops.list ~prefix:"w/" with
          | l -> l |> List.map (fun i -> i.Fs_ops.name) |> List.sort_uniq compare
          | exception Fs_error.Fs_error (Fs_error.No_such_file _) ->
            [] (* BSD: the directory does not exist until the first create *)
        in
        let expected = M.bindings !reference |> List.map fst |> List.sort compare in
        (* versioned systems may list names whose newest version the
           reference dropped only if we mis-tracked; require equality *)
        if listed <> expected then
          Alcotest.fail
            (Printf.sprintf "%s: list mismatch [%s] vs [%s] after %s" sys.label
               (String.concat "," listed) (String.concat "," expected)
               (Buffer.contents trace)))
    script;
  !reference

let test_script_agreement () =
  let script = script_of_rng (Rng.create 2024) 120 in
  List.iter
    (fun sys ->
      ignore (run_script sys script);
      sys.finish ())
    (all_systems ())

let prop_random_scripts_agree =
  QCheck.Test.make ~name:"random op scripts behave identically on all systems" ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      let script = script_of_rng (Rng.create (seed + 1)) 60 in
      List.for_all
        (fun sys ->
          ignore (run_script sys script);
          sys.finish ();
          true)
        (all_systems ()))

(* FSD survives a crash mid-script; CFS's scavenger yields the same
   surviving set of (committed) files. *)
let test_fsd_crash_vs_cfs_scavenge_equivalence () =
  let fsd_clock = Simclock.create () in
  let fsd_dev = Device.create ~clock:fsd_clock Geometry.small_test in
  Cedar_fsd.Fsd.format fsd_dev (Cedar_fsd.Params.for_geometry Geometry.small_test);
  let fsd, _ = Cedar_fsd.Fsd.boot fsd_dev in
  let cfs_clock = Simclock.create () in
  let cfs_dev = Device.create ~clock:cfs_clock Geometry.small_test in
  Cedar_cfs.Cfs.format cfs_dev (Cedar_cfs.Cfs_layout.params_for_geometry Geometry.small_test);
  let cfs =
    match Cedar_cfs.Cfs.boot cfs_dev with `Ok fs -> fs | `Needs_scavenge -> assert false
  in
  for i = 0 to 29 do
    let data = content (100 + (i * 37)) i in
    ignore (Cedar_fsd.Fsd.create fsd ~name:(Printf.sprintf "x/f%02d" i) data);
    ignore (Cedar_cfs.Cfs.create cfs ~name:(Printf.sprintf "x/f%02d" i) data)
  done;
  Cedar_fsd.Fsd.force fsd;
  (* crash both *)
  let fsd2, _ = Cedar_fsd.Fsd.boot fsd_dev in
  let cfs2, _ = Cedar_cfs.Cfs.scavenge cfs_dev in
  let names ops =
    ops.Fs_ops.list ~prefix:"x/" |> List.map (fun i -> i.Fs_ops.name) |> List.sort compare
  in
  check (Alcotest.list Alcotest.string) "same survivors"
    (names (Cedar_fsd.Fsd.ops fsd2))
    (names (Cedar_cfs.Cfs.ops cfs2));
  for i = 0 to 29 do
    let name = Printf.sprintf "x/f%02d" i in
    let data = content (100 + (i * 37)) i in
    check bool (name ^ " fsd") true
      (Bytes.equal data (Cedar_fsd.Fsd.read_all fsd2 ~name));
    check bool (name ^ " cfs") true (Bytes.equal data (Cedar_cfs.Cfs.read_all cfs2 ~name))
  done

(* The long game: many sessions of work, clean and dirty shutdowns mixed,
   checking structural invariants at every boot. *)
let test_fsd_many_sessions () =
  let clock = Simclock.create () in
  let device = Device.create ~clock Geometry.small_test in
  Cedar_fsd.Fsd.format device (Cedar_fsd.Params.for_geometry Geometry.small_test);
  let rng = Rng.create 77 in
  let committed : (string, bytes) Hashtbl.t = Hashtbl.create 64 in
  let session k =
    let fs, _ = Cedar_fsd.Fsd.boot device in
    (* every committed file from previous sessions must be intact *)
    Hashtbl.iter
      (fun name data ->
        if not (Bytes.equal data (Cedar_fsd.Fsd.read_all fs ~name)) then
          Alcotest.fail ("session " ^ string_of_int k ^ ": lost " ^ name))
      committed;
    (match Cedar_fsd.Fsd.check fs with
    | Ok () -> ()
    | Error m -> Alcotest.fail ("session check: " ^ m));
    for i = 0 to 14 do
      let name = Printf.sprintf "s%02d/f%02d" k i in
      let data = content (Rng.int rng 2000) (Rng.int rng 100) in
      ignore (Cedar_fsd.Fsd.create fs ~name ~keep:1 data);
      if Rng.chance rng 0.3 then Cedar_fsd.Fsd.tick fs ~us:200_000;
      if Rng.chance rng 0.2 && Hashtbl.length committed > 4 then begin
        (* delete some old committed file *)
        let victims = Hashtbl.fold (fun n _ acc -> n :: acc) committed [] in
        let victim = List.nth victims (Rng.int rng (List.length victims)) in
        Cedar_fsd.Fsd.delete fs ~name:victim;
        Hashtbl.remove committed victim
      end;
      (* deletions and creates this session commit below *)
      Hashtbl.replace committed name data
    done;
    Cedar_fsd.Fsd.force fs;
    if Rng.chance rng 0.5 then Cedar_fsd.Fsd.shutdown fs (* else: crash *)
  in
  for k = 0 to 11 do
    session k
  done;
  (* final boot and audit *)
  let fs, _ = Cedar_fsd.Fsd.boot device in
  check bool "final check" true (Cedar_fsd.Fsd.check fs = Ok ());
  check int "file population as expected" (Hashtbl.length committed)
    (List.length (Cedar_fsd.Fsd.list fs ~prefix:""))

(* A long soak on one FSD volume: thousands of mixed operations with
   interval commits, periodic crashes and occasional clean shutdowns,
   auditing structure and the committed model as it goes. *)
let test_fsd_soak () =
  let geom = Geometry.small_test in
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  Cedar_fsd.Fsd.format device (Cedar_fsd.Params.for_geometry geom);
  let fs = ref (fst (Cedar_fsd.Fsd.boot device)) in
  let rng = Rng.create 2026 in
  let committed : (string, bytes) Hashtbl.t = Hashtbl.create 256 in
  let pending : (string, bytes option) Hashtbl.t = Hashtbl.create 32 in
  let last_forces = ref 0 in
  let commit_pending () =
    Hashtbl.iter
      (fun name data ->
        match data with
        | Some d -> Hashtbl.replace committed name d
        | None -> Hashtbl.remove committed name)
      pending;
    Hashtbl.reset pending
  in
  (* the commit demon can fire inside any operation; promote the model's
     pending set whenever the force counter moves *)
  let sync_forces () =
    let f = (Cedar_fsd.Fsd.counters !fs).Cedar_fsd.Fsd.forces in
    if f > !last_forces then begin
      commit_pending ();
      last_forces := f
    end
  in
  let audit label =
    (match Cedar_fsd.Fsd.check !fs with
    | Ok () -> ()
    | Error m -> Alcotest.failf "%s: %s" label m);
    Hashtbl.iter
      (fun name data ->
        if not (Hashtbl.mem pending name) then
          match Cedar_fsd.Fsd.read_all !fs ~name with
          | got ->
            if not (Bytes.equal data got) then Alcotest.failf "%s: %s diverged" label name
          | exception Fs_error.Fs_error _ -> Alcotest.failf "%s: %s lost" label name)
      committed
  in
  for step = 1 to 2_500 do
    let name = Printf.sprintf "soak/%02d" (Rng.int rng 40) in
    (try
       (match Rng.int rng 12 with
       | 0 | 1 | 2 | 3 | 4 ->
         let data = content (Rng.int rng 2500) step in
         ignore (Cedar_fsd.Fsd.create !fs ~name ~keep:1 data);
         Hashtbl.replace pending name (Some data)
       | 5 | 6 ->
         if Cedar_fsd.Fsd.exists !fs ~name then begin
           Cedar_fsd.Fsd.delete !fs ~name;
           Hashtbl.replace pending name None
         end
       | 7 -> if Cedar_fsd.Fsd.exists !fs ~name then ignore (Cedar_fsd.Fsd.read_all !fs ~name)
       | 8 -> ignore (Cedar_fsd.Fsd.list !fs ~prefix:"soak/")
       | 9 ->
         Cedar_fsd.Fsd.force !fs;
         commit_pending ()
       | 10 -> Cedar_fsd.Fsd.tick !fs ~us:(Rng.int rng 700_000)
       | _ ->
         if Rng.bool rng then begin
           Cedar_fsd.Fsd.shutdown !fs;
           commit_pending ()
         end
         else begin
           sync_forces ();
           Hashtbl.reset pending (* crash: uncommitted ops lost *)
         end;
         fs := fst (Cedar_fsd.Fsd.boot device);
         last_forces := 0;
         audit (Printf.sprintf "step %d (reboot)" step));
       sync_forces ()
     with Fs_error.Fs_error Fs_error.Volume_full ->
       (* free space and resynchronise the model with the file system *)
       Cedar_fsd.Fsd.force !fs;
       commit_pending ();
       last_forces := (Cedar_fsd.Fsd.counters !fs).Cedar_fsd.Fsd.forces;
       List.iter
         (fun i ->
           let n = Printf.sprintf "soak/%02d" i in
           if i mod 2 = 0 && Cedar_fsd.Fsd.exists !fs ~name:n then begin
             Cedar_fsd.Fsd.delete !fs ~name:n;
             Hashtbl.remove committed n
           end)
         (List.init 40 Fun.id);
       Cedar_fsd.Fsd.force !fs;
       last_forces := (Cedar_fsd.Fsd.counters !fs).Cedar_fsd.Fsd.forces)
  done;
  Cedar_fsd.Fsd.force !fs;
  commit_pending ();
  audit "final"

let suite =
  [
    ("deterministic script on all systems", `Quick, test_script_agreement);
    QCheck_alcotest.to_alcotest prop_random_scripts_agree;
    ( "fsd crash and cfs scavenge agree on survivors",
      `Quick,
      test_fsd_crash_vs_cfs_scavenge_equivalence );
    ("fsd across many sessions with crashes", `Quick, test_fsd_many_sessions);
    ("fsd soak (2500 mixed ops)", `Slow, test_fsd_soak);
  ]
