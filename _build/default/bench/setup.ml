(* Volume builders for the benchmark harness: fresh Trident-class 300 MB
   volumes for each system, plus helpers shared across tables. *)

open Cedar_util
open Cedar_disk

let geom = Geometry.trident_t300

let fsd_volume () =
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  Cedar_fsd.Fsd.format device Cedar_fsd.Params.default;
  let fs, _report = Cedar_fsd.Fsd.boot device in
  (device, fs)

let cfs_volume () =
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  Cedar_cfs.Cfs.format device Cedar_cfs.Cfs_layout.default_params;
  match Cedar_cfs.Cfs.boot device with
  | `Ok fs -> (device, fs)
  | `Needs_scavenge -> failwith "fresh CFS volume failed to boot"

let ufs_volume params =
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  Cedar_unixfs.Ufs.mkfs device params;
  match Cedar_unixfs.Ufs.mount device with
  | `Ok fs -> (device, fs)
  | `Needs_fsck -> failwith "fresh UFS volume failed to mount"

(* Populate a volume through the generic interface so every system gets
   the same "moderately full" state. *)
let populate (ops : Cedar_fsbase.Fs_ops.t) ~files ~seed =
  let rng = Rng.create seed in
  for i = 0 to files - 1 do
    let dir = Printf.sprintf "vol/d%02d" (i mod 20) in
    let size = Cedar_workload.Sizes.sample rng in
    let data = Bytes.init size (fun j -> Char.chr ((i + j) mod 251)) in
    ignore (ops.Cedar_fsbase.Fs_ops.create ~name:(Printf.sprintf "%s/f%05d" dir i) ~data)
  done;
  ops.Cedar_fsbase.Fs_ops.force ()

let pct x = x *. 100.0

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')
