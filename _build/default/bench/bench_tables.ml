(* Reproduction harness: one function per table/figure of the paper.
   Each prints the measured rows next to the paper's published values.
   Absolute times depend on the simulated Trident-era geometry; the
   claims under test are the shapes (who wins, by roughly what factor). *)

open Cedar_util
open Cedar_disk
open Cedar_fsbase
open Cedar_workload
module Fsd = Cedar_fsd.Fsd
module Fparams = Cedar_fsd.Params
module Flayout = Cedar_fsd.Layout
module Flog = Cedar_fsd.Log
module Cfs = Cedar_cfs.Cfs
module Ufs = Cedar_unixfs.Ufs
module Uparams = Cedar_unixfs.Ufs_params

let pf = Printf.printf

(* ------------------------------------------------------------------ *)
(* Table 1: disk data structures (structural comparison)               *)

let table1 () =
  Setup.hr "Table 1. Disk data structures for local files (CFS vs FSD)";
  pf
    {|CFS   File name table entry : text name, version, keep, uid,
                               header page 0 disk address
      Header (2 sectors)     : run table, byte size, keep, create time,
                               version, text name
      Labels (every sector)  : uid, page number, page type (header/free/data)

FSD   File name table entry : text name, version, keep, uid, run table,
                               byte size, create time
      Leader (1 sector)      : uid, preamble of run table,
                               checksum of run table
      (no labels; the name table is written twice, updates are logged)
|};
  pf "Both name tables are B-trees; FSD's pages carry checksums and are\n";
  pf "written at two locations with independent failure modes.\n"

(* ------------------------------------------------------------------ *)
(* Shared measurement helpers                                          *)

let payload i n = Bytes.init n (fun j -> Char.chr ((i + j) mod 251))

(* Between measured operations the arm is sent somewhere else on the
   volume (uncounted), so every operation pays a realistic initial seek —
   as in the paper's scripts, which all begin with one. *)
let disturb (ops : Fs_ops.t) i =
  let total = Geometry.total_sectors (Device.geometry ops.Fs_ops.device) in
  let corner = [| total / 9; total * 8 / 9; total / 4; total * 3 / 4 |] in
  ignore (Device.read ops.Fs_ops.device corner.(i mod 4))

let avg_ms ops n f =
  let total = ref 0 in
  for i = 0 to n - 1 do
    disturb ops i;
    let t0 = Simclock.now ops.Fs_ops.clock in
    f i;
    total := !total + (Simclock.now ops.Fs_ops.clock - t0)
  done;
  float_of_int !total /. 1000.0 /. float_of_int n

(* ------------------------------------------------------------------ *)
(* Table 2: wall-clock times, CFS vs FSD                               *)

type t2 = {
  small_create : float;
  large_create : float;
  open_ : float;
  open_read : float;
  small_delete : float;
  large_delete : float;
  read_page : float;
  recovery_s : float;
}

let large_pages = 1000

let measure_fsd_t2 () =
  let device, fs = Setup.fsd_volume () in
  let ops = Fsd.ops fs in
  let n = 20 in
  let small_create =
    avg_ms ops n (fun i ->
        ignore (ops.Fs_ops.create ~name:(Printf.sprintf "dir/s%03d" i) ~data:(payload i 900)))
  in
  let large_create =
    avg_ms ops 3 (fun i ->
        ignore
          (ops.Fs_ops.create
             ~name:(Printf.sprintf "dir/L%03d" i)
             ~data:(payload i (large_pages * 512))))
  in
  Fsd.force fs;
  let open_ =
    avg_ms ops n (fun i -> ignore (ops.Fs_ops.open_stat ~name:(Printf.sprintf "dir/s%03d" i)))
  in
  (* open + first data access on files never read before (fresh boot
     clears the verified set -> leader piggyback path) *)
  for i = 0 to n - 1 do
    ignore (ops.Fs_ops.create ~name:(Printf.sprintf "dir/r%03d" i) ~data:(payload i 900))
  done;
  Fsd.shutdown fs;
  let fs, _ = Fsd.boot device in
  let ops = Fsd.ops fs in
  (* "Open + Read" is one combined operation: resolve the name and read
     the first page (FSD verifies the leader by piggybacking). *)
  let open_read =
    avg_ms ops n (fun i ->
        ignore (ops.Fs_ops.read_page ~name:(Printf.sprintf "dir/r%03d" i) ~page:0))
  in
  let read_page =
    avg_ms ops n (fun i ->
        ignore (ops.Fs_ops.read_page ~name:(Printf.sprintf "dir/r%03d" i) ~page:0))
  in
  let small_delete =
    avg_ms ops n (fun i -> ops.Fs_ops.delete ~name:(Printf.sprintf "dir/s%03d" i))
  in
  let large_delete =
    avg_ms ops 3 (fun i -> ops.Fs_ops.delete ~name:(Printf.sprintf "dir/L%03d" i))
  in
  (* crash recovery on a moderately full volume *)
  Setup.populate ops ~files:6000 ~seed:11;
  let _fs2, report = Fsd.boot device in
  let recovery_s = Simclock.s_of_us report.Fsd.total_us in
  {
    small_create;
    large_create;
    open_;
    open_read;
    small_delete;
    large_delete;
    read_page;
    recovery_s;
  }

let measure_cfs_t2 () =
  let device, fs = Setup.cfs_volume () in
  let ops = Cfs.ops fs in
  let n = 20 in
  let small_create =
    avg_ms ops n (fun i ->
        ignore (ops.Fs_ops.create ~name:(Printf.sprintf "dir/s%03d" i) ~data:(payload i 900)))
  in
  let large_create =
    avg_ms ops 3 (fun i ->
        ignore
          (ops.Fs_ops.create
             ~name:(Printf.sprintf "dir/L%03d" i)
             ~data:(payload i (large_pages * 512))))
  in
  Cfs.drop_open_cache fs;
  let open_ =
    avg_ms ops n (fun i -> ignore (ops.Fs_ops.open_stat ~name:(Printf.sprintf "dir/s%03d" i)))
  in
  Cfs.drop_open_cache fs;
  let open_read =
    avg_ms ops n (fun i ->
        ignore (ops.Fs_ops.read_page ~name:(Printf.sprintf "dir/s%03d" i) ~page:0))
  in
  let read_page =
    avg_ms ops n (fun i ->
        ignore (ops.Fs_ops.read_page ~name:(Printf.sprintf "dir/s%03d" i) ~page:0))
  in
  let small_delete =
    avg_ms ops n (fun i -> ops.Fs_ops.delete ~name:(Printf.sprintf "dir/s%03d" i))
  in
  let large_delete =
    avg_ms ops 3 (fun i -> ops.Fs_ops.delete ~name:(Printf.sprintf "dir/L%03d" i))
  in
  Setup.populate ops ~files:6000 ~seed:11;
  (* crash: no shutdown; CFS must scavenge *)
  let _fs2, report = Cfs.scavenge device in
  let recovery_s = Simclock.s_of_us report.Cfs.duration_us in
  {
    small_create;
    large_create;
    open_;
    open_read;
    small_delete;
    large_delete;
    read_page;
    recovery_s;
  }

let table2 () =
  Setup.hr "Table 2. CFS vs FSD, wall clock (ms; paper values in brackets)";
  let cfs = measure_cfs_t2 () in
  let fsd = measure_fsd_t2 () in
  let row name c f (pc, pff, ps) =
    pf "%-16s %9.1f %9.1f  speedup %5.2fx   [%s %s, %sx]\n" name c f (c /. f) pc
      pff ps
  in
  pf "%-16s %9s %9s\n" "" "CFS" "FSD";
  row "Small create" cfs.small_create fsd.small_create ("264", "70", "3.77");
  row "Large create" cfs.large_create fsd.large_create ("7674", "2730", "2.81");
  row "Open" cfs.open_ fsd.open_ ("51.2", "11.7", "4.38");
  row "Open + Read" cfs.open_read fsd.open_read ("68.5", "35.4", "1.94");
  row "Small delete" cfs.small_delete fsd.small_delete ("214", "15", "14.5");
  row "Large delete" cfs.large_delete fsd.large_delete ("2692", "118", "22.8");
  row "Read page" cfs.read_page fsd.read_page ("41", "41", "1.0");
  pf "%-16s %8.1fs %8.1fs  speedup %5.0fx   [3600+ s, 25 s, 100+x]\n"
    "Crash recovery" cfs.recovery_s fsd.recovery_s (cfs.recovery_s /. fsd.recovery_s)

(* ------------------------------------------------------------------ *)
(* Tables 3 and 4: disk I/O counts                                     *)

type bulk_ios = { creates : int; list_warm : int; list : int; reads : int }

(* The paper's list/read rows imply a warm name-table cache (FSD lists
   100 files in 3 I/Os); we report the cold-cache count, with the
   warm-cache count alongside. Cold FSD reads fetch BOTH copies of each
   missed name-table page (§5.1), which the paper's counts do not show. *)
let bulk_on (ops : Fs_ops.t) ~drop_caches =
  let creates = (Bulk.create_many ops ~dir:"bulkdir" ~n:100 ~bytes_each:700).Measure.ios in
  let list_warm = (Bulk.list_dir ops ~dir:"bulkdir" ~expect:100).Measure.ios in
  drop_caches ();
  let list = (Bulk.list_dir ops ~dir:"bulkdir" ~expect:100).Measure.ios in
  drop_caches ();
  let reads = (Bulk.read_many ops ~dir:"bulkdir" ~n:100).Measure.ios in
  { creates; list_warm; list; reads }

let table3 () =
  Setup.hr "Table 3. CFS vs FSD, disk I/Os (paper values in brackets)";
  let _, cfs_fs = Setup.cfs_volume () in
  let cfs = bulk_on (Cfs.ops cfs_fs) ~drop_caches:(fun () -> Cfs.drop_open_cache cfs_fs) in
  let _, fsd_fs = Setup.fsd_volume () in
  let fsd = bulk_on (Fsd.ops fsd_fs) ~drop_caches:(fun () -> Fsd.drop_caches fsd_fs) in
  (* MakeDo on fresh volumes *)
  let makedo ops =
    Makedo.prepare ops Makedo.default;
    (Makedo.build ops Makedo.default).Measure.ios
  in
  let _, cfs2 = Setup.cfs_volume () in
  let cfs_makedo = makedo (Cfs.ops cfs2) in
  let _, fsd2 = Setup.fsd_volume () in
  let fsd_makedo = makedo (Fsd.ops fsd2) in
  let row name c f (pc, pff, pr) =
    pf "%-26s %7d %7d  ratio %5.2f   [%s %s, %s]\n" name c f
      (float_of_int c /. float_of_int (max 1 f))
      pc pff pr
  in
  pf "%-26s %7s %7s\n" "" "CFS" "FSD";
  row "100 small creates" cfs.creates fsd.creates ("874", "149", "5.87");
  row "list 100 files (cold)" cfs.list fsd.list ("146", "3", "48.7");
  row "list 100 files (warm)" cfs.list_warm fsd.list_warm ("-", "-", "-");
  row "read 100 small files" cfs.reads fsd.reads ("262", "101", "2.69");
  row "MakeDo" cfs_makedo fsd_makedo ("1975", "1299", "1.52")

let table4 () =
  Setup.hr "Table 4. FSD vs 4.3 BSD, disk I/Os (paper values in brackets)";
  let _, fsd_fs = Setup.fsd_volume () in
  let fsd = bulk_on (Fsd.ops fsd_fs) ~drop_caches:(fun () -> Fsd.drop_caches fsd_fs) in
  let _, ufs_fs = Setup.ufs_volume Uparams.default in
  let ufs = bulk_on (Ufs.ops ufs_fs) ~drop_caches:(fun () -> Ufs.drop_clean_cache ufs_fs) in
  let row name f u (pff, pu, pr) =
    pf "%-26s %7d %7d  ratio %5.2f   [%s %s, %s]\n" name f u
      (float_of_int u /. float_of_int (max 1 f))
      pff pu pr
  in
  pf "%-26s %7s %7s\n" "" "FSD" "4.3BSD";
  row "100 small creates" fsd.creates ufs.creates ("149", "308", "2.07");
  row "list 100 files (cold)" fsd.list ufs.list ("3", "9", "3");
  row "list 100 files (warm)" fsd.list_warm ufs.list_warm ("-", "-", "-");
  row "read 100 small files" fsd.reads ufs.reads ("101", "106", "1.05");
  pf "(cold FSD misses read both name-table copies; the paper counted warm caches)\n"

(* ------------------------------------------------------------------ *)
(* Table 5: % CPU and % disk bandwidth on sequential transfers         *)

let table5 () =
  Setup.hr "Table 5. FSD vs 4.2 BSD: %CPU / %bandwidth (paper in brackets)";
  let geom = Setup.geom in
  let size = 2 * 1024 * 1024 in
  let data = payload 0 size in
  (* FSD: extent-based transfers; CPU charges are on the clock. *)
  let _, fsd_fs = Setup.fsd_volume () in
  let fops = Fsd.ops fsd_fs in
  let (), wr =
    Measure.run fops (fun () ->
        ignore (fops.Fs_ops.create ~name:"seq/big" ~data);
        fops.Fs_ops.force ())
  in
  let (), rd = Measure.run fops (fun () -> ignore (fops.Fs_ops.read_all ~name:"seq/big")) in
  let fsd_cpu_us pages = pages * Fparams.default.Fparams.cpu_page_us in
  let pages = (size + 511) / 512 in
  let fsd_row label (s : Measure.sample) =
    let bw = Setup.pct (Measure.bandwidth_fraction geom ~bytes_moved:size ~elapsed_us:s.Measure.elapsed_us) in
    let cpu = Setup.pct (float_of_int (fsd_cpu_us pages) /. float_of_int s.Measure.elapsed_us) in
    (label, cpu, bw)
  in
  (* 4.2 BSD: rotational spacing; data-path CPU overlaps the gaps. *)
  let _, ufs_fs = Setup.ufs_volume Uparams.bsd42 in
  let uops = Ufs.ops ufs_fs in
  let cpu0 = Ufs.cpu_overlapped_us ufs_fs in
  let (), uwr =
    Measure.run uops (fun () ->
        ignore (uops.Fs_ops.create ~name:"seq-big" ~data);
        uops.Fs_ops.force ())
  in
  let cpu_wr = Ufs.cpu_overlapped_us ufs_fs - cpu0 in
  let cpu1 = Ufs.cpu_overlapped_us ufs_fs in
  let (), urd = Measure.run uops (fun () -> ignore (uops.Fs_ops.read_all ~name:"seq-big")) in
  let cpu_rd = Ufs.cpu_overlapped_us ufs_fs - cpu1 in
  let ufs_row label (s : Measure.sample) cpu_us =
    let bw = Setup.pct (Measure.bandwidth_fraction geom ~bytes_moved:size ~elapsed_us:s.Measure.elapsed_us) in
    let cpu = min 98.0 (Setup.pct (float_of_int cpu_us /. float_of_int s.Measure.elapsed_us)) in
    (label, cpu, bw)
  in
  let rows =
    [
      (fsd_row "FSD read" rd, "[27 / 79]");
      (fsd_row "FSD write" wr, "[28 / 80]");
      (ufs_row "4.2BSD read" urd cpu_rd, "[54 / 47]");
      (ufs_row "4.2BSD write" uwr cpu_wr, "[95 / 47]");
    ]
  in
  pf "%-14s %6s %11s\n" "" "%CPU" "%bandwidth";
  List.iter
    (fun ((label, cpu, bw), paper) ->
      pf "%-14s %5.0f%% %10.0f%%   %s\n" label cpu bw paper)
    rows

(* ------------------------------------------------------------------ *)
(* R1: crash recovery across all three systems                         *)

let recovery () =
  Setup.hr "R1. Crash recovery on a moderately full volume (paper: CFS 3600+ s, FSD 1-25 s, fsck ~420 s)";
  let files = 6000 in
  (* FSD *)
  let device, fsd_fs = Setup.fsd_volume () in
  Setup.populate (Fsd.ops fsd_fs) ~files ~seed:3;
  let _, report = Fsd.boot device in
  pf "FSD    recover:  %5.1f s  (log replay %.2f s, VAM rebuild %.1f s, %d records)\n"
    (Simclock.s_of_us report.Fsd.total_us)
    (Simclock.s_of_us report.Fsd.log_replay_us)
    (Simclock.s_of_us report.Fsd.vam_us)
    report.Fsd.replayed_records;
  (* CFS *)
  let device, cfs_fs = Setup.cfs_volume () in
  Setup.populate (Cfs.ops cfs_fs) ~files ~seed:3;
  let _, srep = Cfs.scavenge device in
  pf "CFS    scavenge: %5.1f s  (%d files recovered)\n"
    (Simclock.s_of_us srep.Cfs.duration_us)
    srep.Cfs.files_recovered;
  (* 4.3 BSD *)
  let device, ufs_fs = Setup.ufs_volume Uparams.default in
  Setup.populate (Ufs.ops ufs_fs) ~files ~seed:3;
  Ufs.sync ufs_fs;
  let _, frep = Ufs.fsck device in
  pf "4.3BSD fsck:    %6.1f s  (%d inodes, %d dirs)\n"
    (Simclock.s_of_us frep.Ufs.duration_us)
    frep.Ufs.inodes_checked frep.Ufs.dirs_checked

(* ------------------------------------------------------------------ *)
(* R2: what group commit + logging buy (paper: metadata I/O / 2.98,    *)
(* total I/O / 2.34 on bulk operations)                                *)

let classified_ios device (layout : Flayout.t) f =
  let meta = ref 0 and data = ref 0 in
  Device.set_observer device
    (Some
       (fun ~rw:_ ~sector ~count:_ ->
         if Flayout.is_data_sector layout sector then incr data else incr meta));
  f ();
  Device.set_observer device None;
  (!meta, !data)

let bulk_update_workload (ops : Fs_ops.t) =
  (* "Bulk updates are often done to the file name table ... normally
     localized to a subdirectory." *)
  for i = 0 to 149 do
    ignore (ops.Fs_ops.create ~name:(Printf.sprintf "sub/dir/b%04d" i) ~data:(payload i 600))
  done;
  for i = 0 to 149 do
    if i mod 3 = 0 then ops.Fs_ops.delete ~name:(Printf.sprintf "sub/dir/b%04d" i)
  done;
  ignore (ops.Fs_ops.list ~prefix:"sub/dir/");
  ops.Fs_ops.force ()

let group_commit ?(intervals = [ 0; 100_000; 500_000; 2_000_000 ]) () =
  Setup.hr "R2. Group commit ablation (paper: metadata I/Os /2.98, all I/Os /2.34)";
  let run interval_us =
    let clock = Simclock.create () in
    let device = Device.create ~clock Setup.geom in
    let params = { Fparams.default with Fparams.commit_interval_us = interval_us } in
    Fsd.format device params;
    let fs, _ = Fsd.boot ~params device in
    let layout = Fsd.layout fs in
    let meta, data = classified_ios device layout (fun () -> bulk_update_workload (Fsd.ops fs)) in
    (meta, data, (Fsd.counters fs).Fsd.forces)
  in
  let results = List.map (fun i -> (i, run i)) intervals in
  let base_meta, base_total =
    match results with
    | (_, (m, d, _)) :: _ -> (float_of_int m, float_of_int (m + d))
    | [] -> (1.0, 1.0)
  in
  pf "%-18s %9s %9s %7s %15s %12s\n" "commit interval" "meta I/O" "data I/O" "forces"
    "meta reduction" "total red.";
  List.iter
    (fun (i, (m, d, forces)) ->
      pf "%15d ms %9d %9d %7d %14.2fx %11.2fx\n" (i / 1000) m d forces
        (base_meta /. float_of_int (max 1 m))
        (base_total /. float_of_int (max 1 (m + d))))
    results;
  pf "(0 ms = a synchronous log force after every operation)\n"

(* ------------------------------------------------------------------ *)
(* R3: log record sizes (paper: 7 sectors min, 33 typical, 83 max)     *)

let log_records () =
  Setup.hr "R3. Log record sizes in sectors (paper: 7 minimum, 33 typical under load, 83 max)";
  let _, fs = Setup.fsd_volume () in
  let ops = Fsd.ops fs in
  (* light load: lone last-used-time style updates *)
  for i = 0 to 9 do
    ignore (Fsd.import_cached fs ~name:(Printf.sprintf "cache/r%02d" i) ~server:"ivy"
              (payload i 800))
  done;
  Fsd.force fs;
  for i = 0 to 9 do
    Fsd.touch_cached fs ~name:(Printf.sprintf "cache/r%02d" i);
    Fsd.force fs
  done;
  (* heavy load: bursts of creates per commit window *)
  Makedo.prepare ops { Makedo.default with Makedo.modules = 40 };
  ignore (Makedo.build ops { Makedo.default with Makedo.modules = 40 });
  let st = Fsd.log_stats fs in
  let sizes = st.Flog.record_sizes in
  pf "records=%d  min=%.0f  p50=%.0f  mean=%.1f  max=%.0f sectors\n" (Stats.n sizes)
    (Stats.min sizes) (Stats.percentile sizes 0.5) (Stats.mean sizes) (Stats.max sizes);
  pf "(minimum possible record: 1 logged sector -> 7 on disk)\n"

(* ------------------------------------------------------------------ *)
(* R4: VAM reconstruction time (paper: ~20 s on a 300 MB volume)       *)

let vam_rebuild () =
  Setup.hr "R4. VAM handling (paper: rebuild ~20 s; saved map loads instantly)";
  let device, fs = Setup.fsd_volume () in
  Setup.populate (Fsd.ops fs) ~files:5000 ~seed:5;
  (* crash: reconstruct *)
  let fs2, r1 = Fsd.boot device in
  pf "after crash:          VAM %s in %.1f s\n"
    (match r1.Fsd.vam_source with
    | Fsd.Vam_reconstructed -> "reconstructed from the name table"
    | Fsd.Vam_replayed -> "replayed from the log"
    | Fsd.Vam_loaded -> "loaded")
    (Simclock.s_of_us r1.Fsd.vam_us);
  Fsd.shutdown fs2;
  let _, r2 = Fsd.boot device in
  pf "after clean shutdown: VAM %s in %.2f s\n"
    (match r2.Fsd.vam_source with
    | Fsd.Vam_loaded -> "loaded from its save area"
    | Fsd.Vam_replayed -> "replayed from the log"
    | Fsd.Vam_reconstructed -> "reconstructed")
    (Simclock.s_of_us r2.Fsd.vam_us)

(* ------------------------------------------------------------------ *)
(* R5: the analytic model vs the simulator (paper: within ~5%)         *)

let model_validation () =
  Setup.hr "R5. Analytic model vs simulator (paper: within ~5% for simple operations)";
  let open Cedar_model in
  let g = Setup.geom in
  let spc = Geometry.sectors_per_cylinder g in
  (* The protocol: between operations the arm rests at the central
     cylinders (the metadata region, where it naturally lives); each
     measured operation then starts with the seek the scripts encode. *)
  let measure ops ~park ~prep n f =
    let total = ref 0 in
    for i = 0 to n - 1 do
      prep i;
      ignore (Device.read ops.Fs_ops.device park);
      let t0 = Simclock.now ops.Fs_ops.clock in
      f i;
      total := !total + (Simclock.now ops.Fs_ops.clock - t0)
    done;
    float_of_int !total /. 1000.0 /. float_of_int n
  in
  (* --- CFS --- *)
  let _, cfs = Setup.cfs_volume () in
  let clayout = Cfs.layout cfs in
  let cpark = clayout.Cedar_cfs.Cfs_layout.fnt_start + 1 in
  let cfs_cfg =
    {
      Ops.default with
      Ops.file_center_cyls =
        (clayout.Cedar_cfs.Cfs_layout.fnt_start
        - (clayout.Cedar_cfs.Cfs_layout.data_lo + 200))
        / spc;
    }
  in
  let cops = Cfs.ops cfs in
  let nop _ = () in
  let cfs_create =
    measure cops ~park:cpark ~prep:nop 10 (fun i ->
        ignore (cops.Fs_ops.create ~name:(Printf.sprintf "m/c%02d" i) ~data:(payload i 400)))
  in
  Cfs.drop_open_cache cfs;
  let cfs_open =
    measure cops ~park:cpark ~prep:nop 10 (fun i ->
        ignore (cops.Fs_ops.open_stat ~name:(Printf.sprintf "m/c%02d" i)))
  in
  let cfs_read =
    measure cops ~park:cpark ~prep:nop 10 (fun i ->
        ignore (cops.Fs_ops.read_page ~name:(Printf.sprintf "m/c%02d" i) ~page:0))
  in
  let cfs_delete =
    measure cops ~park:cpark ~prep:nop 10 (fun i ->
        cops.Fs_ops.delete ~name:(Printf.sprintf "m/c%02d" i))
  in
  let cfs_large =
    measure cops ~park:cpark ~prep:nop 2 (fun i ->
        ignore
          (cops.Fs_ops.create ~name:(Printf.sprintf "m/L%02d" i) ~data:(payload i 512_000)))
  in
  (* --- FSD --- *)
  let _, fsd = Setup.fsd_volume () in
  let flayout = Fsd.layout fsd in
  let fpark = flayout.Flayout.log_start + 1 in
  let fsd_cfg =
    {
      Ops.default with
      Ops.file_center_cyls =
        (flayout.Flayout.log_start - (flayout.Flayout.small_lo + 200)) / spc;
    }
  in
  let fops = Fsd.ops fsd in
  (* keep the commit demon out of the measured region *)
  let quiesce _ = Fsd.force fsd in
  let fsd_create =
    measure fops ~park:fpark ~prep:quiesce 10 (fun i ->
        ignore (fops.Fs_ops.create ~name:(Printf.sprintf "m/f%02d" i) ~data:(payload i 400)))
  in
  Fsd.force fsd;
  let fsd_open =
    measure fops ~park:fpark ~prep:quiesce 10 (fun i ->
        ignore (fops.Fs_ops.open_stat ~name:(Printf.sprintf "m/f%02d" i)))
  in
  (* open+read on never-read files: reboot clears the verified set *)
  Fsd.shutdown fsd;
  let fsd = fst (Fsd.boot (fops.Fs_ops.device)) in
  let fops = Fsd.ops fsd in
  let quiesce _ = Fsd.force fsd in
  (* warm the name-table cache (the scripts model leaf hits) while the
     leaders stay unverified (fresh boot) *)
  ignore (fops.Fs_ops.list ~prefix:"m/");
  let fsd_open_read =
    measure fops ~park:fpark ~prep:quiesce 10 (fun i ->
        ignore (fops.Fs_ops.read_page ~name:(Printf.sprintf "m/f%02d" i) ~page:0))
  in
  let fsd_read =
    measure fops ~park:fpark ~prep:quiesce 10 (fun i ->
        ignore (fops.Fs_ops.read_page ~name:(Printf.sprintf "m/f%02d" i) ~page:0))
  in
  let fsd_delete =
    measure fops ~park:fpark ~prep:quiesce 10 (fun i ->
        fops.Fs_ops.delete ~name:(Printf.sprintf "m/f%02d" i))
  in
  let fsd_large =
    measure fops ~park:fpark ~prep:quiesce 2 (fun i ->
        ignore
          (fops.Fs_ops.create ~name:(Printf.sprintf "m/L%02d" i) ~data:(payload i 512_000)))
  in
  (* a lone force carrying exactly one dirtied leaf page: touch the
     last-used time of a cached file (no uid allocation, no data I/O) *)
  for i = 0 to 4 do
    ignore (Fsd.import_cached fsd ~name:(Printf.sprintf "m/t%02d" i) ~server:"ivy"
              (payload i 400))
  done;
  Fsd.force fsd;
  let force_ms =
    let total = ref 0 in
    for i = 0 to 4 do
      (* put the arm in the file area, dirty one leaf, measure the force *)
      ignore (fops.Fs_ops.read_page ~name:(Printf.sprintf "m/t%02d" i) ~page:0);
      Fsd.touch_cached fsd ~name:(Printf.sprintf "m/t%02d" i);
      let t0 = Simclock.now fops.Fs_ops.clock in
      Fsd.force fsd;
      total := !total + (Simclock.now fops.Fs_ops.clock - t0)
    done;
    float_of_int !total /. 1000.0 /. 5.0
  in
  let rows =
    [
      Validate.row ~name:"cfs_small_create"
        ~predicted_ms:(Script.time_ms g (Ops.cfs_small_create cfs_cfg))
        ~measured_ms:cfs_create;
      Validate.row ~name:"cfs_open"
        ~predicted_ms:(Script.time_ms g (Ops.cfs_open cfs_cfg))
        ~measured_ms:cfs_open;
      Validate.row ~name:"cfs_read_page"
        ~predicted_ms:(Script.time_ms g (Ops.cfs_read_page cfs_cfg))
        ~measured_ms:cfs_read;
      Validate.row ~name:"cfs_small_delete"
        ~predicted_ms:(Script.time_ms g (Ops.cfs_small_delete cfs_cfg))
        ~measured_ms:cfs_delete;
      Validate.row ~name:"cfs_large_create(1000)"
        ~predicted_ms:(Script.time_ms g (Ops.cfs_large_create cfs_cfg ~pages:1000))
        ~measured_ms:cfs_large;
      Validate.row ~name:"fsd_small_create"
        ~predicted_ms:(Script.time_ms g (Ops.fsd_small_create fsd_cfg))
        ~measured_ms:fsd_create;
      Validate.row ~name:"fsd_open"
        ~predicted_ms:(Script.time_ms g (Ops.fsd_open fsd_cfg))
        ~measured_ms:fsd_open;
      Validate.row ~name:"fsd_open_read"
        ~predicted_ms:(Script.time_ms g (Ops.fsd_open_read fsd_cfg))
        ~measured_ms:fsd_open_read;
      Validate.row ~name:"fsd_read_page"
        ~predicted_ms:(Script.time_ms g (Ops.fsd_read_page fsd_cfg))
        ~measured_ms:fsd_read;
      Validate.row ~name:"fsd_small_delete"
        ~predicted_ms:(Script.time_ms g (Ops.fsd_small_delete fsd_cfg))
        ~measured_ms:fsd_delete;
      Validate.row ~name:"fsd_large_create(1000)"
        ~predicted_ms:(Script.time_ms g (Ops.fsd_large_create fsd_cfg ~pages:1000))
        ~measured_ms:fsd_large;
      Validate.row ~name:"fsd_log_force"
        ~predicted_ms:(Script.time_ms g (Ops.fsd_log_force fsd_cfg))
        ~measured_ms:force_ms;
    ]
  in
  Format.printf "%a" Validate.pp_table rows;
  Format.printf "max |error| = %.1f%%@." (Validate.max_abs_error_pct rows);
  Format.print_flush ()

(* ------------------------------------------------------------------ *)
(* R6: log utilization under the thirds algorithm (paper: ~5/6)        *)

let log_utilization () =
  Setup.hr "R6. Log utilization under the thirds algorithm (paper: averages 5/6 in use)";
  let device, fs = Setup.fsd_volume () in
  let layout = Fsd.layout fs in
  let body = 3 * ((layout.Flayout.log_sectors - 3) / 3) in
  let samples = Stats.create () in
  let ops = Fsd.ops fs in
  for round = 0 to 120 do
    for i = 0 to 9 do
      ignore
        (ops.Fs_ops.create
           ~name:(Printf.sprintf "u/r%03d-%d" round i)
           ~data:(payload i 700))
    done;
    ops.Fs_ops.force ();
    let r = Flog.recover device layout in
    let oldest = match r.Flog.surviving with (o, _) :: _ -> o | [] -> r.Flog.next_write_off in
    let live = r.Flog.next_write_off - oldest in
    let live = if live <= 0 then live + body else live in
    if round > 20 then Stats.add samples (float_of_int live /. float_of_int body)
  done;
  pf "mean live fraction = %.2f (5/6 = 0.83); min %.2f max %.2f over %d samples\n"
    (Stats.mean samples) (Stats.min samples) (Stats.max samples) (Stats.n samples);
  pf "(name-table home writes so far: %d pages — normally near zero per commit)\n"
    (Fsd.fnt_home_writes fs)

(* ------------------------------------------------------------------ *)
(* R7: the VAM-logging extension (the alternative the paper priced but  *)
(* did not build: "would greatly decrease worst case crash recovery     *)
(* time from about twenty five seconds to about two seconds")           *)

let vam_logging () =
  Setup.hr
    "R7. VAM-logging extension (paper's prediction: worst-case recovery 25 s -> ~2 s)";
  let run log_vam =
    let clock = Simclock.create () in
    let device = Device.create ~clock Setup.geom in
    let p = { Fparams.default with Fparams.log_vam } in
    Fsd.format device p;
    let fs, _ = Fsd.boot ~params:p device in
    Setup.populate (Fsd.ops fs) ~files:6000 ~seed:21;
    let st = Fsd.log_stats fs in
    let _, report = Fsd.boot ~params:p device in
    (report, st.Flog.total_sectors)
  in
  let off, off_sectors = run false in
  let on, on_sectors = run true in
  pf "%-14s %10s %12s %12s %10s\n" "" "recovery" "log replay" "VAM" "source";
  let row label (r : Fsd.boot_report) =
    pf "%-14s %8.1f s %10.2f s %10.2f s %10s\n" label
      (Simclock.s_of_us r.Fsd.total_us)
      (Simclock.s_of_us r.Fsd.log_replay_us)
      (Simclock.s_of_us r.Fsd.vam_us)
      (match r.Fsd.vam_source with
      | Fsd.Vam_replayed -> "replayed"
      | Fsd.Vam_reconstructed -> "rebuilt"
      | Fsd.Vam_loaded -> "loaded")
  in
  row "paper (off)" off;
  row "extension on" on;
  pf "log traffic for the same workload: %d sectors without, %d with (+%.0f%%)\n"
    off_sectors on_sectors
    (100.0 *. float_of_int (on_sectors - off_sectors) /. float_of_int (max 1 off_sectors))

(* ------------------------------------------------------------------ *)
(* R8: log-size ablation — smaller logs re-enter thirds sooner and      *)
(* write hot name-table pages home more often                           *)

let log_size () =
  Setup.hr "R8. Log-size ablation (smaller log -> more home writes of hot pages)";
  let run log_sectors =
    let clock = Simclock.create () in
    let device = Device.create ~clock Setup.geom in
    (* a smaller record cap keeps the smallest logs structurally valid *)
    let p =
      { Fparams.default with Fparams.log_sectors; max_record_data_sectors = 40 }
    in
    Fsd.format device p;
    let fs, _ = Fsd.boot ~params:p device in
    let ops = Fsd.ops fs in
    for i = 0 to 599 do
      ignore (ops.Fs_ops.create ~name:(Printf.sprintf "hot/f%04d" i) ~data:(payload i 700));
      Fsd.tick fs ~us:80_000
    done;
    ops.Fs_ops.force ();
    (Fsd.fnt_home_writes fs, (Fsd.log_stats fs).Flog.third_entries)
  in
  pf "%-12s %14s %14s\n" "log size" "home writes" "third entries";
  List.iter
    (fun sectors ->
      let home, entries = run sectors in
      pf "%9d s %14d %14d\n" sectors home entries)
    [ 303; 603; 1203; 2403 ]

(* ------------------------------------------------------------------ *)
(* R9: allocator ablation — §5.6's big/small split vs one first-fit pool *)

let fragmentation () =
  Setup.hr "R9. Allocator ablation: big/small areas vs a single pool (fragmentation)";
  (* The paper's regime (5.6): most small files are immutable cached
     copies that stick around, while big files come and go. Without the
     split, each hole a dead big file leaves behind gets a small file
     dropped at its start, chopping the free space up. *)
  let churn use_split =
    let layout = Flayout.compute Setup.geom Fparams.default in
    let vam = Cedar_fsd.Vam.create_all_free layout in
    let alloc = Cedar_fsd.Alloc.create vam in
    (* the old allocator: one pool, first fit from the bottom — freshly
       freed holes near the start get plugged by whatever comes next *)
    let first_fit_alloc sectors =
      let gather_from lo hi remaining chunk =
        let rec go acc remaining chunk =
          if remaining = 0 then Some (List.rev acc)
          else if List.length acc > 24 then None
          else
            let want = min remaining chunk in
            match Cedar_fsd.Vam.find_free_run vam ~from:lo ~upto:hi ~len:want with
            | Some pos ->
              Cedar_fsd.Vam.allocate_run vam ~pos ~len:want;
              go ({ Run_table.start = pos; len = want } :: acc) (remaining - want) chunk
            | None -> if chunk = 1 then None else go acc remaining (max 1 (chunk / 2))
        in
        go [] remaining chunk
      in
      match gather_from layout.Flayout.small_lo layout.Flayout.small_hi sectors sectors with
      | Some runs when List.fold_left (fun a r -> a + r.Run_table.len) 0 runs = sectors ->
        Some runs
      | Some partial ->
        (* continue in the upper region *)
        let got = List.fold_left (fun a r -> a + r.Run_table.len) 0 partial in
        (match gather_from layout.Flayout.big_lo layout.Flayout.big_hi (sectors - got) (sectors - got) with
        | Some rest -> Some (partial @ rest)
        | None ->
          Cedar_fsd.Alloc.free_now alloc partial;
          None)
      | None -> (
        match gather_from layout.Flayout.big_lo layout.Flayout.big_hi sectors sectors with
        | Some runs -> Some runs
        | None -> None)
    in
    let rng = Rng.create 31 in
    let big_live = ref [] in
    let big_n = ref 0 in
    let runs_of_large = Stats.create () in
    let rejected = ref 0 in
    let alloc_file ~bytes =
      let sectors = 1 + ((bytes + 511) / 512) in
      if use_split then begin
        let small = bytes <= Fparams.default.Fparams.small_file_bytes in
        match Cedar_fsd.Alloc.allocate alloc ~sectors ~small with
        | Ok runs -> Some runs
        | Error _ ->
          incr rejected;
          None
      end
      else
        match first_fit_alloc sectors with
        | Some runs -> Some runs
        | None ->
          incr rejected;
          None
    in
    let delete_random_big () =
      if !big_n > 0 then begin
        let i = Rng.int rng !big_n in
        let arr = Array.of_list !big_live in
        Cedar_fsd.Alloc.free_now alloc arr.(i);
        arr.(i) <- arr.(!big_n - 1);
        big_live := Array.to_list (Array.sub arr 0 (!big_n - 1));
        decr big_n
      end
    in
    (* fill to ~70% with the usual mix *)
    let total_data = Flayout.data_sectors layout in
    while Cedar_fsd.Vam.free_count vam > total_data * 30 / 100 do
      let bytes = Sizes.sample rng in
      match alloc_file ~bytes with
      | Some runs when bytes > Fparams.default.Fparams.small_file_bytes ->
        big_live := runs :: !big_live;
        incr big_n
      | Some _ | None -> ()
    done;
    (* steady state: a big file dies; a small (permanent) and a big file
       are born *)
    for _ = 1 to 3_000 do
      delete_random_big ();
      ignore (alloc_file ~bytes:(1 + Rng.int rng 3_500));
      let big_bytes = Rng.int_in rng ~lo:12_000 ~hi:80_000 in
      match alloc_file ~bytes:big_bytes with
      | Some runs ->
        Stats.add runs_of_large (float_of_int (List.length runs));
        big_live := runs :: !big_live;
        incr big_n
      | None -> ()
    done;
    let probe =
      (* largest contiguous free extent left on the volume *)
      let layout = Cedar_fsd.Vam.layout vam in
      let best = ref 0 in
      let scan lo hi =
        let len = ref 0 in
        for s = lo to hi - 1 do
          if Cedar_fsd.Vam.is_free vam s then begin
            incr len;
            if !len > !best then best := !len
          end
          else len := 0
        done
      in
      scan layout.Flayout.small_lo layout.Flayout.small_hi;
      scan layout.Flayout.big_lo layout.Flayout.big_hi;
      Printf.sprintf "largest free extent %d sectors" !best
    in
    (Stats.mean runs_of_large, Stats.max runs_of_large, !rejected, probe)
  in
  let s_mean, s_max, s_rej, s_probe = churn true in
  let p_mean, p_max, p_rej, p_probe = churn false in
  pf "%-26s %13s %12s %9s   %s\n" "" "big: mean" "max extents" "rejected" "";
  pf "%-26s %13.2f %12.0f %9d   %s\n" "big/small split (paper)" s_mean s_max s_rej s_probe;
  pf "%-26s %13.2f %12.0f %9d   %s\n" "single first-fit pool" p_mean p_max p_rej p_probe

let all () =
  table1 ();
  table2 ();
  table3 ();
  table4 ();
  table5 ();
  recovery ();
  group_commit ();
  log_records ();
  vam_rebuild ();
  model_validation ();
  log_utilization ();
  vam_logging ();
  log_size ();
  fragmentation ()
