bench/main.ml: Array Bench_tables Cedar_disk Format List Micro Printf Setup Sys
