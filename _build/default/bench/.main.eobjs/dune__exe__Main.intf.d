bench/main.mli:
