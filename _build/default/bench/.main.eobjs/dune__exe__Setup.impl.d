bench/setup.ml: Bytes Cedar_cfs Cedar_disk Cedar_fsbase Cedar_fsd Cedar_unixfs Cedar_util Cedar_workload Char Device Geometry Printf Rng Simclock String
