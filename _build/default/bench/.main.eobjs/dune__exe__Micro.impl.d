bench/micro.ml: Analyze Bechamel Benchmark Bytes Cedar_cfs Cedar_fsbase Cedar_fsd Cedar_unixfs Cedar_util Char Hashtbl Instance List Measure Printf Setup Staged Test Time Toolkit
