(* Bechamel microbenchmarks: one Test.make per paper table, measuring the
   real (host) cost of the code path that table exercises. These gauge
   the implementation itself, while Bench_tables measures simulated disk
   time. *)

open Bechamel
open Toolkit

let payload n = Bytes.init n (fun j -> Char.chr (j mod 251))

(* Table 1 is structural: benchmark the codecs it describes. *)
let t1_entry_codec =
  let entry =
    Cedar_fsbase.Entry.local ~uid:42L ~keep:2 ~byte_size:1234 ~created:99
      ~runs:(Cedar_fsbase.Run_table.of_runs [ { Cedar_fsbase.Run_table.start = 100; len = 8 } ])
      ~anchor:99
  in
  Test.make ~name:"table1/entry-codec"
    (Staged.stage (fun () ->
         Cedar_fsbase.Entry.decode (Cedar_fsbase.Entry.encode entry)))

(* Table 2's headline row: an FSD small create. *)
let t2_fsd_create =
  Test.make_with_resource ~name:"table2/fsd-small-create" Test.multiple
    ~allocate:(fun () ->
      let counter = ref 0 in
      (snd (Setup.fsd_volume ()), counter))
    ~free:(fun _ -> ())
    (Staged.stage (fun (fs, counter) ->
         incr counter;
         ignore
           (Cedar_fsd.Fsd.create fs
              ~name:(Printf.sprintf "bench/m%06d" !counter)
              (payload 900))))

(* Table 3's bulk row: creates through the generic interface on CFS. *)
let t3_cfs_create =
  Test.make_with_resource ~name:"table3/cfs-small-create" Test.multiple
    ~allocate:(fun () ->
      let counter = ref 0 in
      (snd (Setup.cfs_volume ()), counter))
    ~free:(fun _ -> ())
    (Staged.stage (fun (fs, counter) ->
         incr counter;
         ignore
           (Cedar_cfs.Cfs.create fs
              ~name:(Printf.sprintf "bench/m%06d" !counter)
              (payload 900))))

(* Table 4's comparison point: a BSD create with synchronous metadata. *)
let t4_ufs_create =
  Test.make_with_resource ~name:"table4/ufs-create" Test.multiple
    ~allocate:(fun () ->
      let counter = ref 0 in
      (snd (Setup.ufs_volume Cedar_unixfs.Ufs_params.default), counter))
    ~free:(fun _ -> ())
    (Staged.stage (fun (fs, counter) ->
         incr counter;
         ignore
           (Cedar_unixfs.Ufs.create fs
              ~path:(Printf.sprintf "bench/m%06d" !counter)
              (payload 900))))

(* Table 5 moves bulk data: benchmark the per-sector checksum that guards
   every transfer. *)
let t5_crc =
  let block = payload 4096 in
  Test.make ~name:"table5/crc32-4k"
    (Staged.stage (fun () -> Cedar_util.Crc32.bytes block))

let run () =
  let tests =
    [ t1_entry_codec; t2_fsd_create; t3_cfs_create; t4_ufs_create; t5_crc ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-28s %10.0f ns/op\n" name est
          | Some _ | None -> Printf.printf "%-28s (no estimate)\n" name)
        ols)
    tests
