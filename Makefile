# Tier-1 gate (see ROADMAP.md): `make check` must pass — a clean build
# with zero warnings plus the full test suite — before any PR lands.

.PHONY: all check build test bench serve-smoke faultsweep-smoke fmt fmt-check ci clean

all: build

build:
	dune build

test:
	dune runtest

check: build test

# Reproduce every paper table and regenerate the committed snapshots
# (BENCH_OBS.json, BENCH_GROUPCOMMIT.json, BENCH_FAULTSWEEP.json) so
# reviewers can diff observability, group-commit-scaling, and
# crash-sweep output.
bench:
	dune exec bench/main.exe
	dune exec bench/main.exe -- obs-json --out BENCH_OBS.json
	dune exec bench/main.exe -- clients --out BENCH_GROUPCOMMIT.json
	dune exec bench/main.exe -- faultsweep --out BENCH_FAULTSWEEP.json

# Determinism smoke: two same-seed 2-client server runs must produce
# byte-identical JSON reports (the server's core contract).
serve-smoke:
	dune build bin/cedar.exe
	rm -rf _build/serve-smoke && mkdir -p _build/serve-smoke
	./_build/default/bin/cedar.exe mkfs _build/serve-smoke/vol.img > /dev/null
	./_build/default/bin/cedar.exe serve _build/serve-smoke/vol.img \
		--clients 2 --json > _build/serve-smoke/run1.json
	./_build/default/bin/cedar.exe serve _build/serve-smoke/vol.img \
		--clients 2 --json > _build/serve-smoke/run2.json
	cmp _build/serve-smoke/run1.json _build/serve-smoke/run2.json
	@echo "serve-smoke: deterministic"

# Crash-injection smoke: kill the 2-client server at every sector write
# of the first three force intervals, once per tear mode, and reboot each
# time. cedar faultsweep exits non-zero on any recovery-contract
# violation, so this line IS the assertion.
faultsweep-smoke:
	dune build bin/cedar.exe
	./_build/default/bin/cedar.exe faultsweep --clients 2 --max-forces 3 \
		--tear all > /dev/null
	@echo "faultsweep-smoke: zero violations"

# Requires ocamlformat (not vendored in the container); no-op without it.
fmt:
	-dune fmt

fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "fmt-check: ocamlformat not installed, skipping"; \
	fi

ci: fmt-check check serve-smoke faultsweep-smoke

clean:
	dune clean
