# Tier-1 gate (see ROADMAP.md): `make check` must pass — a clean build
# with zero warnings plus the full test suite — before any PR lands.

.PHONY: all check build test bench fmt fmt-check ci clean

all: build

build:
	dune build

test:
	dune runtest

check: build test

# Reproduce every paper table and regenerate the committed trace-driven
# snapshot (BENCH_OBS.json) so reviewers can diff observability output.
bench:
	dune exec bench/main.exe
	dune exec bench/main.exe -- obs-json --out BENCH_OBS.json

# Requires ocamlformat (not vendored in the container); no-op without it.
fmt:
	-dune fmt

fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "fmt-check: ocamlformat not installed, skipping"; \
	fi

ci: fmt-check check

clean:
	dune clean
