# Tier-1 gate (see ROADMAP.md): `make check` must pass — a clean build
# with zero warnings plus the full test suite — before any PR lands.

.PHONY: all check build test bench fmt clean

all: build

build:
	dune build

test:
	dune runtest

check: build test

bench:
	dune exec bench/main.exe

# Requires ocamlformat (not vendored in the container); no-op without it.
fmt:
	-dune fmt

clean:
	dune clean
