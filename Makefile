# Tier-1 gate (see ROADMAP.md): `make check` must pass — a clean build
# with zero warnings plus the full test suite — before any PR lands.

.PHONY: all check build test bench bench-diff serve-smoke volumes-smoke faultsweep-smoke wrap-smoke recovery-smoke timeline-smoke watch-smoke why-smoke qdepth-smoke fmt fmt-check ci clean

all: build

build:
	dune build

test:
	dune runtest

check: build test

# Reproduce every paper table and regenerate the committed snapshots
# (BENCH_OBS.json, BENCH_GROUPCOMMIT.json, BENCH_FAULTSWEEP.json,
# BENCH_RECOVERY.json, BENCH_WRAP.json, BENCH_TIMELINE.json,
# BENCH_BREAKDOWN.json, BENCH_VOLUMES.json, BENCH_QDEPTH.json) so
# reviewers can diff observability, group-commit-scaling, crash-sweep,
# restart-time, log-wrap-endurance, saturation-sweep, latency-anatomy,
# multi-volume-scale-out and disk-scheduler-sweep output.
bench:
	dune exec bench/main.exe
	dune exec bench/main.exe -- obs-json --out BENCH_OBS.json
	dune exec bench/main.exe -- clients --out BENCH_GROUPCOMMIT.json
	dune exec bench/main.exe -- faultsweep --out BENCH_FAULTSWEEP.json
	dune exec bench/main.exe -- recovery --out BENCH_RECOVERY.json
	dune exec bench/main.exe -- wrap --out BENCH_WRAP.json
	dune exec bench/main.exe -- timeline --out BENCH_TIMELINE.json
	dune exec bench/main.exe -- breakdown --out BENCH_BREAKDOWN.json
	dune exec bench/main.exe -- volumes --out BENCH_VOLUMES.json
	dune exec bench/main.exe -- qdepth --out BENCH_QDEPTH.json

# Snapshot drift gate: regenerate every BENCH_*.json into
# _build/bench-diff/ and structurally compare against the committed
# copies (timing-flavoured fields get 10% relative tolerance, everything
# else must match exactly). Exits non-zero on drift.
bench-diff:
	dune exec bench/main.exe -- diff

# Determinism smoke: two same-seed 2-client server runs must produce
# byte-identical JSON reports (the server's core contract).
serve-smoke:
	dune build bin/cedar.exe
	rm -rf _build/serve-smoke && mkdir -p _build/serve-smoke
	./_build/default/bin/cedar.exe mkfs _build/serve-smoke/vol.img > /dev/null
	./_build/default/bin/cedar.exe serve _build/serve-smoke/vol.img \
		--clients 2 --json > _build/serve-smoke/run1.json
	./_build/default/bin/cedar.exe serve _build/serve-smoke/vol.img \
		--clients 2 --json > _build/serve-smoke/run2.json
	cmp _build/serve-smoke/run1.json _build/serve-smoke/run2.json
	@echo "serve-smoke: deterministic"

# Multi-volume determinism smoke: two same-seed 2-volume sharded server
# runs (fresh in-memory volumes, no image) must produce byte-identical
# JSON reports, and the report must carry the per-volume array.
volumes-smoke:
	dune build bin/cedar.exe
	rm -rf _build/volumes-smoke && mkdir -p _build/volumes-smoke
	./_build/default/bin/cedar.exe serve --volumes 2 --clients 4 \
		--json > _build/volumes-smoke/run1.json
	./_build/default/bin/cedar.exe serve --volumes 2 --clients 4 \
		--json > _build/volumes-smoke/run2.json
	cmp _build/volumes-smoke/run1.json _build/volumes-smoke/run2.json
	@grep -q '"volumes"' _build/volumes-smoke/run1.json
	@echo "volumes-smoke: deterministic"

# Crash-injection smoke: kill the 2-client server at every sector write
# of the first three force intervals, once per tear mode, and reboot each
# time. cedar faultsweep exits non-zero on any recovery-contract
# violation, so this line IS the assertion.
faultsweep-smoke:
	dune build bin/cedar.exe
	./_build/default/bin/cedar.exe faultsweep --clients 2 --max-forces 3 \
		--tear all > /dev/null
	@echo "faultsweep-smoke: zero violations"

# Log-wrap smoke: a bounded churn run that wraps the log at least once,
# twice with the same seed. cedar churn exits non-zero on any oracle
# violation, a non-zero replay after the clean shutdown, or too few
# wraps, and the two JSON summaries must be byte-identical.
wrap-smoke:
	dune build bin/cedar.exe
	rm -rf _build/wrap-smoke && mkdir -p _build/wrap-smoke
	./_build/default/bin/cedar.exe churn --tiny --ops 60 --min-wraps 1 \
		--json > _build/wrap-smoke/run1.json
	./_build/default/bin/cedar.exe churn --tiny --ops 60 --min-wraps 1 \
		--json > _build/wrap-smoke/run2.json
	cmp _build/wrap-smoke/run1.json _build/wrap-smoke/run2.json
	@echo "wrap-smoke: wrapped, clean, deterministic"

# Restart smoke: the recovery bench hard-fails (exit 1) if a crash
# reboot replays the wrong record count or reads any log body sector
# more than once — its internal assertions ARE the check.
recovery-smoke:
	dune exec bench/main.exe -- recovery --out _build/BENCH_RECOVERY.smoke.json \
		> /dev/null
	@echo "recovery-smoke: single-pass replay holds"

# Telemetry smoke: two identical open-loop server runs must write valid,
# non-trivial (>= 20 samples), byte-identical timeline JSON.
timeline-smoke:
	dune build bin/cedar.exe
	rm -rf _build/timeline-smoke && mkdir -p _build/timeline-smoke
	./_build/default/bin/cedar.exe mkfs _build/timeline-smoke/vol.img \
		--geometry small > /dev/null
	./_build/default/bin/cedar.exe serve _build/timeline-smoke/vol.img \
		--clients 4 --open-loop 20 --ops 60 \
		--timeline _build/timeline-smoke/run1.json > /dev/null
	./_build/default/bin/cedar.exe serve _build/timeline-smoke/vol.img \
		--clients 4 --open-loop 20 --ops 60 \
		--timeline _build/timeline-smoke/run2.json > /dev/null
	cmp _build/timeline-smoke/run1.json _build/timeline-smoke/run2.json
	@n=$$(grep -c '"at_us"' _build/timeline-smoke/run1.json); \
	if [ "$$n" -lt 20 ]; then \
		echo "timeline-smoke: only $$n samples (want >= 20)"; exit 1; fi; \
	echo "timeline-smoke: $$n samples, valid, deterministic"

# Watch smoke: --watch on a pipe must emit frames as plain text — not a
# single ANSI escape byte — and stay deterministic run to run.
watch-smoke:
	dune build bin/cedar.exe
	rm -rf _build/watch-smoke && mkdir -p _build/watch-smoke
	./_build/default/bin/cedar.exe mkfs _build/watch-smoke/vol.img \
		--geometry small > /dev/null
	./_build/default/bin/cedar.exe serve _build/watch-smoke/vol.img \
		--clients 2 --watch > _build/watch-smoke/run1.txt
	./_build/default/bin/cedar.exe serve _build/watch-smoke/vol.img \
		--clients 2 --watch > _build/watch-smoke/run2.txt
	cmp _build/watch-smoke/run1.txt _build/watch-smoke/run2.txt
	@if LC_ALL=C grep -q "$$(printf '\033')" _build/watch-smoke/run1.txt; then \
		echo "watch-smoke: ANSI escape codes in non-tty output"; exit 1; fi
	@grep -q "sat.device_busy" _build/watch-smoke/run1.txt
	@echo "watch-smoke: plain-text frames, deterministic"

# Latency-anatomy smoke: cedar why exits non-zero if any op's phase
# vector fails the conservation invariant, so the runs themselves are
# the correctness check; the two JSON anatomies must also be
# byte-identical (same seed, same blame, same microseconds).
why-smoke:
	dune build bin/cedar.exe
	rm -rf _build/why-smoke && mkdir -p _build/why-smoke
	./_build/default/bin/cedar.exe mkfs _build/why-smoke/vol.img \
		--geometry small > /dev/null
	./_build/default/bin/cedar.exe why _build/why-smoke/vol.img \
		--clients 4 --json > _build/why-smoke/run1.json
	./_build/default/bin/cedar.exe why _build/why-smoke/vol.img \
		--clients 4 --json > _build/why-smoke/run2.json
	cmp _build/why-smoke/run1.json _build/why-smoke/run2.json
	@grep -q '"all_conserved": true' _build/why-smoke/run1.json
	@echo "why-smoke: conserved, deterministic"

# Disk-scheduler smoke: the qdepth sweep must rerun byte-identically and
# both built-in regression checks must hold — a reordering policy beats
# FIFO at depth >= 4, and depth-1 rows degenerate to the queue-off
# baseline.
qdepth-smoke:
	rm -rf _build/qdepth-smoke && mkdir -p _build/qdepth-smoke
	dune exec bench/main.exe -- qdepth \
		--out _build/qdepth-smoke/run1.json > _build/qdepth-smoke/log1.txt
	dune exec bench/main.exe -- qdepth \
		--out _build/qdepth-smoke/run2.json > /dev/null
	cmp _build/qdepth-smoke/run1.json _build/qdepth-smoke/run2.json
	@grep -q '"shape_ok": true' _build/qdepth-smoke/run1.json
	@grep -q '"depth1_ok": true' _build/qdepth-smoke/run1.json
	@echo "qdepth-smoke: reordering wins at depth >= 4, depth-1 degenerate, deterministic"

# Requires ocamlformat (not vendored in the container); no-op without it.
fmt:
	-dune fmt

fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "fmt-check: ocamlformat not installed, skipping"; \
	fi

ci: fmt-check check serve-smoke volumes-smoke faultsweep-smoke wrap-smoke \
	recovery-smoke timeline-smoke watch-smoke why-smoke qdepth-smoke bench-diff

clean:
	dune clean
