# Tier-1 gate (see ROADMAP.md): `make check` must pass — a clean build
# with zero warnings plus the full test suite — before any PR lands.

.PHONY: all check build test bench serve-smoke faultsweep-smoke wrap-smoke recovery-smoke fmt fmt-check ci clean

all: build

build:
	dune build

test:
	dune runtest

check: build test

# Reproduce every paper table and regenerate the committed snapshots
# (BENCH_OBS.json, BENCH_GROUPCOMMIT.json, BENCH_FAULTSWEEP.json,
# BENCH_RECOVERY.json, BENCH_WRAP.json) so reviewers can diff
# observability, group-commit-scaling, crash-sweep, restart-time, and
# log-wrap-endurance output.
bench:
	dune exec bench/main.exe
	dune exec bench/main.exe -- obs-json --out BENCH_OBS.json
	dune exec bench/main.exe -- clients --out BENCH_GROUPCOMMIT.json
	dune exec bench/main.exe -- faultsweep --out BENCH_FAULTSWEEP.json
	dune exec bench/main.exe -- recovery --out BENCH_RECOVERY.json
	dune exec bench/main.exe -- wrap --out BENCH_WRAP.json

# Determinism smoke: two same-seed 2-client server runs must produce
# byte-identical JSON reports (the server's core contract).
serve-smoke:
	dune build bin/cedar.exe
	rm -rf _build/serve-smoke && mkdir -p _build/serve-smoke
	./_build/default/bin/cedar.exe mkfs _build/serve-smoke/vol.img > /dev/null
	./_build/default/bin/cedar.exe serve _build/serve-smoke/vol.img \
		--clients 2 --json > _build/serve-smoke/run1.json
	./_build/default/bin/cedar.exe serve _build/serve-smoke/vol.img \
		--clients 2 --json > _build/serve-smoke/run2.json
	cmp _build/serve-smoke/run1.json _build/serve-smoke/run2.json
	@echo "serve-smoke: deterministic"

# Crash-injection smoke: kill the 2-client server at every sector write
# of the first three force intervals, once per tear mode, and reboot each
# time. cedar faultsweep exits non-zero on any recovery-contract
# violation, so this line IS the assertion.
faultsweep-smoke:
	dune build bin/cedar.exe
	./_build/default/bin/cedar.exe faultsweep --clients 2 --max-forces 3 \
		--tear all > /dev/null
	@echo "faultsweep-smoke: zero violations"

# Log-wrap smoke: a bounded churn run that wraps the log at least once,
# twice with the same seed. cedar churn exits non-zero on any oracle
# violation, a non-zero replay after the clean shutdown, or too few
# wraps, and the two JSON summaries must be byte-identical.
wrap-smoke:
	dune build bin/cedar.exe
	rm -rf _build/wrap-smoke && mkdir -p _build/wrap-smoke
	./_build/default/bin/cedar.exe churn --tiny --ops 60 --min-wraps 1 \
		--json > _build/wrap-smoke/run1.json
	./_build/default/bin/cedar.exe churn --tiny --ops 60 --min-wraps 1 \
		--json > _build/wrap-smoke/run2.json
	cmp _build/wrap-smoke/run1.json _build/wrap-smoke/run2.json
	@echo "wrap-smoke: wrapped, clean, deterministic"

# Restart smoke: the recovery bench hard-fails (exit 1) if a crash
# reboot replays the wrong record count or reads any log body sector
# more than once — its internal assertions ARE the check.
recovery-smoke:
	dune exec bench/main.exe -- recovery --out _build/BENCH_RECOVERY.smoke.json \
		> /dev/null
	@echo "recovery-smoke: single-pass replay holds"

# Requires ocamlformat (not vendored in the container); no-op without it.
fmt:
	-dune fmt

fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "fmt-check: ocamlformat not installed, skipping"; \
	fi

ci: fmt-check check serve-smoke faultsweep-smoke wrap-smoke recovery-smoke

clean:
	dune clean
