# Tier-1 gate (see ROADMAP.md): `make check` must pass — a clean build
# with zero warnings plus the full test suite — before any PR lands.

.PHONY: all check build test bench serve-smoke fmt fmt-check ci clean

all: build

build:
	dune build

test:
	dune runtest

check: build test

# Reproduce every paper table and regenerate the committed snapshots
# (BENCH_OBS.json, BENCH_GROUPCOMMIT.json) so reviewers can diff
# observability and group-commit-scaling output.
bench:
	dune exec bench/main.exe
	dune exec bench/main.exe -- obs-json --out BENCH_OBS.json
	dune exec bench/main.exe -- clients --out BENCH_GROUPCOMMIT.json

# Determinism smoke: two same-seed 2-client server runs must produce
# byte-identical JSON reports (the server's core contract).
serve-smoke:
	dune build bin/cedar.exe
	rm -rf _build/serve-smoke && mkdir -p _build/serve-smoke
	./_build/default/bin/cedar.exe mkfs _build/serve-smoke/vol.img > /dev/null
	./_build/default/bin/cedar.exe serve _build/serve-smoke/vol.img \
		--clients 2 --json > _build/serve-smoke/run1.json
	./_build/default/bin/cedar.exe serve _build/serve-smoke/vol.img \
		--clients 2 --json > _build/serve-smoke/run2.json
	cmp _build/serve-smoke/run1.json _build/serve-smoke/run2.json
	@echo "serve-smoke: deterministic"

# Requires ocamlformat (not vendored in the container); no-op without it.
fmt:
	-dune fmt

fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "fmt-check: ocamlformat not installed, skipping"; \
	fi

ci: fmt-check check serve-smoke

clean:
	dune clean
