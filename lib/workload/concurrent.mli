(** Concurrent closed-loop client scripts for the FSD server.

    A {e script} is a pure description of one client session's behavior —
    operations interleaved with think time — replayed by the server
    scheduler (lib/server). Generation is deterministic: equal specs give
    equal scripts, which is what makes server runs replayable from a
    seed. *)

type op =
  | Create of { name : string; bytes : int; fill : int }
      (** [fill] seeds the deterministic payload, see {!content} *)
  | Open of string
  | Read of string
  | Read_page of { name : string; page : int }
  | Delete of string
  | List of string
  | Force  (** explicit client force of the log (§5.4) *)

type step =
  | Think of int  (** client-side pause in microseconds *)
  | At of int
      (** open-loop arrival: do not issue the next op before this
          absolute virtual time. A session already past the deadline
          issues immediately — the backlog is the point. *)
  | Op of op

type script = step list

val content : fill:int -> int -> bytes
(** The deterministic payload a [Create] carries. *)

val pp_op : Format.formatter -> op -> unit
val op_name : op -> string

(** The operation's type as a constant label ("create", "open", "read",
    "read_page", "delete", "list", "force") — the key latency anatomy
    aggregates by. Never allocates. *)
val op_kind : op -> string
val mutates : op -> bool
(** Whether the operation leaves log-pending metadata (create/delete) —
    the ops whose sessions park on the group-commit batcher. *)

(** {1 The §7 make/do workload, per client} *)

type spec = {
  modules : int;
  deps_per_module : int;
  rounds : int;  (** build passes after the prepare phase *)
  source_bytes : int;
  think_us : int;  (** mean think time; draws are uniform in ±50% *)
  seed : int;
}

val default_spec : spec

val makedo_client : spec -> client:int -> script
(** One client's closed-loop make/do session under its own directory
    [c<NN>/]: create sources, then per round read sources, stat
    dependencies, create-use-delete compiler temps and emit objects. *)

val makedo_scripts : spec -> clients:int -> script array

(** {1 The crash-sweep reference script} *)

val crash_reference : clients:int -> script array
(** The deterministic script the crash-injection sweep replays: per
    client, six uniquely-named creates, two deletes of names created
    earlier in the same session, reads in between, and a mix of explicit
    [Force] steps and think time long enough that timed commits fire
    too. Unique names and session-ordered deletes keep the post-crash
    acked/unacked oracle unambiguous. *)

(** {1 Adversarial shapes (fairness and backpressure tests)} *)

val bulk_writer :
  client:int -> files:int -> bytes:int -> think_us:int -> seed:int -> script
(** A session that streams large creates with little think time. *)

val churn :
  client:int -> ops:int -> bytes:int -> think_us:int -> seed:int -> script
(** A session of small create/delete metadata traffic. *)

(** {1 The log-wrap churn workload} *)

type churn_spec = {
  slots : int;  (** distinct names in the client's working set *)
  churn_ops : int;  (** steps per client (creates/deletes/reads) *)
  bytes_min : int;
  bytes_max : int;  (** create payload sizes drawn uniformly in range *)
  churn_keep : int;
      (** versions the volume keeps per name — must match the booted
          [Params.default_keep] so the generator's live-depth model (and
          so the post-crash oracle) agrees with the file system *)
  churn_think_us : int;  (** max think time per step; 0 disables *)
  force_every : int;  (** explicit [Force] every N mutations; 0 = none *)
  churn_seed : int;
}

val default_churn : churn_spec
(** 12 slots, 400 ops, 256–2048-byte payloads, keep 2, a force every 16
    mutations — on a small test volume one client wraps the log several
    times. *)

val churn_client : churn_spec -> client:int -> script
(** One client's closed-loop churn session over its own
    ["c<NN>/churn/s<SSS>"] slots: ~60% creates (new versions of live
    slots — overwrites under keep truncation), ~25% deletes of the
    newest live version, ~15% reads, with per-slot live-depth tracking
    so no step targets a missing name. Deterministic; raises
    [Invalid_argument] on a non-positive [slots] or [churn_keep]. *)

val churn_scripts : churn_spec -> clients:int -> script array

(** {1 The open-loop production workload} *)

type open_spec = {
  ol_rate_per_s : float;
      (** aggregate Poisson arrival rate across all clients, ops/s *)
  ol_ops : int;  (** total arrivals across all clients *)
  ol_bytes_min : int;
  ol_bytes_max : int;  (** bounded-Pareto size range *)
  ol_alpha : float;  (** Pareto tail index; smaller = heavier tail *)
  ol_hot_dirs : int;  (** hot directories, zipf-popular *)
  ol_slots : int;  (** name slots per hot directory, zipf-popular *)
  ol_zipf_s : float;  (** zipf exponent over dirs and slots *)
  ol_keep : int;
      (** must match the booted [Params.default_keep], as in
          {!churn_spec} *)
  ol_seed : int;
}

val default_open : open_spec
(** 20 ops/s aggregate, 400 arrivals, 384–16384-byte bounded-Pareto
    sizes (α = 1.3), 4 hot dirs × 16 slots at zipf 1.1, keep 2. *)

val open_loop : open_spec -> clients:int -> script array
(** Deterministic open-loop traffic: one global Poisson stream at
    [ol_rate_per_s], each arrival assigned uniformly to a client as an
    [At arrival; Op op] pair — so offered load is pinned to the virtual
    clock instead of self-limiting to the service rate, and past the
    saturation knee the backlog grows. The mix is ~70% creates
    (heavy-tailed sizes), ~15% deletes, ~15% reads over zipfian
    hot-directory/slot names, with per-(client, dir, slot) live-depth
    tracking so a clean run replays with zero client errors. Raises
    [Invalid_argument] on non-positive rate/dirs/slots/keep or an empty
    byte range. *)

(** {1 Script files ([cedar serve --script])} *)

val parse_script : string -> (script, string) result
(** Parse the one-step-per-line format ([think US], [at US],
    [create NAME BYTES], [open NAME], [read NAME],
    [read-page NAME PAGE], [delete NAME], [list PREFIX], [force];
    [#] comments). *)

val instantiate : ?volumes:int -> script -> client:int -> script
(** Replace every ["{c}"] in names with the client's directory ("c00",
    "c01", ...) so each session gets its own namespace, and every
    ["{v}"] with a top-level directory that shard-routes
    ({!Cedar_fsbase.Fname.shard_dir}) to volume [client mod volumes]
    (default [volumes = 1], where it is the constant ["v0"]). Raises
    [Invalid_argument] when [volumes < 1]. *)

val shard_scripts : script array -> volumes:int -> script array
(** Pin client [i]'s namespace to volume [i mod volumes] by prefixing
    every name with a shard-routing top-level directory
    ("v<K>.../name"). [volumes = 1] adds the same constant prefix to
    every client — same single volume, same script shape — so single-
    and multi-volume benchmark runs stay comparable. Raises
    [Invalid_argument] when [volumes < 1]. *)
