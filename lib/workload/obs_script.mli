(** The fixed scripted workload behind [cedar stats], [cedar trace] and
    the hand-counted expectations in test_obs: [n] small files in one
    directory — create all, force, open all, read all, list, delete all,
    force. Run {!warmup} first (and enable tracing after it) so the
    scripted pass measures steady-state I/O rather than first-touch
    cache misses. *)

val n : int
(** Files in the scripted pass (10). *)

val bytes_each : int
(** Payload size per file (900 bytes — small, per Tables 3/4). *)

val dir : string

val name : int -> string
(** Name of the [i]th scripted file. *)

val warmup : Cedar_fsbase.Fs_ops.t -> unit
val scripted : Cedar_fsbase.Fs_ops.t -> unit

val paper_bulk : Cedar_fsbase.Fs_ops.t -> unit
(** The paper's Tables 3/4 bulk pattern (100 files of 512 bytes) for the
    bench emitter. *)
