(* Concurrent closed-loop client scripts.

   A script is a pure description — no file-system handle in sight — so
   the same script can be replayed by the server scheduler, compared
   across runs, or parsed from a file. Generation is deterministic: equal
   specs give byte-equal scripts. *)

open Cedar_util

type op =
  | Create of { name : string; bytes : int; fill : int }
  | Open of string
  | Read of string
  | Read_page of { name : string; page : int }
  | Delete of string
  | List of string
  | Force

type step = Think of int | At of int | Op of op
type script = step list

let content ~fill n = Bytes.init n (fun i -> Char.chr ((i + fill) mod 251))

let pp_op ppf = function
  | Create { name; bytes; _ } -> Format.fprintf ppf "create %s %d" name bytes
  | Open name -> Format.fprintf ppf "open %s" name
  | Read name -> Format.fprintf ppf "read %s" name
  | Read_page { name; page } -> Format.fprintf ppf "read-page %s %d" name page
  | Delete name -> Format.fprintf ppf "delete %s" name
  | List prefix -> Format.fprintf ppf "list %s" prefix
  | Force -> Format.fprintf ppf "force"

let op_name = function
  | Create { name; _ } | Open name | Read name
  | Read_page { name; _ } | Delete name ->
    name
  | List prefix -> prefix
  | Force -> ""

let mutates = function
  | Create _ | Delete _ -> true
  | Open _ | Read _ | Read_page _ | List _ | Force -> false

(* Constant literals on purpose: the server's lifecycle-trace hot path
   evaluates this with tracing off, and must not allocate there. *)
let op_kind = function
  | Create _ -> "create"
  | Open _ -> "open"
  | Read _ -> "read"
  | Read_page _ -> "read_page"
  | Delete _ -> "delete"
  | List _ -> "list"
  | Force -> "force"

(* ------------------------------------------------------------------ *)
(* The §7 make/do workload, one client's worth.

   Mirrors [Makedo.build]: read each module's source, stat and touch its
   dependencies, create-use-delete a compiler temp, emit the derived
   object, and rewrite the build description — under the client's own
   directory, with think time between operations (a developer's
   edit-compile pause). *)

type spec = {
  modules : int;
  deps_per_module : int;
  rounds : int;
  source_bytes : int;
  think_us : int;  (** mean think time; actual draws are uniform in ±50% *)
  seed : int;
}

let default_spec =
  {
    modules = 8;
    deps_per_module = 2;
    rounds = 2;
    source_bytes = 3_000;
    think_us = 50_000;
    seed = 1;
  }

let client_dir client = Printf.sprintf "c%02d" client
let source_name ~client i = Printf.sprintf "%s/src/M%03d.mesa" (client_dir client) i
let object_name ~client i = Printf.sprintf "%s/bin/M%03d.bcd" (client_dir client) i
let temp_name ~client i = Printf.sprintf "%s/tmp/M%03d.tmp" (client_dir client) i
let df_name ~client = Printf.sprintf "%s/build/program.df" (client_dir client)

let think rng spec acc =
  if spec.think_us <= 0 then acc
  else begin
    let lo = spec.think_us / 2 in
    Think (lo + Rng.int rng (max 1 spec.think_us)) :: acc
  end

let makedo_client spec ~client =
  let rng = Rng.create (spec.seed + (client * 7919)) in
  let acc = ref [] in
  let push op = acc := Op op :: think rng spec !acc in
  (* prepare: the sources and the build description *)
  for i = 0 to spec.modules - 1 do
    let bytes =
      max 256 ((spec.source_bytes / 2) + Rng.int rng (max 1 spec.source_bytes))
    in
    push (Create { name = source_name ~client i; bytes; fill = i })
  done;
  push (Create { name = df_name ~client; bytes = 2_000; fill = 0 });
  for round = 1 to spec.rounds do
    for i = 0 to spec.modules - 1 do
      push (Read (source_name ~client i));
      for d = 1 to spec.deps_per_module do
        let dep = (i + d) mod spec.modules in
        push (Open (source_name ~client dep));
        push (Read_page { name = source_name ~client dep; page = 0 })
      done;
      push (Create { name = temp_name ~client i; bytes = 1_500; fill = round });
      push (Read_page { name = temp_name ~client i; page = 0 });
      push (Delete (temp_name ~client i));
      push
        (Create
           {
             name = object_name ~client i;
             bytes = max 512 (spec.source_bytes / 2);
             fill = round + i;
           })
    done;
    push (Create { name = df_name ~client; bytes = 2_200; fill = round });
    push (List (client_dir client ^ "/bin/"))
  done;
  List.rev !acc

let makedo_scripts spec ~clients =
  Array.init clients (fun client -> makedo_client spec ~client)

(* ------------------------------------------------------------------ *)
(* The crash-sweep reference script.

   Hand-written rather than generated so the acked/unacked oracle stays
   unambiguous: every created name is unique, deletes only target names
   created earlier in the same session (a closed-loop session only
   reaches the delete after the create was acknowledged durable), and
   explicit [Force] steps plus think time spreading past several commit
   intervals give the sweep a mix of timed and explicit force ordinals
   to crash inside. Names live under "c<NN>/ref/" so clients are
   independent and per-client recovered state can be checked against a
   per-client prefix of its mutating ops. *)

let crash_reference_client ~client =
  let name i = Printf.sprintf "%s/ref/f%d" (client_dir client) i in
  let fill i = (client * 16) + i in
  [
    Op (Create { name = name 0; bytes = 700; fill = fill 0 });
    Think 120_000;
    Op (Create { name = name 1; bytes = 1_400; fill = fill 1 });
    Think 200_000;
    Op (Open (name 0));
    Op (Create { name = name 2; bytes = 900; fill = fill 2 });
    Op Force;
    Think 250_000;
    Op (Read (name 1));
    Op (Delete (name 0));
    Think 300_000;
    Op (Create { name = name 3; bytes = 2_100; fill = fill 3 });
    Think 400_000;
    Op (Read_page { name = name 2; page = 0 });
    Op (Create { name = name 4; bytes = 600; fill = fill 4 });
    Op Force;
    Think 350_000;
    Op (Delete (name 2));
    Op (Create { name = name 5; bytes = 1_100; fill = fill 5 });
    Think 300_000;
    Op (List (client_dir client ^ "/ref/"));
  ]

let crash_reference ~clients =
  Array.init clients (fun client -> crash_reference_client ~client)

(* ------------------------------------------------------------------ *)
(* Adversarial shapes for fairness and backpressure tests. *)

let bulk_writer ~client ~files ~bytes ~think_us ~seed =
  let rng = Rng.create seed in
  let acc = ref [] in
  for i = 0 to files - 1 do
    if think_us > 0 then acc := Think (1 + Rng.int rng think_us) :: !acc;
    acc :=
      Op
        (Create
           {
             name = Printf.sprintf "%s/bulk/f%04d" (client_dir client) i;
             bytes;
             fill = i;
           })
      :: !acc
  done;
  List.rev !acc

let churn ~client ~ops ~bytes ~think_us ~seed =
  let rng = Rng.create seed in
  let acc = ref [] in
  for i = 0 to ops - 1 do
    if think_us > 0 then acc := Think (1 + Rng.int rng think_us) :: !acc;
    let name = Printf.sprintf "%s/meta/f%02d" (client_dir client) (i mod 4) in
    acc := Op (Create { name; bytes; fill = i }) :: !acc;
    if i mod 2 = 1 then acc := Op (Delete name) :: !acc
  done;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* The log-wrap churn workload.

   A closed-loop create/overwrite/delete/read mix over a small fixed
   working set, sized so a sustained run writes many times the log's
   capacity and the head wraps repeatedly. Each client owns [slots]
   names under "c<NN>/churn/"; a step picks a slot and either creates a
   new version of it (an overwrite when the slot is live — the FSD keeps
   at most [churn_keep] versions), deletes the newest version of a live
   slot, or reads a live slot. Periodic explicit [Force] steps keep the
   force cadence dense enough that a crash sweep can land between any
   two commits.

   The generator tracks each slot's live version depth (capped at
   [churn_keep], matching the volume's keep truncation) so deletes and
   reads only ever target names that exist — a clean run must replay
   with zero client errors, or the post-crash oracle is ambiguous.
   Generation is deterministic: equal specs give byte-equal scripts. *)

type churn_spec = {
  slots : int;
  churn_ops : int;
  bytes_min : int;
  bytes_max : int;
  churn_keep : int;
  churn_think_us : int;
  force_every : int;
  churn_seed : int;
}

let default_churn =
  {
    slots = 12;
    churn_ops = 400;
    bytes_min = 256;
    bytes_max = 2048;
    churn_keep = 2;
    churn_think_us = 2_000;
    force_every = 16;
    churn_seed = 1;
  }

let churn_slot_name ~client slot =
  Printf.sprintf "%s/churn/s%03d" (client_dir client) slot

let churn_client spec ~client =
  if spec.slots < 1 then invalid_arg "Concurrent.churn_client: slots < 1";
  if spec.churn_keep < 1 then invalid_arg "Concurrent.churn_client: keep < 1";
  let rng = Rng.create (spec.churn_seed + (client * 7919)) in
  let depth = Array.make spec.slots 0 in
  let acc = ref [] in
  let mutations = ref 0 in
  let last_forced = ref 0 in
  let push op = acc := Op op :: !acc in
  for i = 0 to spec.churn_ops - 1 do
    if spec.churn_think_us > 0 then
      acc := Think (1 + Rng.int rng spec.churn_think_us) :: !acc;
    let slot = Rng.int rng spec.slots in
    let name = churn_slot_name ~client slot in
    let roll = Rng.int rng 100 in
    if roll < 60 || depth.(slot) = 0 then begin
      let span = max 1 (spec.bytes_max - spec.bytes_min + 1) in
      let bytes = spec.bytes_min + Rng.int rng span in
      push (Create { name; bytes; fill = (client * 131) + i });
      depth.(slot) <- min (depth.(slot) + 1) spec.churn_keep;
      incr mutations
    end
    else if roll < 85 then begin
      push (Delete name);
      depth.(slot) <- depth.(slot) - 1;
      incr mutations
    end
    else push (Read name);
    if spec.force_every > 0 && !mutations - !last_forced >= spec.force_every
    then begin
      last_forced := !mutations;
      push Force
    end
  done;
  List.rev !acc

let churn_scripts spec ~clients =
  Array.init clients (fun client -> churn_client spec ~client)

(* ------------------------------------------------------------------ *)
(* The open-loop production workload.

   Closed-loop scripts can never saturate the server: each client waits
   for its previous op before thinking about the next, so offered load
   self-limits to the service rate. Here arrivals come from one global
   Poisson process at a configured aggregate rate — [At t] pins each
   op's earliest issue time to the virtual clock regardless of how far
   behind the server is, so when service is slower than arrival the
   backlog (queue depth, commit wait, rejects) grows and the telemetry
   shows the saturation knee.

   Shape knobs follow production traffic folklore: heavy-tailed
   (bounded Pareto) file sizes, and zipfian popularity both over a few
   hot directories and over the name slots within each, so a minority
   of names absorbs the majority of the churn. Each arrival is assigned
   uniformly to a client session. Per-(client, dir, slot) version depth
   is tracked exactly like the churn generator (capped at [ol_keep],
   which must match the volume's keep truncation) so deletes and reads
   only target live names — a clean run replays with zero client
   errors. Generation is deterministic: equal specs give byte-equal
   script arrays. *)

type open_spec = {
  ol_rate_per_s : float;  (* aggregate arrival rate over all clients *)
  ol_ops : int;  (* total arrivals *)
  ol_bytes_min : int;
  ol_bytes_max : int;
  ol_alpha : float;  (* Pareto tail index; smaller = heavier tail *)
  ol_hot_dirs : int;
  ol_slots : int;  (* name slots per hot directory *)
  ol_zipf_s : float;  (* zipf exponent over dirs and slots *)
  ol_keep : int;
  ol_seed : int;
}

let default_open =
  {
    ol_rate_per_s = 20.0;
    ol_ops = 400;
    ol_bytes_min = 384;
    ol_bytes_max = 16_384;
    ol_alpha = 1.3;
    ol_hot_dirs = 4;
    ol_slots = 16;
    ol_zipf_s = 1.1;
    ol_keep = 2;
    ol_seed = 1;
  }

let open_name ~client dir slot =
  Printf.sprintf "%s/hot%d/f%03d" (client_dir client) dir slot

(* Draw from {0..n-1} with P(i) proportional to 1/(i+1)^s. *)
let zipf_cumulative n s =
  let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. x;
      !acc)
    w

let zipf_draw rng cum =
  let total = cum.(Array.length cum - 1) in
  let u = Rng.float rng total in
  let rec find i = if u < cum.(i) then i else find (i + 1) in
  find 0

let open_loop spec ~clients =
  if clients < 1 then invalid_arg "Concurrent.open_loop: clients < 1";
  if spec.ol_rate_per_s <= 0.0 then
    invalid_arg "Concurrent.open_loop: rate <= 0";
  if spec.ol_hot_dirs < 1 || spec.ol_slots < 1 then
    invalid_arg "Concurrent.open_loop: hot_dirs/slots < 1";
  if spec.ol_keep < 1 then invalid_arg "Concurrent.open_loop: keep < 1";
  if spec.ol_bytes_min < 1 || spec.ol_bytes_max < spec.ol_bytes_min then
    invalid_arg "Concurrent.open_loop: bytes range";
  let rng = Rng.create spec.ol_seed in
  let dir_cum = zipf_cumulative spec.ol_hot_dirs spec.ol_zipf_s in
  let slot_cum = zipf_cumulative spec.ol_slots spec.ol_zipf_s in
  let depth = Array.init clients (fun _ ->
      Array.make_matrix spec.ol_hot_dirs spec.ol_slots 0)
  in
  let scripts = Array.make clients [] in
  let t = ref 0.0 in
  for i = 0 to spec.ol_ops - 1 do
    (* Exponential inter-arrival time of the aggregate Poisson stream. *)
    let u = Rng.float rng 1.0 in
    t := !t +. (-.log (1.0 -. u) /. spec.ol_rate_per_s *. 1e6);
    let client = Rng.int rng clients in
    let dir = zipf_draw rng dir_cum in
    let slot = zipf_draw rng slot_cum in
    let name = open_name ~client dir slot in
    let d = depth.(client).(dir) in
    let roll = Rng.int rng 100 in
    let op =
      if roll < 70 || d.(slot) = 0 then begin
        (* Bounded Pareto size: heavy tail, capped at [ol_bytes_max]. *)
        let v = Rng.float rng 1.0 in
        let raw =
          float_of_int spec.ol_bytes_min
          *. Float.pow (1.0 -. v) (-1.0 /. spec.ol_alpha)
        in
        let bytes =
          min spec.ol_bytes_max
            (max spec.ol_bytes_min (int_of_float raw))
        in
        d.(slot) <- min (d.(slot) + 1) spec.ol_keep;
        Create { name; bytes; fill = (client * 131) + i }
      end
      else if roll < 85 then begin
        d.(slot) <- d.(slot) - 1;
        Delete name
      end
      else Read name
    in
    scripts.(client) <- Op op :: At (int_of_float !t) :: scripts.(client)
  done;
  Array.map List.rev scripts

(* ------------------------------------------------------------------ *)
(* Script files: one step per line for [cedar serve --script].

     # comment
     think 5000
     create {c}/a.txt 2048
     open {c}/a.txt
     read {c}/a.txt
     read-page {c}/a.txt 0
     delete {c}/a.txt
     list {c}/
     force

   "{c}" in a name is replaced per client ("c00", "c01", ...), giving
   each session its own namespace; a literal name shared by every client
   exercises contention instead. "{v}" is replaced with a top-level
   directory that shard-routes to volume [client mod volumes]
   (Fname.shard_dir), so a multi-volume serve spreads clients across
   volumes deterministically; with one volume it degenerates to the
   constant "v0". *)

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  let err fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt
  in
  let int_of w k =
    match int_of_string_opt w with
    | Some n when n >= 0 -> k n
    | Some _ | None -> err "%S is not a non-negative integer" w
  in
  match words with
  | [] -> Ok None
  | [ "think"; us ] -> int_of us (fun n -> Ok (Some (Think n)))
  | [ "at"; us ] -> int_of us (fun n -> Ok (Some (At n)))
  | [ "create"; name; bytes ] ->
    int_of bytes (fun n -> Ok (Some (Op (Create { name; bytes = n; fill = lineno }))))
  | [ "open"; name ] -> Ok (Some (Op (Open name)))
  | [ "read"; name ] -> Ok (Some (Op (Read name)))
  | [ "read-page"; name; page ] ->
    int_of page (fun n -> Ok (Some (Op (Read_page { name; page = n }))))
  | [ "delete"; name ] -> Ok (Some (Op (Delete name)))
  | [ "list"; prefix ] -> Ok (Some (Op (List prefix)))
  | [ "force" ] -> Ok (Some (Op Force))
  | verb :: _ -> err "unknown or malformed step %S" verb

let parse_script text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line lineno line with
      | Error _ as e -> e
      | Ok None -> go (lineno + 1) acc rest
      | Ok (Some step) -> go (lineno + 1) (step :: acc) rest)
  in
  go 1 [] lines

let substitute ~client ~vdir name =
  let b = Buffer.create (String.length name) in
  let n = String.length name in
  let rec go i =
    if i >= n then ()
    else if i + 3 <= n && String.sub name i 3 = "{c}" then begin
      Buffer.add_string b (client_dir client);
      go (i + 3)
    end
    else if i + 3 <= n && String.sub name i 3 = "{v}" then begin
      Buffer.add_string b vdir;
      go (i + 3)
    end
    else begin
      Buffer.add_char b name.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents b

let map_names f script =
  List.map
    (function
      | (Think _ | At _) as s -> s
      | Op op ->
        Op
          (match op with
          | Create c -> Create { c with name = f c.name }
          | Open name -> Open (f name)
          | Read name -> Read (f name)
          | Read_page p -> Read_page { p with name = f p.name }
          | Delete name -> Delete (f name)
          | List prefix -> List (f prefix)
          | Force -> Force))
    script

let instantiate ?(volumes = 1) script ~client =
  if volumes < 1 then invalid_arg "Concurrent.instantiate: volumes < 1";
  let vdir = Cedar_fsbase.Fname.shard_dir ~shards:volumes (client mod volumes) in
  map_names (substitute ~client ~vdir) script

(* Pin each client's whole namespace to one volume by nesting it under a
   shard-routing top-level directory ("v<K>.../c<NN>/..."): clients are
   dealt round-robin over volumes, so K clients on V volumes load every
   volume with K/V closed loops — the scale-out benchmark shape. With
   [volumes = 1] every name gains a constant "v0/" prefix: same volume,
   same script shape, so single- and multi-volume runs stay
   comparable. *)
let shard_scripts scripts ~volumes =
  if volumes < 1 then invalid_arg "Concurrent.shard_scripts: volumes < 1";
  Array.mapi
    (fun client script ->
      let vdir =
        Cedar_fsbase.Fname.shard_dir ~shards:volumes (client mod volumes)
      in
      map_names (fun name -> vdir ^ "/" ^ name) script)
    scripts
