open Cedar_fsbase

let n = 10
let bytes_each = 900
let dir = "obs"

let name i = Bulk.file_name ~dir i
let payload i = Bytes.init bytes_each (fun j -> Char.chr ((i + j) mod 251))

let warmup (ops : Fs_ops.t) =
  (* Touch the directory's name-table neighbourhood so the scripted run
     measures steady-state I/O, not first-touch cache misses. *)
  ignore (ops.Fs_ops.create ~name:(dir ^ "/warm") ~data:(payload 0) : Fs_ops.info);
  ops.Fs_ops.force ();
  ignore (ops.Fs_ops.read_all ~name:(dir ^ "/warm") : bytes);
  ops.Fs_ops.delete ~name:(dir ^ "/warm");
  ops.Fs_ops.force ()

let scripted (ops : Fs_ops.t) =
  for i = 0 to n - 1 do
    ignore (ops.Fs_ops.create ~name:(name i) ~data:(payload i) : Fs_ops.info)
  done;
  ops.Fs_ops.force ();
  for i = 0 to n - 1 do
    ignore (ops.Fs_ops.open_stat ~name:(name i) : Fs_ops.info)
  done;
  for i = 0 to n - 1 do
    ignore (ops.Fs_ops.read_all ~name:(name i) : bytes)
  done;
  ignore (ops.Fs_ops.list ~prefix:(dir ^ "/") : Fs_ops.info list);
  for i = 0 to n - 1 do
    ops.Fs_ops.delete ~name:(name i)
  done;
  ops.Fs_ops.force ()

let paper_bulk (ops : Fs_ops.t) =
  let dir = "paper" in
  ignore (Bulk.create_many ops ~dir ~n:100 ~bytes_each:512 : Measure.sample);
  ignore (Bulk.list_dir ops ~dir ~expect:100 : Measure.sample);
  ignore (Bulk.read_many ops ~dir ~n:100 : Measure.sample);
  ignore (Bulk.delete_many ops ~dir ~n:100 : Measure.sample)
