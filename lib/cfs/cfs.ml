open Cedar_util
open Cedar_disk
open Cedar_fsbase

type scavenge_report = {
  files_recovered : int;
  files_lost : int;
  duration_us : int;
}

let corrupt msg = Fs_error.raise_ (Fs_error.Corrupt_metadata msg)

(* ------------------------------------------------------------------ *)
(* The direct-to-disk name-table page store.

   Pages are written in place, synchronously, one verified labelled
   command per page — so a multi-page B-tree update is NOT atomic (§5.3's
   complaint). Clean pages are cached; every write goes straight to disk. *)

module Direct_store = struct
  type anchor = {
    mutable root : int option;
    alloc_map : Bitmap.t;
    mutable uid_hint : int64;
  }

  type t = {
    device : Device.t;
    layout : Cfs_layout.t;
    cache : (int, bytes) Lru.t; (* payloads; everything here is clean *)
    anchor : anchor;
    mutable page_writes : int;
  }

  let trailer = 16
  let page_magic = 0x43464e54 (* "CFNT" *)
  let anchor_magic = 0x43414e31 (* "CAN1" *)

  let full_bytes layout =
    layout.Cfs_layout.params.Cfs_layout.fnt_page_sectors
    * layout.Cfs_layout.geom.Geometry.sector_bytes

  let page_bytes t = full_bytes t.layout - trailer

  let fnt_labels layout ~page =
    let n = layout.Cfs_layout.params.Cfs_layout.fnt_page_sectors in
    List.init n (fun i ->
        { Label.uid = 0L; page = (page * n) + i; kind = Label.Fnt })

  let frame layout ~page payload =
    let full = full_bytes layout in
    if Bytes.length payload <> full - trailer then invalid_arg "Direct_store.frame";
    let out = Bytes.make full '\000' in
    Bytes.blit payload 0 out 0 (Bytes.length payload);
    let w = Bytebuf.Writer.create ~initial:trailer () in
    Bytebuf.Writer.u32 w page_magic;
    Bytebuf.Writer.u32 w page;
    Bytebuf.Writer.u32 w (Crc32.bytes payload);
    Bytebuf.Writer.u32 w 0;
    Bytes.blit (Bytebuf.Writer.contents w) 0 out (full - trailer) trailer;
    out

  let unframe layout ~page image =
    let full = full_bytes layout in
    if Bytes.length image <> full then None
    else begin
      let payload = Bytes.sub image 0 (full - trailer) in
      let r = Bytebuf.Reader.of_bytes ~pos:(full - trailer) image in
      match
        let m = Bytebuf.Reader.u32 r in
        let id = Bytebuf.Reader.u32 r in
        let crc = Bytebuf.Reader.u32 r in
        (m, id, crc)
      with
      | exception Bytebuf.Decode_error _ -> None
      | m, id, crc ->
        if m = page_magic && id = page && crc = Crc32.bytes payload then Some payload
        else None
    end

  let read t page =
    match Lru.find t.cache page with
    | Some payload -> Bytes.copy payload
    | None -> (
      let sector = Cfs_layout.fnt_sector t.layout ~page in
      let image =
        try
          Device.verified_read_run t.device ~sector ~expect:(fnt_labels t.layout ~page)
        with Device.Error { sector; kind = _ } ->
          corrupt (Printf.sprintf "name-table sector %d unreadable" sector)
      in
      match unframe t.layout ~page image with
      | Some payload ->
        ignore (Lru.add t.cache page (Bytes.copy payload) : (int * bytes) list);
        payload
      | None ->
        raise
          (Cedar_btree.Btree.Corrupt
             (Printf.sprintf "name-table page %d fails its checksum" page)))

  (* Synchronous in-place write: the non-atomicity is the point. *)
  let write t page payload =
    let sector = Cfs_layout.fnt_sector t.layout ~page in
    Device.verified_write_run t.device ~sector
      ~expect:(fnt_labels t.layout ~page)
      (frame t.layout ~page payload);
    t.page_writes <- t.page_writes + 1;
    ignore (Lru.add t.cache page (Bytes.copy payload) : (int * bytes) list)

  let encode_anchor t =
    let w = Bytebuf.Writer.create () in
    Bytebuf.Writer.u32 w anchor_magic;
    (match t.anchor.root with
    | None -> Bytebuf.Writer.u32 w 0
    | Some r -> Bytebuf.Writer.u32 w (r + 1));
    Bytebuf.Writer.u64 w t.anchor.uid_hint;
    Bytebuf.Writer.u32 w (Bitmap.length t.anchor.alloc_map);
    Bytebuf.Writer.raw w (Bitmap.to_bytes t.anchor.alloc_map);
    let b = Bytebuf.Writer.contents w in
    if Bytes.length b > page_bytes t then
      invalid_arg "Cfs: anchor exceeds one page; reduce fnt_pages";
    let out = Bytes.make (page_bytes t) '\000' in
    Bytes.blit b 0 out 0 (Bytes.length b);
    out

  let decode_anchor payload =
    let r = Bytebuf.Reader.of_bytes payload in
    match
      let m = Bytebuf.Reader.u32 r in
      if m <> anchor_magic then None
      else begin
        let root = match Bytebuf.Reader.u32 r with 0 -> None | n -> Some (n - 1) in
        let uid_hint = Bytebuf.Reader.u64 r in
        let bits = Bytebuf.Reader.u32 r in
        let map = Bitmap.of_bytes ~bits (Bytebuf.Reader.raw r ((bits + 7) / 8)) in
        Some { root; alloc_map = map; uid_hint }
      end
    with
    | v -> v
    | exception Bytebuf.Decode_error _ -> None

  let write_anchor t = write t 0 (encode_anchor t)

  let alloc t =
    let map = t.anchor.alloc_map in
    let rec go i =
      if i >= Bitmap.length map then corrupt "CFS name table out of pages"
      else if not (Bitmap.get map i) then i
      else go (i + 1)
    in
    let page = go 1 in
    Bitmap.set map page;
    write_anchor t;
    page

  let free t page =
    if page = 0 || not (Bitmap.get t.anchor.alloc_map page) then
      invalid_arg "Direct_store.free";
    Bitmap.clear t.anchor.alloc_map page;
    Lru.remove t.cache page;
    write_anchor t

  let get_root t = t.anchor.root

  let set_root t r =
    t.anchor.root <- r;
    write_anchor t

  let mk device layout anchor =
    {
      device;
      layout;
      cache = Lru.create ~capacity:layout.Cfs_layout.params.Cfs_layout.cache_pages;
      anchor;
      page_writes = 0;
    }

  let create_fresh device layout =
    let map = Bitmap.create layout.Cfs_layout.params.Cfs_layout.fnt_pages in
    Bitmap.set map 0;
    mk device layout { root = None; alloc_map = map; uid_hint = 1L }

  let attach device layout =
    let t = mk device layout { root = None; alloc_map = Bitmap.create 1; uid_hint = 1L } in
    let payload = read t 0 in
    match decode_anchor payload with
    | Some anchor -> mk device layout anchor
    | None -> corrupt "CFS name-table anchor does not decode"
end

module B = Cedar_btree.Btree.Make (Direct_store)

(* ------------------------------------------------------------------ *)
(* Name-table values: Table 1's CFS column — uid, keep, and the header
   page 0 disk address. Everything else lives in the header. *)

module Nt_value = struct
  (* Local and cached entries point at a header; symbolic links live
     entirely in the name table (which is why the scavenger, working
     from labels and headers, cannot recover them). *)
  type v =
    | File of { uid : int64; keep : int; header_sector : int }
    | Symlink of { target : string }

  let encode_file ~uid ~keep ~header_sector =
    let w = Bytebuf.Writer.create ~initial:16 () in
    Bytebuf.Writer.u8 w 0;
    Bytebuf.Writer.u64 w uid;
    Bytebuf.Writer.u16 w keep;
    Bytebuf.Writer.u32 w header_sector;
    Bytes.to_string (Bytebuf.Writer.contents w)

  let encode_symlink ~target =
    let w = Bytebuf.Writer.create ~initial:16 () in
    Bytebuf.Writer.u8 w 1;
    Bytebuf.Writer.string w target;
    Bytes.to_string (Bytebuf.Writer.contents w)

  let decode s =
    let r = Bytebuf.Reader.of_bytes (Bytes.unsafe_of_string s) in
    match Bytebuf.Reader.u8 r with
    | 0 ->
      let uid = Bytebuf.Reader.u64 r in
      let keep = Bytebuf.Reader.u16 r in
      let header_sector = Bytebuf.Reader.u32 r in
      File { uid; keep; header_sector }
    | 1 -> Symlink { target = Bytebuf.Reader.string r }
    | n -> raise (Bytebuf.Decode_error (Printf.sprintf "bad CFS entry kind %d" n))
end

(* ------------------------------------------------------------------ *)

type t = {
  device : Device.t;
  clock : Simclock.t;
  layout : Cfs_layout.t;
  store : Direct_store.t;
  tree : B.t;
  vam : Bitmap.t; (* set = free; a hint with no invariants (§2) *)
  mutable hint : int;
  opened : (string, Header.t * int) Hashtbl.t; (* key -> header, sector *)
  mutable next_uid : int64;
  mutable live : bool;
  ops_c : Cedar_obs.Metrics.counter;
}

let layout t = t.layout
let device t = t.device
let free_sector_hints t = Bitmap.count t.vam
let drop_open_cache t = Hashtbl.reset t.opened

let sector_bytes t = t.layout.Cfs_layout.geom.Geometry.sector_bytes
let cpu t us = Simclock.advance t.clock us

let op_cpu t =
  Cedar_obs.Metrics.inc t.ops_c;
  cpu t t.layout.Cfs_layout.params.Cfs_layout.cpu_op_us

let require_live t = if not t.live then Fs_error.raise_ Fs_error.Not_booted

(* Span wrapper matching Fsd's, so the per-op I/O tables line up across
   the three systems. Single-branch no-op while tracing is disabled. *)
let traced t ~op ~name f =
  let tr = Device.trace t.device in
  if not (Cedar_obs.Trace.enabled tr) then f ()
  else begin
    let id = Cedar_obs.Trace.begin_span tr ~at:(Simclock.now t.clock) ~op ~name in
    match f () with
    | v ->
      Cedar_obs.Trace.end_span tr ~at:(Simclock.now t.clock) id;
      v
    | exception e ->
      Cedar_obs.Trace.end_span tr ~at:(Simclock.now t.clock) id;
      raise e
  end

let fresh_uid t =
  let uid = t.next_uid in
  t.next_uid <- Int64.add uid 1L;
  uid

(* ------------------------------------------------------------------ *)
(* Boot page                                                           *)

let boot_magic = 0x43425431 (* "CBT1" *)

let write_boot device layout ~clean =
  let sb = layout.Cfs_layout.geom.Geometry.sector_bytes in
  let w = Bytebuf.Writer.create () in
  Bytebuf.Writer.u32 w boot_magic;
  Bytebuf.Writer.bool w clean;
  Bytebuf.Writer.u16 w layout.Cfs_layout.params.Cfs_layout.fnt_page_sectors;
  Bytebuf.Writer.u32 w layout.Cfs_layout.params.Cfs_layout.fnt_pages;
  let body = Bytebuf.Writer.contents w in
  Bytebuf.Writer.u32 w (Crc32.bytes body);
  let page = Bytebuf.Writer.to_sector w ~size:sb in
  let buf = Bytes.make (3 * sb) '\000' in
  Bytes.blit page 0 buf 0 sb;
  Bytes.blit page 0 buf (2 * sb) sb;
  Device.write_run device ~sector:0 buf

let read_boot device =
  let parse b =
    let r = Bytebuf.Reader.of_bytes b in
    match
      let m = Bytebuf.Reader.u32 r in
      if m <> boot_magic then None
      else begin
        let clean = Bytebuf.Reader.bool r in
        let fnt_page_sectors = Bytebuf.Reader.u16 r in
        let fnt_pages = Bytebuf.Reader.u32 r in
        let body_len = Bytebuf.Reader.pos r in
        let crc = Bytebuf.Reader.u32 r in
        if crc <> Crc32.bytes ~pos:0 ~len:body_len b then None
        else Some (clean, fnt_page_sectors, fnt_pages)
      end
    with
    | v -> v
    | exception Bytebuf.Decode_error _ -> None
  in
  let try_at s = match Device.read device s with
    | b -> parse b
    | exception Device.Error _ -> None
  in
  match try_at 0 with Some v -> Some v | None -> try_at 2

(* ------------------------------------------------------------------ *)
(* VAM persistence (hints; loaded only after a clean shutdown)         *)

let vam_magic = 0x4356414d (* "CVAM" *)

let save_vam t =
  let sb = sector_bytes t in
  let body = Bitmap.to_bytes t.vam in
  let w = Bytebuf.Writer.create () in
  Bytebuf.Writer.u32 w vam_magic;
  Bytebuf.Writer.u32 w (Bitmap.length t.vam);
  Bytebuf.Writer.u32 w (Crc32.bytes body);
  Device.write t.device t.layout.Cfs_layout.vam_start (Bytebuf.Writer.to_sector w ~size:sb);
  let body_sectors = t.layout.Cfs_layout.vam_sectors - 1 in
  let padded = Bytes.make (body_sectors * sb) '\000' in
  Bytes.blit body 0 padded 0 (Bytes.length body);
  Device.write_run t.device ~sector:(t.layout.Cfs_layout.vam_start + 1) padded

let load_vam device layout =
  let bits = Geometry.total_sectors layout.Cfs_layout.geom in
  match Device.read device layout.Cfs_layout.vam_start with
  | exception Device.Error _ -> None
  | header -> (
    let r = Bytebuf.Reader.of_bytes header in
    match
      let m = Bytebuf.Reader.u32 r in
      let saved = Bytebuf.Reader.u32 r in
      let crc = Bytebuf.Reader.u32 r in
      (m, saved, crc)
    with
    | exception Bytebuf.Decode_error _ -> None
    | m, saved, crc ->
      if m <> vam_magic || saved <> bits then None
      else (
        match
          Device.read_run device ~sector:(layout.Cfs_layout.vam_start + 1)
            ~count:(layout.Cfs_layout.vam_sectors - 1)
        with
        | exception Device.Error _ -> None
        | body ->
          let body = Bytes.sub body 0 ((bits + 7) / 8) in
          if Crc32.bytes body <> crc then None else Some (Bitmap.of_bytes ~bits body)))

(* ------------------------------------------------------------------ *)
(* Format                                                              *)

let format device params =
  let geom = Device.geometry device in
  let layout = Cfs_layout.compute geom params in
  (* Label the whole volume: everything free except boot, VAM area and
     the name-table region. *)
  let total = Geometry.total_sectors geom in
  let spt = geom.Geometry.sectors_per_track in
  let fnt_lo = layout.Cfs_layout.fnt_start in
  let fnt_hi = fnt_lo + layout.Cfs_layout.fnt_sectors in
  let label_of s =
    if s < layout.Cfs_layout.data_lo then { Label.uid = 0L; page = s; kind = Label.Boot }
    else if s >= fnt_lo && s < fnt_hi then
      { Label.uid = 0L; page = s - fnt_lo; kind = Label.Fnt }
    else Label.free
  in
  let s = ref 0 in
  while !s < total do
    let n = min spt (total - !s) in
    Device.write_labels device ~sector:!s (List.init n (fun i -> label_of (!s + i)));
    s := !s + n
  done;
  let store = Direct_store.create_fresh device layout in
  Direct_store.write_anchor store;
  (* Empty VAM: all data sectors free. *)
  let vam = Bitmap.create total in
  for s = 0 to total - 1 do
    if Cfs_layout.is_data_sector layout s then Bitmap.set vam s
  done;
  let tmp =
    {
      device;
      clock = Device.clock device;
      layout;
      store;
      tree = B.attach store;
      vam;
      hint = layout.Cfs_layout.data_lo;
      opened = Hashtbl.create 8;
      next_uid = 1L;
      live = true;
      ops_c = Cedar_obs.Metrics.counter (Device.metrics device) "cfs.ops";
    }
  in
  save_vam tmp;
  write_boot device layout ~clean:true

(* ------------------------------------------------------------------ *)
(* Allocation: first-fit with a rotating hint over one big pool — the
   fragmenting allocator §5.6 replaced. Candidates are verified against
   the labels before being claimed (the VAM is only a hint). *)

let verify_free t ~pos ~len =
  let ok = ref true in
  Device.scan_labels t.device ~from:pos ~count:len (fun s l ->
      match l with
      | Some l when Label.equal l Label.free -> ()
      | Some _ | None ->
        ok := false;
        (* correct the stale hint *)
        if Bitmap.get t.vam s then Bitmap.clear t.vam s);
  !ok

let find_free_run t len =
  let lo = t.layout.Cfs_layout.data_lo and hi = t.layout.Cfs_layout.data_hi in
  match Bitmap.find_run_set t.vam ~from:t.hint ~upto:hi ~len with
  | Some pos -> Some pos
  | None -> Bitmap.find_run_set t.vam ~from:lo ~upto:(min hi (t.hint + len)) ~len

(* Allocate [len] sectors as one verified run; retries when the hint was
   stale. *)
let rec alloc_verified_run t len tries =
  if tries > 16 then Fs_error.raise_ Fs_error.Volume_full
  else
    match find_free_run t len with
    | None -> Fs_error.raise_ Fs_error.Volume_full
    | Some pos ->
      if verify_free t ~pos ~len then begin
        Bitmap.clear_run t.vam ~pos ~len;
        t.hint <- pos + len;
        pos
      end
      else alloc_verified_run t len (tries + 1)

(* Allocate the header (2 contiguous) plus [n] data sectors, preferring
   one contiguous piece, falling back to fragments. *)
let allocate_file t ~data_pages =
  let total = Header.sectors + data_pages in
  match find_free_run t total with
  | Some pos when verify_free t ~pos ~len:total ->
    Bitmap.clear_run t.vam ~pos ~len:total;
    t.hint <- pos + total;
    (pos, if data_pages = 0 then [] else [ { Run_table.start = pos + 2; len = data_pages } ])
  | Some _ | None ->
    let header = alloc_verified_run t Header.sectors 0 in
    let rec gather acc remaining chunk =
      if remaining = 0 then List.rev acc
      else if List.length acc > 24 then Fs_error.raise_ (Fs_error.Too_fragmented "")
      else
        let want = min remaining chunk in
        match find_free_run t want with
        | Some pos when verify_free t ~pos ~len:want ->
          Bitmap.clear_run t.vam ~pos ~len:want;
          t.hint <- pos + want;
          gather ({ Run_table.start = pos; len = want } :: acc) (remaining - want) chunk
        | Some _ -> gather acc remaining chunk
        | None ->
          if chunk = 1 then Fs_error.raise_ Fs_error.Volume_full
          else gather acc remaining (max 1 (chunk / 2))
    in
    (header, gather [] data_pages data_pages)

(* ------------------------------------------------------------------ *)
(* Header I/O                                                          *)

let write_header t (h : Header.t) ~sector =
  Device.verified_write_run t.device ~sector ~expect:(Header.labels h)
    (Header.encode h ~sector_bytes:(sector_bytes t))

let read_header t ~uid ~sector =
  let expect =
    [
      { Label.uid; page = 0; kind = Label.Header };
      { Label.uid; page = 1; kind = Label.Header };
    ]
  in
  match Device.verified_read_run t.device ~sector ~expect with
  | image -> (
    match Header.decode image with
    | Some h -> h
    | None -> corrupt (Printf.sprintf "header at sector %d fails its checksum" sector))
  | exception Device.Error { sector; kind = Device.Label_mismatch _ } ->
    corrupt (Printf.sprintf "label mismatch reading header at %d" sector)
  | exception Device.Error { sector; kind = Device.Damaged } ->
    Fs_error.raise_ (Fs_error.Damaged_data { name = "<header>"; sector })

(* ------------------------------------------------------------------ *)
(* Name-table access                                                   *)

let validate_name name =
  match Fname.validate name with
  | Ok () -> ()
  | Error reason -> Fs_error.raise_ (Fs_error.Bad_name { name; reason })

let wrap_tree f =
  try f () with Cedar_btree.Btree.Corrupt m -> corrupt ("name table: " ^ m)

let newest t name =
  validate_name name;
  let _, hi = Fname.bounds ~name in
  wrap_tree (fun () ->
      match B.find_last_below t.tree hi with
      | None -> None
      | Some (k, v) -> (
        match Fname.parse k with
        | Some (n, version) when String.equal n name -> Some (k, version, v)
        | Some _ | None -> None))

let newest_exn t name =
  match newest t name with
  | Some x -> x
  | None -> Fs_error.raise_ (Fs_error.No_such_file name)

(* Open = name-table lookup + header read, cached per open file; follows
   symbolic links (bounded). *)
let rec open_header ?(depth = 0) t name =
  if depth > 8 then corrupt ("symlink chain too deep at " ^ name)
  else begin
    let key, version, raw = newest_exn t name in
    match Nt_value.decode raw with
    | Nt_value.Symlink { target } -> open_header ~depth:(depth + 1) t target
    | Nt_value.File { uid; header_sector; _ } -> (
      match Hashtbl.find_opt t.opened key with
      | Some (h, s) -> (key, version, h, s)
      | None ->
        let h = read_header t ~uid ~sector:header_sector in
        Hashtbl.replace t.opened key (h, header_sector);
        (key, version, h, header_sector))
  end

let info_of name version (h : Header.t) =
  { Fs_ops.name; version; byte_size = h.Header.byte_size; uid = h.Header.uid }

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)

let versions t ~name =
  require_live t;
  let lo, hi = Fname.bounds ~name in
  wrap_tree (fun () ->
      B.fold_range ~lo ~hi t.tree ~init:[] ~f:(fun acc k _ ->
          match Fname.parse k with Some (_, v) -> v :: acc | None -> acc))
  |> List.rev

let free_labels_of t (h : Header.t) ~header_sector =
  (* One command for the header pair, one per data run. *)
  Device.write_labels t.device ~sector:header_sector [ Label.free; Label.free ];
  Bitmap.set_run t.vam ~pos:header_sector ~len:Header.sectors;
  List.iter
    (fun r ->
      Device.write_labels t.device ~sector:r.Run_table.start
        (List.init r.Run_table.len (fun _ -> Label.free));
      Bitmap.set_run t.vam ~pos:r.Run_table.start ~len:r.Run_table.len)
    (Run_table.runs h.Header.runs)

let delete_version_unchecked t name version =
  let key = Fname.key ~name ~version in
  match wrap_tree (fun () -> B.find t.tree key) with
  | None -> Fs_error.raise_ (Fs_error.No_such_file (Printf.sprintf "%s!%d" name version))
  | Some v ->
    (match Nt_value.decode v with
    | Nt_value.Symlink _ -> ()
    | Nt_value.File { uid; header_sector; _ } ->
      let h =
        match Hashtbl.find_opt t.opened key with
        | Some (h, _) -> h
        | None -> read_header t ~uid ~sector:header_sector
      in
      free_labels_of t h ~header_sector);
    ignore (wrap_tree (fun () -> B.delete t.tree key) : bool);
    Hashtbl.remove t.opened key

let enforce_keep t name newest_version keep =
  if keep > 0 then
    List.iter
      (fun v -> if v <= newest_version - keep then delete_version_unchecked t name v)
      (versions t ~name)

let create_common t ~name ~keep ~kind data =
  require_live t;
  validate_name name;
  let sb = sector_bytes t in
  let byte_size = Bytes.length data in
  let data_pages = max 1 ((byte_size + sb - 1) / sb) in
  let version = match newest t name with Some (_, v, _) -> v + 1 | None -> 1 in
  let uid = fresh_uid t in
  (* 1: find and verify candidate pages (allocate_file reads labels). *)
  let header_sector, data_runs = allocate_file t ~data_pages in
  let runs = Run_table.of_runs data_runs in
  let h =
    { Header.uid; name; version; keep; byte_size; created = Simclock.now t.clock; runs; kind }
  in
  (* 2: claim the header labels. *)
  Device.write_labels t.device ~sector:header_sector (Header.labels h);
  (* 3: claim the data labels, one command per run. *)
  List.iteri
    (fun i r ->
      let base =
        List.fold_left
          (fun acc (j, r') -> if j < i then acc + r'.Run_table.len else acc)
          0
          (List.mapi (fun j r' -> (j, r')) data_runs)
      in
      Device.write_labels t.device ~sector:r.Run_table.start
        (List.init r.Run_table.len (fun k ->
             { Label.uid; page = base + k; kind = Label.Data })))
    data_runs;
  (* 4: write the header (size not yet final, as in the paper's script). *)
  write_header t { h with Header.byte_size = 0 } ~sector:header_sector;
  (* 5: write the data through the labels. *)
  let padded = Bytes.make (data_pages * sb) '\000' in
  Bytes.blit data 0 padded 0 byte_size;
  let off = ref 0 in
  List.iter
    (fun r ->
      let labels =
        List.init r.Run_table.len (fun k ->
            { Label.uid; page = (!off / sb) + k; kind = Label.Data })
      in
      Device.verified_write_run t.device ~sector:r.Run_table.start ~expect:labels
        (Bytes.sub padded !off (r.Run_table.len * sb));
      off := !off + (r.Run_table.len * sb))
    data_runs;
  (* 6: update the name table (synchronous page writes). *)
  wrap_tree (fun () ->
      B.insert t.tree ~key:(Fname.key ~name ~version)
        ~value:(Nt_value.encode_file ~uid ~keep ~header_sector));
  (* 7: rewrite the header with the final byte count. *)
  write_header t h ~sector:header_sector;
  Hashtbl.replace t.opened (Fname.key ~name ~version) (h, header_sector);
  enforce_keep t name version keep;
  op_cpu t;
  cpu t (data_pages * t.layout.Cfs_layout.params.Cfs_layout.cpu_page_us);
  info_of name version h

let create t ~name ?(keep = 2) data =
  traced t ~op:"create" ~name (fun () ->
      create_common t ~name ~keep ~kind:Header.Local data)

let import_cached t ~name ~server data =
  traced t ~op:"import" ~name (fun () ->
      create_common t ~name ~keep:2
        ~kind:(Header.Cached { server; last_used = Simclock.now t.clock })
        data)

let create_symlink t ~name ~target =
  require_live t;
  validate_name name;
  let version = match newest t name with Some (_, v, _) -> v + 1 | None -> 1 in
  wrap_tree (fun () ->
      B.insert t.tree ~key:(Fname.key ~name ~version)
        ~value:(Nt_value.encode_symlink ~target));
  enforce_keep t name version 2;
  op_cpu t

let readlink t ~name =
  require_live t;
  let _, _, raw = newest_exn t name in
  op_cpu t;
  match Nt_value.decode raw with
  | Nt_value.Symlink { target } -> Some target
  | Nt_value.File _ -> None

(* CFS keeps the last-used time in the header: every update reads and
   rewrites the header pair — the traffic FSD's group commit removes. *)
let touch_cached t ~name =
  require_live t;
  let key, _, h, header_sector = open_header t name in
  match h.Header.kind with
  | Header.Cached { server; _ } ->
    let h' =
      { h with Header.kind = Header.Cached { server; last_used = Simclock.now t.clock } }
    in
    write_header t h' ~sector:header_sector;
    Hashtbl.replace t.opened key (h', header_sector);
    op_cpu t
  | Header.Local -> corrupt (name ^ " is not a cached remote file")

let last_used t ~name =
  require_live t;
  let _, _, h, _ = open_header t name in
  op_cpu t;
  match h.Header.kind with
  | Header.Cached { last_used; _ } -> Some last_used
  | Header.Local -> None

let open_stat t ~name =
  traced t ~op:"open" ~name @@ fun () ->
  require_live t;
  let _, version, h, _ = open_header t name in
  op_cpu t;
  info_of name version h

let exists t ~name =
  require_live t;
  op_cpu t;
  newest t name <> None

let read_runs t (h : Header.t) buf =
  let sb = sector_bytes t in
  let off = ref 0 in
  List.iter
    (fun r ->
      let labels =
        List.init r.Run_table.len (fun k ->
            { Label.uid = h.Header.uid; page = (!off / sb) + k; kind = Label.Data })
      in
      let d = Device.verified_read_run t.device ~sector:r.Run_table.start ~expect:labels in
      Bytes.blit d 0 buf !off (r.Run_table.len * sb);
      off := !off + (r.Run_table.len * sb))
    (Run_table.runs h.Header.runs)

let read_all t ~name =
  traced t ~op:"read_all" ~name @@ fun () ->
  require_live t;
  let _, _, h, _ = open_header t name in
  let sb = sector_bytes t in
  let buf = Bytes.create (Run_table.pages h.Header.runs * sb) in
  (try read_runs t h buf with
  | Device.Error { sector; kind = Device.Damaged } ->
    Fs_error.raise_ (Fs_error.Damaged_data { name; sector })
  | Device.Error { sector; kind = Device.Label_mismatch _ } ->
    corrupt (Printf.sprintf "stale run table for %s at sector %d" name sector));
  op_cpu t;
  cpu t (Run_table.pages h.Header.runs * t.layout.Cfs_layout.params.Cfs_layout.cpu_page_us);
  Bytes.sub buf 0 h.Header.byte_size

let read_page t ~name ~page =
  traced t ~op:"read_page" ~name @@ fun () ->
  require_live t;
  let _, _, h, _ = open_header t name in
  if page < 0 || page >= Run_table.pages h.Header.runs then
    Fs_error.raise_ (Fs_error.Bad_page { name; page });
  let sector = Run_table.sector_of_page h.Header.runs page in
  let expect = { Label.uid = h.Header.uid; page; kind = Label.Data } in
  op_cpu t;
  match Device.verified_read t.device sector ~expect with
  | b -> b
  | exception Device.Error { sector; kind = Device.Damaged } ->
    Fs_error.raise_ (Fs_error.Damaged_data { name; sector })
  | exception Device.Error { sector; kind = Device.Label_mismatch _ } ->
    corrupt (Printf.sprintf "stale run table for %s at sector %d" name sector)

let write_page t ~name ~page data =
  traced t ~op:"write_page" ~name @@ fun () ->
  require_live t;
  let _, _, h, _ = open_header t name in
  if page < 0 || page >= Run_table.pages h.Header.runs then
    Fs_error.raise_ (Fs_error.Bad_page { name; page });
  let sector = Run_table.sector_of_page h.Header.runs page in
  let expect = { Label.uid = h.Header.uid; page; kind = Label.Data } in
  op_cpu t;
  Device.verified_write t.device sector ~expect data

let delete t ~name =
  traced t ~op:"delete" ~name @@ fun () ->
  require_live t;
  let _, version, raw = newest_exn t name in
  let pages =
    match Nt_value.decode raw with
    | Nt_value.Symlink _ -> 0
    | Nt_value.File { uid; header_sector; _ } -> (
      match Hashtbl.find_opt t.opened (Fname.key ~name ~version) with
      | Some (h, _) -> Run_table.pages h.Header.runs
      | None -> (
        match read_header t ~uid ~sector:header_sector with
        | h ->
          Hashtbl.replace t.opened (Fname.key ~name ~version) (h, header_sector);
          Run_table.pages h.Header.runs
        | exception Fs_error.Fs_error _ -> 0))
  in
  delete_version_unchecked t name version;
  op_cpu t;
  cpu t (pages * t.layout.Cfs_layout.params.Cfs_layout.cpu_page_us / 2)

let list t ~prefix =
  traced t ~op:"list" ~name:prefix @@ fun () ->
  require_live t;
  (* The name table has only names and header addresses; properties such
     as the byte count require reading each header (Table 3's 146 I/Os
     for 100 files). *)
  let hi = prefix ^ "\xff\xff\xff\xff" in
  let acc = ref [] in
  let current : (string * int * string) option ref = ref None in
  let flush () =
    match !current with
    | Some (n, ver, v) -> (
      match Nt_value.decode v with
      | Nt_value.Symlink _ ->
        acc := { Fs_ops.name = n; version = ver; byte_size = 0; uid = 0L } :: !acc
      | Nt_value.File { uid; header_sector; _ } ->
        let key = Fname.key ~name:n ~version:ver in
        let h =
          match Hashtbl.find_opt t.opened key with
          | Some (h, _) -> h
          | None ->
            let h = read_header t ~uid ~sector:header_sector in
            Hashtbl.replace t.opened key (h, header_sector);
            h
        in
        acc := info_of n ver h :: !acc)
    | None -> ()
  in
  wrap_tree (fun () ->
      B.iter_range ~lo:prefix ~hi t.tree (fun k v ->
          cpu t (t.layout.Cfs_layout.params.Cfs_layout.cpu_page_us / 2);
          match Fname.parse k with
          | None -> ()
          | Some (n, ver) ->
            (match !current with
            | Some (cn, _, _) when not (String.equal cn n) -> flush ()
            | Some _ | None -> ());
            current := Some (n, ver, v)));
  flush ();
  op_cpu t;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let mk_live device layout store vam =
  let m = Device.metrics device in
  let t =
    {
      device;
      clock = Device.clock device;
      layout;
      store;
      tree = B.attach store;
      vam;
      hint = layout.Cfs_layout.data_lo;
      opened = Hashtbl.create 64;
      next_uid = Int64.add store.Direct_store.anchor.Direct_store.uid_hint 1_000_000L;
      live = true;
      ops_c = Cedar_obs.Metrics.counter m "cfs.ops";
    }
  in
  Cedar_obs.Metrics.gauge m "cfs.nt_page_writes" (fun () ->
      store.Direct_store.page_writes);
  Cedar_obs.Metrics.gauge m "cfs.open_headers" (fun () -> Hashtbl.length t.opened);
  t

let boot device =
  match read_boot device with
  | None -> corrupt "CFS boot pages unreadable"
  | Some (clean, fnt_page_sectors, fnt_pages) ->
    if not clean then `Needs_scavenge
    else begin
      let params =
        { (Cfs_layout.params_for_geometry (Device.geometry device)) with
          Cfs_layout.fnt_page_sectors;
          fnt_pages;
        }
      in
      let layout = Cfs_layout.compute (Device.geometry device) params in
      match load_vam device layout with
      | None -> `Needs_scavenge
      | Some vam ->
        let store = Direct_store.attach device layout in
        (* Mark unclean until the next controlled shutdown. *)
        write_boot device layout ~clean:false;
        `Ok (mk_live device layout store vam)
    end

let shutdown t =
  require_live t;
  t.store.Direct_store.anchor.Direct_store.uid_hint <- t.next_uid;
  Direct_store.write_anchor t.store;
  save_vam t;
  write_boot t.device t.layout ~clean:true;
  t.live <- false

let scavenge device =
  let clock = Device.clock device in
  let t0 = Simclock.now clock in
  let geom = Device.geometry device in
  let params =
    match read_boot device with
    | Some (_, fnt_page_sectors, fnt_pages) ->
      { (Cfs_layout.params_for_geometry geom) with
        Cfs_layout.fnt_page_sectors;
        fnt_pages;
      }
    | None -> Cfs_layout.params_for_geometry geom
  in
  let layout = Cfs_layout.compute geom params in
  let total = Geometry.total_sectors geom in
  (* Pass 1: read every label on the volume. A header whose page-0
     sector is unreadable is recognisable by its orphaned page-1 label. *)
  let headers = ref [] in
  let orphan_uids = Hashtbl.create 64 in
  let vam = Bitmap.create total in
  Device.scan_labels device ~from:0 ~count:total (fun s l ->
      Simclock.advance clock 10;
      match l with
      | Some { Label.kind = Label.Header; page = 0; uid } -> headers := (s, uid) :: !headers
      | Some { Label.kind = Label.Header; page = 1; uid }
      | Some { Label.kind = Label.Data; uid; _ } ->
        Hashtbl.replace orphan_uids uid ()
      | Some l when Label.equal l Label.free ->
        if Cfs_layout.is_data_sector layout s then Bitmap.set vam s
      | Some _ | None -> ());
  (* Pass 2: rebuild the name table from the headers. *)
  let store = Direct_store.create_fresh device layout in
  Direct_store.write_anchor store;
  let t = mk_live device layout store vam in
  let recovered = ref 0 and lost = ref 0 and max_uid = ref 0L in
  List.iter
    (fun (sector, uid) ->
      match read_header t ~uid ~sector with
      | exception Fs_error.Fs_error _ -> incr lost
      | h ->
        wrap_tree (fun () ->
            B.insert t.tree
              ~key:(Fname.key ~name:h.Header.name ~version:h.Header.version)
              ~value:
                (Nt_value.encode_file ~uid:h.Header.uid ~keep:h.Header.keep
                   ~header_sector:sector));
        if Int64.compare h.Header.uid !max_uid > 0 then max_uid := h.Header.uid;
        Hashtbl.remove orphan_uids h.Header.uid;
        incr recovered)
    (List.rev !headers);
  (* Uids with surviving header or data labels but no readable header:
     those files are lost (only their pages remain). *)
  List.iter (fun (_, uid) -> Hashtbl.remove orphan_uids uid) !headers;
  lost := !lost + Hashtbl.length orphan_uids;
  t.next_uid <- Int64.add !max_uid 1L;
  t.store.Direct_store.anchor.Direct_store.uid_hint <- t.next_uid;
  Direct_store.write_anchor t.store;
  save_vam t;
  write_boot device layout ~clean:false;
  ( t,
    {
      files_recovered = !recovered;
      files_lost = !lost;
      duration_us = Simclock.now clock - t0;
    } )

(* ------------------------------------------------------------------ *)
(* Check & Ops                                                         *)

let check t =
  match wrap_tree (fun () -> B.check t.tree) with
  | Error m -> Error ("name table: " ^ m)
  | Ok () -> (
    let bad = ref [] in
    (try
       wrap_tree (fun () ->
           B.iter t.tree (fun k v ->
               match Nt_value.decode v with
               | Nt_value.Symlink _ -> ()
               | Nt_value.File { uid; header_sector; _ } -> (
               match read_header t ~uid ~sector:header_sector with
               | exception Fs_error.Fs_error e ->
                 bad := (k ^ ": " ^ Fs_error.to_string e) :: !bad
               | h ->
                 if h.Header.uid <> uid then bad := (k ^ ": header uid mismatch") :: !bad;
                 (match Fname.parse k with
                 | Some (n, ver) ->
                   if h.Header.name <> n || h.Header.version <> ver then
                     bad := (k ^ ": header name mismatch") :: !bad
                 | None -> bad := (k ^ ": unparseable key") :: !bad))))
     with Fs_error.Fs_error e -> bad := Fs_error.to_string e :: !bad);
    match !bad with [] -> Ok () | problems -> Error (String.concat "; " problems))

let ops t =
  {
    Fs_ops.label = "CFS";
    create = (fun ~name ~data -> create t ~name data);
    open_stat = (fun ~name -> open_stat t ~name);
    read_all = (fun ~name -> read_all t ~name);
    read_page = (fun ~name ~page -> read_page t ~name ~page);
    delete = (fun ~name -> delete t ~name);
    list = (fun ~prefix -> list t ~prefix);
    force = (fun () -> ());
    device = t.device;
    clock = t.clock;
  }
