open Cedar_util
open Cedar_disk

type unit_kind = Fnt_page of int | Leader_page of int | Vam_chunk of int
type logged_unit = { kind : unit_kind; image : bytes }

type stats = {
  mutable records : int;
  mutable data_sectors : int;
  mutable total_sectors : int;
  mutable third_entries : int;
  record_sizes : Stats.t;
}

type t = {
  device : Device.t;
  layout : Layout.t;
  boot_count : int;
  shard : int;
  on_enter_third : int -> unit;
  mutable write_off : int; (* offset within the body, in sectors *)
  mutable next_record_no : int64;
  mutable current_third : int;
  third_first : (int * int64) option array; (* first record per third *)
  stats : stats;
}

let magic_hdr = 0x434c4831 (* "CLH1" *)
let magic_end = 0x434c4531 (* "CLE1" *)
let magic_ptr = 0x434c5031 (* "CLP1" *)
let special = 0xa5c35a3c96e17896L

let sector_bytes layout = layout.Layout.geom.Geometry.sector_bytes
let body_start layout = layout.Layout.log_start + 3
let third_sectors layout = (layout.Layout.log_sectors - 3) / 3
let body_sectors layout = 3 * third_sectors layout

let unit_sectors layout = function
  | Fnt_page _ -> layout.Layout.params.Params.fnt_page_sectors
  | Leader_page _ | Vam_chunk _ -> 1

let data_sectors_of layout units =
  List.fold_left (fun acc u -> acc + unit_sectors layout u.kind) 0 units

let track_tolerant layout = layout.Layout.params.Params.track_tolerant_log
let spt layout = layout.Layout.geom.Geometry.sectors_per_track

(* Classic layout (§5.3): header, blank, header', data, end, data', end'
   — copies separated by at least two sectors (survives 1-2 consecutive
   failures). Track-tolerant layout: primary block (header, data, end)
   and an identical copy block one full track later — every element's
   copies are [sectors_per_track] apart, so losing a whole track leaves
   one of each. *)
let record_total_sectors layout units =
  let n = data_sectors_of layout units in
  if track_tolerant layout then spt layout + n + 2 else (2 * n) + 5

let max_data_sectors_hard layout =
  let sb = sector_bytes layout in
  (* End page holds a u32 CRC per data sector after 26 bytes of framing;
     the header holds 7 bytes per unit after 32. Leaders are the worst
     case (one unit per sector). *)
  let structural = min ((sb - 26 - 4) / 4) ((sb - 32 - 4) / 7) in
  if track_tolerant layout then min structural (spt layout - 2) else structural

(* ------------------------------------------------------------------ *)
(* Sector codecs                                                       *)

let kind_tag = function Fnt_page _ -> 0 | Leader_page _ -> 1 | Vam_chunk _ -> 2
let kind_id = function Fnt_page id -> id | Leader_page s -> s | Vam_chunk i -> i

let encode_header t units =
  let w = Bytebuf.Writer.create () in
  Bytebuf.Writer.u32 w magic_hdr;
  Bytebuf.Writer.u64 w special;
  Bytebuf.Writer.u64 w t.next_record_no;
  Bytebuf.Writer.u32 w t.boot_count;
  Bytebuf.Writer.u8 w t.shard;
  Bytebuf.Writer.u8 w (if track_tolerant t.layout then 1 else 0);
  Bytebuf.Writer.u16 w (List.length units);
  List.iter
    (fun u ->
      Bytebuf.Writer.u8 w (kind_tag u.kind);
      Bytebuf.Writer.u32 w (kind_id u.kind);
      Bytebuf.Writer.u16 w (unit_sectors t.layout u.kind))
    units;
  Bytebuf.Writer.u16 w (data_sectors_of t.layout units);
  let body = Bytebuf.Writer.contents w in
  Bytebuf.Writer.u32 w (Crc32.bytes body);
  Bytebuf.Writer.to_sector w ~size:(sector_bytes t.layout)

type header = {
  h_record_no : int64;
  h_boot_count : int;
  h_shard : int;
  h_track_tolerant : bool;
  h_units : (unit_kind * int) list; (* kind, sectors *)
  h_data_sectors : int;
}

let decode_header layout b =
  match
    let r = Bytebuf.Reader.of_bytes b in
    let m = Bytebuf.Reader.u32 r in
    if m <> magic_hdr then None
    else if Bytebuf.Reader.u64 r <> special then None
    else begin
      let h_record_no = Bytebuf.Reader.u64 r in
      let h_boot_count = Bytebuf.Reader.u32 r in
      let h_shard = Bytebuf.Reader.u8 r in
      let h_track_tolerant = Bytebuf.Reader.u8 r = 1 in
      let nunits = Bytebuf.Reader.u16 r in
      let h_units =
        List.init nunits (fun _ ->
            let tag = Bytebuf.Reader.u8 r in
            let id = Bytebuf.Reader.u32 r in
            let n = Bytebuf.Reader.u16 r in
            let kind =
              match tag with
              | 0 -> Fnt_page id
              | 1 -> Leader_page id
              | 2 -> Vam_chunk id
              | _ -> raise (Bytebuf.Decode_error "bad unit tag")
            in
            (kind, n))
      in
      let h_data_sectors = Bytebuf.Reader.u16 r in
      let body_len = Bytebuf.Reader.pos r in
      let crc = Bytebuf.Reader.u32 r in
      if crc <> Crc32.bytes ~pos:0 ~len:body_len b then None
      else if
        h_data_sectors <> List.fold_left (fun a (_, n) -> a + n) 0 h_units
        || List.exists (fun (k, n) -> n <> unit_sectors layout k) h_units
      then None
      else
        Some
          { h_record_no; h_boot_count; h_shard; h_track_tolerant; h_units; h_data_sectors }
    end
  with
  | v -> v
  | exception Bytebuf.Decode_error _ -> None

let encode_end t ~record_no crcs =
  let w = Bytebuf.Writer.create () in
  Bytebuf.Writer.u32 w magic_end;
  Bytebuf.Writer.u64 w special;
  Bytebuf.Writer.u64 w record_no;
  Bytebuf.Writer.u16 w (List.length crcs);
  List.iter (Bytebuf.Writer.u32 w) crcs;
  let body = Bytebuf.Writer.contents w in
  Bytebuf.Writer.u32 w (Crc32.bytes body);
  Bytebuf.Writer.to_sector w ~size:(sector_bytes t)

let decode_end b =
  match
    let r = Bytebuf.Reader.of_bytes b in
    let m = Bytebuf.Reader.u32 r in
    if m <> magic_end then None
    else if Bytebuf.Reader.u64 r <> special then None
    else begin
      let record_no = Bytebuf.Reader.u64 r in
      let n = Bytebuf.Reader.u16 r in
      let crcs = List.init n (fun _ -> Bytebuf.Reader.u32 r) in
      let body_len = Bytebuf.Reader.pos r in
      let crc = Bytebuf.Reader.u32 r in
      if crc <> Crc32.bytes ~pos:0 ~len:body_len b then None
      else Some (record_no, Array.of_list crcs)
    end
  with
  | v -> v
  | exception Bytebuf.Decode_error _ -> None

let encode_pointer layout ~offset ~record_no ~boot_count =
  let w = Bytebuf.Writer.create () in
  Bytebuf.Writer.u32 w magic_ptr;
  Bytebuf.Writer.u32 w offset;
  Bytebuf.Writer.u64 w record_no;
  Bytebuf.Writer.u32 w boot_count;
  let body = Bytebuf.Writer.contents w in
  Bytebuf.Writer.u32 w (Crc32.bytes body);
  Bytebuf.Writer.to_sector w ~size:(sector_bytes layout)

let decode_pointer b =
  match
    let r = Bytebuf.Reader.of_bytes b in
    let m = Bytebuf.Reader.u32 r in
    if m <> magic_ptr then None
    else begin
      let offset = Bytebuf.Reader.u32 r in
      let record_no = Bytebuf.Reader.u64 r in
      let boot_count = Bytebuf.Reader.u32 r in
      let body_len = Bytebuf.Reader.pos r in
      let crc = Bytebuf.Reader.u32 r in
      if crc <> Crc32.bytes ~pos:0 ~len:body_len b then None
      else Some (offset, record_no, boot_count)
    end
  with
  | v -> v
  | exception Bytebuf.Decode_error _ -> None

(* Pointer page in sector 0 of the log region, replicated in sector 2,
   with the mandatory blank between: one three-sector command. *)
let write_pointer device layout ~offset ~record_no ~boot_count =
  let sb = sector_bytes layout in
  let ptr = encode_pointer layout ~offset ~record_no ~boot_count in
  let buf = Bytes.make (3 * sb) '\000' in
  Bytes.blit ptr 0 buf 0 sb;
  Bytes.blit ptr 0 buf (2 * sb) sb;
  Device.write_run device ~sector:layout.Layout.log_start buf

let read_sector_opt device s =
  match Device.read device s with
  | b -> Some b
  | exception Device.Error _ -> None

let read_pointer device layout =
  let try_at s =
    match read_sector_opt device s with
    | None -> None
    | Some b -> decode_pointer b
  in
  match try_at layout.Layout.log_start with
  | Some p -> Some p
  | None -> try_at (layout.Layout.log_start + 2)

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

let format device layout =
  write_pointer device layout ~offset:0 ~record_no:1L ~boot_count:0

let mk_stats () =
  {
    records = 0;
    data_sectors = 0;
    total_sectors = 0;
    third_entries = 0;
    record_sizes = Stats.create ();
  }

let attach ?(shard = 0) device layout ~boot_count ~next_record_no ~write_off
    ~on_enter_third =
  if shard < 0 || shard > 255 then invalid_arg "Log.attach: shard out of u8 range";
  let third = third_sectors layout in
  let write_off = if write_off >= body_sectors layout then 0 else write_off in
  write_pointer device layout ~offset:write_off ~record_no:next_record_no ~boot_count;
  let stats = mk_stats () in
  let m = Device.metrics device in
  Cedar_obs.Metrics.gauge m "log.records" (fun () -> stats.records);
  Cedar_obs.Metrics.gauge m "log.data_sectors" (fun () -> stats.data_sectors);
  Cedar_obs.Metrics.gauge m "log.total_sectors" (fun () -> stats.total_sectors);
  Cedar_obs.Metrics.gauge m "log.third_entries" (fun () -> stats.third_entries);
  Cedar_obs.Metrics.register_dist m "log.record_sectors" stats.record_sizes;
  {
    device;
    layout;
    boot_count;
    shard;
    on_enter_third;
    write_off;
    next_record_no;
    current_third = min (write_off / third) 2;
    third_first = [| None; None; None |];
    stats;
  }

let current_third t = t.current_third
let write_off t = t.write_off
let stats t = t.stats
let next_record_no t = t.next_record_no

(* Fill of the current third, measured from that third's own base. When a
   record ends exactly on a third boundary the head has not yet entered
   the next third (entry happens on the next append), so the fill must
   read 1.0 — not wrap to 0.0 — until reclamation actually runs. *)
let third_fill t =
  let third = third_sectors t.layout in
  let off = t.write_off - (t.current_third * third) in
  min 1.0 (float_of_int off /. float_of_int third)

(* After a clean shutdown every page is home; point the next recovery at
   the (empty) end of the chain so it replays nothing. *)
let reset_pointer t =
  write_pointer t.device t.layout ~offset:t.write_off ~record_no:t.next_record_no
    ~boot_count:t.boot_count

(* Which thirds would appending a record of [record_sectors] enter?
   Mirrors [append]'s wrap and entry logic, without side effects. *)
let thirds_entered_by t ~record_sectors =
  let third = third_sectors t.layout in
  let start =
    if t.write_off + record_sectors > body_sectors t.layout then 0 else t.write_off
  in
  let first = start / third and last = (start + record_sectors - 1) / third in
  List.filter
    (fun j -> j <> t.current_third)
    (List.init (last - first + 1) (fun i -> first + i))

(* Pointer target: the first record of the oldest third that still holds
   live records; if no other third does, the record about to be written. *)
let update_pointer t =
  let candidates =
    [ (t.current_third + 1) mod 3; (t.current_third + 2) mod 3; t.current_third ]
  in
  let offset, record_no =
    match List.find_map (fun j -> t.third_first.(j)) candidates with
    | Some (off, no) -> (off, no)
    | None -> (t.write_off, t.next_record_no)
  in
  write_pointer t.device t.layout ~offset ~record_no ~boot_count:t.boot_count

let enter_third t j =
  t.stats.third_entries <- t.stats.third_entries + 1;
  t.on_enter_third j;
  t.third_first.(j) <- None;
  t.current_third <- j;
  update_pointer t

let append t units =
  if units = [] then invalid_arg "Log.append: empty record";
  List.iter
    (fun u ->
      if Bytes.length u.image <> unit_sectors t.layout u.kind * sector_bytes t.layout
      then invalid_arg "Log.append: image size mismatch")
    units;
  let n = data_sectors_of t.layout units in
  if n > max_data_sectors_hard t.layout then
    invalid_arg "Log.append: record exceeds structural cap";
  let size = record_total_sectors t.layout units in
  let third = third_sectors t.layout in
  if size > third then invalid_arg "Log.append: record larger than a third";
  if t.write_off + size > body_sectors t.layout then t.write_off <- 0;
  (* Enter every third this record touches that we are not already in. *)
  let first_t = t.write_off / third and last_t = (t.write_off + size - 1) / third in
  for j = first_t to last_t do
    if j <> t.current_third then enter_third t j
  done;
  if t.third_first.(first_t) = None then
    t.third_first.(first_t) <- Some (t.write_off, t.next_record_no);
  (* Assemble the record in the active layout. *)
  let sb = sector_bytes t.layout in
  let header = encode_header t units in
  let data = Bytes.concat Bytes.empty (List.map (fun u -> u.image) units) in
  assert (Bytes.length data = n * sb);
  let crcs = List.init n (fun i -> Crc32.bytes ~pos:(i * sb) ~len:sb data) in
  let endp = encode_end t.layout ~record_no:t.next_record_no crcs in
  let buf = Bytes.make (size * sb) '\000' in
  if track_tolerant t.layout then begin
    (* primary block at 0, identical copy block one track later *)
    let d = spt t.layout in
    let place base =
      Bytes.blit header 0 buf (base * sb) sb;
      Bytes.blit data 0 buf ((base + 1) * sb) (n * sb);
      Bytes.blit endp 0 buf ((base + 1 + n) * sb) sb
    in
    place 0;
    place d
  end
  else begin
    Bytes.blit header 0 buf 0 sb;
    (* sector 1 stays blank *)
    Bytes.blit header 0 buf (2 * sb) sb;
    Bytes.blit data 0 buf (3 * sb) (n * sb);
    Bytes.blit endp 0 buf ((3 + n) * sb) sb;
    Bytes.blit data 0 buf ((4 + n) * sb) (n * sb);
    Bytes.blit endp 0 buf ((4 + (2 * n)) * sb) sb
  end;
  Device.write_run t.device ~sector:(body_start t.layout + t.write_off) buf;
  let tr = Device.trace t.device in
  if Cedar_obs.Trace.enabled tr then
    Cedar_obs.Trace.emit tr
      ~at:(Simclock.now (Device.clock t.device))
      (Cedar_obs.Trace.Log_append
         {
           record_no = t.next_record_no;
           units = List.length units;
           data_sectors = n;
           total_sectors = size;
           third = first_t;
         });
  t.stats.records <- t.stats.records + 1;
  t.stats.data_sectors <- t.stats.data_sectors + n;
  t.stats.total_sectors <- t.stats.total_sectors + size;
  Stats.add t.stats.record_sizes (float_of_int size);
  t.write_off <- t.write_off + size;
  t.next_record_no <- Int64.add t.next_record_no 1L;
  (* Pages must be flushed home before ANY sector of their record can be
     overwritten; a record may straddle a third boundary, and its start
     third is re-entered first, so that is the survival horizon. *)
  first_t

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

type recovery = {
  replayed_records : int;
  last_record_no : int64 option;
  pointer_record_no : int64;
  next_write_off : int;
  surviving : (int * int64) list;
  corrected_sectors : int;
  images : (unit_kind * bytes * int64) list;
}

(* Read the record at body offset [off] expecting [expected] as its record
   number. Returns the decoded units or [None] (chain break / torn). The
   layout is self-describing: the header carries a flag, and when the
   primary header is gone the copy is probed at both candidate offsets
   (+2 classic, +track for the track-tolerant format). *)
let read_record device layout ~shard ~off ~expected ~corrected =
  let body = body_start layout in
  if off + 5 > body_sectors layout then None
  else begin
    let sector i = body + off + i in
    let header_at i = Option.bind (read_sector_opt device (sector i)) (decode_header layout) in
    let header =
      match header_at 0 with
      | Some h -> Some h
      | None -> (
        (* primary unreadable or garbage: try the copies *)
        match header_at 2 with
        | Some h when not h.h_track_tolerant ->
          incr corrected;
          Some h
        | Some _ | None -> (
          match header_at (spt layout) with
          | Some h when h.h_track_tolerant ->
            incr corrected;
            Some h
          | Some _ | None -> None))
    in
    match header with
    | None -> None
    | Some h ->
      (* A record stamped for another volume's shard ends this chain:
         shards never share a log region, so a foreign tag means the
         sectors are stale garbage from a previous life of the device. *)
      if h.h_record_no <> expected || h.h_shard <> shard then None
      else begin
        let n = h.h_data_sectors in
        let size = if h.h_track_tolerant then spt layout + n + 2 else (2 * n) + 5 in
        (* primary/copy offsets of the end page and data sector i *)
        let end_primary, end_copy, data_primary, data_copy =
          if h.h_track_tolerant then
            let d = spt layout in
            (1 + n, d + 1 + n, (fun i -> 1 + i), fun i -> d + 1 + i)
          else (3 + n, 4 + (2 * n), (fun i -> 3 + i), fun i -> 4 + n + i)
        in
        if off + size > body_sectors layout then None
        else begin
          let endp =
            match Option.bind (read_sector_opt device (sector end_primary)) decode_end with
            | Some e -> Some e
            | None -> (
              match Option.bind (read_sector_opt device (sector end_copy)) decode_end with
              | Some e ->
                incr corrected;
                Some e
              | None -> None)
          in
          match endp with
          | None -> None (* torn record: the commit never completed *)
          | Some (end_no, crcs) ->
            if end_no <> h.h_record_no || Array.length crcs <> n then None
            else begin
              (* Collect each data sector from whichever copy checks out. *)
              let fetch i =
                let want = crcs.(i) in
                let try_sector s =
                  match read_sector_opt device s with
                  | Some b when Crc32.bytes b = want -> Some b
                  | Some _ | None -> None
                in
                match try_sector (sector (data_primary i)) with
                | Some b -> Some b
                | None ->
                  (match try_sector (sector (data_copy i)) with
                  | Some b ->
                    incr corrected;
                    Some b
                  | None -> None)
              in
              let rec collect i acc =
                if i = n then Some (List.rev acc)
                else match fetch i with None -> None | Some b -> collect (i + 1) (b :: acc)
              in
              match collect 0 [] with
              | None -> None (* both copies of a data sector lost *)
              | Some sectors ->
                let sectors = Array.of_list sectors in
                let units, _ =
                  List.fold_left
                    (fun (acc, i) (kind, nsec) ->
                      let image =
                        Bytes.concat Bytes.empty
                          (List.init nsec (fun k -> sectors.(i + k)))
                      in
                      ({ kind; image } :: acc, i + nsec))
                    ([], 0) h.h_units
                in
                Some (List.rev units, size)
            end
        end
      end
  end

type pass = {
  p_records : int;
  p_last_record_no : int64 option;
  p_pointer_record_no : int64;
  p_next_write_off : int;
  p_surviving : (int * int64) list;
  p_corrected_sectors : int;
}

(* The single sequential REDO pass: follow the chain from the pointer,
   hand each committed record to [f] in log order, stop at the first
   break. Every live log sector is read exactly once — the wrap probe
   applies the record it decodes instead of rescanning it, and a chain
   that started at offset 0 is never probed there again. *)
let replay ?(shard = 0) device layout ~f =
  let corrected = ref 0 in
  match read_pointer device layout with
  | None ->
    (* Both pointer copies gone: nothing can be replayed. *)
    {
      p_records = 0;
      p_last_record_no = None;
      p_pointer_record_no = 1L;
      p_next_write_off = 0;
      p_surviving = [];
      p_corrected_sectors = 0;
    }
  | Some (ptr_off, ptr_no, _boot) ->
    let surviving = ref [] in
    let replayed = ref 0 in
    let last_no = ref None in
    let apply ~off expected units =
      f ~record_no:expected ~off units;
      surviving := (off, expected) :: !surviving;
      incr replayed;
      last_no := Some expected
    in
    let rec scan off expected wrapped visited =
      if visited > body_sectors layout then off
      else
        match read_record device layout ~shard ~off ~expected ~corrected with
        | Some (units, size) ->
          apply ~off expected units;
          scan (off + size) (Int64.add expected 1L) wrapped (visited + size)
        | None ->
          (* The writer may have wrapped to offset 0 mid-chain. *)
          if (not wrapped) && off <> 0 && ptr_off <> 0 then
            match read_record device layout ~shard ~off:0 ~expected ~corrected with
            | Some (units, size) ->
              apply ~off:0 expected units;
              scan size (Int64.add expected 1L) true (visited + size)
            | None -> off
          else off
    in
    let next_off = scan ptr_off ptr_no false 0 in
    {
      p_records = !replayed;
      p_last_record_no = !last_no;
      p_pointer_record_no = ptr_no;
      p_next_write_off = next_off;
      p_surviving = List.rev !surviving;
      p_corrected_sectors = !corrected;
    }

let recover ?(shard = 0) device layout =
  let images : (unit_kind, bytes * int64) Hashtbl.t = Hashtbl.create 64 in
  let p =
    replay device layout ~shard ~f:(fun ~record_no ~off:_ units ->
        List.iter (fun u -> Hashtbl.replace images u.kind (u.image, record_no)) units)
  in
  {
    replayed_records = p.p_records;
    last_record_no = p.p_last_record_no;
    pointer_record_no = p.p_pointer_record_no;
    next_write_off = p.p_next_write_off;
    surviving = p.p_surviving;
    corrected_sectors = p.p_corrected_sectors;
    images = Hashtbl.fold (fun k (img, no) acc -> (k, img, no) :: acc) images [];
  }
