(** FSD volume layout.

    The log and both name-table copies are preallocated at the central
    cylinders to minimise head motion (§5.1, §5.3); the two name-table
    copies sit on opposite sides of the log so that page [i] of copy A and
    copy B are far apart (independent failure modes). Data is split into a
    small-file area (low addresses, growing up) and a big-file area (high
    addresses, growing down) to curtail fragmentation (§5.6).

    The black-box flight-recorder region sits right after the boot
    pages, at a fixed address, so a post-crash [cedar blackbox] can find
    it without trusting any other metadata (DESIGN.md §11).

{v
  | boot A | blank | boot B | black box | VAM save |   small-file area ...
      ... | FNT copy A | log | FNT copy B |   ... big-file area |
v} *)

type t = {
  geom : Cedar_disk.Geometry.t;
  params : Params.t;
  boot_a : int;
  boot_b : int;
  blackbox_start : int;
  blackbox_slot_sectors : int;  (** per generation slot *)
  blackbox_sectors : int;  (** whole region, all slots *)
  vam_start : int;
  vam_sectors : int;
  fnt_a_start : int;
  fnt_b_start : int;
  fnt_sectors : int;  (** per copy *)
  log_start : int;
  log_sectors : int;
  small_lo : int;
  small_hi : int;  (** small-file area, [small_lo, small_hi) *)
  big_lo : int;
  big_hi : int;  (** big-file area, [big_lo, big_hi) *)
}

val compute : Cedar_disk.Geometry.t -> Params.t -> t
(** Raises [Invalid_argument] when {!Params.validate} fails. *)

val fnt_sector_a : t -> page:int -> int
val fnt_sector_b : t -> page:int -> int

val blackbox_slot_sector : t -> slot:int -> int
(** First sector of black-box generation slot [slot]. *)

val is_data_sector : t -> int -> bool
(** Whether a sector belongs to one of the two data areas. *)

val data_sectors : t -> int
val pp : Format.formatter -> t -> unit
