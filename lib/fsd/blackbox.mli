(** On-disk black-box flight recorder (DESIGN.md §11).

    Two generation slots live at a fixed address right after the boot
    pages ({!Layout.blackbox_start}). On every non-empty group-commit
    force, and on clean shutdown, the FSD writes the tail of the live
    event trace plus a snapshot of the log/VAM state it believes it has
    into the slot {e not} holding the newest checkpoint — one
    multi-sector command, so a crash mid-checkpoint tears only that slot.
    The header carries the generation number, a payload CRC, and its own
    CRC: a torn write fails one of the CRCs and {!read} falls back to the
    other slot's generation.

    Because the region is at a fixed, parameter-independent address,
    [cedar blackbox] can decode it after a crash without booting (and
    therefore without running recovery), showing what the system was
    doing at the instant it died. *)

type state = {
  gen : int64;  (** checkpoint generation, strictly increasing *)
  at_us : int;  (** virtual time the checkpoint was taken *)
  reason : string;  (** ["force"] or ["shutdown"] *)
  boot_count : int;
  next_record_no : int64;  (** log record number the next append gets *)
  log_write_off : int;  (** sectors into the log body *)
  log_third : int;
  free_sectors : int;  (** VAM free count the system believed it had *)
  pending_leaders : int;  (** leader writes queued behind the next force *)
  dirty_fnt_pages : int;
}

type checkpoint = {
  slot : int;
  state : state;
  in_flight : (string * string * int) list;
      (** open spans, innermost first: (op, name, started at) *)
  events : Cedar_obs.Trace.entry list;  (** checkpointed tail, oldest first *)
}

val write :
  Cedar_disk.Device.t ->
  Layout.t ->
  slot:int ->
  state:state ->
  in_flight:(string * string * int) list ->
  entries:Cedar_obs.Trace.entry list ->
  int
(** Checkpoint into [slot]; [entries] oldest first. As many of the
    newest entries as fit the slot are kept; returns how many. *)

val read : Cedar_disk.Device.t -> Layout.t -> (checkpoint, string) result
(** Decode the newest fully-valid checkpoint, preferring the higher
    generation; a slot whose header or payload CRC fails is skipped. *)

val probe : Cedar_disk.Device.t -> Layout.t -> int64 * int
(** [(next_gen, next_slot)] for the next checkpoint: [next_gen] exceeds
    every generation ever written (a torn slot's surviving header still
    counts), and [next_slot] is the slot {e not} holding the newest
    fully-valid checkpoint, so the good generation is never overwritten
    by a write that might tear. *)

val format : Cedar_disk.Device.t -> Layout.t -> unit
(** Zero the whole region (both slots), invalidating stale checkpoints
    from a previous file system on the same volume. *)

val pp : ?limit:int -> Format.formatter -> checkpoint -> unit
(** Human rendering; [limit] caps the events shown (newest kept). *)

val to_json : ?limit:int -> checkpoint -> Cedar_obs.Jsonb.t
