(** The name-table page store: write-back cache over the doubly-written
    FNT regions, integrated with the log.

    [write] only updates the cache and notes the page for the next group
    commit; pages reach their two home locations when the log writer
    re-enters the third they were last logged in, at clean shutdown, or
    during crash recovery. Dirty pages are pinned in the cache — their
    only durable copy is in the log, so they must stay until written home
    (§5.3). Reads that miss fetch {e both} copies and use whichever
    checks; a bad copy is repaired from the good one (§5.1).

    Page 0 is the anchor: B-tree root pointer, page allocation map, and
    the uid counter. It flows through the same cache/log/home machinery,
    so a committed anchor update is exactly as durable as the tree pages
    it describes. *)

type t

val create_fresh : Cedar_disk.Device.t -> Layout.t -> t
(** A brand-new store with an empty anchor; used by format. Writes
    nothing to disk until flushed/committed. *)

val attach : Cedar_disk.Device.t -> Layout.t -> t
(** Reads the anchor from disk (run after log recovery has replayed all
    committed page images home). Raises [Fs_error Corrupt_metadata] if
    both anchor copies are bad. *)

val set_note_dirty : t -> (int -> unit) -> unit
(** Callback invoked with a page id whenever a page becomes dirty; the
    file system uses it to build the group-commit batch. *)

(** {1 Btree.STORE} *)

val page_bytes : t -> int
val read : t -> int -> bytes
val write : t -> int -> bytes -> unit
val alloc : t -> int
val free : t -> int -> unit
val get_root : t -> int option
val set_root : t -> int option -> unit

val flush_anchor : t -> unit
(** Write the anchor page home immediately (format time). *)

(** {1 Anchor extras} *)

val fresh_uid : t -> int64
val next_uid_peek : t -> int64

val bump_uid_floor : t -> int64 -> unit
(** Raise the uid counter to at least the given value (scavenging: no
    rebuilt file may collide with a recovered uid). *)

val page_in_use : t -> int -> bool
(** Whether the anchor's allocation map marks this page slot live. *)

(** {1 Log integration} *)

val framed_image : t -> int -> bytes
(** The full on-disk image (payload + trailer) of a cached page, as logged. *)

val mark_logged : t -> int list -> third:int -> unit
(** Note the third in which these pages' images now live in the log. *)

val flush_third : t -> int -> int
(** Home-write every dirty page last logged in the given third; returns
    how many pages were written. A page modified again since that commit
    homes its retained committed image (never the uncommitted payload)
    and stays dirty and pinned awaiting its own commit. Raises
    [Fs_error Log_reclaim_stall] if a page claiming the third is
    modified yet holds no committed image — reclaiming would destroy its
    only durable copy. *)

val flush_some_third : t -> int -> budget:int -> int
(** Bounded variant for the background home-write demon: flush up to
    [budget] pages claiming the given third, lowest page id first,
    skipping stalled pages instead of raising. Returns how many pages
    were written. *)

val flush_all_dirty : t -> int
(** Home-write everything dirty (clean shutdown). *)

val write_home_image : Cedar_disk.Device.t -> Layout.t -> page:int -> bytes -> unit
(** Write a framed image to both home locations (used by recovery). *)

val dirty_pages : t -> int list
(** Every dirty page (logged or not). *)

val pages_to_log : t -> int list
(** Dirty pages modified since they were last logged — the group-commit
    batch. *)

val cached_pages : t -> int
val drop_clean_cache : t -> unit
(** Evict every clean page (benchmarks use this to simulate a cold cache). *)

val home_writes : t -> int
(** Total pages written home so far (each costs two disk writes). *)

val repairs : t -> int
(** Copies repaired from the twin — unreadable or checksum-bad copies on
    read or scrub, plus valid-but-disagreeing twins (copy A wins). *)

(** {1 Scrubbing and scavenging} *)

val scrub_page : t -> int -> [ `Ok | `Repaired | `Unreadable ]
(** Verify both home copies of a page (checksum and twin comparison),
    rewriting a lone bad or stale copy in place. [`Unreadable] means both
    copies are bad: only the offline scavenger can help. Bypasses the
    cache. *)

val try_read_home :
  Cedar_disk.Device.t -> Layout.t -> page:int -> bytes option
(** Twin-copy read of a page's payload without attaching a store and
    without repair — the scavenger's probe. *)
