open Cedar_disk
open Cedar_fsbase

let pp_unit_kind ppf = function
  | Log.Fnt_page p -> Format.fprintf ppf "fnt:%d" p
  | Log.Leader_page s -> Format.fprintf ppf "leader@%d" s
  | Log.Vam_chunk c -> Format.fprintf ppf "vam:%d" c

let log_report device layout ppf =
  let r =
    Log.recover ~shard:layout.Layout.params.Params.shard_id device layout
  in
  Format.fprintf ppf "log region: %d sectors at %d (thirds of %d)@."
    layout.Layout.log_sectors layout.Layout.log_start
    ((layout.Layout.log_sectors - 3) / 3);
  Format.fprintf ppf "surviving records: %d (last #%s), %d sectors corrected@."
    r.Log.replayed_records
    (match r.Log.last_record_no with Some n -> Int64.to_string n | None -> "-")
    r.Log.corrected_sectors;
  List.iter
    (fun (off, no) -> Format.fprintf ppf "  record #%Ld at body offset %d@." no off)
    r.Log.surviving;
  if r.Log.images <> [] then begin
    Format.fprintf ppf "live images (latest per unit):@.";
    List.iter
      (fun (kind, image, no) ->
        Format.fprintf ppf "  %a  %d bytes  (record #%Ld)@." pp_unit_kind kind
          (Bytes.length image) no)
      (List.sort compare r.Log.images)
  end

let name_table_report fs ppf =
  let stats = Fsd.fnt_stats fs in
  let layout = Fsd.layout fs in
  let page_payload =
    (layout.Layout.params.Params.fnt_page_sectors
    * layout.Layout.geom.Geometry.sector_bytes)
    - 16
  in
  Format.fprintf ppf
    "name table: depth %d, %d pages, %d entries, %d bytes used (%.0f%% fill)@."
    stats.Cedar_btree.Btree.depth stats.Cedar_btree.Btree.pages
    stats.Cedar_btree.Btree.entries stats.Cedar_btree.Btree.used_bytes
    (if stats.Cedar_btree.Btree.pages = 0 then 0.0
     else
       100.0
       *. float_of_int stats.Cedar_btree.Btree.used_bytes
       /. float_of_int (stats.Cedar_btree.Btree.pages * page_payload));
  let local, links, cached, bytes =
    Fsd.fold_entries fs ~init:(0, 0, 0, 0)
      ~f:(fun (l, s, c, b) ~name:_ ~version:_ e ->
        match e.Entry.kind with
        | Entry.Local -> (l + 1, s, c, b + e.Entry.byte_size)
        | Entry.Symlink _ -> (l, s + 1, c, b)
        | Entry.Cached _ -> (l, s, c + 1, b + e.Entry.byte_size))
  in
  Format.fprintf ppf
    "entries: %d local, %d symlinks, %d cached remote; %d bytes of file data@."
    local links cached bytes

let robustness_report fs ppf =
  let c = Fsd.counters fs in
  Format.fprintf ppf
    "robustness: %d scrub passes (%d FNT copies repaired, %d leaders \
     rewritten); %d twin repairs on read, %d FNT home writes@."
    c.Fsd.scrub_passes c.Fsd.scrub_fnt_repairs c.Fsd.scrub_leader_repairs
    (Fsd.fnt_repairs fs) (Fsd.fnt_home_writes fs)

let free_extents fs ~lo ~hi =
  let extents = ref [] in
  let run_start = ref (-1) in
  for s = lo to hi do
    let free = s < hi && Fsd.sector_is_free fs s in
    if free && !run_start < 0 then run_start := s
    else if (not free) && !run_start >= 0 then begin
      extents := (s - !run_start, !run_start) :: !extents;
      run_start := -1
    end
  done;
  List.sort (fun a b -> compare b a) !extents

let vam_report fs ppf =
  let layout = Fsd.layout fs in
  Format.fprintf ppf "free sectors: %d of %d data sectors@." (Fsd.free_sectors fs)
    (Layout.data_sectors layout);
  let show label lo hi =
    let extents = free_extents fs ~lo ~hi in
    let top = List.filteri (fun i _ -> i < 10) extents in
    Format.fprintf ppf "%s area [%d,%d): %d free extents; largest:" label lo hi
      (List.length extents);
    List.iter (fun (len, start) -> Format.fprintf ppf " %d@%d" len start) top;
    Format.fprintf ppf "@."
  in
  show "small" layout.Layout.small_lo layout.Layout.small_hi;
  show "big" layout.Layout.big_lo layout.Layout.big_hi

let layout_report layout ppf =
  Format.fprintf ppf "%a@." Layout.pp layout;
  Format.fprintf ppf "geometry: %a@." Geometry.pp layout.Layout.geom

let volume_report fs =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  layout_report (Fsd.layout fs) ppf;
  name_table_report fs ppf;
  robustness_report fs ppf;
  vam_report fs ppf;
  log_report (Fsd.device fs) (Fsd.layout fs) ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
