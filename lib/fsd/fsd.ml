open Cedar_util
open Cedar_disk
open Cedar_fsbase

module B = Cedar_btree.Btree.Make (Fnt_store)
module Trace = Cedar_obs.Trace
module Metrics = Cedar_obs.Metrics
module Monitor = Cedar_obs.Monitor

type vam_source = Vam_loaded | Vam_reconstructed | Vam_replayed

type boot_report = {
  boot_count : int;
  replayed_records : int;
  replayed_pages : int;
  corrected_sectors : int;
  skipped_leaders : int;
  vam_source : vam_source;
  log_replay_us : int;
  vam_us : int;
  total_us : int;
}

type counters = {
  mutable ops : int;
  mutable forces : int;
  mutable empty_forces : int;
  mutable leader_piggybacks : int;
  mutable leader_home_writes : int;
  mutable vam_base_rewrites : int;
  mutable scrub_passes : int;
  mutable scrub_fnt_repairs : int;
  mutable scrub_leader_repairs : int;
  mutable home_write_bursts : int;
  mutable reclaim_stalls : int;
}

(* Registry-backed counter handles; registered (fresh, zeroed) on every
   boot under "fsd.*" names, which preserves the historical per-boot
   reset semantics of the [counters] snapshot. *)
type meters = {
  m_ops : Metrics.counter;
  m_forces : Metrics.counter;
  m_empty_forces : Metrics.counter;
  m_leader_piggybacks : Metrics.counter;
  m_leader_home_writes : Metrics.counter;
  m_vam_base_rewrites : Metrics.counter;
  m_scrub_passes : Metrics.counter;
  m_scrub_fnt_repairs : Metrics.counter;
  m_scrub_leader_repairs : Metrics.counter;
  m_blackbox_checkpoints : Metrics.counter;
  m_blackbox_sectors : Metrics.counter;
  m_home_write_bursts : Metrics.counter;
  m_reclaim_stalls : Metrics.counter;
  m_op_us : Stats.t;  (** virtual latency per FSD operation *)
}

(* A leader whose current image has not reached its home sector yet. The
   newest image is logged at the next force while [modified]; [logged]
   retains the last committed image together with the third holding its
   log copy — when that third reclaims, the committed image (never an
   uncommitted newer one) is what goes home. *)
type pending_leader = {
  mutable image : bytes;
  mutable modified : bool; (* image changed since last logged *)
  mutable logged : (int * bytes) option; (* (third, committed image) *)
}

type t = {
  device : Device.t;
  clock : Simclock.t;
  layout : Layout.t;
  params : Params.t;
  store : Fnt_store.t;
  tree : B.t;
  log : Log.t;
  alloc : Alloc.t;
  pending_leaders : (int, pending_leader) Hashtbl.t;
  chunk_thirds : (int, int) Hashtbl.t; (* VAM chunk -> third of its log copy *)
  verified : (int64, unit) Hashtbl.t; (* uids whose leader checked out *)
  mutable last_force : int;
  mutable live : bool;
  mutable vam_saved_clean : bool;
  mutable mutation_seq : int;
      (* bumped whenever an operation leaves log-pending metadata *)
  mutable durable_seq : int;
      (* mutation_seq value covered by the last completed force *)
  mutable autocommit : bool;
      (* time-based commit fires inside op_done; a server scheduler
         suppresses it during [submit] and drives commits itself *)
  mutable forces_since_bb : int; (* black-box checkpoint cadence counter *)
  mutable last_scrub : int;
  mutable scrub_page_cursor : int; (* next FNT page pair to verify *)
  mutable scrub_key_cursor : string; (* next name-table key whose leader to verify *)
  mutable bb_next : (int64 * int) option; (* next black-box (gen, slot) *)
  mutable monitor : Monitor.t option;
      (* telemetry sampler; [None] (the default) keeps the hot path at
         one branch with zero allocation, same discipline as the trace *)
  boot_count : int;
  meters : meters;
}

let mk_meters reg =
  {
    m_ops = Metrics.counter reg "fsd.ops";
    m_forces = Metrics.counter reg "fsd.forces";
    m_empty_forces = Metrics.counter reg "fsd.empty_forces";
    m_leader_piggybacks = Metrics.counter reg "fsd.leader_piggybacks";
    m_leader_home_writes = Metrics.counter reg "fsd.leader_home_writes";
    m_vam_base_rewrites = Metrics.counter reg "fsd.vam_base_rewrites";
    m_scrub_passes = Metrics.counter reg "fsd.scrub_passes";
    m_scrub_fnt_repairs = Metrics.counter reg "fsd.scrub_fnt_repairs";
    m_scrub_leader_repairs = Metrics.counter reg "fsd.scrub_leader_repairs";
    m_blackbox_checkpoints = Metrics.counter reg "fsd.blackbox_checkpoints";
    m_blackbox_sectors = Metrics.counter reg "fsd.blackbox_sectors";
    m_home_write_bursts = Metrics.counter reg "fsd.home_write_bursts";
    m_reclaim_stalls = Metrics.counter reg "fsd.reclaim_stalls";
    m_op_us = Metrics.dist reg "fsd.op_us";
  }

let layout t = t.layout
let params t = t.params
let shard t = t.params.Params.shard_id
let device t = t.device
let trace t = Device.trace t.device
let metrics t = Device.metrics t.device

(* Compatibility view over the registry handles: a fresh snapshot record
   per call, zeroed at boot like the old bespoke struct was. *)
let counters t =
  let v = Metrics.counter_value in
  {
    ops = v t.meters.m_ops;
    forces = v t.meters.m_forces;
    empty_forces = v t.meters.m_empty_forces;
    leader_piggybacks = v t.meters.m_leader_piggybacks;
    leader_home_writes = v t.meters.m_leader_home_writes;
    vam_base_rewrites = v t.meters.m_vam_base_rewrites;
    scrub_passes = v t.meters.m_scrub_passes;
    scrub_fnt_repairs = v t.meters.m_scrub_fnt_repairs;
    scrub_leader_repairs = v t.meters.m_scrub_leader_repairs;
    home_write_bursts = v t.meters.m_home_write_bursts;
    reclaim_stalls = v t.meters.m_reclaim_stalls;
  }

let counters_json t =
  let c = counters t in
  Cedar_obs.Jsonb.Obj
    [
      ("ops", Cedar_obs.Jsonb.Int c.ops);
      ("forces", Cedar_obs.Jsonb.Int c.forces);
      ("empty_forces", Cedar_obs.Jsonb.Int c.empty_forces);
      ("leader_piggybacks", Cedar_obs.Jsonb.Int c.leader_piggybacks);
      ("leader_home_writes", Cedar_obs.Jsonb.Int c.leader_home_writes);
      ("vam_base_rewrites", Cedar_obs.Jsonb.Int c.vam_base_rewrites);
      ("scrub_passes", Cedar_obs.Jsonb.Int c.scrub_passes);
      ("scrub_fnt_repairs", Cedar_obs.Jsonb.Int c.scrub_fnt_repairs);
      ("scrub_leader_repairs", Cedar_obs.Jsonb.Int c.scrub_leader_repairs);
      ("home_write_bursts", Cedar_obs.Jsonb.Int c.home_write_bursts);
      ("reclaim_stalls", Cedar_obs.Jsonb.Int c.reclaim_stalls);
    ]
let log_stats t = Log.stats t.log
let fnt_home_writes t = Fnt_store.home_writes t.store
let fnt_repairs t = Fnt_store.repairs t.store
let free_sectors t = Vam.free_count (Alloc.vam t.alloc)
let is_live t = t.live
let drop_caches t =
  ignore (Fnt_store.flush_all_dirty t.store : int);
  Fnt_store.drop_clean_cache t.store

let sector_bytes t = t.layout.Layout.geom.Geometry.sector_bytes
let now t = Simclock.now t.clock
let cpu t us = Simclock.advance t.clock us
let require_live t = if not t.live then Fs_error.raise_ Fs_error.Not_booted

let emit t ev =
  let tr = Device.trace t.device in
  if Trace.enabled tr then Trace.emit tr ~at:(now t) ev

(* Wrap a public operation in a trace span so the device I/Os it issues
   nest under it. The disabled case is the single-branch hot path. With
   only the monitor on, no span is opened but op latency is still
   recorded so the sampler's windowed percentiles have a series. *)
let traced t ~op ~name f =
  let tr = Device.trace t.device in
  if (not (Trace.enabled tr)) && t.monitor == None then f ()
  else begin
    let t0 = now t in
    let id =
      if Trace.enabled tr then Trace.begin_span tr ~at:t0 ~op ~name else 0
    in
    match f () with
    | v ->
      Stats.add t.meters.m_op_us (float_of_int (now t - t0));
      Trace.end_span tr ~at:(now t) id;
      v
    | exception e ->
      Trace.end_span tr ~at:(now t) id;
      raise e
  end

let corrupt msg = Fs_error.raise_ (Fs_error.Corrupt_metadata msg)

(* ------------------------------------------------------------------ *)
(* Group commit                                                        *)

(* Leaders logged in third [j] but never piggybacked must be written by
   the logging code before the third is overwritten (§5.3). With VAM
   logging, chunk images living in [j] are about to die too: rewrite the
   whole base, stamped with the current record number, so recovery
   ignores every older (stale) chunk image still in the log. *)
let home_due_leaders t j ~budget =
  let due = ref [] in
  Hashtbl.iter
    (fun sector pl ->
      match pl.logged with
      | Some (j', image) when j' = j -> due := (sector, image, pl) :: !due
      | Some _ | None -> ())
    t.pending_leaders;
  let written = ref 0 in
  List.iter
    (fun (sector, image, pl) ->
      if !written < budget then begin
        Device.write t.device sector image;
        Metrics.inc t.meters.m_leader_home_writes;
        pl.logged <- None;
        (* A newer uncommitted image keeps the entry alive until its own
           commit; otherwise the leader is fully home. *)
        if not pl.modified then Hashtbl.remove t.pending_leaders sector;
        incr written
      end)
    (List.sort (fun (a, _, _) (b, _, _) -> compare a b) !due);
  !written

let handle_enter_third t j =
  (match Fnt_store.flush_third t.store j with
  | (_ : int) -> ()
  | exception
      (Fs_error.Fs_error (Fs_error.Log_reclaim_stall { third; pinned_pages }) as ex)
    ->
    Metrics.inc t.meters.m_reclaim_stalls;
    emit t (Trace.Reclaim_stall { third; pinned = pinned_pages });
    raise ex);
  ignore (home_due_leaders t j ~budget:max_int : int);
  if t.params.Params.log_vam && Hashtbl.fold (fun _ th acc -> acc || th = j) t.chunk_thirds false
  then begin
    (* The record being appended right now (number [next_record_no]) logs
       chunk states the current map already contains, so it is covered by
       the epoch too. *)
    Vam.save ~mode:Vam.Log_based ~epoch:(Log.next_record_no t.log) (Alloc.vam t.alloc)
      t.device;
    Hashtbl.reset t.chunk_thirds;
    Metrics.inc t.meters.m_vam_base_rewrites
  end

let max_data_sectors t =
  min t.params.Params.max_record_data_sectors (Log.max_data_sectors_hard t.layout)

(* Note what each logged unit's survival horizon is (the third its
   record starts in) and update the in-memory bookkeeping. *)
let note_logged t batch ~third =
  let fnt_ids =
    List.filter_map
      (fun u -> match u.Log.kind with Log.Fnt_page p -> Some p | _ -> None)
      batch
  in
  Fnt_store.mark_logged t.store fnt_ids ~third;
  List.iter
    (fun u ->
      match u.Log.kind with
      | Log.Leader_page s -> (
        match Hashtbl.find_opt t.pending_leaders s with
        | Some pl ->
          pl.logged <- Some (third, u.Log.image);
          pl.modified <- false
        | None -> ())
      | Log.Vam_chunk c -> Hashtbl.replace t.chunk_thirds c third
      | Log.Fnt_page _ -> ())
    batch

(* Checkpoint the tail of the live trace into the on-disk black box
   (DESIGN.md §11). Only meaningful while tracing is on — the trace tail
   *is* the payload. The snapshot is taken before the "blackbox" span
   opens so the checkpoint never records itself; the slot write (and, on
   the first checkpoint of a boot, the probe reads deciding which slot
   and generation come next) then lands inside that span, keeping the
   recorder's I/O out of the forcing op's column in the table replays. *)
let checkpoint_blackbox t ~reason =
  let tr = Device.trace t.device in
  if Trace.enabled tr then begin
    let entries = Trace.last tr 512 in
    let in_flight =
      List.map (fun (_, op, name, t0) -> (op, name, t0)) (Trace.open_spans tr)
    in
    let id = Trace.begin_span tr ~at:(now t) ~op:"blackbox" ~name:reason in
    let gen, slot =
      match t.bb_next with
      | Some v -> v
      | None ->
        let v = Blackbox.probe t.device t.layout in
        t.bb_next <- Some v;
        v
    in
    let state =
      {
        Blackbox.gen;
        at_us = now t;
        reason;
        boot_count = t.boot_count;
        next_record_no = Log.next_record_no t.log;
        log_write_off = Log.write_off t.log;
        log_third = Log.current_third t.log;
        free_sectors = free_sectors t;
        pending_leaders = Hashtbl.length t.pending_leaders;
        dirty_fnt_pages = List.length (Fnt_store.dirty_pages t.store);
      }
    in
    let kept = Blackbox.write t.device t.layout ~slot ~state ~in_flight ~entries in
    Metrics.inc t.meters.m_blackbox_checkpoints;
    Metrics.add t.meters.m_blackbox_sectors t.layout.Layout.blackbox_slot_sectors;
    emit t
      (Trace.Blackbox_checkpoint
         { gen; events = kept; sectors = t.layout.Layout.blackbox_slot_sectors });
    Trace.end_span tr ~at:(now t) id;
    t.bb_next <- Some (Int64.add gen 1L, 1 - slot)
  end

let do_force t =
  require_live t;
  (* Everything mutated so far is in the dirty pages and pending leaders
     this force is about to log; once the record is durable, every token
     at or below this sequence is covered. Captured before the append so
     a crash mid-record leaves [durable_seq] untouched. *)
  let covered_seq = t.mutation_seq in
  let pages = Fnt_store.pages_to_log t.store in
  let leaders =
    Hashtbl.fold
      (fun sector pl acc -> if pl.modified then (sector, pl) :: acc else acc)
      t.pending_leaders []
  in
  if pages = [] && leaders = [] then begin
    assert (Vam.shadow_count (Alloc.vam t.alloc) = 0);
    Metrics.inc t.meters.m_empty_forces;
    emit t (Trace.Log_force { units = 0; empty = true });
    t.durable_seq <- covered_seq;
    t.last_force <- now t
  end
  else begin
    (* Deletions commit now, so their freed bits ride in this record
       (relevant only with VAM logging; harmless otherwise — a crash
       before the record is durable loses this whole session anyway). *)
    Alloc.commit t.alloc;
    let base_units =
      List.map
        (fun p ->
          { Log.kind = Log.Fnt_page p; image = Fnt_store.framed_image t.store p })
        pages
      @ List.map
          (fun (sector, pl) ->
            { Log.kind = Log.Leader_page sector; image = pl.image })
          leaders
    in
    let vam = Alloc.vam t.alloc in
    let chunk_unit c = { Log.kind = Log.Vam_chunk c; image = Vam.chunk_image vam c } in
    let units =
      if not t.params.Params.log_vam then base_units
      else
        (* Chunks dirtied since the last force ride in the same record as
           the name-table changes they belong to. Chunk images about to
           be overwritten by a third entry are covered differently: the
           entry handler rewrites the whole base with a fresh epoch. *)
        base_units @ List.map chunk_unit (Vam.drain_dirty_chunks vam)
    in
    let cap = max_data_sectors t in
    let total_data =
      List.fold_left (fun acc u -> acc + Log.unit_sectors t.layout u.Log.kind) 0 units
    in
    if total_data <= cap then begin
      (* the normal case: one record, one atomic commit *)
      let third = Log.append t.log units in
      note_logged t units ~third
    end
    else begin
      (* Backstop: split across records. Cross-record atomicity is lost,
         which the VAM base cannot tolerate — degrade it to a rebuild. *)
      if t.params.Params.log_vam then begin
        Vam.invalidate_saved t.layout t.device;
        Hashtbl.reset t.chunk_thirds
      end;
      let flush batch =
        let batch = List.rev batch in
        let third = Log.append t.log batch in
        note_logged t batch ~third
      in
      let rec pack acc acc_sectors = function
        | [] -> if acc <> [] then flush acc
        | u :: rest ->
          let s = Log.unit_sectors t.layout u.Log.kind in
          if acc <> [] && acc_sectors + s > cap then begin
            flush acc;
            pack [ u ] s rest
          end
          else pack (u :: acc) (acc_sectors + s) rest
      in
      pack [] 0 units
    end;
    t.durable_seq <- covered_seq;
    Metrics.inc t.meters.m_forces;
    emit t (Trace.Log_force { units = List.length units; empty = false });
    (* An empty force changes no durable state, so only real commits are
       checkpointed; the recorder's cost scales with commit activity.
       [blackbox_every_n_forces] further thins the cadence so runs with
       many clients (frequent forces) don't pay a checkpoint per force. *)
    t.forces_since_bb <- t.forces_since_bb + 1;
    if t.forces_since_bb >= t.params.Params.blackbox_every_n_forces then begin
      checkpoint_blackbox t ~reason:"force";
      t.forces_since_bb <- 0
    end;
    t.last_force <- now t
  end

let force t = traced t ~op:"force" ~name:"" (fun () -> do_force t)

(* Force early when the pending batch approaches one record, so a single
   force stays a single atomic log write ("the log is forced long before
   this should occur"). *)
let force_threshold t =
  max 2 ((max_data_sectors t / t.params.Params.fnt_page_sectors) - 4)

let maybe_commit t =
  (* Under a server scheduler ([autocommit] off, see {!submit}) the
     interval-driven force belongs to the batcher; the bulk trigger stays
     on unconditionally so one force remains one atomic record. *)
  let due_time =
    t.autocommit && now t - t.last_force >= t.params.Params.commit_interval_us
  in
  let due_bulk =
    List.length (Fnt_store.pages_to_log t.store) >= force_threshold t
  in
  if due_time || due_bulk then force t

(* Any mutation of allocation state spoils an idle-period VAM snapshot.
   With VAM logging the base stays valid: the mutations reach the log. *)
let spoil_saved_vam t =
  if t.vam_saved_clean && not t.params.Params.log_vam then begin
    Vam.invalidate_saved t.layout t.device;
    t.vam_saved_clean <- false
  end

(* ------------------------------------------------------------------ *)
(* Name-table access                                                   *)

let validate_name name =
  match Fname.validate name with
  | Ok () -> ()
  | Error reason -> Fs_error.raise_ (Fs_error.Bad_name { name; reason })

let decode_entry name v =
  match Entry.decode v with
  | e -> e
  | exception Bytebuf.Decode_error m ->
    corrupt (Printf.sprintf "entry for %s does not decode: %s" name m)

let newest t name =
  validate_name name;
  let _, hi = Fname.bounds ~name in
  match B.find_last_below t.tree hi with
  | None -> None
  | Some (k, v) -> (
    match Fname.parse k with
    | Some (n, version) when String.equal n name ->
      Some (k, version, decode_entry name v)
    | Some _ | None -> None)

let newest_exn t name =
  match newest t name with
  | Some x -> x
  | None -> Fs_error.raise_ (Fs_error.No_such_file name)

let info_of name version (e : Entry.t) =
  { Fs_ops.name; version; byte_size = e.Entry.byte_size; uid = e.Entry.uid }

let insert_entry t ~key (e : Entry.t) =
  t.mutation_seq <- t.mutation_seq + 1;
  emit t (Trace.Mutation { seq = t.mutation_seq });
  match B.insert t.tree ~key ~value:(Entry.encode e) with
  | () -> ()
  | exception Invalid_argument _ ->
    (match Fname.parse key with
    | Some (name, _) -> Fs_error.raise_ (Fs_error.Too_fragmented name)
    | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Leader handling                                                     *)

let leader_image_of_entry t ~name ~version (e : Entry.t) =
  Leader.encode (Leader.of_entry ~name ~version e) ~sector_bytes:(sector_bytes t)

(* After any entry change the leader must be refreshed (it mirrors the
   whole entry for the scavenger); it is logged at the next commit and
   home-written lazily (never a synchronous I/O). *)
let refresh_leader t ~name ~version (e : Entry.t) =
  if e.Entry.anchor >= 0 then begin
    let image = leader_image_of_entry t ~name ~version e in
    match Hashtbl.find_opt t.pending_leaders e.Entry.anchor with
    | Some pl ->
      (* Keep [pl.logged]: the previously committed image still lives in
         the log and must go home when its third reclaims, even though a
         newer uncommitted image now shadows it in memory. *)
      pl.image <- image;
      pl.modified <- true
    | None ->
      Hashtbl.add t.pending_leaders e.Entry.anchor
        { image; modified = true; logged = None }
  end

let read_leader t (e : Entry.t) =
  match Hashtbl.find_opt t.pending_leaders e.Entry.anchor with
  | Some pl -> Leader.decode pl.image
  | None -> (
    match Device.read t.device e.Entry.anchor with
    | b -> Leader.decode b
    | exception Device.Error { sector; _ } ->
      Fs_error.raise_ (Fs_error.Damaged_data { name = "<leader>"; sector }))

let check_leader t name version (e : Entry.t) leader =
  match leader with
  | Some l when Leader.matches l ~name ~version e ->
    Hashtbl.replace t.verified e.Entry.uid ()
  | Some _ | None ->
    corrupt (Printf.sprintf "leader/name-table mismatch for %s (uid %Ld)" name e.Entry.uid)

let leader_verified t (e : Entry.t) =
  e.Entry.anchor < 0 || Hashtbl.mem t.verified e.Entry.uid

(* ------------------------------------------------------------------ *)
(* Data I/O                                                            *)

let read_sectors_of_runs t runs buf =
  let sb = sector_bytes t in
  let off = ref 0 in
  List.iter
    (fun r ->
      let data = Device.read_run t.device ~sector:r.Run_table.start ~count:r.Run_table.len in
      Bytes.blit data 0 buf !off (r.Run_table.len * sb);
      off := !off + (r.Run_table.len * sb))
    (Run_table.runs runs)

(* Read the whole file; on the first access, verify the leader — combined
   with the first data transfer when it is physically adjacent (§5.7). *)
let read_file_bytes t name version (e : Entry.t) =
  let sb = sector_bytes t in
  let npages = Run_table.pages e.Entry.runs in
  let buf = Bytes.create (npages * sb) in
  let piggyback_possible =
    (not (leader_verified t e))
    && (not (Hashtbl.mem t.pending_leaders e.Entry.anchor))
    && npages > 0
    && Run_table.sector_of_page e.Entry.runs 0 = e.Entry.anchor + 1
  in
  (try
     if piggyback_possible then begin
       let runs = Run_table.runs e.Entry.runs in
       match runs with
       | first :: rest ->
         let combined =
           Device.read_run t.device ~sector:e.Entry.anchor ~count:(1 + first.Run_table.len)
         in
         Metrics.inc t.meters.m_leader_piggybacks;
         emit t (Trace.Leader_piggyback { sector = e.Entry.anchor });
         let leader = Leader.decode (Bytes.sub combined 0 sb) in
         check_leader t name version e leader;
         Bytes.blit combined sb buf 0 (first.Run_table.len * sb);
         let off = ref (first.Run_table.len * sb) in
         List.iter
           (fun r ->
             let d = Device.read_run t.device ~sector:r.Run_table.start ~count:r.Run_table.len in
             Bytes.blit d 0 buf !off (r.Run_table.len * sb);
             off := !off + (r.Run_table.len * sb))
           rest
       | [] -> assert false
     end
     else begin
       if (not (leader_verified t e)) && e.Entry.anchor >= 0 then
         check_leader t name version e (read_leader t e);
       read_sectors_of_runs t e.Entry.runs buf
     end
   with Device.Error { sector; _ } ->
     Fs_error.raise_ (Fs_error.Damaged_data { name; sector }));
  Bytes.sub buf 0 e.Entry.byte_size

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)

let op_done t ?(pages = 0) () =
  Metrics.inc t.meters.m_ops;
  cpu t (t.params.Params.cpu_op_us + (pages * t.params.Params.cpu_page_us));
  maybe_commit t;
  (* Single-threaded callers never reach [run_due_demons]; polling here
     too keeps the sampling cadence without a scheduler. *)
  match t.monitor with None -> () | Some m -> Monitor.maybe_sample m

let split_leader_runs runs =
  match runs with
  | [] -> invalid_arg "split_leader_runs"
  | first :: rest ->
    let leader = first.Run_table.start in
    let data =
      if first.Run_table.len > 1 then
        { Run_table.start = first.Run_table.start + 1; len = first.Run_table.len - 1 }
        :: rest
      else rest
    in
    (leader, data)

let versions t ~name =
  let lo, hi = Fname.bounds ~name in
  B.fold_range ~lo ~hi t.tree ~init:[] ~f:(fun acc k _ ->
      match Fname.parse k with Some (_, v) -> v :: acc | None -> acc)
  |> List.rev

let delete_version_unchecked t name version =
  let key = Fname.key ~name ~version in
  match B.find t.tree key with
  | None -> Fs_error.raise_ (Fs_error.No_such_file (Printf.sprintf "%s!%d" name version))
  | Some v ->
    let e = decode_entry name v in
    t.mutation_seq <- t.mutation_seq + 1;
    emit t (Trace.Mutation { seq = t.mutation_seq });
    ignore (B.delete t.tree key : bool);
    spoil_saved_vam t;
    if e.Entry.anchor >= 0 then begin
      (* The leader and the data pages return to the VAM at commit. *)
      Alloc.free_on_commit t.alloc
        ({ Run_table.start = e.Entry.anchor; len = 1 } :: Run_table.runs e.Entry.runs);
      Hashtbl.remove t.pending_leaders e.Entry.anchor
    end;
    Hashtbl.remove t.verified e.Entry.uid

let enforce_keep t name newest_version keep =
  if keep > 0 then
    List.iter
      (fun v -> if v <= newest_version - keep then delete_version_unchecked t name v)
      (versions t ~name)

let create_common t ~name ~keep ~data_pages ~byte_size ~kind data_opt =
  require_live t;
  validate_name name;
  spoil_saved_vam t;
  let small = byte_size <= t.params.Params.small_file_bytes in
  let runs =
    match Alloc.allocate t.alloc ~sectors:(1 + data_pages) ~small with
    | Ok rs -> rs
    | Error `Volume_full -> Fs_error.raise_ Fs_error.Volume_full
    | Error `Too_fragmented -> Fs_error.raise_ (Fs_error.Too_fragmented name)
  in
  let anchor, data_runs = split_leader_runs runs in
  let uid = Fnt_store.fresh_uid t.store in
  let version = match newest t name with Some (_, v, _) -> v + 1 | None -> 1 in
  let entry =
    {
      Entry.uid;
      keep;
      byte_size;
      created = now t;
      runs = Run_table.of_runs data_runs;
      anchor;
      kind;
    }
  in
  (try insert_entry t ~key:(Fname.key ~name ~version) entry
   with e ->
     Alloc.free_now t.alloc runs;
     raise e);
  let limage = leader_image_of_entry t ~name ~version entry in
  (match data_opt with
  | Some data ->
    (* One synchronous I/O: the leader and the first data run together. *)
    let sb = sector_bytes t in
    let padded = Bytes.make (data_pages * sb) '\000' in
    Bytes.blit data 0 padded 0 (Bytes.length data);
    (match Run_table.runs entry.Entry.runs with
    | first :: rest when first.Run_table.start = anchor + 1 ->
      let combined = Bytes.create ((1 + first.Run_table.len) * sb) in
      Bytes.blit limage 0 combined 0 sb;
      Bytes.blit padded 0 combined sb (first.Run_table.len * sb);
      Device.write_run t.device ~sector:anchor combined;
      let off = ref (first.Run_table.len * sb) in
      List.iter
        (fun r ->
          Device.write_run t.device ~sector:r.Run_table.start
            (Bytes.sub padded !off (r.Run_table.len * sb));
          off := !off + (r.Run_table.len * sb))
        rest
    | runs ->
      (* Leader not adjacent to the data (fragmented volume): write it
         separately. *)
      Device.write t.device anchor limage;
      let off = ref 0 in
      List.iter
        (fun r ->
          Device.write_run t.device ~sector:r.Run_table.start
            (Bytes.sub padded !off (r.Run_table.len * sb));
          off := !off + (r.Run_table.len * sb))
        runs);
    Hashtbl.replace t.verified uid ()
  | None ->
    (* No data write to piggyback on: the leader goes through the log. *)
    Hashtbl.replace t.pending_leaders anchor
      { image = limage; modified = true; logged = None });
  enforce_keep t name version keep;
  op_done t ~pages:data_pages ();
  info_of name version entry

let create t ~name ?keep data =
  traced t ~op:"create" ~name (fun () ->
      let keep = Option.value keep ~default:t.params.Params.default_keep in
      let sb = sector_bytes t in
      let byte_size = Bytes.length data in
      let data_pages = max 1 ((byte_size + sb - 1) / sb) in
      create_common t ~name ~keep ~data_pages ~byte_size ~kind:Entry.Local
        (Some data))

let create_empty t ~name ?keep ~pages () =
  if pages < 0 then invalid_arg "Fsd.create_empty";
  traced t ~op:"create_empty" ~name (fun () ->
      let keep = Option.value keep ~default:t.params.Params.default_keep in
      let sb = sector_bytes t in
      create_common t ~name ~keep ~data_pages:pages ~byte_size:(pages * sb)
        ~kind:Entry.Local None)

let import_cached t ~name ~server data =
  traced t ~op:"import" ~name (fun () ->
      let sb = sector_bytes t in
      let byte_size = Bytes.length data in
      let data_pages = max 1 ((byte_size + sb - 1) / sb) in
      create_common t ~name ~keep:t.params.Params.default_keep ~data_pages
        ~byte_size
        ~kind:(Entry.Cached { server; last_used = now t })
        (Some data))

let create_symlink t ~name ~target =
  traced t ~op:"symlink" ~name @@ fun () ->
  require_live t;
  validate_name name;
  let uid = Fnt_store.fresh_uid t.store in
  let version = match newest t name with Some (_, v, _) -> v + 1 | None -> 1 in
  let entry =
    {
      Entry.uid;
      keep = t.params.Params.default_keep;
      byte_size = 0;
      created = now t;
      runs = Run_table.empty;
      anchor = -1;
      kind = Entry.Symlink { target };
    }
  in
  insert_entry t ~key:(Fname.key ~name ~version) entry;
  enforce_keep t name version entry.Entry.keep;
  op_done t ()

let open_stat t ~name =
  traced t ~op:"open" ~name @@ fun () ->
  require_live t;
  let _, version, e = newest_exn t name in
  op_done t ();
  info_of name version e

let exists t ~name =
  traced t ~op:"exists" ~name @@ fun () ->
  require_live t;
  let r = newest t name <> None in
  op_done t ();
  r

let readlink t ~name =
  traced t ~op:"readlink" ~name @@ fun () ->
  require_live t;
  let _, _, e = newest_exn t name in
  op_done t ();
  match e.Entry.kind with Entry.Symlink { target } -> Some target | _ -> None

let rec read_all_depth t ~name ~depth =
  require_live t;
  let _, version, e = newest_exn t name in
  match e.Entry.kind with
  | Entry.Symlink { target } ->
    if depth >= 8 then corrupt ("symlink chain too deep at " ^ name)
    else read_all_depth t ~name:target ~depth:(depth + 1)
  | Entry.Local | Entry.Cached _ ->
    let bytes = read_file_bytes t name version e in
    op_done t ~pages:(Run_table.pages e.Entry.runs) ();
    bytes

let read_all t ~name =
  traced t ~op:"read_all" ~name (fun () -> read_all_depth t ~name ~depth:0)

let read_page t ~name ~page =
  traced t ~op:"read_page" ~name @@ fun () ->
  require_live t;
  let _, version, e = newest_exn t name in
  let npages = Run_table.pages e.Entry.runs in
  if page < 0 || page >= npages then Fs_error.raise_ (Fs_error.Bad_page { name; page });
  let sector = Run_table.sector_of_page e.Entry.runs page in
  let sb = sector_bytes t in
  let result =
    try
      if leader_verified t e then Device.read t.device sector
      else if
        page = 0
        && sector = e.Entry.anchor + 1
        && not (Hashtbl.mem t.pending_leaders e.Entry.anchor)
      then begin
        (* §5.7: the leader is the previous physical page; verifying it
           costs only one extra sector of transfer. *)
        let combined = Device.read_run t.device ~sector:e.Entry.anchor ~count:2 in
        Metrics.inc t.meters.m_leader_piggybacks;
        emit t (Trace.Leader_piggyback { sector = e.Entry.anchor });
        check_leader t name version e (Leader.decode (Bytes.sub combined 0 sb));
        Bytes.sub combined sb sb
      end
      else begin
        check_leader t name version e (read_leader t e);
        Device.read t.device sector
      end
    with Device.Error { sector; _ } ->
      Fs_error.raise_ (Fs_error.Damaged_data { name; sector })
  in
  op_done t ~pages:1 ();
  result

let write_page t ~name ~page data =
  traced t ~op:"write_page" ~name @@ fun () ->
  require_live t;
  let _, _, e = newest_exn t name in
  let npages = Run_table.pages e.Entry.runs in
  if page < 0 || page >= npages then Fs_error.raise_ (Fs_error.Bad_page { name; page });
  Device.write t.device (Run_table.sector_of_page e.Entry.runs page) data;
  op_done t ~pages:1 ()

let update_entry t ~key (e : Entry.t) =
  insert_entry t ~key e;
  match Fname.parse key with
  | Some (name, version) -> refresh_leader t ~name ~version e
  | None -> ()

let extend t ~name ~pages =
  if pages <= 0 then invalid_arg "Fsd.extend";
  traced t ~op:"extend" ~name @@ fun () ->
  require_live t;
  let key, _, e = newest_exn t name in
  spoil_saved_vam t;
  let small = Run_table.pages e.Entry.runs + pages <= 8 in
  let new_runs =
    match Alloc.allocate t.alloc ~sectors:pages ~small with
    | Ok rs -> rs
    | Error `Volume_full -> Fs_error.raise_ Fs_error.Volume_full
    | Error `Too_fragmented -> Fs_error.raise_ (Fs_error.Too_fragmented name)
  in
  let runs =
    try Run_table.of_runs (Run_table.runs e.Entry.runs @ new_runs)
    with Invalid_argument _ -> corrupt ("run table overlap extending " ^ name)
  in
  let sb = sector_bytes t in
  let e' = { e with Entry.runs; byte_size = e.Entry.byte_size + (pages * sb) } in
  (try update_entry t ~key e'
   with exn ->
     Alloc.free_now t.alloc new_runs;
     raise exn);
  Hashtbl.remove t.verified e.Entry.uid;
  Hashtbl.replace t.verified e'.Entry.uid (); (* leader refreshed in pending *)
  op_done t ()

let contract t ~name ~pages =
  if pages < 0 then invalid_arg "Fsd.contract";
  traced t ~op:"contract" ~name @@ fun () ->
  require_live t;
  let key, _, e = newest_exn t name in
  let current = Run_table.pages e.Entry.runs in
  if pages > current then Fs_error.raise_ (Fs_error.Bad_page { name; page = pages });
  spoil_saved_vam t;
  let runs, freed = Run_table.truncate e.Entry.runs ~pages in
  let sb = sector_bytes t in
  let e' =
    { e with Entry.runs; byte_size = min e.Entry.byte_size (pages * sb) }
  in
  update_entry t ~key e';
  Alloc.free_on_commit t.alloc freed;
  op_done t ()

let delete t ~name =
  traced t ~op:"delete" ~name @@ fun () ->
  require_live t;
  let _, version, e = newest_exn t name in
  delete_version_unchecked t name version;
  (* freeing cost scales with the run table and the shadow-bitmap work *)
  op_done t ~pages:(Run_table.pages e.Entry.runs / 2) ()

let delete_version t ~name ~version =
  traced t ~op:"delete_version" ~name @@ fun () ->
  require_live t;
  validate_name name;
  delete_version_unchecked t name version;
  op_done t ()

let set_keep t ~name ~keep =
  if keep < 0 then invalid_arg "Fsd.set_keep";
  traced t ~op:"set_keep" ~name @@ fun () ->
  require_live t;
  let key, version, e = newest_exn t name in
  update_entry t ~key { e with Entry.keep };
  enforce_keep t name version keep;
  op_done t ()

(* Rename is pure metadata: both the removal and the insertion ride the
   same group commit, so the pair is atomic (one log record). *)
let rename t ~from_ ~to_ =
  traced t ~op:"rename" ~name:from_ @@ fun () ->
  require_live t;
  validate_name to_;
  let from_key, _, e = newest_exn t from_ in
  (match newest t to_ with
  | Some _ -> Fs_error.raise_ (Fs_error.Bad_name { name = to_; reason = "target exists" })
  | None -> ());
  ignore (B.delete t.tree from_key : bool);
  (* The leader mirrors the name: refresh it under the new key so a later
     scavenge does not resurrect the old name. *)
  update_entry t ~key:(Fname.key ~name:to_ ~version:1) e;
  op_done t ()

(* Copy duplicates the data pages under a fresh uid and leader. *)
let copy t ~from_ ~to_ =
  traced t ~op:"copy" ~name:from_ @@ fun () ->
  require_live t;
  let data = read_all t ~name:from_ in
  let _, _, e = newest_exn t from_ in
  create t ~name:to_ ~keep:e.Entry.keep data

let touch_cached t ~name =
  traced t ~op:"touch" ~name @@ fun () ->
  require_live t;
  let key, _, e = newest_exn t name in
  (match e.Entry.kind with
  | Entry.Cached { server; _ } ->
    update_entry t ~key
      { e with Entry.kind = Entry.Cached { server; last_used = now t } }
  | Entry.Local | Entry.Symlink _ ->
    corrupt (name ^ " is not a cached remote file"));
  op_done t ()

let last_used t ~name =
  traced t ~op:"last_used" ~name @@ fun () ->
  require_live t;
  let _, _, e = newest_exn t name in
  op_done t ();
  match e.Entry.kind with
  | Entry.Cached { last_used; _ } -> Some last_used
  | Entry.Local | Entry.Symlink _ -> None

let list t ~prefix =
  traced t ~op:"list" ~name:prefix @@ fun () ->
  require_live t;
  let hi = prefix ^ "\xff\xff\xff\xff" in
  let acc = ref [] in
  let current : (string * int * Entry.t) option ref = ref None in
  let entries = ref 0 in
  let flush () =
    match !current with
    | Some (n, v, e) -> acc := info_of n v e :: !acc
    | None -> ()
  in
  B.iter_range ~lo:prefix ~hi t.tree (fun k v ->
      incr entries;
      match Fname.parse k with
      | None -> ()
      | Some (n, ver) ->
        (match !current with
        | Some (cn, _, _) when not (String.equal cn n) -> flush ()
        | Some _ | None -> ());
        current := Some (n, ver, decode_entry n v));
  flush ();
  cpu t (!entries * t.params.Params.cpu_page_us);
  op_done t ();
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Online scrub demon

   Latent damage — a decayed sector, a wild write, silent corruption — in
   a doubly-kept structure is only survivable while the twin is still
   good. Waiting for a client read to notice leaves an unbounded window
   in which the second copy can die too. During idle periods the demon
   therefore walks the FNT page pairs and the leaders a few at a time,
   verifies every copy (checksum, not just readability), and rewrites a
   lone bad copy in place from its surviving source. *)

let scrub_fnt_pages t =
  let np = t.params.Params.fnt_pages in
  let budget = min t.params.Params.scrub_pages_per_pass np in
  for _ = 1 to budget do
    let page = t.scrub_page_cursor in
    t.scrub_page_cursor <- (page + 1) mod np;
    if Fnt_store.page_in_use t.store page then
      match Fnt_store.scrub_page t.store page with
      | `Repaired ->
        Metrics.inc t.meters.m_scrub_fnt_repairs;
        emit t (Trace.Scrub_repair { target = "fnt-page"; loc = page })
      | `Ok | `Unreadable -> ()
  done

(* A leader that fails its checksum or no longer corroborates the entry
   is rewritten from the name table (the entry is the primary copy; the
   leader is reconstructible redundancy). Leaders with a pending image
   are skipped: their home copy is legitimately stale until the logging
   code writes it. *)
let scrub_leaders t =
  let budget = t.params.Params.scrub_leaders_per_pass in
  let scanned = ref 0 in
  let wrapped = ref true in
  (try
     B.iter_range ~lo:t.scrub_key_cursor t.tree (fun k v ->
         if !scanned >= budget then begin
           t.scrub_key_cursor <- k;
           wrapped := false;
           raise Exit
         end;
         incr scanned;
         match Fname.parse k with
         | None -> ()
         | Some (name, version) ->
           let e = decode_entry name v in
           if
             e.Entry.anchor >= 0
             && not (Hashtbl.mem t.pending_leaders e.Entry.anchor)
           then begin
             let ok =
               match Device.read t.device e.Entry.anchor with
               | b -> (
                 match Leader.decode b with
                 | Some l -> Leader.matches l ~name ~version e
                 | None -> false)
               | exception Device.Error _ -> false
             in
             if not ok then begin
               Device.write t.device e.Entry.anchor
                 (leader_image_of_entry t ~name ~version e);
               Metrics.inc t.meters.m_scrub_leader_repairs;
               emit t (Trace.Scrub_repair { target = "leader"; loc = e.Entry.anchor })
             end;
             Hashtbl.replace t.verified e.Entry.uid ()
           end)
   with Exit -> ());
  if !wrapped then t.scrub_key_cursor <- ""

let maybe_scrub t =
  let interval = t.params.Params.scrub_interval_us in
  if interval > 0 && now t - t.last_scrub >= interval then begin
    t.last_scrub <- now t;
    Metrics.inc t.meters.m_scrub_passes;
    scrub_fnt_pages t;
    scrub_leaders t
  end

(* Demon dispatch, separated from time-advance so that an external
   scheduler (lib/server) can fire the commit and scrub demons at its own
   pace; re-exported as [Demons.run_due]. [tick] = advance + this, so
   single-threaded callers see identical behavior. *)
(* Background home-write scheduling: once the current third is
   [home_write_fill] full, pre-flush pages and leaders whose survival
   horizon is the NEXT third, in bounded batches between group commits —
   so the synchronous reclaim when the writer actually enters that third
   ([handle_enter_third]) finds little left to do inside an op. *)
let maybe_home_writes t =
  let budget = t.params.Params.home_writes_per_pass in
  if
    budget > 0
    && t.params.Params.home_write_fill < 1.0
    && Log.third_fill t.log >= t.params.Params.home_write_fill
  then begin
    let next = (Log.current_third t.log + 1) mod 3 in
    let pages = Fnt_store.flush_some_third t.store next ~budget in
    let leaders =
      if pages >= budget then 0
      else home_due_leaders t next ~budget:(budget - pages)
    in
    if pages + leaders > 0 then begin
      Metrics.inc t.meters.m_home_write_bursts;
      emit t (Trace.Home_write_burst { third = next; pages; leaders })
    end
  end

let run_due_demons t =
  require_live t;
  maybe_commit t;
  maybe_home_writes t;
  maybe_scrub t;
  match t.monitor with None -> () | Some m -> Monitor.maybe_sample m

let tick t ~us =
  require_live t;
  Simclock.advance t.clock us;
  run_due_demons t

(* ------------------------------------------------------------------ *)
(* Submission API: execute now, wait for the covering force later.

   A server scheduler runs each client operation to completion through
   [submit], which suppresses the interval-driven force for the duration
   (the batcher owns commit timing) and returns a completion token. The
   token is durable once a force covering every mutation the operation
   made has completed — the moment the paper's client, "the process doing
   the commit", may be unparked (§5.4). *)

type token = int

let always_durable : token = 0

let submit t f =
  require_live t;
  let was = t.autocommit in
  t.autocommit <- false;
  let before = t.mutation_seq in
  match f () with
  | v ->
    t.autocommit <- was;
    let tok = if t.mutation_seq > before then t.mutation_seq else always_durable in
    (v, tok)
  | exception e ->
    t.autocommit <- was;
    raise e

let token_durable t (tok : token) = t.durable_seq >= tok
let mutation_seq t = t.mutation_seq
let durable_seq t = t.durable_seq

(* How full the third the log is currently appending into is — the
   batcher's backpressure signal: close to 1.0 means the next forces will
   enter a fresh third and overwrite the oldest records, forcing early
   page flushes ([handle_enter_third]). *)
let log_third_fill t = Log.third_fill t.log

let commit_due_at t = t.last_force + t.params.Params.commit_interval_us

(* ------------------------------------------------------------------ *)
(* Telemetry monitor                                                   *)

let monitor t = t.monitor

(* The saturation gauges: derived per-interval figures that answer "was
   the system saturated during this 100ms?" rather than "how much work
   has it done since boot". All are pure functions of the interval's
   counter deltas and current gauge values, so samples stay
   deterministic. Server-side names ("server.acked", ...) read as zero
   until a server registers them — the monitor works unchanged under
   single-threaded callers. *)
let enable_monitor ?ring ?window ?interval_us t =
  require_live t;
  let interval =
    match interval_us with
    | Some us -> us
    | None -> t.params.Params.monitor_interval_us
  in
  let reg = Device.metrics t.device in
  let m =
    Monitor.create ?ring ?window ~interval_us:interval
      ~now:(fun () -> now t)
      reg
  in
  let per_second n v = float_of_int n *. 1e6 /. float_of_int (max 1 v.Monitor.dt_us) in
  Monitor.derive m "sat.device_busy" (fun v ->
      (* Deferred/queued devices charge busy_us on their own horizon,
         which can run ahead of the sampling clock — an interval may see
         more busy time than wall time. A fraction above 1.0 just means
         "saturated"; clamp it so the gauge stays a fraction. *)
      Float.min 1.0
        (float_of_int (v.Monitor.delta "device.busy_us")
        /. float_of_int (max 1 v.Monitor.dt_us)));
  Monitor.derive m "sat.log_third_fill" (fun _ -> Log.third_fill t.log);
  Monitor.derive m "sat.queue_depth" (fun v ->
      float_of_int (v.Monitor.value "server.queue_depth"));
  Monitor.derive m "sat.ops_per_force" (fun v ->
      let forces = v.Monitor.delta "fsd.forces" in
      if forces = 0 then 0.0
      else float_of_int (v.Monitor.delta "server.acked") /. float_of_int forces);
  Monitor.derive m "sat.op_rate_s" (fun v -> per_second (v.Monitor.delta "fsd.ops") v);
  Monitor.derive m "sat.reject_rate_s" (fun v ->
      per_second
        (v.Monitor.delta "server.rejects.queue_full"
        + v.Monitor.delta "server.rejects.backpressure")
        v);
  (* Split admission-reject rates: overload shows up as queue_full, a
     filling log third as backpressure — distinct remedies, so they get
     distinct live rows. *)
  Monitor.derive m "sat.reject_queue_full_s" (fun v ->
      per_second (v.Monitor.delta "server.rejects.queue_full") v);
  Monitor.derive m "sat.reject_backpressure_s" (fun v ->
      per_second (v.Monitor.delta "server.rejects.backpressure") v);
  Monitor.derive m "sat.retry_rate_s" (fun v ->
      per_second (v.Monitor.delta "server.retries") v);
  Monitor.derive m "sat.dropped_rate_s" (fun v ->
      per_second (v.Monitor.delta "server.dropped") v);
  Monitor.derive m "sat.reclaim_stall_rate_s" (fun v ->
      per_second (v.Monitor.delta "fsd.reclaim_stalls") v);
  Monitor.derive m "sat.home_write_burst_rate_s" (fun v ->
      per_second (v.Monitor.delta "fsd.home_write_bursts") v);
  (* Per-phase occupancy gauges (the live face of the latency anatomy):
     accumulated phase-microseconds per elapsed microsecond, i.e. the
     average number of ops simultaneously inside that phase over the
     sample window. The server maintains the underlying counters with
     tracing off; standalone (serverless) runs read 0. *)
  let phase_occupancy name counter =
    Monitor.derive m name (fun v ->
        float_of_int (v.Monitor.delta counter)
        /. float_of_int (max 1 v.Monitor.dt_us))
  in
  phase_occupancy "sat.phase_queue" "server.phase.queue_us";
  phase_occupancy "sat.phase_admission" "server.phase.admission_us";
  phase_occupancy "sat.phase_execute" "server.phase.execute_us";
  phase_occupancy "sat.phase_append" "server.phase.append_us";
  phase_occupancy "sat.phase_parked" "server.phase.parked_us";
  Monitor.watch_dist m "server.commit_wait_us";
  Monitor.watch_dist m "fsd.op_us";
  t.monitor <- Some m;
  m

let disable_monitor t = t.monitor <- None

let save_vam t =
  require_live t;
  force t;
  if not t.params.Params.log_vam then begin
    (* An idle snapshot, trusted until the next mutation. With VAM
       logging the boot-time base plus the log already cover the map. *)
    Vam.save (Alloc.vam t.alloc) t.device;
    t.vam_saved_clean <- true
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let format device params =
  let geom = Device.geometry device in
  let layout = Layout.compute geom params in
  let store = Fnt_store.create_fresh device layout in
  Fnt_store.flush_anchor store;
  Blackbox.format device layout;
  Log.format device layout;
  Vam.save (Vam.create_all_free layout) device;
  Boot_page.write device ~sector_bytes:geom.Geometry.sector_bytes
    {
      Boot_page.boot_count = 0;
      clean_shutdown = true;
      fnt_page_sectors = params.Params.fnt_page_sectors;
      fnt_pages = params.Params.fnt_pages;
      log_sectors = params.Params.log_sectors;
      log_vam = params.Params.log_vam;
      track_tolerant_log = params.Params.track_tolerant_log;
      shard_id = params.Params.shard_id;
    }

(* Scan the whole name table once: mark allocated sectors in the VAM and
   collect anchor-sector -> uid for validating logged leader images. *)
let scan_name_table t_tree vam anchors cpu_per_entry clock =
  B.iter t_tree (fun k v ->
      Simclock.advance clock cpu_per_entry;
      match Entry.decode v with
      | exception Bytebuf.Decode_error m ->
        corrupt (Printf.sprintf "entry %s does not decode during scan: %s" k m)
      | e ->
        if e.Entry.anchor >= 0 then begin
          (match vam with
          | Some vm -> Vam.mark_allocated_for_rebuild vm e.Entry.anchor
          | None -> ());
          Hashtbl.replace anchors e.Entry.anchor e.Entry.uid
        end;
        match vam with
        | Some vm -> Run_table.iter_sectors e.Entry.runs (Vam.mark_allocated_for_rebuild vm)
        | None -> ())

let boot ?params device =
  let clock = Device.clock device in
  let geom = Device.geometry device in
  let t_start = Simclock.now clock in
  let bp =
    match Boot_page.read device with
    | Some bp -> bp
    | None -> corrupt "both boot pages are unreadable"
  in
  (* Explicit params win; otherwise the volume's own boot page decides,
     including the extension flags it was formatted with. *)
  let runtime =
    match params with
    | Some p -> p
    | None ->
      {
        (Params.for_geometry geom) with
        Params.log_vam = bp.Boot_page.log_vam;
        track_tolerant_log = bp.Boot_page.track_tolerant_log;
      }
  in
  let p =
    {
      runtime with
      Params.fnt_page_sectors = bp.Boot_page.fnt_page_sectors;
      fnt_pages = bp.Boot_page.fnt_pages;
      log_sectors = bp.Boot_page.log_sectors;
      (* identity, not tuning: the shard the volume was formatted as *)
      shard_id = bp.Boot_page.shard_id;
    }
  in
  let layout = Layout.compute geom p in
  let boot_count = bp.Boot_page.boot_count + 1 in
  Boot_page.write device ~sector_bytes:geom.Geometry.sector_bytes
    { bp with Boot_page.boot_count; clean_shutdown = false };
  (* Log replay: one sequential pass over the live log region
     (Log.replay). Records are applied in log order as they decode —
     later images overwrite earlier ones in the staging tables, so each
     unit is then written home exactly once — and no log sector is read
     twice. Replay is unconditional: it is also what rolls back
     uncommitted state a diverged page's home copy could never hold. *)
  let r0 = Simclock.now clock in
  let fnt_tbl : (int, bytes) Hashtbl.t = Hashtbl.create 64 in
  let leader_tbl : (int, bytes) Hashtbl.t = Hashtbl.create 64 in
  let chunk_tbl : (int, bytes * int64) Hashtbl.t = Hashtbl.create 16 in
  let rec_info =
    Log.replay ~shard:p.Params.shard_id device layout
      ~f:(fun ~record_no ~off:_ units ->
        List.iter
          (fun u ->
            match u.Log.kind with
            | Log.Fnt_page id -> Hashtbl.replace fnt_tbl id u.Log.image
            | Log.Leader_page s -> Hashtbl.replace leader_tbl s u.Log.image
            | Log.Vam_chunk c -> Hashtbl.replace chunk_tbl c (u.Log.image, record_no))
          units)
  in
  let sorted_bindings tbl =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  let fnt_images = sorted_bindings fnt_tbl in
  let leader_images = sorted_bindings leader_tbl in
  let vam_chunk_images =
    List.map (fun (c, (image, no)) -> (c, image, no)) (sorted_bindings chunk_tbl)
  in
  List.iter
    (fun (id, image) -> Fnt_store.write_home_image device layout ~page:id image)
    fnt_images;
  Simclock.advance clock (runtime.Params.cpu_page_us * rec_info.Log.p_records * 4);
  let log_replay_us = Simclock.now clock - r0 in
  let trace_boot ev =
    let tr = Device.trace device in
    if Trace.enabled tr then Trace.emit tr ~at:(Simclock.now clock) ev
  in
  trace_boot (Trace.Recovery_phase { phase = "log-replay"; us = log_replay_us });
  (* Attach the recovered structures. *)
  let t_ref = ref None in
  let on_enter j =
    match !t_ref with Some t -> handle_enter_third t j | None -> ()
  in
  let base_no =
    match rec_info.Log.p_last_record_no with
    | Some n -> max n rec_info.Log.p_pointer_record_no
    | None -> rec_info.Log.p_pointer_record_no
  in
  (* Attach the name table before the log: Log.attach moves the recovery
     pointer, and if the name table turns out to be beyond repair the
     caller will run the scavenger, which must still see this log. *)
  let store = Fnt_store.attach device layout in
  let tree = B.attach store in
  let log =
    Log.attach ~shard:p.Params.shard_id device layout ~boot_count
      ~next_record_no:(Int64.add base_no 1_000_000L)
      ~write_off:rec_info.Log.p_next_write_off ~on_enter_third:on_enter
  in
  (* VAM: with VAM logging, rebuild from the saved base plus the logged
     chunk images; otherwise trust a clean snapshot; else reconstruct
     from the name table. A mode mismatch (the volume last ran with the
     other setting) falls back to reconstruction. *)
  let v0 = Simclock.now clock in
  let anchors = Hashtbl.create 64 in
  let reconstruct () =
    let vm = Vam.create_all_free layout in
    scan_name_table tree (Some vm) anchors (runtime.Params.cpu_page_us / 2) clock;
    (vm, Vam_reconstructed, true)
  in
  let vam, vam_source, scanned =
    match (Vam.load layout device, p.Params.log_vam) with
    | Some (vm, Vam.Log_based, epoch), true ->
      (* Chunk images from records at or below the base's epoch predate
         the base (it was rewritten after they were logged): skip them. *)
      List.iter
        (fun (c, image, no) ->
          if Int64.compare no epoch > 0 then Vam.apply_chunk vm c image)
        vam_chunk_images;
      Simclock.advance clock (List.length vam_chunk_images * runtime.Params.cpu_page_us);
      (vm, Vam_replayed, false)
    | Some (vm, Vam.Snapshot, _), false ->
      Vam.invalidate_saved layout device;
      (vm, Vam_loaded, false)
    | Some _, _ | None, _ -> reconstruct ()
  in
  (* With VAM logging, rewrite the base now: the pointer was just reset,
     so every surviving chunk record will postdate this image. *)
  if p.Params.log_vam then begin
    Vam.save ~mode:Vam.Log_based
      ~epoch:(Int64.sub (Log.next_record_no log) 1L)
      vam device;
    ignore (Vam.drain_dirty_chunks vam : int list)
  end;
  let vam_us = Simclock.now clock - v0 in
  let vam_source_str =
    match vam_source with
    | Vam_loaded -> "loaded"
    | Vam_reconstructed -> "reconstructed"
    | Vam_replayed -> "replayed"
  in
  trace_boot (Trace.Vam_rebuild { source = vam_source_str; us = vam_us });
  (* Leader images are applied only where the (recovered) name table still
     points: stale ones could stomp reused data sectors. *)
  let skipped_leaders = ref 0 in
  if leader_images <> [] then begin
    if not scanned then
      scan_name_table tree None anchors (runtime.Params.cpu_page_us / 2) clock;
    List.iter
      (fun (sector, image) ->
        let ok =
          match (Leader.decode image, Hashtbl.find_opt anchors sector) with
          | Some l, Some uid -> Int64.equal l.Leader.uid uid
          | _, _ -> false
        in
        if ok then Device.write device sector image else incr skipped_leaders)
      leader_images
  end;
  let t =
    {
      device;
      clock;
      layout;
      params = p;
      store;
      tree;
      log;
      alloc = Alloc.create vam;
      pending_leaders = Hashtbl.create 32;
      chunk_thirds = Hashtbl.create 32;
      verified = Hashtbl.create 256;
      last_force = Simclock.now clock;
      live = true;
      vam_saved_clean = false;
      mutation_seq = 0;
      durable_seq = 0;
      autocommit = true;
      forces_since_bb = 0;
      last_scrub = Simclock.now clock;
      scrub_page_cursor = 0;
      scrub_key_cursor = "";
      bb_next = None;
      monitor = None;
      boot_count;
      meters = mk_meters (Device.metrics device);
    }
  in
  t_ref := Some t;
  (* Boot and replay above ran synchronously; only steady-state traffic
     rides the request queue. *)
  if p.Params.disk_qdepth > 0 then
    Device.set_queue device ~policy:p.Params.disk_sched
      ~depth:p.Params.disk_qdepth;
  let reg = Device.metrics device in
  Metrics.gauge reg "vam.free_sectors" (fun () ->
      Vam.free_count (Alloc.vam t.alloc));
  Metrics.gauge reg "vam.shadow_pending" (fun () ->
      Vam.shadow_count (Alloc.vam t.alloc));
  Metrics.gauge reg "vam.dirty_chunks" (fun () ->
      Vam.dirty_chunk_count (Alloc.vam t.alloc));
  let total_us = Simclock.now clock - t_start in
  trace_boot (Trace.Recovery_phase { phase = "total"; us = total_us });
  let report =
    {
      boot_count;
      replayed_records = rec_info.Log.p_records;
      replayed_pages =
        List.length fnt_images + List.length leader_images
        + List.length vam_chunk_images;
      corrected_sectors = rec_info.Log.p_corrected_sectors;
      skipped_leaders = !skipped_leaders;
      vam_source;
      log_replay_us;
      vam_us;
      total_us;
    }
  in
  (t, report)

(* Boot raises on unrecoverable metadata damage (both copies of an FNT
   page gone, anchor undecodable, …). try_boot turns that into an outcome
   the caller can answer with the scavenger. *)
let try_boot ?params device =
  match boot ?params device with
  | v -> `Ok v
  | exception Fs_error.Fs_error (Fs_error.Corrupt_metadata m) -> `Needs_scavenge m
  | exception Cedar_btree.Btree.Corrupt m -> `Needs_scavenge ("name table: " ^ m)

let shutdown t =
  require_live t;
  force t;
  ignore (Fnt_store.flush_all_dirty t.store : int);
  Hashtbl.iter
    (fun sector pl ->
      Device.write t.device sector pl.image;
      Metrics.inc t.meters.m_leader_home_writes)
    t.pending_leaders;
  Hashtbl.reset t.pending_leaders;
  Log.reset_pointer t.log;
  let mode = if t.params.Params.log_vam then Vam.Log_based else Vam.Snapshot in
  Vam.save ~mode
    ~epoch:(Int64.sub (Log.next_record_no t.log) 1L)
    (Alloc.vam t.alloc) t.device;
  ignore (Vam.drain_dirty_chunks (Alloc.vam t.alloc) : int list);
  Hashtbl.reset t.chunk_thirds;
  checkpoint_blackbox t ~reason:"shutdown";
  Boot_page.write t.device ~sector_bytes:(sector_bytes t)
    {
      Boot_page.boot_count = t.boot_count;
      clean_shutdown = true;
      fnt_page_sectors = t.params.Params.fnt_page_sectors;
      fnt_pages = t.params.Params.fnt_pages;
      log_sectors = t.params.Params.log_sectors;
      log_vam = t.params.Params.log_vam;
      track_tolerant_log = t.params.Params.track_tolerant_log;
      shard_id = t.params.Params.shard_id;
    };
  t.live <- false

(* ------------------------------------------------------------------ *)
(* Checking and the Ops vtable                                         *)

let check t =
  match B.check t.tree with
  | Error m -> Error ("btree: " ^ m)
  | Ok () -> (
    let bad = ref [] in
    (* Leader/name-table mutual check, plus an allocation audit: every
       referenced sector must be marked allocated and no sector may be
       claimed twice. *)
    let claimed = Hashtbl.create 256 in
    let claim k s =
      if Hashtbl.mem claimed s then
        bad := Printf.sprintf "%s: sector %d claimed twice" k s :: !bad
      else begin
        Hashtbl.replace claimed s ();
        if Vam.is_free (Alloc.vam t.alloc) s then
          bad := Printf.sprintf "%s: sector %d in use but marked free" k s :: !bad
      end
    in
    B.iter t.tree (fun k v ->
        match Entry.decode v with
        | exception Bytebuf.Decode_error m -> bad := (k ^ ": " ^ m) :: !bad
        | e ->
          if e.Entry.anchor >= 0 then begin
            claim k e.Entry.anchor;
            Run_table.iter_sectors e.Entry.runs (claim k);
            let name, version =
              match Fname.parse k with Some (n, v) -> (n, v) | None -> (k, 0)
            in
            match read_leader t e with
            | Some l when Leader.matches l ~name ~version e -> ()
            | Some _ -> bad := (k ^ ": leader mismatch") :: !bad
            | None -> bad := (k ^ ": leader unreadable") :: !bad
            | exception Fs_error.Fs_error _ ->
              bad := (k ^ ": leader sector damaged") :: !bad
          end);
    match !bad with
    | [] -> Ok ()
    | problems -> Error (String.concat "; " problems))

let fnt_stats t = B.stats t.tree

let fold_entries t ~init ~f =
  require_live t;
  B.fold_range t.tree ~init ~f:(fun acc k v ->
      match Fname.parse k with
      | None -> acc
      | Some (name, version) -> f acc ~name ~version (decode_entry name v))

let sector_is_free t s = Vam.is_free (Alloc.vam t.alloc) s

let ops t =
  {
    Fs_ops.label = "FSD";
    create = (fun ~name ~data -> create t ~name data);
    open_stat = (fun ~name -> open_stat t ~name);
    read_all = (fun ~name -> read_all t ~name);
    read_page = (fun ~name ~page -> read_page t ~name ~page);
    delete = (fun ~name -> delete t ~name);
    list = (fun ~prefix -> list t ~prefix);
    force = (fun () -> force t);
    device = t.device;
    clock = t.clock;
  }
