(* Demon dispatch, split out of [Fsd.tick] so a scheduler that owns the
   virtual clock (lib/server) can fire the demons at points of its own
   choosing. [Fsd.tick] advances time and then calls the same dispatch,
   so single-threaded callers and the server see identical demon
   behavior. *)

let run_due = Fsd.run_due_demons
