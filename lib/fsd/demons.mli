(** Demon dispatch, separated from time-advance.

    [Fsd.tick] conflated advancing the clock with firing the demons; a
    cooperative scheduler advances the clock itself (operations and idle
    jumps) and calls {!run_due} at scheduling points, so the commit and
    scrub demons fire identically under the server and under the
    historical single-threaded [tick] loop. *)

val run_due : Fsd.t -> unit
(** Fire the commit demon (group-commit force) and the scrub demon if
    their intervals have elapsed at the current virtual time; a no-op
    otherwise. Exactly the demon-dispatch half of [Fsd.tick]. *)
