(** The metadata redo log (§5.3) with group commit (§5.4).

    The log is a circular file near the central cylinders. Each record is
    written as one synchronous multi-sector command laid out as

    {v header | blank | header copy | data... | end | data copies... | end copy v}

    so the same data never occupies adjacent sectors and any 1–2
    consecutive-sector failure is correctable from the copies. A record is
    committed iff a valid end page matching its header survives.

    The body is divided into thirds. Pages are written to their home
    location only when the writer is about to {e enter} the third in which
    they were last logged (the [on_enter_third] callback); the pointer to
    the start of the first valid record in the oldest third lives in log
    sector 0 (replicated in sector 2) and is rewritten at each third
    entry. On average 5/6 of the log is in use. *)

type unit_kind =
  | Fnt_page of int  (** name-table page id; homed at two locations *)
  | Leader_page of int  (** absolute home sector *)
  | Vam_chunk of int
      (** one sector-sized slice of the allocation bitmap, by chunk
          index — the optional VAM-logging extension (§5.3) *)

type logged_unit = { kind : unit_kind; image : bytes }

type stats = {
  mutable records : int;
  mutable data_sectors : int;
  mutable total_sectors : int;  (** including overhead and copies *)
  mutable third_entries : int;
  record_sizes : Cedar_util.Stats.t;  (** total sectors per record *)
}

type t

val format : Cedar_disk.Device.t -> Layout.t -> unit
(** Initialise pointer pages for an empty log. *)

val attach :
  ?shard:int ->
  Cedar_disk.Device.t ->
  Layout.t ->
  boot_count:int ->
  next_record_no:int64 ->
  write_off:int ->
  on_enter_third:(int -> unit) ->
  t
(** Attach after {!recover} has replayed every committed image home: no
    prior record is needed any more, so the oldest-record pointer is
    immediately rewritten to ([write_off], [next_record_no]).
    [next_record_no] must exceed every record number ever written to this
    log — the caller guarantees this by adding a large slack on each boot
    — so that stale records can never satisfy the recovery chain.
    [shard] (default 0, u8) is stamped into every record header; a
    multi-volume server gives each volume its own shard id so recovery
    and the scavenger can never mistake another volume's leftovers for
    this log's chain. Raises [Invalid_argument] outside [0, 255]. *)

val append : t -> logged_unit list -> int
(** Writes one record synchronously and returns the third in which the
    record {e starts} — the logged images survive until that third is
    next entered, so that is when the pages must be written home.
    Raises [Invalid_argument] if the record exceeds a third. *)

val unit_sectors : Layout.t -> unit_kind -> int
val record_total_sectors : Layout.t -> logged_unit list -> int
val max_data_sectors_hard : Layout.t -> int
(** Structural cap on data sectors per record (directory and checksum
    tables must fit their sectors). *)

val current_third : t -> int

val write_off : t -> int
(** Current append offset within the log body, in sectors (the black
    box records it so a post-crash reader sees where the log stood). *)

val third_fill : t -> float
(** Fill of the current third in [0, 1], measured from that third's own
    base offset. Reads exactly 1.0 when the head sits on the boundary of
    the next third (entry — and reclamation — happen on the next
    append), never wrapping early to 0.0. *)

val stats : t -> stats

val next_record_no : t -> int64
(** The number the next appended record will carry. *)

val thirds_entered_by : t -> record_sectors:int -> int list
(** Which thirds appending a record of that many total sectors would
    enter (and therefore overwrite). Pure; used by the VAM-logging
    extension to fold soon-to-be-lost chunk images into the same
    record. *)

val reset_pointer : t -> unit
(** Point the oldest-record pointer at the end of the chain. Called by a
    clean shutdown once every page is home, so the next boot replays
    nothing. *)

(** {1 Recovery} *)

type recovery = {
  replayed_records : int;
  last_record_no : int64 option;
  pointer_record_no : int64;
      (** the record number named by the on-disk pointer; a lower bound
          for choosing the next session's record numbers *)
  next_write_off : int;
  surviving : (int * int64) list;
  corrected_sectors : int;  (** sectors read from the replica copy *)
  images : (unit_kind * bytes * int64) list;
      (** final image per logged unit with the number of the record it
          came from (later records shadow earlier) *)
}

type pass = {
  p_records : int;
  p_last_record_no : int64 option;
  p_pointer_record_no : int64;
  p_next_write_off : int;
  p_surviving : (int * int64) list;
  p_corrected_sectors : int;
}
(** Summary of one {!replay} pass; field meanings as in {!recovery}. *)

val replay :
  ?shard:int ->
  Cedar_disk.Device.t ->
  Layout.t ->
  f:(record_no:int64 -> off:int -> logged_unit list -> unit) ->
  pass
(** The single sequential REDO pass: follow the chain from the
    oldest-record pointer and hand each committed record to [f] in log
    order, stopping at the first break; tolerant of 1–2 consecutive
    damaged sectors anywhere (uses the replicas). Every live log sector
    is read at most once — restart cost is linear in the live log
    length. A record whose header carries a shard tag other than
    [shard] (default 0) terminates the chain exactly like a torn
    record. *)

val recover : ?shard:int -> Cedar_disk.Device.t -> Layout.t -> recovery
(** {!replay} specialised to collect the final image per logged unit
    (later records shadow earlier ones). *)
