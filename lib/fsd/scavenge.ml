open Cedar_util
open Cedar_disk
open Cedar_fsbase

module B = Cedar_btree.Btree.Make (Fnt_store)

type report = {
  entries_kept : int;
  entries_rebuilt : int;
  stale_leaders : int;
  conflicts : int;
  quarantined_sectors : int;
  fnt_pages_lost : int;
  replayed_records : int;
  duration_us : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "%d entries kept, %d rebuilt from leaders, %d stale leaders dropped, %d \
     conflicts (%d sectors quarantined), %d FNT page pairs lost, %d log \
     records replayed"
    r.entries_kept r.entries_rebuilt r.stale_leaders r.conflicts
    r.quarantined_sectors r.fnt_pages_lost r.replayed_records

(* The layout-defining fields normally come from the boot page; when both
   boot pages are gone too, fall back to the parameters [format] would
   pick for this geometry — the only guess available. *)
let params_of_volume device geom =
  match Boot_page.read device with
  | Some bp ->
    ( {
        (Params.for_geometry geom) with
        Params.fnt_page_sectors = bp.Boot_page.fnt_page_sectors;
        fnt_pages = bp.Boot_page.fnt_pages;
        log_sectors = bp.Boot_page.log_sectors;
        log_vam = bp.Boot_page.log_vam;
        track_tolerant_log = bp.Boot_page.track_tolerant_log;
        shard_id = bp.Boot_page.shard_id;
      },
      Some bp )
  | None -> (Params.for_geometry geom, None)

(* A logged leader image may be applied to its home sector only when
   doing so cannot clobber live data: either the sector currently holds a
   leader for the same uid (this is a newer image of it), or the sector
   is unreadable (nothing to lose). A readable sector holding anything
   else may be reused file data — leave it alone; the merge pass decides
   from what is actually on disk. *)
let apply_logged_leader device sector image =
  match Leader.decode image with
  | None -> ()
  | Some l -> (
    match Device.read device sector with
    | exception Device.Error _ -> Device.write device sector image
    | current -> (
      match Leader.decode current with
      | Some cur when Int64.equal cur.Leader.uid l.Leader.uid ->
        Device.write device sector image
      | Some _ | None -> ()))

let entry_sectors (e : Entry.t) =
  let acc = ref [ e.Entry.anchor ] in
  Run_table.iter_sectors e.Entry.runs (fun s -> acc := s :: !acc);
  !acc

let run device =
  let clock = Device.clock device in
  let t0 = Simclock.now clock in
  let geom = Device.geometry device in
  let params, bp = params_of_volume device geom in
  let layout = Layout.compute geom params in
  let phase_start = ref t0 in
  (* Fresh series per run: the registry reports the latest scavenge. *)
  let phase_us =
    Cedar_obs.Metrics.dist (Device.metrics device) "scavenge.phase_us"
  in
  let end_phase name =
    let us = Simclock.now clock - !phase_start in
    Cedar_util.Stats.add phase_us (float_of_int us);
    let tr = Device.trace device in
    if Cedar_obs.Trace.enabled tr then
      Cedar_obs.Trace.emit tr ~at:(Simclock.now clock)
        (Cedar_obs.Trace.Scavenge_phase { phase = name; us });
    phase_start := Simclock.now clock
  in
  (* Phase 1: the log first — committed page images supersede whatever is
     in the home locations, and may resurrect whole FNT pages. *)
  let rec_info = Log.recover ~shard:params.Params.shard_id device layout in
  List.iter
    (fun (kind, image, _no) ->
      match kind with
      | Log.Fnt_page page -> Fnt_store.write_home_image device layout ~page image
      | Log.Leader_page s -> apply_logged_leader device s image
      | Log.Vam_chunk _ -> ())
    rec_info.Log.images;
  end_phase "log-replay";
  (* Phase 2: salvage the surviving name table. A failed attach or a
     failed descent keeps whatever entries were reached — each one sits
     in a checksummed page, so partial salvage is sound. *)
  let tree_entries = ref [] in
  let uid_floor = ref 1L in
  let store_opt =
    match Fnt_store.attach device layout with
    | store -> Some store
    | exception Fs_error.Fs_error _ -> None
  in
  let tree_complete =
    match store_opt with
    | None -> false
    | Some store -> (
      uid_floor := Fnt_store.next_uid_peek store;
      let tree = B.attach store in
      match B.iter tree (fun k v -> tree_entries := (k, v) :: !tree_entries) with
      | () -> true
      | exception Fs_error.Fs_error _ -> false
      | exception Cedar_btree.Btree.Corrupt _ -> false)
  in
  (* Count page pairs that are beyond the twin-copy scheme. Without an
     anchor the allocation map is unknown; fall back to "has either copy
     ever been written". *)
  let fnt_pages_lost = ref 0 in
  for page = 0 to params.Params.fnt_pages - 1 do
    let relevant =
      match store_opt with
      | Some store -> Fnt_store.page_in_use store page
      | None ->
        Device.written_ever device (Layout.fnt_sector_a layout ~page)
        || Device.written_ever device (Layout.fnt_sector_b layout ~page)
    in
    if relevant && Fnt_store.try_read_home device layout ~page = None then
      incr fnt_pages_lost
  done;
  end_phase "salvage-fnt";
  (* Phase 3: sweep the data areas for leader pages. Every leader is a
     checksummed copy of its file's entry, physically placed just before
     the file's first data page. *)
  let leaders = ref [] in
  let sweep lo hi =
    for s = lo to hi - 1 do
      Simclock.advance clock (params.Params.cpu_page_us / 8);
      match Device.read device s with
      | exception Device.Error _ -> ()
      | b -> (
        match Leader.decode b with
        | Some l -> leaders := (s, l) :: !leaders
        | None -> ())
    done
  in
  sweep layout.Layout.small_lo layout.Layout.small_hi;
  sweep layout.Layout.big_lo layout.Layout.big_hi;
  end_phase "leader-sweep";
  (* Phase 4: merge. Salvaged FNT entries are accepted first (the table
     is the primary structure); leaders then fill the holes, newest uid
     first, so a lingering leader of a deleted-and-recreated name loses
     to the live one. All sector claims are tracked: overlapping claims
     are conflicts, and the loser's sectors are quarantined — kept
     allocated but referenced by nothing — instead of being handed out. *)
  let claimed = Hashtbl.create 1024 in
  let accepted : (string, Entry.t) Hashtbl.t = Hashtbl.create 256 in
  let accepted_uids = Hashtbl.create 256 in
  let quarantine = Hashtbl.create 64 in
  let conflicts = ref 0 in
  let try_claim e =
    let sectors = entry_sectors e in
    if List.exists (Hashtbl.mem claimed) sectors then false
    else begin
      List.iter (fun s -> Hashtbl.replace claimed s ()) sectors;
      true
    end
  in
  let entries_kept = ref 0 in
  List.iter
    (fun (k, v) ->
      match Entry.decode v with
      | exception Bytebuf.Decode_error _ -> incr conflicts
      | exception Invalid_argument _ -> incr conflicts
      | e ->
        let ok = e.Entry.anchor < 0 || try_claim e in
        if ok then begin
          Hashtbl.replace accepted k e;
          Hashtbl.replace accepted_uids e.Entry.uid ();
          incr entries_kept
        end
        else incr conflicts)
    (List.rev !tree_entries);
  let entries_rebuilt = ref 0 in
  let stale_leaders = ref 0 in
  let by_uid_desc =
    List.sort (fun (_, a) (_, b) -> Int64.compare b.Leader.uid a.Leader.uid) !leaders
  in
  List.iter
    (fun (sector, (l : Leader.t)) ->
      if Hashtbl.mem accepted_uids l.Leader.uid then ()
      else if tree_complete then
        (* The whole table survived and does not know this uid: the file
           was deleted; the leader is a stale husk. *)
        incr stale_leaders
      else if
        Fname.validate l.Leader.name <> Ok ()
        || l.Leader.version < 1
        || l.Leader.version > 999_999
      then incr conflicts
      else begin
        let key = Fname.key ~name:l.Leader.name ~version:l.Leader.version in
        let e = Leader.to_entry l ~anchor:sector in
        if Hashtbl.mem accepted key || not (try_claim e) then begin
          (* Lost to a newer claim on the key or the sectors. Keep the
             loser's unclaimed sectors out of the free pool. *)
          incr conflicts;
          List.iter
            (fun s ->
              if not (Hashtbl.mem claimed s) then begin
                Hashtbl.replace claimed s ();
                Hashtbl.replace quarantine s ()
              end)
            (entry_sectors e)
        end
        else begin
          Hashtbl.replace accepted key e;
          Hashtbl.replace accepted_uids e.Entry.uid ();
          incr entries_rebuilt
        end
      end)
    by_uid_desc;
  end_phase "merge";
  (* Phase 5: write everything back — fresh FNT, fresh VAM, empty log,
     clean boot page. The rebuilt volume boots with nothing to replay. *)
  let store = Fnt_store.create_fresh device layout in
  let tree = B.attach store in
  let sorted =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun k e acc -> (k, e) :: acc) accepted [])
  in
  let max_uid =
    List.fold_left
      (fun m (_, e) ->
        if Int64.compare e.Entry.uid m > 0 then e.Entry.uid else m)
      0L sorted
  in
  List.iter
    (fun (key, e) ->
      Simclock.advance clock params.Params.cpu_page_us;
      B.insert tree ~key ~value:(Entry.encode e))
    sorted;
  Fnt_store.bump_uid_floor store
    (if Int64.compare !uid_floor (Int64.add max_uid 1L) > 0 then !uid_floor
     else Int64.add max_uid 1L);
  Fnt_store.flush_anchor store;
  let vam = Vam.create_all_free layout in
  List.iter
    (fun (_, e) ->
      if e.Entry.anchor >= 0 then begin
        Vam.mark_allocated_for_rebuild vam e.Entry.anchor;
        Run_table.iter_sectors e.Entry.runs (Vam.mark_allocated_for_rebuild vam)
      end)
    sorted;
  Hashtbl.iter (fun s () -> Vam.mark_allocated_for_rebuild vam s) quarantine;
  Vam.save
    ~mode:(if params.Params.log_vam then Vam.Log_based else Vam.Snapshot)
    ~epoch:0L vam device;
  ignore (Vam.drain_dirty_chunks vam : int list);
  (* Physically erase the log body before formatting it. Record numbers
     restart after a format, so a stale record left in place could alias
     a future record number at the same offset and be replayed into the
     rebuilt volume. *)
  let zero = Bytes.make (64 * geom.Geometry.sector_bytes) '\000' in
  let body_lo = layout.Layout.log_start + 3 in
  let body_hi = layout.Layout.log_start + layout.Layout.log_sectors in
  let s = ref body_lo in
  while !s < body_hi do
    let n = min 64 (body_hi - !s) in
    Device.write_run device ~sector:!s
      (if n = 64 then zero else Bytes.make (n * geom.Geometry.sector_bytes) '\000');
    s := !s + n
  done;
  Log.format device layout;
  Boot_page.write device ~sector_bytes:geom.Geometry.sector_bytes
    {
      Boot_page.boot_count =
        (match bp with Some bp -> bp.Boot_page.boot_count | None -> 0);
      clean_shutdown = true;
      fnt_page_sectors = params.Params.fnt_page_sectors;
      fnt_pages = params.Params.fnt_pages;
      log_sectors = params.Params.log_sectors;
      log_vam = params.Params.log_vam;
      track_tolerant_log = params.Params.track_tolerant_log;
      shard_id = params.Params.shard_id;
    };
  end_phase "write-back";
  {
    entries_kept = !entries_kept;
    entries_rebuilt = !entries_rebuilt;
    stale_leaders = !stale_leaders;
    conflicts = !conflicts;
    quarantined_sectors = Hashtbl.length quarantine;
    fnt_pages_lost = !fnt_pages_lost;
    replayed_records = rec_info.Log.replayed_records;
    duration_us = Simclock.now clock - t0;
  }
