open Cedar_util
open Cedar_fsbase

type kind = Local | Cached of { server : string; last_used : int }

type t = {
  uid : int64;
  name : string;
  version : int;
  keep : int;
  byte_size : int;
  created : int;
  runs : Run_table.t;
  kind : kind;
}

let magic = 0x4c445232 (* "LDR2" *)

let of_entry ~name ~version (e : Entry.t) =
  {
    uid = e.Entry.uid;
    name;
    version;
    keep = e.Entry.keep;
    byte_size = e.Entry.byte_size;
    created = e.Entry.created;
    runs = e.Entry.runs;
    kind =
      (match e.Entry.kind with
      | Entry.Cached { server; last_used } -> Cached { server; last_used }
      | Entry.Local | Entry.Symlink _ -> Local);
  }

let to_entry t ~anchor =
  {
    Entry.uid = t.uid;
    keep = t.keep;
    byte_size = t.byte_size;
    created = t.created;
    runs = t.runs;
    anchor;
    kind =
      (match t.kind with
      | Local -> Entry.Local
      | Cached { server; last_used } -> Entry.Cached { server; last_used });
  }

let encode t ~sector_bytes =
  let w = Bytebuf.Writer.create () in
  Bytebuf.Writer.u32 w magic;
  Bytebuf.Writer.u64 w t.uid;
  Bytebuf.Writer.string w t.name;
  Bytebuf.Writer.u32 w t.version;
  Bytebuf.Writer.u16 w t.keep;
  Bytebuf.Writer.i64 w t.byte_size;
  Bytebuf.Writer.i64 w t.created;
  (match t.kind with
  | Local -> Bytebuf.Writer.u8 w 0
  | Cached { server; last_used } ->
    Bytebuf.Writer.u8 w 1;
    Bytebuf.Writer.string w server;
    Bytebuf.Writer.i64 w last_used);
  Run_table.encode w t.runs;
  (* Self-checksum so a torn or wild write is detectable. *)
  let body = Bytebuf.Writer.contents w in
  Bytebuf.Writer.u32 w (Crc32.bytes body);
  Bytebuf.Writer.to_sector w ~size:sector_bytes

let decode b =
  match
    let r = Bytebuf.Reader.of_bytes b in
    let m = Bytebuf.Reader.u32 r in
    if m <> magic then None
    else begin
      let uid = Bytebuf.Reader.u64 r in
      let name = Bytebuf.Reader.string r in
      let version = Bytebuf.Reader.u32 r in
      let keep = Bytebuf.Reader.u16 r in
      let byte_size = Bytebuf.Reader.i64 r in
      let created = Bytebuf.Reader.i64 r in
      let kind =
        match Bytebuf.Reader.u8 r with
        | 0 -> Local
        | 1 ->
          let server = Bytebuf.Reader.string r in
          let last_used = Bytebuf.Reader.i64 r in
          Cached { server; last_used }
        | n -> raise (Bytebuf.Decode_error (Printf.sprintf "bad leader kind %d" n))
      in
      let runs = Run_table.decode r in
      let body_len = Bytebuf.Reader.pos r in
      let crc = Bytebuf.Reader.u32 r in
      if crc <> Crc32.bytes ~pos:0 ~len:body_len b then None
      else Some { uid; name; version; keep; byte_size; created; runs; kind }
    end
  with
  | v -> v
  | exception Bytebuf.Decode_error _ -> None
  | exception Invalid_argument _ -> None

let matches t ~name ~version (e : Entry.t) =
  Int64.equal t.uid e.Entry.uid
  && String.equal t.name name
  && t.version = version
  && t.byte_size = e.Entry.byte_size
  && t.created = e.Entry.created
  && Run_table.equal t.runs e.Entry.runs
