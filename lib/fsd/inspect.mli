(** Read-only volume inspection — the debugfs/xfs_db of this repository.

    Everything here works from the on-disk state (plus a booted handle
    for the in-memory views) and writes human-readable reports; nothing
    is modified. Used by [cedar inspect] and handy when a test fails. *)

val log_report : Cedar_disk.Device.t -> Layout.t -> Format.formatter -> unit
(** The oldest-record pointer and every surviving record: number, body
    offset, total sectors, and the logged units. *)

val name_table_report : Fsd.t -> Format.formatter -> unit
(** B-tree shape (depth, pages, fill) and per-kind entry counts. *)

val robustness_report : Fsd.t -> Format.formatter -> unit
(** Scrub-demon and twin-repair counters. *)

val vam_report : Fsd.t -> Format.formatter -> unit
(** Free-space totals and the ten largest free extents per area. *)

val layout_report : Layout.t -> Format.formatter -> unit

val volume_report : Fsd.t -> string
(** All of the above for a booted volume. *)
