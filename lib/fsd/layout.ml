open Cedar_disk

type t = {
  geom : Geometry.t;
  params : Params.t;
  boot_a : int;
  boot_b : int;
  blackbox_start : int;
  blackbox_slot_sectors : int;
  blackbox_sectors : int;
  vam_start : int;
  vam_sectors : int;
  fnt_a_start : int;
  fnt_b_start : int;
  fnt_sectors : int;
  log_start : int;
  log_sectors : int;
  small_lo : int;
  small_hi : int;
  big_lo : int;
  big_hi : int;
}

let compute geom params =
  (match Params.validate geom params with
  | Ok () -> ()
  | Error m -> invalid_arg ("Layout.compute: " ^ m));
  let total = Geometry.total_sectors geom in
  let blackbox_start = 3 in
  let vam_start = blackbox_start + Params.blackbox_sectors in
  let vam_sectors = 1 + ((total + 4095) / 4096) in
  let small_lo = vam_start + vam_sectors in
  let fnt_sectors = params.Params.fnt_pages * params.Params.fnt_page_sectors in
  let block = (2 * fnt_sectors) + params.Params.log_sectors in
  let block_start = max ((total / 2) - (block / 2)) (small_lo + 1) in
  let fnt_a_start = block_start in
  let log_start = fnt_a_start + fnt_sectors in
  let fnt_b_start = log_start + params.Params.log_sectors in
  let block_end = fnt_b_start + fnt_sectors in
  if block_end >= total then invalid_arg "Layout.compute: volume too small";
  {
    geom;
    params;
    boot_a = 0;
    boot_b = 2;
    blackbox_start;
    blackbox_slot_sectors = Params.blackbox_slot_sectors;
    blackbox_sectors = Params.blackbox_sectors;
    vam_start;
    vam_sectors;
    fnt_a_start;
    fnt_b_start;
    fnt_sectors;
    log_start;
    log_sectors = params.Params.log_sectors;
    small_lo;
    small_hi = block_start;
    big_lo = block_end;
    big_hi = total;
  }

let fnt_sector_a t ~page =
  if page < 0 || page >= t.params.Params.fnt_pages then
    invalid_arg "Layout.fnt_sector_a";
  t.fnt_a_start + (page * t.params.Params.fnt_page_sectors)

let fnt_sector_b t ~page =
  if page < 0 || page >= t.params.Params.fnt_pages then
    invalid_arg "Layout.fnt_sector_b";
  t.fnt_b_start + (page * t.params.Params.fnt_page_sectors)

let is_data_sector t s =
  (s >= t.small_lo && s < t.small_hi) || (s >= t.big_lo && s < t.big_hi)

let data_sectors t = t.small_hi - t.small_lo + (t.big_hi - t.big_lo)

let blackbox_slot_sector t ~slot =
  if slot < 0 || slot >= Params.blackbox_slots then
    invalid_arg "Layout.blackbox_slot_sector";
  t.blackbox_start + (slot * t.blackbox_slot_sectors)

let pp ppf t =
  Format.fprintf ppf
    "boot %d/%d blackbox [%d,%d) vam [%d,%d) small [%d,%d) fntA [%d,%d) log [%d,%d) fntB [%d,%d) big [%d,%d)"
    t.boot_a t.boot_b t.blackbox_start
    (t.blackbox_start + t.blackbox_sectors)
    t.vam_start
    (t.vam_start + t.vam_sectors)
    t.small_lo t.small_hi t.fnt_a_start
    (t.fnt_a_start + t.fnt_sectors)
    t.log_start
    (t.log_start + t.log_sectors)
    t.fnt_b_start
    (t.fnt_b_start + t.fnt_sectors)
    t.big_lo t.big_hi
