open Cedar_disk

type t = {
  shard_id : int;
  commit_interval_us : int;
  fnt_page_sectors : int;
  fnt_pages : int;
  log_sectors : int;
  cache_pages : int;
  max_record_data_sectors : int;
  small_file_bytes : int;
  max_runs_per_file : int;
  default_keep : int;
  log_vam : bool;
  track_tolerant_log : bool;
  cpu_op_us : int;
  cpu_page_us : int;
  scrub_interval_us : int;
  scrub_pages_per_pass : int;
  scrub_leaders_per_pass : int;
  blackbox_every_n_forces : int;
  home_write_fill : float;
  home_writes_per_pass : int;
  monitor_interval_us : int;
  disk_sched : Device.policy;
  disk_qdepth : int;
}

(* Black-box flight-recorder region: two generation slots right after the
   boot pages, each one header sector plus a payload holding the tail of
   the event trace (DESIGN.md §11). Fixed size: the region must be
   findable before any other metadata is trusted. *)
let blackbox_slot_sectors = 16
let blackbox_slots = 2
let blackbox_sectors = blackbox_slot_sectors * blackbox_slots

let default =
  {
    shard_id = 0;
    commit_interval_us = 500_000;
    fnt_page_sectors = 4;
    fnt_pages = 4096;
    log_sectors = 1203; (* 3 pointer sectors + 3 x 400-sector thirds *)
    cache_pages = 128;
    max_record_data_sectors = 96;
    small_file_bytes = 4_000;
    max_runs_per_file = 40;
    default_keep = 2;
    log_vam = false;
    track_tolerant_log = false;
    cpu_op_us = 8_000;
    cpu_page_us = 150;
    scrub_interval_us = 2_000_000;
    scrub_pages_per_pass = 4;
    scrub_leaders_per_pass = 8;
    blackbox_every_n_forces = 1;
    home_write_fill = 0.5;
    home_writes_per_pass = 4;
    monitor_interval_us = 100_000;
    disk_sched = Device.Fifo;
    disk_qdepth = 0; (* no request queue; data I/O services at issue *)
  }

let for_geometry g =
  let total = Geometry.total_sectors g in
  if total >= Geometry.total_sectors Geometry.trident_t300 / 2 then default
  else begin
    (* Scale the metadata regions down for test volumes, keeping the same
       structure: the log must hold three thirds each able to take at
       least one maximal record. *)
    let fnt_page_sectors = 2 in
    let fnt_pages = max 32 (total / 64 / fnt_page_sectors) in
    let max_record_data_sectors = 16 in
    let third = max ((2 * max_record_data_sectors) + 5) (total / 48) in
    {
      default with
      fnt_page_sectors;
      fnt_pages;
      log_sectors = (3 * third) + 3;
      cache_pages = 64;
      max_record_data_sectors;
      max_runs_per_file = 16;
    }
  end

let validate g t =
  let total = Geometry.total_sectors g in
  let third = (t.log_sectors - 3) / 3 in
  let max_record =
    if t.track_tolerant_log then
      g.Geometry.sectors_per_track + t.max_record_data_sectors + 2
    else (2 * t.max_record_data_sectors) + 5
  in
  let fnt_sectors = t.fnt_pages * t.fnt_page_sectors in
  let vam_sectors = 1 + ((total + 4095) / 4096) in
  let metadata =
    3 + blackbox_sectors + vam_sectors + (2 * fnt_sectors) + t.log_sectors
  in
  if t.shard_id < 0 || t.shard_id > 255 then Error "shard_id outside u8 range"
  else if t.commit_interval_us < 0 then Error "negative commit interval"
  else if t.scrub_interval_us < 0 then Error "negative scrub interval"
  else if t.scrub_pages_per_pass < 0 || t.scrub_leaders_per_pass < 0 then
    Error "negative scrub batch size"
  else if t.blackbox_every_n_forces < 1 then
    Error "blackbox_every_n_forces must be at least 1"
  else if t.home_write_fill < 0.0 || t.home_write_fill > 1.0 then
    Error "home_write_fill outside [0, 1]"
  else if t.home_writes_per_pass < 0 then Error "negative home-write batch size"
  else if t.monitor_interval_us < 1 then
    Error "monitor_interval_us must be at least 1"
  else if t.disk_qdepth < 0 || t.disk_qdepth > 128 then
    Error "disk_qdepth outside [0, 128]"
  else if t.fnt_page_sectors < 1 || t.fnt_page_sectors > 16 then
    Error "fnt_page_sectors out of range"
  else if t.log_sectors < 3 + (3 * max_record) then
    Error
      (Printf.sprintf "log too small: each third (%d) must hold a max record (%d)"
         third max_record)
  else if t.max_record_data_sectors < t.fnt_page_sectors then
    Error "max_record_data_sectors below one FNT page"
  else if metadata * 2 > total then
    Error
      (Printf.sprintf "metadata (%d sectors) exceeds half the volume (%d)" metadata
         total)
  else if t.cache_pages < 8 then Error "cache too small"
  else Ok ()
