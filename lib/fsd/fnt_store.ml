open Cedar_util
open Cedar_disk
open Cedar_fsbase

type cached = {
  mutable payload : bytes;
  mutable dirty : bool;
  mutable modified : bool; (* changed since last logged *)
  mutable third : int option; (* where the image was last logged *)
  mutable dirtied_at : int; (* virtual time the page last became dirty *)
  mutable logged : bytes option;
      (* The committed image as last logged, retained from the moment the
         payload diverges from it. When the third holding that log copy
         is reclaimed, this — never the uncommitted payload — is what
         goes home; [None] while the payload itself is the logged image
         (or nothing is logged). *)
}

type anchor = {
  mutable root : int option;
  alloc_map : Bitmap.t; (* set = page slot in use *)
  mutable next_uid : int64;
}

type t = {
  device : Device.t;
  layout : Layout.t;
  cache : (int, cached) Lru.t;
  anchor : anchor;
  mutable note_dirty : int -> unit;
  mutable home_writes : int;
  mutable repairs : int;
  dirty_age : Stats.t; (* dirty-to-home-write latency per page flush *)
}

let trailer_bytes = 16
let page_magic = 0x464e5431 (* "FNT1" *)

let full_page_bytes layout =
  layout.Layout.params.Params.fnt_page_sectors
  * layout.Layout.geom.Geometry.sector_bytes

let page_bytes t = full_page_bytes t.layout - trailer_bytes

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)

let frame layout ~page payload =
  let full = full_page_bytes layout in
  if Bytes.length payload <> full - trailer_bytes then
    invalid_arg "Fnt_store.frame: payload size";
  let out = Bytes.make full '\000' in
  Bytes.blit payload 0 out 0 (Bytes.length payload);
  let w = Bytebuf.Writer.create ~initial:trailer_bytes () in
  Bytebuf.Writer.u32 w page_magic;
  Bytebuf.Writer.u32 w page;
  Bytebuf.Writer.u32 w (Crc32.bytes payload);
  Bytebuf.Writer.u32 w 0;
  Bytes.blit (Bytebuf.Writer.contents w) 0 out (full - trailer_bytes) trailer_bytes;
  out

let unframe layout ~page image =
  let full = full_page_bytes layout in
  if Bytes.length image <> full then None
  else begin
    let payload = Bytes.sub image 0 (full - trailer_bytes) in
    let r = Bytebuf.Reader.of_bytes ~pos:(full - trailer_bytes) image in
    match
      let m = Bytebuf.Reader.u32 r in
      let id = Bytebuf.Reader.u32 r in
      let crc = Bytebuf.Reader.u32 r in
      (m, id, crc)
    with
    | exception Bytebuf.Decode_error _ -> None
    | m, id, crc ->
      if m = page_magic && id = page && crc = Crc32.bytes payload then Some payload
      else None
  end

(* ------------------------------------------------------------------ *)
(* Anchor codec (page 0's payload)                                     *)

let anchor_magic = 0x414e4331 (* "ANC1" *)

let encode_anchor t =
  let w = Bytebuf.Writer.create () in
  Bytebuf.Writer.u32 w anchor_magic;
  (match t.anchor.root with
  | None -> Bytebuf.Writer.u32 w 0
  | Some r -> Bytebuf.Writer.u32 w (r + 1));
  Bytebuf.Writer.u64 w t.anchor.next_uid;
  Bytebuf.Writer.u32 w (Bitmap.length t.anchor.alloc_map);
  Bytebuf.Writer.raw w (Bitmap.to_bytes t.anchor.alloc_map);
  let b = Bytebuf.Writer.contents w in
  if Bytes.length b > page_bytes t then
    invalid_arg "Fnt_store: anchor exceeds one page; reduce fnt_pages";
  let out = Bytes.make (page_bytes t) '\000' in
  Bytes.blit b 0 out 0 (Bytes.length b);
  out

let decode_anchor payload =
  let r = Bytebuf.Reader.of_bytes payload in
  match
    let m = Bytebuf.Reader.u32 r in
    if m <> anchor_magic then None
    else begin
      let root = match Bytebuf.Reader.u32 r with 0 -> None | n -> Some (n - 1) in
      let next_uid = Bytebuf.Reader.u64 r in
      let bits = Bytebuf.Reader.u32 r in
      let map = Bitmap.of_bytes ~bits (Bytebuf.Reader.raw r ((bits + 7) / 8)) in
      Some { root; alloc_map = map; next_uid }
    end
  with
  | v -> v
  | exception Bytebuf.Decode_error _ -> None

(* ------------------------------------------------------------------ *)
(* Home I/O                                                            *)

let write_home_image device layout ~page image =
  if Bytes.length image <> full_page_bytes layout then
    invalid_arg "Fnt_store.write_home_image";
  Device.write_run device ~sector:(Layout.fnt_sector_a layout ~page) image;
  Device.write_run device ~sector:(Layout.fnt_sector_b layout ~page) image

(* Both copies are read and checked (§5.1); a lone bad copy is repaired.
   When both copies carry a valid checksum but disagree (a torn
   home-write pair, or a wild write that happens to re-frame), copy A is
   authoritative — home writes go A then B, so A is never the stale one —
   and B is rewritten from it. *)
let note_twin_repair t page =
  t.repairs <- t.repairs + 1;
  let tr = Device.trace t.device in
  if Cedar_obs.Trace.enabled tr then
    Cedar_obs.Trace.emit tr
      ~at:(Simclock.now (Device.clock t.device))
      (Cedar_obs.Trace.Scrub_repair { target = "fnt-twin"; loc = page })

let read_home t page =
  let n = t.layout.Layout.params.Params.fnt_page_sectors in
  let read_copy sector =
    match Device.read_run t.device ~sector ~count:n with
    | image -> unframe t.layout ~page image
    | exception Device.Error _ -> None
  in
  let sa = Layout.fnt_sector_a t.layout ~page in
  let sb = Layout.fnt_sector_b t.layout ~page in
  let a = read_copy sa and b = read_copy sb in
  match (a, b) with
  | Some pa, Some pb ->
    if not (Bytes.equal pa pb) then begin
      note_twin_repair t page;
      Device.write_run t.device ~sector:sb (frame t.layout ~page pa)
    end;
    pa
  | Some pa, None ->
    note_twin_repair t page;
    Device.write_run t.device ~sector:sb (frame t.layout ~page pa);
    pa
  | None, Some pb ->
    note_twin_repair t page;
    Device.write_run t.device ~sector:sa (frame t.layout ~page pb);
    pb
  | None, None ->
    Fs_error.raise_
      (Fs_error.Corrupt_metadata
         (Printf.sprintf "both copies of name-table page %d are bad" page))

(* Twin-copy read without a store (the scavenger probes pages of a
   volume it cannot attach). No repair side effects. *)
let try_read_home device layout ~page =
  let n = layout.Layout.params.Params.fnt_page_sectors in
  let read_copy sector =
    match Device.read_run device ~sector ~count:n with
    | image -> unframe layout ~page image
    | exception Device.Error _ -> None
  in
  match read_copy (Layout.fnt_sector_a layout ~page) with
  | Some p -> Some p
  | None -> read_copy (Layout.fnt_sector_b layout ~page)

(* One scrub-demon step: verify both home copies against their checksums
   and each other; rewrite a lone bad or stale copy from its twin. The
   cache is deliberately not consulted — a dirty page's home copies are
   legitimately old but must still agree with each other. *)
let scrub_page t page =
  let n = t.layout.Layout.params.Params.fnt_page_sectors in
  let read_copy sector =
    match Device.read_run t.device ~sector ~count:n with
    | image -> unframe t.layout ~page image
    | exception Device.Error _ -> None
  in
  let sa = Layout.fnt_sector_a t.layout ~page in
  let sb = Layout.fnt_sector_b t.layout ~page in
  let repair sector payload =
    t.repairs <- t.repairs + 1;
    Device.write_run t.device ~sector (frame t.layout ~page payload)
  in
  match (read_copy sa, read_copy sb) with
  | Some pa, Some pb ->
    if Bytes.equal pa pb then `Ok
    else begin
      repair sb pa;
      `Repaired
    end
  | Some pa, None ->
    repair sb pa;
    `Repaired
  | None, Some pb ->
    repair sa pb;
    `Repaired
  | None, None -> `Unreadable

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let mk device layout anchor =
  let t =
    {
      device;
      layout;
      cache = Lru.create ~capacity:layout.Layout.params.Params.cache_pages;
      anchor;
      note_dirty = (fun _ -> ());
      home_writes = 0;
      repairs = 0;
      dirty_age = Stats.create ();
    }
  in
  let m = Device.metrics device in
  Cedar_obs.Metrics.gauge m "fnt.home_writes" (fun () -> t.home_writes);
  Cedar_obs.Metrics.gauge m "fnt.repairs" (fun () -> t.repairs);
  Cedar_obs.Metrics.register_dist m "fnt.dirty_page_age_us" t.dirty_age;
  t

let create_fresh device layout =
  let map = Bitmap.create layout.Layout.params.Params.fnt_pages in
  Bitmap.set map 0; (* the anchor page itself *)
  mk device layout { root = None; alloc_map = map; next_uid = 1L }

let attach device layout =
  let t = mk device layout { root = None; alloc_map = Bitmap.create 1; next_uid = 1L } in
  let payload = read_home t 0 in
  match decode_anchor payload with
  | Some anchor ->
    let t' = mk device layout anchor in
    (* carry over a twin repair made while reading the anchor *)
    t'.repairs <- t.repairs;
    t'
  | None ->
    Fs_error.raise_ (Fs_error.Corrupt_metadata "name-table anchor does not decode")

let set_note_dirty t f = t.note_dirty <- f

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)

let insert_cache t page c =
  (* Evictions are always clean (dirty pages are pinned). *)
  ignore (Lru.add t.cache page c : (int * cached) list);
  if c.dirty then Lru.pin t.cache page

let read t page =
  match Lru.find t.cache page with
  | Some c -> Bytes.copy c.payload
  | None ->
    let payload = read_home t page in
    insert_cache t page
      {
        payload;
        dirty = false;
        modified = false;
        third = None;
        dirtied_at = 0;
        logged = None;
      };
    Bytes.copy payload

let write t page payload =
  if Bytes.length payload <> page_bytes t then invalid_arg "Fnt_store.write: size";
  let now = Simclock.now (Device.clock t.device) in
  (match Lru.peek t.cache page with
  | Some c ->
    (* First modification after a log commit: the payload about to be
       replaced is the committed logged image. Retain it — it is what
       must go home if its third reclaims before this change commits. *)
    if c.dirty && (not c.modified) && c.logged = None then c.logged <- Some c.payload;
    c.payload <- Bytes.copy payload;
    c.modified <- true;
    if not c.dirty then begin
      c.dirty <- true;
      c.third <- None;
      c.dirtied_at <- now;
      Lru.pin t.cache page
    end
  | None ->
    insert_cache t page
      {
        payload = Bytes.copy payload;
        dirty = true;
        modified = true;
        third = None;
        dirtied_at = now;
        logged = None;
      });
  t.note_dirty page

(* Anchor mutations are ordinary writes of page 0. *)
let write_anchor t = write t 0 (encode_anchor t)

let alloc t =
  match
    let map = t.anchor.alloc_map in
    let rec go i =
      if i >= Bitmap.length map then None
      else if not (Bitmap.get map i) then Some i
      else go (i + 1)
    in
    go 1
  with
  | None -> Fs_error.raise_ (Fs_error.Corrupt_metadata "name table out of pages")
  | Some page ->
    Bitmap.set t.anchor.alloc_map page;
    write_anchor t;
    page

let free t page =
  if page = 0 || not (Bitmap.get t.anchor.alloc_map page) then
    invalid_arg "Fnt_store.free";
  Bitmap.clear t.anchor.alloc_map page;
  Lru.remove t.cache page;
  write_anchor t

let get_root t = t.anchor.root

let set_root t r =
  t.anchor.root <- r;
  write_anchor t

let fresh_uid t =
  let uid = t.anchor.next_uid in
  t.anchor.next_uid <- Int64.add uid 1L;
  write_anchor t;
  uid

let next_uid_peek t = t.anchor.next_uid

let bump_uid_floor t uid =
  if Int64.compare uid t.anchor.next_uid > 0 then begin
    t.anchor.next_uid <- uid;
    write_anchor t
  end

let page_in_use t page =
  page >= 0
  && page < Bitmap.length t.anchor.alloc_map
  && Bitmap.get t.anchor.alloc_map page

(* ------------------------------------------------------------------ *)
(* Log integration                                                     *)

let framed_image t page =
  match Lru.peek t.cache page with
  | Some c -> frame t.layout ~page c.payload
  | None -> invalid_arg (Printf.sprintf "Fnt_store.framed_image: page %d not cached" page)

let mark_logged t pages ~third =
  List.iter
    (fun page ->
      match Lru.peek t.cache page with
      | Some c when c.dirty ->
        c.third <- Some third;
        c.modified <- false;
        (* The payload is now itself the committed image. *)
        c.logged <- None
      | Some _ | None -> ())
    pages

let home_write t page c =
  (* A diverged page homes its retained committed image; the newer,
     uncommitted payload stays dirty and pinned until its own commit. *)
  let diverged = c.modified && c.logged <> None in
  let image = match c.logged with Some l when c.modified -> l | _ -> c.payload in
  write_home_image t.device t.layout ~page (frame t.layout ~page image);
  let now = Simclock.now (Device.clock t.device) in
  let tr = Device.trace t.device in
  if Cedar_obs.Trace.enabled tr then
    Cedar_obs.Trace.emit tr ~at:now (Cedar_obs.Trace.Fnt_write_twice { page });
  t.home_writes <- t.home_writes + 1;
  c.third <- None;
  c.logged <- None;
  if not diverged then begin
    Stats.add t.dirty_age (float_of_int (now - c.dirtied_at));
    c.dirty <- false;
    c.modified <- false;
    Lru.unpin t.cache page
  end

(* Pages that claim [third] and could not be safely homed: modified since
   their last commit with no retained committed image. Writing their
   payload home would make uncommitted state durable while the log copy
   that could roll it back is destroyed — refuse instead. Unreachable
   while the retention protocol in [write] holds. *)
let stalled_in_third t third =
  let n = ref 0 in
  Lru.iter t.cache (fun _ c ->
      if c.dirty && c.third = Some third && c.modified && c.logged = None then incr n);
  !n

let flush_third t third =
  (match stalled_in_third t third with
  | 0 -> ()
  | pinned_pages ->
    Fs_error.raise_ (Fs_error.Log_reclaim_stall { third; pinned_pages }));
  let victims = ref [] in
  Lru.iter t.cache (fun page c ->
      if c.dirty && c.third = Some third then victims := (page, c) :: !victims);
  List.iter (fun (page, c) -> home_write t page c) !victims;
  List.length !victims

(* Bounded variant for the background home-write demon: flush up to
   [budget] pages claiming [third], lowest page first, skipping (rather
   than raising on) any stalled page — the synchronous reclaim at third
   entry remains the correctness backstop. *)
let flush_some_third t third ~budget =
  let victims = ref [] in
  Lru.iter t.cache (fun page c ->
      if c.dirty && c.third = Some third && not (c.modified && c.logged = None) then
        victims := (page, c) :: !victims);
  let victims = List.sort compare !victims in
  let n = ref 0 in
  List.iter
    (fun (page, c) ->
      if !n < budget then begin
        home_write t page c;
        incr n
      end)
    victims;
  !n

let flush_all_dirty t =
  let victims = ref [] in
  Lru.iter t.cache (fun page c -> if c.dirty then victims := (page, c) :: !victims);
  List.iter (fun (page, c) -> home_write t page c) !victims;
  List.length !victims

let dirty_pages t =
  let acc = ref [] in
  Lru.iter t.cache (fun page c -> if c.dirty then acc := page :: !acc);
  List.sort compare !acc

let pages_to_log t =
  let acc = ref [] in
  Lru.iter t.cache (fun page c -> if c.dirty && c.modified then acc := page :: !acc);
  List.sort compare !acc

let cached_pages t = Lru.size t.cache

let drop_clean_cache t =
  let clean = ref [] in
  Lru.iter t.cache (fun page c -> if not c.dirty then clean := page :: !clean);
  List.iter (Lru.remove t.cache) !clean

let flush_anchor t =
  write_anchor t;
  ignore (flush_all_dirty t : int)

let home_writes t = t.home_writes
let repairs t = t.repairs
