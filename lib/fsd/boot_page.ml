open Cedar_util
open Cedar_disk

type t = {
  boot_count : int;
  clean_shutdown : bool;
  fnt_page_sectors : int;
  fnt_pages : int;
  log_sectors : int;
  log_vam : bool;
  track_tolerant_log : bool;
  shard_id : int;
}

let magic = 0x42544631 (* "BTF1" *)

let encode t ~sector_bytes =
  let w = Bytebuf.Writer.create () in
  Bytebuf.Writer.u32 w magic;
  Bytebuf.Writer.u32 w t.boot_count;
  Bytebuf.Writer.bool w t.clean_shutdown;
  Bytebuf.Writer.u16 w t.fnt_page_sectors;
  Bytebuf.Writer.u32 w t.fnt_pages;
  Bytebuf.Writer.u32 w t.log_sectors;
  Bytebuf.Writer.bool w t.log_vam;
  Bytebuf.Writer.bool w t.track_tolerant_log;
  Bytebuf.Writer.u8 w t.shard_id;
  let body = Bytebuf.Writer.contents w in
  Bytebuf.Writer.u32 w (Crc32.bytes body);
  Bytebuf.Writer.to_sector w ~size:sector_bytes

let decode b =
  match
    let r = Bytebuf.Reader.of_bytes b in
    let m = Bytebuf.Reader.u32 r in
    if m <> magic then None
    else begin
      let boot_count = Bytebuf.Reader.u32 r in
      let clean_shutdown = Bytebuf.Reader.bool r in
      let fnt_page_sectors = Bytebuf.Reader.u16 r in
      let fnt_pages = Bytebuf.Reader.u32 r in
      let log_sectors = Bytebuf.Reader.u32 r in
      let log_vam = Bytebuf.Reader.bool r in
      let track_tolerant_log = Bytebuf.Reader.bool r in
      let shard_id = Bytebuf.Reader.u8 r in
      let body_len = Bytebuf.Reader.pos r in
      let crc = Bytebuf.Reader.u32 r in
      if crc <> Crc32.bytes ~pos:0 ~len:body_len b then None
      else
        Some
          {
            boot_count;
            clean_shutdown;
            fnt_page_sectors;
            fnt_pages;
            log_sectors;
            log_vam;
            track_tolerant_log;
            shard_id;
          }
    end
  with
  | v -> v
  | exception Bytebuf.Decode_error _ -> None

let write device ~sector_bytes t =
  let page = encode t ~sector_bytes in
  let buf = Bytes.make (3 * sector_bytes) '\000' in
  Bytes.blit page 0 buf 0 sector_bytes;
  Bytes.blit page 0 buf (2 * sector_bytes) sector_bytes;
  Device.write_run device ~sector:0 buf

let read device =
  let try_at s =
    match Device.read device s with
    | b -> decode b
    | exception Device.Error _ -> None
  in
  match try_at 0 with Some t -> Some t | None -> try_at 2
