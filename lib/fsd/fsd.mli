(** FSD — the reimplemented Cedar file system (the paper's contribution).

    All name-table and leader-page updates go through a physical redo log
    forced every half second of virtual time (group commit); file creation
    costs one synchronous combined leader+data write; open, delete, list
    and property changes normally cost no I/O at all. The free-page map is
    volatile. Crash recovery replays the log (seconds) and, when the VAM
    was not saved cleanly, reconstructs it from the name table.

    All operations raise {!Cedar_fsbase.Fs_error.Fs_error} on failure. *)

type t

type vam_source =
  | Vam_loaded  (** clean snapshot from the save area *)
  | Vam_reconstructed  (** rebuilt by scanning the name table *)
  | Vam_replayed
      (** VAM-logging extension: saved base plus logged chunk images *)

type boot_report = {
  boot_count : int;
  replayed_records : int;
  replayed_pages : int;  (** page images written home by recovery *)
  corrected_sectors : int;
  skipped_leaders : int;
      (** logged leader images dropped because the name table no longer
          references their sector (the file was deleted and the sector
          possibly reused — writing would risk data) *)
  vam_source : vam_source;
  log_replay_us : int;
  vam_us : int;
  total_us : int;
}

type counters = {
  mutable ops : int;
  mutable forces : int;
  mutable empty_forces : int;
  mutable leader_piggybacks : int;  (** leader reads combined with data *)
  mutable leader_home_writes : int;  (** written by the logging code *)
  mutable vam_base_rewrites : int;
      (** VAM-logging extension: full base images written at third
          entries to retire stale chunk records *)
  mutable scrub_passes : int;  (** scrub-demon wakeups so far *)
  mutable scrub_fnt_repairs : int;
      (** FNT home copies rewritten from their twin by the scrubber *)
  mutable scrub_leader_repairs : int;
      (** leaders rewritten from the name table by the scrubber *)
  mutable home_write_bursts : int;
      (** background home-write passes that wrote at least one page or
          leader ahead of the next third entry *)
  mutable reclaim_stalls : int;
      (** third reclamations refused with [Log_reclaim_stall] because a
          modified page held no committed image *)
}

(** {1 Lifecycle} *)

val format : Cedar_disk.Device.t -> Params.t -> unit
(** Initialise an empty volume (boot pages, anchor, log, clean VAM). *)

val boot : ?params:Params.t -> Cedar_disk.Device.t -> t * boot_report
(** Run recovery and attach. [params] supplies runtime knobs; the
    layout-defining fields are taken from the boot page. Raises
    [Fs_error Corrupt_metadata] on unrecoverable name-table damage —
    prefer {!try_boot} when the caller can scavenge. *)

val try_boot :
  ?params:Params.t ->
  Cedar_disk.Device.t ->
  [ `Ok of t * boot_report | `Needs_scavenge of string ]
(** Like {!boot}, but damage the log cannot repair (both copies of an FNT
    page lost, an undecodable anchor) yields [`Needs_scavenge reason]
    instead of an exception; run {!Scavenge.run} and boot again. *)

val shutdown : t -> unit
(** Controlled shutdown: force, write everything home, save the VAM. *)

val is_live : t -> bool

(** {1 Files}

    [name] operations address the newest version unless stated. *)

val create : t -> name:string -> ?keep:int -> bytes -> Cedar_fsbase.Fs_ops.info
val create_empty : t -> name:string -> ?keep:int -> pages:int -> unit -> Cedar_fsbase.Fs_ops.info
(** Allocates space without writing data (the leader is logged and later
    written by the logging code — §5.3's non-piggybacked path). *)

val open_stat : t -> name:string -> Cedar_fsbase.Fs_ops.info
val exists : t -> name:string -> bool
val read_all : t -> name:string -> bytes
(** Dereferences a symlink one level. *)

val read_page : t -> name:string -> page:int -> bytes
val write_page : t -> name:string -> page:int -> bytes -> unit
val extend : t -> name:string -> pages:int -> unit
val contract : t -> name:string -> pages:int -> unit
(** Truncate to [pages] data pages. *)

val rename : t -> from_:string -> to_:string -> unit
(** Move the newest version of [from_] to (a fresh) [to_]. Pure metadata:
    the removal and insertion commit together in one log record. Fails if
    [to_] exists. *)

val copy : t -> from_:string -> to_:string -> Cedar_fsbase.Fs_ops.info
(** Duplicate the newest version's contents as a new file (fresh uid,
    leader, and pages). *)

val delete : t -> name:string -> unit
val delete_version : t -> name:string -> version:int -> unit
val set_keep : t -> name:string -> keep:int -> unit
val list : t -> prefix:string -> Cedar_fsbase.Fs_ops.info list
val versions : t -> name:string -> int list

(** {1 Remote-file entries (§4: symlinks and cached copies)} *)

val create_symlink : t -> name:string -> target:string -> unit
val readlink : t -> name:string -> string option
val import_cached :
  t -> name:string -> server:string -> bytes -> Cedar_fsbase.Fs_ops.info
val touch_cached : t -> name:string -> unit
(** Update the cached copy's last-used time — pure metadata, absorbed by
    group commit (§5.4's example). *)

val last_used : t -> name:string -> int option

(** {1 Commit and time} *)

val force : t -> unit
(** Client-requested log force (§5.4: "clients may force the log"). *)

val tick : t -> us:int -> unit
(** Advance virtual time (idle workstation), then {!run_due_demons}. *)

val run_due_demons : t -> unit
(** Fire every demon whose interval has elapsed at the current virtual
    time: the commit demon (group-commit force), the background
    home-write demon (once the current third passes
    [Params.home_write_fill], pre-flush up to [home_writes_per_pass]
    pages/leaders whose survival horizon is the next third, traced as
    [Home_write_burst]), and the scrub demon — each scrub pass verifies
    a few FNT page pairs (both copies, by checksum) and a few leaders,
    repairing lone bad copies in place (counted in {!counters}).
    [tick us] is [advance us] plus this; external schedulers call it
    through {!Demons.run_due} so demons fire identically whether or not
    a server owns the clock. *)

(** {1 Submission (server scheduler interface)}

    A concurrent server executes each client operation through {!submit}
    and parks the client until the returned token is durable — the
    paper's "process doing the commit waits" (§5.4), extended to every
    transactional operation. While the closure runs, the interval-driven
    commit demon is suppressed (the server's batcher owns commit timing);
    the bulk trigger that keeps one force equal to one atomic log record
    stays armed. *)

type token
(** Completion token: durable once a force covering every mutation the
    submitted operation made has completed. *)

val always_durable : token
(** The token of an operation that mutated nothing (reads, stats). *)

val submit : t -> (unit -> 'a) -> 'a * token
(** Run one operation with interval-commit suppressed; returns its result
    and completion token. Exceptions propagate (with the commit mode
    restored). *)

val token_durable : t -> token -> bool
val mutation_seq : t -> int
(** Sequence number of the newest metadata mutation. *)

val durable_seq : t -> int
(** Mutation sequence covered by the last completed force;
    [token_durable] is [durable_seq >= token]. *)

val log_third_fill : t -> float
(** Fraction of the current log third already consumed, in [0,1] — the
    batcher's backpressure signal: near 1.0 the next force enters a fresh
    third, evicting that third's logged pages. Reads exactly 1.0 (never
    wrapping early to 0.0) while the head sits on a third boundary,
    since the entry happens only on the next append. *)

val commit_due_at : t -> int
(** Virtual time at which the half-second commit demon next fires
    (last force time + [commit_interval_us]) — what a scheduler that
    owns the clock sleeps toward when every session is parked. *)

val save_vam : t -> unit
(** Idle-period VAM save (valid until the next metadata mutation). *)

(** {1 Telemetry monitor}

    A {!Cedar_obs.Monitor} sampling the metrics registry on the
    [Params.monitor_interval_us] cadence, polled from
    {!run_due_demons} and at op boundaries. Off by default; while off
    the polls cost one branch on an option and allocate nothing, the
    same discipline as the trace. *)

val enable_monitor :
  ?ring:int -> ?window:int -> ?interval_us:int -> t -> Cedar_obs.Monitor.t
(** Attach (or replace) the telemetry monitor and return it.
    [interval_us] defaults to [Params.monitor_interval_us]; [ring] and
    [window] are passed to {!Cedar_obs.Monitor.create}. Beyond the
    registry's raw counters and gauges, every sample computes the
    derived saturation gauges:

    - [sat.device_busy] — device busy-us this interval / interval;
    - [sat.log_third_fill] — {!log_third_fill} at sample time;
    - [sat.queue_depth] — the server admission queue depth gauge;
    - [sat.ops_per_force] — acked server ops per non-empty force this
      interval (batcher occupancy), 0 when no force landed;
    - [sat.op_rate_s] — FSD ops per second;
    - [sat.reject_rate_s], [sat.retry_rate_s], [sat.dropped_rate_s] —
      admission rejects (both kinds), retries and drops per second;
    - [sat.reclaim_stall_rate_s], [sat.home_write_burst_rate_s];

    and watches the [server.commit_wait_us] and [fsd.op_us]
    distributions for sliding-window p50/p90/p99. Server-side names
    read as zero until a server registers them. *)

val disable_monitor : t -> unit
val monitor : t -> Cedar_obs.Monitor.t option

(** {1 Introspection} *)

val ops : t -> Cedar_fsbase.Fs_ops.t
val layout : t -> Layout.t
val params : t -> Params.t
(** The runtime parameters the volume booted with. *)

val shard : t -> int
(** The shard id the volume was formatted as (from the boot page via
    [params]); 0 for a standalone volume. *)

val device : t -> Cedar_disk.Device.t
val free_sectors : t -> int

val counters : t -> counters
(** Compatibility snapshot of the registry-backed FSD counters
    (registered under ["fsd.*"] in {!metrics}); a fresh record each
    call, zeroed at every boot. *)

val counters_json : t -> Cedar_obs.Jsonb.t
(** Machine-readable counterpart of {!counters}. *)

val trace : t -> Cedar_obs.Trace.t
(** The volume's event trace (shared with {!Cedar_disk.Device.trace});
    enable it before driving operations to record spans and events. *)

val metrics : t -> Cedar_obs.Metrics.t
(** The volume's metrics registry, holding the FSD counters plus the
    gauges registered by the device, log and name-table store. *)

val log_stats : t -> Log.stats
val fnt_home_writes : t -> int
val fnt_repairs : t -> int
val fnt_stats : t -> Cedar_btree.Btree.stats
(** Shape of the name-table B-tree. *)

val fold_entries :
  t ->
  init:'a ->
  f:('a -> name:string -> version:int -> Cedar_fsbase.Entry.t -> 'a) ->
  'a
(** Fold over every name-table entry in key order. *)

val sector_is_free : t -> int -> bool

val drop_caches : t -> unit
(** Write dirty name-table pages home and evict the whole cache
    (cold-cache benchmarking). *)

val check : t -> (unit, string) result
(** Structural check: B-tree invariants plus leader/name-table mutual
    checks for every file. *)
