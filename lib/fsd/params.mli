(** FSD tuning parameters.

    Layout-affecting fields ([fnt_page_sectors], [fnt_pages],
    [log_sectors]) are stamped into the boot page at format time and read
    back on boot; the rest are runtime knobs. *)

type t = {
  shard_id : int;
      (** which shard of a multi-volume set this volume serves, in
          [0, 255]; stamped into the boot page at format time and into
          every log record header, so a reboot re-derives it and
          recovery rejects another shard's leftovers. 0 — the only
          value a single-volume deployment ever sees — preserves the
          historical on-disk behaviour. *)
  commit_interval_us : int;
      (** group-commit force period; the paper forces twice a second *)
  fnt_page_sectors : int;  (** sectors per name-table page *)
  fnt_pages : int;  (** name-table page slots (per copy) *)
  log_sectors : int;  (** log region size, incl. 3 pointer sectors *)
  cache_pages : int;  (** FNT cache capacity (unpinned pages) *)
  max_record_data_sectors : int;
      (** cap on data sectors per log record; larger commits are split *)
  small_file_bytes : int;  (** files at most this big use the small area *)
  max_runs_per_file : int;
  default_keep : int;  (** versions kept per name; 0 = unlimited *)
  log_vam : bool;
      (** the extension §5.3 weighs and rejects: also log VAM changes, so
          recovery can skip the name-table scan ("would greatly decrease
          worst case crash recovery time from about twenty five seconds
          to about two seconds"). Off by default, as in the paper. *)
  track_tolerant_log : bool;
      (** §3's "more stringent requirements (e.g., loss of a whole track)
          can be met within the framework": log records place every
          element's copy a full track after its primary, so losing any
          [sectors_per_track] consecutive sectors is survivable. Costs
          more log space for small records; caps records at
          [sectors_per_track - 2] data sectors. Off by default. *)
  cpu_op_us : int;  (** CPU charge per metadata operation *)
  cpu_page_us : int;  (** CPU charge per page moved or scanned *)
  scrub_interval_us : int;
      (** online scrub demon period; each expiry while the volume idles
          verifies a few FNT page pairs and leaders. 0 disables. *)
  scrub_pages_per_pass : int;  (** FNT page pairs verified per pass *)
  scrub_leaders_per_pass : int;  (** leaders verified per pass *)
  blackbox_every_n_forces : int;
      (** checkpoint the black-box flight recorder every this many
          non-empty forces (1 = every force, the historical behavior).
          High-client-count runs force often; a larger cadence keeps the
          recorder's I/O out of the commit path most of the time. Clean
          shutdown always checkpoints regardless. *)
  home_write_fill : float;
      (** once the current log third is at least this full, the
          background demon starts pre-flushing dirty pages whose
          survival horizon is the next third, in bounded batches between
          group commits — so reclamation at the third entry finds little
          synchronous work left. 1.0 disables the demon (entry-time
          reclamation remains). *)
  home_writes_per_pass : int;
      (** page/leader home-write budget per background demon pass; 0
          disables the demon. *)
  monitor_interval_us : int;
      (** telemetry sampling cadence for the monitor demon once it is
          enabled via [Fsd.enable_monitor]; the demon itself is off by
          default and costs one branch per demon dispatch while off.
          Must be at least 1. *)
  disk_sched : Cedar_disk.Device.policy;
      (** request-queue service policy applied when [disk_qdepth] ≥ 2
          ([Fifo] | [Elevator] | [Sstf]); irrelevant while the queue is
          off. *)
  disk_qdepth : int;
      (** device request-queue depth, applied to the device at the end
          of boot via [Device.set_queue]. 0 (default) leaves the queue
          off — every command services at issue, the historical
          behaviour; 1 is pinned byte-identical to 0; ≥ 2 lets that
          many commands (data, label, log, and background home writes
          alike) float outstanding and be serviced in [disk_sched]
          order. In [0, 128]. *)
}

val blackbox_slot_sectors : int
(** Sectors per black-box flight-recorder slot: one CRC'd header sector
    plus payload sectors holding the tail of the event trace. *)

val blackbox_slots : int
(** Number of alternating black-box generation slots (two, so a torn
    checkpoint write never destroys the previous generation). *)

val blackbox_sectors : int
(** Total sectors reserved for the black-box region after the boot
    pages ([blackbox_slot_sectors * blackbox_slots]). Fixed — not a
    tuning field — so [cedar blackbox] can find it before any other
    metadata is trusted. *)

val default : t
(** Sized for {!Cedar_disk.Geometry.trident_t300}. *)

val for_geometry : Cedar_disk.Geometry.t -> t
(** [default] rescaled so the metadata regions fit small test volumes. *)

val validate : Cedar_disk.Geometry.t -> t -> (unit, string) result
