(** The FSD scavenger of last resort.

    Log replay ({!Fsd.boot}) handles crashes; the doubly-written FNT and
    the per-page checksums handle single-copy damage. What neither
    handles is losing {e both} copies of a name-table page — the case the
    leader pages exist for (§5.1: the leader and the name table are "a
    mutually checking data structure … to make scavenging possible").

    The scavenger rebuilds the volume's metadata from whatever survives:

    + replay the log (committed FNT and leader images go home);
    + salvage every entry still reachable in the surviving FNT pages;
    + scan the data areas for leader pages (each leader mirrors its
      file's complete entry under a checksum) and rebuild the entries
      whose FNT pages were lost;
    + resolve conflicts — two claims on one key or one sector lose to
      the {e newer} uid; the loser's sectors are quarantined (kept
      allocated, referenced by nothing) rather than handed out again;
    + drop stale leaders of deleted files when the surviving name table
      is complete enough to prove the deletion;
    + write a fresh FNT, VAM, empty log, and clean boot page.

    After {!run} the volume boots cleanly with nothing to replay. Files
    whose leader {e and} FNT entry are both lost keep their data sectors
    on disk but are unreachable (counted neither recovered nor
    quarantined — nothing on the volume names them); symbolic links whose
    FNT page died are gone, as in CFS (they live only in the table). *)

type report = {
  entries_kept : int;  (** salvaged from surviving FNT pages *)
  entries_rebuilt : int;  (** reconstructed from leader pages *)
  stale_leaders : int;  (** leaders of provably deleted files, dropped *)
  conflicts : int;  (** key/sector claims that lost to a newer uid *)
  quarantined_sectors : int;
      (** sectors of conflicting claims: left allocated, owned by nothing *)
  fnt_pages_lost : int;  (** page pairs with both copies bad *)
  replayed_records : int;  (** committed log records applied first *)
  duration_us : int;
}

val run : Cedar_disk.Device.t -> report
(** Rebuild the volume's metadata in place. Always succeeds in producing
    a bootable volume (an empty one, in the worst case); never raises on
    damage. Call {!Fsd.boot} afterwards. *)

val pp_report : Format.formatter -> report -> unit
