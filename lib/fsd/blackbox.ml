open Cedar_util
open Cedar_disk
module Trace = Cedar_obs.Trace
module Jsonb = Cedar_obs.Jsonb
module W = Bytebuf.Writer
module R = Bytebuf.Reader

type state = {
  gen : int64;
  at_us : int;
  reason : string;
  boot_count : int;
  next_record_no : int64;
  log_write_off : int;
  log_third : int;
  free_sectors : int;
  pending_leaders : int;
  dirty_fnt_pages : int;
}

type checkpoint = {
  slot : int;
  state : state;
  in_flight : (string * string * int) list;
  events : Trace.entry list;
}

let header_magic = 0x43424231 (* "CBB1" *)
let version = 1

(* The header carries everything needed to judge the slot: the state
   snapshot itself, the payload length and CRC (a torn slot write leaves
   a stale or zeroed tail, which the payload CRC catches), and its own
   CRC (a torn or damaged header sector). *)

type header = {
  h_state : state;
  h_event_count : int;
  h_payload_len : int;
  h_payload_crc : int;
}

let encode_header ~sector_bytes h =
  let s = h.h_state in
  let w = W.create () in
  W.u32 w header_magic;
  W.u8 w version;
  W.u64 w s.gen;
  W.i64 w s.at_us;
  W.string w s.reason;
  W.u32 w s.boot_count;
  W.u64 w s.next_record_no;
  W.u32 w s.log_write_off;
  W.u8 w s.log_third;
  W.u32 w s.free_sectors;
  W.u16 w s.pending_leaders;
  W.u16 w s.dirty_fnt_pages;
  W.u16 w h.h_event_count;
  W.u32 w h.h_payload_len;
  W.u32 w h.h_payload_crc;
  W.u32 w (Crc32.bytes (W.contents w));
  W.to_sector w ~size:sector_bytes

let decode_header img =
  let r = R.of_bytes img in
  match
    let magic = R.u32 r in
    if magic <> header_magic then None
    else if R.u8 r <> version then None
    else begin
      let gen = R.u64 r in
      let at_us = R.i64 r in
      let reason = R.string r in
      let boot_count = R.u32 r in
      let next_record_no = R.u64 r in
      let log_write_off = R.u32 r in
      let log_third = R.u8 r in
      let free_sectors = R.u32 r in
      let pending_leaders = R.u16 r in
      let dirty_fnt_pages = R.u16 r in
      let h_event_count = R.u16 r in
      let h_payload_len = R.u32 r in
      let h_payload_crc = R.u32 r in
      let body = R.pos r in
      let crc = R.u32 r in
      if crc <> Crc32.bytes (Bytes.sub img 0 body) then None
      else
        Some
          {
            h_state =
              {
                gen;
                at_us;
                reason;
                boot_count;
                next_record_no;
                log_write_off;
                log_third;
                free_sectors;
                pending_leaders;
                dirty_fnt_pages;
              };
            h_event_count;
            h_payload_len;
            h_payload_crc;
          }
    end
  with
  | v -> v
  | exception Bytebuf.Decode_error _ -> None

let sector_bytes device = (Device.geometry device).Geometry.sector_bytes

(* ------------------------------------------------------------------ *)
(* Writing a checkpoint                                                 *)

let write device layout ~slot ~state ~in_flight ~entries =
  let sb = sector_bytes device in
  let slot_sectors = layout.Layout.blackbox_slot_sectors in
  let cap = (slot_sectors - 1) * sb in
  let wif = W.create () in
  W.u16 wif (List.length in_flight);
  List.iter
    (fun (op, name, t0) ->
      W.string wif op;
      W.string wif name;
      W.i64 wif t0)
    in_flight;
  let in_flight_bytes = W.contents wif in
  let budget = cap - Bytes.length in_flight_bytes in
  (* Keep the newest events that fit, encoding newest-backwards; the
     kept suffix is then laid out oldest first. *)
  let rec keep acc used = function
    | [] -> acc
    | e :: rest ->
      let w = W.create () in
      Trace.encode_entry w e;
      let b = W.contents w in
      let used = used + Bytes.length b in
      if used > budget then acc else keep (b :: acc) used rest
  in
  let kept = keep [] 0 (List.rev entries) in
  let wp = W.create () in
  W.raw wp in_flight_bytes;
  List.iter (W.raw wp) kept;
  let payload = W.contents wp in
  let header =
    encode_header ~sector_bytes:sb
      {
        h_state = state;
        h_event_count = List.length kept;
        h_payload_len = Bytes.length payload;
        h_payload_crc = Crc32.bytes payload;
      }
  in
  let img = Bytes.make (slot_sectors * sb) '\000' in
  Bytes.blit header 0 img 0 sb;
  Bytes.blit payload 0 img sb (Bytes.length payload);
  (* One command for the whole slot: a crash mid-command leaves this
     slot torn (caught by CRC) and the other slot untouched. *)
  Device.write_run device ~sector:(Layout.blackbox_slot_sector layout ~slot) img;
  List.length kept

(* ------------------------------------------------------------------ *)
(* Reading                                                              *)

let rec read_n acc n f r = if n = 0 then List.rev acc else read_n (f r :: acc) (n - 1) f r

let slot_image device layout slot =
  match
    Device.read_run device
      ~sector:(Layout.blackbox_slot_sector layout ~slot)
      ~count:layout.Layout.blackbox_slot_sectors
  with
  | exception Device.Error _ -> None
  | img -> Some img

let checkpoint_of_image ~sb ~slot_sectors slot img =
  match decode_header img with
  | None -> None
  | Some h ->
    if h.h_payload_len < 0 || h.h_payload_len > (slot_sectors - 1) * sb then None
    else begin
      let payload = Bytes.sub img sb h.h_payload_len in
      if Crc32.bytes payload <> h.h_payload_crc then None
      else begin
        match
          let r = R.of_bytes payload in
          let n = R.u16 r in
          let in_flight =
            read_n [] n
              (fun r ->
                let op = R.string r in
                let name = R.string r in
                let t0 = R.i64 r in
                (op, name, t0))
              r
          in
          let events = read_n [] h.h_event_count Trace.decode_entry r in
          (in_flight, events)
        with
        | exception Bytebuf.Decode_error _ -> None
        | in_flight, events -> Some { slot; state = h.h_state; in_flight; events }
      end
    end

let read_slot device layout slot =
  match slot_image device layout slot with
  | None -> None
  | Some img ->
    checkpoint_of_image ~sb:(sector_bytes device)
      ~slot_sectors:layout.Layout.blackbox_slot_sectors slot img

let read device layout =
  match (read_slot device layout 0, read_slot device layout 1) with
  | None, None -> Error "no valid black-box checkpoint in either slot"
  | Some c, None | None, Some c -> Ok c
  | Some a, Some b ->
    Ok (if Int64.compare a.state.gen b.state.gen >= 0 then a else b)

let probe device layout =
  (* The next generation must exceed anything ever written, including a
     torn slot whose header survived; the next slot overwrites the torn
     (or older) slot, never the newest fully-valid checkpoint. One read
     per slot — the header and validity checks share the image. *)
  let sb = sector_bytes device in
  let slot_sectors = layout.Layout.blackbox_slot_sectors in
  let probe_slot slot =
    match slot_image device layout slot with
    | None -> (None, None)
    | Some img ->
      ( Option.map (fun h -> h.h_state.gen) (decode_header img),
        checkpoint_of_image ~sb ~slot_sectors slot img )
  in
  let g0, c0 = probe_slot 0 in
  let g1, c1 = probe_slot 1 in
  let max_gen =
    List.fold_left
      (fun acc g -> match g with Some g when Int64.compare g acc > 0 -> g | _ -> acc)
      0L [ g0; g1 ]
  in
  let next_slot =
    match (c0, c1) with
    | None, None -> 0
    | Some _, None -> 1
    | None, Some _ -> 0
    | Some a, Some b -> if Int64.compare a.state.gen b.state.gen >= 0 then 1 else 0
  in
  (Int64.add max_gen 1L, next_slot)

let format device layout =
  let sb = sector_bytes device in
  Device.write_run device ~sector:layout.Layout.blackbox_start
    (Bytes.make (layout.Layout.blackbox_sectors * sb) '\000')

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

let ms us = float_of_int us /. 1000.

let take_last n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let pp ?limit ppf c =
  let s = c.state in
  Format.fprintf ppf "black box: gen %Ld (slot %d), written t=%.3fms, reason %s, boot %d@."
    s.gen c.slot (ms s.at_us) s.reason s.boot_count;
  Format.fprintf ppf "  log: next record %Ld, write offset %d sectors, active third %d@."
    s.next_record_no s.log_write_off s.log_third;
  Format.fprintf ppf "  vam: %d free sectors; %d pending leader writes; %d dirty fnt pages@."
    s.free_sectors s.pending_leaders s.dirty_fnt_pages;
  (match c.in_flight with
  | [] -> Format.fprintf ppf "  in-flight: none@."
  | spans ->
    Format.fprintf ppf "  in-flight (innermost first):@.";
    List.iter
      (fun (op, name, t0) ->
        Format.fprintf ppf "    %s %S since t=%.3fms@." op name (ms t0))
      spans);
  let shown = match limit with None -> c.events | Some n -> take_last n c.events in
  Format.fprintf ppf "  last %d of %d checkpointed events:@." (List.length shown)
    (List.length c.events);
  List.iter (fun e -> Format.fprintf ppf "    %a@." Trace.pp_entry e) shown

let to_json ?limit c =
  let s = c.state in
  let shown = match limit with None -> c.events | Some n -> take_last n c.events in
  Jsonb.Obj
    [
      ("gen", Jsonb.Int (Int64.to_int s.gen));
      ("slot", Jsonb.Int c.slot);
      ("at_us", Jsonb.Int s.at_us);
      ("reason", Jsonb.Str s.reason);
      ("boot_count", Jsonb.Int s.boot_count);
      ("next_record_no", Jsonb.Int (Int64.to_int s.next_record_no));
      ("log_write_off", Jsonb.Int s.log_write_off);
      ("log_third", Jsonb.Int s.log_third);
      ("free_sectors", Jsonb.Int s.free_sectors);
      ("pending_leaders", Jsonb.Int s.pending_leaders);
      ("dirty_fnt_pages", Jsonb.Int s.dirty_fnt_pages);
      ( "in_flight",
        Jsonb.Arr
          (List.map
             (fun (op, name, t0) ->
               Jsonb.Obj
                 [
                   ("op", Jsonb.Str op);
                   ("name", Jsonb.Str name);
                   ("since_us", Jsonb.Int t0);
                 ])
             c.in_flight) );
      ("events_total", Jsonb.Int (List.length c.events));
      ( "events",
        Jsonb.Arr
          (List.map
             (fun (e : Trace.entry) ->
               Jsonb.Obj
                 [
                   ("seq", Jsonb.Int e.Trace.seq);
                   ("span", Jsonb.Int e.Trace.span);
                   ("at_us", Jsonb.Int e.Trace.at_us);
                   ("event", Jsonb.Str (Format.asprintf "%a" Trace.pp_event e.Trace.event));
                 ])
             shown) );
    ]
