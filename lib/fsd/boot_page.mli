(** The replicated boot page (sectors 0 and 2; §5.8: "two kinds of pages
    needed in booting could become bad: they are now replicated").

    Records the layout-defining parameters stamped at format time, the
    boot count, and whether the last shutdown was controlled (which
    decides whether the saved VAM may be trusted). *)

type t = {
  boot_count : int;
  clean_shutdown : bool;
  fnt_page_sectors : int;
  fnt_pages : int;
  log_sectors : int;
  log_vam : bool;  (** the volume runs the VAM-logging extension *)
  track_tolerant_log : bool;
  shard_id : int;
      (** the volume's shard in a multi-volume set (0 when standalone);
          read back on boot so the log attaches under the same tag it
          was formatted with *)
}

val write : Cedar_disk.Device.t -> sector_bytes:int -> t -> unit
(** One three-sector command: page, blank, replica. *)

val read : Cedar_disk.Device.t -> t option
(** Tries sector 0 then sector 2; [None] if both are bad. *)
