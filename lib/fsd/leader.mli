(** Leader pages (§5.2).

    Each FSD file has one leader page, physically preceding its first data
    page. It carries no information needed for operation — it is a
    mutually-checking structure against the name table, kept "to make
    scavenging possible" (§5.1). It is verified opportunistically by
    piggybacking its read on the file's first data access (§5.7).

    The leader records the complete name-table entry — name, version,
    properties, and the full run table — under a self-checksum, so the
    offline scavenger ({!Scavenge}) can rebuild a file's entry from its
    leader alone when both copies of the FNT page holding it are lost. *)

type kind = Local | Cached of { server : string; last_used : int }

type t = {
  uid : int64;
  name : string;
  version : int;
  keep : int;
  byte_size : int;
  created : int;
  runs : Cedar_fsbase.Run_table.t;  (** the data runs (leader excluded) *)
  kind : kind;
}

val of_entry : name:string -> version:int -> Cedar_fsbase.Entry.t -> t

val to_entry : t -> anchor:int -> Cedar_fsbase.Entry.t
(** Rebuild the name-table entry from a leader found at sector [anchor]
    (the scavenger's inverse of {!of_entry}). *)

val encode : t -> sector_bytes:int -> bytes

val decode : bytes -> t option
(** [None] when the sector does not hold a well-formed leader. *)

val matches : t -> name:string -> version:int -> Cedar_fsbase.Entry.t -> bool
(** The §5.8 software check: does this leader corroborate the name-table
    entry under this key? Compares uid, name, version, byte size,
    creation time, and the whole run table. [keep] and the remote-cache
    properties are recorded for scavenging but excluded here (they may
    lag by one group commit). *)
