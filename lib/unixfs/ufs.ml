open Cedar_util
open Cedar_disk
open Cedar_fsbase

type fsck_report = {
  inodes_checked : int;
  dirs_checked : int;
  problems_fixed : int;
  duration_us : int;
}

let corrupt msg = Fs_error.raise_ (Fs_error.Corrupt_metadata msg)

(* ------------------------------------------------------------------ *)
(* Geometry of the volume                                              *)

type shape = {
  block_bytes : int;
  block_sectors : int;
  total_blocks : int;
  ngroups : int;
  bpg : int;  (** blocks per group *)
  ipg : int;  (** inodes per group *)
  inode_blocks : int;  (** per group *)
  first_group_block : int;  (** groups start after boot + superblock *)
}

let shape_of geom (p : Ufs_params.t) =
  let total_sectors = Geometry.total_sectors geom in
  let block_sectors = p.Ufs_params.block_sectors in
  let block_bytes = block_sectors * geom.Geometry.sector_bytes in
  let total_blocks = total_sectors / block_sectors in
  let bpg =
    p.Ufs_params.cylinders_per_group * Geometry.sectors_per_cylinder geom
    / block_sectors
  in
  let ipg_raw = max 32 (bpg / p.Ufs_params.inode_ratio_blocks) in
  let inodes_per_block = block_bytes / Inode.bytes_per_inode in
  let inode_blocks = (ipg_raw + inodes_per_block - 1) / inodes_per_block in
  let ipg = inode_blocks * inodes_per_block in
  let first_group_block = 2 in
  let ngroups = (total_blocks - first_group_block) / bpg in
  if ngroups < 1 then invalid_arg "Ufs: volume too small";
  { block_bytes; block_sectors; total_blocks; ngroups; bpg; ipg; inode_blocks; first_group_block }

let group_start sh g = sh.first_group_block + (g * sh.bpg)
let cg_block sh g = group_start sh g
let inode_block sh g i = group_start sh g + 1 + i
let data_start sh g = group_start sh g + 1 + sh.inode_blocks

let group_of_block sh b = (b - sh.first_group_block) / sh.bpg
let root_inum = 2

let group_of_inum sh inum = (inum - 1) / sh.ipg
let index_of_inum sh inum = (inum - 1) mod sh.ipg
let inum_of sh g idx = (g * sh.ipg) + idx + 1

(* ------------------------------------------------------------------ *)
(* Cylinder-group descriptor block: block bitmap ++ inode bitmap.      *)

module Cg = struct
  type t = { blocks : Bitmap.t; inodes : Bitmap.t }

  let magic = 0x55434731 (* "UCG1" *)

  let fresh sh =
    (* Block bits cover the whole group (bit = used); the descriptor and
       inode blocks are born used. *)
    let blocks = Bitmap.create sh.bpg in
    Bitmap.set_run blocks ~pos:0 ~len:(1 + sh.inode_blocks);
    { blocks; inodes = Bitmap.create sh.ipg }

  let encode sh t =
    let w = Bytebuf.Writer.create () in
    Bytebuf.Writer.u32 w magic;
    Bytebuf.Writer.u32 w (Bitmap.length t.blocks);
    Bytebuf.Writer.raw w (Bitmap.to_bytes t.blocks);
    Bytebuf.Writer.u32 w (Bitmap.length t.inodes);
    Bytebuf.Writer.raw w (Bitmap.to_bytes t.inodes);
    let b = Bytebuf.Writer.contents w in
    if Bytes.length b > sh.block_bytes then invalid_arg "Cg.encode: overflow";
    let out = Bytes.make sh.block_bytes '\000' in
    Bytes.blit b 0 out 0 (Bytes.length b);
    out

  let decode image =
    match
      let r = Bytebuf.Reader.of_bytes image in
      let m = Bytebuf.Reader.u32 r in
      if m <> magic then None
      else begin
        let nb = Bytebuf.Reader.u32 r in
        let blocks = Bitmap.of_bytes ~bits:nb (Bytebuf.Reader.raw r ((nb + 7) / 8)) in
        let ni = Bytebuf.Reader.u32 r in
        let inodes = Bitmap.of_bytes ~bits:ni (Bytebuf.Reader.raw r ((ni + 7) / 8)) in
        Some { blocks; inodes }
      end
    with
    | v -> v
    | exception Bytebuf.Decode_error _ -> None
end

(* ------------------------------------------------------------------ *)
(* Superblock (block 1)                                                *)

let sb_magic = 0x55465331 (* "UFS1" *)

let encode_sb sh (p : Ufs_params.t) ~clean ~block_bytes =
  let w = Bytebuf.Writer.create () in
  Bytebuf.Writer.u32 w sb_magic;
  Bytebuf.Writer.bool w clean;
  Bytebuf.Writer.u16 w p.Ufs_params.block_sectors;
  Bytebuf.Writer.u16 w p.Ufs_params.cylinders_per_group;
  Bytebuf.Writer.u16 w p.Ufs_params.inode_ratio_blocks;
  Bytebuf.Writer.u16 w p.Ufs_params.rotdelay_blocks;
  Bytebuf.Writer.u32 w sh.ngroups;
  Bytebuf.Writer.u32 w sh.bpg;
  Bytebuf.Writer.u32 w sh.ipg;
  let body = Bytebuf.Writer.contents w in
  Bytebuf.Writer.u32 w (Crc32.bytes body);
  let out = Bytes.make block_bytes '\000' in
  let b = Bytebuf.Writer.contents w in
  Bytes.blit b 0 out 0 (Bytes.length b);
  out

let decode_sb image =
  match
    let r = Bytebuf.Reader.of_bytes image in
    let m = Bytebuf.Reader.u32 r in
    if m <> sb_magic then None
    else begin
      let clean = Bytebuf.Reader.bool r in
      let block_sectors = Bytebuf.Reader.u16 r in
      let cylinders_per_group = Bytebuf.Reader.u16 r in
      let inode_ratio_blocks = Bytebuf.Reader.u16 r in
      let rotdelay_blocks = Bytebuf.Reader.u16 r in
      let _ngroups = Bytebuf.Reader.u32 r in
      let _bpg = Bytebuf.Reader.u32 r in
      let _ipg = Bytebuf.Reader.u32 r in
      let body_len = Bytebuf.Reader.pos r in
      let crc = Bytebuf.Reader.u32 r in
      if crc <> Crc32.bytes ~pos:0 ~len:body_len image then None
      else
        Some
          ( clean,
            fun (base : Ufs_params.t) ->
              {
                base with
                Ufs_params.block_sectors;
                cylinders_per_group;
                inode_ratio_blocks;
                rotdelay_blocks;
              } )
    end
  with
  | v -> v
  | exception Bytebuf.Decode_error _ -> None

(* ------------------------------------------------------------------ *)
(* The file system                                                     *)

type buf = { mutable data : bytes; mutable dirty : bool }

type t = {
  device : Device.t;
  clock : Simclock.t;
  params : Ufs_params.t;
  sh : shape;
  cache : (int, buf) Lru.t;
  cgs : Cg.t array; (* authoritative copy; flushed to cg blocks on sync *)
  cg_dirty : bool array;
  mutable alloc_hint : int array; (* next data block to try, per group *)
  mutable next_dir_group : int;
  mutable cpu_overlapped : int;
  mutable live : bool;
  ops_c : Cedar_obs.Metrics.counter;
}

let device t = t.device
let cpu_overlapped_us t = t.cpu_overlapped
let require_live t = if not t.live then Fs_error.raise_ Fs_error.Not_booted

let op_cpu t =
  Cedar_obs.Metrics.inc t.ops_c;
  Simclock.advance t.clock t.params.Ufs_params.cpu_op_us

(* Span wrapper for the public operations; free when tracing is off. *)
let traced t ~op ~name f =
  let tr = Device.trace t.device in
  if not (Cedar_obs.Trace.enabled tr) then f ()
  else begin
    let t0 = Simclock.now t.clock in
    let id = Cedar_obs.Trace.begin_span tr ~at:t0 ~op ~name in
    match f () with
    | v ->
      Cedar_obs.Trace.end_span tr ~at:(Simclock.now t.clock) id;
      v
    | exception e ->
      Cedar_obs.Trace.end_span tr ~at:(Simclock.now t.clock) id;
      raise e
  end

let data_cpu t us = t.cpu_overlapped <- t.cpu_overlapped + us

(* --- buffer cache ------------------------------------------------- *)

let sector_of_block t b = b * t.sh.block_sectors

let writeback t block (buf : buf) =
  if buf.dirty then begin
    Device.write_run t.device ~sector:(sector_of_block t block) buf.data;
    buf.dirty <- false
  end

let cache_insert t block buf =
  List.iter (fun (b, victim) -> writeback t b victim) (Lru.add t.cache block buf)

let read_block t block =
  match Lru.find t.cache block with
  | Some buf -> buf.data
  | None ->
    let data =
      Device.read_run t.device ~sector:(sector_of_block t block)
        ~count:t.sh.block_sectors
    in
    let buf = { data; dirty = false } in
    cache_insert t block buf;
    data

(* Synchronous metadata write: straight to disk (and cache). *)
let write_block_sync t block data =
  Device.write_run t.device ~sector:(sector_of_block t block) data;
  (match Lru.peek t.cache block with
  | Some buf ->
    buf.data <- data;
    buf.dirty <- false
  | None -> cache_insert t block { data; dirty = false })

(* Delayed write: cache only; reaches disk on eviction or sync. *)
let write_block_delayed t block data =
  match Lru.peek t.cache block with
  | Some buf ->
    buf.data <- data;
    buf.dirty <- true;
    ignore (Lru.find t.cache block : buf option)
  | None -> cache_insert t block { data; dirty = true }

let flush_cgs t =
  Array.iteri
    (fun g cg ->
      if t.cg_dirty.(g) then begin
        write_block_sync t (cg_block t.sh g) (Cg.encode t.sh cg);
        t.cg_dirty.(g) <- false
      end)
    t.cgs

let drop_clean_cache t =
  let clean = ref [] in
  Lru.iter t.cache (fun b buf -> if not buf.dirty then clean := b :: !clean);
  List.iter (Lru.remove t.cache) !clean

let sync t =
  require_live t;
  (* Data first (in block order), then the touched bitmaps: cg writes go
     through the cache and must not evict still-dirty data blocks. *)
  let dirty = ref [] in
  Lru.iter t.cache (fun b buf -> if buf.dirty then dirty := (b, buf) :: !dirty);
  List.iter (fun (b, buf) -> writeback t b buf) (List.sort compare !dirty);
  flush_cgs t

(* --- allocation ---------------------------------------------------- *)

let alloc_block t ~group ~near =
  let try_group g =
    let cg = t.cgs.(g) in
    let lo = 1 + t.sh.inode_blocks in
    let start =
      match near with
      | Some b when group_of_block t.sh b = g ->
        (* 4.2-style rotational spacing: leave [rotdelay] blocks between
           consecutively-allocated blocks of a file. *)
        b - group_start t.sh g + 1 + t.params.Ufs_params.rotdelay_blocks
      | Some _ | None -> max lo (t.alloc_hint.(g) - group_start t.sh g)
    in
    let find from =
      let rec go i =
        if i >= t.sh.bpg then None
        else if not (Bitmap.get cg.Cg.blocks i) then Some i
        else go (i + 1)
      in
      go (max lo from)
    in
    match (match find start with Some i -> Some i | None -> find lo) with
    | None -> None
    | Some i ->
      Bitmap.set cg.Cg.blocks i;
      t.cg_dirty.(g) <- true;
      let b = group_start t.sh g + i in
      t.alloc_hint.(g) <- b + 1;
      Some b
  in
  let rec rotate g n = if n = 0 then None else
      match try_group g with
      | Some b -> Some b
      | None -> rotate ((g + 1) mod t.sh.ngroups) (n - 1)
  in
  match rotate group t.sh.ngroups with
  | Some b -> b
  | None -> Fs_error.raise_ Fs_error.Volume_full

let free_block t b =
  let g = group_of_block t.sh b in
  let i = b - group_start t.sh g in
  if not (Bitmap.get t.cgs.(g).Cg.blocks i) then invalid_arg "Ufs.free_block";
  Bitmap.clear t.cgs.(g).Cg.blocks i;
  t.cg_dirty.(g) <- true

let alloc_inode t ~group ~kind =
  let try_group g =
    let cg = t.cgs.(g) in
    let rec go i =
      if i >= t.sh.ipg then None
      else if not (Bitmap.get cg.Cg.inodes i) then Some i
      else go (i + 1)
    in
    match go 0 with
    | None -> None
    | Some i ->
      Bitmap.set cg.Cg.inodes i;
      t.cg_dirty.(g) <- true;
      Some (inum_of t.sh g i)
  in
  let start =
    match kind with
    | Inode.Dir ->
      (* new directories go round-robin across groups, like FFS *)
      let g = t.next_dir_group in
      t.next_dir_group <- (g + 1) mod t.sh.ngroups;
      g
    | Inode.Reg -> group
  in
  let rec rotate g n =
    if n = 0 then Fs_error.raise_ Fs_error.Volume_full
    else match try_group g with Some i -> i | None -> rotate ((g + 1) mod t.sh.ngroups) (n - 1)
  in
  rotate start t.sh.ngroups

let free_inode t inum =
  let g = group_of_inum t.sh inum and i = index_of_inum t.sh inum in
  Bitmap.clear t.cgs.(g).Cg.inodes i;
  t.cg_dirty.(g) <- true

(* --- inode I/O ------------------------------------------------------ *)

let inode_location t inum =
  let g = group_of_inum t.sh inum and i = index_of_inum t.sh inum in
  let per_block = t.sh.block_bytes / Inode.bytes_per_inode in
  (inode_block t.sh g (i / per_block), i mod per_block * Inode.bytes_per_inode)

let read_inode t inum =
  let block, off = inode_location t inum in
  let data = read_block t block in
  match Inode.decode (Bytes.sub data off Inode.bytes_per_inode) with
  | Some ino -> ino
  | None -> corrupt (Printf.sprintf "inode %d does not decode" inum)

(* "A file create in UNIX writes the inode to disk before returning." *)
let write_inode_sync t inum ino =
  let block, off = inode_location t inum in
  let data = Bytes.copy (read_block t block) in
  Bytes.blit (Inode.encode ino) 0 data off Inode.bytes_per_inode;
  write_block_sync t block data

let clear_inode_sync t inum =
  let block, off = inode_location t inum in
  let data = Bytes.copy (read_block t block) in
  Bytes.fill data off Inode.bytes_per_inode '\000';
  write_block_sync t block data

(* --- file block mapping --------------------------------------------- *)

let pointers_per_block t = t.sh.block_bytes / 4

let read_pointers t block =
  let data = read_block t block in
  Array.init (pointers_per_block t) (fun i ->
      Int32.to_int (Bytes.get_int32_le data (i * 4)) land 0xffffffff)

let write_pointers_delayed t block ptrs =
  let data = Bytes.make t.sh.block_bytes '\000' in
  Array.iteri (fun i p -> Bytes.set_int32_le data (i * 4) (Int32.of_int p)) ptrs;
  write_block_delayed t block data

let file_block t (ino : Inode.t) i =
  if i < Inode.n_direct then ino.Inode.direct.(i)
  else begin
    let j = i - Inode.n_direct in
    if j >= pointers_per_block t || ino.Inode.indirect = 0 then 0
    else (read_pointers t ino.Inode.indirect).(j)
  end

let file_blocks t (ino : Inode.t) =
  let n = (ino.Inode.size + t.sh.block_bytes - 1) / t.sh.block_bytes in
  List.init n (fun i -> file_block t ino i)

let max_file_blocks t = Inode.n_direct + pointers_per_block t

(* --- directories ----------------------------------------------------- *)

let dir_entries t (ino : Inode.t) =
  List.concat_map
    (fun b ->
      if b = 0 then []
      else
        match Dirblock.entries (read_block t b) with
        | e -> e
        | exception Bytebuf.Decode_error m -> corrupt ("directory block: " ^ m))
    (file_blocks t ino)

let dir_lookup t ino name =
  List.find_map
    (fun (inum, n) -> if String.equal n name then Some inum else None)
    (dir_entries t ino)

(* Adding an entry rewrites a directory block synchronously. *)
let dir_add t ~dirinum ~name ~inum =
  let ino = read_inode t dirinum in
  let blocks = file_blocks t ino in
  let rec place = function
    | [] ->
      (* grow the directory by one block *)
      let g = group_of_inum t.sh dirinum in
      let b = alloc_block t ~group:g ~near:None in
      let image =
        match Dirblock.encode ~block_bytes:t.sh.block_bytes [ (inum, name) ] with
        | Some i -> i
        | None -> corrupt "directory entry too large"
      in
      write_block_sync t b image;
      let idx = List.length blocks in
      if idx >= max_file_blocks t then corrupt "directory too large";
      (if idx < Inode.n_direct then ino.Inode.direct.(idx) <- b
       else begin
         if ino.Inode.indirect = 0 then begin
           ino.Inode.indirect <- alloc_block t ~group:g ~near:None;
           write_pointers_delayed t ino.Inode.indirect
             (Array.make (pointers_per_block t) 0)
         end;
         let ptrs = read_pointers t ino.Inode.indirect in
         ptrs.(idx - Inode.n_direct) <- b;
         write_pointers_delayed t ino.Inode.indirect ptrs
       end);
      ino.Inode.size <- (idx + 1) * t.sh.block_bytes;
      write_inode_sync t dirinum ino
    | b :: rest -> (
      let entries = Dirblock.entries (read_block t b) in
      match Dirblock.encode ~block_bytes:t.sh.block_bytes (entries @ [ (inum, name) ]) with
      | Some image -> write_block_sync t b image
      | None -> place rest)
  in
  place blocks

let dir_remove t ~dirinum ~name =
  let ino = read_inode t dirinum in
  let removed = ref false in
  List.iter
    (fun b ->
      if (not !removed) && b <> 0 then begin
        let entries = Dirblock.entries (read_block t b) in
        if List.exists (fun (_, n) -> String.equal n name) entries then begin
          let entries = List.filter (fun (_, n) -> not (String.equal n name)) entries in
          match Dirblock.encode ~block_bytes:t.sh.block_bytes entries with
          | Some image ->
            write_block_sync t b image;
            removed := true
          | None -> assert false
        end
      end)
    (file_blocks t ino);
  !removed

(* --- path walking ---------------------------------------------------- *)

let split_path path =
  List.filter (fun c -> c <> "") (String.split_on_char '/' path)

let rec namei t ~dirinum = function
  | [] -> Some dirinum
  | c :: rest -> (
    let ino = read_inode t dirinum in
    if ino.Inode.kind <> Inode.Dir then None
    else
      match dir_lookup t ino c with
      | None -> None
      | Some inum -> namei t ~dirinum:inum rest)

let lookup_path t path = namei t ~dirinum:root_inum (split_path path)

(* Make every intermediate directory, returning the parent's inum. *)
let rec ensure_dirs t ~dirinum = function
  | [] | [ _ ] -> dirinum
  | c :: rest -> (
    let ino = read_inode t dirinum in
    match dir_lookup t ino c with
    | Some inum -> ensure_dirs t ~dirinum:inum rest
    | None ->
      let inum = alloc_inode t ~group:(group_of_inum t.sh dirinum) ~kind:Inode.Dir in
      let dino = Inode.empty Inode.Dir ~mtime:(Simclock.now t.clock) in
      dino.Inode.nlink <- 2;
      write_inode_sync t inum dino;
      dir_add t ~dirinum ~name:c ~inum;
      ensure_dirs t ~dirinum:inum rest)

(* --- public operations ------------------------------------------------ *)

let free_blocks t =
  Array.fold_left
    (fun acc cg -> acc + (t.sh.bpg - Bitmap.count cg.Cg.blocks))
    0 t.cgs

let info_of_inode path inum (ino : Inode.t) =
  { Fs_ops.name = path; version = 1; byte_size = ino.Inode.size; uid = Int64.of_int inum }

let stat t ~path =
  traced t ~op:"stat" ~name:path @@ fun () ->
  require_live t;
  op_cpu t;
  match lookup_path t path with
  | None -> Fs_error.raise_ (Fs_error.No_such_file path)
  | Some inum -> info_of_inode path inum (read_inode t inum)

let exists t ~path =
  require_live t;
  op_cpu t;
  lookup_path t path <> None

let free_file_blocks t ino =
  List.iter (fun b -> if b <> 0 then free_block t b) (file_blocks t ino);
  if ino.Inode.indirect <> 0 then free_block t ino.Inode.indirect

let unlink t ~path =
  traced t ~op:"delete" ~name:path @@ fun () ->
  require_live t;
  op_cpu t;
  let components = split_path path in
  match components with
  | [] -> Fs_error.raise_ (Fs_error.No_such_file path)
  | _ ->
    let name = List.nth components (List.length components - 1) in
    let parent_path = List.filteri (fun i _ -> i < List.length components - 1) components in
    (match namei t ~dirinum:root_inum parent_path with
    | None -> Fs_error.raise_ (Fs_error.No_such_file path)
    | Some dirinum -> (
      let dino = read_inode t dirinum in
      match dir_lookup t dino name with
      | None -> Fs_error.raise_ (Fs_error.No_such_file path)
      | Some inum ->
        let ino = read_inode t inum in
        ignore (dir_remove t ~dirinum ~name : bool);
        free_file_blocks t ino;
        clear_inode_sync t inum;
        free_inode t inum))

let create t ~path data =
  traced t ~op:"create" ~name:path @@ fun () ->
  require_live t;
  op_cpu t;
  if exists t ~path then unlink t ~path;
  let components = split_path path in
  if components = [] then Fs_error.raise_ (Fs_error.Bad_name { name = path; reason = "empty" });
  let name = List.nth components (List.length components - 1) in
  let dirinum = ensure_dirs t ~dirinum:root_inum components in
  let g = group_of_inum t.sh dirinum in
  let inum = alloc_inode t ~group:g ~kind:Inode.Reg in
  let ino = Inode.empty Inode.Reg ~mtime:(Simclock.now t.clock) in
  ino.Inode.size <- Bytes.length data;
  let nblocks = (Bytes.length data + t.sh.block_bytes - 1) / t.sh.block_bytes in
  if nblocks > max_file_blocks t then
    Fs_error.raise_ (Fs_error.Too_fragmented path);
  let last = ref None in
  let indirect_ptrs = ref None in
  for i = 0 to nblocks - 1 do
    let b = alloc_block t ~group:g ~near:!last in
    last := Some b;
    let chunk = Bytes.make t.sh.block_bytes '\000' in
    let off = i * t.sh.block_bytes in
    let len = min t.sh.block_bytes (Bytes.length data - off) in
    Bytes.blit data off chunk 0 len;
    (* data is a delayed write, flushed by sync or eviction *)
    write_block_delayed t b chunk;
    data_cpu t t.params.Ufs_params.cpu_block_write_us;
    if i < Inode.n_direct then ino.Inode.direct.(i) <- b
    else begin
      (match !indirect_ptrs with
      | Some _ -> ()
      | None ->
        ino.Inode.indirect <- alloc_block t ~group:g ~near:None;
        indirect_ptrs := Some (Array.make (pointers_per_block t) 0));
      (Option.get !indirect_ptrs).(i - Inode.n_direct) <- b
    end
  done;
  (match !indirect_ptrs with
  | Some ptrs -> write_pointers_delayed t ino.Inode.indirect ptrs
  | None -> ());
  (* Synchronous ordering discipline: inode before directory entry. *)
  write_inode_sync t inum ino;
  dir_add t ~dirinum ~name ~inum;
  info_of_inode path inum ino

let read_all t ~path =
  traced t ~op:"read_all" ~name:path @@ fun () ->
  require_live t;
  op_cpu t;
  match lookup_path t path with
  | None -> Fs_error.raise_ (Fs_error.No_such_file path)
  | Some inum ->
    let ino = read_inode t inum in
    let out = Bytes.create ino.Inode.size in
    List.iteri
      (fun i b ->
        if b <> 0 then begin
          let data =
            try read_block t b
            with Device.Error { sector; _ } ->
              Fs_error.raise_ (Fs_error.Damaged_data { name = path; sector })
          in
          data_cpu t t.params.Ufs_params.cpu_block_read_us;
          let off = i * t.sh.block_bytes in
          let len = min t.sh.block_bytes (ino.Inode.size - off) in
          if len > 0 then Bytes.blit data 0 out off len
        end)
      (file_blocks t ino);
    out

let read_page t ~path ~page =
  traced t ~op:"read_page" ~name:path @@ fun () ->
  require_live t;
  op_cpu t;
  match lookup_path t path with
  | None -> Fs_error.raise_ (Fs_error.No_such_file path)
  | Some inum ->
    let ino = read_inode t inum in
    let sb = t.sh.block_bytes / t.sh.block_sectors in
    if page < 0 || page * sb >= ino.Inode.size then
      Fs_error.raise_ (Fs_error.Bad_page { name = path; page });
    let bi = page * sb / t.sh.block_bytes in
    let b = file_block t ino bi in
    if b = 0 then Bytes.make sb '\000'
    else begin
      let data = read_block t b in
      data_cpu t t.params.Ufs_params.cpu_block_read_us;
      Bytes.sub data (page * sb mod t.sh.block_bytes) sb
    end

let readdir t ~path =
  traced t ~op:"list" ~name:path @@ fun () ->
  require_live t;
  op_cpu t;
  match lookup_path t path with
  | None -> Fs_error.raise_ (Fs_error.No_such_file path)
  | Some inum ->
    let ino = read_inode t inum in
    if ino.Inode.kind <> Inode.Dir then Fs_error.raise_ (Fs_error.No_such_file path);
    List.map
      (fun (inum, name) ->
        let full = if path = "" then name else path ^ "/" ^ name in
        info_of_inode full inum (read_inode t inum))
      (dir_entries t ino)

(* --- lifecycle --------------------------------------------------------- *)

let mk device params sh cgs =
  let metrics = Device.metrics device in
  let t =
    {
      device;
      clock = Device.clock device;
      params;
      sh;
      cache = Lru.create ~capacity:params.Ufs_params.cache_blocks;
      cgs;
      cg_dirty = Array.make sh.ngroups false;
      alloc_hint = Array.init sh.ngroups (fun g -> data_start sh g);
      next_dir_group = 0;
      cpu_overlapped = 0;
      live = true;
      ops_c = Cedar_obs.Metrics.counter metrics "ufs.ops";
    }
  in
  Cedar_obs.Metrics.gauge metrics "ufs.cpu_overlapped_us" (fun () ->
      t.cpu_overlapped);
  t

let write_sb t ~clean =
  write_block_sync t 1 (encode_sb t.sh t.params ~clean ~block_bytes:t.sh.block_bytes)

let mkfs device params =
  let sh = shape_of (Device.geometry device) params in
  let cgs = Array.init sh.ngroups (fun _ -> Cg.fresh sh) in
  let t = mk device params sh cgs in
  (* Root directory: an empty dir with no data blocks yet. *)
  Bitmap.set cgs.(0).Cg.inodes (index_of_inum sh root_inum);
  (* reserve inum 1 as well, as BSD does *)
  Bitmap.set cgs.(0).Cg.inodes (index_of_inum sh 1);
  (* Zero the inode blocks of every group so free slots decode as free. *)
  let zero = Bytes.make sh.block_bytes '\000' in
  for g = 0 to sh.ngroups - 1 do
    for i = 0 to sh.inode_blocks - 1 do
      write_block_sync t (inode_block sh g i) zero
    done
  done;
  let root = Inode.empty Inode.Dir ~mtime:0 in
  root.Inode.nlink <- 2;
  write_inode_sync t root_inum root;
  Array.fill t.cg_dirty 0 sh.ngroups true;
  flush_cgs t;
  write_sb t ~clean:true

let mount device =
  let base = Ufs_params.for_geometry (Device.geometry device) in
  (* The superblock is at block 1 with the block size recorded inside. *)
  let sb_image =
    Device.read_run device ~sector:base.Ufs_params.block_sectors
      ~count:base.Ufs_params.block_sectors
  in
  match decode_sb sb_image with
  | None -> corrupt "superblock does not decode"
  | Some (clean, fixup) ->
    if not clean then `Needs_fsck
    else begin
      let params = fixup base in
      let sh = shape_of (Device.geometry device) params in
      let t = mk device params sh (Array.init sh.ngroups (fun _ -> Cg.fresh sh)) in
      for g = 0 to sh.ngroups - 1 do
        match Cg.decode (read_block t (cg_block sh g)) with
        | Some cg -> t.cgs.(g) <- cg
        | None -> corrupt (Printf.sprintf "cylinder group %d does not decode" g)
      done;
      write_sb t ~clean:false;
      `Ok t
    end

let unmount t =
  require_live t;
  sync t;
  write_sb t ~clean:true;
  t.live <- false

(* --- fsck ---------------------------------------------------------------- *)

let fsck device =
  let clock = Device.clock device in
  let t0 = Simclock.now clock in
  let base = Ufs_params.for_geometry (Device.geometry device) in
  let sb_image =
    Device.read_run device ~sector:base.Ufs_params.block_sectors
      ~count:base.Ufs_params.block_sectors
  in
  let params =
    match decode_sb sb_image with
    | Some (_, fixup) -> fixup base
    | None -> corrupt "fsck: superblock does not decode"
  in
  let sh = shape_of (Device.geometry device) params in
  let t = mk device params sh (Array.init sh.ngroups (fun _ -> Cg.fresh sh)) in
  let inodes_checked = ref 0 in
  let dirs_checked = ref 0 in
  let fixed = ref 0 in
  (* Pass 1: read every inode block; collect block usage per inode,
     following indirect blocks. *)
  let used_blocks = Hashtbl.create 1024 in
  let live_inodes = Hashtbl.create 1024 in
  let per_block = sh.block_bytes / Inode.bytes_per_inode in
  for g = 0 to sh.ngroups - 1 do
    for ib = 0 to sh.inode_blocks - 1 do
      let data =
        match read_block t (inode_block sh g ib) with
        | data -> Bytes.copy data
        | exception Device.Error _ ->
          (* unreadable inode block: every inode in it is lost *)
          incr fixed;
          Bytes.make sh.block_bytes '\000'
      in
      let block_dirty = ref false in
      for slot = 0 to per_block - 1 do
        let raw = Bytes.sub data (slot * Inode.bytes_per_inode) Inode.bytes_per_inode in
        if not (Inode.is_free_slot raw) then begin
          incr inodes_checked;
          (* VAX-era fsck burned real CPU per inode across its passes *)
          Simclock.advance clock 800;
          let inum = inum_of sh g ((ib * per_block) + slot) in
          match Inode.decode raw with
          | None ->
            (* damaged inode: clear the slot on disk *)
            Bytes.fill data (slot * Inode.bytes_per_inode) Inode.bytes_per_inode '\000';
            block_dirty := true;
            incr fixed
          | Some ino ->
            Hashtbl.replace live_inodes inum ino;
            (match file_blocks t ino with
            | blocks ->
              List.iter (fun b -> if b <> 0 then Hashtbl.replace used_blocks b ()) blocks
            | exception Device.Error _ -> incr fixed);
            if ino.Inode.indirect <> 0 then
              Hashtbl.replace used_blocks ino.Inode.indirect ()
        end
      done;
      if !block_dirty then write_block_sync t (inode_block sh g ib) data
    done
  done;
  (* The root directory itself may have been a casualty: recreate it
     empty (as real fsck reattaches what it can to lost+found). *)
  if not (Hashtbl.mem live_inodes root_inum) then begin
    let root = Inode.empty Inode.Dir ~mtime:(Simclock.now clock) in
    root.Inode.nlink <- 2;
    write_inode_sync t root_inum root;
    Hashtbl.replace live_inodes root_inum root;
    incr fixed
  end;
  (* Pass 2: walk the directory tree; verify entries reference live
     inodes; drop dangling ones. *)
  let reachable = Hashtbl.create 1024 in
  (* Directory blocks are read tolerantly and REPAIRED: undecodable
     blocks are emptied, dangling entries (child inode dead) removed,
     and any cleaned block is rewritten in place. *)
  let clean_dir_block b =
    let entries, broken =
      match Dirblock.entries (read_block t b) with
      | entries -> (entries, false)
      | exception Bytebuf.Decode_error _ -> ([], true)
      | exception Device.Error _ -> ([], true)
    in
    let kept = List.filter (fun (child, _) -> Hashtbl.mem live_inodes child) entries in
    if broken || List.length kept <> List.length entries then begin
      incr fixed;
      match Dirblock.encode ~block_bytes:sh.block_bytes kept with
      | Some image -> write_block_sync t b image
      | None -> assert false (* kept fits: it is a subset of one block *)
    end;
    kept
  in
  let rec walk inum =
    if not (Hashtbl.mem reachable inum) then begin
      Hashtbl.replace reachable inum ();
      match Hashtbl.find_opt live_inodes inum with
      | Some ino when ino.Inode.kind = Inode.Dir ->
        incr dirs_checked;
        List.iter
          (fun b ->
            if b <> 0 then
              List.iter
                (fun (child, _name) ->
                  Simclock.advance clock 150;
                  walk child)
                (clean_dir_block b))
          (file_blocks t ino)
      | Some _ | None -> ()
    end
  in
  if Hashtbl.mem live_inodes root_inum then walk root_inum;
  (* Pass 5: rebuild the bitmaps from what pass 1 and 2 found. *)
  for g = 0 to sh.ngroups - 1 do
    t.cgs.(g) <- Cg.fresh sh
  done;
  Hashtbl.iter
    (fun b () ->
      let g = group_of_block sh b in
      Bitmap.set t.cgs.(g).Cg.blocks (b - group_start sh g))
    used_blocks;
  Hashtbl.iter
    (fun inum _ ->
      if Hashtbl.mem reachable inum then
        Bitmap.set t.cgs.(group_of_inum sh inum).Cg.inodes (index_of_inum sh inum))
    live_inodes;
  Bitmap.set t.cgs.(0).Cg.inodes (index_of_inum sh 1);
  Bitmap.set t.cgs.(0).Cg.inodes (index_of_inum sh root_inum);
  Array.fill t.cg_dirty 0 sh.ngroups true;
  flush_cgs t;
  write_sb t ~clean:false;
  ( t,
    {
      inodes_checked = !inodes_checked;
      dirs_checked = !dirs_checked;
      problems_fixed = !fixed;
      duration_us = Simclock.now clock - t0;
    } )

(* --- check and ops --------------------------------------------------------- *)

(* Testing/debug aid: the exact sector holding an inode's slot. *)
let inode_sector t inum =
  let block, off = inode_location t inum in
  sector_of_block t block + (off / t.sh.block_bytes * t.sh.block_sectors)
  + (off mod t.sh.block_bytes / (t.sh.block_bytes / t.sh.block_sectors))

let check t =
  (* Rebuild usage from the tree and compare with the bitmaps. *)
  let errors = ref [] in
  let seen_blocks = Hashtbl.create 256 in
  let rec walk path inum =
    match read_inode t inum with
    | exception Fs_error.Fs_error e -> errors := Fs_error.to_string e :: !errors
    | ino ->
      List.iter
        (fun b ->
          if b <> 0 then
            if Hashtbl.mem seen_blocks b then
              errors := Printf.sprintf "block %d multiply claimed (%s)" b path :: !errors
            else Hashtbl.replace seen_blocks b ())
        (file_blocks t ino);
      if ino.Inode.kind = Inode.Dir then
        List.iter (fun (child, name) -> walk (path ^ "/" ^ name) child) (dir_entries t ino)
  in
  walk "" root_inum;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " es)

let ops t =
  {
    Fs_ops.label = "4.3BSD";
    create = (fun ~name ~data -> create t ~path:name data);
    open_stat = (fun ~name -> stat t ~path:name);
    read_all = (fun ~name -> read_all t ~path:name);
    read_page = (fun ~name ~page -> read_page t ~path:name ~page);
    delete = (fun ~name -> unlink t ~path:name);
    list =
      (fun ~prefix ->
        let dir =
          if prefix = "" then ""
          else if String.length prefix > 0 && prefix.[String.length prefix - 1] = '/'
          then String.sub prefix 0 (String.length prefix - 1)
          else prefix
        in
        readdir t ~path:dir);
    force = (fun () -> sync t);
    device = t.device;
    clock = t.clock;
  }
