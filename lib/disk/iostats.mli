(** Disk I/O counters.

    An "I/O" is one command issued to the drive — possibly a multi-sector
    transfer — matching how the paper counts I/Os in Tables 3 and 4 (e.g.
    FSD's create is "one I/O" although it transfers leader + data pages in
    a single command). *)

type t = {
  mutable ios : int;
  mutable reads : int;
  mutable writes : int;
  mutable sectors_read : int;
  mutable sectors_written : int;
  mutable label_ops : int;
  mutable seeks : int;  (** repositionings of the arm (distance > 0) *)
  mutable seek_us : int;
  mutable rotation_us : int;  (** rotational latency waited *)
  mutable transfer_us : int;
  mutable busy_us : int;  (** total device busy time *)
}

val create : unit -> t
val copy : t -> t

val diff : after:t -> before:t -> t
(** Counter-wise subtraction, for measuring one operation. *)

val add_into : dst:t -> t -> unit
val reset : t -> unit
val pp : Format.formatter -> t -> unit

val to_json : t -> Cedar_obs.Jsonb.t
(** Machine-readable counterpart of {!pp}, used by [cedar stats] and
    the bench table emitter. *)
