type t = {
  mutable ios : int;
  mutable reads : int;
  mutable writes : int;
  mutable sectors_read : int;
  mutable sectors_written : int;
  mutable label_ops : int;
  mutable seeks : int;
  mutable seek_us : int;
  mutable rotation_us : int;
  mutable transfer_us : int;
  mutable busy_us : int;
}

let create () =
  {
    ios = 0;
    reads = 0;
    writes = 0;
    sectors_read = 0;
    sectors_written = 0;
    label_ops = 0;
    seeks = 0;
    seek_us = 0;
    rotation_us = 0;
    transfer_us = 0;
    busy_us = 0;
  }

let copy t = { t with ios = t.ios }

let diff ~after ~before =
  {
    ios = after.ios - before.ios;
    reads = after.reads - before.reads;
    writes = after.writes - before.writes;
    sectors_read = after.sectors_read - before.sectors_read;
    sectors_written = after.sectors_written - before.sectors_written;
    label_ops = after.label_ops - before.label_ops;
    seeks = after.seeks - before.seeks;
    seek_us = after.seek_us - before.seek_us;
    rotation_us = after.rotation_us - before.rotation_us;
    transfer_us = after.transfer_us - before.transfer_us;
    busy_us = after.busy_us - before.busy_us;
  }

let add_into ~dst t =
  dst.ios <- dst.ios + t.ios;
  dst.reads <- dst.reads + t.reads;
  dst.writes <- dst.writes + t.writes;
  dst.sectors_read <- dst.sectors_read + t.sectors_read;
  dst.sectors_written <- dst.sectors_written + t.sectors_written;
  dst.label_ops <- dst.label_ops + t.label_ops;
  dst.seeks <- dst.seeks + t.seeks;
  dst.seek_us <- dst.seek_us + t.seek_us;
  dst.rotation_us <- dst.rotation_us + t.rotation_us;
  dst.transfer_us <- dst.transfer_us + t.transfer_us;
  dst.busy_us <- dst.busy_us + t.busy_us

let reset t =
  t.ios <- 0;
  t.reads <- 0;
  t.writes <- 0;
  t.sectors_read <- 0;
  t.sectors_written <- 0;
  t.label_ops <- 0;
  t.seeks <- 0;
  t.seek_us <- 0;
  t.rotation_us <- 0;
  t.transfer_us <- 0;
  t.busy_us <- 0

let to_json t =
  Cedar_obs.Jsonb.Obj
    [
      ("ios", Cedar_obs.Jsonb.Int t.ios);
      ("reads", Cedar_obs.Jsonb.Int t.reads);
      ("writes", Cedar_obs.Jsonb.Int t.writes);
      ("sectors_read", Cedar_obs.Jsonb.Int t.sectors_read);
      ("sectors_written", Cedar_obs.Jsonb.Int t.sectors_written);
      ("label_ops", Cedar_obs.Jsonb.Int t.label_ops);
      ("seeks", Cedar_obs.Jsonb.Int t.seeks);
      ("seek_us", Cedar_obs.Jsonb.Int t.seek_us);
      ("rotation_us", Cedar_obs.Jsonb.Int t.rotation_us);
      ("transfer_us", Cedar_obs.Jsonb.Int t.transfer_us);
      ("busy_us", Cedar_obs.Jsonb.Int t.busy_us);
    ]

let pp ppf t =
  Format.fprintf ppf
    "ios=%d (r=%d w=%d) sectors r=%d w=%d labels=%d seeks=%d busy=%.1fms (seek %.1f rot %.1f xfer %.1f)"
    t.ios t.reads t.writes t.sectors_read t.sectors_written t.label_ops t.seeks
    (float_of_int t.busy_us /. 1000.)
    (float_of_int t.seek_us /. 1000.)
    (float_of_int t.rotation_us /. 1000.)
    (float_of_int t.transfer_us /. 1000.)
