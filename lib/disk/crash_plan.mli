(** Force-ordinal crash planning: arm a device fault at "the K-th sector
    write of the M-th force interval".

    Interval [m] spans the writes between the [m]-th and [(m+1)]-th calls
    to {!note_force}; interval [0] runs from {!attach} to the first force.
    The crash-sweep harness first replays a workload once with a plan
    attached purely to record {!writes_per_interval}, then re-runs it once
    per (interval, write offset, tear mode) coordinate with {!arm} set, and
    lets [Device.Crash_during_write] propagate as the simulated halt. *)

type t

val attach : Device.t -> t
(** Installs this plan as the device's (single) observer to count sector
    writes. Displaces any previously set observer. *)

val detach : t -> unit
(** Clears the device observer. An already-armed device fault is not
    cancelled. *)

val note_force : t -> unit
(** Close the current force interval. Call at every force boundary (the
    server's [on_force] hook, which fires just before [Fsd.force]). If the
    armed coordinate names the interval now opening, the device fault is
    planted. *)

val arm : t -> force:int -> write:int -> tear:Device.tear -> unit
(** Kill the device at the [write]-th sector write of force interval
    [force] (0-based on both axes), leaving [tear] behind at the
    interrupted sector. If interval [force] is already open, the fault is
    planted immediately. *)

val forces_seen : t -> int
(** Number of {!note_force} calls so far. *)

val writes_per_interval : t -> int array
(** Sector-write counts per interval, including the still-open final
    interval; length is [forces_seen + 1]. *)
