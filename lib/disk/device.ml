open Cedar_util

type fault_kind =
  | Damaged
  | Label_mismatch of { expected : Label.t; found : Label.t }

type tear =
  | Tear_none
  | Tear_zero
  | Tear_garbage
  | Tear_damage of int

exception Error of { sector : int; kind : fault_kind }
exception Crash_during_write of { sector : int }

module Trace = Cedar_obs.Trace
module Metrics = Cedar_obs.Metrics

type policy = Fifo | Elevator | Sstf

let policy_to_string = function
  | Fifo -> "fifo"
  | Elevator -> "elevator"
  | Sstf -> "sstf"

let policy_of_string = function
  | "fifo" -> Some Fifo
  | "elevator" -> Some Elevator
  | "sstf" -> Some Sstf
  | _ -> None

(* SSTF starvation bound: a request passed over this many times is
   serviced before any nearest-first pick (oldest aged request first). *)
let sstf_age_limit = 8

type request = {
  req_id : int; (* 1-based, monotonically increasing; also FIFO order *)
  req_sector : int;
  req_count : int;
  req_write : bool;
  req_enq_at : int; (* virtual clock at enqueue *)
  req_span : int; (* trace span of the issuing op, attributed at service *)
  mutable req_passes : int; (* times passed over by the policy *)
}

type t = {
  id : int; (* device id stamped into trace events; volume index in a set *)
  geom : Geometry.t;
  clock : Simclock.t;
  data : (int, bytes) Hashtbl.t; (* sparse; absent = all-zero, never written *)
  labels : (int, Label.t) Hashtbl.t; (* absent = Label.free *)
  damaged : (int, unit) Hashtbl.t;
  stats : Iostats.t;
  trace : Trace.t;
  metrics : Metrics.t;
  seek_dist : Stats.t; (* cylinders moved per command, in service order *)
  mutable head_cyl : int;
  mutable write_crash : (int * tear) option; (* sectors until trigger, tear *)
  mutable observer : (rw:[ `R | `W ] -> sector:int -> count:int -> unit) option;
  (* Deferred timing: commands queue on this device's own timeline
     instead of advancing the shared clock, so several devices overlap
     in simulated time. See [set_deferred]. *)
  mutable deferred : bool;
  mutable busy_horizon : int; (* device-local completion time of the last command *)
  (* Request queue (set_queue): data/label effects still happen at issue,
     but the mechanical timing of up to [qdepth] outstanding commands is
     resolved lazily, in the order [qpolicy] picks them. *)
  mutable qpolicy : policy;
  mutable qdepth : int; (* < 2 means the queue is off *)
  mutable queue : request list; (* pending, enqueue (= id) order *)
  mutable next_req_id : int;
  req_done : (int, int) Hashtbl.t; (* request id -> service completion time *)
  mutable sweep_up : bool; (* elevator arm direction *)
}

let register_gauges t =
  let metrics = t.metrics and s = t.stats in
  Metrics.gauge metrics "device.ios" (fun () -> s.Iostats.ios);
  Metrics.gauge metrics "device.reads" (fun () -> s.Iostats.reads);
  Metrics.gauge metrics "device.writes" (fun () -> s.Iostats.writes);
  Metrics.gauge metrics "device.sectors_read" (fun () -> s.Iostats.sectors_read);
  Metrics.gauge metrics "device.sectors_written" (fun () -> s.Iostats.sectors_written);
  Metrics.gauge metrics "device.label_ops" (fun () -> s.Iostats.label_ops);
  Metrics.gauge metrics "device.seeks" (fun () -> s.Iostats.seeks);
  Metrics.gauge metrics "device.busy_us" (fun () -> s.Iostats.busy_us);
  Metrics.gauge metrics "device.qdepth" (fun () -> List.length t.queue)

let create ?(id = 0) ?trace ?metrics ~clock geom =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let stats = Iostats.create () in
  let t =
    {
      id;
      geom;
      clock;
      data = Hashtbl.create 4096;
      labels = Hashtbl.create 4096;
      damaged = Hashtbl.create 16;
      stats;
      trace;
      metrics;
      seek_dist = Metrics.dist metrics "device.seek_cyl";
      head_cyl = 0;
      write_crash = None;
      observer = None;
      deferred = false;
      busy_horizon = 0;
      qpolicy = Fifo;
      qdepth = 0;
      queue = [];
      next_req_id = 1;
      req_done = Hashtbl.create 256;
      sweep_up = true;
    }
  in
  register_gauges t;
  t

let geometry t = t.geom
let clock t = t.clock
let stats t = t.stats
let trace t = t.trace
let metrics t = t.metrics
let id t = t.id

let check_sector t s =
  if s < 0 || s >= Geometry.total_sectors t.geom then
    invalid_arg (Printf.sprintf "Device: sector %d out of range" s)

(* ------------------------------------------------------------------ *)
(* Timing engine                                                       *)

(* Rotational phase is derived from the command's start time, so the
   platter "keeps spinning" between commands: an operation issued right
   after another on the same track pays a full revolution unless the
   target sector is still ahead of the head — exactly the
   lost-revolution effect of §6. In the default synchronous mode a
   command starts now and advances the shared clock by its duration; in
   deferred mode it starts when this device's previous command finishes
   ([busy_horizon]), the clock is untouched, and the caller schedules
   the completion. With a request queue ([set_queue]) the mechanics run
   even later: at the service point the policy picks for the request,
   which is where seek distance and arm position are charged. *)

(* The mechanical cost of one command that begins service at [start],
   from the current arm position. Seek stats, [head_cyl] and the trace
   events are all charged here — i.e. in service order — and the events
   are stamped at [start] under [span], the span of the op that issued
   the command (not whatever op happens to be open at service time). *)
let mechanics t ~span ~start ~sector ~count ~write =
  let g = t.geom in
  let chs = Geometry.to_chs g sector in
  let dist = abs (chs.cyl - t.head_cyl) in
  let seek = Geometry.seek_us g dist in
  Stats.add t.seek_dist (float_of_int dist);
  if dist > 0 then begin
    t.stats.seeks <- t.stats.seeks + 1;
    t.stats.seek_us <- t.stats.seek_us + seek;
    if Trace.enabled t.trace then
      Trace.emit_span t.trace ~span ~at:start
        (Trace.Dev_seek { dev = t.id; cylinders = dist; us = seek })
  end;
  t.head_cyl <- chs.cyl;
  (* Wait for the first target sector to rotate under the head. *)
  let rot = Geometry.rotation_us g in
  let sector_t = Geometry.sector_time_us g in
  let target_start = chs.sector * sector_t in
  let phase = (start + seek) mod rot in
  let latency = (target_start - phase + rot) mod rot in
  t.stats.rotation_us <- t.stats.rotation_us + latency;
  let transfer = ref 0 in
  (* Transfer [count] consecutive sectors, charging head switches and
     track-to-track seeks at boundaries. *)
  for i = 0 to count - 1 do
    let s = sector + i in
    if i > 0 then begin
      let here = Geometry.to_chs g s and prev = Geometry.to_chs g (s - 1) in
      if here.cyl <> prev.cyl then begin
        (* Crossing a cylinder mid-run: short seek plus realignment. *)
        transfer := !transfer + Geometry.seek_us g 1 + (rot / 2);
        t.head_cyl <- here.cyl
      end
      else if here.head <> prev.head then
        (* Head switch absorbed by format skew of one sector. *)
        transfer := !transfer + g.Geometry.head_switch_us + sector_t
    end;
    transfer := !transfer + sector_t
  done;
  t.stats.transfer_us <- t.stats.transfer_us + !transfer;
  t.stats.busy_us <- t.stats.busy_us + seek + latency + !transfer;
  let dur = seek + latency + !transfer in
  if Trace.enabled t.trace then
    Trace.emit_span t.trace ~span ~at:start
      (if write then Trace.Dev_write { dev = t.id; sector; count; us = dur }
       else Trace.Dev_read { dev = t.id; sector; count; us = dur });
  dur

(* Non-queued path: service immediately (synchronous) or at this
   device's busy horizon (deferred). Either way service order is issue
   order, so the only queue-mode difference is where time is charged. *)
let run_now t ~sector ~count ~write =
  let now = Simclock.now t.clock in
  let start = if t.deferred then max now t.busy_horizon else now in
  let span = Trace.current_span t.trace in
  let dur = mechanics t ~span ~start ~sector ~count ~write in
  if t.deferred then t.busy_horizon <- start + dur
  else Simclock.advance t.clock dur

(* ------------------------------------------------------------------ *)
(* Request queue                                                       *)

let queued t = t.qdepth >= 2
let cyl_of t sector = (Geometry.to_chs t.geom sector).Geometry.cyl

(* Pick the next request to service. Ties (equal distance) go to the
   earliest-listed request, i.e. FIFO order, keeping every policy
   deterministic. *)
let pick t =
  match t.queue with
  | [] -> invalid_arg "Device.pick: empty queue"
  | [ r ] -> r
  | rs -> (
    let d r = abs (cyl_of t r.req_sector - t.head_cyl) in
    let nearest cands =
      List.fold_left
        (fun best r -> if d r < d best then r else best)
        (List.hd cands) (List.tl cands)
    in
    match t.qpolicy with
    | Fifo -> List.hd rs
    | Sstf -> (
      (* Aging: any request passed over [sstf_age_limit] times wins,
         oldest first — the starvation bound. *)
      match List.filter (fun r -> r.req_passes >= sstf_age_limit) rs with
      | aged :: _ -> aged
      | [] -> nearest rs)
    | Elevator -> (
      let ahead up =
        List.filter
          (fun r -> if up then cyl_of t r.req_sector >= t.head_cyl
                    else cyl_of t r.req_sector <= t.head_cyl)
          rs
      in
      match ahead t.sweep_up with
      | [] ->
        (* Nothing left in this direction: reverse the sweep. *)
        t.sweep_up <- not t.sweep_up;
        nearest (match ahead t.sweep_up with [] -> rs | l -> l)
      | cands -> nearest cands))

let service_one t =
  let r = pick t in
  t.queue <- List.filter (fun x -> x.req_id <> r.req_id) t.queue;
  List.iter (fun x -> x.req_passes <- x.req_passes + 1) t.queue;
  let start = max (max (Simclock.now t.clock) t.busy_horizon) r.req_enq_at in
  let dur =
    mechanics t ~span:r.req_span ~start ~sector:r.req_sector
      ~count:r.req_count ~write:r.req_write
  in
  t.busy_horizon <- start + dur;
  Hashtbl.replace t.req_done r.req_id (start + dur)

let enqueue t ~sector ~count ~write =
  (* A full tag queue blocks the host: service until a slot frees up. *)
  while List.length t.queue >= t.qdepth do
    service_one t
  done;
  let id = t.next_req_id in
  t.next_req_id <- id + 1;
  t.queue <-
    t.queue
    @ [
        {
          req_id = id;
          req_sector = sector;
          req_count = count;
          req_write = write;
          req_enq_at = Simclock.now t.clock;
          req_span = Trace.current_span t.trace;
          req_passes = 0;
        };
      ]

let drain_all t =
  while t.queue <> [] do
    service_one t
  done

let request_done_at t req =
  if req < 1 || req >= t.next_req_id then
    invalid_arg "Device.request_done_at: unknown request";
  let rec go () =
    match Hashtbl.find_opt t.req_done req with
    | Some at -> at
    | None ->
      assert (t.queue <> []);
      service_one t;
      go ()
  in
  go ()

let requests_done_at t ~first ~last =
  let worst = ref 0 in
  for req = first to last do
    worst := max !worst (request_done_at t req)
  done;
  !worst

let issued t = t.next_req_id - 1
let queue_length t = List.length t.queue

let set_queue t ~policy ~depth =
  if depth < 1 then invalid_arg "Device.set_queue: depth < 1";
  drain_all t;
  t.qpolicy <- policy;
  t.qdepth <- depth

let queue_config t = (t.qpolicy, t.qdepth)

let charge_read t ~sector ~count =
  t.stats.ios <- t.stats.ios + 1;
  t.stats.reads <- t.stats.reads + 1;
  t.stats.sectors_read <- t.stats.sectors_read + count;
  if queued t then enqueue t ~sector ~count ~write:false
  else run_now t ~sector ~count ~write:false;
  match t.observer with Some f -> f ~rw:`R ~sector ~count | None -> ()

let charge_write t ~sector ~count =
  t.stats.ios <- t.stats.ios + 1;
  t.stats.writes <- t.stats.writes + 1;
  t.stats.sectors_written <- t.stats.sectors_written + count;
  if queued t then enqueue t ~sector ~count ~write:true
  else run_now t ~sector ~count ~write:true;
  match t.observer with Some f -> f ~rw:`W ~sector ~count | None -> ()

let set_deferred t on = t.deferred <- on
let deferred t = t.deferred

let busy_until t =
  let now = Simclock.now t.clock in
  if queued t then begin
    (* A force is a synchronization barrier: everything outstanding is
       serviced (per policy) before the horizon is read. *)
    drain_all t;
    max now t.busy_horizon
  end
  else if t.deferred then max now t.busy_horizon
  else now

(* ------------------------------------------------------------------ *)
(* Raw store                                                           *)

let fetch t s =
  match Hashtbl.find_opt t.data s with
  | Some b -> Bytes.copy b
  | None -> Bytes.make t.geom.Geometry.sector_bytes '\000'

let store t s b = Hashtbl.replace t.data s (Bytes.copy b)

let ensure_ok t s =
  if Hashtbl.mem t.damaged s then raise (Error { sector = s; kind = Damaged })

(* Write-crash bookkeeping: returns how many of [count] sectors may still
   be written before the fault fires, or [count] if no fault is armed. *)
let crash_budget t count =
  match t.write_crash with
  | None -> count
  | Some (remaining, _) -> min remaining count

let consume_write_budget t n =
  match t.write_crash with
  | None -> ()
  | Some (remaining, tear) -> t.write_crash <- Some (remaining - n, tear)

(* Deterministic "noise off the head" for a torn sector: a function of the
   sector number only, so sweeps are reproducible. *)
let garbage_sector t sector =
  Bytes.init t.geom.Geometry.sector_bytes (fun i ->
      Char.chr (((sector * 131) + (i * 7) + 13) land 0xff))

let fire_crash t ~sector ~tear =
  t.write_crash <- None;
  (match tear with
  | Tear_none -> () (* power fails before the head reaches the sector *)
  | Tear_zero ->
      if sector < Geometry.total_sectors t.geom then begin
        store t sector (Bytes.make t.geom.Geometry.sector_bytes '\000');
        Hashtbl.remove t.damaged sector
      end
  | Tear_garbage ->
      if sector < Geometry.total_sectors t.geom then begin
        store t sector (garbage_sector t sector);
        Hashtbl.remove t.damaged sector
      end
  | Tear_damage tail ->
      for i = 0 to tail - 1 do
        let s = sector + i in
        if s < Geometry.total_sectors t.geom then Hashtbl.replace t.damaged s ()
      done);
  raise (Crash_during_write { sector })

(* ------------------------------------------------------------------ *)
(* Plain sector I/O                                                    *)

let read_run t ~sector ~count =
  if count <= 0 then invalid_arg "Device.read_run";
  check_sector t sector;
  check_sector t (sector + count - 1);
  charge_read t ~sector ~count;
  for i = 0 to count - 1 do
    ensure_ok t (sector + i)
  done;
  let sb = t.geom.Geometry.sector_bytes in
  let out = Bytes.create (count * sb) in
  for i = 0 to count - 1 do
    Bytes.blit (fetch t (sector + i)) 0 out (i * sb) sb
  done;
  out

let read t s = read_run t ~sector:s ~count:1

let write_sectors t ~sector ~count ~get =
  check_sector t sector;
  check_sector t (sector + count - 1);
  charge_write t ~sector ~count;
  let budget = crash_budget t count in
  for i = 0 to budget - 1 do
    let s = sector + i in
    store t s (get i);
    Hashtbl.remove t.damaged s
  done;
  consume_write_budget t budget;
  if budget < count then
    match t.write_crash with
    | Some (_, tear) -> fire_crash t ~sector:(sector + budget) ~tear
    | None -> assert false

let write_run t ~sector b =
  let sb = t.geom.Geometry.sector_bytes in
  if Bytes.length b = 0 || Bytes.length b mod sb <> 0 then
    invalid_arg "Device.write_run: not a whole number of sectors";
  let count = Bytes.length b / sb in
  write_sectors t ~sector ~count ~get:(fun i -> Bytes.sub b (i * sb) sb)

let write t s b =
  if Bytes.length b <> t.geom.Geometry.sector_bytes then
    invalid_arg "Device.write: not one sector";
  write_sectors t ~sector:s ~count:1 ~get:(fun _ -> b)

(* ------------------------------------------------------------------ *)
(* Labeled I/O                                                         *)

let label_of t s =
  match Hashtbl.find_opt t.labels s with Some l -> l | None -> Label.free

let read_label t s =
  check_sector t s;
  (* A label read is a positioning plus a (sub-sector) transfer; charge one
     sector time as the microcode must see the whole sector pass by. *)
  charge_read t ~sector:s ~count:1;
  t.stats.label_ops <- t.stats.label_ops + 1;
  ensure_ok t s;
  label_of t s

let write_labels t ~sector labels =
  let count = List.length labels in
  if count = 0 then invalid_arg "Device.write_labels";
  check_sector t sector;
  check_sector t (sector + count - 1);
  charge_write t ~sector ~count;
  t.stats.label_ops <- t.stats.label_ops + count;
  List.iteri
    (fun i l ->
      Hashtbl.replace t.labels (sector + i) l;
      Hashtbl.remove t.damaged (sector + i))
    labels

let check_label t s ~expect =
  let found = label_of t s in
  if not (Label.equal found expect) then
    raise (Error { sector = s; kind = Label_mismatch { expected = expect; found } })

let verified_read t s ~expect =
  check_sector t s;
  charge_read t ~sector:s ~count:1;
  t.stats.label_ops <- t.stats.label_ops + 1;
  ensure_ok t s;
  check_label t s ~expect;
  fetch t s

let verified_write t s ~expect b =
  if Bytes.length b <> t.geom.Geometry.sector_bytes then
    invalid_arg "Device.verified_write: not one sector";
  check_sector t s;
  ensure_ok t s;
  check_label t s ~expect;
  t.stats.label_ops <- t.stats.label_ops + 1;
  write_sectors t ~sector:s ~count:1 ~get:(fun _ -> b)

let verified_read_run t ~sector ~expect =
  let count = List.length expect in
  if count = 0 then invalid_arg "Device.verified_read_run";
  check_sector t sector;
  check_sector t (sector + count - 1);
  charge_read t ~sector ~count;
  t.stats.label_ops <- t.stats.label_ops + count;
  for i = 0 to count - 1 do
    ensure_ok t (sector + i)
  done;
  List.iteri (fun i l -> check_label t (sector + i) ~expect:l) expect;
  let sb = t.geom.Geometry.sector_bytes in
  let out = Bytes.create (count * sb) in
  List.iteri (fun i _ -> Bytes.blit (fetch t (sector + i)) 0 out (i * sb) sb) expect;
  out

let verified_write_run t ~sector ~expect b =
  let sb = t.geom.Geometry.sector_bytes in
  let count = List.length expect in
  if count = 0 || Bytes.length b <> count * sb then
    invalid_arg "Device.verified_write_run";
  check_sector t sector;
  check_sector t (sector + count - 1);
  List.iteri (fun i l -> check_label t (sector + i) ~expect:l) expect;
  t.stats.label_ops <- t.stats.label_ops + count;
  write_sectors t ~sector ~count ~get:(fun i -> Bytes.sub b (i * sb) sb)

let scan_labels t ~from ~count f =
  check_sector t from;
  check_sector t (from + count - 1);
  (* The scavenger reads labels a whole track at a time. *)
  let spt = t.geom.Geometry.sectors_per_track in
  let s = ref from in
  let remaining = ref count in
  while !remaining > 0 do
    let track_left = spt - (!s mod spt) in
    let n = min track_left !remaining in
    charge_read t ~sector:!s ~count:n;
    t.stats.label_ops <- t.stats.label_ops + n;
    for i = 0 to n - 1 do
      let sec = !s + i in
      let l = if Hashtbl.mem t.damaged sec then None else Some (label_of t sec) in
      f sec l
    done;
    s := !s + n;
    remaining := !remaining - n
  done

(* ------------------------------------------------------------------ *)
(* Fault injection & observation                                       *)

let damage t s =
  check_sector t s;
  Hashtbl.replace t.damaged s ()

let corrupt t s ~rng =
  check_sector t s;
  let b = Bytes.init t.geom.Geometry.sector_bytes (fun _ -> Char.chr (Rng.int rng 256)) in
  store t s b

let is_damaged t s = Hashtbl.mem t.damaged s

let plan_write_crash_tear t ~after_sectors ~tear =
  if after_sectors < 0 then invalid_arg "Device.plan_write_crash_tear";
  (match tear with
  | Tear_damage tail when tail < 0 || tail > 2 ->
      invalid_arg "Device.plan_write_crash_tear: damage tail"
  | _ -> ());
  t.write_crash <- Some (after_sectors, tear)

let plan_write_crash t ~after_sectors ~damage_tail =
  plan_write_crash_tear t ~after_sectors ~tear:(Tear_damage damage_tail)

let cancel_write_crash t = t.write_crash <- None
let set_observer t f = t.observer <- f
let written_ever t s = Hashtbl.mem t.data s

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)

let magic = 0x43445631 (* "CDV1" *)

let dump t oc =
  let w = Bytebuf.Writer.create ~initial:65536 () in
  Bytebuf.Writer.u32 w magic;
  let g = t.geom in
  Bytebuf.Writer.u32 w g.Geometry.cylinders;
  Bytebuf.Writer.u32 w g.Geometry.heads;
  Bytebuf.Writer.u32 w g.Geometry.sectors_per_track;
  Bytebuf.Writer.u32 w g.Geometry.sector_bytes;
  Bytebuf.Writer.u32 w g.Geometry.rpm;
  Bytebuf.Writer.u32 w g.Geometry.min_seek_us;
  Bytebuf.Writer.u32 w g.Geometry.avg_seek_us;
  Bytebuf.Writer.u32 w g.Geometry.max_seek_us;
  Bytebuf.Writer.u32 w g.Geometry.head_switch_us;
  Bytebuf.Writer.u32 w (Hashtbl.length t.data);
  Hashtbl.iter
    (fun s b ->
      Bytebuf.Writer.u32 w s;
      Bytebuf.Writer.raw w b)
    t.data;
  Bytebuf.Writer.u32 w (Hashtbl.length t.labels);
  Hashtbl.iter
    (fun s l ->
      Bytebuf.Writer.u32 w s;
      Bytebuf.Writer.raw w (Label.encode l))
    t.labels;
  Bytebuf.Writer.u32 w (Hashtbl.length t.damaged);
  Hashtbl.iter (fun s () -> Bytebuf.Writer.u32 w s) t.damaged;
  let b = Bytebuf.Writer.contents w in
  output_bytes oc b

let load ?id ?trace ?metrics ~clock ic =
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  let r = Bytebuf.Reader.of_bytes b in
  Bytebuf.Reader.expect_u32 r magic "disk image magic";
  let cylinders = Bytebuf.Reader.u32 r in
  let heads = Bytebuf.Reader.u32 r in
  let sectors_per_track = Bytebuf.Reader.u32 r in
  let sector_bytes = Bytebuf.Reader.u32 r in
  let rpm = Bytebuf.Reader.u32 r in
  let min_seek_us = Bytebuf.Reader.u32 r in
  let avg_seek_us = Bytebuf.Reader.u32 r in
  let max_seek_us = Bytebuf.Reader.u32 r in
  let head_switch_us = Bytebuf.Reader.u32 r in
  let geom =
    {
      Geometry.cylinders;
      heads;
      sectors_per_track;
      sector_bytes;
      rpm;
      min_seek_us;
      avg_seek_us;
      max_seek_us;
      head_switch_us;
    }
  in
  let t = create ?id ?trace ?metrics ~clock geom in
  let ndata = Bytebuf.Reader.u32 r in
  for _ = 1 to ndata do
    let s = Bytebuf.Reader.u32 r in
    Hashtbl.replace t.data s (Bytebuf.Reader.raw r sector_bytes)
  done;
  let nlabels = Bytebuf.Reader.u32 r in
  for _ = 1 to nlabels do
    let s = Bytebuf.Reader.u32 r in
    Hashtbl.replace t.labels s (Label.decode (Bytebuf.Reader.raw r 13))
  done;
  let ndamaged = Bytebuf.Reader.u32 r in
  for _ = 1 to ndamaged do
    Hashtbl.replace t.damaged (Bytebuf.Reader.u32 r) ()
  done;
  t
