(** Sector-level disk simulator with a mechanical timing model.

    The simulator tracks arm position and rotational phase (derived from
    the virtual clock) and charges each command seek time, rotational
    latency, and transfer time. It therefore exhibits the phenomena the
    paper's §6 model reasons about — lost revolutions on
    read-then-rewrite, free rides for sectors that "have just gone past the
    head", cheap same-cylinder transfers — without any per-operation
    special-casing.

    Failure model (§5.3): at most one fault at a time, damaging one or two
    consecutive sectors. Torn multi-sector writes are injected with
    {!plan_write_crash}; reads of damaged sectors raise {!Error}. *)

type t

type fault_kind =
  | Damaged  (** media error: read fails *)
  | Label_mismatch of { expected : Label.t; found : Label.t }

type tear =
  | Tear_none  (** power fails before the head reaches the sector *)
  | Tear_zero  (** the interrupted sector reads back as zeroes *)
  | Tear_garbage  (** the interrupted sector reads back as noise *)
  | Tear_damage of int
      (** 0–2 sectors become media errors (the legacy §5.3 model) *)
(** What the crash leaves behind at the first unwritten sector of the
    interrupted command. *)

exception Error of { sector : int; kind : fault_kind }

exception Crash_during_write of { sector : int }
(** Raised when an injected write fault fires; the test harness treats this
    as the machine halting mid-write. *)

val create :
  ?id:int ->
  ?trace:Cedar_obs.Trace.t ->
  ?metrics:Cedar_obs.Metrics.t ->
  clock:Cedar_util.Simclock.t ->
  Geometry.t ->
  t
(** A fresh trace (disabled) and metrics registry are created unless
    supplied; the device registers its [Iostats] fields as
    ["device.*"] gauges, a ["device.qdepth"] occupancy gauge, and a
    ["device.seek_cyl"] seek-distance dist in the registry. Higher
    layers share the device's trace and registry via {!trace} /
    {!metrics}. [id] (default 0) is stamped into this device's trace
    events — a multi-volume set numbers its devices by volume index. *)

val geometry : t -> Geometry.t
val clock : t -> Cedar_util.Simclock.t
val stats : t -> Iostats.t

val id : t -> int
(** The device id stamped into [Dev_*] trace events. *)

val trace : t -> Cedar_obs.Trace.t
(** The volume-wide event trace. Disabled (and allocation-free on the
    I/O path) until [Trace.enable]; every device command then emits a
    [Dev_read]/[Dev_write] event carrying its simulated latency, plus
    [Dev_seek] for arm movement. *)

val metrics : t -> Cedar_obs.Metrics.t
(** The volume-wide metrics registry; every layer above registers its
    instruments here. *)

(** {1 Deferred timing (multi-device parallelism)} *)

val set_deferred : t -> bool -> unit
(** In the default synchronous mode every command advances the shared
    clock by its duration, so commands on different devices serialise in
    simulated time. With [set_deferred t true] a command instead starts
    at [max now (busy_until t)] — queueing behind this device's previous
    command only — updates {!busy_until}, and leaves the clock alone;
    commands on different devices then overlap, which is what lets a
    multi-volume server scale. The caller owns completion: it must not
    treat a command's result as available before [busy_until t] (the
    multi-volume scheduler parks the issuing session until then). The
    mechanical model (seek, rotation phase at command start, transfer)
    and all [Iostats] accounting are identical in both modes. *)

val deferred : t -> bool

val busy_until : t -> int
(** Completion time of this device's latest command: the virtual instant
    the caller may consume its result. Equals [Simclock.now] in
    synchronous mode (commands complete before returning). With a
    request queue enabled this is a synchronization barrier: every
    pending request is serviced (in policy order) first — which is what
    a group-commit force wants, and why per-request completions go
    through {!requests_done_at} instead. *)

(** {1 Request queue (disk-arm scheduling)} *)

type policy =
  | Fifo  (** service in enqueue order — a queue with no reordering *)
  | Elevator
      (** SCAN: keep sweeping in one direction, service the nearest
          request ahead of the arm, reverse when none remain *)
  | Sstf
      (** shortest-seek-time-first, with an aging bound: a request
          passed over 8 times is serviced before any nearest pick, so
          no request starves behind a hot cylinder *)

val policy_to_string : policy -> string

val policy_of_string : string -> policy option
(** ["fifo"], ["elevator"], ["sstf"]. *)

val set_queue : t -> policy:policy -> depth:int -> unit
(** Give the device a request queue of [depth] slots. Data and label
    effects (contents, crash budget, the observer, count stats) still
    happen when a command is issued, but its mechanical timing — seek
    from the {e current} arm position, rotation, transfer — is resolved
    at the service point the policy picks, so seeks and [head_cyl] are
    charged in service order. A full queue services one request to
    free a slot before accepting the next. Any pending requests under
    the previous configuration are drained first.

    [depth < 2] degenerates to the plain synchronous/deferred path
    (service order is issue order and nothing is ever outstanding), and
    is byte-identical to a device without a queue — the determinism pin
    for the scheduler seam. Raises [Invalid_argument] if [depth < 1]. *)

val queue_config : t -> policy * int
(** Current [(policy, depth)]; depth 0 until {!set_queue}. *)

val queued : t -> bool
(** Whether the request queue is live (configured with depth ≥ 2). *)

val queue_length : t -> int
(** Requests currently pending (also the ["device.qdepth"] gauge). *)

val issued : t -> int
(** Id of the most recently enqueued request, 0 before any. Ids are
    dense, so the requests a caller issued during an operation are
    exactly [issued t + 1 .. issued t'] around it. *)

val request_done_at : t -> int -> int
(** Completion time of request [id], servicing pending requests (in
    policy order) until it has run. Raises [Invalid_argument] for an id
    never issued. *)

val requests_done_at : t -> first:int -> last:int -> int
(** Latest completion time over the id range — when an op whose
    commands got those ids may be acknowledged. [first > last] (the op
    issued nothing) is 0. *)

(** {1 Plain sector I/O (used by FSD and the BSD baseline)} *)

val read : t -> int -> bytes
(** [read t s] is a fresh copy of sector [s]'s contents (zeroes if never
    written). Raises [Error] if the sector is damaged. *)

val write : t -> int -> bytes -> unit
(** [write t s b]. [b] must be exactly one sector. Writing a damaged
    sector repairs it (re-written media reads back fine). *)

val read_run : t -> sector:int -> count:int -> bytes
(** One command transferring [count] consecutive sectors; result is their
    concatenation. *)

val write_run : t -> sector:int -> bytes -> unit
(** One command writing [Bytes.length / sector_bytes] consecutive sectors. *)

(** {1 Labeled I/O (used by CFS; models Trident microcode)} *)

val read_label : t -> int -> Label.t
(** Reads just the label field of a sector; costs a (short) disk access.
    Damaged sectors raise [Error]. *)

val write_labels : t -> sector:int -> Label.t list -> unit
(** One command (re)writing the label fields of consecutive sectors —
    how CFS claims or frees pages. *)

val verified_read : t -> int -> expect:Label.t -> bytes
(** Microcode check-then-transfer: raises [Error] with [Label_mismatch] if
    the on-disk label differs from [expect]. *)

val verified_write : t -> int -> expect:Label.t -> bytes -> unit

val verified_read_run : t -> sector:int -> expect:Label.t list -> bytes
(** One command verifying and reading several consecutive sectors. *)

val verified_write_run : t -> sector:int -> expect:Label.t list -> bytes -> unit
(** One command verifying and writing several consecutive sectors; the
    [i]-th label is checked against sector [sector + i] before its data is
    transferred. *)

val scan_labels :
  t -> from:int -> count:int -> (int -> Label.t option -> unit) -> unit
(** Sequential label scan (the scavenger). Charged as full-track reads.
    Damaged sectors yield [None] instead of raising. *)

(** {1 Fault injection} *)

val damage : t -> int -> unit
(** Mark a sector as a media error until rewritten. *)

val corrupt : t -> int -> rng:Cedar_util.Rng.t -> unit
(** Silently replace a sector's contents with random bytes (readable but
    wrong; caught only by checksums or replica comparison). *)

val is_damaged : t -> int -> bool

val plan_write_crash : t -> after_sectors:int -> damage_tail:int -> unit
(** Arm a fault: after [after_sectors] more sectors have been written, the
    current command stops; [damage_tail] (1 or 2) further sectors of the
    command are damaged; [Crash_during_write] is raised. Equivalent to
    {!plan_write_crash_tear} with [Tear_damage damage_tail]. *)

val plan_write_crash_tear : t -> after_sectors:int -> tear:tear -> unit
(** Arm a fault with an explicit tear mode for the sector the command was
    interrupted at: [Tear_none] leaves it untouched (clean prefix),
    [Tear_zero]/[Tear_garbage] store a zeroed/noise sector first (a torn
    write that still reads back without a media error), [Tear_damage n]
    marks [n] sectors as media errors. *)

val cancel_write_crash : t -> unit

(** {1 Observation} *)

val set_observer : t -> (rw:[ `R | `W ] -> sector:int -> count:int -> unit) option -> unit
(** Callback invoked on every data command, used by tests to assert I/O
    patterns. *)

val written_ever : t -> int -> bool
(** Whether a sector has ever been written (distinguishes zeroed-but-real
    from never-touched in tests). *)

(** {1 Persistence (CLI disk images)} *)

val dump : t -> out_channel -> unit

val load :
  ?id:int ->
  ?trace:Cedar_obs.Trace.t ->
  ?metrics:Cedar_obs.Metrics.t ->
  clock:Cedar_util.Simclock.t ->
  in_channel ->
  t
