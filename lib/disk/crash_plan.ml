(* Force-ordinal crash planning over Device.

   The device can already kill itself after N more sector writes
   (plan_write_crash_tear), but a crash sweep wants coordinates that mean
   something to the recovery story: "the K-th sector write of the M-th
   force interval". This layer supplies the translation. It counts data
   writes per force interval via the device observer (a recording pass),
   and arms the device-level fault when the target interval opens.

   Interval m is the span between the m-th and (m+1)-th calls to
   [note_force]; interval 0 runs from [attach] to the first force. The
   caller is responsible for invoking [note_force] at every force point
   (the server's [on_force] hook fires just before [Fsd.force], which is
   exactly the boundary wanted here: writes belonging to force m's commit
   land in interval m). *)

type t = {
  dev : Device.t;
  mutable closed : int list; (* per-interval write counts, reversed *)
  mutable current : int; (* sector writes in the open interval *)
  mutable forces : int; (* note_force calls so far *)
  mutable armed : (int * int * Device.tear) option; (* force, write, tear *)
}

let attach dev =
  let t = { dev; closed = []; current = 0; forces = 0; armed = None } in
  Device.set_observer dev
    (Some
       (fun ~rw ~sector:_ ~count ->
         match rw with `W -> t.current <- t.current + count | `R -> ()));
  t

let detach t = Device.set_observer t.dev None

let plan_now t ~write ~tear =
  Device.plan_write_crash_tear t.dev ~after_sectors:write ~tear

let arm t ~force ~write ~tear =
  if force < 0 || write < 0 then invalid_arg "Crash_plan.arm";
  if force <= t.forces then plan_now t ~write ~tear
  else t.armed <- Some (force, write, tear)

let note_force t =
  t.closed <- t.current :: t.closed;
  t.current <- 0;
  t.forces <- t.forces + 1;
  match t.armed with
  | Some (force, write, tear) when force = t.forces ->
      t.armed <- None;
      plan_now t ~write ~tear
  | _ -> ()

let forces_seen t = t.forces

let writes_per_interval t =
  Array.of_list (List.rev (t.current :: t.closed))
