module Stats = Cedar_util.Stats

type t = {
  op_latency : (string * Stats.t) list;
  ops_per_force : Stats.t;
  force_interval_us : Stats.t;
  third_timeline : (int * int * int) list;
  fnt_dirty_age_us : Stats.t option;
  forces : int;
  empty_forces : int;
  blackbox_checkpoints : int;
}

let of_entries ?fnt_dirty_age_us entries =
  let latency : (string, Stats.t) Hashtbl.t = Hashtbl.create 16 in
  let lat op =
    match Hashtbl.find_opt latency op with
    | Some s -> s
    | None ->
      let s = Stats.create () in
      Hashtbl.replace latency op s;
      s
  in
  let ops_per_force = Stats.create () in
  let force_interval_us = Stats.create () in
  let ops_since = ref 0 in
  let last_force_at = ref None in
  let forces = ref 0 in
  let empty_forces = ref 0 in
  let checkpoints = ref 0 in
  let timeline = ref [] in
  let cur_third = ref (-1) in
  let occupied = ref 0 in
  List.iter
    (fun (e : Trace.entry) ->
      match e.Trace.event with
      | Trace.Op_end { op; us } ->
        Stats.add (lat op) (float_of_int us);
        (* The force span itself, and the black-box checkpoint nested in
           it, are bookkeeping — not operations the force amortises. *)
        if op <> "force" && op <> "blackbox" then incr ops_since
      | Trace.Log_force { empty; _ } ->
        if empty then incr empty_forces else incr forces;
        Stats.add ops_per_force (float_of_int !ops_since);
        ops_since := 0;
        (match !last_force_at with
        | Some t0 -> Stats.add force_interval_us (float_of_int (e.Trace.at_us - t0))
        | None -> ());
        last_force_at := Some e.Trace.at_us
      | Trace.Log_append { third; total_sectors; _ } ->
        if third <> !cur_third then begin
          cur_third := third;
          occupied := 0
        end;
        occupied := !occupied + total_sectors;
        timeline := (e.Trace.at_us, third, !occupied) :: !timeline
      | Trace.Blackbox_checkpoint _ -> incr checkpoints
      | _ -> ())
    entries;
  let op_latency =
    Hashtbl.fold (fun op s acc -> (op, s) :: acc) latency []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    op_latency;
    ops_per_force;
    force_interval_us;
    third_timeline = List.rev !timeline;
    fnt_dirty_age_us;
    forces = !forces;
    empty_forces = !empty_forces;
    blackbox_checkpoints = !checkpoints;
  }

let dist_json s =
  if Stats.n s = 0 then Jsonb.Obj [ ("n", Jsonb.Int 0) ]
  else
    Jsonb.Obj
      [
        ("n", Jsonb.Int (Stats.n s));
        ("mean", Jsonb.Float (Stats.mean s));
        ("min", Jsonb.Float (Stats.min s));
        ("p50", Jsonb.Float (Stats.percentile s 0.5));
        ("p90", Jsonb.Float (Stats.percentile s 0.9));
        ("p99", Jsonb.Float (Stats.percentile s 0.99));
        ("max", Jsonb.Float (Stats.max s));
      ]

let to_json t =
  Jsonb.Obj
    [
      ( "op_latency_us",
        Jsonb.Obj (List.map (fun (op, s) -> (op, dist_json s)) t.op_latency) );
      ("ops_per_force", dist_json t.ops_per_force);
      ("force_interval_us", dist_json t.force_interval_us);
      ("forces", Jsonb.Int t.forces);
      ("empty_forces", Jsonb.Int t.empty_forces);
      ("blackbox_checkpoints", Jsonb.Int t.blackbox_checkpoints);
      ( "fnt_dirty_age_us",
        match t.fnt_dirty_age_us with None -> Jsonb.Null | Some s -> dist_json s );
      ( "third_timeline",
        Jsonb.Arr
          (List.map
             (fun (at_us, third, occupied) ->
               Jsonb.Obj
                 [
                   ("at_us", Jsonb.Int at_us);
                   ("third", Jsonb.Int third);
                   ("occupied_sectors", Jsonb.Int occupied);
                 ])
             t.third_timeline) );
    ]

let pp_dist ppf s =
  if Stats.n s = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.1f min=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f"
      (Stats.n s) (Stats.mean s) (Stats.min s) (Stats.percentile s 0.5)
      (Stats.percentile s 0.9) (Stats.percentile s 0.99) (Stats.max s)

let pp ppf t =
  Format.fprintf ppf "per-op latency (simulated us):@.";
  List.iter
    (fun (op, s) -> Format.fprintf ppf "  %-12s %a@." op pp_dist s)
    t.op_latency;
  Format.fprintf ppf "group commit: %d forces, %d empty forces, %d black-box checkpoints@."
    t.forces t.empty_forces t.blackbox_checkpoints;
  Format.fprintf ppf "  ops/force:         %a@." pp_dist t.ops_per_force;
  Format.fprintf ppf "  force interval us: %a@." pp_dist t.force_interval_us;
  (match t.fnt_dirty_age_us with
  | None -> ()
  | Some s -> Format.fprintf ppf "  fnt dirty-page age us: %a@." pp_dist s);
  match t.third_timeline with
  | [] -> Format.fprintf ppf "log thirds: no appends traced@."
  | tl ->
    let at, third, occ = List.nth tl (List.length tl - 1) in
    Format.fprintf ppf
      "log thirds: %d appends traced; last: third %d at %d sectors (t=%.3fms)@."
      (List.length tl) third occ
      (float_of_int at /. 1000.)
