(** Time-series sampler over the {!Metrics} registry.

    A monitor turns the registry's point-in-time instruments into a
    bounded ring of timestamped snapshots on a fixed virtual-time
    cadence: each {!sample} carries per-interval {e counter deltas},
    gauge {e point values}, sliding-window percentiles for watched
    distributions, and {e derived} float gauges (saturation figures such
    as device busy fraction or reject rate) computed from the same
    interval through a {!view}.

    The monitor is pull-driven: the owner polls {!maybe_sample} from its
    demon dispatch path and the monitor decides, from the clock alone,
    whether an interval has elapsed. Determinism contract: with the same
    registry contents and the same virtual clock, two runs produce
    byte-identical sample lists — iteration follows the registry's
    name-sorted view, never hashtable order. *)

type window_stat = { w_n : int; w_p50 : float; w_p90 : float; w_p99 : float }
(** Nearest-rank percentiles over the last [window] values a watched
    distribution recorded (not cumulative-since-boot like
    [Metrics.snapshot]); [w_n] is the number of values currently in the
    window, 0 when the dist has recorded nothing yet. *)

type sample = {
  at_us : int;  (** virtual time the sample was taken *)
  dt_us : int;  (** elapsed virtual time since the previous sample *)
  counters : (string * int) list;  (** per-interval deltas, name-sorted *)
  gauges : (string * int) list;  (** point values, name-sorted *)
  derived : (string * float) list;  (** derived gauges, name-sorted *)
  dists : (string * window_stat) list;  (** watched dists, name-sorted *)
}

type view = {
  dt_us : int;  (** elapsed virtual time this interval *)
  delta : string -> int;
      (** change of the named counter {e or} gauge over the interval;
          0 for unknown names *)
  value : string -> int;
      (** current value of the named counter or gauge; 0 for unknown *)
}
(** What a derived-gauge function sees: the interval just measured. *)

type t

val create :
  ?ring:int -> ?window:int -> interval_us:int -> now:(unit -> int) -> Metrics.t -> t
(** [create ~interval_us ~now metrics] samples [metrics] every
    [interval_us] of the virtual clock [now]. [ring] bounds retained
    samples (default 4096, oldest evicted first); [window] bounds each
    watched dist's sliding window (default 256 values). Raises
    [Invalid_argument] if any of the three is below 1. *)

val interval_us : t -> int

val derive : t -> string -> (view -> float) -> unit
(** Register (or replace) a derived float gauge evaluated at every
    sample over that interval's {!view}. *)

val watch_dist : t -> string -> unit
(** Start tracking sliding-window percentiles for the distribution
    registered in the metrics registry under this name. Idempotent; a
    name not (yet) registered reports [w_n = 0] until it appears. If
    the owner re-registers the dist with a fresh series (per-boot
    reset), the window restarts from the new series. *)

val maybe_sample : t -> unit
(** Take a sample iff at least [interval_us] has elapsed since the last
    one (or since creation). The owner's hot-path guard is one branch on
    an option plus this comparison. *)

val sample_now : t -> sample
(** Take a sample unconditionally and return it. *)

val due_at : t -> int
(** Virtual time at which the next sample becomes due. *)

val set_on_sample : t -> (sample -> unit) -> unit
(** Callback invoked with each new sample (live [--watch] rendering). *)

val samples : t -> sample list
(** Retained samples, oldest first. *)

val last_sample : t -> sample option
val count : t -> int
(** Samples currently retained (at most [ring]). *)

val total : t -> int
(** Samples taken over the monitor's lifetime, including evicted ones. *)

val evicted : t -> int
(** Samples evicted because the ring was full. *)
