(* Time-series sampler over the metrics registry.

   The monitor is polled from the demon dispatch path (and at op
   boundaries); whenever at least [interval_us] of virtual time has
   passed since the previous sample it folds the registry into one
   timestamped [sample]: counter deltas over the interval, gauge point
   values, windowed dist percentiles, and derived float gauges (the
   saturation figures) computed from the same interval. Samples live in
   a bounded ring, oldest evicted first.

   Everything is deterministic: iteration order is the registry's
   name-sorted [Metrics.kinds] view, the only clock is the caller's
   [now] closure, and no wall time or hashtable order leaks into a
   sample. *)

module Stats = Cedar_util.Stats

type window_stat = { w_n : int; w_p50 : float; w_p90 : float; w_p99 : float }

type sample = {
  at_us : int;
  dt_us : int;
  counters : (string * int) list;
  gauges : (string * int) list;
  derived : (string * float) list;
  dists : (string * window_stat) list;
}

type view = { dt_us : int; delta : string -> int; value : string -> int }

type watch = {
  mutable w_seen : int;  (* Stats.n at the previous sample *)
  w_buf : float array;  (* circular: last [window] recorded values *)
  mutable w_len : int;
  mutable w_next : int;  (* next write position *)
}

type t = {
  metrics : Metrics.t;
  interval_us : int;
  now : unit -> int;
  window : int;
  mutable derived_fns : (string * (view -> float)) list;  (* name-sorted *)
  mutable watches : (string * watch) list;  (* name-sorted *)
  prev : (string, int) Hashtbl.t;  (* last sampled counter/gauge values *)
  ring : sample array;  (* length = capacity; only [len] slots valid *)
  mutable head : int;  (* index of the oldest sample *)
  mutable len : int;
  mutable evicted : int;
  mutable last_at : int;
  mutable total : int;  (* samples taken over the monitor's lifetime *)
  mutable on_sample : (sample -> unit) option;
}

let dummy_sample =
  { at_us = 0; dt_us = 0; counters = []; gauges = []; derived = []; dists = [] }

let create ?(ring = 4096) ?(window = 256) ~interval_us ~now metrics =
  if interval_us < 1 then invalid_arg "Monitor.create: interval_us < 1";
  if ring < 1 then invalid_arg "Monitor.create: ring < 1";
  if window < 1 then invalid_arg "Monitor.create: window < 1";
  let t =
    {
      metrics;
      interval_us;
      now;
      window;
      derived_fns = [];
      watches = [];
      prev = Hashtbl.create 64;
      ring = Array.make ring dummy_sample;
      head = 0;
      len = 0;
      evicted = 0;
      last_at = now ();
      total = 0;
      on_sample = None;
    }
  in
  (* Seed the delta baseline from the registry's current values, so the
     first interval measures change since creation — not cumulative
     totals over a dt that only spans one interval (a busy fraction
     above 1.0, say). Instruments registered later baseline at 0, which
     is where they start anyway. *)
  List.iter
    (fun (name, kind) ->
      match kind with
      | `Dist -> ()
      | `Counter | `Gauge -> (
        match Metrics.read metrics name with
        | Some v -> Hashtbl.replace t.prev name v
        | None -> ()))
    (Metrics.kinds metrics);
  t

let interval_us t = t.interval_us
let set_on_sample t f = t.on_sample <- Some f

let sorted_replace name v assoc =
  (name, v) :: List.remove_assoc name assoc
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let derive t name f = t.derived_fns <- sorted_replace name f t.derived_fns

let watch_dist t name =
  if not (List.mem_assoc name t.watches) then
    t.watches <-
      sorted_replace name
        { w_seen = 0; w_buf = Array.make t.window 0.0; w_len = 0; w_next = 0 }
        t.watches

(* Pull the values a watched dist gained since our last visit into the
   watch's circular window. [Stats.values] only ever grows, except when
   a layer re-registers the name with a fresh series (per-boot reset) —
   then [n] shrinks and we restart the watch from scratch. *)
let refresh_watch w s =
  let n = Stats.n s in
  if n < w.w_seen then begin
    w.w_seen <- 0;
    w.w_len <- 0;
    w.w_next <- 0
  end;
  let fresh = n - w.w_seen in
  if fresh > 0 then begin
    (* newest-first from [recent]; insert oldest-first to keep the
       window chronological. *)
    List.iter
      (fun v ->
        w.w_buf.(w.w_next) <- v;
        w.w_next <- (w.w_next + 1) mod Array.length w.w_buf;
        if w.w_len < Array.length w.w_buf then w.w_len <- w.w_len + 1)
      (List.rev (Stats.recent s fresh));
    w.w_seen <- n
  end

let watch_stat w =
  if w.w_len = 0 then { w_n = 0; w_p50 = 0.0; w_p90 = 0.0; w_p99 = 0.0 }
  else begin
    let a = Array.make w.w_len 0.0 in
    let cap = Array.length w.w_buf in
    let start = (w.w_next - w.w_len + cap) mod cap in
    for i = 0 to w.w_len - 1 do
      a.(i) <- w.w_buf.((start + i) mod cap)
    done;
    Array.sort compare a;
    let pct p =
      let idx = int_of_float (ceil (p *. float_of_int w.w_len)) - 1 in
      a.(max 0 (min (w.w_len - 1) idx))
    in
    { w_n = w.w_len; w_p50 = pct 0.5; w_p90 = pct 0.9; w_p99 = pct 0.99 }
  end

let push t s =
  let cap = Array.length t.ring in
  if t.len < cap then begin
    t.ring.((t.head + t.len) mod cap) <- s;
    t.len <- t.len + 1
  end
  else begin
    t.ring.(t.head) <- s;
    t.head <- (t.head + 1) mod cap;
    t.evicted <- t.evicted + 1
  end

let sample_now t =
  let at = t.now () in
  let dt = at - t.last_at in
  let deltas = Hashtbl.create 64 in
  let values = Hashtbl.create 64 in
  let counters = ref [] and gauges = ref [] in
  List.iter
    (fun (name, kind) ->
      match kind with
      | `Dist -> ()
      | (`Counter | `Gauge) as k -> (
        match Metrics.read t.metrics name with
        | None -> ()
        | Some cur ->
          let before = Option.value ~default:0 (Hashtbl.find_opt t.prev name) in
          Hashtbl.replace t.prev name cur;
          Hashtbl.replace deltas name (cur - before);
          Hashtbl.replace values name cur;
          (match k with
          | `Counter -> counters := (name, cur - before) :: !counters
          | `Gauge -> gauges := (name, cur) :: !gauges)))
    (Metrics.kinds t.metrics);
  let view =
    {
      dt_us = dt;
      delta =
        (fun name -> Option.value ~default:0 (Hashtbl.find_opt deltas name));
      value =
        (fun name -> Option.value ~default:0 (Hashtbl.find_opt values name));
    }
  in
  let derived = List.map (fun (name, f) -> (name, f view)) t.derived_fns in
  let dists =
    List.map
      (fun (name, w) ->
        (match Metrics.read_dist t.metrics name with
        | Some s -> refresh_watch w s
        | None -> ());
        (name, watch_stat w))
      t.watches
  in
  let s =
    {
      at_us = at;
      dt_us = dt;
      counters = List.rev !counters;
      gauges = List.rev !gauges;
      derived;
      dists;
    }
  in
  push t s;
  t.last_at <- at;
  t.total <- t.total + 1;
  (match t.on_sample with Some f -> f s | None -> ());
  s

let due_at t = t.last_at + t.interval_us

let maybe_sample t =
  if t.now () >= due_at t then ignore (sample_now t : sample)

let count t = t.len
let total t = t.total
let evicted t = t.evicted

let samples t =
  let cap = Array.length t.ring in
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    acc := t.ring.((t.head + i) mod cap) :: !acc
  done;
  !acc

let last_sample t =
  if t.len = 0 then None
  else Some t.ring.((t.head + t.len - 1) mod Array.length t.ring)
