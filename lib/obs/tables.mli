(** Table replayers: fold a trace into the paper's evaluation tables.

    These are pure functions over {!Trace.entry} lists; the CLI
    ([cedar stats] / [cedar bench]) and the bench harness drive a
    scripted workload with tracing enabled and hand the buffer here.

    - {!per_op} is the Tables 3/4 analogue: device I/Os attributed to
      the FSD operation (span) that issued them.
    - {!log_activity} is the Table 2 analogue: bytes logged per commit
      batch, forces vs empty forces.
    - {!recovery_phases} is the Table 5 analogue: per-phase timings of
      log replay, VAM rebuild and scavenging. *)

type op_row = {
  op : string;
  calls : int;
  reads : int;  (** device read commands *)
  writes : int;  (** device write commands *)
  sectors_read : int;
  sectors_written : int;
  device_us : int;  (** simulated time inside device commands *)
  op_us : int;  (** total wall-clock (virtual) across calls *)
  amortised_ios : float;
      (** [reads + writes] after moving each group-commit log append's
          device write from the span that ran the force to the ops whose
          {!Trace.Mutation}s the batch carried, pro-rata by mutation
          count — so a batched [delete] no longer reads as zero-I/O.
          Totals across rows are conserved. *)
  amortised_writes : float;
  amortised_sectors_written : float;
}

val per_op : Trace.entry list -> op_row list
(** One row per distinct operation label, sorted by label. Device
    events are attributed to their innermost enclosing span; events
    outside any span are collected under the pseudo-op ["(none)"].

    The [amortised_*] columns re-attribute group-commit log I/O: raw
    attribution charges every append to whichever span executed the
    force, so ops that merely parked in the batch read as zero-I/O. At
    every non-empty {!Trace.Log_force}, the appends accumulated since
    the previous one are re-charged to the labels that emitted
    {!Trace.Mutation} events in that window, proportionally to their
    mutation counts; forces whose window recorded no mutations keep the
    raw attribution. *)

type log_row = {
  records : int;  (** log records appended *)
  units : int;  (** page images across all records *)
  data_sectors : int;
  total_sectors : int;  (** including headers/copies of header *)
  forces : int;
  empty_forces : int;
  units_per_force : Cedar_util.Stats.t;
  data_sectors_per_record : Cedar_util.Stats.t;
}

val log_activity : Trace.entry list -> log_row

type phase_row = { phase : string; us : int }

val recovery_phases : Trace.entry list -> phase_row list
(** Recovery, VAM-rebuild and scavenge phase events in trace order. *)

val per_op_json : op_row list -> Jsonb.t
val log_json : ?sector_bytes:int -> log_row -> Jsonb.t
(** With [sector_bytes], also reports [data_bytes] / [total_bytes]. *)

val recovery_json : phase_row list -> Jsonb.t

val pp_per_op : Format.formatter -> op_row list -> unit
(** Fixed-width table, Tables 3/4 style. *)

val pp_log : Format.formatter -> log_row -> unit
val pp_recovery : Format.formatter -> phase_row list -> unit
