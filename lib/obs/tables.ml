module Stats = Cedar_util.Stats

type op_row = {
  op : string;
  calls : int;
  reads : int;
  writes : int;
  sectors_read : int;
  sectors_written : int;
  device_us : int;
  op_us : int;
  amortised_ios : float;
  amortised_writes : float;
  amortised_sectors_written : float;
}

type acc = {
  mutable calls : int;
  mutable reads : int;
  mutable writes : int;
  mutable sread : int;
  mutable swritten : int;
  mutable dev_us : int;
  mutable op_us : int;
  (* Amortisation adjustments (can be negative): log-append device
     writes moved from the span that executed the force to the ops of
     the batch, in proportion to mutation counts. *)
  mutable adj_writes : float;
  mutable adj_swritten : float;
}

let no_span = "(none)"

let per_op entries =
  (* Span ids are the seq of their Op_begin entry; build the id -> op
     label map first, then attribute each device event to its innermost
     enclosing span. *)
  let label_of_span = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.entry) ->
      match e.Trace.event with
      | Trace.Op_begin { op; _ } -> Hashtbl.replace label_of_span e.Trace.seq op
      | _ -> ())
    entries;
  let rows : (string, acc) Hashtbl.t = Hashtbl.create 16 in
  let row op =
    match Hashtbl.find_opt rows op with
    | Some a -> a
    | None ->
      let a =
        {
          calls = 0;
          reads = 0;
          writes = 0;
          sread = 0;
          swritten = 0;
          dev_us = 0;
          op_us = 0;
          adj_writes = 0.0;
          adj_swritten = 0.0;
        }
      in
      Hashtbl.replace rows op a;
      a
  in
  let label span =
    match Hashtbl.find_opt label_of_span span with Some op -> op | None -> no_span
  in
  (* Group-commit amortisation: log appends execute under whichever span
     ran the force (the force demon, an explicit [force], a [blackbox]
     checkpoint...), so the ops whose mutations the record carries show
     zero log I/O. Track [Mutation] events per label since the last
     non-empty force; when the force lands, move its append writes from
     the spans that issued them to the mutating labels, pro-rata by
     mutation count. Totals are conserved by construction. *)
  let batch_muts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let pending_appends = ref [] (* (label, total_sectors), newest first *) in
  let redistribute () =
    let total_muts = Hashtbl.fold (fun _ k acc -> acc + k) batch_muts 0 in
    if total_muts > 0 && !pending_appends <> [] then begin
      let n_appends = List.length !pending_appends in
      let tot_sectors =
        List.fold_left (fun acc (_, s) -> acc + s) 0 !pending_appends
      in
      List.iter
        (fun (lbl, sectors) ->
          let a = row lbl in
          a.adj_writes <- a.adj_writes -. 1.0;
          a.adj_swritten <- a.adj_swritten -. float_of_int sectors)
        !pending_appends;
      Hashtbl.fold (fun lbl k acc -> (lbl, k) :: acc) batch_muts []
      |> List.sort compare
      |> List.iter (fun (lbl, k) ->
             let share = float_of_int k /. float_of_int total_muts in
             let a = row lbl in
             a.adj_writes <- a.adj_writes +. (float_of_int n_appends *. share);
             a.adj_swritten <-
               a.adj_swritten +. (float_of_int tot_sectors *. share))
    end;
    Hashtbl.reset batch_muts;
    pending_appends := []
  in
  List.iter
    (fun (e : Trace.entry) ->
      match e.Trace.event with
      | Trace.Dev_read { count; us; _ } ->
        let a = row (label e.Trace.span) in
        a.reads <- a.reads + 1;
        a.sread <- a.sread + count;
        a.dev_us <- a.dev_us + us
      | Trace.Dev_write { count; us; _ } ->
        let a = row (label e.Trace.span) in
        a.writes <- a.writes + 1;
        a.swritten <- a.swritten + count;
        a.dev_us <- a.dev_us + us
      | Trace.Dev_seek { us; _ } ->
        let a = row (label e.Trace.span) in
        a.dev_us <- a.dev_us + us
      | Trace.Op_end { op; us } ->
        let a = row op in
        a.calls <- a.calls + 1;
        a.op_us <- a.op_us + us
      | Trace.Mutation _ ->
        let lbl = label e.Trace.span in
        Hashtbl.replace batch_muts lbl
          (1 + Option.value ~default:0 (Hashtbl.find_opt batch_muts lbl))
      | Trace.Log_append { total_sectors; _ } ->
        pending_appends := (label e.Trace.span, total_sectors) :: !pending_appends
      | Trace.Log_force { empty = false; _ } -> redistribute ()
      | _ -> ())
    entries;
  Hashtbl.fold
    (fun op (a : acc) rows ->
      {
        op;
        calls = a.calls;
        reads = a.reads;
        writes = a.writes;
        sectors_read = a.sread;
        sectors_written = a.swritten;
        device_us = a.dev_us;
        op_us = a.op_us;
        amortised_ios = float_of_int (a.reads + a.writes) +. a.adj_writes;
        amortised_writes = float_of_int a.writes +. a.adj_writes;
        amortised_sectors_written = float_of_int a.swritten +. a.adj_swritten;
      }
      :: rows)
    rows []
  |> List.sort (fun a b -> String.compare a.op b.op)

type log_row = {
  records : int;
  units : int;
  data_sectors : int;
  total_sectors : int;
  forces : int;
  empty_forces : int;
  units_per_force : Stats.t;
  data_sectors_per_record : Stats.t;
}

let log_activity entries =
  let records = ref 0
  and units = ref 0
  and data_sectors = ref 0
  and total_sectors = ref 0
  and forces = ref 0
  and empty_forces = ref 0 in
  let units_per_force = Stats.create () in
  let data_sectors_per_record = Stats.create () in
  List.iter
    (fun (e : Trace.entry) ->
      match e.Trace.event with
      | Trace.Log_append a ->
        incr records;
        units := !units + a.units;
        data_sectors := !data_sectors + a.data_sectors;
        total_sectors := !total_sectors + a.total_sectors;
        Stats.add data_sectors_per_record (float_of_int a.data_sectors)
      | Trace.Log_force { units; empty } ->
        if empty then incr empty_forces
        else begin
          incr forces;
          Stats.add units_per_force (float_of_int units)
        end
      | _ -> ())
    entries;
  {
    records = !records;
    units = !units;
    data_sectors = !data_sectors;
    total_sectors = !total_sectors;
    forces = !forces;
    empty_forces = !empty_forces;
    units_per_force;
    data_sectors_per_record;
  }

type phase_row = { phase : string; us : int }

let recovery_phases entries =
  List.filter_map
    (fun (e : Trace.entry) ->
      match e.Trace.event with
      | Trace.Recovery_phase { phase; us } -> Some { phase; us }
      | Trace.Vam_rebuild { source; us } -> Some { phase = "vam-" ^ source; us }
      | Trace.Scavenge_phase { phase; us } -> Some { phase = "scavenge-" ^ phase; us }
      | _ -> None)
    entries

let per_op_json rows =
  Jsonb.Arr
    (List.map
       (fun r ->
         Jsonb.Obj
           [
             ("op", Jsonb.Str r.op);
             ("calls", Jsonb.Int r.calls);
             ("reads", Jsonb.Int r.reads);
             ("writes", Jsonb.Int r.writes);
             ("ios", Jsonb.Int (r.reads + r.writes));
             ("sectors_read", Jsonb.Int r.sectors_read);
             ("sectors_written", Jsonb.Int r.sectors_written);
             ("amortised_ios", Jsonb.Float r.amortised_ios);
             ("amortised_writes", Jsonb.Float r.amortised_writes);
             ( "amortised_sectors_written",
               Jsonb.Float r.amortised_sectors_written );
             ("device_us", Jsonb.Int r.device_us);
             ("op_us", Jsonb.Int r.op_us);
           ])
       rows)

let dist_json s =
  if Stats.n s = 0 then Jsonb.Obj [ ("n", Jsonb.Int 0) ]
  else
    Jsonb.Obj
      [
        ("n", Jsonb.Int (Stats.n s));
        ("mean", Jsonb.Float (Stats.mean s));
        ("min", Jsonb.Float (Stats.min s));
        ("p95", Jsonb.Float (Stats.percentile s 0.95));
        ("max", Jsonb.Float (Stats.max s));
      ]

let log_json ?sector_bytes r =
  let bytes_fields =
    match sector_bytes with
    | None -> []
    | Some sb ->
      [
        ("data_bytes", Jsonb.Int (r.data_sectors * sb));
        ("total_bytes", Jsonb.Int (r.total_sectors * sb));
      ]
  in
  Jsonb.Obj
    ([
       ("records", Jsonb.Int r.records);
       ("units", Jsonb.Int r.units);
       ("data_sectors", Jsonb.Int r.data_sectors);
       ("total_sectors", Jsonb.Int r.total_sectors);
       ("forces", Jsonb.Int r.forces);
       ("empty_forces", Jsonb.Int r.empty_forces);
     ]
    @ bytes_fields
    @ [
        ("units_per_force", dist_json r.units_per_force);
        ("data_sectors_per_record", dist_json r.data_sectors_per_record);
      ])

let recovery_json rows =
  Jsonb.Arr
    (List.map
       (fun r -> Jsonb.Obj [ ("phase", Jsonb.Str r.phase); ("us", Jsonb.Int r.us) ])
       rows)

let pp_per_op ppf rows =
  Format.fprintf ppf "%-14s %6s %6s %6s %6s %8s %8s %8s %9s %10s %10s@." "op"
    "calls" "reads" "writes" "ios" "sec-rd" "sec-wr" "am-ios" "am-sec-wr"
    "dev-us" "op-us";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-14s %6d %6d %6d %6d %8d %8d %8.1f %9.1f %10d %10d@."
        r.op r.calls r.reads r.writes (r.reads + r.writes) r.sectors_read
        r.sectors_written r.amortised_ios r.amortised_sectors_written
        r.device_us r.op_us)
    rows

let pp_log ppf r =
  Format.fprintf ppf
    "log: %d records (%d page images, %d data sectors, %d total sectors), %d \
     forces, %d empty forces@."
    r.records r.units r.data_sectors r.total_sectors r.forces r.empty_forces;
  if Stats.n r.units_per_force > 0 then
    Format.fprintf ppf "  units/force: %a@." Stats.pp r.units_per_force;
  if Stats.n r.data_sectors_per_record > 0 then
    Format.fprintf ppf "  data sectors/record: %a@." Stats.pp r.data_sectors_per_record

let pp_recovery ppf rows =
  List.iter (fun r -> Format.fprintf ppf "%-24s %10d us@." r.phase r.us) rows
