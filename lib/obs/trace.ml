type event =
  | Dev_read of { sector : int; count : int; us : int }
  | Dev_write of { sector : int; count : int; us : int }
  | Dev_seek of { cylinders : int; us : int }
  | Log_append of {
      record_no : int64;
      units : int;
      data_sectors : int;
      total_sectors : int;
      third : int;
    }
  | Log_force of { units : int; empty : bool }
  | Fnt_write_twice of { page : int }
  | Leader_piggyback of { sector : int }
  | Vam_rebuild of { source : string; us : int }
  | Scrub_repair of { target : string; loc : int }
  | Scavenge_phase of { phase : string; us : int }
  | Recovery_phase of { phase : string; us : int }
  | Op_begin of { op : string; name : string }
  | Op_end of { op : string; us : int }

type entry = { seq : int; span : int; at_us : int; event : event }

type t = {
  mutable on : bool;
  mutable buf : entry array;  (* length 0 until first [enable] *)
  mutable head : int;  (* index of the oldest entry *)
  mutable len : int;
  mutable next_seq : int;
  mutable dropped : int;
  (* Open spans, innermost first: (span id, op, start time, start seq). *)
  mutable spans : (int * string * int) list;
}

let create () =
  { on = false; buf = [||]; head = 0; len = 0; next_seq = 1; dropped = 0; spans = [] }

let enabled t = t.on
let default_capacity = 65536

let enable ?(capacity = default_capacity) t =
  if capacity <= 0 then invalid_arg "Trace.enable";
  if Array.length t.buf = 0 then begin
    (* Placeholder entry; overwritten before it is ever readable. *)
    let dummy = { seq = 0; span = 0; at_us = 0; event = Log_force { units = 0; empty = true } } in
    t.buf <- Array.make capacity dummy
  end;
  t.on <- true

let disable t = t.on <- false

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0;
  t.spans <- []

let push t e =
  let cap = Array.length t.buf in
  if t.len < cap then begin
    t.buf.((t.head + t.len) mod cap) <- e;
    t.len <- t.len + 1
  end
  else begin
    t.buf.(t.head) <- e;
    t.head <- (t.head + 1) mod cap;
    t.dropped <- t.dropped + 1
  end

let current_span t = match t.spans with [] -> 0 | (id, _, _) :: _ -> id

let emit_in t ~span ~at event =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push t { seq; span; at_us = at; event };
  seq

let emit t ~at event =
  if t.on then ignore (emit_in t ~span:(current_span t) ~at event : int)

let begin_span t ~at ~op ~name =
  if not t.on then 0
  else begin
    let id = emit_in t ~span:(current_span t) ~at (Op_begin { op; name }) in
    t.spans <- (id, op, at) :: t.spans;
    id
  end

let end_span t ~at id =
  if t.on && id <> 0 then begin
    (* Drop any inner spans abandoned by exception unwinding. *)
    let rec unwind = function
      | (id', op, t0) :: rest when id' = id ->
        t.spans <- rest;
        ignore (emit_in t ~span:id ~at (Op_end { op; us = at - t0 }) : int)
      | _ :: rest -> unwind rest
      | [] -> ()
    in
    unwind t.spans
  end

let length t = t.len
let dropped t = t.dropped

let iter t f =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    f t.buf.((t.head + i) mod cap)
  done

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

let pp_event ppf = function
  | Dev_read { sector; count; us } ->
    Format.fprintf ppf "dev-read sector=%d count=%d us=%d" sector count us
  | Dev_write { sector; count; us } ->
    Format.fprintf ppf "dev-write sector=%d count=%d us=%d" sector count us
  | Dev_seek { cylinders; us } ->
    Format.fprintf ppf "dev-seek cylinders=%d us=%d" cylinders us
  | Log_append { record_no; units; data_sectors; total_sectors; third } ->
    Format.fprintf ppf
      "log-append record=%Ld units=%d data-sectors=%d total-sectors=%d third=%d"
      record_no units data_sectors total_sectors third
  | Log_force { units; empty } ->
    Format.fprintf ppf "log-force units=%d%s" units (if empty then " (empty)" else "")
  | Fnt_write_twice { page } -> Format.fprintf ppf "fnt-write-twice page=%d" page
  | Leader_piggyback { sector } ->
    Format.fprintf ppf "leader-piggyback sector=%d" sector
  | Vam_rebuild { source; us } ->
    Format.fprintf ppf "vam-rebuild source=%s us=%d" source us
  | Scrub_repair { target; loc } ->
    Format.fprintf ppf "scrub-repair target=%s loc=%d" target loc
  | Scavenge_phase { phase; us } ->
    Format.fprintf ppf "scavenge-phase %s us=%d" phase us
  | Recovery_phase { phase; us } ->
    Format.fprintf ppf "recovery-phase %s us=%d" phase us
  | Op_begin { op; name } -> Format.fprintf ppf "op-begin %s %S" op name
  | Op_end { op; us } -> Format.fprintf ppf "op-end %s us=%d" op us

let pp_entry ppf e =
  Format.fprintf ppf "#%d span=%d t=%dus %a" e.seq e.span e.at_us pp_event e.event
