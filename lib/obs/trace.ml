type event =
  | Dev_read of { dev : int; sector : int; count : int; us : int }
  | Dev_write of { dev : int; sector : int; count : int; us : int }
  | Dev_seek of { dev : int; cylinders : int; us : int }
  | Log_append of {
      record_no : int64;
      units : int;
      data_sectors : int;
      total_sectors : int;
      third : int;
    }
  | Log_force of { units : int; empty : bool }
  | Fnt_write_twice of { page : int }
  | Leader_piggyback of { sector : int }
  | Vam_rebuild of { source : string; us : int }
  | Scrub_repair of { target : string; loc : int }
  | Scavenge_phase of { phase : string; us : int }
  | Recovery_phase of { phase : string; us : int }
  | Op_begin of { op : string; name : string }
  | Op_end of { op : string; us : int }
  | Blackbox_checkpoint of { gen : int64; events : int; sectors : int }
  | Session_wait of { client : int; us : int }
  | Home_write_burst of { third : int; pages : int; leaders : int }
  | Reclaim_stall of { third : int; pinned : int }
  | Mutation of { seq : int }
  | Op_submitted of { client : int; opseq : int; op : string; arrived_us : int }
  | Op_rejected of { client : int; opseq : int; why : string }
  | Op_dropped of { client : int; opseq : int; retries : int }
  | Op_acked of { client : int; opseq : int }

type entry = { seq : int; span : int; at_us : int; event : event }

type t = {
  mutable on : bool;
  mutable buf : entry array;  (* length 0 until first [enable] *)
  mutable head : int;  (* index of the oldest entry *)
  mutable len : int;
  mutable next_seq : int;
  mutable dropped : int;
  (* Open spans, innermost first: (span id, op, name, start time). *)
  mutable spans : (int * string * string * int) list;
}

let create () =
  { on = false; buf = [||]; head = 0; len = 0; next_seq = 1; dropped = 0; spans = [] }

let enabled t = t.on
let default_capacity = 65536

let enable ?(capacity = default_capacity) t =
  if capacity <= 0 then invalid_arg "Trace.enable";
  if Array.length t.buf = 0 then begin
    (* Placeholder entry; overwritten before it is ever readable. *)
    let dummy = { seq = 0; span = 0; at_us = 0; event = Log_force { units = 0; empty = true } } in
    t.buf <- Array.make capacity dummy
  end;
  t.on <- true

let disable t = t.on <- false

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0;
  t.spans <- []

let push t e =
  let cap = Array.length t.buf in
  if t.len < cap then begin
    t.buf.((t.head + t.len) mod cap) <- e;
    t.len <- t.len + 1
  end
  else begin
    t.buf.(t.head) <- e;
    t.head <- (t.head + 1) mod cap;
    t.dropped <- t.dropped + 1
  end

let current_span t = match t.spans with [] -> 0 | (id, _, _, _) :: _ -> id
let open_spans t = t.spans

let emit_in t ~span ~at event =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push t { seq; span; at_us = at; event };
  seq

let emit t ~at event =
  if t.on then ignore (emit_in t ~span:(current_span t) ~at event : int)

let emit_span t ~span ~at event =
  if t.on then ignore (emit_in t ~span ~at event : int)

let begin_span t ~at ~op ~name =
  if not t.on then 0
  else begin
    let id = emit_in t ~span:(current_span t) ~at (Op_begin { op; name }) in
    t.spans <- (id, op, name, at) :: t.spans;
    id
  end

let end_span t ~at id =
  if t.on && id <> 0 then begin
    (* Drop any inner spans abandoned by exception unwinding. *)
    let rec unwind = function
      | (id', op, _, t0) :: rest when id' = id ->
        t.spans <- rest;
        ignore (emit_in t ~span:id ~at (Op_end { op; us = at - t0 }) : int)
      | _ :: rest -> unwind rest
      | [] -> ()
    in
    unwind t.spans
  end

let length t = t.len
let dropped t = t.dropped

let iter t f =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    f t.buf.((t.head + i) mod cap)
  done

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

let last t n =
  let cap = Array.length t.buf in
  let k = if n < t.len then n else t.len in
  let acc = ref [] in
  for i = t.len - 1 downto t.len - k do
    acc := t.buf.((t.head + i) mod cap) :: !acc
  done;
  !acc

(* Binary codec for black-box checkpoints. One byte of tag per event;
   times as i64 (scavenges and long runs exceed 32 bits of microseconds). *)

module W = Cedar_util.Bytebuf.Writer
module R = Cedar_util.Bytebuf.Reader

let encode_event w = function
  | Dev_read { dev; sector; count; us } ->
    W.u8 w 0;
    W.u8 w dev;
    W.u32 w sector;
    W.u32 w count;
    W.i64 w us
  | Dev_write { dev; sector; count; us } ->
    W.u8 w 1;
    W.u8 w dev;
    W.u32 w sector;
    W.u32 w count;
    W.i64 w us
  | Dev_seek { dev; cylinders; us } ->
    W.u8 w 2;
    W.u8 w dev;
    W.u32 w cylinders;
    W.i64 w us
  | Log_append { record_no; units; data_sectors; total_sectors; third } ->
    W.u8 w 3;
    W.u64 w record_no;
    W.u16 w units;
    W.u16 w data_sectors;
    W.u16 w total_sectors;
    W.u8 w third
  | Log_force { units; empty } ->
    W.u8 w 4;
    W.u16 w units;
    W.bool w empty
  | Fnt_write_twice { page } ->
    W.u8 w 5;
    W.u32 w page
  | Leader_piggyback { sector } ->
    W.u8 w 6;
    W.u32 w sector
  | Vam_rebuild { source; us } ->
    W.u8 w 7;
    W.string w source;
    W.i64 w us
  | Scrub_repair { target; loc } ->
    W.u8 w 8;
    W.string w target;
    W.u32 w loc
  | Scavenge_phase { phase; us } ->
    W.u8 w 9;
    W.string w phase;
    W.i64 w us
  | Recovery_phase { phase; us } ->
    W.u8 w 10;
    W.string w phase;
    W.i64 w us
  | Op_begin { op; name } ->
    W.u8 w 11;
    W.string w op;
    W.string w name
  | Op_end { op; us } ->
    W.u8 w 12;
    W.string w op;
    W.i64 w us
  | Blackbox_checkpoint { gen; events; sectors } ->
    W.u8 w 13;
    W.u64 w gen;
    W.u16 w events;
    W.u16 w sectors
  | Session_wait { client; us } ->
    W.u8 w 14;
    W.u16 w client;
    W.i64 w us
  | Home_write_burst { third; pages; leaders } ->
    W.u8 w 15;
    W.u8 w third;
    W.u16 w pages;
    W.u16 w leaders
  | Reclaim_stall { third; pinned } ->
    W.u8 w 16;
    W.u8 w third;
    W.u16 w pinned
  | Mutation { seq } ->
    W.u8 w 17;
    W.i64 w seq
  | Op_submitted { client; opseq; op; arrived_us } ->
    W.u8 w 18;
    W.u16 w client;
    W.u32 w opseq;
    W.string w op;
    W.i64 w arrived_us
  | Op_rejected { client; opseq; why } ->
    W.u8 w 19;
    W.u16 w client;
    W.u32 w opseq;
    W.string w why
  | Op_dropped { client; opseq; retries } ->
    W.u8 w 20;
    W.u16 w client;
    W.u32 w opseq;
    W.u8 w retries
  | Op_acked { client; opseq } ->
    W.u8 w 21;
    W.u16 w client;
    W.u32 w opseq

let decode_event r =
  match R.u8 r with
  | 0 ->
    let dev = R.u8 r in
    let sector = R.u32 r in
    let count = R.u32 r in
    let us = R.i64 r in
    Dev_read { dev; sector; count; us }
  | 1 ->
    let dev = R.u8 r in
    let sector = R.u32 r in
    let count = R.u32 r in
    let us = R.i64 r in
    Dev_write { dev; sector; count; us }
  | 2 ->
    let dev = R.u8 r in
    let cylinders = R.u32 r in
    let us = R.i64 r in
    Dev_seek { dev; cylinders; us }
  | 3 ->
    let record_no = R.u64 r in
    let units = R.u16 r in
    let data_sectors = R.u16 r in
    let total_sectors = R.u16 r in
    let third = R.u8 r in
    Log_append { record_no; units; data_sectors; total_sectors; third }
  | 4 ->
    let units = R.u16 r in
    let empty = R.bool r in
    Log_force { units; empty }
  | 5 -> Fnt_write_twice { page = R.u32 r }
  | 6 -> Leader_piggyback { sector = R.u32 r }
  | 7 ->
    let source = R.string r in
    let us = R.i64 r in
    Vam_rebuild { source; us }
  | 8 ->
    let target = R.string r in
    let loc = R.u32 r in
    Scrub_repair { target; loc }
  | 9 ->
    let phase = R.string r in
    let us = R.i64 r in
    Scavenge_phase { phase; us }
  | 10 ->
    let phase = R.string r in
    let us = R.i64 r in
    Recovery_phase { phase; us }
  | 11 ->
    let op = R.string r in
    let name = R.string r in
    Op_begin { op; name }
  | 12 ->
    let op = R.string r in
    let us = R.i64 r in
    Op_end { op; us }
  | 13 ->
    let gen = R.u64 r in
    let events = R.u16 r in
    let sectors = R.u16 r in
    Blackbox_checkpoint { gen; events; sectors }
  | 14 ->
    let client = R.u16 r in
    let us = R.i64 r in
    Session_wait { client; us }
  | 15 ->
    let third = R.u8 r in
    let pages = R.u16 r in
    let leaders = R.u16 r in
    Home_write_burst { third; pages; leaders }
  | 16 ->
    let third = R.u8 r in
    let pinned = R.u16 r in
    Reclaim_stall { third; pinned }
  | 17 -> Mutation { seq = R.i64 r }
  | 18 ->
    let client = R.u16 r in
    let opseq = R.u32 r in
    let op = R.string r in
    let arrived_us = R.i64 r in
    Op_submitted { client; opseq; op; arrived_us }
  | 19 ->
    let client = R.u16 r in
    let opseq = R.u32 r in
    let why = R.string r in
    Op_rejected { client; opseq; why }
  | 20 ->
    let client = R.u16 r in
    let opseq = R.u32 r in
    let retries = R.u8 r in
    Op_dropped { client; opseq; retries }
  | 21 ->
    let client = R.u16 r in
    let opseq = R.u32 r in
    Op_acked { client; opseq }
  | n ->
    raise (Cedar_util.Bytebuf.Decode_error (Printf.sprintf "trace event tag %d" n))

let encode_entry w e =
  W.i64 w e.seq;
  W.i64 w e.span;
  W.i64 w e.at_us;
  encode_event w e.event

let decode_entry r =
  let seq = R.i64 r in
  let span = R.i64 r in
  let at_us = R.i64 r in
  { seq; span; at_us; event = decode_event r }

let pp_event ppf = function
  | Dev_read { dev; sector; count; us } ->
    Format.fprintf ppf "dev-read dev=%d sector=%d count=%d us=%d" dev sector
      count us
  | Dev_write { dev; sector; count; us } ->
    Format.fprintf ppf "dev-write dev=%d sector=%d count=%d us=%d" dev sector
      count us
  | Dev_seek { dev; cylinders; us } ->
    Format.fprintf ppf "dev-seek dev=%d cylinders=%d us=%d" dev cylinders us
  | Log_append { record_no; units; data_sectors; total_sectors; third } ->
    Format.fprintf ppf
      "log-append record=%Ld units=%d data-sectors=%d total-sectors=%d third=%d"
      record_no units data_sectors total_sectors third
  | Log_force { units; empty } ->
    Format.fprintf ppf "log-force units=%d%s" units (if empty then " (empty)" else "")
  | Fnt_write_twice { page } -> Format.fprintf ppf "fnt-write-twice page=%d" page
  | Leader_piggyback { sector } ->
    Format.fprintf ppf "leader-piggyback sector=%d" sector
  | Vam_rebuild { source; us } ->
    Format.fprintf ppf "vam-rebuild source=%s us=%d" source us
  | Scrub_repair { target; loc } ->
    Format.fprintf ppf "scrub-repair target=%s loc=%d" target loc
  | Scavenge_phase { phase; us } ->
    Format.fprintf ppf "scavenge-phase %s us=%d" phase us
  | Recovery_phase { phase; us } ->
    Format.fprintf ppf "recovery-phase %s us=%d" phase us
  | Op_begin { op; name } -> Format.fprintf ppf "op-begin %s %S" op name
  | Op_end { op; us } -> Format.fprintf ppf "op-end %s us=%d" op us
  | Blackbox_checkpoint { gen; events; sectors } ->
    Format.fprintf ppf "blackbox-checkpoint gen=%Ld events=%d sectors=%d" gen
      events sectors
  | Session_wait { client; us } ->
    Format.fprintf ppf "session-wait client=%d us=%d" client us
  | Home_write_burst { third; pages; leaders } ->
    Format.fprintf ppf "home-write-burst third=%d pages=%d leaders=%d" third
      pages leaders
  | Reclaim_stall { third; pinned } ->
    Format.fprintf ppf "reclaim-stall third=%d pinned=%d" third pinned
  | Mutation { seq } -> Format.fprintf ppf "mutation seq=%d" seq
  | Op_submitted { client; opseq; op; arrived_us } ->
    Format.fprintf ppf "op-submitted client=%d opseq=%d op=%s arrived=%d" client
      opseq op arrived_us
  | Op_rejected { client; opseq; why } ->
    Format.fprintf ppf "op-rejected client=%d opseq=%d why=%s" client opseq why
  | Op_dropped { client; opseq; retries } ->
    Format.fprintf ppf "op-dropped client=%d opseq=%d retries=%d" client opseq
      retries
  | Op_acked { client; opseq } ->
    Format.fprintf ppf "op-acked client=%d opseq=%d" client opseq

let pp_entry ppf e =
  Format.fprintf ppf "#%d span=%d t=%.3fms %a" e.seq e.span
    (float_of_int e.at_us /. 1000.)
    pp_event e.event
