(* Chrome trace-event JSON (the about://tracing / Perfetto format).

   Spans become complete "X" events: the Op_begin entry is matched to its
   Op_end through the end entry's span field (which is the begin's seq),
   so only balanced pairs are emitted and the B/E-imbalance class of
   malformed traces cannot occur. Everything else becomes instant "i"
   events. Timestamps are the simulated clock, already in microseconds —
   exactly what the format wants. *)

let tid_ops = 1
let tid_device = 2
let tid_log = 3
let tid_meta = 4

(* Device 0 keeps the historical track; each further device of a
   multi-volume set gets its own track well clear of the session tids. *)
let tid_device_stride = 100

(* Server sessions each get their own track so the viewer shows the
   interleaving: spans opened with op "sessionNN" land on track
   [tid_session_base + NN], as do that session's commit waits. *)
let tid_session_base = 16

(* Monitor counter tracks ("C" phase) live on their own tid. *)
let tid_counters = 5

let session_tid op =
  let prefix = "session" in
  let pl = String.length prefix in
  if String.length op > pl && String.sub op 0 pl = prefix then
    match int_of_string_opt (String.sub op pl (String.length op - pl)) with
    | Some n when n >= 0 -> Some (tid_session_base + n)
    | Some _ | None -> None
  else None

let base ~name ~cat ~ph ~ts ~tid rest =
  ( ts,
    Jsonb.Obj
      ([
         ("name", Jsonb.Str name);
         ("cat", Jsonb.Str cat);
         ("ph", Jsonb.Str ph);
         ("ts", Jsonb.Int ts);
         ("pid", Jsonb.Int 1);
         ("tid", Jsonb.Int tid);
       ]
      @ rest) )

let complete ~name ~cat ~ts ~dur ~tid args =
  base ~name ~cat ~ph:"X" ~ts ~tid
    (("dur", Jsonb.Int dur) :: (match args with [] -> [] | a -> [ ("args", Jsonb.Obj a) ]))

let instant ~name ~cat ~ts ~tid args =
  base ~name ~cat ~ph:"i" ~ts ~tid
    (("s", Jsonb.Str "t") :: (match args with [] -> [] | a -> [ ("args", Jsonb.Obj a) ]))

let counter ~name ~ts value =
  base ~name ~cat:"monitor" ~ph:"C" ~ts ~tid:tid_counters
    [ ("args", Jsonb.Obj [ ("value", value) ]) ]

let chrome ?(samples = []) entries =
  let begins : (int, Trace.entry) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.entry) ->
      match e.Trace.event with
      | Trace.Op_begin _ -> Hashtbl.replace begins e.Trace.seq e
      | _ -> ())
    entries;
  let events = ref [] in
  let push ev = events := ev :: !events in
  let session_tids = ref [] in
  let note_session tid =
    if not (List.mem tid !session_tids) then session_tids := tid :: !session_tids
  in
  (* Lifecycle phase slices: Op_submitted closes the queue wait and opens
     the admission window, which the session span's Op_begin (execute
     start) or an Op_dropped closes — so each session track nests
     queue / admission / sessionNN (execute) / commit-wait slices. *)
  let submits : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let close_admission ~client ~ts =
    match Hashtbl.find_opt submits client with
    | Some t0 ->
      Hashtbl.remove submits client;
      if ts > t0 then
        let tid = tid_session_base + client in
        note_session tid;
        push
          (complete ~name:"admission" ~cat:"phase" ~ts:t0 ~dur:(ts - t0) ~tid
             [ ("client", Jsonb.Int client) ])
    | None -> ()
  in
  List.iter
    (fun (e : Trace.entry) ->
      let ts = e.Trace.at_us in
      match e.Trace.event with
      | Trace.Op_begin { op; _ } ->
        (* Emitted as "X" at the matching end; a session span's start
           also closes the op's admission window. *)
        (match session_tid op with
        | Some tid -> close_admission ~client:(tid - tid_session_base) ~ts
        | None -> ())
      | Trace.Op_end { op; us } -> begin
        match Hashtbl.find_opt begins e.Trace.span with
        | Some b ->
          Hashtbl.remove begins e.Trace.span;
          let name =
            match b.Trace.event with Trace.Op_begin { name; _ } -> name | _ -> ""
          in
          let tid, cat =
            match session_tid op with
            | Some tid ->
              note_session tid;
              (tid, "session")
            | None -> (tid_ops, "op")
          in
          push
            (complete ~name:op ~cat ~ts:b.Trace.at_us ~dur:us ~tid
               [ ("name", Jsonb.Str name); ("span", Jsonb.Int e.Trace.span) ])
        | None ->
          (* The begin fell off the ring; an instant marks the orphan end. *)
          push (instant ~name:("end:" ^ op) ~cat:"op" ~ts ~tid:tid_ops [])
      end
      | Trace.Dev_read { dev; sector; count; us } ->
        push
          (complete ~name:"read" ~cat:"device" ~ts ~dur:us
             ~tid:(tid_device + (dev * tid_device_stride))
             [ ("sector", Jsonb.Int sector); ("count", Jsonb.Int count) ])
      | Trace.Dev_write { dev; sector; count; us } ->
        push
          (complete ~name:"write" ~cat:"device" ~ts ~dur:us
             ~tid:(tid_device + (dev * tid_device_stride))
             [ ("sector", Jsonb.Int sector); ("count", Jsonb.Int count) ])
      | Trace.Dev_seek { dev; cylinders; us } ->
        push
          (complete ~name:"seek" ~cat:"device" ~ts ~dur:us
             ~tid:(tid_device + (dev * tid_device_stride))
             [ ("cylinders", Jsonb.Int cylinders) ])
      | Trace.Log_append { record_no; units; data_sectors; total_sectors; third } ->
        push
          (instant ~name:"log-append" ~cat:"log" ~ts ~tid:tid_log
             [
               ("record", Jsonb.Int (Int64.to_int record_no));
               ("units", Jsonb.Int units);
               ("data_sectors", Jsonb.Int data_sectors);
               ("total_sectors", Jsonb.Int total_sectors);
               ("third", Jsonb.Int third);
             ])
      | Trace.Log_force { units; empty } ->
        push
          (instant ~name:"log-force" ~cat:"log" ~ts ~tid:tid_log
             [ ("units", Jsonb.Int units); ("empty", Jsonb.Bool empty) ])
      | Trace.Blackbox_checkpoint { gen; events; sectors } ->
        push
          (instant ~name:"blackbox-checkpoint" ~cat:"log" ~ts ~tid:tid_log
             [
               ("gen", Jsonb.Int (Int64.to_int gen));
               ("events", Jsonb.Int events);
               ("sectors", Jsonb.Int sectors);
             ])
      | Trace.Fnt_write_twice { page } ->
        push
          (instant ~name:"fnt-write-twice" ~cat:"fsd" ~ts ~tid:tid_meta
             [ ("page", Jsonb.Int page) ])
      | Trace.Leader_piggyback { sector } ->
        push
          (instant ~name:"leader-piggyback" ~cat:"fsd" ~ts ~tid:tid_meta
             [ ("sector", Jsonb.Int sector) ])
      | Trace.Vam_rebuild { source; us } ->
        push
          (complete ~name:("vam-" ^ source) ~cat:"recovery" ~ts ~dur:us ~tid:tid_meta
             [])
      | Trace.Scrub_repair { target; loc } ->
        push
          (instant ~name:("scrub-" ^ target) ~cat:"fsd" ~ts ~tid:tid_meta
             [ ("loc", Jsonb.Int loc) ])
      | Trace.Scavenge_phase { phase; us } ->
        push
          (complete ~name:("scavenge-" ^ phase) ~cat:"recovery" ~ts ~dur:us
             ~tid:tid_meta [])
      | Trace.Recovery_phase { phase; us } ->
        push
          (complete ~name:("recovery-" ^ phase) ~cat:"recovery" ~ts ~dur:us
             ~tid:tid_meta [])
      | Trace.Home_write_burst { third; pages; leaders } ->
        push
          (instant ~name:"home-write-burst" ~cat:"fsd" ~ts ~tid:tid_meta
             [
               ("third", Jsonb.Int third);
               ("pages", Jsonb.Int pages);
               ("leaders", Jsonb.Int leaders);
             ])
      | Trace.Reclaim_stall { third; pinned } ->
        push
          (instant ~name:"reclaim-stall" ~cat:"fsd" ~ts ~tid:tid_meta
             [ ("third", Jsonb.Int third); ("pinned", Jsonb.Int pinned) ])
      | Trace.Session_wait { client; us } ->
        (* Emitted at the wake time: the wait occupied [ts - us, ts]. *)
        let tid = tid_session_base + client in
        note_session tid;
        push
          (complete ~name:"commit-wait" ~cat:"session" ~ts:(ts - us) ~dur:us ~tid
             [ ("client", Jsonb.Int client) ])
      | Trace.Mutation { seq } ->
        push
          (instant ~name:"mutation" ~cat:"fsd" ~ts ~tid:tid_meta
             [ ("seq", Jsonb.Int seq) ])
      | Trace.Op_submitted { client; opseq; op; arrived_us } ->
        let tid = tid_session_base + client in
        note_session tid;
        if ts > arrived_us then
          push
            (complete ~name:"queue" ~cat:"phase" ~ts:arrived_us
               ~dur:(ts - arrived_us) ~tid
               [ ("opseq", Jsonb.Int opseq); ("op", Jsonb.Str op) ]);
        Hashtbl.replace submits client ts
      | Trace.Op_rejected { client; opseq; why } ->
        let tid = tid_session_base + client in
        note_session tid;
        push
          (instant ~name:("reject:" ^ why) ~cat:"phase" ~ts ~tid
             [ ("opseq", Jsonb.Int opseq) ])
      | Trace.Op_dropped { client; opseq; retries } ->
        close_admission ~client ~ts;
        let tid = tid_session_base + client in
        note_session tid;
        push
          (instant ~name:"dropped" ~cat:"phase" ~ts ~tid
             [ ("opseq", Jsonb.Int opseq); ("retries", Jsonb.Int retries) ])
      | Trace.Op_acked { client; opseq } ->
        let tid = tid_session_base + client in
        note_session tid;
        push
          (instant ~name:"acked" ~cat:"phase" ~ts ~tid
             [ ("opseq", Jsonb.Int opseq) ]))
    entries;
  (* Spans still open when the capture ended (in-flight at a crash). *)
  Hashtbl.iter
    (fun _ (b : Trace.entry) ->
      match b.Trace.event with
      | Trace.Op_begin { op; name } ->
        push
          (instant ~name:("unfinished:" ^ op) ~cat:"op" ~ts:b.Trace.at_us
             ~tid:tid_ops
             [ ("name", Jsonb.Str name) ])
      | _ -> ())
    begins;
  (* Monitor samples become counter ("C") tracks: one per derived
     saturation gauge, one per watched dist's windowed p99. *)
  List.iter
    (fun (s : Monitor.sample) ->
      let ts = s.Monitor.at_us in
      List.iter
        (fun (name, v) -> push (counter ~name ~ts (Jsonb.Float v)))
        s.Monitor.derived;
      List.iter
        (fun (name, (w : Monitor.window_stat)) ->
          push (counter ~name:(name ^ ".p99") ~ts (Jsonb.Float w.Monitor.w_p99)))
        s.Monitor.dists)
    samples;
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !events)
  in
  let thread_name tid name =
    Jsonb.Obj
      [
        ("name", Jsonb.Str "thread_name");
        ("ph", Jsonb.Str "M");
        ("pid", Jsonb.Int 1);
        ("tid", Jsonb.Int tid);
        ("args", Jsonb.Obj [ ("name", Jsonb.Str name) ]);
      ]
  in
  Jsonb.Obj
    [
      ("displayTimeUnit", Jsonb.Str "ms");
      ( "traceEvents",
        Jsonb.Arr
          ([
             thread_name tid_ops "operations";
             thread_name tid_device "device";
             thread_name tid_log "log";
             thread_name tid_meta "metadata";
           ]
          @ List.map
              (fun tid ->
                thread_name tid
                  (Printf.sprintf "session %d" (tid - tid_session_base)))
              (List.sort compare !session_tids)
          @ List.map snd sorted) );
    ]
