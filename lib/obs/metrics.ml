module Stats = Cedar_util.Stats

type counter = int ref

type instrument =
  | Counter of counter
  | Gauge of (unit -> int)
  | Dist of Stats.t

(* A registry is a shared table plus a name prefix. The root view
   (prefix "") is what single-instance code has always seen; [scoped]
   views share the table but qualify every registration and lookup, so
   two FSD instances booted against sibling views cannot clobber each
   other's instruments while the root still enumerates everything. *)
type t = { tbl : (string, instrument) Hashtbl.t; prefix : string }

let create () = { tbl = Hashtbl.create 64; prefix = "" }
let scoped t prefix = { tbl = t.tbl; prefix = t.prefix ^ prefix }
let prefix t = t.prefix
let full t name = if t.prefix = "" then name else t.prefix ^ name

(* Restrict an enumerated name to this view: [Some local] when it lives
   under our prefix (stripped), [None] otherwise. *)
let local t name =
  let lp = String.length t.prefix in
  if lp = 0 then Some name
  else if String.length name >= lp && String.sub name 0 lp = t.prefix then
    Some (String.sub name lp (String.length name - lp))
  else None

let counter t name =
  let c = ref 0 in
  Hashtbl.replace t.tbl (full t name) (Counter c);
  c

let inc c = incr c
let add c n = c := !c + n
let counter_value c = !c
let gauge t name f = Hashtbl.replace t.tbl (full t name) (Gauge f)

let dist t name =
  let s = Stats.create () in
  Hashtbl.replace t.tbl (full t name) (Dist s);
  s

let register_dist t name s = Hashtbl.replace t.tbl (full t name) (Dist s)

let kinds t =
  Hashtbl.fold
    (fun name ins acc ->
      match local t name with
      | None -> acc
      | Some name ->
        let k =
          match ins with
          | Counter _ -> `Counter
          | Gauge _ -> `Gauge
          | Dist _ -> `Dist
        in
        (name, k) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let read t name =
  match Hashtbl.find_opt t.tbl (full t name) with
  | Some (Counter c) -> Some !c
  | Some (Gauge f) -> Some (f ())
  | Some (Dist _) | None -> None

let read_dist t name =
  match Hashtbl.find_opt t.tbl (full t name) with
  | Some (Dist s) -> Some s
  | Some _ | None -> None

type snapshot_value =
  | Int of int
  | Dist of {
      n : int;
      mean : float;
      min : float;
      p50 : float;
      p90 : float;
      p95 : float;
      p99 : float;
      max : float;
    }

let snapshot_dist s =
  if Stats.n s = 0 then
    Dist
      { n = 0; mean = 0.; min = 0.; p50 = 0.; p90 = 0.; p95 = 0.; p99 = 0.; max = 0. }
  else
    Dist
      {
        n = Stats.n s;
        mean = Stats.mean s;
        min = Stats.min s;
        p50 = Stats.percentile s 0.5;
        p90 = Stats.percentile s 0.9;
        p95 = Stats.percentile s 0.95;
        p99 = Stats.percentile s 0.99;
        max = Stats.max s;
      }

let snapshot t =
  Hashtbl.fold
    (fun name ins acc ->
      match local t name with
      | None -> acc
      | Some name ->
        let v =
          match ins with
          | Counter c -> Int !c
          | Gauge f -> Int (f ())
          | Dist s -> snapshot_dist s
        in
        (name, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json t =
  Jsonb.Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | Int i -> Jsonb.Int i
           | Dist d ->
             Jsonb.Obj
               [
                 ("n", Jsonb.Int d.n);
                 ("mean", Jsonb.Float d.mean);
                 ("min", Jsonb.Float d.min);
                 ("p50", Jsonb.Float d.p50);
                 ("p90", Jsonb.Float d.p90);
                 ("p95", Jsonb.Float d.p95);
                 ("p99", Jsonb.Float d.p99);
                 ("max", Jsonb.Float d.max);
               ] ))
       (snapshot t))

let pp ppf t =
  List.iter
    (fun (name, v) ->
      match v with
      | Int i -> Format.fprintf ppf "%-32s %d@." name i
      | Dist d ->
        if d.n = 0 then Format.fprintf ppf "%-32s (empty)@." name
        else
          Format.fprintf ppf
            "%-32s n=%d mean=%.1f min=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f@."
            name d.n d.mean d.min d.p50 d.p90 d.p99 d.max)
    (snapshot t)
