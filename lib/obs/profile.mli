(** Profiles folded from a live trace.

    Where {!Tables} reproduces the paper's published tables, this module
    answers the operational questions behind them: what did each
    operation cost end to end, how many operations did each group-commit
    force amortise (§3's whole argument), how regular was the force
    cadence, and how full was the active log third over time. *)

type t = {
  op_latency : (string * Cedar_util.Stats.t) list;
      (** end-to-end simulated latency per op label, name-sorted *)
  ops_per_force : Cedar_util.Stats.t;
      (** operations completed between consecutive forces (the force and
          black-box spans themselves excluded); one sample per force,
          empty forces included *)
  force_interval_us : Cedar_util.Stats.t;
      (** virtual time between consecutive forces *)
  third_timeline : (int * int * int) list;
      (** [(at_us, third, occupied_sectors)] per log append; occupancy
          resets when the active third changes *)
  fnt_dirty_age_us : Cedar_util.Stats.t option;
      (** how long FNT cache pages stayed dirty before their home write,
          when the caller supplies the series (registered by
          [Fnt_store] as ["fnt.dirty_page_age_us"]) *)
  forces : int;
  empty_forces : int;
  blackbox_checkpoints : int;
}

val of_entries : ?fnt_dirty_age_us:Cedar_util.Stats.t -> Trace.entry list -> t

val to_json : t -> Jsonb.t
val pp : Format.formatter -> t -> unit
