(* Fold a lifecycle trace into per-op conserved phase vectors.

   Every phase is a difference of two timestamps from the same op's
   lifecycle, and the five phases tile [arrived, end] without gap or
   overlap — so conservation is exact by construction and the [conserved]
   check can demand equality, not tolerance. The only inexact quantity is
   the *sub*-split of execute into seek/transfer/cpu, which attributes
   span-nested device events and leaves the remainder as cpu. *)

module Stats = Cedar_util.Stats

type phase = Queue | Admission | Execute | Append | Parked

let phases = [ Queue; Admission; Execute; Append; Parked ]

let phase_name = function
  | Queue -> "queue"
  | Admission -> "admission"
  | Execute -> "execute"
  | Append -> "append"
  | Parked -> "parked"

type op_record = {
  client : int;
  opseq : int;
  op : string;
  arrived_us : int;
  end_us : int;
  queue_us : int;
  admission_us : int;
  execute_us : int;
  seek_us : int;
  transfer_us : int;
  append_us : int;
  parked_us : int;
  retries : int;
  dropped : bool;
  stalls : int;
}

let total_us r = r.end_us - r.arrived_us

let phase_us r = function
  | Queue -> r.queue_us
  | Admission -> r.admission_us
  | Execute -> r.execute_us
  | Append -> r.append_us
  | Parked -> r.parked_us

let conserved r =
  r.queue_us + r.admission_us + r.execute_us + r.append_us + r.parked_us
  = total_us r

type pct = { p50 : float; p90 : float; p99 : float; mean : float; max : float }

type agg = {
  a_op : string;
  a_n : int;
  a_dropped : int;
  a_retries : int;
  a_stalls : int;
  a_e2e : pct;
  a_phase : (phase * pct) list;
  a_blame : phase;
  a_tail_n : int;
  a_tail_share : (phase * float) list;
}

type t = {
  ops : op_record list;
  aggs : agg list;
  orphans : int;
  unfinished : int;
  all_conserved : bool;
}

(* ------------------------------------------------------------------ *)
(* The fold. *)

type pending = {
  p_client : int;
  p_opseq : int;
  p_op : string;
  p_arrived : int;
  p_submitted : int;
  mutable p_retries : int;
  mutable p_exec_begin : int;  (* -1 until the session span opens *)
  mutable p_exec_end : int;  (* -1 until it closes *)
  mutable p_seek : int;
  mutable p_transfer : int;
  mutable p_stalls : int;
}

let session_client op =
  let prefix = "session" in
  let pl = String.length prefix in
  if String.length op > pl && String.sub op 0 pl = prefix then
    match int_of_string_opt (String.sub op pl (String.length op - pl)) with
    | Some n when n >= 0 -> Some n
    | Some _ | None -> None
  else None

let fold entries =
  (* Span bookkeeping: parent chain for device-event attribution, the
     set of open session (execute) spans, and open force spans for the
     append overlap. *)
  let parents : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let active_exec : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let force_opens : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let last_force = ref None in  (* last completed force (start, end) *)
  let pending : (int, pending) Hashtbl.t = Hashtbl.create 16 in
  let ops_rev = ref [] in
  let orphans = ref 0 in
  (* Walk the span ancestry of an event to the pending op executing it,
     if any (device work under a force span triggered mid-op nests below
     the session span and is correctly charged to that op). *)
  let owner span =
    let rec up s n =
      if s = 0 || n > 64 then None
      else
        match Hashtbl.find_opt active_exec s with
        | Some client -> Hashtbl.find_opt pending client
        | None -> (
          match Hashtbl.find_opt parents s with
          | Some parent -> up parent (n + 1)
          | None -> None)
    in
    up span 0
  in
  let finalize (p : pending) ~at ~dropped =
    Hashtbl.remove pending p.p_client;
    let queue_us = p.p_submitted - p.p_arrived in
    if dropped || p.p_exec_begin < 0 then
      (* Dropped (or never-executed) lifecycle: everything after the
         first attempt was admission. *)
      ops_rev :=
        {
          client = p.p_client;
          opseq = p.p_opseq;
          op = p.p_op;
          arrived_us = p.p_arrived;
          end_us = at;
          queue_us;
          admission_us = at - p.p_submitted;
          execute_us = 0;
          seek_us = 0;
          transfer_us = 0;
          append_us = 0;
          parked_us = 0;
          retries = p.p_retries;
          dropped = true;
          stalls = p.p_stalls;
        }
        :: !ops_rev
    else begin
      let exec_end = if p.p_exec_end >= 0 then p.p_exec_end else at in
      let wait = at - exec_end in
      (* A Dev_read/Dev_write's [us] covers the whole command including
         any arm movement (Dev_seek nests inside it), so the pure
         transfer time is the command total minus the seeks. *)
      let transfer_us =
        if p.p_transfer > p.p_seek then p.p_transfer - p.p_seek else 0
      in
      (* The op's share of log-append I/O: the overlap of its park
         window with the covering force's own duration. *)
      let append_us =
        match !last_force with
        | Some (f0, f1) when f1 <= at ->
          let lo = if f0 > exec_end then f0 else exec_end in
          let hi = if f1 < at then f1 else at in
          if hi > lo then hi - lo else 0
        | _ -> 0
      in
      ops_rev :=
        {
          client = p.p_client;
          opseq = p.p_opseq;
          op = p.p_op;
          arrived_us = p.p_arrived;
          end_us = at;
          queue_us;
          admission_us = p.p_exec_begin - p.p_submitted;
          execute_us = exec_end - p.p_exec_begin;
          seek_us = p.p_seek;
          transfer_us;
          append_us;
          parked_us = wait - append_us;
          retries = p.p_retries;
          dropped = false;
          stalls = p.p_stalls;
        }
        :: !ops_rev
    end
  in
  List.iter
    (fun (e : Trace.entry) ->
      let at = e.Trace.at_us in
      match e.Trace.event with
      | Trace.Op_submitted { client; opseq; op; arrived_us } ->
        (* A new lifecycle; any unfinished predecessor for this client
           was lost to a crash/abort and stays unfinished. *)
        (match Hashtbl.find_opt pending client with
        | Some _ -> Hashtbl.remove pending client
        | None -> ());
        Hashtbl.replace pending client
          {
            p_client = client;
            p_opseq = opseq;
            p_op = op;
            p_arrived = arrived_us;
            p_submitted = at;
            p_retries = 0;
            p_exec_begin = -1;
            p_exec_end = -1;
            p_seek = 0;
            p_transfer = 0;
            p_stalls = 0;
          }
      | Trace.Op_rejected { client; _ } -> (
        match Hashtbl.find_opt pending client with
        | Some p -> p.p_retries <- p.p_retries + 1
        | None -> incr orphans)
      | Trace.Op_dropped { client; retries; _ } -> (
        match Hashtbl.find_opt pending client with
        | Some p ->
          p.p_retries <- retries;
          finalize p ~at ~dropped:true
        | None -> incr orphans)
      | Trace.Op_acked { client; _ } -> (
        match Hashtbl.find_opt pending client with
        | Some p -> finalize p ~at ~dropped:false
        | None -> incr orphans)
      | Trace.Op_begin { op; _ } -> (
        Hashtbl.replace parents e.Trace.seq e.Trace.span;
        if op = "force" then Hashtbl.replace force_opens e.Trace.seq at
        else
          match session_client op with
          | Some client -> (
            match Hashtbl.find_opt pending client with
            | Some p when p.p_exec_begin < 0 ->
              p.p_exec_begin <- at;
              Hashtbl.replace active_exec e.Trace.seq client
            | Some _ | None -> ())
          | None -> ())
      | Trace.Op_end _ -> (
        (match Hashtbl.find_opt force_opens e.Trace.span with
        | Some f0 ->
          Hashtbl.remove force_opens e.Trace.span;
          last_force := Some (f0, at)
        | None -> ());
        match Hashtbl.find_opt active_exec e.Trace.span with
        | Some client ->
          Hashtbl.remove active_exec e.Trace.span;
          (match Hashtbl.find_opt pending client with
          | Some p -> p.p_exec_end <- at
          | None -> ())
        | None -> ())
      | Trace.Dev_seek { us; _ } -> (
        match owner e.Trace.span with
        | Some p when p.p_exec_end < 0 -> p.p_seek <- p.p_seek + us
        | Some _ | None -> ())
      | Trace.Dev_read { us; _ } | Trace.Dev_write { us; _ } -> (
        match owner e.Trace.span with
        | Some p when p.p_exec_end < 0 -> p.p_transfer <- p.p_transfer + us
        | Some _ | None -> ())
      | Trace.Reclaim_stall _ -> (
        match owner e.Trace.span with
        | Some p when p.p_exec_end < 0 -> p.p_stalls <- p.p_stalls + 1
        | Some _ | None -> ())
      | _ -> ())
    entries;
  let ops = List.rev !ops_rev in
  let unfinished = Hashtbl.length pending in
  let all_conserved = List.for_all conserved ops in
  (* Per-kind aggregation over completed (non-dropped) lifecycles. *)
  let kinds = ref [] in
  List.iter
    (fun r -> if not (List.mem r.op !kinds) then kinds := r.op :: !kinds)
    ops;
  let pct_of dist =
    if Stats.n dist = 0 then { p50 = 0.; p90 = 0.; p99 = 0.; mean = 0.; max = 0. }
    else
      {
        p50 = Stats.percentile dist 0.50;
        p90 = Stats.percentile dist 0.90;
        p99 = Stats.percentile dist 0.99;
        mean = Stats.mean dist;
        max = Stats.max dist;
      }
  in
  let agg_of op =
    let mine = List.filter (fun r -> r.op = op) ops in
    let completed = List.filter (fun r -> not r.dropped) mine in
    let e2e = Stats.create () in
    List.iter (fun r -> Stats.add e2e (float_of_int (total_us r))) completed;
    let a_e2e = pct_of e2e in
    let a_phase =
      List.map
        (fun ph ->
          let d = Stats.create () in
          List.iter
            (fun r -> Stats.add d (float_of_int (phase_us r ph)))
            completed;
          (ph, pct_of d))
        phases
    in
    (* Tail blame: among the ops at or above the e2e p99, the phase with
       the largest mean. Ties break toward the earlier phase in pipeline
       order, deterministically. *)
    let tail =
      List.filter
        (fun r -> float_of_int (total_us r) >= a_e2e.p99)
        completed
    in
    let tail_n = List.length tail in
    let tail_sum ph =
      List.fold_left (fun acc r -> acc + phase_us r ph) 0 tail
    in
    let sums = List.map (fun ph -> (ph, tail_sum ph)) phases in
    let grand = List.fold_left (fun acc (_, s) -> acc + s) 0 sums in
    let a_blame =
      fst
        (List.fold_left
           (fun (bp, bs) (ph, s) -> if s > bs then (ph, s) else (bp, bs))
           (Queue, min_int) sums)
    in
    let a_tail_share =
      List.map
        (fun (ph, s) ->
          (ph, if grand = 0 then 0. else float_of_int s /. float_of_int grand))
        sums
    in
    {
      a_op = op;
      a_n = List.length completed;
      a_dropped = List.length mine - List.length completed;
      a_retries = List.fold_left (fun acc r -> acc + r.retries) 0 mine;
      a_stalls = List.fold_left (fun acc r -> acc + r.stalls) 0 mine;
      a_e2e;
      a_phase;
      a_blame;
      a_tail_n = tail_n;
      a_tail_share;
    }
  in
  let aggs = List.map agg_of (List.sort compare !kinds) in
  { ops; aggs; orphans = !orphans; unfinished; all_conserved }

let blame t ~op =
  match List.find_opt (fun a -> a.a_op = op) t.aggs with
  | Some a when a.a_n > 0 -> Some a.a_blame
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Rendering. *)

let slowest ?op ?(top = 5) t =
  let eligible =
    List.filter
      (fun r -> (not r.dropped) && match op with Some o -> r.op = o | None -> true)
      t.ops
  in
  let sorted =
    List.stable_sort
      (fun a b ->
        match compare (total_us b) (total_us a) with
        | 0 -> compare (a.end_us, a.client, a.opseq) (b.end_us, b.client, b.opseq)
        | c -> c)
      eligible
  in
  List.filteri (fun i _ -> i < top) sorted

let pct_json p =
  Jsonb.Obj
    [
      ("p50", Jsonb.Float p.p50);
      ("p90", Jsonb.Float p.p90);
      ("p99", Jsonb.Float p.p99);
      ("mean", Jsonb.Float p.mean);
      ("max", Jsonb.Float p.max);
    ]

let op_json r =
  Jsonb.Obj
    [
      ("client", Jsonb.Int r.client);
      ("opseq", Jsonb.Int r.opseq);
      ("op", Jsonb.Str r.op);
      ("arrived_us", Jsonb.Int r.arrived_us);
      ("total_us", Jsonb.Int (total_us r));
      ("queue_us", Jsonb.Int r.queue_us);
      ("admission_us", Jsonb.Int r.admission_us);
      ("execute_us", Jsonb.Int r.execute_us);
      ("seek_us", Jsonb.Int r.seek_us);
      ("transfer_us", Jsonb.Int r.transfer_us);
      ("append_us", Jsonb.Int r.append_us);
      ("parked_us", Jsonb.Int r.parked_us);
      ("retries", Jsonb.Int r.retries);
      ("stalls", Jsonb.Int r.stalls);
    ]

let to_json ?op ?(top = 5) t =
  let aggs =
    match op with
    | Some o -> List.filter (fun a -> a.a_op = o) t.aggs
    | None -> t.aggs
  in
  Jsonb.Obj
    [
      ("ops", Jsonb.Int (List.length t.ops));
      ("orphans", Jsonb.Int t.orphans);
      ("unfinished", Jsonb.Int t.unfinished);
      ("all_conserved", Jsonb.Bool t.all_conserved);
      ( "kinds",
        Jsonb.Arr
          (List.map
             (fun a ->
               Jsonb.Obj
                 [
                   ("op", Jsonb.Str a.a_op);
                   ("n", Jsonb.Int a.a_n);
                   ("dropped", Jsonb.Int a.a_dropped);
                   ("retries", Jsonb.Int a.a_retries);
                   ("stalls", Jsonb.Int a.a_stalls);
                   ("e2e_us", pct_json a.a_e2e);
                   ( "phases_us",
                     Jsonb.Obj
                       (List.map
                          (fun (ph, p) -> (phase_name ph, pct_json p))
                          a.a_phase) );
                   ("blame", Jsonb.Str (phase_name a.a_blame));
                   ("tail_n", Jsonb.Int a.a_tail_n);
                   ( "tail_share",
                     Jsonb.Obj
                       (List.map
                          (fun (ph, f) -> (phase_name ph, Jsonb.Float f))
                          a.a_tail_share) );
                 ])
             aggs) );
      ("top", Jsonb.Arr (List.map op_json (slowest ?op ~top t)));
    ]

let pp ?op ?(top = 5) ppf t =
  let ms us = float_of_int us /. 1000. in
  Format.fprintf ppf
    "latency anatomy: %d ops, %d orphans, %d unfinished, conservation %s@,"
    (List.length t.ops) t.orphans t.unfinished
    (if t.all_conserved then "OK" else "VIOLATED");
  let aggs =
    match op with
    | Some o -> List.filter (fun a -> a.a_op = o) t.aggs
    | None -> t.aggs
  in
  Format.fprintf ppf "@,%-10s %6s %5s %10s %10s %10s  %-9s %s@," "op" "n" "drop"
    "p50ms" "p90ms" "p99ms" "blame" "tail share (q/a/x/l/p %)";
  List.iter
    (fun a ->
      let share ph =
        match List.assoc_opt ph a.a_tail_share with
        | Some f -> int_of_float ((f *. 100.) +. 0.5)
        | None -> 0
      in
      Format.fprintf ppf "%-10s %6d %5d %10.2f %10.2f %10.2f  %-9s %d/%d/%d/%d/%d@,"
        a.a_op a.a_n a.a_dropped (a.a_e2e.p50 /. 1000.) (a.a_e2e.p90 /. 1000.)
        (a.a_e2e.p99 /. 1000.)
        (phase_name a.a_blame)
        (share Queue) (share Admission) (share Execute) (share Append)
        (share Parked))
    aggs;
  let tops = slowest ?op ~top t in
  if tops <> [] then begin
    Format.fprintf ppf "@,top %d slowest:@," (List.length tops);
    List.iter
      (fun r ->
        Format.fprintf ppf
          "  c%02d#%-4d %-9s %9.2fms = queue %.2f | admission %.2f (x%d) | \
           execute %.2f (seek %.2f xfer %.2f) | append %.2f | parked %.2f@,"
          r.client r.opseq r.op
          (ms (total_us r))
          (ms r.queue_us) (ms r.admission_us) r.retries (ms r.execute_us)
          (ms r.seek_us) (ms r.transfer_us) (ms r.append_us) (ms r.parked_us))
      tops
  end
