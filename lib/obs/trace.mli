(** Ring-buffer event trace for the storage stack.

    Every layer of the stack emits typed events into one shared trace
    owned by the device: device commands with their simulated latency,
    log appends and group-commit forces, FNT write-twice pairs, leader
    piggybacks, VAM rebuilds, scrub repairs, scavenge and recovery
    phases. Each event carries the span id of the FSD-level operation
    that issued it, so a replayer can attribute raw device I/O to the
    create/open/delete that caused it — the attribution Hagmann's
    Tables 2–4 are built from.

    The trace is disabled by default and costs a single branch (no
    allocation) per potential event while disabled; {!enable} allocates
    the ring lazily. When the ring is full the oldest entries are
    overwritten and counted in {!dropped}. *)

type event =
  | Dev_read of { dev : int; sector : int; count : int; us : int }
  | Dev_write of { dev : int; sector : int; count : int; us : int }
      (** One device command, stamped at the instant the device begins
          servicing it ([dev] is the device id — volume index in a
          multi-volume set). In deferred/queued mode service start is
          the busy horizon, not issue time, so commands on one device
          never overlap. *)
  | Dev_seek of { dev : int; cylinders : int; us : int }
      (** Arm movement charged as part of the following command, in
          {e service} order (reordering policies move the arm in the
          order requests are picked, not enqueued). *)
  | Log_append of {
      record_no : int64;
      units : int;
      data_sectors : int;
      total_sectors : int;
      third : int;
    }
  | Log_force of { units : int; empty : bool }
      (** One group-commit force; [empty] marks a force that found
          nothing dirty and wrote no record. *)
  | Fnt_write_twice of { page : int }
      (** Both home copies of an FNT page written (§5.2). *)
  | Leader_piggyback of { sector : int }
      (** Leader verified for free on the read of its file's data (§5.7). *)
  | Vam_rebuild of { source : string; us : int }
  | Scrub_repair of { target : string; loc : int }
      (** Scrub demon repaired a lone bad copy; [target] is
          ["fnt-page"] or ["leader"], [loc] the page or sector. *)
  | Scavenge_phase of { phase : string; us : int }
  | Recovery_phase of { phase : string; us : int }
  | Op_begin of { op : string; name : string }
  | Op_end of { op : string; us : int }
  | Blackbox_checkpoint of { gen : int64; events : int; sectors : int }
      (** The flight-recorder ring was checkpointed to the on-disk
          black-box region: generation written, events that fit, sectors
          transferred. Emitted inside its own ["blackbox"] span so the
          checkpoint's device I/O is attributed separately. *)
  | Session_wait of { client : int; us : int }
      (** A server session was unparked after waiting [us] for the force
          covering its transaction (§5.4 "the process doing the commit
          waits"); emitted at the wake time, so the wait spans
          [at_us - us, at_us]. The Chrome exporter turns it into a
          complete event on the session's own track. *)
  | Home_write_burst of { third : int; pages : int; leaders : int }
      (** One batched background home-write pass pre-flushing dirty FNT
          pages and leaders whose survival horizon is [third], issued
          between group commits once reclamation is near (§4.4). *)
  | Reclaim_stall of { third : int; pinned : int }
      (** Reclamation of [third] found [pinned] modified pages holding no
          committed image; the reclaim was refused with a typed error
          instead of home-writing uncommitted state. *)
  | Mutation of { seq : int }
      (** A namespace mutation (create/delete entry) reached the volume
          under the enclosing op span; [seq] is [Fsd.mutation_seq] after
          the mutation. The group-commit force that later logs it runs
          under a different span, so this event is what lets a replayer
          amortise force-interval log I/O back over the ops of the
          batch ({!Tables}' [amortised_*] columns). *)
  | Op_submitted of { client : int; opseq : int; op : string; arrived_us : int }
      (** Lifecycle (see {!Critpath}): the server's first admission
          attempt for client [client]'s [opseq]-th scripted op. The gap
          [at_us - arrived_us] is the scheduler/queue wait between the
          op becoming runnable (think deadline, open-loop arrival, or
          previous ack) and the scheduler reaching it. *)
  | Op_rejected of { client : int; opseq : int; why : string }
      (** One rejected admission attempt ([why] is ["queue_full"] or
          ["backpressure"]); the retry window runs from this instant to
          the op's next event. *)
  | Op_dropped of { client : int; opseq : int; retries : int }
      (** Admission retries exhausted; the op's lifecycle ends here
          without executing. *)
  | Op_acked of { client : int; opseq : int }
      (** The op's lifecycle end: at execute completion for reads,
          errors and already-durable mutations, or at the post-force
          wake for parked mutations (the session's [Op_end] ... this
          event is the parked-for-force window). *)

type entry = {
  seq : int;  (** monotonically increasing; also the span id of [Op_begin] *)
  span : int;  (** innermost enclosing span id, 0 at top level *)
  at_us : int;  (** virtual clock when the event was emitted *)
  event : event;
}

type t

val create : unit -> t
(** A disabled trace; no buffer is allocated until {!enable}. *)

val enabled : t -> bool
(** The hot-path guard: emission sites test this single flag and do
    nothing else (no allocation) when it is false. *)

val enable : ?capacity:int -> t -> unit
(** Allocate the ring (default capacity 65536 entries) and start
    recording. Re-enabling an enabled trace is a no-op. *)

val disable : t -> unit
(** Stop recording; the buffered entries remain readable. *)

val clear : t -> unit

val emit : t -> at:int -> event -> unit
(** Record an event at virtual time [at] under the current span.
    No-op when disabled. *)

val emit_span : t -> span:int -> at:int -> event -> unit
(** Record an event under an explicit span rather than the innermost
    open one. Queued device requests are serviced long after the op
    that issued them returned — the device captures {!current_span} at
    enqueue and attributes the eventual service events with it. *)

val current_span : t -> int
(** The innermost open span id, 0 at top level (or when disabled). *)

val begin_span : t -> at:int -> op:string -> name:string -> int
(** Open a span for operation [op] on file [name]; records an
    {!Op_begin} entry under the previous span and returns the new span
    id (0 when disabled — {!end_span} ignores it). *)

val end_span : t -> at:int -> int -> unit
(** Close the span, recording {!Op_end} with its duration. Spans
    opened after it that were never closed are discarded (exception
    unwinding). *)

val length : t -> int
val dropped : t -> int
(** Entries overwritten because the ring was full. *)

val to_list : t -> entry list
(** Buffered entries, oldest first. *)

val last : t -> int -> entry list
(** [last t n] is the newest [min n (length t)] entries, oldest first.
    Cheaper than [to_list] when only the tail is wanted (black-box
    checkpoints snapshot the tail on every group-commit force). *)

val open_spans : t -> (int * string * string * int) list
(** Spans currently open, innermost first:
    [(span id, op, name, start time)]. After a crash this is the
    in-flight work the black box names. *)

val iter : t -> (entry -> unit) -> unit

val encode_entry : Cedar_util.Bytebuf.Writer.t -> entry -> unit
(** Binary codec used by the on-disk black box. *)

val decode_entry : Cedar_util.Bytebuf.Reader.t -> entry
(** Raises {!Cedar_util.Bytebuf.Decode_error} on malformed input. *)

val pp_event : Format.formatter -> event -> unit

val pp_entry : Format.formatter -> entry -> unit
(** Timestamps are printed in simulated milliseconds. *)
