(** Named metrics registry shared by every storage layer.

    Three kinds of instrument live under dotted names ("fsd.forces",
    "device.sectors_written", "log.record_sectors"):

    - {e counters}: integer cells owned by the registry, incremented by
      the instrumented layer through the returned handle;
    - {e gauges}: closures sampling state the layer already keeps (an
      [Iostats.t] field, a store's repair count) so legacy mutable
      records need no second write on the hot path;
    - {e distributions}: [Stats.t] series for latency/size histograms.

    Registering a name that already exists {e replaces} the binding and
    (for counters and distributions) starts from a fresh zeroed cell.
    The FSD registers its counters at every boot, which is what gives
    [Fsd.counters] its historical per-boot reset semantics. *)

type t

type counter
(** Handle to a registered counter; incrementing through the handle is
    a single mutation, no lookup. *)

val create : unit -> t

val scoped : t -> string -> t
(** [scoped t prefix] is a view onto the {e same} underlying table that
    qualifies every name with [prefix] (conventionally ["vol0."]), on
    registration and on lookup alike. Enumeration ({!kinds},
    {!snapshot}, {!to_json}, {!pp}) through a scoped view is restricted
    to names under the prefix and reports them {e stripped}, so code
    written against unqualified names ("fsd.forces") works unchanged
    per instance; the root view still enumerates everything under its
    full ["vol0.fsd.forces"] names. Scopes nest. *)

val prefix : t -> string
(** The view's accumulated prefix; [""] for a root registry. *)

val counter : t -> string -> counter
(** Register (or re-register, zeroed) a counter under [name]. *)

val inc : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : t -> string -> (unit -> int) -> unit
(** Register a sampled integer source under [name]. *)

val dist : t -> string -> Cedar_util.Stats.t
(** Register a fresh distribution under [name] and return it. *)

val register_dist : t -> string -> Cedar_util.Stats.t -> unit
(** Register an existing series (e.g. [Log.stats].record_sizes). *)

val kinds : t -> (string * [ `Counter | `Gauge | `Dist ]) list
(** Every registered instrument with its kind, sorted by name. Lets a
    sampler treat counters (delta per interval) differently from gauges
    (point-in-time value) without guessing from the name. *)

val read : t -> string -> int option
(** Current value of the counter or gauge registered under [name];
    [None] for unknown names and distributions. *)

val read_dist : t -> string -> Cedar_util.Stats.t option

type snapshot_value =
  | Int of int  (** counter or sampled gauge *)
  | Dist of {
      n : int;
      mean : float;
      min : float;
      p50 : float;
      p90 : float;
      p95 : float;
      p99 : float;
      max : float;
    }

val snapshot : t -> (string * snapshot_value) list
(** All instruments, sampled now, sorted by name. Empty distributions
    report [Dist] with [n = 0] and zeroed moments. *)

val to_json : t -> Jsonb.t
(** Deterministic (name-sorted) object; distributions become
    [{n, mean, min, p50, p90, p95, p99, max}] sub-objects. *)

val pp : Format.formatter -> t -> unit
