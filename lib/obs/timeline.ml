(* Serialization and terminal rendering for monitor samples.

   The JSON and CSV emitters are pure functions of the sample list, so
   they inherit the monitor's determinism contract: identical runs give
   byte-identical output. The frame renderer writes plain text only —
   no ANSI escape sequences — so `--watch` piped to a file (or run
   without a tty) stays grep-clean; any cursor addressing is the
   caller's business. *)

module J = Jsonb

let window_stat_json (w : Monitor.window_stat) =
  J.Obj
    [
      ("n", J.Int w.Monitor.w_n);
      ("p50", J.Float w.Monitor.w_p50);
      ("p90", J.Float w.Monitor.w_p90);
      ("p99", J.Float w.Monitor.w_p99);
    ]

let sample_json (s : Monitor.sample) =
  J.Obj
    [
      ("at_us", J.Int s.Monitor.at_us);
      ("dt_us", J.Int s.Monitor.dt_us);
      ( "counters",
        J.Obj (List.map (fun (k, v) -> (k, J.Int v)) s.Monitor.counters) );
      ("gauges", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) s.Monitor.gauges));
      ( "derived",
        J.Obj (List.map (fun (k, v) -> (k, J.Float v)) s.Monitor.derived) );
      ( "dists",
        J.Obj (List.map (fun (k, w) -> (k, window_stat_json w)) s.Monitor.dists)
      );
    ]

let to_json samples = J.Arr (List.map sample_json samples)

(* CSV: fixed at_us/dt_us columns, then the union (across all samples)
   of counter, gauge, derived and dist columns, each group name-sorted.
   Cells absent from a given sample render empty. *)

let num_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let union_keys proj samples =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun s -> List.iter (fun (k, _) -> Hashtbl.replace tbl k ()) (proj s))
    samples;
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

let to_csv samples =
  let counters = union_keys (fun s -> s.Monitor.counters) samples in
  let gauges = union_keys (fun s -> s.Monitor.gauges) samples in
  let derived = union_keys (fun s -> s.Monitor.derived) samples in
  let dists = union_keys (fun s -> s.Monitor.dists) samples in
  let b = Buffer.create 1024 in
  Buffer.add_string b "at_us,dt_us";
  List.iter (fun k -> Buffer.add_string b (",c." ^ k)) counters;
  List.iter (fun k -> Buffer.add_string b (",g." ^ k)) gauges;
  List.iter (fun k -> Buffer.add_string b (",d." ^ k)) derived;
  List.iter
    (fun k ->
      Buffer.add_string b
        (Printf.sprintf ",%s.n,%s.p50,%s.p90,%s.p99" k k k k))
    dists;
  Buffer.add_char b '\n';
  List.iter
    (fun (s : Monitor.sample) ->
      Buffer.add_string b (string_of_int s.Monitor.at_us);
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int s.Monitor.dt_us);
      let cell_int assoc k =
        Buffer.add_char b ',';
        match List.assoc_opt k assoc with
        | Some v -> Buffer.add_string b (string_of_int v)
        | None -> ()
      in
      List.iter (cell_int s.Monitor.counters) counters;
      List.iter (cell_int s.Monitor.gauges) gauges;
      List.iter
        (fun k ->
          Buffer.add_char b ',';
          match List.assoc_opt k s.Monitor.derived with
          | Some v -> Buffer.add_string b (num_str v)
          | None -> ())
        derived;
      List.iter
        (fun k ->
          match List.assoc_opt k s.Monitor.dists with
          | Some (w : Monitor.window_stat) ->
            Buffer.add_string b
              (Printf.sprintf ",%d,%s,%s,%s" w.Monitor.w_n
                 (num_str w.Monitor.w_p50) (num_str w.Monitor.w_p90)
                 (num_str w.Monitor.w_p99))
          | None -> Buffer.add_string b ",,,,")
        dists;
      Buffer.add_char b '\n')
    samples;
  Buffer.contents b

(* Sparklines: eight UTF-8 block glyphs, scaled to the series' own
   range so a flat line renders as a flat line. Plain text, no escape
   codes. *)

let spark_glyphs = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let sparkline ?(width = 48) values =
  let values =
    let n = List.length values in
    if n <= width then values
    else
      (* keep the newest [width] points *)
      List.filteri (fun i _ -> i >= n - width) values
  in
  match values with
  | [] -> ""
  | vs ->
    let lo = List.fold_left Float.min infinity vs in
    let hi = List.fold_left Float.max neg_infinity vs in
    let range = hi -. lo in
    let b = Buffer.create (3 * List.length vs) in
    List.iter
      (fun v ->
        let i =
          if range <= 0.0 then 0
          else
            min 7 (int_of_float (Float.of_int 8 *. (v -. lo) /. range))
        in
        Buffer.add_string b spark_glyphs.(i))
      vs;
    Buffer.contents b

(* One dashboard frame: header, nonzero counter deltas, gauges, derived
   saturation gauges, watched dist percentiles, then a sparkline per
   requested derived series over the supplied history. *)

let render_frame ?(spark = []) ~history (s : Monitor.sample) =
  let b = Buffer.create 1024 in
  let secs = float_of_int s.Monitor.at_us /. 1e6 in
  let dt_ms = float_of_int s.Monitor.dt_us /. 1e3 in
  Buffer.add_string b
    (Printf.sprintf "t=%9.3fs  dt=%7.1fms  samples=%d\n" secs dt_ms
       (List.length history));
  let nonzero = List.filter (fun (_, v) -> v <> 0) s.Monitor.counters in
  if nonzero <> [] then begin
    Buffer.add_string b "  deltas ";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=%d" k v))
      nonzero;
    Buffer.add_char b '\n'
  end;
  if s.Monitor.gauges <> [] then begin
    Buffer.add_string b "  gauges ";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=%d" k v))
      s.Monitor.gauges;
    Buffer.add_char b '\n'
  end;
  if s.Monitor.derived <> [] then begin
    Buffer.add_string b "  sat    ";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=%.3f" k v))
      s.Monitor.derived;
    Buffer.add_char b '\n'
  end;
  List.iter
    (fun (k, (w : Monitor.window_stat)) ->
      Buffer.add_string b
        (Printf.sprintf "  %-28s n=%-4d p50=%-10.1f p90=%-10.1f p99=%.1f\n" k
           w.Monitor.w_n w.Monitor.w_p50 w.Monitor.w_p90 w.Monitor.w_p99))
    s.Monitor.dists;
  List.iter
    (fun name ->
      let series =
        List.filter_map
          (fun (h : Monitor.sample) -> List.assoc_opt name h.Monitor.derived)
          history
      in
      if series <> [] then
        Buffer.add_string b
          (Printf.sprintf "  %-28s %s\n" name (sparkline series)))
    spark;
  Buffer.contents b
