type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let rec render b ~indent ~level v =
  let pad l =
    if indent then begin
      Buffer.add_char b '\n';
      for _ = 1 to 2 * l do
        Buffer.add_char b ' '
      done
    end
  in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_str f)
  | Str s ->
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'
  | Arr [] -> Buffer.add_string b "[]"
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        pad (level + 1);
        render b ~indent ~level:(level + 1) x)
      xs;
    pad level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_char b ',';
        pad (level + 1);
        Buffer.add_char b '"';
        escape b k;
        Buffer.add_string b (if indent then "\": " else "\":");
        render b ~indent ~level:(level + 1) x)
      kvs;
    pad level;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  render b ~indent:false ~level:0 v;
  Buffer.contents b

let to_string_pretty v =
  let b = Buffer.create 256 in
  render b ~indent:true ~level:0 v;
  Buffer.contents b
