type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let rec render b ~indent ~level v =
  let pad l =
    if indent then begin
      Buffer.add_char b '\n';
      for _ = 1 to 2 * l do
        Buffer.add_char b ' '
      done
    end
  in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_str f)
  | Str s ->
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'
  | Arr [] -> Buffer.add_string b "[]"
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        pad (level + 1);
        render b ~indent ~level:(level + 1) x)
      xs;
    pad level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_char b ',';
        pad (level + 1);
        Buffer.add_char b '"';
        escape b k;
        Buffer.add_string b (if indent then "\": " else "\":");
        render b ~indent ~level:(level + 1) x)
      kvs;
    pad level;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  render b ~indent:false ~level:0 v;
  Buffer.contents b

let to_string_pretty v =
  let b = Buffer.create 256 in
  render b ~indent:true ~level:0 v;
  Buffer.contents b

(* Recursive-descent parser for the same dialect the renderer writes
   (strict JSON). Numbers keep their lexical kind: a literal with no
   '.', 'e' or 'E' parses as [Int], everything else as [Float] — so a
   parse/render round trip preserves the Int/Float distinction the
   bench-diff comparator relies on. *)

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance ()
        | Some '\\' -> Buffer.add_char b '\\'; advance ()
        | Some '/' -> Buffer.add_char b '/'; advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'b' -> Buffer.add_char b '\b'; advance ()
        | Some 'f' -> Buffer.add_char b '\012'; advance ()
        | Some 'u' ->
          advance ();
          utf8 b (hex4 ())
        | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
        advance ();
        go ()
      | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    let lit = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let acc = ref [] in
        let rec elems () =
          acc := parse_value () :: !acc;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elems ();
        Arr (List.rev !acc)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let acc = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          acc := (k, v) :: !acc;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !acc)
      end
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg
