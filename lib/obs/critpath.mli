(** Per-op latency anatomy: fold a lifecycle trace into conserved phase
    vectors and assign tail blame.

    The server emits one lifecycle per scripted op
    ({!Trace.Op_submitted} → [Op_rejected]* → session span →
    {!Trace.Op_acked}, or [Op_dropped]), all pure transition
    timestamps. This module folds those entries into one {!op_record}
    per op whose five exclusive phases are differences of consecutive
    timestamps:

    - [queue_us] — runnable (think deadline / open-loop arrival /
      previous ack) until the scheduler's first admission attempt;
    - [admission_us] — first attempt until execute starts (the sum of
      typed-reject retry windows), or until the drop;
    - [execute_us] — inside [Fsd.submit], further split into device
      [seek_us], device [transfer_us] and the CPU/FNT/leader remainder
      via the span-attributed device events;
    - [append_us] — the part of the post-execute wait overlapping the
      covering group-commit force's own duration (the op's share of log
      I/O);
    - [parked_us] — the rest of the §5.4 parked-for-force wait.

    Conservation is therefore exact by construction —
    [queue + admission + execute + append + parked = end - arrived]
    microsecond for microsecond — and {!fold} verifies it anyway for
    every op ({!t}'s [all_conserved]): a [false] means the event stream
    itself is malformed, not that rounding drifted. *)

type phase = Queue | Admission | Execute | Append | Parked

val phase_name : phase -> string
(** ["queue"], ["admission"], ["execute"], ["append"], ["parked"]. *)

type op_record = {
  client : int;
  opseq : int;  (** per-client lifecycle number, 1-based *)
  op : string;  (** kind label from [Concurrent.op_kind] *)
  arrived_us : int;
  end_us : int;  (** ack time, or drop time for dropped ops *)
  queue_us : int;
  admission_us : int;
  execute_us : int;
  seek_us : int;  (** device arm time inside execute *)
  transfer_us : int;  (** device read/write time inside execute *)
  append_us : int;
  parked_us : int;
  retries : int;  (** admission rejects survived (or suffered, if dropped) *)
  dropped : bool;
  stalls : int;  (** reclaim stalls observed inside execute *)
}

val total_us : op_record -> int
(** End-to-end latency, [end_us - arrived_us]. *)

val conserved : op_record -> bool
(** Whether the five phases sum exactly to {!total_us}. *)

type pct = { p50 : float; p90 : float; p99 : float; mean : float; max : float }

type agg = {
  a_op : string;
  a_n : int;  (** completed lifecycles of this kind *)
  a_dropped : int;
  a_retries : int;
  a_stalls : int;
  a_e2e : pct;
  a_phase : (phase * pct) list;  (** in declaration order, all five *)
  a_blame : phase;
      (** the phase with the largest mean over the p99 tail (ops whose
          end-to-end latency is at or above the e2e p99) *)
  a_tail_n : int;
  a_tail_share : (phase * float) list;
      (** each phase's fraction of total tail latency, summing to 1 *)
}

type t = {
  ops : op_record list;  (** completed lifecycles, in ack order *)
  aggs : agg list;  (** per op kind, sorted by kind *)
  orphans : int;  (** terminal events whose start fell off the ring *)
  unfinished : int;  (** lifecycles still open when the capture ended *)
  all_conserved : bool;
}

val fold : Trace.entry list -> t
(** Fold a trace (oldest first, as {!Trace.to_list} yields) into the
    anatomy. Tolerates truncated rings: lifecycles missing their start
    are counted in [orphans], in-flight ones in [unfinished]. *)

val blame : t -> op:string -> phase option
(** The dominant tail phase for op kind [op], if any completed. *)

val to_json : ?op:string -> ?top:int -> t -> Jsonb.t
(** Deterministic rendering: a summary object, per-kind aggregates
    (optionally restricted to kind [op]) and the [top] slowest ops
    (default 5) with their full phase vectors. *)

val pp : ?op:string -> ?top:int -> Format.formatter -> t -> unit
(** The human [cedar why] report: blame table plus top slowest ops. *)
