(** Serialization and terminal rendering for {!Monitor} samples.

    All three emitters are pure functions of their inputs, so they
    inherit the monitor's determinism contract: two identical runs
    produce byte-identical JSON, CSV and frames. *)

val sample_json : Monitor.sample -> Jsonb.t
(** One sample as [{at_us, dt_us, counters, gauges, derived, dists}]
    with each group an object in the sample's (name-sorted) order. *)

val to_json : Monitor.sample list -> Jsonb.t
(** The whole timeline as a JSON array, oldest sample first. *)

val to_csv : Monitor.sample list -> string
(** One row per sample. Fixed [at_us,dt_us] columns, then the union
    across all samples of counter ([c.NAME]), gauge ([g.NAME]), derived
    ([d.NAME]) and dist ([NAME.n/.p50/.p90/.p99]) columns, each group
    name-sorted; cells a sample lacks are empty. *)

val sparkline : ?width:int -> float list -> string
(** The series (oldest first; newest [width] points kept, default 48)
    as eight-level UTF-8 block glyphs scaled to its own min/max. Plain
    text — no ANSI escape sequences. *)

val render_frame :
  ?spark:string list -> history:Monitor.sample list -> Monitor.sample -> string
(** One dashboard frame for the given sample: header line, nonzero
    counter deltas, gauges, derived saturation gauges, watched dist
    window percentiles, and a sparkline over [history] for each derived
    gauge named in [spark]. Plain text only; cursor control (clearing
    between frames on a tty) is the caller's business. *)
