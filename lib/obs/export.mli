(** Trace exporters for external viewers. *)

val chrome : Trace.entry list -> Jsonb.t
(** Chrome trace-event JSON (the [about://tracing] / Perfetto format).

    Spans are emitted as complete ["X"] events (begin matched to end via
    the span id, duration from {!Trace.Op_end}), device commands as
    ["X"] events on their own thread row, log/FSD events as instants,
    plus ["M"] thread-name metadata. Only X/i/M phases are produced, so
    the output is balanced by construction. Timestamps are the simulated
    clock in microseconds, as the format requires. *)
