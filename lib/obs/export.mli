(** Trace exporters for external viewers. *)

val chrome : ?samples:Monitor.sample list -> Trace.entry list -> Jsonb.t
(** Chrome trace-event JSON (the [about://tracing] / Perfetto format).

    Spans are emitted as complete ["X"] events (begin matched to end via
    the span id, duration from {!Trace.Op_end}), device commands as
    ["X"] events on their own thread row, log/FSD events as instants,
    plus ["M"] thread-name metadata. When monitor [samples] are given,
    each derived saturation gauge and each watched dist's windowed p99
    additionally becomes a counter (["C"]-phase) track, so queue depth
    and log fill render as area charts alongside the span rows.
    Timestamps are the simulated clock in microseconds, as the format
    requires. *)
