(** Minimal JSON value builder used by the observability layer.

    The tree is built from plain constructors and rendered with
    {!to_string}; no parsing, no external dependency. Object member
    order is preserved as given, so callers that want deterministic
    output (the table emitters) sort before building. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace beyond single spaces). *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for files meant to be read by humans. *)

val of_string : string -> (t, string) result
(** Parse strict JSON back into the tree. Number literals keep their
    lexical kind — no '.', 'e' or 'E' parses as [Int], anything else as
    [Float] — so a render/parse round trip preserves the distinction
    (the bench-diff comparator treats an Int/Float flip as drift).
    Errors carry a byte offset. *)
