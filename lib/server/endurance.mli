(** Log-wrap endurance: the churn workload driven through the
    concurrent server until the log wraps repeatedly, with three
    self-verification stages — the serve must be clean (no errors,
    drops or aborts), the live volume must match the version-aware
    {!Oracle} fold of every client's mutations, and a clean shutdown +
    reboot must replay zero records while reproducing the namespace
    digest byte-for-byte.

    Fully deterministic: same spec, same geometry → byte-identical
    {!report_json}. *)

type cfg = { clients : int; spec : Cedar_workload.Concurrent.churn_spec }

val default_cfg : cfg
(** 2 clients running {!Cedar_workload.Concurrent.default_churn}. *)

type result = {
  e_report : Server.report;
  e_third_entries : int;  (** thirds entered — /3 for full log wraps *)
  e_log_records : int;
  e_home_write_bursts : int;  (** background home-write demon passes *)
  e_reclaim_stalls : int;  (** typed [Log_reclaim_stall] refusals *)
  e_fnt_home_writes : int;
  e_violations : string list;  (** live-volume oracle mismatches *)
  e_replayed_after_shutdown : int;  (** must be 0 *)
  e_digest_match : bool;  (** reboot reproduced the namespace *)
  e_violations_after_reboot : string list;
}

val clean : result -> bool
(** No violations in either stage, zero records replayed after the
    clean shutdown, digest reproduced. *)

val run : ?geom:Cedar_disk.Geometry.t -> cfg -> result
(** Run on a fresh in-memory volume ([Geometry.small_test] by default;
    [Geometry.tiny_test] wraps far faster for the same spec). Raises
    [Invalid_argument] if [churn_keep] disagrees with the geometry's
    [default_keep] or [clients < 1]. *)

val report_json : result -> Cedar_obs.Jsonb.t
(** Deterministic rendering, byte-identical across same-spec runs. *)

val pp : Format.formatter -> result -> unit
