(** The recovery oracle: a version-aware model of the namespace a
    volume must hold after replaying a prefix of a client's mutating
    operations.

    Each name is modelled as a stack of (bytes, fill) versions, newest
    first: a create pushes and truncates to [keep] (mirroring the file
    system's keep enforcement), a delete pops the newest. A volume
    matches a state when every touched name exists iff its stack is
    non-empty, holds exactly as many live versions as the stack is
    deep, and its newest content is byte-equal to the stack top. For
    workloads that never reuse a name this degenerates to the flat
    name → latest-create map the crash sweep originally used. *)

type mut =
  | Mcreate of { name : string; bytes : int; fill : int }
  | Mdelete of string

val mut_of_op : Cedar_workload.Concurrent.op -> mut option
(** [Some] for creates and deletes, [None] for read-only ops. *)

val muts_of_script : Cedar_workload.Concurrent.script -> mut list
val mut_name : mut -> string

val mut_names : mut list -> string list
(** Every distinct name the mutations touch, sorted. *)

type state = (string, (int * int) list) Hashtbl.t
(** name → (bytes, fill) version stack, newest first; an absent key and
    an empty stack both mean "no live version". *)

val state_after : keep:int -> mut list -> int -> state
(** The model state after the first [i] mutations, keeping at most
    [keep] versions per name ([keep <= 0] keeps all). *)

val expected_stack : state -> string -> (int * int) list

val actual_file :
  Cedar_fsd.Fsd.t -> name:string -> (bytes option, string) result
(** Newest content of [name], [Ok None] if absent, [Error] if reading
    raised. *)

val diff : Cedar_fsd.Fsd.t -> state -> string list -> string list
(** Every discrepancy between the volume and the state over the given
    names, as human-readable strings; [[]] means the volume matches. *)

val matches_prefix :
  Cedar_fsd.Fsd.t -> keep:int -> mut list -> string list -> int -> bool
(** Does the volume equal the fold of the first [i] mutations? *)

val volume_digest :
  Cedar_fsd.Fsd.t -> (string * int) list * (string * string) list
(** Deterministic digest of every name-table key plus each name's
    newest content. Two boots of one volume must digest equal — the
    convergence check behind "a record already written home must never
    be replayed into stale state". *)
