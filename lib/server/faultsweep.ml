(* Systematic crash-injection sweep for the concurrent server path.

   One recording pass replays the deterministic reference workload
   (Concurrent.crash_reference) on a fresh volume with a Crash_plan
   attached, purely to learn how many sector writes each force interval
   contains. The sweep then re-runs the identical workload once per
   (force interval, sector-write offset, tear mode) coordinate, killing
   the device at exactly that write, and checks the §5.4 contract on the
   rebooted volume:

   - every acknowledged mutation is present with byte-exact content, and
     every unacknowledged one is wholly absent — precisely: each
     client's recovered namespace equals the fold of some prefix of its
     mutating ops no shorter than its acked count (the crash can fall
     between a force and the acks it releases, so committed-but-unacked
     is legal; a lost ack'd op or a partially applied op is not);
   - the rebuilt VAM agrees with the name table: the empty volume's free
     count minus the distinct sectors the recovered entries claim equals
     the recovered free count (Fsd.check separately audits the converse
     direction and leader/entry agreement);
   - the black-box region decodes to exactly the generation of the last
     checkpoint that completed before the crash — a torn checkpoint
     write must fall back to the older slot, never abort the decode.

   With [scavenge] set the harness additionally destroys both copies of
   the entire name table after the crash, forcing recovery through
   Scavenge.run. The scavenger rebuilds from leader pages, which are
   written synchronously at create and survive deletes it cannot prove,
   so the oracle weakens to: boot succeeds, the structural check passes,
   everything present is byte-exact, and every acked create whose name
   the script never deletes is present. *)

open Cedar_util
open Cedar_disk
open Cedar_fsd
open Cedar_workload
module Metrics = Cedar_obs.Metrics
module Trace = Cedar_obs.Trace
module Jsonb = Cedar_obs.Jsonb

type workload =
  | Reference  (** the unique-name crash_reference script, all intervals *)
  | Wrap of Concurrent.churn_spec
      (** churn sized to wrap the log; the sweep targets only the force
          intervals in the wrap window (a third entry, or adjacent) *)

type cfg = {
  clients : int;
  tears : Device.tear list;
  max_forces : int option;  (** sweep only intervals [0 .. k-1] *)
  scavenge : bool;  (** destroy both FNT copies before every reboot *)
  workload : workload;
}

let all_tears =
  [ Device.Tear_none; Device.Tear_zero; Device.Tear_garbage; Device.Tear_damage 1 ]

let default_cfg =
  {
    clients = 2;
    tears = all_tears;
    max_forces = None;
    scavenge = false;
    workload = Reference;
  }

(* Sized for [Geometry.tiny_test] (37-sector thirds): two clients'
   worth wraps the log more than once while keeping the sweep's
   (interval x write x tear) product affordable. Forcing every
   mutation keeps intervals small, so each third entry is bracketed by
   crash points only a few sector writes apart. *)
let default_wrap_spec =
  {
    Concurrent.default_churn with
    Concurrent.slots = 4;
    churn_ops = 30;
    bytes_min = 200;
    bytes_max = 900;
    churn_think_us = 1_000;
    force_every = 1;
  }

let workload_name = function Reference -> "reference" | Wrap _ -> "wrap"

let tear_name = function
  | Device.Tear_none -> "none"
  | Device.Tear_zero -> "zero"
  | Device.Tear_garbage -> "garbage"
  | Device.Tear_damage n -> Printf.sprintf "damage%d" n

let tear_of_name = function
  | "none" -> Some Device.Tear_none
  | "zero" -> Some Device.Tear_zero
  | "garbage" -> Some Device.Tear_garbage
  | "damage" -> Some (Device.Tear_damage 1)
  | _ -> None

type path = Replay | Twin_repair | Scavenged

type violation = {
  v_force : int;
  v_write : int;
  v_tear : string;
  v_what : string;
}

type summary = {
  sw_clients : int;
  sw_workload : string;
  sw_scavenge : bool;
  sw_writes_per_interval : int array;
  sw_intervals : int list;  (** force intervals actually swept *)
  sw_points : int;  (** (interval, write) coordinates enumerated *)
  sw_runs : int;  (** crash runs executed (points × tear modes) *)
  sw_replay : int;
  sw_twin_repair : int;
  sw_scavenged : int;
  sw_violations : violation list;
}

(* ------------------------------------------------------------------ *)
(* Volume construction and calibration.                                *)

type base = {
  geom : Geometry.t;
  params : Params.t;
  layout : Layout.t;
  scripts : Concurrent.script array;
  muts : Oracle.mut list array;  (* per client *)
  names : string list array;  (* per client *)
  writes : int array;  (* per force interval, from the recording pass *)
  wrap_intervals : int list;
      (* intervals in which the log entered a third, plus neighbours *)
  baseline_free : int;  (* free sectors of the empty volume *)
  first_gen : int64;  (* generation of the first blackbox checkpoint *)
}

let fresh_volume base =
  let clock = Simclock.create () in
  let device = Device.create ~clock base.geom in
  (* Checkpoints (and so the black-box oracle) exist only while tracing. *)
  Trace.enable (Device.trace device);
  Fsd.format device base.params;
  let fs, _ = Fsd.boot device in
  (device, fs)

let checkpoints_done device =
  match Metrics.read (Device.metrics device) "fsd.blackbox_checkpoints" with
  | Some n -> n
  | None -> 0

let server_config plan =
  {
    Server.default_config with
    Server.on_force = Some (fun _ -> Crash_plan.note_force plan);
  }

(* The wrap window: every force interval in which the log entered a
   third, widened by one interval each side — the entry's home-write
   burst and pointer rewrite happen inside it, while the appends that
   arm and immediately follow the entry land in the neighbours. A run
   with [f] forces has [f + 1] intervals (interval [f] is the open one
   after the last force); [samples.(k)] is the third-entry count just
   before force [k + 1] fired and [total] the count at the end, so
   interval [i] saw [after i - before i] entries. *)
let wrap_window ~samples ~total =
  let f = Array.length samples in
  let before i = if i = 0 then 0 else samples.(i - 1) in
  let after i = if i < f then samples.(i) else total in
  let window = Hashtbl.create 13 in
  for i = 0 to f do
    if after i - before i > 0 then begin
      Hashtbl.replace window i ();
      if i > 0 then Hashtbl.replace window (i - 1) ();
      if i < f then Hashtbl.replace window (i + 1) ()
    end
  done;
  List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) window [])

let calibrate ~clients ~workload geom =
  let params = Params.for_geometry geom in
  let scripts =
    match workload with
    | Reference -> Concurrent.crash_reference ~clients
    | Wrap spec ->
      if spec.Concurrent.churn_keep <> params.Params.default_keep then
        invalid_arg
          "Faultsweep.calibrate: churn_keep must match the volume's \
           default_keep";
      Concurrent.churn_scripts spec ~clients
  in
  let muts = Array.map Oracle.muts_of_script scripts in
  let names = Array.map Oracle.mut_names muts in
  let baseline_free =
    let clock = Simclock.create () in
    let device = Device.create ~clock geom in
    Fsd.format device params;
    let fs, _ = Fsd.boot device in
    Fsd.free_sectors fs
  in
  let pre =
    {
      geom;
      params;
      layout = Layout.compute geom params;
      scripts;
      muts;
      names;
      writes = [||];
      wrap_intervals = [];
      baseline_free;
      first_gen = 1L;
    }
  in
  let device, fs = fresh_volume pre in
  let plan = Crash_plan.attach device in
  let samples = ref [] in
  let config =
    {
      (server_config plan) with
      Server.on_force =
        Some
          (fun _ ->
            samples := (Fsd.log_stats fs).Log.third_entries :: !samples;
            Crash_plan.note_force plan);
    }
  in
  let r = Server.serve ~config fs scripts in
  Crash_plan.detach plan;
  if r.Server.total_errors > 0 || r.Server.total_rejected > 0
     || r.Server.total_aborted > 0 || r.Server.total_dropped > 0
  then
    invalid_arg
      "Faultsweep.calibrate: the reference workload must replay clean";
  let total_entries = (Fsd.log_stats fs).Log.third_entries in
  let wrap_intervals =
    match workload with
    | Reference -> []
    | Wrap _ ->
      let samples = Array.of_list (List.rev !samples) in
      let w = wrap_window ~samples ~total:total_entries in
      if w = [] then
        invalid_arg
          "Faultsweep.calibrate: the churn workload never entered a third \
           (no wrap window to sweep)";
      w
  in
  let n = checkpoints_done device in
  let first_gen =
    match Blackbox.read device (Fsd.layout fs) with
    | Ok cp when n > 0 -> Int64.sub cp.Blackbox.state.Blackbox.gen (Int64.of_int (n - 1))
    | Ok _ | Error _ -> 1L
  in
  {
    pre with
    layout = Fsd.layout fs;
    writes = Crash_plan.writes_per_interval plan;
    wrap_intervals;
    first_gen;
  }

(* ------------------------------------------------------------------ *)
(* Post-crash checks.                                                  *)

let destroy_fnt device (layout : Layout.t) =
  for k = 0 to layout.Layout.fnt_sectors - 1 do
    Device.damage device (layout.Layout.fnt_a_start + k);
    Device.damage device (layout.Layout.fnt_b_start + k)
  done

(* [n] checkpoints completed before the crash, so the slot holding
   generation [first_gen + n - 1] is intact and a decode must never come
   back older than it (or fail outright). Decoding one generation newer
   is legal: the crash may have interrupted checkpoint [n+1]'s slot
   command after every meaningful byte already landed — the torn tail
   was only padding, so both CRCs pass. *)
let check_blackbox base device add =
  let n = checkpoints_done device in
  let last = Int64.add base.first_gen (Int64.of_int (n - 1)) in
  match Blackbox.read device base.layout with
  | Ok cp ->
    let gen = cp.Blackbox.state.Blackbox.gen in
    let in_flight = Int64.add last 1L in
    if not (Int64.equal gen last || Int64.equal gen in_flight) then
      add
        (Printf.sprintf
           "blackbox gen %Ld after %d completed checkpoints, want %Ld or %Ld"
           gen n last in_flight)
  | Error m ->
    if n > 0 then
      add
        (Printf.sprintf "blackbox undecodable after %d completed checkpoints: %s" n m)

let check_vam base fs add =
  let claimed = Hashtbl.create 256 in
  Fsd.fold_entries fs ~init:() ~f:(fun () ~name:_ ~version:_ e ->
      if e.Cedar_fsbase.Entry.anchor >= 0 then begin
        Hashtbl.replace claimed e.Cedar_fsbase.Entry.anchor ();
        Cedar_fsbase.Run_table.iter_sectors e.Cedar_fsbase.Entry.runs (fun s ->
            Hashtbl.replace claimed s ())
      end);
  let free = Fsd.free_sectors fs in
  let want = base.baseline_free - Hashtbl.length claimed in
  if free <> want then
    add
      (Printf.sprintf "VAM free count %d disagrees with name table (want %d)"
         free want)

(* Strict oracle: each client's recovered namespace is the fold of a
   prefix of its mutating ops at least as long as its acked count —
   version-aware, so churn workloads that re-create live names are
   checked exactly (stack depth, newest content). *)
let check_clients base fs acked add =
  let keep = base.params.Params.default_keep in
  Array.iteri
    (fun client muts ->
      let names = base.names.(client) in
      let acked_count =
        List.length (List.filter (fun (c, _) -> c = client) acked)
      in
      let len = List.length muts in
      if acked_count > len then
        add (Printf.sprintf "client %d acked %d of %d muts" client acked_count len)
      else begin
        let rec search i =
          if i > len then false
          else Oracle.matches_prefix fs ~keep muts names i || search (i + 1)
        in
        if not (search acked_count) then
          add
            (Printf.sprintf
               "client %d: no mutation prefix >= %d acked ops explains the \
                recovered state"
               client acked_count)
      end)
    base.muts

(* Weakened oracle for scavenged volumes. The scavenger legitimately
   resurrects unacked creates (leaders are written synchronously, and
   the interrupted write may have been that create's own data — so even
   their content is unconstrained) and acked deletes (their FNT proof
   was destroyed with the table; their sectors may since have been
   reused, costing them to a newer claim). What it must never do is lose
   or corrupt an acked create the script never deletes: that file's data
   was fully on disk before the ack and nothing ever freed it. *)
let check_clients_scavenged base fs acked add =
  Array.iteri
    (fun client muts ->
      let deleted =
        List.filter_map (function Oracle.Mdelete n -> Some n | _ -> None) muts
      in
      let acked_creates =
        List.filter_map
          (fun (c, op) ->
            match op with
            | Concurrent.Create { name; _ } when c = client -> Some name
            | _ -> None)
          acked
      in
      List.iter
        (fun m ->
          match m with
          | Oracle.Mcreate { name; bytes; fill }
            when List.mem name acked_creates && not (List.mem name deleted)
            -> (
            match Oracle.actual_file fs ~name with
            | Ok None -> add (Printf.sprintf "scavenge lost acked create %s" name)
            | Ok (Some b) ->
              if not (Bytes.equal b (Concurrent.content ~fill bytes)) then
                add (Printf.sprintf "scavenged content of %s is wrong" name)
            | Error m -> add (Printf.sprintf "%s unreadable: %s" name m))
          | Oracle.Mcreate _ | Oracle.Mdelete _ -> ())
        muts)
    base.muts

(* Every recovered name must come from the reference scripts. *)
let check_no_aliens base fs add =
  let known = Hashtbl.create 64 in
  Array.iter
    (fun names -> List.iter (fun n -> Hashtbl.replace known n ()) names)
    base.names;
  Fsd.fold_entries fs ~init:() ~f:(fun () ~name ~version:_ _ ->
      if not (Hashtbl.mem known name) then
        add (Printf.sprintf "recovered a name no script created: %s" name))

(* ------------------------------------------------------------------ *)
(* The sweep.                                                          *)

let run_point cfg base ~force ~write ~tear =
  let device, fs = fresh_volume base in
  let plan = Crash_plan.attach device in
  Crash_plan.arm plan ~force ~write ~tear;
  let server = Server.create ~config:(server_config plan) fs base.scripts in
  let violations = ref [] in
  let add what =
    violations :=
      { v_force = force; v_write = write; v_tear = tear_name tear; v_what = what }
      :: !violations
  in
  let path =
    match Server.run_to_crash server with
    | Server.Completed _ ->
      add "armed crash never fired";
      None
    | Server.Crashed _ ->
      Crash_plan.detach plan;
      Device.cancel_write_crash device;
      let acked = Server.acked server in
      check_blackbox base device add;
      if cfg.scavenge then destroy_fnt device base.layout;
      let booted =
        match Fsd.try_boot device with
        | `Ok (fs2, _) ->
          if not cfg.scavenge && Fsd.fnt_repairs fs2 > 0 then
            Some (fs2, Twin_repair)
          else Some (fs2, Replay)
        | `Needs_scavenge reason ->
          if not cfg.scavenge then
            add ("log replay insufficient, wanted scavenge: " ^ reason);
          ignore (Scavenge.run device : Scavenge.report);
          (match Fsd.boot device with
          | fs2, _ -> Some (fs2, Scavenged)
          | exception e ->
            add ("boot after scavenge raised " ^ Printexc.to_string e);
            None)
        | exception e ->
          add ("reboot raised " ^ Printexc.to_string e);
          None
      in
      (match booted with
      | None -> None
      | Some (fs2, path) ->
        (match Fsd.check fs2 with
        | Ok () -> ()
        | Error m -> add ("structural check failed: " ^ m));
        check_no_aliens base fs2 add;
        (if cfg.scavenge || path = Scavenged then
           match cfg.workload with
           | Reference -> check_clients_scavenged base fs2 acked add
           | Wrap _ ->
             (* Churn deletes and re-creates most of its names, so the
                "acked create never deleted" witness the scavenged
                oracle rests on does not exist; structural soundness
                and no-alien-names are all that can be demanded. *)
             ()
         else begin
           check_clients base fs2 acked add;
           check_vam base fs2 add
         end);
        (* Convergence clause: a record whose images were already
           written home must never be replayed into stale state. A
           clean shutdown resets the log pointer past everything
           recovery just applied, so a second boot must replay nothing
           and reproduce the namespace byte-for-byte — if replay and
           the home-write path disagree about who owns a page, this is
           where it shows. *)
        let digest = Oracle.volume_digest fs2 in
        (match Fsd.shutdown fs2 with
        | () -> (
          match Fsd.boot device with
          | fs3, br ->
            if br.Fsd.replayed_records <> 0 then
              add
                (Printf.sprintf
                   "second boot after clean shutdown replayed %d record(s)"
                   br.Fsd.replayed_records);
            if Oracle.volume_digest fs3 <> digest then
              add "clean shutdown + reboot changed the recovered namespace";
            (match Fsd.check fs3 with
            | Ok () -> ()
            | Error m -> add ("structural check failed after clean reboot: " ^ m))
          | exception e ->
            add ("reboot after clean shutdown raised " ^ Printexc.to_string e))
        | exception e ->
          add ("clean shutdown after recovery raised " ^ Printexc.to_string e));
        Some path)
  in
  (path, List.rev !violations)

let sweep ?geom cfg =
  if cfg.clients < 1 then invalid_arg "Faultsweep.sweep: clients < 1";
  if cfg.tears = [] then invalid_arg "Faultsweep.sweep: no tear modes";
  let geom =
    match geom with
    | Some g -> g
    | None -> (
      match cfg.workload with
      | Reference -> Geometry.small_test
      | Wrap _ -> Geometry.tiny_test)
  in
  let base = calibrate ~clients:cfg.clients ~workload:cfg.workload geom in
  let bound =
    match cfg.max_forces with
    | Some k -> min k (Array.length base.writes)
    | None -> Array.length base.writes
  in
  let intervals =
    match cfg.workload with
    | Reference -> List.init bound Fun.id
    | Wrap _ -> List.filter (fun i -> i < bound) base.wrap_intervals
  in
  let points = ref 0 and runs = ref 0 in
  let replay = ref 0 and twin = ref 0 and scav = ref 0 in
  let violations = ref [] in
  List.iter
    (fun force ->
      for write = 0 to base.writes.(force) - 1 do
        incr points;
        List.iter
          (fun tear ->
            incr runs;
            let path, vs = run_point cfg base ~force ~write ~tear in
            (match path with
            | Some Replay -> incr replay
            | Some Twin_repair -> incr twin
            | Some Scavenged -> incr scav
            | None -> ());
            violations := List.rev_append vs !violations)
          cfg.tears
      done)
    intervals;
  {
    sw_clients = cfg.clients;
    sw_workload = workload_name cfg.workload;
    sw_scavenge = cfg.scavenge;
    sw_writes_per_interval = base.writes;
    sw_intervals = intervals;
    sw_points = !points;
    sw_runs = !runs;
    sw_replay = !replay;
    sw_twin_repair = !twin;
    sw_scavenged = !scav;
    sw_violations = List.rev !violations;
  }

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let violation_json v =
  Jsonb.Obj
    [
      ("force", Jsonb.Int v.v_force);
      ("write", Jsonb.Int v.v_write);
      ("tear", Jsonb.Str v.v_tear);
      ("what", Jsonb.Str v.v_what);
    ]

let summary_json s =
  Jsonb.Obj
    [
      ("clients", Jsonb.Int s.sw_clients);
      ("workload", Jsonb.Str s.sw_workload);
      ("scavenge", Jsonb.Bool s.sw_scavenge);
      ( "writes_per_interval",
        Jsonb.Arr
          (Array.to_list (Array.map (fun n -> Jsonb.Int n) s.sw_writes_per_interval))
      );
      ("intervals", Jsonb.Arr (List.map (fun i -> Jsonb.Int i) s.sw_intervals));
      ("points", Jsonb.Int s.sw_points);
      ("runs", Jsonb.Int s.sw_runs);
      ( "recovery_paths",
        Jsonb.Obj
          [
            ("replay", Jsonb.Int s.sw_replay);
            ("twin_repair", Jsonb.Int s.sw_twin_repair);
            ("scavenge", Jsonb.Int s.sw_scavenged);
          ] );
      ("violations", Jsonb.Arr (List.map violation_json s.sw_violations));
    ]

let pp ppf s =
  Format.fprintf ppf "crash sweep: %d client(s), %s workload%s@." s.sw_clients
    s.sw_workload
    (if s.sw_scavenge then " (scavenge mode)" else "");
  Format.fprintf ppf "  force intervals: %d  writes per interval: [%s]@."
    (Array.length s.sw_writes_per_interval)
    (String.concat " "
       (Array.to_list (Array.map string_of_int s.sw_writes_per_interval)));
  Format.fprintf ppf "  intervals swept: [%s]@."
    (String.concat " " (List.map string_of_int s.sw_intervals));
  Format.fprintf ppf "  points swept: %d  crash runs: %d@." s.sw_points s.sw_runs;
  Format.fprintf ppf
    "  recovery paths: log-replay %d, twin-repair %d, scavenge %d@." s.sw_replay
    s.sw_twin_repair s.sw_scavenged;
  match s.sw_violations with
  | [] -> Format.fprintf ppf "  violations: none@."
  | vs ->
    Format.fprintf ppf "  violations: %d@." (List.length vs);
    List.iter
      (fun v ->
        Format.fprintf ppf "    force %d write %d tear %s: %s@." v.v_force
          v.v_write v.v_tear v.v_what)
      vs
