(* Systematic crash-injection sweep for the concurrent server path.

   One recording pass replays the deterministic reference workload
   (Concurrent.crash_reference) on a fresh volume with a Crash_plan
   attached, purely to learn how many sector writes each force interval
   contains. The sweep then re-runs the identical workload once per
   (force interval, sector-write offset, tear mode) coordinate, killing
   the device at exactly that write, and checks the §5.4 contract on the
   rebooted volume:

   - every acknowledged mutation is present with byte-exact content, and
     every unacknowledged one is wholly absent — precisely: each
     client's recovered namespace equals the fold of some prefix of its
     mutating ops no shorter than its acked count (the crash can fall
     between a force and the acks it releases, so committed-but-unacked
     is legal; a lost ack'd op or a partially applied op is not);
   - the rebuilt VAM agrees with the name table: the empty volume's free
     count minus the distinct sectors the recovered entries claim equals
     the recovered free count (Fsd.check separately audits the converse
     direction and leader/entry agreement);
   - the black-box region decodes to exactly the generation of the last
     checkpoint that completed before the crash — a torn checkpoint
     write must fall back to the older slot, never abort the decode.

   With [scavenge] set the harness additionally destroys both copies of
   the entire name table after the crash, forcing recovery through
   Scavenge.run. The scavenger rebuilds from leader pages, which are
   written synchronously at create and survive deletes it cannot prove,
   so the oracle weakens to: boot succeeds, the structural check passes,
   everything present is byte-exact, and every acked create whose name
   the script never deletes is present. *)

open Cedar_util
open Cedar_disk
open Cedar_fsd
open Cedar_workload
module Metrics = Cedar_obs.Metrics
module Trace = Cedar_obs.Trace
module Jsonb = Cedar_obs.Jsonb

type cfg = {
  clients : int;
  tears : Device.tear list;
  max_forces : int option;  (** sweep only intervals [0 .. k-1] *)
  scavenge : bool;  (** destroy both FNT copies before every reboot *)
}

let all_tears =
  [ Device.Tear_none; Device.Tear_zero; Device.Tear_garbage; Device.Tear_damage 1 ]

let default_cfg =
  { clients = 2; tears = all_tears; max_forces = None; scavenge = false }

let tear_name = function
  | Device.Tear_none -> "none"
  | Device.Tear_zero -> "zero"
  | Device.Tear_garbage -> "garbage"
  | Device.Tear_damage n -> Printf.sprintf "damage%d" n

let tear_of_name = function
  | "none" -> Some Device.Tear_none
  | "zero" -> Some Device.Tear_zero
  | "garbage" -> Some Device.Tear_garbage
  | "damage" -> Some (Device.Tear_damage 1)
  | _ -> None

type path = Replay | Twin_repair | Scavenged

type violation = {
  v_force : int;
  v_write : int;
  v_tear : string;
  v_what : string;
}

type summary = {
  sw_clients : int;
  sw_scavenge : bool;
  sw_writes_per_interval : int array;
  sw_points : int;  (** (interval, write) coordinates enumerated *)
  sw_runs : int;  (** crash runs executed (points × tear modes) *)
  sw_replay : int;
  sw_twin_repair : int;
  sw_scavenged : int;
  sw_violations : violation list;
}

(* ------------------------------------------------------------------ *)
(* The per-client model: fold a prefix of the mutating ops.            *)

type mut =
  | Mcreate of { name : string; bytes : int; fill : int }
  | Mdelete of string

let muts_of_script script =
  List.filter_map
    (function
      | Concurrent.Op (Concurrent.Create { name; bytes; fill }) ->
        Some (Mcreate { name; bytes; fill })
      | Concurrent.Op (Concurrent.Delete name) -> Some (Mdelete name)
      | _ -> None)
    script

let mut_names muts =
  List.sort_uniq String.compare
    (List.map (function Mcreate { name; _ } -> name | Mdelete n -> n) muts)

(* Expected name -> Some (bytes, fill) | None after the first [i] muts. *)
let state_after muts i =
  let tbl = Hashtbl.create 13 in
  List.iteri
    (fun j m ->
      if j < i then
        match m with
        | Mcreate { name; bytes; fill } ->
          Hashtbl.replace tbl name (Some (bytes, fill))
        | Mdelete name -> Hashtbl.replace tbl name None)
    muts;
  tbl

let actual_file fs ~name =
  if not (Fsd.exists fs ~name) then Ok None
  else
    match Fsd.read_all fs ~name with
    | b -> Ok (Some b)
    | exception e -> Error (Printexc.to_string e)

(* Does the recovered state equal the fold of the first [i] muts? *)
let matches_prefix fs muts names i =
  let expect = state_after muts i in
  List.for_all
    (fun name ->
      let want = try Hashtbl.find expect name with Not_found -> None in
      match (actual_file fs ~name, want) with
      | Ok None, None -> true
      | Ok (Some b), Some (bytes, fill) ->
        Bytes.equal b (Concurrent.content ~fill bytes)
      | Ok _, _ | Error _, _ -> false)
    names

(* ------------------------------------------------------------------ *)
(* Volume construction and calibration.                                *)

type base = {
  geom : Geometry.t;
  params : Params.t;
  layout : Layout.t;
  scripts : Concurrent.script array;
  muts : mut list array;  (* per client *)
  names : string list array;  (* per client *)
  writes : int array;  (* per force interval, from the recording pass *)
  baseline_free : int;  (* free sectors of the empty volume *)
  first_gen : int64;  (* generation of the first blackbox checkpoint *)
}

let fresh_volume base =
  let clock = Simclock.create () in
  let device = Device.create ~clock base.geom in
  (* Checkpoints (and so the black-box oracle) exist only while tracing. *)
  Trace.enable (Device.trace device);
  Fsd.format device base.params;
  let fs, _ = Fsd.boot device in
  (device, fs)

let checkpoints_done device =
  match Metrics.read (Device.metrics device) "fsd.blackbox_checkpoints" with
  | Some n -> n
  | None -> 0

let server_config plan =
  {
    Server.default_config with
    Server.on_force = Some (fun _ -> Crash_plan.note_force plan);
  }

let calibrate ~clients geom =
  let params = Params.for_geometry geom in
  let scripts = Concurrent.crash_reference ~clients in
  let muts = Array.map muts_of_script scripts in
  let names = Array.map mut_names muts in
  let baseline_free =
    let clock = Simclock.create () in
    let device = Device.create ~clock geom in
    Fsd.format device params;
    let fs, _ = Fsd.boot device in
    Fsd.free_sectors fs
  in
  let pre =
    {
      geom;
      params;
      layout = Layout.compute geom params;
      scripts;
      muts;
      names;
      writes = [||];
      baseline_free;
      first_gen = 1L;
    }
  in
  let device, fs = fresh_volume pre in
  let plan = Crash_plan.attach device in
  let r = Server.serve ~config:(server_config plan) fs scripts in
  Crash_plan.detach plan;
  if r.Server.total_errors > 0 || r.Server.total_rejected > 0
     || r.Server.total_aborted > 0 || r.Server.total_dropped > 0
  then
    invalid_arg
      "Faultsweep.calibrate: the reference workload must replay clean";
  let n = checkpoints_done device in
  let first_gen =
    match Blackbox.read device (Fsd.layout fs) with
    | Ok cp when n > 0 -> Int64.sub cp.Blackbox.state.Blackbox.gen (Int64.of_int (n - 1))
    | Ok _ | Error _ -> 1L
  in
  {
    pre with
    layout = Fsd.layout fs;
    writes = Crash_plan.writes_per_interval plan;
    first_gen;
  }

(* ------------------------------------------------------------------ *)
(* Post-crash checks.                                                  *)

let destroy_fnt device (layout : Layout.t) =
  for k = 0 to layout.Layout.fnt_sectors - 1 do
    Device.damage device (layout.Layout.fnt_a_start + k);
    Device.damage device (layout.Layout.fnt_b_start + k)
  done

(* [n] checkpoints completed before the crash, so the slot holding
   generation [first_gen + n - 1] is intact and a decode must never come
   back older than it (or fail outright). Decoding one generation newer
   is legal: the crash may have interrupted checkpoint [n+1]'s slot
   command after every meaningful byte already landed — the torn tail
   was only padding, so both CRCs pass. *)
let check_blackbox base device add =
  let n = checkpoints_done device in
  let last = Int64.add base.first_gen (Int64.of_int (n - 1)) in
  match Blackbox.read device base.layout with
  | Ok cp ->
    let gen = cp.Blackbox.state.Blackbox.gen in
    let in_flight = Int64.add last 1L in
    if not (Int64.equal gen last || Int64.equal gen in_flight) then
      add
        (Printf.sprintf
           "blackbox gen %Ld after %d completed checkpoints, want %Ld or %Ld"
           gen n last in_flight)
  | Error m ->
    if n > 0 then
      add
        (Printf.sprintf "blackbox undecodable after %d completed checkpoints: %s" n m)

let check_vam base fs add =
  let claimed = Hashtbl.create 256 in
  Fsd.fold_entries fs ~init:() ~f:(fun () ~name:_ ~version:_ e ->
      if e.Cedar_fsbase.Entry.anchor >= 0 then begin
        Hashtbl.replace claimed e.Cedar_fsbase.Entry.anchor ();
        Cedar_fsbase.Run_table.iter_sectors e.Cedar_fsbase.Entry.runs (fun s ->
            Hashtbl.replace claimed s ())
      end);
  let free = Fsd.free_sectors fs in
  let want = base.baseline_free - Hashtbl.length claimed in
  if free <> want then
    add
      (Printf.sprintf "VAM free count %d disagrees with name table (want %d)"
         free want)

(* Strict oracle: each client's recovered namespace is the fold of a
   prefix of its mutating ops at least as long as its acked count. *)
let check_clients base fs acked add =
  Array.iteri
    (fun client muts ->
      let names = base.names.(client) in
      let acked_count =
        List.length (List.filter (fun (c, _) -> c = client) acked)
      in
      let len = List.length muts in
      if acked_count > len then
        add (Printf.sprintf "client %d acked %d of %d muts" client acked_count len)
      else begin
        let rec search i =
          if i > len then false
          else matches_prefix fs muts names i || search (i + 1)
        in
        if not (search acked_count) then
          add
            (Printf.sprintf
               "client %d: no mutation prefix >= %d acked ops explains the \
                recovered state"
               client acked_count)
      end)
    base.muts

(* Weakened oracle for scavenged volumes. The scavenger legitimately
   resurrects unacked creates (leaders are written synchronously, and
   the interrupted write may have been that create's own data — so even
   their content is unconstrained) and acked deletes (their FNT proof
   was destroyed with the table; their sectors may since have been
   reused, costing them to a newer claim). What it must never do is lose
   or corrupt an acked create the script never deletes: that file's data
   was fully on disk before the ack and nothing ever freed it. *)
let check_clients_scavenged base fs acked add =
  Array.iteri
    (fun client muts ->
      let deleted =
        List.filter_map (function Mdelete n -> Some n | _ -> None) muts
      in
      let acked_creates =
        List.filter_map
          (fun (c, op) ->
            match op with
            | Concurrent.Create { name; _ } when c = client -> Some name
            | _ -> None)
          acked
      in
      List.iter
        (fun m ->
          match m with
          | Mcreate { name; bytes; fill }
            when List.mem name acked_creates && not (List.mem name deleted)
            -> (
            match actual_file fs ~name with
            | Ok None -> add (Printf.sprintf "scavenge lost acked create %s" name)
            | Ok (Some b) ->
              if not (Bytes.equal b (Concurrent.content ~fill bytes)) then
                add (Printf.sprintf "scavenged content of %s is wrong" name)
            | Error m -> add (Printf.sprintf "%s unreadable: %s" name m))
          | Mcreate _ | Mdelete _ -> ())
        muts)
    base.muts

(* Every recovered name must come from the reference scripts. *)
let check_no_aliens base fs add =
  let known = Hashtbl.create 64 in
  Array.iter
    (fun names -> List.iter (fun n -> Hashtbl.replace known n ()) names)
    base.names;
  Fsd.fold_entries fs ~init:() ~f:(fun () ~name ~version:_ _ ->
      if not (Hashtbl.mem known name) then
        add (Printf.sprintf "recovered a name no script created: %s" name))

(* ------------------------------------------------------------------ *)
(* The sweep.                                                          *)

let run_point cfg base ~force ~write ~tear =
  let device, fs = fresh_volume base in
  let plan = Crash_plan.attach device in
  Crash_plan.arm plan ~force ~write ~tear;
  let server = Server.create ~config:(server_config plan) fs base.scripts in
  let violations = ref [] in
  let add what =
    violations :=
      { v_force = force; v_write = write; v_tear = tear_name tear; v_what = what }
      :: !violations
  in
  let path =
    match Server.run_to_crash server with
    | Server.Completed _ ->
      add "armed crash never fired";
      None
    | Server.Crashed _ ->
      Crash_plan.detach plan;
      Device.cancel_write_crash device;
      let acked = Server.acked server in
      check_blackbox base device add;
      if cfg.scavenge then destroy_fnt device base.layout;
      let booted =
        match Fsd.try_boot device with
        | `Ok (fs2, _) ->
          if not cfg.scavenge && Fsd.fnt_repairs fs2 > 0 then
            Some (fs2, Twin_repair)
          else Some (fs2, Replay)
        | `Needs_scavenge reason ->
          if not cfg.scavenge then
            add ("log replay insufficient, wanted scavenge: " ^ reason);
          ignore (Scavenge.run device : Scavenge.report);
          (match Fsd.boot device with
          | fs2, _ -> Some (fs2, Scavenged)
          | exception e ->
            add ("boot after scavenge raised " ^ Printexc.to_string e);
            None)
        | exception e ->
          add ("reboot raised " ^ Printexc.to_string e);
          None
      in
      (match booted with
      | None -> None
      | Some (fs2, path) ->
        (match Fsd.check fs2 with
        | Ok () -> ()
        | Error m -> add ("structural check failed: " ^ m));
        check_no_aliens base fs2 add;
        if cfg.scavenge || path = Scavenged then
          check_clients_scavenged base fs2 acked add
        else begin
          check_clients base fs2 acked add;
          check_vam base fs2 add
        end;
        Some path)
  in
  (path, List.rev !violations)

let sweep ?(geom = Geometry.small_test) cfg =
  if cfg.clients < 1 then invalid_arg "Faultsweep.sweep: clients < 1";
  if cfg.tears = [] then invalid_arg "Faultsweep.sweep: no tear modes";
  let base = calibrate ~clients:cfg.clients geom in
  let intervals =
    match cfg.max_forces with
    | Some k -> min k (Array.length base.writes)
    | None -> Array.length base.writes
  in
  let points = ref 0 and runs = ref 0 in
  let replay = ref 0 and twin = ref 0 and scav = ref 0 in
  let violations = ref [] in
  for force = 0 to intervals - 1 do
    for write = 0 to base.writes.(force) - 1 do
      incr points;
      List.iter
        (fun tear ->
          incr runs;
          let path, vs = run_point cfg base ~force ~write ~tear in
          (match path with
          | Some Replay -> incr replay
          | Some Twin_repair -> incr twin
          | Some Scavenged -> incr scav
          | None -> ());
          violations := List.rev_append vs !violations)
        cfg.tears
    done
  done;
  {
    sw_clients = cfg.clients;
    sw_scavenge = cfg.scavenge;
    sw_writes_per_interval = base.writes;
    sw_points = !points;
    sw_runs = !runs;
    sw_replay = !replay;
    sw_twin_repair = !twin;
    sw_scavenged = !scav;
    sw_violations = List.rev !violations;
  }

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let violation_json v =
  Jsonb.Obj
    [
      ("force", Jsonb.Int v.v_force);
      ("write", Jsonb.Int v.v_write);
      ("tear", Jsonb.Str v.v_tear);
      ("what", Jsonb.Str v.v_what);
    ]

let summary_json s =
  Jsonb.Obj
    [
      ("clients", Jsonb.Int s.sw_clients);
      ("scavenge", Jsonb.Bool s.sw_scavenge);
      ( "writes_per_interval",
        Jsonb.Arr
          (Array.to_list (Array.map (fun n -> Jsonb.Int n) s.sw_writes_per_interval))
      );
      ("points", Jsonb.Int s.sw_points);
      ("runs", Jsonb.Int s.sw_runs);
      ( "recovery_paths",
        Jsonb.Obj
          [
            ("replay", Jsonb.Int s.sw_replay);
            ("twin_repair", Jsonb.Int s.sw_twin_repair);
            ("scavenge", Jsonb.Int s.sw_scavenged);
          ] );
      ("violations", Jsonb.Arr (List.map violation_json s.sw_violations));
    ]

let pp ppf s =
  Format.fprintf ppf "crash sweep: %d client(s)%s@." s.sw_clients
    (if s.sw_scavenge then " (scavenge mode)" else "");
  Format.fprintf ppf "  force intervals: %d  writes per interval: [%s]@."
    (Array.length s.sw_writes_per_interval)
    (String.concat " "
       (Array.to_list (Array.map string_of_int s.sw_writes_per_interval)));
  Format.fprintf ppf "  points swept: %d  crash runs: %d@." s.sw_points s.sw_runs;
  Format.fprintf ppf
    "  recovery paths: log-replay %d, twin-repair %d, scavenge %d@." s.sw_replay
    s.sw_twin_repair s.sw_scavenged;
  match s.sw_violations with
  | [] -> Format.fprintf ppf "  violations: none@."
  | vs ->
    Format.fprintf ppf "  violations: %d@." (List.length vs);
    List.iter
      (fun v ->
        Format.fprintf ppf "    force %d write %d tear %s: %s@." v.v_force
          v.v_write v.v_tear v.v_what)
      vs
