(* Log-wrap endurance: drive the churn workload through the concurrent
   server until the log has wrapped several times, then prove the
   volume still tells the truth.

   The run is self-verifying in three stages:

   1. the serve itself must be clean — no client errors, no admission
      drops, no aborted sessions — or the oracle is ambiguous;
   2. the live volume must match the version-aware oracle fold of every
      client's full mutation list (content, existence and version depth
      for every touched name);
   3. a clean shutdown followed by a reboot must replay zero records,
      reproduce the namespace digest byte-for-byte, and still match the
      oracle — home-written state and the log must agree about every
      page after any number of wraps.

   Everything is deterministic (the only clock is simulated, the only
   randomness the churn spec's seed), so [report_json] is byte-identical
   across same-spec runs — which is itself one of the endurance
   guarantees the wrap test suite pins. *)

open Cedar_util
open Cedar_disk
open Cedar_fsd
open Cedar_workload
module Metrics = Cedar_obs.Metrics
module Trace = Cedar_obs.Trace
module Jsonb = Cedar_obs.Jsonb

type cfg = { clients : int; spec : Concurrent.churn_spec }

let default_cfg = { clients = 2; spec = Concurrent.default_churn }

type result = {
  e_report : Server.report;
  e_third_entries : int;  (** thirds entered — /3 for full log wraps *)
  e_log_records : int;
  e_home_write_bursts : int;
  e_reclaim_stalls : int;
  e_fnt_home_writes : int;
  e_violations : string list;  (** live-volume oracle mismatches *)
  e_replayed_after_shutdown : int;  (** must be 0 *)
  e_digest_match : bool;  (** reboot reproduced the namespace *)
  e_violations_after_reboot : string list;
}

let clean r =
  r.e_violations = [] && r.e_violations_after_reboot = []
  && r.e_replayed_after_shutdown = 0 && r.e_digest_match

let metric fs name =
  Option.value (Metrics.read (Fsd.metrics fs) name) ~default:0

let run ?(geom = Geometry.small_test) cfg =
  if cfg.clients < 1 then invalid_arg "Endurance.run: clients < 1";
  let params = Params.for_geometry geom in
  if cfg.spec.Concurrent.churn_keep <> params.Params.default_keep then
    invalid_arg "Endurance.run: churn_keep must match the volume's default_keep";
  let keep = params.Params.default_keep in
  let scripts = Concurrent.churn_scripts cfg.spec ~clients:cfg.clients in
  let muts = Array.map Oracle.muts_of_script scripts in
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  Fsd.format device params;
  let fs, _ = Fsd.boot device in
  let report = Server.serve fs scripts in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  if report.Server.total_errors > 0 then
    add (Printf.sprintf "%d client error(s)" report.Server.total_errors);
  if report.Server.total_dropped > 0 then
    add (Printf.sprintf "%d dropped step(s)" report.Server.total_dropped);
  if report.Server.total_aborted > 0 then
    add (Printf.sprintf "%d aborted session(s)" report.Server.total_aborted);
  let check_oracle fs =
    List.concat
      (Array.to_list
         (Array.map
            (fun muts ->
              let names = Oracle.mut_names muts in
              let state = Oracle.state_after ~keep muts (List.length muts) in
              Oracle.diff fs state names)
            muts))
  in
  List.iter add (check_oracle fs);
  (match Fsd.check fs with
  | Ok () -> ()
  | Error m -> add ("structural check failed: " ^ m));
  let stats = Fsd.log_stats fs in
  let third_entries = stats.Log.third_entries in
  let log_records = stats.Log.records in
  let bursts = metric fs "fsd.home_write_bursts" in
  let stalls = metric fs "fsd.reclaim_stalls" in
  let fnt_homes = Fsd.fnt_home_writes fs in
  let digest = Oracle.volume_digest fs in
  Fsd.shutdown fs;
  let fs2, br = Fsd.boot device in
  let digest_match = Oracle.volume_digest fs2 = digest in
  let after = check_oracle fs2 in
  let after =
    match Fsd.check fs2 with
    | Ok () -> after
    | Error m -> ("structural check failed after reboot: " ^ m) :: after
  in
  Fsd.shutdown fs2;
  {
    e_report = report;
    e_third_entries = third_entries;
    e_log_records = log_records;
    e_home_write_bursts = bursts;
    e_reclaim_stalls = stalls;
    e_fnt_home_writes = fnt_homes;
    e_violations = List.rev !violations;
    e_replayed_after_shutdown = br.Fsd.replayed_records;
    e_digest_match = digest_match;
    e_violations_after_reboot = after;
  }

let report_json r =
  Jsonb.Obj
    [
      ("server", Server.report_json r.e_report);
      ("third_entries", Jsonb.Int r.e_third_entries);
      ("log_records", Jsonb.Int r.e_log_records);
      ("home_write_bursts", Jsonb.Int r.e_home_write_bursts);
      ("reclaim_stalls", Jsonb.Int r.e_reclaim_stalls);
      ("fnt_home_writes", Jsonb.Int r.e_fnt_home_writes);
      ("violations", Jsonb.Arr (List.map (fun v -> Jsonb.Str v) r.e_violations));
      ("replayed_after_shutdown", Jsonb.Int r.e_replayed_after_shutdown);
      ("digest_match", Jsonb.Bool r.e_digest_match);
      ( "violations_after_reboot",
        Jsonb.Arr (List.map (fun v -> Jsonb.Str v) r.e_violations_after_reboot) );
      ("clean", Jsonb.Bool (clean r));
    ]

let pp ppf r =
  Format.fprintf ppf "churn endurance: %d client(s), %d ops acked@."
    r.e_report.Server.clients r.e_report.Server.mutations_acked;
  Format.fprintf ppf
    "  log: %d records, %d third entries (%.1f full wraps)@." r.e_log_records
    r.e_third_entries
    (float_of_int r.e_third_entries /. 3.0);
  Format.fprintf ppf
    "  home writes: %d pages (%d background bursts, %d reclaim stalls)@."
    r.e_fnt_home_writes r.e_home_write_bursts r.e_reclaim_stalls;
  Format.fprintf ppf "  reboot: replayed %d record(s), namespace %s@."
    r.e_replayed_after_shutdown
    (if r.e_digest_match then "identical" else "CHANGED");
  match r.e_violations @ r.e_violations_after_reboot with
  | [] -> Format.fprintf ppf "  violations: none@."
  | vs ->
    Format.fprintf ppf "  violations: %d@." (List.length vs);
    List.iter (fun v -> Format.fprintf ppf "    %s@." v) vs
