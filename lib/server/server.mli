(** Concurrent multi-client file server with per-volume group commit.

    A deterministic cooperative scheduler over the virtual clock: N
    client sessions each replay a {!Cedar_workload.Concurrent.script}
    against a {!Cedar_volumes.Volume_set.t}. Operations run to
    completion on the volume that owns the file name (a stable
    name-prefix hash, {!Cedar_volumes.Shard_map}); a session that
    performed a metadata mutation parks on the owning volume's batcher
    and is acknowledged only when a log force on that volume covers its
    transaction — the paper's §5.4 commit protocol ("the process doing
    the commit waits") generalised to N clients over V independent
    logs. Acked ⇒ durable is a per-volume contract: each volume's log
    alone covers the mutations it acknowledged.

    Each volume's batcher forces on three triggers: its half-second
    commit interval, [max_batch] sessions parked on it, or an explicit
    client [Force] (which flushes every live volume). Admission control
    rejects — never blocks — on two distinct triggers judged against
    the op's target volume: {!Queue_full} when [queue_cap] sessions are
    already parked there (unconditional, so each parked queue stays
    bounded at any log fill), and {!Backpressure} when that volume's
    current log third is past [backpressure_fill]. A rejected step
    stays at the head of its script and is retried after the volume's
    next commit opportunity, up to [admission_retries] times; only then
    is it dropped, and the drop is counted in the report.

    The single-volume server ({!create}, over
    {!Cedar_volumes.Volume_set.of_fsd}) is the degenerate case and is
    byte-identical to the historical one-FSD scheduler.

    Determinism contract: given the same volume images, scripts and
    configuration, two runs produce byte-identical {!report_json} output
    (sessions are stepped round-robin by index, volumes in index order;
    the only clock is the simulated one; scripts carry their own
    seeds). *)

type error =
  | Queue_full of { depth : int; cap : int }
      (** [depth] sessions were parked against a cap of [cap] — the
          unconditional admission depth cap *)
  | Backpressure of { depth : int; fill : float; threshold : float }
      (** the current log third is [fill] consumed, past the configured
          [threshold] *)
(** Why admission rejected a mutating operation. *)

val pp_error : Format.formatter -> error -> unit

type config = {
  max_batch : int;  (** parked sessions that trigger an early force *)
  queue_cap : int;  (** unconditional admission depth cap *)
  backpressure_fill : float;
      (** {!Cedar_fsd.Fsd.log_third_fill} fraction at which mutating
          admissions are rejected with {!Backpressure}; 0.0 rejects
          every mutation, 1.0 disables the trigger *)
  admission_retries : int;
      (** rejected steps are retried this many times (after the next
          commit opportunity each time) before being dropped *)
  on_force : (int -> unit) option;
      (** called with the force ordinal (1-based) just before each
          server-initiated force — the crash-injection hook *)
  on_ack : (client:int -> op:Cedar_workload.Concurrent.op -> unit) option;
      (** called when a mutating operation's transaction becomes
          durable and its session is released *)
  on_reject : (client:int -> error -> unit) option;
}

val default_config : config
(** [max_batch = 64], [queue_cap = 256], [backpressure_fill = 1.0]
    (fill trigger off), [admission_retries = 8], no hooks. *)

type t

type session_report = {
  r_client : int;
  r_ops : int;  (** operations executed (rejected ones excluded) *)
  r_mutations : int;  (** mutating operations acknowledged durable *)
  r_rejected : int;  (** admission rejects, including retried ones *)
  r_dropped : int;  (** steps abandoned after [admission_retries] rejects *)
  r_errors : int;  (** operations that raised [Fs_error] *)
  r_aborted : string option;
      (** set when a non-[Fs_error] exception terminated the session *)
  r_wait_total_us : int;
  r_wait_max_us : int;
}

type volume_report = {
  vr_volume : int;
  vr_server_forces : int;  (** forces the scheduler initiated on it *)
  vr_log_forces : int;  (** all its log forces, including backstops *)
  vr_acked : int;  (** mutations acknowledged durable by this volume *)
  vr_crashed : bool;  (** quarantined by a planted crash (multi-volume) *)
}
(** Per-volume slice of a run — one entry per volume, index order. *)

type report = {
  clients : int;
  duration_us : int;
  total_ops : int;
  mutations_acked : int;
  server_forces : int;  (** forces the scheduler initiated *)
  log_forces : int;  (** all log forces, including mid-op backstops *)
  ops_per_force : float;  (** mutations acked per log force *)
  total_rejected : int;
  reject_queue_full : int;  (** [server.rejects.queue_full] counter *)
  reject_backpressure : int;  (** [server.rejects.backpressure] counter *)
  total_retries : int;  (** [server.retries] counter *)
  total_dropped : int;
  total_errors : int;
  total_aborted : int;  (** sessions terminated by a non-[Fs_error] *)
  wait_n : int;
  wait_mean_us : float;
  wait_p50_us : float;
  wait_p99_us : float;
  wait_max_us : float;
  batch_n : int;  (** durable advances that released ≥1 session *)
  batch_mean : float;  (** sessions released per advance *)
  batch_max : float;
  per_session : session_report list;
  per_volume : volume_report list;
}

val create :
  ?config:config -> Cedar_fsd.Fsd.t -> Cedar_workload.Concurrent.script array -> t
(** Single-volume server: [create_volumes] over
    {!Cedar_volumes.Volume_set.of_fsd} — the degenerate, historically
    byte-identical case. Session [i] runs [scripts.(i)] as client [i].
    Registers the [server.queue_depth] gauge, the
    [server.commit_wait_us] / [server.batch_size] distributions, and
    the admission counters [server.rejects.queue_full],
    [server.rejects.backpressure], [server.retries] and
    [server.dropped] in the volume's metrics registry (so
    [cedar serve --json] and [cedar stats] expose them). Raises
    [Invalid_argument] on an empty script array or a non-positive
    [max_batch]/[queue_cap]. *)

val create_volumes :
  ?config:config ->
  Cedar_volumes.Volume_set.t ->
  Cedar_workload.Concurrent.script array ->
  t
(** Multi-volume server. Every instrument above is registered once per
    volume in that volume's own registry view ([volN.server.*] names in
    the root for a multi-volume set, the unprefixed historical names
    for a single-volume one), so each volume's monitor derives its own
    sat.* gauges and coexisting volumes never clobber each other's
    counters. *)

val run : t -> report
(** Drive every session to completion and drain the final batches. A
    device crash planted by [on_force] on a single-volume server
    propagates as [Cedar_disk.Device.Crash_during_write] — by then
    every acknowledged transaction is on disk and no unacknowledged one
    is. On a multi-volume server the same crash quarantines only that
    volume: its parked sessions abort, sessions later routed to it
    abort, every other volume keeps serving to completion, and the
    report marks the volume [vr_crashed]. *)

val serve :
  ?config:config ->
  Cedar_fsd.Fsd.t ->
  Cedar_workload.Concurrent.script array ->
  report
(** [create] + [run]. *)

val serve_volumes :
  ?config:config ->
  Cedar_volumes.Volume_set.t ->
  Cedar_workload.Concurrent.script array ->
  report
(** [create_volumes] + [run]. *)

val acked : t -> (int * Cedar_workload.Concurrent.op) list
(** The ack journal: every [(client, op)] acknowledged durable so far,
    in acknowledgement order. This is the crash sweep's ground truth —
    after a planted crash, everything in this list must be recoverable
    and correct (on a multi-volume server: everything in this list
    routed to the crashed volume). *)

val crashed_volumes : t -> int list
(** Volumes quarantined by a planted crash so far, ascending — empty
    for a healthy run, and always empty on a single-volume server
    (where the crash propagates instead). *)

type outcome =
  | Completed of report
  | Crashed of { sector : int }  (** the planted device fault fired *)

val run_to_crash : t -> outcome
(** {!run}, but a [Cedar_disk.Device.Crash_during_write] is caught and
    returned as [Crashed] — the restartable entry point for the crash
    sweep. The server object must be discarded after a crash; inspect
    {!acked} and reboot the volume. *)

val report_json : report -> Cedar_obs.Jsonb.t
(** Deterministic rendering (fixed field order, sessions in client
    order) — byte-identical across same-seed runs. The ["volumes"]
    array appears only for a multi-volume report, so the single-volume
    JSON keeps its historical byte-exact shape. *)
