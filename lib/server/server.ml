(* Concurrent multi-client file server over a set of volumes: a
   deterministic cooperative scheduler on the shared virtual clock, with
   one real group-commit batcher per volume.

   Each client session replays a [Concurrent.script]. Operations run to
   completion (cooperative, never preempted mid-op) on the volume that
   owns the file name ([Volume_set.route], a stable name-prefix hash); a
   session that performed a metadata mutation then *parks* on the owning
   volume's batcher and is only acknowledged once a log force on that
   volume covers its transaction — §5.4's "the process doing the commit
   waits", generalised to N clients over V independent logs. Each
   volume's batcher forces on three triggers:

   - time: that volume's half-second commit demon
     ([Params.commit_interval_us]);
   - size: [max_batch] sessions parked on that volume;
   - explicit: a client [Force] step (which forces every live volume).

   Admission control rejects — never blocks — with two distinct typed
   triggers, both judged against the op's target volume: [Queue_full]
   when [queue_cap] sessions are already parked there (unconditional,
   so each parked queue is bounded at any log fill), and [Backpressure]
   when that volume's current log third is past [backpressure_fill]. A
   rejected step is re-parked and retried after the volume's next
   commit opportunity, up to [admission_retries] times; only then is it
   dropped, and the drop is counted in the report rather than silently
   lost.

   The single-volume server is the degenerate case and is byte-identical
   to the historical one-FSD scheduler: with V = 1 every per-volume loop
   below visits exactly one volume in the same order the old code did.

   Crash containment: with one volume a planted device crash
   ([Device.Crash_during_write]) propagates to the harness as before —
   the machine halted. With several volumes it quarantines just the
   crashed volume: its parked sessions abort (their unacked mutations
   are the §5.4 "may be lost" set), later ops routed to it abort their
   sessions, and every other volume keeps serving — recovery is per
   volume, which is the point of giving each volume its own log.

   Determinism: sessions are stepped round-robin by index, volumes are
   visited in index order, the only clock is [Simclock], and the only
   randomness is the script generator's seeded [Rng] — two runs from
   the same seed produce byte-identical reports. *)

open Cedar_util
open Cedar_obs
open Cedar_fsd
open Cedar_volumes
open Cedar_workload

type error =
  | Queue_full of { depth : int; cap : int }
  | Backpressure of { depth : int; fill : float; threshold : float }

let pp_error ppf = function
  | Queue_full { depth; cap } ->
    Format.fprintf ppf "queue-full depth=%d cap=%d" depth cap
  | Backpressure { depth; fill; threshold } ->
    Format.fprintf ppf "backpressure depth=%d fill=%.2f threshold=%.2f" depth
      fill threshold

type config = {
  max_batch : int;
  queue_cap : int;
  backpressure_fill : float;
  admission_retries : int;
  on_force : (int -> unit) option;
  on_ack : (client:int -> op:Concurrent.op -> unit) option;
  on_reject : (client:int -> error -> unit) option;
}

let default_config =
  {
    max_batch = 64;
    queue_cap = 256;
    backpressure_fill = 1.0;
    admission_retries = 8;
    on_force = None;
    on_ack = None;
    on_reject = None;
  }

type state =
  | Ready
  | Thinking of { until : int }
  | Parked of { vol : int; token : Fsd.token; since : int; op : Concurrent.op }
  | Iowait of { vol : int; first : int; last : int }
      (* The op finished executing but its device requests [first..last]
         sit in volume [vol]'s request queue; the session is
         acknowledged at their (policy-ordered) service completion. The
         scheduler resolves these lazily — once no session is runnable —
         so requests from many sessions accumulate in the queue first,
         which is exactly the window a reordering policy exploits. *)
  | Done

type session = {
  client : int;
  label : string;  (* "sessionNN", precomputed: the op-span label *)
  mutable steps : Concurrent.step list;
  mutable state : state;
  mutable ops : int;
  mutable mutations : int;
  mutable rejected : int;
  mutable retries : int;  (* consecutive rejects of the step at head *)
  mutable dropped : int;
  mutable errors : int;
  mutable aborted : string option;  (* non-Fs_error exception text *)
  mutable wait_total_us : int;
  mutable wait_max_us : int;
  (* Latency-anatomy bookkeeping (plain ints: maintained even with
     tracing off, so the per-phase monitor gauges always read). *)
  mutable opseq : int;  (* lifecycle number of the op at script head *)
  mutable arrival_us : int;  (* when that op became runnable *)
  mutable t_submitted : int;  (* first admission attempt of current op *)
  mutable t_exec_end : int;  (* Fsd.submit returned; park window starts *)
}

(* Per-volume scheduler state. Every instrument is registered in the
   volume's own registry view ([Fsd.metrics], "volN."-scoped when the
   set has several volumes, the historical unprefixed names when it has
   one) so that each volume's monitor demon derives its own sat.*
   gauges and two coexisting volumes can never clobber each other. *)
type vol = {
  v_id : int;
  v_fsd : Fsd.t;
  v_dev : Cedar_disk.Device.t;
  (* Deferred-timing device (multi-volume): commands queue on the
     device's own timeline, and the scheduler parks each session until
     its command's completion instant — that is where inter-volume
     parallelism comes from. False for the single-volume degenerate
     case, whose devices stay synchronous (byte-identical history). *)
  v_par : bool;
  (* Request queue live on the device ([Params.disk_qdepth] ≥ 2): ops
     with outstanding requests go to [Iowait] instead of parking on the
     busy horizon, and forces/acks measure through [busy_until]'s drain
     barrier. *)
  v_queue : bool;
  mutable v_dead : bool;  (* quarantined after a planted crash (V > 1) *)
  mutable v_crash_sector : int;  (* valid when v_dead *)
  mutable v_last_durable : int;
  mutable v_forces : int;  (* server-initiated forces on this volume *)
  mutable v_forces0 : int;  (* log forces at run start *)
  mutable v_last_force_us : int;  (* duration of its last server force *)
  mutable v_acked : int;
  v_commit_wait_us : Stats.t;
  v_batch_size : Stats.t;
  (* Per-op end-to-end latency (arrival to ack), every op kind. *)
  v_op_latency_us : Stats.t;
  c_reject_queue_full : Metrics.counter;
  c_reject_backpressure : Metrics.counter;
  c_retries : Metrics.counter;
  c_dropped : Metrics.counter;
  c_acked : Metrics.counter;
  (* Cumulative per-phase microseconds across all ops: the online (no
     trace needed) side of the latency anatomy, read by the monitor's
     sat.phase_* rate gauges. The trace-based Critpath fold is the
     per-op precise version of the same decomposition. *)
  c_phase_queue_us : Metrics.counter;
  c_phase_admission_us : Metrics.counter;
  c_phase_execute_us : Metrics.counter;
  c_phase_append_us : Metrics.counter;
  c_phase_parked_us : Metrics.counter;
}

type t = {
  vset : Volume_set.t;
  vols : vol array;
  clock : Simclock.t;
  trace : Trace.t;  (* shared by every volume *)
  cfg : config;
  sessions : session array;
  mutable cursor : int;  (* round-robin scan start *)
  mutable forces : int;  (* server-initiated (time/size/explicit), all vols *)
  mutable acked_rev : (int * Concurrent.op) list;  (* ack journal, newest first *)
}

type session_report = {
  r_client : int;
  r_ops : int;
  r_mutations : int;
  r_rejected : int;
  r_dropped : int;
  r_errors : int;
  r_aborted : string option;
  r_wait_total_us : int;
  r_wait_max_us : int;
}

type volume_report = {
  vr_volume : int;
  vr_server_forces : int;
  vr_log_forces : int;
  vr_acked : int;
  vr_crashed : bool;
}

type report = {
  clients : int;
  duration_us : int;
  total_ops : int;
  mutations_acked : int;
  server_forces : int;
  log_forces : int;
  ops_per_force : float;
  total_rejected : int;
  reject_queue_full : int;
  reject_backpressure : int;
  total_retries : int;
  total_dropped : int;
  total_errors : int;
  total_aborted : int;
  wait_n : int;
  wait_mean_us : float;
  wait_p50_us : float;
  wait_p99_us : float;
  wait_max_us : float;
  batch_n : int;
  batch_mean : float;
  batch_max : float;
  per_session : session_report list;
  per_volume : volume_report list;
}

let now t = Simclock.now t.clock
let single t = Array.length t.vols = 1

let parked_on t vid =
  Array.fold_left
    (fun n s -> match s.state with Parked { vol; _ } when vol = vid -> n + 1 | _ -> n)
    0 t.sessions

(* Which volume an operation belongs to. [Force] fans out to every
   volume; its accounting (spans, error counts) is charged to volume 0,
   which is the only volume when the distinction could matter for
   compatibility. *)
let target_vid t (op : Concurrent.op) =
  if single t then 0
  else
    match op with
    | Create { name; _ } | Open name | Read name | Delete name -> Volume_set.route t.vset name
    | Read_page { name; _ } -> Volume_set.route t.vset name
    | List prefix -> Volume_set.route t.vset prefix
    | Force -> 0

(* ------------------------------------------------------------------ *)
(* Crash quarantine. *)

(* A planted crash on volume [v] of a multi-volume set halts that volume
   only. Sessions parked on it will never be acked — their mutations are
   exactly the unacknowledged set §5.4 allows to be lost — so they abort
   now; sessions later routed to it abort at admission. The [Fsd.t] must
   not be touched again until the harness reboots the device. *)
let quarantine t v ~sector =
  v.v_dead <- true;
  v.v_crash_sector <- sector;
  let reason = Printf.sprintf "volume %d crashed" v.v_id in
  Array.iter
    (fun s ->
      match s.state with
      | (Parked { vol; _ } | Iowait { vol; _ }) when vol = v.v_id ->
        s.aborted <- Some reason;
        s.steps <- [];
        s.state <- Done
      | _ -> ())
    t.sessions

(* Run [f] against volume [v]: with a single volume a planted crash is
   the machine halting and propagates (the historical contract the
   fault sweep drives); with several it quarantines just [v]. *)
let guarded t v f =
  if single t then f ()
  else
    try f ()
    with Cedar_disk.Device.Crash_during_write { sector } ->
      quarantine t v ~sector

(* ------------------------------------------------------------------ *)
(* The batcher. *)

let force_vol t v =
  t.forces <- t.forces + 1;
  v.v_forces <- v.v_forces + 1;
  (match t.cfg.on_force with Some f -> f t.forces | None -> ());
  let t0 = now t in
  let par = v.v_par || v.v_queue in
  let b0 = if par then Cedar_disk.Device.busy_until v.v_dev else t0 in
  guarded t v (fun () -> Fsd.force v.v_fsd);
  v.v_last_force_us <-
    (* Deferred/queued device: the force's writes queued on the device
       timeline instead of advancing the clock, so its duration is the
       horizon delta (busy_until drains any queued requests first — a
       force is a synchronization barrier); synchronous: the clock
       moved, as it always did. *)
    (if par then Cedar_disk.Device.busy_until v.v_dev - b0 else now t - t0)

(* An explicit client [Force]: flush every live volume, index order. *)
let force_all t =
  Array.iter (fun v -> if not v.v_dead then force_vol t v) t.vols

(* Wake every parked session the last force on each volume covered. One
   durable advance on one volume = one batch; its size is the number of
   sessions released together, the quantity Hagmann's group commit
   amortises that volume's force over. *)
let poll_wakes t =
  Array.iter
    (fun v ->
      if not v.v_dead then begin
        let d = Fsd.durable_seq v.v_fsd in
        if d > v.v_last_durable then begin
          v.v_last_durable <- d;
          let woken = ref 0 in
          Array.iter
            (fun s ->
              match s.state with
              | Parked { vol; token; since; op }
                when vol = v.v_id && Fsd.token_durable v.v_fsd token ->
                let at = now t in
                (* Deferred device: the covering force's writes complete
                   at the device's busy horizon, not "now" — the ack is
                   stamped there and the session keeps waiting (as a
                   Thinking park) until the clock catches up. *)
                let done_at =
                  if v.v_par || v.v_queue then
                    max at (Cedar_disk.Device.busy_until v.v_dev)
                  else at
                in
                let wait = done_at - since in
                incr woken;
                Stats.add v.v_commit_wait_us (float_of_int wait);
                s.wait_total_us <- s.wait_total_us + wait;
                if wait > s.wait_max_us then s.wait_max_us <- wait;
                s.mutations <- s.mutations + 1;
                v.v_acked <- v.v_acked + 1;
                Metrics.inc v.c_acked;
                (* Phase split of the park window: the tail that overlaps
                   the covering force's own device writes is "append" (the
                   op's share of log I/O latency); the head is pure
                   parked-for-force wait. Online approximation: that
                   volume's last server-force duration; Critpath computes
                   the exact overlap from force spans in the trace. *)
                let append =
                  if wait < v.v_last_force_us then wait else v.v_last_force_us
                in
                Metrics.add v.c_phase_append_us append;
                Metrics.add v.c_phase_parked_us (wait - append);
                if Trace.enabled t.trace then begin
                  Trace.emit t.trace ~at:done_at
                    (Trace.Session_wait { client = s.client; us = wait });
                  Trace.emit t.trace ~at:done_at
                    (Trace.Op_acked { client = s.client; opseq = s.opseq })
                end;
                Stats.add v.v_op_latency_us (float_of_int (done_at - s.arrival_us));
                s.arrival_us <- done_at;
                t.acked_rev <- (s.client, op) :: t.acked_rev;
                (match t.cfg.on_ack with
                | Some f -> f ~client:s.client ~op
                | None -> ());
                s.state <-
                  (if done_at > at then Thinking { until = done_at } else Ready)
              | _ -> ())
            t.sessions;
          if !woken > 0 then Stats.add v.v_batch_size (float_of_int !woken)
        end
      end)
    t.vols

(* Run at every point where the scheduler regains control: fire each
   volume's commit demon if its interval elapsed inside the last op, let
   the other demons (scrub, home-writer, monitor) run on every volume,
   then release whoever the forces covered. *)
let schedule_point t =
  Array.iter
    (fun v ->
      if (not v.v_dead) && now t >= Fsd.commit_due_at v.v_fsd then force_vol t v)
    t.vols;
  Array.iter
    (fun v -> if not v.v_dead then guarded t v (fun () -> Demons.run_due v.v_fsd))
    t.vols;
  poll_wakes t;
  Array.iter
    (fun v ->
      if (not v.v_dead) && parked_on t v.v_id >= t.cfg.max_batch then begin
        force_vol t v;
        poll_wakes t
      end)
    t.vols

(* ------------------------------------------------------------------ *)
(* Session stepping. *)

let exec_op t v (op : Concurrent.op) =
  let fsd = v.v_fsd in
  match op with
  | Create { name; bytes; fill } ->
    ignore
      (Fsd.create fsd ~name (Concurrent.content ~fill bytes)
        : Cedar_fsbase.Fs_ops.info)
  | Open name -> ignore (Fsd.open_stat fsd ~name : Cedar_fsbase.Fs_ops.info)
  | Read name -> ignore (Fsd.read_all fsd ~name : bytes)
  | Read_page { name; page } -> ignore (Fsd.read_page fsd ~name ~page : bytes)
  | Delete name -> Fsd.delete fsd ~name
  | List prefix -> ignore (Fsd.list fsd ~prefix : Cedar_fsbase.Fs_ops.info list)
  | Force -> force_all t

(* The depth cap must hold unconditionally: each volume's parked queue
   is a bounded resource, and tying it to log fill (as an earlier
   revision did) let it grow without limit whenever the log third
   happened to be fresh. Backpressure from the target volume's log fill
   is a second, independent trigger with its own typed error. *)
let admission_reject t v (s : session) (op : Concurrent.op) =
  if not (Concurrent.mutates op) then None
  else begin
    let depth = parked_on t v.v_id in
    let reject c e =
      s.rejected <- s.rejected + 1;
      Metrics.inc c;
      (match t.cfg.on_reject with Some f -> f ~client:s.client e | None -> ());
      Some e
    in
    if depth >= t.cfg.queue_cap then
      reject v.c_reject_queue_full (Queue_full { depth; cap = t.cfg.queue_cap })
    else if t.cfg.backpressure_fill >= 1.0 then
      (* 1.0 means "trigger off" by contract — and must be tested
         explicitly, because [log_third_fill] legitimately reads exactly
         1.0 while the head sits on a third boundary. *)
      None
    else
      let fill = Fsd.log_third_fill v.v_fsd in
      if fill >= t.cfg.backpressure_fill then
        reject v.c_reject_backpressure
          (Backpressure { depth; fill; threshold = t.cfg.backpressure_fill })
      else None
  end

(* Admission has already passed when this runs. [Fs_error] is a client
   error (bad name, missing file): count it and move on. A planted
   device crash is the simulated machine halt when the server owns one
   volume (propagate to the harness) and a per-volume quarantine when it
   owns several. Anything else is a server-side bug; it must not wedge
   the round-robin scheduler mid-span, so the session is terminated with
   the exception recorded as a typed abort. *)
let run_op t v s op =
  s.ops <- s.ops + 1;
  let t_start = now t in
  (* Admission is over: everything since the first attempt was retry
     windows. [begin_span] is guarded so a tracing-off run performs no
     allocation on this path (the label is precomputed per session). *)
  Metrics.add v.c_phase_admission_us (t_start - s.t_submitted);
  let span =
    if Trace.enabled t.trace then
      Trace.begin_span t.trace ~at:t_start ~op:s.label
        ~name:(Concurrent.op_name op)
    else 0
  in
  (* With a request queue, the op's device commands become requests
     [r0 + 1 .. issued] — the range the session's ack waits on. *)
  let r0 = if v.v_queue then Cedar_disk.Device.issued v.v_dev else 0 in
  let token =
    Fun.protect
      ~finally:(fun () -> Trace.end_span t.trace ~at:(now t) span)
      (fun () ->
        match Fsd.submit v.v_fsd (fun () -> exec_op t v op) with
        | (), tok -> tok
        | exception Cedar_fsbase.Fs_error.Fs_error _ ->
          s.errors <- s.errors + 1;
          Fsd.always_durable
        | exception (Cedar_disk.Device.Crash_during_write { sector } as e) ->
          if single t then raise e
          else begin
            quarantine t v ~sector;
            s.aborted <- Some (Printf.sprintf "volume %d crashed" v.v_id);
            s.steps <- [];
            s.state <- Done;
            Fsd.always_durable
          end
        | exception e ->
          s.aborted <-
            Some
              (Printf.sprintf "%s: %s" (Concurrent.op_name op)
                 (Printexc.to_string e));
          s.steps <- [];
          s.state <- Done;
          Fsd.always_durable)
  in
  let t_end = now t in
  s.t_exec_end <- t_end;
  Metrics.add v.c_phase_execute_us (t_end - t_start);
  (* Deferred device: the op's I/O queued on the device timeline without
     advancing the clock, so its result is only available at the busy
     horizon — the session parks (Thinking) until then, which is what
     lets other volumes' sessions run in the meantime. Synchronous
     devices complete before returning: done_at = t_end, no park. With
     a request queue, completion is per request, resolved lazily: the
     session goes to Iowait instead and [resolve_iowait] stamps its ack
     when the queue services its requests. *)
  let done_at =
    if v.v_par && not v.v_queue then
      max t_end (Cedar_disk.Device.busy_until v.v_dev)
    else t_end
  in
  let park_to_completion () =
    if done_at > t_end then s.state <- Thinking { until = done_at }
  in
  let ack_now () =
    if Trace.enabled t.trace then
      Trace.emit t.trace ~at:done_at
        (Trace.Op_acked { client = s.client; opseq = s.opseq });
    Stats.add v.v_op_latency_us (float_of_int (done_at - s.arrival_us));
    s.arrival_us <- done_at
  in
  (* Ack at execute end, or wait on the op's outstanding requests. *)
  let ack_or_iowait () =
    let last = if v.v_queue then Cedar_disk.Device.issued v.v_dev else 0 in
    if v.v_queue && last > r0 then
      s.state <- Iowait { vol = v.v_id; first = r0 + 1; last }
    else begin
      ack_now ();
      park_to_completion ()
    end
  in
  if s.state = Done then ()
  else if token = Fsd.always_durable then
    (* Reads, lists, explicit forces and client errors: the lifecycle
       ends at execute completion — or at the service completion of the
       op's queued requests — with no commit-wait park window. *)
    ack_or_iowait ()
  else if Fsd.token_durable v.v_fsd token then
    (* A mid-op force (the bulk-trigger backstop) already covered the
       mutation: acknowledge with zero commit wait, no commit park. *)
    begin
      s.mutations <- s.mutations + 1;
      v.v_acked <- v.v_acked + 1;
      Metrics.inc v.c_acked;
      Stats.add v.v_commit_wait_us 0.;
      t.acked_rev <- (s.client, op) :: t.acked_rev;
      (match t.cfg.on_ack with Some f -> f ~client:s.client ~op | None -> ());
      ack_or_iowait ()
    end
  else s.state <- Parked { vol = v.v_id; token; since = t_end; op }

let reject_label = function
  | Queue_full _ -> "queue_full"
  | Backpressure _ -> "backpressure"

let step t s =
  match s.steps with
  | [] -> s.state <- Done
  | step :: rest -> (
    match step with
    | Concurrent.Think us ->
      s.steps <- rest;
      let until = now t + us in
      s.state <- Thinking { until };
      (* The next op becomes runnable when the think ends; scheduler
         delay past that deadline is its queue wait. *)
      s.arrival_us <- until
    | Concurrent.At at ->
      (* Open-loop arrival: wait until the absolute deadline, but a
         session already behind schedule issues immediately — offered
         load is pinned to the clock, so the backlog is preserved. *)
      s.steps <- rest;
      if at > now t then begin
        s.state <- Thinking { until = at };
        s.arrival_us <- at
      end
      (* else: behind schedule — arrival_us stays at the previous op's
         completion; the backlog time counts as queue wait. *)
    | Concurrent.Op op -> (
      let v = t.vols.(target_vid t op) in
      if v.v_dead then begin
        (* The owning volume crashed out from under this session: there
           is no one to serve the op, or any later op routed the same
           way. Typed abort, like any other server-side termination. *)
        s.aborted <- Some (Printf.sprintf "volume %d crashed" v.v_id);
        s.steps <- [];
        s.state <- Done
      end
      else begin
        if s.retries = 0 then begin
          (* First admission attempt of a new lifecycle. *)
          s.opseq <- s.opseq + 1;
          s.t_submitted <- now t;
          Metrics.add v.c_phase_queue_us (now t - s.arrival_us);
          if Trace.enabled t.trace then
            Trace.emit t.trace ~at:(now t)
              (Trace.Op_submitted
                 {
                   client = s.client;
                   opseq = s.opseq;
                   op = Concurrent.op_kind op;
                   arrived_us = s.arrival_us;
                 })
        end;
        match admission_reject t v s op with
        | Some e when s.retries < t.cfg.admission_retries ->
          (* Leave the step at the head of the script and retry once the
             volume's next commit opportunity has had a chance to drain
             its queue — a reject must never silently drop the mutation. *)
          s.retries <- s.retries + 1;
          Metrics.inc v.c_retries;
          if Trace.enabled t.trace then
            Trace.emit t.trace ~at:(now t)
              (Trace.Op_rejected
                 { client = s.client; opseq = s.opseq; why = reject_label e });
          s.state <-
            Thinking { until = max (now t + 1) (Fsd.commit_due_at v.v_fsd) }
        | Some _ ->
          (* Retries exhausted: give up on this step, but account for it.
             The whole submitted->dropped window was admission time. *)
          let retries = s.retries in
          s.retries <- 0;
          s.dropped <- s.dropped + 1;
          Metrics.inc v.c_dropped;
          Metrics.add v.c_phase_admission_us (now t - s.t_submitted);
          if Trace.enabled t.trace then
            Trace.emit t.trace ~at:(now t)
              (Trace.Op_dropped { client = s.client; opseq = s.opseq; retries });
          s.arrival_us <- now t;
          s.steps <- rest
        | None ->
          s.retries <- 0;
          s.steps <- rest;
          run_op t v s op
      end))

(* ------------------------------------------------------------------ *)
(* The scheduler. *)

let runnable t (s : session) =
  match s.state with
  | Ready -> true
  | Thinking { until } -> until <= now t
  | Parked _ | Iowait _ | Done -> false

(* Round-robin: scan from the cursor so no session can monopolise the
   scheduler — after k steps every runnable session has run at least
   once. *)
let next_runnable t =
  let n = Array.length t.sessions in
  let rec scan i =
    if i = n then None
    else
      let s = t.sessions.((t.cursor + i) mod n) in
      if runnable t s then begin
        t.cursor <- ((t.cursor + i + 1) mod n);
        Some s
      end
      else scan (i + 1)
  in
  scan 0

let all_done t = Array.for_all (fun s -> s.state = Done) t.sessions

(* Every live session is either thinking toward a known time or parked
   waiting for some volume's commit demon; the next interesting instant
   is the earliest of those across all live volumes. *)
let next_event_time t =
  let demons =
    Array.fold_left
      (fun acc v ->
        if v.v_dead then acc
        else
          (* An attached telemetry monitor wakes the scheduler too, so
             samples land on their cadence instead of at the next
             commit/think edge. *)
          let due =
            match Fsd.monitor v.v_fsd with
            | Some m -> min (Fsd.commit_due_at v.v_fsd) (Cedar_obs.Monitor.due_at m)
            | None -> Fsd.commit_due_at v.v_fsd
          in
          min acc due)
      max_int t.vols
  in
  Array.fold_left
    (fun acc s ->
      match s.state with
      | Thinking { until } -> min acc until
      | Parked _ | Iowait _ | Ready | Done -> acc)
    demons t.sessions

(* All remaining work is parked sessions whose scripts are exhausted:
   nothing new can join those batches, so flush them now rather than
   sleeping out the rest of the commit interval (shutdown semantics). *)
let only_drain_left t =
  (not (all_done t))
  && Array.for_all
       (fun s ->
         match s.state with
         | Done -> true
         | Parked _ -> s.steps = []
         | Iowait _ | Ready | Thinking _ -> false)
       t.sessions

(* Resolve every Iowait session: service (in policy order) until its
   request range is done, stamp the ack there. Runs only once no session
   is runnable — the point of lazy resolution is that requests from many
   sessions pile up in the device queue first, giving a reordering
   policy something to reorder. Sessions are resolved in index order,
   which keeps the drain deterministic. Returns whether any resolved. *)
let resolve_iowait t =
  let any = ref false in
  Array.iter
    (fun s ->
      match s.state with
      | Iowait { vol; first; last } ->
        any := true;
        let v = t.vols.(vol) in
        let done_at =
          Cedar_disk.Device.requests_done_at v.v_dev ~first ~last
        in
        if Trace.enabled t.trace then
          Trace.emit t.trace ~at:done_at
            (Trace.Op_acked { client = s.client; opseq = s.opseq });
        Stats.add v.v_op_latency_us (float_of_int (done_at - s.arrival_us));
        s.arrival_us <- done_at;
        s.state <-
          (if done_at > now t then Thinking { until = done_at } else Ready)
      | _ -> ())
    t.sessions;
  !any

(* Flush every live volume still owing acks, index order. *)
let force_drain t =
  Array.iter
    (fun v -> if (not v.v_dead) && parked_on t v.v_id > 0 then force_vol t v)
    t.vols

let create_volumes ?(config = default_config) vset scripts =
  if Array.length scripts = 0 then invalid_arg "Server.create: no scripts";
  if config.max_batch < 1 then invalid_arg "Server.create: max_batch < 1";
  if config.queue_cap < 1 then invalid_arg "Server.create: queue_cap < 1";
  let clock = Volume_set.clock vset in
  let t0 = Simclock.now clock in
  let sessions =
    Array.mapi
      (fun client steps ->
        {
          client;
          label = Printf.sprintf "session%02d" client;
          steps;
          state = Ready;
          ops = 0;
          mutations = 0;
          rejected = 0;
          retries = 0;
          dropped = 0;
          errors = 0;
          aborted = None;
          wait_total_us = 0;
          wait_max_us = 0;
          opseq = 0;
          arrival_us = t0;
          t_submitted = t0;
          t_exec_end = t0;
        })
      scripts
  in
  let vols =
    Array.init (Volume_set.count vset) (fun i ->
        let fsd = Volume_set.vol vset i in
        let m = Fsd.metrics fsd in
        let dev = Volume_set.device vset i in
        {
          v_id = i;
          v_fsd = fsd;
          v_dev = dev;
          v_par = Cedar_disk.Device.deferred dev;
          v_queue = Cedar_disk.Device.queued dev;
          v_dead = false;
          v_crash_sector = -1;
          v_last_durable = Fsd.durable_seq fsd;
          v_forces = 0;
          v_forces0 = 0;
          v_last_force_us = 0;
          v_acked = 0;
          v_commit_wait_us = Metrics.dist m "server.commit_wait_us";
          v_batch_size = Metrics.dist m "server.batch_size";
          v_op_latency_us = Metrics.dist m "server.op_latency_us";
          c_reject_queue_full = Metrics.counter m "server.rejects.queue_full";
          c_reject_backpressure = Metrics.counter m "server.rejects.backpressure";
          c_retries = Metrics.counter m "server.retries";
          c_dropped = Metrics.counter m "server.dropped";
          c_acked = Metrics.counter m "server.acked";
          c_phase_queue_us = Metrics.counter m "server.phase.queue_us";
          c_phase_admission_us = Metrics.counter m "server.phase.admission_us";
          c_phase_execute_us = Metrics.counter m "server.phase.execute_us";
          c_phase_append_us = Metrics.counter m "server.phase.append_us";
          c_phase_parked_us = Metrics.counter m "server.phase.parked_us";
        })
  in
  let t =
    {
      vset;
      vols;
      clock;
      trace = Volume_set.trace vset;
      cfg = config;
      sessions;
      cursor = 0;
      forces = 0;
      acked_rev = [];
    }
  in
  Array.iter
    (fun v ->
      Metrics.gauge (Fsd.metrics v.v_fsd) "server.queue_depth" (fun () ->
          parked_on t v.v_id))
    vols;
  t

let create ?config fsd scripts =
  create_volumes ?config (Volume_set.of_fsd fsd) scripts

let run t =
  let t0 = now t in
  Array.iter (fun v -> v.v_forces0 <- (Fsd.counters v.v_fsd).Fsd.forces) t.vols;
  let rec loop () =
    if not (all_done t) then begin
      (match next_runnable t with
      | Some s -> step t s
      | None ->
        if resolve_iowait t then ()
        else if only_drain_left t then force_drain t
        else Simclock.advance_to t.clock (next_event_time t));
      schedule_point t;
      loop ()
    end
  in
  loop ();
  (* Background demon writes may still sit in a request queue; service
     them so the device stats the caller reads cover the whole run. *)
  Array.iter
    (fun v ->
      if v.v_queue then ignore (Cedar_disk.Device.busy_until v.v_dev : int))
    t.vols;
  let duration_us = now t - t0 in
  let vol_log_forces v = (Fsd.counters v.v_fsd).Fsd.forces - v.v_forces0 in
  let log_forces = Array.fold_left (fun n v -> n + vol_log_forces v) 0 t.vols in
  let total f = Array.fold_left (fun n s -> n + f s) 0 t.sessions in
  let vtotal f = Array.fold_left (fun n v -> n + f v) 0 t.vols in
  let mutations_acked = total (fun s -> s.mutations) in
  (* Merged wait/batch statistics across volumes (for one volume this is
     that volume's own series, so the report is unchanged). *)
  let merged per_vol =
    if Array.length t.vols = 1 then per_vol t.vols.(0)
    else begin
      let d = Stats.create () in
      Array.iter
        (fun v ->
          let src = per_vol v in
          List.iter (Stats.add d) (Stats.recent src (Stats.n src)))
        t.vols;
      d
    end
  in
  let wait = merged (fun v -> v.v_commit_wait_us) in
  let batch = merged (fun v -> v.v_batch_size) in
  let dist_or d f default = if Stats.n d = 0 then default else f d in
  {
    clients = Array.length t.sessions;
    duration_us;
    total_ops = total (fun s -> s.ops);
    mutations_acked;
    server_forces = t.forces;
    log_forces;
    ops_per_force =
      (if log_forces = 0 then 0.
       else float_of_int mutations_acked /. float_of_int log_forces);
    total_rejected = total (fun s -> s.rejected);
    reject_queue_full = vtotal (fun v -> Metrics.counter_value v.c_reject_queue_full);
    reject_backpressure =
      vtotal (fun v -> Metrics.counter_value v.c_reject_backpressure);
    total_retries = vtotal (fun v -> Metrics.counter_value v.c_retries);
    total_dropped = total (fun s -> s.dropped);
    total_errors = total (fun s -> s.errors);
    total_aborted = total (fun s -> if s.aborted = None then 0 else 1);
    wait_n = Stats.n wait;
    wait_mean_us = dist_or wait Stats.mean 0.;
    wait_p50_us = dist_or wait (fun d -> Stats.percentile d 0.50) 0.;
    wait_p99_us = dist_or wait (fun d -> Stats.percentile d 0.99) 0.;
    wait_max_us = dist_or wait Stats.max 0.;
    batch_n = Stats.n batch;
    batch_mean = dist_or batch Stats.mean 0.;
    batch_max = dist_or batch Stats.max 0.;
    per_session =
      Array.to_list
        (Array.map
           (fun s ->
             {
               r_client = s.client;
               r_ops = s.ops;
               r_mutations = s.mutations;
               r_rejected = s.rejected;
               r_dropped = s.dropped;
               r_errors = s.errors;
               r_aborted = s.aborted;
               r_wait_total_us = s.wait_total_us;
               r_wait_max_us = s.wait_max_us;
             })
           t.sessions);
    per_volume =
      Array.to_list
        (Array.map
           (fun v ->
             {
               vr_volume = v.v_id;
               vr_server_forces = v.v_forces;
               vr_log_forces = vol_log_forces v;
               vr_acked = v.v_acked;
               vr_crashed = v.v_dead;
             })
           t.vols);
  }

let serve ?config fsd scripts = run (create ?config fsd scripts)
let serve_volumes ?config vset scripts = run (create_volumes ?config vset scripts)
let acked t = List.rev t.acked_rev

let crashed_volumes t =
  Array.to_list t.vols
  |> List.filter_map (fun v -> if v.v_dead then Some v.v_id else None)

type outcome = Completed of report | Crashed of { sector : int }

let run_to_crash t =
  match run t with
  | r -> Completed r
  | exception Cedar_disk.Device.Crash_during_write { sector } ->
    Crashed { sector }

(* Deterministic rendering: field order is fixed here, sessions are in
   client order, so byte-identical reports mean identical runs. The
   "volumes" array appears only for a multi-volume server — the
   single-volume JSON is byte-for-byte the historical shape. *)
let report_json r =
  let session s =
    Jsonb.Obj
      [
        ("client", Jsonb.Int s.r_client);
        ("ops", Jsonb.Int s.r_ops);
        ("mutations", Jsonb.Int s.r_mutations);
        ("rejected", Jsonb.Int s.r_rejected);
        ("dropped", Jsonb.Int s.r_dropped);
        ("errors", Jsonb.Int s.r_errors);
        ( "aborted",
          match s.r_aborted with None -> Jsonb.Null | Some e -> Jsonb.Str e );
        ("wait_total_us", Jsonb.Int s.r_wait_total_us);
        ("wait_max_us", Jsonb.Int s.r_wait_max_us);
      ]
  in
  let volume v =
    Jsonb.Obj
      [
        ("volume", Jsonb.Int v.vr_volume);
        ("server_forces", Jsonb.Int v.vr_server_forces);
        ("log_forces", Jsonb.Int v.vr_log_forces);
        ("acked", Jsonb.Int v.vr_acked);
        ("crashed", Jsonb.Bool v.vr_crashed);
      ]
  in
  Jsonb.Obj
    ([
       ("clients", Jsonb.Int r.clients);
       ("duration_us", Jsonb.Int r.duration_us);
       ("total_ops", Jsonb.Int r.total_ops);
       ("mutations_acked", Jsonb.Int r.mutations_acked);
       ("server_forces", Jsonb.Int r.server_forces);
       ("log_forces", Jsonb.Int r.log_forces);
       ("ops_per_force", Jsonb.Float r.ops_per_force);
       ("rejected", Jsonb.Int r.total_rejected);
       ("rejects_queue_full", Jsonb.Int r.reject_queue_full);
       ("rejects_backpressure", Jsonb.Int r.reject_backpressure);
       ("retries", Jsonb.Int r.total_retries);
       ("dropped", Jsonb.Int r.total_dropped);
       ("errors", Jsonb.Int r.total_errors);
       ("aborted", Jsonb.Int r.total_aborted);
       ( "commit_wait_us",
         Jsonb.Obj
           [
             ("n", Jsonb.Int r.wait_n);
             ("mean", Jsonb.Float r.wait_mean_us);
             ("p50", Jsonb.Float r.wait_p50_us);
             ("p99", Jsonb.Float r.wait_p99_us);
             ("max", Jsonb.Float r.wait_max_us);
           ] );
       ( "batch_size",
         Jsonb.Obj
           [
             ("n", Jsonb.Int r.batch_n);
             ("mean", Jsonb.Float r.batch_mean);
             ("max", Jsonb.Float r.batch_max);
           ] );
       ("sessions", Jsonb.Arr (List.map session r.per_session));
     ]
    @
    if List.length r.per_volume > 1 then
      [ ("volumes", Jsonb.Arr (List.map volume r.per_volume)) ]
    else [])
