(* Concurrent multi-client FSD server: a deterministic cooperative
   scheduler over the virtual clock, with a real group-commit batcher.

   Each client session replays a [Concurrent.script]. Operations run to
   completion (cooperative, never preempted mid-op); a session that
   performed a metadata mutation then *parks* on the batcher and is only
   acknowledged once a log force covers its transaction — §5.4's "the
   process doing the commit waits", generalised to N clients. The batcher
   forces on three triggers:

   - time: the half-second commit demon ([Params.commit_interval_us]);
   - size: [max_batch] sessions parked;
   - explicit: a client [Force] step.

   Admission control rejects — never blocks — with two distinct typed
   triggers: [Queue_full] when [queue_cap] sessions are already parked
   (unconditional, so the parked queue is bounded at any log fill), and
   [Backpressure] when the current log third is past [backpressure_fill].
   A rejected step is re-parked and retried after the next commit
   opportunity, up to [admission_retries] times; only then is it dropped,
   and the drop is counted in the report rather than silently lost.

   Determinism: sessions are stepped round-robin by index, the only
   clock is [Simclock], and the only randomness is the script
   generator's seeded [Rng] — two runs from the same seed produce
   byte-identical reports. *)

open Cedar_util
open Cedar_obs
open Cedar_fsd
open Cedar_workload

type error =
  | Queue_full of { depth : int; cap : int }
  | Backpressure of { depth : int; fill : float; threshold : float }

let pp_error ppf = function
  | Queue_full { depth; cap } ->
    Format.fprintf ppf "queue-full depth=%d cap=%d" depth cap
  | Backpressure { depth; fill; threshold } ->
    Format.fprintf ppf "backpressure depth=%d fill=%.2f threshold=%.2f" depth
      fill threshold

type config = {
  max_batch : int;
  queue_cap : int;
  backpressure_fill : float;
  admission_retries : int;
  on_force : (int -> unit) option;
  on_ack : (client:int -> op:Concurrent.op -> unit) option;
  on_reject : (client:int -> error -> unit) option;
}

let default_config =
  {
    max_batch = 64;
    queue_cap = 256;
    backpressure_fill = 1.0;
    admission_retries = 8;
    on_force = None;
    on_ack = None;
    on_reject = None;
  }

type state =
  | Ready
  | Thinking of { until : int }
  | Parked of { token : Fsd.token; since : int; op : Concurrent.op }
  | Done

type session = {
  client : int;
  label : string;  (* "sessionNN", precomputed: the op-span label *)
  mutable steps : Concurrent.step list;
  mutable state : state;
  mutable ops : int;
  mutable mutations : int;
  mutable rejected : int;
  mutable retries : int;  (* consecutive rejects of the step at head *)
  mutable dropped : int;
  mutable errors : int;
  mutable aborted : string option;  (* non-Fs_error exception text *)
  mutable wait_total_us : int;
  mutable wait_max_us : int;
  (* Latency-anatomy bookkeeping (plain ints: maintained even with
     tracing off, so the per-phase monitor gauges always read). *)
  mutable opseq : int;  (* lifecycle number of the op at script head *)
  mutable arrival_us : int;  (* when that op became runnable *)
  mutable t_submitted : int;  (* first admission attempt of current op *)
  mutable t_exec_end : int;  (* Fsd.submit returned; park window starts *)
}

type t = {
  fsd : Fsd.t;
  clock : Simclock.t;
  cfg : config;
  sessions : session array;
  mutable cursor : int;  (* round-robin scan start *)
  mutable last_durable : int;
  mutable forces : int;  (* server-initiated (time/size/explicit) *)
  mutable last_force_us : int;  (* duration of the last server force *)
  mutable acked_rev : (int * Concurrent.op) list;  (* ack journal, newest first *)
  commit_wait_us : Stats.t;
  batch_size : Stats.t;
  c_reject_queue_full : Metrics.counter;
  c_reject_backpressure : Metrics.counter;
  c_retries : Metrics.counter;
  c_dropped : Metrics.counter;
  c_acked : Metrics.counter;
  (* Cumulative per-phase microseconds across all ops: the online (no
     trace needed) side of the latency anatomy, read by the monitor's
     sat.phase_* rate gauges. The trace-based Critpath fold is the
     per-op precise version of the same decomposition. *)
  c_phase_queue_us : Metrics.counter;
  c_phase_admission_us : Metrics.counter;
  c_phase_execute_us : Metrics.counter;
  c_phase_append_us : Metrics.counter;
  c_phase_parked_us : Metrics.counter;
}

type session_report = {
  r_client : int;
  r_ops : int;
  r_mutations : int;
  r_rejected : int;
  r_dropped : int;
  r_errors : int;
  r_aborted : string option;
  r_wait_total_us : int;
  r_wait_max_us : int;
}

type report = {
  clients : int;
  duration_us : int;
  total_ops : int;
  mutations_acked : int;
  server_forces : int;
  log_forces : int;
  ops_per_force : float;
  total_rejected : int;
  reject_queue_full : int;
  reject_backpressure : int;
  total_retries : int;
  total_dropped : int;
  total_errors : int;
  total_aborted : int;
  wait_n : int;
  wait_mean_us : float;
  wait_p50_us : float;
  wait_p99_us : float;
  wait_max_us : float;
  batch_n : int;
  batch_mean : float;
  batch_max : float;
  per_session : session_report list;
}

let now t = Simclock.now t.clock

let parked_count t =
  Array.fold_left
    (fun n s -> match s.state with Parked _ -> n + 1 | _ -> n)
    0 t.sessions

(* ------------------------------------------------------------------ *)
(* The batcher. *)

let force_now t =
  t.forces <- t.forces + 1;
  (match t.cfg.on_force with Some f -> f t.forces | None -> ());
  let t0 = now t in
  Fsd.force t.fsd;
  t.last_force_us <- now t - t0

(* Wake every parked session the last force covered. One durable
   advance = one batch; its size is the number of sessions released
   together, the quantity Hagmann's group commit amortises the force
   over. *)
let poll_wakes t =
  let d = Fsd.durable_seq t.fsd in
  if d > t.last_durable then begin
    t.last_durable <- d;
    let woken = ref 0 in
    Array.iter
      (fun s ->
        match s.state with
        | Parked { token; since; op } when Fsd.token_durable t.fsd token ->
          let at = now t in
          let wait = at - since in
          incr woken;
          Stats.add t.commit_wait_us (float_of_int wait);
          s.wait_total_us <- s.wait_total_us + wait;
          if wait > s.wait_max_us then s.wait_max_us <- wait;
          s.mutations <- s.mutations + 1;
          Metrics.inc t.c_acked;
          (* Phase split of the park window: the tail that overlaps the
             covering force's own device writes is "append" (the op's
             share of log I/O latency); the head is pure parked-for-force
             wait. Online approximation: the last server force's
             duration; Critpath computes the exact overlap from force
             spans in the trace. *)
          let append = if wait < t.last_force_us then wait else t.last_force_us in
          Metrics.add t.c_phase_append_us append;
          Metrics.add t.c_phase_parked_us (wait - append);
          let tr = Fsd.trace t.fsd in
          if Trace.enabled tr then begin
            Trace.emit tr ~at
              (Trace.Session_wait { client = s.client; us = wait });
            Trace.emit tr ~at
              (Trace.Op_acked { client = s.client; opseq = s.opseq })
          end;
          s.arrival_us <- at;
          t.acked_rev <- (s.client, op) :: t.acked_rev;
          (match t.cfg.on_ack with
          | Some f -> f ~client:s.client ~op
          | None -> ());
          s.state <- Ready
        | _ -> ())
      t.sessions;
    if !woken > 0 then Stats.add t.batch_size (float_of_int !woken)
  end

(* Run at every point where the scheduler regains control: fire the
   commit demon if its interval elapsed inside the last op, let the
   other demons (scrub) run, then release whoever the force covered. *)
let schedule_point t =
  if now t >= Fsd.commit_due_at t.fsd then force_now t;
  Demons.run_due t.fsd;
  poll_wakes t;
  if parked_count t >= t.cfg.max_batch then begin
    force_now t;
    poll_wakes t
  end

(* ------------------------------------------------------------------ *)
(* Session stepping. *)

let exec_op t (op : Concurrent.op) =
  match op with
  | Create { name; bytes; fill } ->
    ignore
      (Fsd.create t.fsd ~name (Concurrent.content ~fill bytes)
        : Cedar_fsbase.Fs_ops.info)
  | Open name -> ignore (Fsd.open_stat t.fsd ~name : Cedar_fsbase.Fs_ops.info)
  | Read name -> ignore (Fsd.read_all t.fsd ~name : bytes)
  | Read_page { name; page } -> ignore (Fsd.read_page t.fsd ~name ~page : bytes)
  | Delete name -> Fsd.delete t.fsd ~name
  | List prefix -> ignore (Fsd.list t.fsd ~prefix : Cedar_fsbase.Fs_ops.info list)
  | Force -> force_now t

(* The depth cap must hold unconditionally: the parked queue is the
   server's only bounded resource, and tying it to log fill (as an
   earlier revision did) let it grow without limit whenever the log
   third happened to be fresh. Backpressure from log fill is a second,
   independent trigger with its own typed error. *)
let admission_reject t (s : session) (op : Concurrent.op) =
  if not (Concurrent.mutates op) then None
  else begin
    let depth = parked_count t in
    let reject c e =
      s.rejected <- s.rejected + 1;
      Metrics.inc c;
      (match t.cfg.on_reject with Some f -> f ~client:s.client e | None -> ());
      Some e
    in
    if depth >= t.cfg.queue_cap then
      reject t.c_reject_queue_full (Queue_full { depth; cap = t.cfg.queue_cap })
    else if t.cfg.backpressure_fill >= 1.0 then
      (* 1.0 means "trigger off" by contract — and must be tested
         explicitly, because [log_third_fill] legitimately reads exactly
         1.0 while the head sits on a third boundary. *)
      None
    else
      let fill = Fsd.log_third_fill t.fsd in
      if fill >= t.cfg.backpressure_fill then
        reject t.c_reject_backpressure
          (Backpressure { depth; fill; threshold = t.cfg.backpressure_fill })
      else None
  end

(* Admission has already passed when this runs. [Fs_error] is a client
   error (bad name, missing file): count it and move on. A planted
   device crash is the simulated machine halt and must propagate to the
   harness. Anything else is a server-side bug; it must not wedge the
   round-robin scheduler mid-span, so the session is terminated with the
   exception recorded as a typed abort. *)
let run_op t s op =
  s.ops <- s.ops + 1;
  let tr = Fsd.trace t.fsd in
  let t_start = now t in
  (* Admission is over: everything since the first attempt was retry
     windows. [begin_span] is guarded so a tracing-off run performs no
     allocation on this path (the label is precomputed per session). *)
  Metrics.add t.c_phase_admission_us (t_start - s.t_submitted);
  let span =
    if Trace.enabled tr then
      Trace.begin_span tr ~at:t_start ~op:s.label ~name:(Concurrent.op_name op)
    else 0
  in
  let token =
    Fun.protect
      ~finally:(fun () -> Trace.end_span tr ~at:(now t) span)
      (fun () ->
        match Fsd.submit t.fsd (fun () -> exec_op t op) with
        | (), tok -> tok
        | exception Cedar_fsbase.Fs_error.Fs_error _ ->
          s.errors <- s.errors + 1;
          Fsd.always_durable
        | exception (Cedar_disk.Device.Crash_during_write _ as e) -> raise e
        | exception e ->
          s.aborted <-
            Some
              (Printf.sprintf "%s: %s" (Concurrent.op_name op)
                 (Printexc.to_string e));
          s.steps <- [];
          s.state <- Done;
          Fsd.always_durable)
  in
  let t_end = now t in
  s.t_exec_end <- t_end;
  Metrics.add t.c_phase_execute_us (t_end - t_start);
  let ack_now () =
    if Trace.enabled tr then
      Trace.emit tr ~at:t_end
        (Trace.Op_acked { client = s.client; opseq = s.opseq });
    s.arrival_us <- t_end
  in
  if s.state = Done then ()
  else if token = Fsd.always_durable then
    (* Reads, lists, explicit forces and client errors: the lifecycle
       ends at execute completion, no park window. *)
    ack_now ()
  else if Fsd.token_durable t.fsd token then
    (* A mid-op force (the bulk-trigger backstop) already covered the
       mutation: acknowledge with zero commit wait, no park. *)
    begin
      s.mutations <- s.mutations + 1;
      Metrics.inc t.c_acked;
      Stats.add t.commit_wait_us 0.;
      ack_now ();
      t.acked_rev <- (s.client, op) :: t.acked_rev;
      match t.cfg.on_ack with Some f -> f ~client:s.client ~op | None -> ()
    end
  else s.state <- Parked { token; since = t_end; op }

let reject_label = function
  | Queue_full _ -> "queue_full"
  | Backpressure _ -> "backpressure"

let step t s =
  match s.steps with
  | [] -> s.state <- Done
  | step :: rest -> (
    match step with
    | Concurrent.Think us ->
      s.steps <- rest;
      let until = now t + us in
      s.state <- Thinking { until };
      (* The next op becomes runnable when the think ends; scheduler
         delay past that deadline is its queue wait. *)
      s.arrival_us <- until
    | Concurrent.At at ->
      (* Open-loop arrival: wait until the absolute deadline, but a
         session already behind schedule issues immediately — offered
         load is pinned to the clock, so the backlog is preserved. *)
      s.steps <- rest;
      if at > now t then begin
        s.state <- Thinking { until = at };
        s.arrival_us <- at
      end
      (* else: behind schedule — arrival_us stays at the previous op's
         completion; the backlog time counts as queue wait. *)
    | Concurrent.Op op -> (
      if s.retries = 0 then begin
        (* First admission attempt of a new lifecycle. *)
        s.opseq <- s.opseq + 1;
        s.t_submitted <- now t;
        Metrics.add t.c_phase_queue_us (now t - s.arrival_us);
        let tr = Fsd.trace t.fsd in
        if Trace.enabled tr then
          Trace.emit tr ~at:(now t)
            (Trace.Op_submitted
               {
                 client = s.client;
                 opseq = s.opseq;
                 op = Concurrent.op_kind op;
                 arrived_us = s.arrival_us;
               })
      end;
      match admission_reject t s op with
      | Some e when s.retries < t.cfg.admission_retries ->
        (* Leave the step at the head of the script and retry once the
           next commit opportunity has had a chance to drain the queue —
           a reject must never silently drop the mutation. *)
        s.retries <- s.retries + 1;
        Metrics.inc t.c_retries;
        let tr = Fsd.trace t.fsd in
        if Trace.enabled tr then
          Trace.emit tr ~at:(now t)
            (Trace.Op_rejected
               { client = s.client; opseq = s.opseq; why = reject_label e });
        s.state <- Thinking { until = max (now t + 1) (Fsd.commit_due_at t.fsd) }
      | Some _ ->
        (* Retries exhausted: give up on this step, but account for it.
           The whole submitted->dropped window was admission time. *)
        let retries = s.retries in
        s.retries <- 0;
        s.dropped <- s.dropped + 1;
        Metrics.inc t.c_dropped;
        Metrics.add t.c_phase_admission_us (now t - s.t_submitted);
        let tr = Fsd.trace t.fsd in
        if Trace.enabled tr then
          Trace.emit tr ~at:(now t)
            (Trace.Op_dropped { client = s.client; opseq = s.opseq; retries });
        s.arrival_us <- now t;
        s.steps <- rest
      | None ->
        s.retries <- 0;
        s.steps <- rest;
        run_op t s op))

(* ------------------------------------------------------------------ *)
(* The scheduler. *)

let runnable t (s : session) =
  match s.state with
  | Ready -> true
  | Thinking { until } -> until <= now t
  | Parked _ | Done -> false

(* Round-robin: scan from the cursor so no session can monopolise the
   scheduler — after k steps every runnable session has run at least
   once. *)
let next_runnable t =
  let n = Array.length t.sessions in
  let rec scan i =
    if i = n then None
    else
      let s = t.sessions.((t.cursor + i) mod n) in
      if runnable t s then begin
        t.cursor <- ((t.cursor + i + 1) mod n);
        Some s
      end
      else scan (i + 1)
  in
  scan 0

let all_done t =
  Array.for_all (fun s -> s.state = Done) t.sessions

(* Every live session is either thinking toward a known time or parked
   waiting for the commit demon; the next interesting instant is the
   earliest of those. *)
let next_event_time t =
  let demons =
    (* An attached telemetry monitor wakes the scheduler too, so samples
       land on their cadence instead of at the next commit/think edge. *)
    match Fsd.monitor t.fsd with
    | Some m -> min (Fsd.commit_due_at t.fsd) (Cedar_obs.Monitor.due_at m)
    | None -> Fsd.commit_due_at t.fsd
  in
  Array.fold_left
    (fun acc s ->
      match s.state with
      | Thinking { until } -> min acc until
      | Parked _ | Ready | Done -> acc)
    demons t.sessions

(* All remaining work is parked sessions whose scripts are exhausted:
   nothing new can join the batch, so flush it now rather than sleeping
   out the rest of the commit interval (shutdown semantics). *)
let only_drain_left t =
  (not (all_done t))
  && Array.for_all
       (fun s ->
         match s.state with
         | Done -> true
         | Parked _ -> s.steps = []
         | Ready | Thinking _ -> false)
       t.sessions

let create ?(config = default_config) fsd scripts =
  if Array.length scripts = 0 then invalid_arg "Server.create: no scripts";
  if config.max_batch < 1 then invalid_arg "Server.create: max_batch < 1";
  if config.queue_cap < 1 then invalid_arg "Server.create: queue_cap < 1";
  let t0 = Simclock.now (Cedar_disk.Device.clock (Fsd.device fsd)) in
  let sessions =
    Array.mapi
      (fun client steps ->
        {
          client;
          label = Printf.sprintf "session%02d" client;
          steps;
          state = Ready;
          ops = 0;
          mutations = 0;
          rejected = 0;
          retries = 0;
          dropped = 0;
          errors = 0;
          aborted = None;
          wait_total_us = 0;
          wait_max_us = 0;
          opseq = 0;
          arrival_us = t0;
          t_submitted = t0;
          t_exec_end = t0;
        })
      scripts
  in
  let m = Fsd.metrics fsd in
  let t =
    {
      fsd;
      clock = Cedar_disk.Device.clock (Fsd.device fsd);
      cfg = config;
      sessions;
      cursor = 0;
      last_durable = Fsd.durable_seq fsd;
      forces = 0;
      last_force_us = 0;
      acked_rev = [];
      commit_wait_us = Metrics.dist m "server.commit_wait_us";
      batch_size = Metrics.dist m "server.batch_size";
      c_reject_queue_full = Metrics.counter m "server.rejects.queue_full";
      c_reject_backpressure = Metrics.counter m "server.rejects.backpressure";
      c_retries = Metrics.counter m "server.retries";
      c_dropped = Metrics.counter m "server.dropped";
      c_acked = Metrics.counter m "server.acked";
      c_phase_queue_us = Metrics.counter m "server.phase.queue_us";
      c_phase_admission_us = Metrics.counter m "server.phase.admission_us";
      c_phase_execute_us = Metrics.counter m "server.phase.execute_us";
      c_phase_append_us = Metrics.counter m "server.phase.append_us";
      c_phase_parked_us = Metrics.counter m "server.phase.parked_us";
    }
  in
  Metrics.gauge m "server.queue_depth" (fun () -> parked_count t);
  t

let run t =
  let t0 = now t in
  let forces0 = (Fsd.counters t.fsd).Fsd.forces in
  let rec loop () =
    if not (all_done t) then begin
      (match next_runnable t with
      | Some s -> step t s
      | None ->
        if only_drain_left t then force_now t
        else Simclock.advance_to t.clock (next_event_time t));
      schedule_point t;
      loop ()
    end
  in
  loop ();
  let duration_us = now t - t0 in
  let log_forces = (Fsd.counters t.fsd).Fsd.forces - forces0 in
  let total f = Array.fold_left (fun n s -> n + f s) 0 t.sessions in
  let mutations_acked = total (fun s -> s.mutations) in
  let dist_or d f default = if Stats.n d = 0 then default else f d in
  {
    clients = Array.length t.sessions;
    duration_us;
    total_ops = total (fun s -> s.ops);
    mutations_acked;
    server_forces = t.forces;
    log_forces;
    ops_per_force =
      (if log_forces = 0 then 0.
       else float_of_int mutations_acked /. float_of_int log_forces);
    total_rejected = total (fun s -> s.rejected);
    reject_queue_full = Metrics.counter_value t.c_reject_queue_full;
    reject_backpressure = Metrics.counter_value t.c_reject_backpressure;
    total_retries = Metrics.counter_value t.c_retries;
    total_dropped = total (fun s -> s.dropped);
    total_errors = total (fun s -> s.errors);
    total_aborted = total (fun s -> if s.aborted = None then 0 else 1);
    wait_n = Stats.n t.commit_wait_us;
    wait_mean_us = dist_or t.commit_wait_us Stats.mean 0.;
    wait_p50_us = dist_or t.commit_wait_us (fun d -> Stats.percentile d 0.50) 0.;
    wait_p99_us = dist_or t.commit_wait_us (fun d -> Stats.percentile d 0.99) 0.;
    wait_max_us = dist_or t.commit_wait_us Stats.max 0.;
    batch_n = Stats.n t.batch_size;
    batch_mean = dist_or t.batch_size Stats.mean 0.;
    batch_max = dist_or t.batch_size Stats.max 0.;
    per_session =
      Array.to_list
        (Array.map
           (fun s ->
             {
               r_client = s.client;
               r_ops = s.ops;
               r_mutations = s.mutations;
               r_rejected = s.rejected;
               r_dropped = s.dropped;
               r_errors = s.errors;
               r_aborted = s.aborted;
               r_wait_total_us = s.wait_total_us;
               r_wait_max_us = s.wait_max_us;
             })
           t.sessions);
  }

let serve ?config fsd scripts = run (create ?config fsd scripts)

let acked t = List.rev t.acked_rev

type outcome = Completed of report | Crashed of { sector : int }

let run_to_crash t =
  match run t with
  | r -> Completed r
  | exception Cedar_disk.Device.Crash_during_write { sector } ->
    Crashed { sector }

(* Deterministic rendering: field order is fixed here, sessions are in
   client order, so byte-identical reports mean identical runs. *)
let report_json r =
  let session s =
    Jsonb.Obj
      [
        ("client", Jsonb.Int s.r_client);
        ("ops", Jsonb.Int s.r_ops);
        ("mutations", Jsonb.Int s.r_mutations);
        ("rejected", Jsonb.Int s.r_rejected);
        ("dropped", Jsonb.Int s.r_dropped);
        ("errors", Jsonb.Int s.r_errors);
        ( "aborted",
          match s.r_aborted with None -> Jsonb.Null | Some e -> Jsonb.Str e );
        ("wait_total_us", Jsonb.Int s.r_wait_total_us);
        ("wait_max_us", Jsonb.Int s.r_wait_max_us);
      ]
  in
  Jsonb.Obj
    [
      ("clients", Jsonb.Int r.clients);
      ("duration_us", Jsonb.Int r.duration_us);
      ("total_ops", Jsonb.Int r.total_ops);
      ("mutations_acked", Jsonb.Int r.mutations_acked);
      ("server_forces", Jsonb.Int r.server_forces);
      ("log_forces", Jsonb.Int r.log_forces);
      ("ops_per_force", Jsonb.Float r.ops_per_force);
      ("rejected", Jsonb.Int r.total_rejected);
      ("rejects_queue_full", Jsonb.Int r.reject_queue_full);
      ("rejects_backpressure", Jsonb.Int r.reject_backpressure);
      ("retries", Jsonb.Int r.total_retries);
      ("dropped", Jsonb.Int r.total_dropped);
      ("errors", Jsonb.Int r.total_errors);
      ("aborted", Jsonb.Int r.total_aborted);
      ( "commit_wait_us",
        Jsonb.Obj
          [
            ("n", Jsonb.Int r.wait_n);
            ("mean", Jsonb.Float r.wait_mean_us);
            ("p50", Jsonb.Float r.wait_p50_us);
            ("p99", Jsonb.Float r.wait_p99_us);
            ("max", Jsonb.Float r.wait_max_us);
          ] );
      ( "batch_size",
        Jsonb.Obj
          [
            ("n", Jsonb.Int r.batch_n);
            ("mean", Jsonb.Float r.batch_mean);
            ("max", Jsonb.Float r.batch_max);
          ] );
      ("sessions", Jsonb.Arr (List.map session r.per_session));
    ]
