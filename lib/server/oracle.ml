(* The recovery oracle: a version-aware model of what a volume must
   contain after replaying a prefix of a client's mutating operations.

   The crash sweep's original model was a flat name -> latest-create
   map, which is exact only for workloads that never reuse a name. The
   churn workload re-creates live names on purpose — each create pushes
   a new version and the file system truncates to the entry's [keep] —
   so the model here is a per-name version stack:

   - [Mcreate] pushes (bytes, fill) and truncates the stack to [keep]
     newest (keep 0 = unlimited), mirroring [Fsd.enforce_keep];
   - [Mdelete] pops the newest version, exposing the previous one.

   A volume matches a state when, for every name the workload ever
   touches: the name exists iff its stack is non-empty, its live
   version count equals the stack depth, and its newest content is
   byte-equal to the top of the stack. For unique-name workloads this
   degenerates to the old flat model, so the sweep's reference script
   is checked by the same code. *)

open Cedar_fsd
open Cedar_workload

type mut =
  | Mcreate of { name : string; bytes : int; fill : int }
  | Mdelete of string

let mut_of_op = function
  | Concurrent.Create { name; bytes; fill } -> Some (Mcreate { name; bytes; fill })
  | Concurrent.Delete name -> Some (Mdelete name)
  | Concurrent.Open _ | Concurrent.Read _ | Concurrent.Read_page _
  | Concurrent.List _ | Concurrent.Force ->
    None

let muts_of_script script =
  List.filter_map
    (function
      | Concurrent.Op op -> mut_of_op op
      | Concurrent.Think _ | Concurrent.At _ -> None)
    script

let mut_name = function Mcreate { name; _ } -> name | Mdelete name -> name

let mut_names muts = List.sort_uniq String.compare (List.map mut_name muts)

(* name -> (bytes, fill) versions, newest first. Absent and [] mean the
   same thing: no live version. *)
type state = (string, (int * int) list) Hashtbl.t

let truncate_keep keep stack =
  if keep <= 0 then stack
  else begin
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | v :: rest -> v :: take (n - 1) rest
    in
    take keep stack
  end

let apply_mut ~keep (tbl : state) = function
  | Mcreate { name; bytes; fill } ->
    let stack = Option.value (Hashtbl.find_opt tbl name) ~default:[] in
    Hashtbl.replace tbl name (truncate_keep keep ((bytes, fill) :: stack))
  | Mdelete name -> (
    match Hashtbl.find_opt tbl name with
    | Some (_ :: rest) -> Hashtbl.replace tbl name rest
    | Some [] | None ->
      (* The workload generators never delete a dead name; modelling it
         as a no-op keeps the oracle total anyway. *)
      ())

let state_after ~keep muts i =
  let tbl : state = Hashtbl.create 13 in
  List.iteri (fun j m -> if j < i then apply_mut ~keep tbl m) muts;
  tbl

let expected_stack (tbl : state) name =
  Option.value (Hashtbl.find_opt tbl name) ~default:[]

let actual_file fs ~name =
  if not (Fsd.exists fs ~name) then Ok None
  else
    match Fsd.read_all fs ~name with
    | b -> Ok (Some b)
    | exception e -> Error (Printexc.to_string e)

(* Every discrepancy between the volume and [state] over [names], as
   human-readable strings; [] means the volume matches. *)
let diff fs (state : state) names =
  List.concat_map
    (fun name ->
      let want = expected_stack state name in
      match (actual_file fs ~name, want) with
      | Ok None, [] -> []
      | Ok None, _ :: _ ->
        [ Printf.sprintf "%s missing (want %d version(s))" name (List.length want) ]
      | Ok (Some _), [] -> [ Printf.sprintf "%s present, want absent" name ]
      | Ok (Some b), (bytes, fill) :: _ ->
        let content =
          if Bytes.equal b (Concurrent.content ~fill bytes) then []
          else [ Printf.sprintf "%s newest content is wrong" name ]
        in
        let live = List.length (Fsd.versions fs ~name) in
        let depth =
          if live = List.length want then []
          else
            [
              Printf.sprintf "%s has %d live version(s), want %d" name live
                (List.length want);
            ]
        in
        content @ depth
      | Error m, _ -> [ Printf.sprintf "%s unreadable: %s" name m ])
    names

let matches_prefix fs ~keep muts names i =
  diff fs (state_after ~keep muts i) names = []

(* Deterministic digest of everything recovery is responsible for:
   every name-table key plus the newest content of every name. Two
   boots of the same volume must produce equal digests — the
   convergence check behind "a record already written home must never
   be replayed into stale state". *)
let volume_digest fs =
  let entries =
    Fsd.fold_entries fs ~init:[] ~f:(fun acc ~name ~version _ ->
        (name, version) :: acc)
  in
  let names = List.sort_uniq String.compare (List.map fst entries) in
  let contents =
    List.map
      (fun name ->
        match actual_file fs ~name with
        | Ok (Some b) -> (name, Digest.bytes b)
        | Ok None -> (name, "")
        | Error m -> (name, "error:" ^ m))
      names
  in
  (List.sort compare entries, contents)
