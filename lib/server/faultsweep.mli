(** Systematic crash-injection sweep for the concurrent server path.

    A recording pass replays the deterministic
    {!Cedar_workload.Concurrent.crash_reference} workload once with a
    {!Cedar_disk.Crash_plan} attached to learn how many sector writes
    each force interval contains; {!sweep} then re-runs the identical
    workload once per (force interval × sector-write offset × tear mode)
    coordinate, kills the device at exactly that write, reboots via
    [Fsd.try_boot] (falling through to [Scavenge.run]), and checks the
    §5.4 contract: acked mutations present and byte-exact, unacked ones
    wholly absent (each client's recovered namespace must equal a
    mutation prefix no shorter than its acked count), the rebuilt VAM in
    agreement with the name table, and the black-box region decoding to
    exactly the last completed checkpoint generation. *)

type cfg = {
  clients : int;
  tears : Cedar_disk.Device.tear list;  (** modes run per crash point *)
  max_forces : int option;  (** sweep only force intervals [0 .. k-1] *)
  scavenge : bool;
      (** destroy both FNT copies before every reboot, forcing recovery
          through the scavenger (weakened oracle: scavenge legitimately
          resurrects unacked creates and acked deletes from leaders) *)
}

val default_cfg : cfg
(** 2 clients, every tear mode, all force intervals, no scavenging. *)

val all_tears : Cedar_disk.Device.tear list
(** [Tear_none], [Tear_zero], [Tear_garbage], [Tear_damage 1]. *)

val tear_name : Cedar_disk.Device.tear -> string
val tear_of_name : string -> Cedar_disk.Device.tear option
(** ["none"], ["zero"], ["garbage"], ["damage"]. *)

type path = Replay | Twin_repair | Scavenged
(** How a crashed volume came back: plain log replay, log replay that
    also repaired an FNT copy from its twin, or the scavenger. *)

type violation = {
  v_force : int;  (** force interval the crash was planted in *)
  v_write : int;  (** sector-write offset within the interval *)
  v_tear : string;
  v_what : string;
}

type summary = {
  sw_clients : int;
  sw_scavenge : bool;
  sw_writes_per_interval : int array;
  sw_points : int;  (** (interval, write) coordinates enumerated *)
  sw_runs : int;  (** crash runs executed (points × tear modes) *)
  sw_replay : int;
  sw_twin_repair : int;
  sw_scavenged : int;
  sw_violations : violation list;
}

val sweep : ?geom:Cedar_disk.Geometry.t -> cfg -> summary
(** Run the full sweep on fresh in-memory volumes ([Geometry.small_test]
    by default). Raises [Invalid_argument] if the reference workload
    does not replay clean, or on an empty tear list / non-positive
    client count. *)

val summary_json : summary -> Cedar_obs.Jsonb.t
(** Deterministic rendering, byte-identical across runs. *)

val pp : Format.formatter -> summary -> unit
