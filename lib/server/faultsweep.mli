(** Systematic crash-injection sweep for the concurrent server path.

    A recording pass replays the deterministic
    {!Cedar_workload.Concurrent.crash_reference} workload once with a
    {!Cedar_disk.Crash_plan} attached to learn how many sector writes
    each force interval contains; {!sweep} then re-runs the identical
    workload once per (force interval × sector-write offset × tear mode)
    coordinate, kills the device at exactly that write, reboots via
    [Fsd.try_boot] (falling through to [Scavenge.run]), and checks the
    §5.4 contract: acked mutations present and byte-exact, unacked ones
    wholly absent (each client's recovered namespace must equal a
    mutation prefix no shorter than its acked count), the rebuilt VAM in
    agreement with the name table, and the black-box region decoding to
    exactly the last completed checkpoint generation. *)

type workload =
  | Reference
      (** the unique-name [crash_reference] script; every force interval
          is swept *)
  | Wrap of Cedar_workload.Concurrent.churn_spec
      (** a churn workload sized to wrap the log; calibration records
          the third-entry count at each force, and only the intervals in
          the {e wrap window} — those in which the log entered a third,
          widened by one interval each side — are swept, so every crash
          lands during a home-write burst, the reclamation pointer
          rewrite, or an append on either side of the wrap *)

type cfg = {
  clients : int;
  tears : Cedar_disk.Device.tear list;  (** modes run per crash point *)
  max_forces : int option;  (** sweep only force intervals [0 .. k-1] *)
  scavenge : bool;
      (** destroy both FNT copies before every reboot, forcing recovery
          through the scavenger (weakened oracle: scavenge legitimately
          resurrects unacked creates and acked deletes from leaders; under
          [Wrap] churn it weakens further to structural soundness and
          no alien names, since churn deletes the witnesses) *)
  workload : workload;
}

val default_cfg : cfg
(** 2 clients, every tear mode, all force intervals, no scavenging,
    [Reference] workload. *)

val default_wrap_spec : Cedar_workload.Concurrent.churn_spec
(** A churn spec sized for [Geometry.tiny_test]: two clients' worth
    wraps the log more than once while keeping the sweep affordable. *)

val workload_name : workload -> string
(** ["reference"] or ["wrap"]. *)

val all_tears : Cedar_disk.Device.tear list
(** [Tear_none], [Tear_zero], [Tear_garbage], [Tear_damage 1]. *)

val tear_name : Cedar_disk.Device.tear -> string
val tear_of_name : string -> Cedar_disk.Device.tear option
(** ["none"], ["zero"], ["garbage"], ["damage"]. *)

type path = Replay | Twin_repair | Scavenged
(** How a crashed volume came back: plain log replay, log replay that
    also repaired an FNT copy from its twin, or the scavenger. *)

type violation = {
  v_force : int;  (** force interval the crash was planted in *)
  v_write : int;  (** sector-write offset within the interval *)
  v_tear : string;
  v_what : string;
}

type summary = {
  sw_clients : int;
  sw_workload : string;
  sw_scavenge : bool;
  sw_writes_per_interval : int array;
  sw_intervals : int list;  (** force intervals actually swept *)
  sw_points : int;  (** (interval, write) coordinates enumerated *)
  sw_runs : int;  (** crash runs executed (points × tear modes) *)
  sw_replay : int;
  sw_twin_repair : int;
  sw_scavenged : int;
  sw_violations : violation list;
}

val sweep : ?geom:Cedar_disk.Geometry.t -> cfg -> summary
(** Run the full sweep on fresh in-memory volumes
    ([Geometry.small_test] by default for [Reference],
    [Geometry.tiny_test] for [Wrap]). Every crash point additionally
    checks double-reboot convergence: after the post-crash oracle
    passes, the volume is cleanly shut down and rebooted, and that boot
    must replay zero records and reproduce the namespace byte-for-byte
    — a record whose images were already written home must never be
    replayed into stale state. Raises [Invalid_argument] if the
    workload does not replay clean (or, for [Wrap], never enters a
    third), or on an empty tear list / non-positive client count. *)

val summary_json : summary -> Cedar_obs.Jsonb.t
(** Deterministic rendering, byte-identical across runs. *)

val pp : Format.formatter -> summary -> unit
