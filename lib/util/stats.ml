type t = {
  mutable values : float list;
  mutable n : int;
  mutable total : float;
  mutable min : float;
  mutable max : float;
  mutable sorted : float array option; (* cache, invalidated by add *)
}

let create () =
  { values = []; n = 0; total = 0.0; min = infinity; max = neg_infinity; sorted = None }

let add t v =
  t.values <- v :: t.values;
  t.n <- t.n + 1;
  t.total <- t.total +. v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v;
  t.sorted <- None

let n t = t.n
let mean t = if t.n = 0 then 0.0 else t.total /. float_of_int t.n
let min t = t.min
let max t = t.max
let total t = t.total

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list t.values in
    Array.sort compare a;
    t.sorted <- Some a;
    a

let recent t k =
  (* values is newest-first, so the first [k] entries are the most
     recent additions (still newest-first). *)
  let rec take k = function
    | [] -> []
    | _ when k <= 0 -> []
    | v :: rest -> v :: take (k - 1) rest
  in
  take k t.values

let percentile t p =
  if t.n = 0 then invalid_arg "Stats.percentile: empty";
  let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
  let a = sorted t in
  (* Nearest-rank; p = 0.0 is defined as the minimum (rank 1). *)
  let idx = int_of_float (ceil (p *. float_of_int t.n)) - 1 in
  a.(Stdlib.max 0 (Stdlib.min (t.n - 1) idx))

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f"
      t.n (mean t) t.min (percentile t 0.5) (percentile t 0.95) t.max

module Histogram = struct
  type h = { width : int; counts : (int, int) Hashtbl.t }

  let create ~bucket_width =
    if bucket_width <= 0 then invalid_arg "Histogram.create";
    { width = bucket_width; counts = Hashtbl.create 16 }

  let add h v =
    let b = if v >= 0 then v / h.width else (v - h.width + 1) / h.width in
    Hashtbl.replace h.counts b (1 + Option.value ~default:0 (Hashtbl.find_opt h.counts b))

  let buckets h =
    Hashtbl.fold (fun b c acc -> (b * h.width, c) :: acc) h.counts []
    |> List.sort compare

  let pp ppf h =
    List.iter (fun (lo, c) -> Format.fprintf ppf "[%d,%d): %d@." lo (lo + h.width) c)
      (buckets h)
end
