(** Running statistics and simple histograms for the benchmark harness. *)

type t

val create : unit -> t
val add : t -> float -> unit
val n : t -> int
val mean : t -> float
val min : t -> float
val max : t -> float
val total : t -> float

val recent : t -> int -> float list
(** [recent t k] is the most recent [min k (n t)] values added, newest
    first. O(k); lets a sampler pull only the values added since its
    last visit. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0,1]; nearest-rank, so [percentile t 0.0]
    is the minimum and [percentile t 1.0] the maximum. Values of [p]
    outside [0,1] are clamped to the nearest bound. Raises
    [Invalid_argument] only on an empty series. *)

val pp : Format.formatter -> t -> unit

(** Fixed-bucket histogram over integers. *)
module Histogram : sig
  type h

  val create : bucket_width:int -> h
  val add : h -> int -> unit
  val buckets : h -> (int * int) list
  (** [(lower_bound, count)] for each non-empty bucket, ascending. *)

  val pp : Format.formatter -> h -> unit
end
