type t =
  | No_such_file of string
  | Bad_name of { name : string; reason : string }
  | Volume_full
  | Too_fragmented of string
  | Corrupt_metadata of string
  | Damaged_data of { name : string; sector : int }
  | Bad_page of { name : string; page : int }
  | Not_booted
  | Log_reclaim_stall of { third : int; pinned_pages : int }

exception Fs_error of t

let raise_ e = raise (Fs_error e)

let pp ppf = function
  | No_such_file n -> Format.fprintf ppf "no such file: %s" n
  | Bad_name { name; reason } -> Format.fprintf ppf "bad name %S: %s" name reason
  | Volume_full -> Format.fprintf ppf "volume full"
  | Too_fragmented n -> Format.fprintf ppf "file too fragmented: %s" n
  | Corrupt_metadata m -> Format.fprintf ppf "corrupt metadata: %s" m
  | Damaged_data { name; sector } ->
    Format.fprintf ppf "damaged sector %d in %s" sector name
  | Bad_page { name; page } -> Format.fprintf ppf "page %d out of range in %s" page name
  | Not_booted -> Format.fprintf ppf "file system not booted"
  | Log_reclaim_stall { third; pinned_pages } ->
    Format.fprintf ppf
      "cannot reclaim log third %d: %d modified page(s) hold no committed image"
      third pinned_pages

let to_string t = Format.asprintf "%a" pp t
