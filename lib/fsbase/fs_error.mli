(** Errors shared by every file-system implementation in the repository. *)

type t =
  | No_such_file of string
  | Bad_name of { name : string; reason : string }
  | Volume_full
  | Too_fragmented of string
      (** the file's run table no longer fits its metadata record *)
  | Corrupt_metadata of string
      (** structural damage that requires scavenge/fsck (CFS, BSD) *)
  | Damaged_data of { name : string; sector : int }
  | Bad_page of { name : string; page : int }
  | Not_booted
  | Log_reclaim_stall of { third : int; pinned_pages : int }
      (** a log third is due for reclamation but a dirty page pinned in
          the cache holds no committed image that could be written home;
          reclaiming would destroy the only durable copy (§4.4) *)

exception Fs_error of t

val raise_ : t -> 'a
val pp : Format.formatter -> t -> unit
val to_string : t -> string
