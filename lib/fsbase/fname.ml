let max_name_bytes = 100
let max_version = 999_999

let validate name =
  if String.length name = 0 then Error "empty name"
  else if String.length name > max_name_bytes then Error "name too long"
  else if
    String.exists (fun c -> c = '!' || Char.code c < 0x20 || Char.code c = 0x7f) name
  then Error "name contains '!' or control characters"
  else Ok ()

let key ~name ~version =
  if version < 1 || version > max_version then invalid_arg "Fname.key: version";
  (match validate name with
  | Ok () -> ()
  | Error m -> invalid_arg ("Fname.key: " ^ m));
  Printf.sprintf "%s!%06d" name version

let bounds ~name =
  (* '!' is 0x21 and '"' is 0x22, so this brackets exactly the keys of
     [name]'s versions; a longer name ("foo.txt" vs "foo") sorts outside. *)
  (name ^ "!", name ^ "\"")

let parse k =
  match String.rindex_opt k '!' with
  | None -> None
  | Some i ->
    let name = String.sub k 0 i in
    let v = String.sub k (i + 1) (String.length k - i - 1) in
    (match int_of_string_opt v with
    | Some version when version >= 1 && version <= max_version -> Some (name, version)
    | Some _ | None -> None)

let pp ppf (name, version) = Format.fprintf ppf "%s!%d" name version

(* FNV-1a, 32-bit. Stable across runs and OCaml versions by
   construction (no Hashtbl.hash, whose output is unspecified), which
   is what lets a rebooted volume re-derive the same shard for every
   name it logged. *)
let fnv1a s ~len =
  let h = ref 0x811c9dc5 in
  for i = 0 to len - 1 do
    h := (!h lxor Char.code s.[i]) * 0x01000193 land 0xffffffff
  done;
  !h

let shard_prefix name =
  match String.index_opt name '/' with
  | Some i when i > 0 -> i
  | Some _ | None -> String.length name

let shard ~shards name =
  if shards < 1 then invalid_arg "Fname.shard: shards < 1";
  if shards = 1 then 0 else fnv1a name ~len:(shard_prefix name) mod shards

(* The hash is not invertible, so probe "v<k>", "v<k>-1", ... until one
   routes to [k]. Expected probes: [shards]; each candidate is a fresh
   uniform draw, and the result is a pure function of (shards, k). *)
let shard_dir ~shards k =
  if k < 0 || k >= shards then invalid_arg "Fname.shard_dir: shard out of range";
  let rec find n =
    let d =
      if n = 0 then Printf.sprintf "v%d" k else Printf.sprintf "v%d-%d" k n
    in
    if shard ~shards d = k then d else find (n + 1)
  in
  find 0
