(** Cedar file names with versions ("name!version").

    The name table is keyed so that all versions of a name are contiguous
    and lexicographic key order equals (name, version-number) order; the
    newest version of a name is the greatest key below the name's upper
    bound. *)

val max_name_bytes : int

val validate : string -> (unit, string) result
(** A valid name is non-empty, at most {!max_name_bytes} bytes, and
    contains neither ['!'] nor control characters. *)

val key : name:string -> version:int -> string
(** B-tree key for a specific version. Versions are in [1, 999999]. *)

val bounds : name:string -> string * string
(** [(lo, hi)] such that a key belongs to [name] iff [lo <= key < hi]. *)

val parse : string -> (string * int) option
(** Inverse of {!key}. *)

val pp : Format.formatter -> string * int -> unit
(** Prints "name!version". *)

val shard : shards:int -> string -> int
(** Stable shard for [name] in [0, shards): FNV-1a over the name's
    first path component (up to but excluding the first ['/'], or the
    whole name when there is none — so "proj/a" and "proj/b" land on
    the same shard and keep any future cross-name ops within one
    volume's log). Deterministic across processes and reboots; raises
    [Invalid_argument] when [shards < 1]. [shard ~shards:1] is always
    0. *)

val shard_dir : shards:int -> int -> string
(** A top-level directory name that {!shard}-routes to shard [k]: the
    hash is not invertible, so this probes ["v<k>"], ["v<k>-1"],
    ["v<k>-2"], … and returns the first that lands on [k] —
    deterministic, so workload generators can place names on a chosen
    volume exactly. Raises [Invalid_argument] unless
    [0 <= k < shards]. *)
