(** Name-to-shard routing for a multi-volume file server.

    A shard map is pure configuration: the shard count. Routing hashes
    the file name's first path component ({!Cedar_fsbase.Fname.shard},
    FNV-1a), so the mapping is a stable function of the name alone —
    the same name lands on the same shard in every process, after every
    reboot, with no routing table to persist or recover. Names sharing
    a top-level directory land on the same shard, keeping any future
    multi-name operation within one volume's log. *)

type t

val max_shards : int
(** 256 — the log record header stores the shard id as one byte. *)

val create : shards:int -> t
(** Raises [Invalid_argument] outside [1, {!max_shards}]. *)

val shards : t -> int

val route : t -> string -> int
(** The shard (volume index) owning [name], in [0, shards). *)
