open Cedar_util
open Cedar_disk
open Cedar_fsd

type t = {
  map : Shard_map.t;
  vols : Fsd.t array;
  devices : Device.t array;
  clock : Simclock.t;
  metrics : Cedar_obs.Metrics.t; (* root registry, every volume visible *)
  trace : Cedar_obs.Trace.t;
}

let prefix ~count i = if count <= 1 then "" else Printf.sprintf "vol%d." i

let scoped_view ~count metrics i =
  let p = prefix ~count i in
  if p = "" then metrics else Cedar_obs.Metrics.scoped metrics p

let of_fsds ?metrics vols =
  let count = Array.length vols in
  if count = 0 then invalid_arg "Volume_set.of_fsds: empty";
  Array.iteri
    (fun i fs ->
      if Fsd.shard fs <> i then
        invalid_arg
          (Printf.sprintf "Volume_set.of_fsds: volume %d is shard %d" i
             (Fsd.shard fs)))
    vols;
  let devices = Array.map Fsd.device vols in
  let clock = Device.clock devices.(0) in
  let metrics =
    (* For one volume the device registry IS the root (no prefix
       anywhere — the historical names); for several the caller must
       hand us the root their scoped per-device views were cut from. *)
    match metrics with
    | Some m -> m
    | None ->
      if count > 1 then
        invalid_arg "Volume_set.of_fsds: multi-volume set needs ~metrics (root)";
      Device.metrics devices.(0)
  in
  {
    map = Shard_map.create ~shards:count;
    vols;
    devices;
    clock;
    metrics;
    trace = Device.trace devices.(0);
  }

let of_fsd fs = of_fsds [| fs |]

let create_fresh ?(geom = Geometry.trident_t300) ?params ?trace ?metrics ~clock
    count =
  if count < 1 || count > Shard_map.max_shards then
    invalid_arg "Volume_set.create_fresh: volume count out of range";
  let base = match params with Some p -> p | None -> Params.for_geometry geom in
  let trace = match trace with Some tr -> tr | None -> Cedar_obs.Trace.create () in
  let metrics =
    match metrics with Some m -> m | None -> Cedar_obs.Metrics.create ()
  in
  let devices =
    Array.init count (fun i ->
        let d =
          Device.create ~id:i ~trace
            ~metrics:(scoped_view ~count metrics i) ~clock geom
        in
        (* Several volumes = several spindles: deferred timing lets their
           commands overlap in simulated time instead of serialising on
           the shared clock (the single-volume case keeps the historical
           synchronous mode, byte-identical). *)
        if count > 1 then Device.set_deferred d true;
        d)
  in
  let vols =
    Array.mapi
      (fun i device ->
        Fsd.format device { base with Params.shard_id = i };
        let fs, _report = Fsd.boot device in
        (* Boot ran with default runtime knobs; the request-queue knobs
           live in [base], so apply them here. *)
        if base.Params.disk_qdepth > 0 then
          Device.set_queue device ~policy:base.Params.disk_sched
            ~depth:base.Params.disk_qdepth;
        fs)
      devices
  in
  { map = Shard_map.create ~shards:count; vols; devices; clock; metrics; trace }

let count t = Array.length t.vols
let map t = t.map
let vol t i = t.vols.(i)
let device t i = t.devices.(i)
let clock t = t.clock
let metrics t = t.metrics
let trace t = t.trace
let route t name = Shard_map.route t.map name
let metrics_prefix t i = prefix ~count:(count t) i

(* Reboot volume [i] in place (the caller just crash-recovered it). The
   replacement must have been booted from the same device so the scoped
   registry, trace and clock are unchanged — identity the set relies
   on. *)
let replace t i fs =
  if Fsd.device fs != t.devices.(i) then
    invalid_arg "Volume_set.replace: replacement booted from another device";
  if Fsd.shard fs <> i then
    invalid_arg "Volume_set.replace: replacement has the wrong shard id";
  t.vols.(i) <- fs

let iter f t = Array.iteri f t.vols
