type t = { shards : int }

let max_shards = 256

let create ~shards =
  if shards < 1 || shards > max_shards then
    invalid_arg
      (Printf.sprintf "Shard_map.create: shards must be in [1, %d]" max_shards);
  { shards }

let shards t = t.shards
let route t name = Cedar_fsbase.Fname.shard ~shards:t.shards name
