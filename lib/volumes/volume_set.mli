(** A set of independent Cedar volumes behind one front end.

    Each volume is a complete {!Cedar_fsd.Fsd.t}: its own device, its
    own log, its own group-commit batcher and demons. The set adds only
    what must be shared — the virtual clock every volume's device
    advances, one event trace, and one metrics root of which each
    device sees a ["volN."]-scoped view ({!Cedar_obs.Metrics.scoped}) so
    instrument names never collide. Nothing else couples the volumes:
    a crash, recovery, or scavenge of one cannot touch another, which
    is exactly why acked ⇒ durable stays a per-volume contract
    (DESIGN.md §17).

    The single-volume set is the degenerate case and is wired to be
    byte-identical to pre-volume-set behaviour: no prefix is applied to
    its registry, and the scheduler ordering in [lib/server] reduces to
    the historical single-FSD loop. *)

type t

val create_fresh :
  ?geom:Cedar_disk.Geometry.t ->
  ?params:Cedar_fsd.Params.t ->
  ?trace:Cedar_obs.Trace.t ->
  ?metrics:Cedar_obs.Metrics.t ->
  clock:Cedar_util.Simclock.t ->
  int ->
  t
(** [create_fresh ~clock n] formats and boots [n] fresh in-memory
    volumes on [geom] (default trident_t300), volume [i] formatted with
    [shard_id = i] ([params] supplies the other knobs; default
    {!Cedar_fsd.Params.for_geometry}). All devices share [clock],
    [trace] and scoped views of [metrics] (fresh ones when omitted).
    Raises [Invalid_argument] when [n] is outside
    [1, {!Shard_map.max_shards}]. *)

val of_fsd : Cedar_fsd.Fsd.t -> t
(** Wrap one already-booted volume (which must be shard 0) — the
    degenerate set [Server.create] uses. *)

val of_fsds : ?metrics:Cedar_obs.Metrics.t -> Cedar_fsd.Fsd.t array -> t
(** Wrap already-booted volumes; volume [i] must be shard [i]. For more
    than one volume, [metrics] (the root registry the per-device scoped
    views were cut from) is required. Raises [Invalid_argument] on an
    empty array, a shard mismatch, or a missing root. *)

val count : t -> int
val map : t -> Shard_map.t

val route : t -> string -> int
(** The volume index owning a file name ({!Shard_map.route}). *)

val vol : t -> int -> Cedar_fsd.Fsd.t
val device : t -> int -> Cedar_disk.Device.t
val clock : t -> Cedar_util.Simclock.t

val metrics : t -> Cedar_obs.Metrics.t
(** The root registry: single-volume instruments under their historical
    unprefixed names, multi-volume ones under ["volN."] prefixes. *)

val trace : t -> Cedar_obs.Trace.t

val metrics_prefix : t -> int -> string
(** ["volN."] for volume [N] of a multi-volume set, [""] for the
    single-volume degenerate case — the compatibility view contract. *)

val replace : t -> int -> Cedar_fsd.Fsd.t -> unit
(** Swap in a freshly rebooted [Fsd.t] for volume [i] after crash
    recovery. The replacement must be booted from the same device (so
    clock/trace/scoped registry are unchanged) and carry shard id [i];
    raises [Invalid_argument] otherwise. *)

val iter : (int -> Cedar_fsd.Fsd.t -> unit) -> t -> unit
