(* Unit tests for FSD's supporting modules: Params, Layout, Vam, Alloc,
   Leader, Boot_page, Fnt_store. *)

open Cedar_util
open Cedar_disk
open Cedar_fsbase
open Cedar_fsd

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let geom = Geometry.small_test
let params () = Params.for_geometry geom
let layout () = Layout.compute geom (params ())

let mk_device () = Device.create ~clock:(Simclock.create ()) geom

(* ------------------------------------------------------------------ *)
(* Params                                                              *)

let test_params_default_valid () =
  check bool "t300 default" true
    (Params.validate Geometry.trident_t300 Params.default = Ok ());
  check bool "small scaled" true (Params.validate geom (params ()) = Ok ());
  check bool "tiny scaled" true
    (Params.validate Geometry.tiny_test (Params.for_geometry Geometry.tiny_test) = Ok ())

let test_params_rejects_tiny_log () =
  let p = { (params ()) with Params.log_sectors = 10 } in
  check bool "log too small" true (Result.is_error (Params.validate geom p))

let test_params_rejects_huge_metadata () =
  let p = { (params ()) with Params.fnt_pages = 100_000 } in
  check bool "metadata too big" true (Result.is_error (Params.validate geom p))

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)

let test_layout_regions_disjoint () =
  let l = layout () in
  let total = Geometry.total_sectors geom in
  (* Every sector belongs to exactly one region. *)
  let tag s =
    let in_range lo len = s >= lo && s < lo + len in
    let tags =
      [
        ("boot", s <= 2);
        ("blackbox", in_range l.Layout.blackbox_start l.Layout.blackbox_sectors);
        ("vam", in_range l.Layout.vam_start l.Layout.vam_sectors);
        ("small", s >= l.Layout.small_lo && s < l.Layout.small_hi);
        ("fntA", in_range l.Layout.fnt_a_start l.Layout.fnt_sectors);
        ("log", in_range l.Layout.log_start l.Layout.log_sectors);
        ("fntB", in_range l.Layout.fnt_b_start l.Layout.fnt_sectors);
        ("big", s >= l.Layout.big_lo && s < l.Layout.big_hi);
      ]
    in
    List.filter_map (fun (n, b) -> if b then Some n else None) tags
  in
  for s = 0 to total - 1 do
    match tag s with
    | [ _ ] -> ()
    | ts ->
      Alcotest.fail
        (Printf.sprintf "sector %d in %d regions (%s)" s (List.length ts)
           (String.concat "," ts))
  done

let test_layout_fnt_copies_disjoint_and_far () =
  let l = layout () in
  let p = l.Layout.params in
  for page = 0 to p.Params.fnt_pages - 1 do
    let a = Layout.fnt_sector_a l ~page and b = Layout.fnt_sector_b l ~page in
    if abs (a - b) <= l.Layout.log_sectors then
      Alcotest.fail "copies too close: the log must separate them"
  done

let test_layout_data_sector_predicate () =
  let l = layout () in
  check bool "small area is data" true (Layout.is_data_sector l l.Layout.small_lo);
  check bool "big area is data" true (Layout.is_data_sector l (l.Layout.big_hi - 1));
  check bool "log is not" false (Layout.is_data_sector l l.Layout.log_start);
  check bool "fnt is not" false (Layout.is_data_sector l l.Layout.fnt_a_start);
  check bool "boot is not" false (Layout.is_data_sector l 0)

(* ------------------------------------------------------------------ *)
(* Vam                                                                 *)

let test_vam_alloc_release () =
  let v = Vam.create_all_free (layout ()) in
  let l = layout () in
  let free0 = Vam.free_count v in
  check int "all data sectors free" (Layout.data_sectors l) free0;
  Vam.allocate_run v ~pos:l.Layout.small_lo ~len:5;
  check int "five gone" (free0 - 5) (Vam.free_count v);
  (match Vam.allocate_run v ~pos:l.Layout.small_lo ~len:1 with
  | () -> Alcotest.fail "double allocation must fail"
  | exception Invalid_argument _ -> ());
  Vam.release_run v ~pos:l.Layout.small_lo ~len:5;
  check int "restored" free0 (Vam.free_count v);
  match Vam.release_run v ~pos:l.Layout.small_lo ~len:1 with
  | () -> Alcotest.fail "double free must fail"
  | exception Invalid_argument _ -> ()

let test_vam_shadow_commit () =
  let v = Vam.create_all_free (layout ()) in
  let l = layout () in
  Vam.allocate_run v ~pos:l.Layout.small_lo ~len:8;
  let free1 = Vam.free_count v in
  Vam.shadow_release_run v ~pos:l.Layout.small_lo ~len:8;
  check int "not yet free" free1 (Vam.free_count v);
  check int "shadowed" 8 (Vam.shadow_count v);
  Vam.commit_shadow v;
  check int "free after commit" (free1 + 8) (Vam.free_count v);
  check int "shadow drained" 0 (Vam.shadow_count v)

let test_vam_save_load_roundtrip () =
  let device = mk_device () in
  let l = layout () in
  let v = Vam.create_all_free l in
  Vam.allocate_run v ~pos:l.Layout.small_lo ~len:13;
  Vam.save v device;
  (match Vam.load l device with
  | Some (v', Vam.Snapshot, _) ->
    check int "same free count" (Vam.free_count v) (Vam.free_count v')
  | Some (_, Vam.Log_based, _) -> Alcotest.fail "default mode must be Snapshot"
  | None -> Alcotest.fail "clean save must load");
  Vam.invalidate_saved l device;
  match Vam.load l device with
  | None -> ()
  | Some _ -> Alcotest.fail "invalidated save must not load"

let test_vam_load_rejects_damage () =
  let device = mk_device () in
  let l = layout () in
  Vam.save (Vam.create_all_free l) device;
  Device.damage device (l.Layout.vam_start + 1);
  match Vam.load l device with
  | None -> ()
  | Some _ -> Alcotest.fail "damaged body must not load"

(* ------------------------------------------------------------------ *)
(* Alloc                                                               *)

let test_alloc_small_in_small_area () =
  let l = layout () in
  let a = Alloc.create (Vam.create_all_free l) in
  match Alloc.allocate a ~sectors:4 ~small:true with
  | Ok [ r ] ->
    check bool "in small area" true
      (r.Run_table.start >= l.Layout.small_lo && r.Run_table.start < l.Layout.small_hi)
  | Ok _ -> Alcotest.fail "expected one run"
  | Error _ -> Alcotest.fail "allocation failed"

let test_alloc_big_from_top () =
  let l = layout () in
  let a = Alloc.create (Vam.create_all_free l) in
  match Alloc.allocate a ~sectors:64 ~small:false with
  | Ok [ r ] ->
    check bool "in big area" true (r.Run_table.start >= l.Layout.big_lo);
    check int "flush against the top" l.Layout.big_hi (r.Run_table.start + r.Run_table.len)
  | Ok _ -> Alcotest.fail "expected one run"
  | Error _ -> Alcotest.fail "allocation failed"

let test_alloc_spills_to_other_area () =
  let l = layout () in
  let v = Vam.create_all_free l in
  let a = Alloc.create v in
  (* exhaust the small area *)
  let small_len = l.Layout.small_hi - l.Layout.small_lo in
  Vam.allocate_run v ~pos:l.Layout.small_lo ~len:small_len;
  match Alloc.allocate a ~sectors:4 ~small:true with
  | Ok [ r ] -> check bool "spilled to big" true (r.Run_table.start >= l.Layout.big_lo)
  | Ok _ | Error _ -> Alcotest.fail "expected a spill allocation"

let test_alloc_volume_full () =
  let l = layout () in
  let v = Vam.create_all_free l in
  let a = Alloc.create v in
  let rec drain () =
    match Alloc.allocate a ~sectors:64 ~small:true with
    | Ok _ -> drain ()
    | Error `Volume_full -> ()
    | Error `Too_fragmented -> Alcotest.fail "unexpected fragmentation"
  in
  drain ();
  check bool "under 64 left" true (Vam.free_count v < 64)

let test_alloc_fragments_when_needed () =
  let l = layout () in
  let v = Vam.create_all_free l in
  let a = Alloc.create v in
  (* Perforate the small area so no run of 8 exists there, and consume
     the big area entirely. *)
  let s = ref l.Layout.small_lo in
  while !s + 4 <= l.Layout.small_hi do
    Vam.allocate_run v ~pos:!s ~len:4;
    s := !s + 8
  done;
  Vam.allocate_run v ~pos:l.Layout.big_lo ~len:(l.Layout.big_hi - l.Layout.big_lo);
  match Alloc.allocate a ~sectors:12 ~small:true with
  | Ok runs ->
    check bool "multiple runs" true (List.length runs > 1);
    check int "right total" 12
      (List.fold_left (fun acc r -> acc + r.Run_table.len) 0 runs)
  | Error _ -> Alcotest.fail "fragmented allocation should succeed"

(* ------------------------------------------------------------------ *)
(* Leader                                                              *)

let sample_entry =
  Entry.local ~uid:31337L ~keep:2 ~byte_size:4_000 ~created:777
    ~runs:(Run_table.of_runs [ { Run_table.start = 5_000; len = 8 } ])
    ~anchor:4_999

let test_leader_roundtrip () =
  let l = Leader.of_entry ~name:"dir/sample" ~version:3 sample_entry in
  let b = Leader.encode l ~sector_bytes:512 in
  check int "one sector" 512 (Bytes.length b);
  match Leader.decode b with
  | Some l' ->
    check bool "matches entry" true
      (Leader.matches l' ~name:"dir/sample" ~version:3 sample_entry);
    check bool "same" true (l = l');
    check bool "entry rebuilt" true
      (Entry.equal (Leader.to_entry l' ~anchor:4_999) sample_entry)
  | None -> Alcotest.fail "decode failed"

let test_leader_mismatch_detected () =
  let l = Leader.of_entry ~name:"dir/sample" ~version:3 sample_entry in
  let other = { sample_entry with Entry.uid = 99L } in
  check bool "uid mismatch" false
    (Leader.matches l ~name:"dir/sample" ~version:3 other);
  check bool "name mismatch" false
    (Leader.matches l ~name:"dir/other" ~version:3 sample_entry);
  check bool "version mismatch" false
    (Leader.matches l ~name:"dir/sample" ~version:4 sample_entry);
  let grown =
    { sample_entry with
      Entry.runs = Run_table.of_runs [ { Run_table.start = 5_000; len = 9 } ]
    }
  in
  check bool "run-table change detected" false
    (Leader.matches l ~name:"dir/sample" ~version:3 grown)

let test_leader_garbage_rejected () =
  check bool "zeros" true (Leader.decode (Bytes.make 512 '\000') = None);
  let b =
    Leader.encode
      (Leader.of_entry ~name:"dir/sample" ~version:3 sample_entry)
      ~sector_bytes:512
  in
  Bytes.set b 9 'X';
  check bool "bitflip" true (Leader.decode b = None)

(* ------------------------------------------------------------------ *)
(* Boot page                                                           *)

let test_boot_page_roundtrip () =
  let device = mk_device () in
  let bp =
    {
      Boot_page.boot_count = 7;
      clean_shutdown = true;
      fnt_page_sectors = 2;
      fnt_pages = 80;
      log_sectors = 642;
      log_vam = true;
      track_tolerant_log = false;
      shard_id = 3;
    }
  in
  Boot_page.write device ~sector_bytes:512 bp;
  (match Boot_page.read device with
  | Some bp' -> check bool "roundtrip" true (bp = bp')
  | None -> Alcotest.fail "read failed");
  (* the replica carries it through primary damage *)
  Device.damage device 0;
  match Boot_page.read device with
  | Some bp' -> check bool "replica" true (bp = bp')
  | None -> Alcotest.fail "replica failed"

(* ------------------------------------------------------------------ *)
(* Fnt_store                                                           *)

let mk_store () =
  let device = mk_device () in
  let l = layout () in
  let s = Fnt_store.create_fresh device l in
  Fnt_store.flush_anchor s;
  (device, l, s)

let page_payload s c = Bytes.make (Fnt_store.page_bytes s) c

let test_store_write_is_cached_not_on_disk () =
  let device, _, s = mk_store () in
  let before = (Device.stats device).Iostats.writes in
  let page = Fnt_store.alloc s in
  Fnt_store.write s page (page_payload s 'z');
  check int "no disk writes yet" before (Device.stats device).Iostats.writes;
  check bool "page dirty" true (List.mem page (Fnt_store.dirty_pages s));
  check bool "to log" true (List.mem page (Fnt_store.pages_to_log s))

let test_store_flush_writes_both_copies () =
  let device, l, s = mk_store () in
  let page = Fnt_store.alloc s in
  Fnt_store.write s page (page_payload s 'q');
  Fnt_store.mark_logged s [ page ] ~third:1;
  check int "one page flushed" 1 (Fnt_store.flush_third s 1) ;
  (* fresh store reads it back from either copy *)
  let s2 = Fnt_store.attach device l in
  check bool "content back" true
    (Bytes.equal (page_payload s 'q') (Fnt_store.read s2 page))

let test_store_repairs_bad_copy () =
  let device, l, s = mk_store () in
  let page = Fnt_store.alloc s in
  Fnt_store.write s page (page_payload s 'r');
  Fnt_store.mark_logged s [ page ] ~third:0;
  ignore (Fnt_store.flush_third s 0 : int);
  Device.damage device (Layout.fnt_sector_a l ~page);
  let s2 = Fnt_store.attach device l in
  check bool "read heals" true (Bytes.equal (page_payload s 'r') (Fnt_store.read s2 page));
  check bool "repair counted" true (Fnt_store.repairs s2 > 0);
  check bool "copy A healed" false (Device.is_damaged device (Layout.fnt_sector_a l ~page))

let test_store_both_copies_bad_raises () =
  let device, l, s = mk_store () in
  let page = Fnt_store.alloc s in
  Fnt_store.write s page (page_payload s 'x');
  ignore (Fnt_store.flush_all_dirty s : int);
  Device.damage device (Layout.fnt_sector_a l ~page);
  Device.damage device (Layout.fnt_sector_b l ~page);
  let s2 = Fnt_store.attach device l in
  match Fnt_store.read s2 page with
  | _ -> Alcotest.fail "expected Corrupt_metadata"
  | exception Fs_error.Fs_error (Fs_error.Corrupt_metadata _) -> ()

let test_store_modified_tracking () =
  let _, _, s = mk_store () in
  let page = Fnt_store.alloc s in
  Fnt_store.write s page (page_payload s 'a');
  Fnt_store.mark_logged s [ page ] ~third:2;
  check bool "logged page not re-logged" false (List.mem page (Fnt_store.pages_to_log s));
  check bool "still dirty" true (List.mem page (Fnt_store.dirty_pages s));
  Fnt_store.write s page (page_payload s 'b');
  check bool "modified again -> re-log" true (List.mem page (Fnt_store.pages_to_log s))

let test_store_uid_and_anchor_persist () =
  let device, l, s = mk_store () in
  let u1 = Fnt_store.fresh_uid s in
  let u2 = Fnt_store.fresh_uid s in
  check bool "uids distinct" true (u1 <> u2);
  Fnt_store.set_root s (Some 17);
  ignore (Fnt_store.flush_all_dirty s : int);
  let s2 = Fnt_store.attach device l in
  check (Alcotest.option int) "root persisted" (Some 17) (Fnt_store.get_root s2);
  check bool "uid counter persisted" true
    (Int64.compare (Fnt_store.next_uid_peek s2) u2 > 0)

let test_store_free_page_reusable () =
  let _, _, s = mk_store () in
  let p1 = Fnt_store.alloc s in
  Fnt_store.write s p1 (page_payload s 'f');
  Fnt_store.free s p1;
  check bool "freed page not dirty" false (List.mem p1 (Fnt_store.dirty_pages s));
  let p2 = Fnt_store.alloc s in
  check int "slot reused" p1 p2

let suite =
  [
    ("params: defaults valid", `Quick, test_params_default_valid);
    ("params: tiny log rejected", `Quick, test_params_rejects_tiny_log);
    ("params: huge metadata rejected", `Quick, test_params_rejects_huge_metadata);
    ("layout: regions partition the disk", `Quick, test_layout_regions_disjoint);
    ("layout: FNT copies separated by the log", `Quick, test_layout_fnt_copies_disjoint_and_far);
    ("layout: data-sector predicate", `Quick, test_layout_data_sector_predicate);
    ("vam: alloc/release", `Quick, test_vam_alloc_release);
    ("vam: shadow commit", `Quick, test_vam_shadow_commit);
    ("vam: save/load roundtrip", `Quick, test_vam_save_load_roundtrip);
    ("vam: damaged save rejected", `Quick, test_vam_load_rejects_damage);
    ("alloc: small files low", `Quick, test_alloc_small_in_small_area);
    ("alloc: big files from the top", `Quick, test_alloc_big_from_top);
    ("alloc: areas are only hints", `Quick, test_alloc_spills_to_other_area);
    ("alloc: volume full", `Quick, test_alloc_volume_full);
    ("alloc: fragments when needed", `Quick, test_alloc_fragments_when_needed);
    ("leader: roundtrip + matches", `Quick, test_leader_roundtrip);
    ("leader: mismatch detected", `Quick, test_leader_mismatch_detected);
    ("leader: garbage rejected", `Quick, test_leader_garbage_rejected);
    ("boot page: roundtrip + replica", `Quick, test_boot_page_roundtrip);
    ("store: writes cached, not on disk", `Quick, test_store_write_is_cached_not_on_disk);
    ("store: flush writes both copies", `Quick, test_store_flush_writes_both_copies);
    ("store: bad copy repaired on read", `Quick, test_store_repairs_bad_copy);
    ("store: both copies bad raises", `Quick, test_store_both_copies_bad_raises);
    ("store: modified-since-log tracking", `Quick, test_store_modified_tracking);
    ("store: uid/anchor persist", `Quick, test_store_uid_and_anchor_persist);
    ("store: freed page reusable", `Quick, test_store_free_page_reusable);
  ]
