(* Systematic fault sweeps: instead of sampling crash points, enumerate
   them. For a fixed workload we crash after every possible number of
   written sectors and require recovery to be all-or-nothing each time;
   and we damage every sector of a log record (singly and in adjacent
   pairs) and require the copies to carry it. *)

open Cedar_util
open Cedar_disk
open Cedar_fsd

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let geom = Geometry.tiny_test

let content n seed = Bytes.init n (fun i -> Char.chr ((i + seed) mod 251))

let fresh () =
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  let p = Params.for_geometry geom in
  Fsd.format device p;
  (device, fst (Fsd.boot device))

(* ------------------------------------------------------------------ *)
(* Crash after exactly N written sectors, for every N the workload can
   produce. The committed prefix must survive; the file system must be
   structurally sound; and no state may be "half" visible. *)

let crash_sweep_workload fs =
  ignore (Fsd.create fs ~name:"a" (content 700 1));
  Fsd.force fs;
  ignore (Fsd.create fs ~name:"b" (content 1400 2));
  Fsd.force fs;
  Fsd.delete fs ~name:"a";
  Fsd.force fs;
  ignore (Fsd.create fs ~name:"c" (content 300 3));
  Fsd.force fs

let sectors_in_workload () =
  let device, fs = fresh () in
  let before = (Device.stats device).Iostats.sectors_written in
  crash_sweep_workload fs;
  (Device.stats device).Iostats.sectors_written - before

let test_crash_after_every_sector () =
  let total = sectors_in_workload () in
  check bool "workload writes something" true (total > 10);
  for cut = 0 to total - 1 do
    let device, fs = fresh () in
    Device.plan_write_crash device ~after_sectors:cut ~damage_tail:((cut mod 2) + 1);
    (match crash_sweep_workload fs with
    | () -> Alcotest.failf "cut %d: expected a crash" cut
    | exception Device.Crash_during_write _ -> ());
    let fs2, _ = Fsd.boot device in
    (match Fsd.check fs2 with
    | Ok () -> ()
    | Error m -> Alcotest.failf "cut %d: recovered volume corrupt: %s" cut m);
    (* Whatever survived must be internally consistent: any visible file
       must read back exactly its creation contents. *)
    let expect = [ ("a", content 700 1); ("b", content 1400 2); ("c", content 300 3) ] in
    List.iter
      (fun (name, data) ->
        if Fsd.exists fs2 ~name then
          if not (Bytes.equal data (Fsd.read_all fs2 ~name)) then
            Alcotest.failf "cut %d: %s readable but wrong" cut name)
      expect;
    (* Commit ordering: c committed implies the delete of a committed,
       which implies b committed, which implies a was committed first. *)
    let a = Fsd.exists fs2 ~name:"a" and b = Fsd.exists fs2 ~name:"b" in
    let c = Fsd.exists fs2 ~name:"c" in
    if c && a then Alcotest.failf "cut %d: c present but a not deleted" cut;
    if c && not b then Alcotest.failf "cut %d: c present without b" cut
  done

(* The same sweep with the VAM-logging extension switched on. *)
let test_crash_sweep_with_vam_logging () =
  let p = { (Params.for_geometry geom) with Params.log_vam = true } in
  let fresh () =
    let clock = Simclock.create () in
    let device = Device.create ~clock geom in
    Fsd.format device p;
    (device, fst (Fsd.boot ~params:p device))
  in
  let total =
    let device, fs = fresh () in
    let before = (Device.stats device).Iostats.sectors_written in
    crash_sweep_workload fs;
    ignore device;
    (Device.stats (Fsd.device fs)).Iostats.sectors_written - before
  in
  for cut = 0 to total - 1 do
    let device, fs = fresh () in
    Device.plan_write_crash device ~after_sectors:cut ~damage_tail:1;
    (match crash_sweep_workload fs with
    | () -> Alcotest.failf "cut %d: expected a crash" cut
    | exception Device.Crash_during_write _ -> ());
    let fs2, report = Fsd.boot ~params:p device in
    (match Fsd.check fs2 with
    | Ok () -> ()
    | Error m -> Alcotest.failf "cut %d: corrupt: %s" cut m);
    (* the replayed/reconstructed map must agree with a from-scratch
       reconstruction *)
    let free_now = Fsd.free_sectors fs2 in
    let p_off = { p with Params.log_vam = false } in
    let fs3, _ = Fsd.boot ~params:p_off device in
    if free_now <> Fsd.free_sectors fs3 then
      Alcotest.failf "cut %d: replayed map (%d free) != rebuilt map (%d free, src %s)"
        cut free_now (Fsd.free_sectors fs3)
        (match report.Fsd.vam_source with
        | Fsd.Vam_replayed -> "replayed"
        | Fsd.Vam_reconstructed -> "rebuilt"
        | Fsd.Vam_loaded -> "loaded")
  done

(* ------------------------------------------------------------------ *)
(* Damage every sector of a committed log record — singly and in
   adjacent pairs — and require full recovery from the copies. *)

let test_record_survives_any_single_or_double_damage () =
  let layout =
    Layout.compute geom (Params.for_geometry geom)
  in
  let body = layout.Layout.log_start + 3 in
  let mk () =
    let clock = Simclock.create () in
    let device = Device.create ~clock geom in
    Log.format device layout;
    let log =
      Log.attach device layout ~boot_count:1 ~next_record_no:1_000_000L ~write_off:0
        ~on_enter_third:(fun _ -> ())
    in
    (device, log)
  in
  let n = 2 * layout.Layout.params.Params.fnt_page_sectors in
  let units =
    [
      { Log.kind = Log.Fnt_page 3; image = Bytes.make (n / 2 * 512) 'a' };
      { Log.kind = Log.Fnt_page 5; image = Bytes.make (n / 2 * 512) 'b' };
      { Log.kind = Log.Leader_page 700; image = Bytes.make 512 'c' };
    ]
  in
  let size = Log.record_total_sectors layout units in
  for first = 0 to size - 1 do
    for span = 1 to 2 do
      if first + span <= size then begin
        let device, log = mk () in
        ignore (Log.append log units : int);
        for k = 0 to span - 1 do
          Device.damage device (body + first + k)
        done;
        let r = Log.recover device layout in
        if r.Log.replayed_records <> 1 then
          Alcotest.failf "damage at +%d span %d: record lost" first span;
        List.iter
          (fun (kind, fill) ->
            match
              List.find_map
                (fun (k, img, _) -> if k = kind then Some img else None)
                r.Log.images
            with
            | Some img ->
              if Bytes.get img 0 <> fill then
                Alcotest.failf "damage at +%d span %d: wrong image" first span
            | None -> Alcotest.failf "damage at +%d span %d: image missing" first span)
          [ (Log.Fnt_page 3, 'a'); (Log.Fnt_page 5, 'b'); (Log.Leader_page 700, 'c') ]
      end
    done
  done

(* Damage any one sector of either FNT home copy: every file stays
   readable and the check passes (after repair). *)
let test_fnt_damage_sweep () =
  let device, fs = fresh () in
  for i = 0 to 9 do
    ignore (Fsd.create fs ~name:(Printf.sprintf "d/f%d" i) (content (200 * (i + 1)) i))
  done;
  Fsd.shutdown fs;
  let fs1 = fst (Fsd.boot device) in
  Fsd.shutdown fs1;
  let layout = Fsd.layout fs1 in
  (* find the live FNT sectors by scanning which have ever been written *)
  let live = ref [] in
  for s = layout.Layout.fnt_a_start to layout.Layout.fnt_a_start + layout.Layout.fnt_sectors - 1 do
    if Device.written_ever device s then live := s :: !live
  done;
  check bool "some live fnt sectors" true (List.length !live > 2);
  List.iter
    (fun s ->
      Device.damage device s;
      let fs2, _ = Fsd.boot device in
      for i = 0 to 9 do
        let name = Printf.sprintf "d/f%d" i in
        if not (Bytes.equal (content (200 * (i + 1)) i) (Fsd.read_all fs2 ~name)) then
          Alcotest.failf "sector %d damaged: %s unreadable" s name
      done;
      Fsd.shutdown fs2)
    !live

(* ------------------------------------------------------------------ *)
(* Silent corruption (readable garbage) in FNT copy A must be caught by
   the page checksum and served from copy B. *)

let test_fnt_silent_corruption_sweep () =
  let device, fs = fresh () in
  ignore (Fsd.create fs ~name:"guard" (content 900 5));
  Fsd.shutdown fs;
  let layout = Fsd.layout fs in
  let rng = Rng.create 1234 in
  for s = layout.Layout.fnt_a_start to layout.Layout.fnt_a_start + 7 do
    if Device.written_ever device s then Device.corrupt device s ~rng
  done;
  let fs2, _ = Fsd.boot device in
  check bool "file readable despite silent corruption" true
    (Bytes.equal (content 900 5) (Fsd.read_all fs2 ~name:"guard"));
  check bool "check ok" true (Fsd.check fs2 = Ok ())

(* ------------------------------------------------------------------ *)
(* Silently corrupt every live metadata sector — both FNT home copies
   and every leader — one at a time. The twin reads and the scrub demon
   must detect and repair each without any user-visible data change. *)

let test_metadata_silent_corruption_sweep () =
  let device, fs = fresh () in
  let files =
    List.init 6 (fun i -> (Printf.sprintf "m/f%d" i, content (220 * (i + 1)) i))
  in
  List.iter (fun (name, data) -> ignore (Fsd.create fs ~name data)) files;
  Fsd.force fs;
  let leaders =
    Fsd.fold_entries fs ~init:[] ~f:(fun acc ~name:_ ~version:_ e ->
        if e.Cedar_fsbase.Entry.anchor >= 0 then e.Cedar_fsbase.Entry.anchor :: acc
        else acc)
  in
  Fsd.shutdown fs;
  let layout = Fsd.layout fs in
  let fnt_targets = ref [] in
  (* Only pages the table still uses: corruption in a freed page is
     correctly ignored by everyone. *)
  let store = Fnt_store.attach device layout in
  let ps = layout.Layout.params.Params.fnt_page_sectors in
  for page = 0 to layout.Layout.params.Params.fnt_pages - 1 do
    if Fnt_store.page_in_use store page then
      for k = 0 to ps - 1 do
        let a = Layout.fnt_sector_a layout ~page + k in
        let b = Layout.fnt_sector_b layout ~page + k in
        if Device.written_ever device a then fnt_targets := a :: !fnt_targets;
        if Device.written_ever device b then fnt_targets := b :: !fnt_targets
      done
  done;
  check bool "live FNT sectors found" true (List.length !fnt_targets > 4);
  check bool "leader sectors found" true (List.length leaders >= 6);
  let tmp = Filename.temp_file "cedar_sweep" ".img" in
  let oc = open_out_bin tmp in
  Device.dump device oc;
  close_out oc;
  let interval = (Params.for_geometry geom).Params.scrub_interval_us in
  let rng = Rng.create 4242 in
  List.iter
    (fun s ->
      let ic = open_in_bin tmp in
      let d = Device.load ~clock:(Simclock.create ()) ic in
      close_in ic;
      Device.corrupt d s ~rng;
      let fs2, _ = Fsd.boot d in
      (* idle: let the scrub demon cover the whole volume *)
      for _ = 1 to 12 do
        Fsd.tick fs2 ~us:(interval + 1)
      done;
      let c = Fsd.counters fs2 in
      let repaired =
        Fsd.fnt_repairs fs2 + c.Fsd.scrub_fnt_repairs + c.Fsd.scrub_leader_repairs
      in
      if repaired < 1 then
        Alcotest.failf "sector %d: corruption never detected/repaired" s;
      List.iter
        (fun (name, data) ->
          if not (Bytes.equal data (Fsd.read_all fs2 ~name)) then
            Alcotest.failf "sector %d corrupted: %s changed" s name)
        files;
      (match Fsd.check fs2 with
      | Ok () -> ()
      | Error m -> Alcotest.failf "sector %d: check failed after repair: %s" s m);
      Fsd.shutdown fs2)
    (!fnt_targets @ leaders);
  Sys.remove tmp

let suite =
  [
    ("crash after every written sector", `Slow, test_crash_after_every_sector);
    ("crash sweep with VAM logging", `Slow, test_crash_sweep_with_vam_logging);
    ( "log record survives any 1-2 sector damage",
      `Slow,
      test_record_survives_any_single_or_double_damage );
    ("FNT single-sector damage sweep", `Slow, test_fnt_damage_sweep);
    ("FNT silent corruption caught", `Quick, test_fnt_silent_corruption_sweep);
    ( "every metadata sector: silent corruption repaired",
      `Slow,
      test_metadata_silent_corruption_sweep );
    ("sector count sanity", `Quick, fun () -> check int "nonzero" 1 (min 1 (sectors_in_workload ())));
  ]
