open Cedar_util
open Cedar_disk

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let mk ?(geom = Geometry.small_test) () =
  let clock = Simclock.create () in
  (clock, Device.create ~clock geom)

let sector_of_string geom s =
  let b = Bytes.make geom.Geometry.sector_bytes '\000' in
  Bytes.blit_string s 0 b 0 (String.length s);
  b

(* ------------------------------------------------------------------ *)
(* Geometry                                                            *)

let test_geometry_chs_roundtrip () =
  let g = Geometry.small_test in
  for s = 0 to Geometry.total_sectors g - 1 do
    let chs = Geometry.to_chs g s in
    check int "roundtrip" s (Geometry.of_chs g chs)
  done

let test_geometry_seek_curve () =
  let g = Geometry.trident_t300 in
  check int "zero distance" 0 (Geometry.seek_us g 0);
  check int "single cylinder" g.Geometry.min_seek_us (Geometry.seek_us g 1);
  let full = Geometry.seek_us g (g.Geometry.cylinders - 1) in
  check bool "full stroke ~max" true (abs (full - g.Geometry.max_seek_us) < 100);
  check bool "monotone" true
    (Geometry.seek_us g 10 < Geometry.seek_us g 100
    && Geometry.seek_us g 100 < Geometry.seek_us g 700)

let test_geometry_timing_constants () =
  let g = Geometry.trident_t300 in
  check int "rotation 16.6ms" 16_666 (Geometry.rotation_us g);
  check bool "capacity ~300MB" true
    (abs (Geometry.capacity_bytes g - 300_000_000) < 10_000_000)

(* ------------------------------------------------------------------ *)
(* Device data path                                                    *)

let test_device_read_write () =
  let _, d = mk () in
  let g = Device.geometry d in
  let payload = sector_of_string g "hello sector" in
  Device.write d 17 payload;
  check Alcotest.string "read back" (Bytes.to_string payload)
    (Bytes.to_string (Device.read d 17));
  (* Unwritten sectors read as zeroes. *)
  check int "zero fill" 0 (Char.code (Bytes.get (Device.read d 18) 0))

let test_device_run_io () =
  let _, d = mk () in
  let g = Device.geometry d in
  let sb = g.Geometry.sector_bytes in
  let data = Bytes.create (3 * sb) in
  for i = 0 to (3 * sb) - 1 do
    Bytes.set data i (Char.chr (i mod 256))
  done;
  Device.write_run d ~sector:10 data;
  let back = Device.read_run d ~sector:10 ~count:3 in
  check bool "run roundtrip" true (Bytes.equal data back);
  (* A run is one I/O. *)
  let st = Device.stats d in
  check int "two ios total" 2 st.Iostats.ios;
  check int "three sectors each way" 3 st.Iostats.sectors_read

let test_device_timing_advances_clock () =
  let clock, d = mk () in
  let g = Device.geometry d in
  ignore (Device.read d 0);
  let t1 = Simclock.now clock in
  check bool "time moved" true (t1 > 0);
  (* Re-reading the same sector costs about a full revolution. *)
  ignore (Device.read d 0);
  let dt = Simclock.now clock - t1 in
  let rot = Geometry.rotation_us g in
  check bool "lost revolution" true (abs (dt - rot) <= Geometry.sector_time_us g)

let test_device_sequential_cheaper_than_random () =
  let clock, d = mk () in
  let t0 = Simclock.now clock in
  ignore (Device.read_run d ~sector:0 ~count:16);
  let seq = Simclock.now clock - t0 in
  let t0 = Simclock.now clock in
  for i = 0 to 15 do
    ignore (Device.read d (i * 577 mod Geometry.total_sectors (Device.geometry d)))
  done;
  let rand = Simclock.now clock - t0 in
  check bool "sequential much cheaper" true (seq * 4 < rand)

let test_device_damage () =
  let _, d = mk () in
  let g = Device.geometry d in
  Device.damage d 5;
  check bool "is damaged" true (Device.is_damaged d 5);
  (match Device.read d 5 with
  | _ -> Alcotest.fail "expected Error"
  | exception Device.Error { sector = 5; kind = Device.Damaged } -> ());
  (* Rewriting repairs the medium. *)
  Device.write d 5 (sector_of_string g "fixed");
  check bool "healed" false (Device.is_damaged d 5);
  check Alcotest.string "content" "fixed"
    (String.sub (Bytes.to_string (Device.read d 5)) 0 5)

let test_device_write_crash () =
  let _, d = mk () in
  let g = Device.geometry d in
  let sb = g.Geometry.sector_bytes in
  Device.plan_write_crash d ~after_sectors:2 ~damage_tail:1;
  let data = Bytes.make (5 * sb) 'x' in
  (match Device.write_run d ~sector:20 data with
  | () -> Alcotest.fail "expected crash"
  | exception Device.Crash_during_write { sector } -> check int "crash point" 22 sector);
  (* First two sectors written, the third damaged, the rest untouched. *)
  check bool "sector 20 written" true (Device.written_ever d 20);
  check bool "sector 21 written" true (Device.written_ever d 21);
  check bool "sector 22 damaged" true (Device.is_damaged d 22);
  check bool "sector 23 untouched" false (Device.written_ever d 23);
  check bool "sector 24 untouched" false (Device.written_ever d 24)

(* ------------------------------------------------------------------ *)
(* Labels                                                              *)

let test_labels () =
  let _, d = mk () in
  let g = Device.geometry d in
  let l = { Label.uid = 99L; page = 3; kind = Label.Data } in
  Device.write_labels d ~sector:7 [ l ];
  check bool "label read" true (Label.equal l (Device.read_label d 7));
  check bool "default free" true (Label.equal Label.free (Device.read_label d 8));
  (* Verified ops succeed with the right label... *)
  Device.verified_write d 7 ~expect:l (sector_of_string g "data!");
  let b = Device.verified_read d 7 ~expect:l in
  check Alcotest.string "verified read" "data!" (String.sub (Bytes.to_string b) 0 5);
  (* ...and fail on a mismatch (the wild-write detector). *)
  let wrong = { l with Label.page = 4 } in
  match Device.verified_read d 7 ~expect:wrong with
  | _ -> Alcotest.fail "expected label mismatch"
  | exception Device.Error { kind = Device.Label_mismatch _; sector = 7 } -> ()

let test_label_codec_roundtrip () =
  let l = { Label.uid = 0x0123456789abcdefL; page = 77; kind = Label.Fnt } in
  check bool "roundtrip" true (Label.equal l (Label.decode (Label.encode l)))

let test_scan_labels () =
  let _, d = mk () in
  Device.write_labels d ~sector:3 [ { Label.uid = 1L; page = 0; kind = Label.Header } ];
  Device.damage d 5;
  let seen = ref [] in
  Device.scan_labels d ~from:0 ~count:10 (fun s l -> seen := (s, l) :: !seen);
  let seen = List.rev !seen in
  check int "all sectors visited" 10 (List.length seen);
  (match List.assoc 3 seen with
  | Some l -> check bool "labelled" true (l.Label.uid = 1L)
  | None -> Alcotest.fail "sector 3 readable");
  (match List.assoc 5 seen with
  | None -> ()
  | Some _ -> Alcotest.fail "damaged sector must scan as None");
  (* Scanning is batched by track, not per-sector I/Os. *)
  check bool "few ios" true ((Device.stats d).Iostats.ios <= 3)

let test_dump_load_roundtrip () =
  let _, d = mk () in
  let g = Device.geometry d in
  Device.write d 4 (sector_of_string g "persisted");
  Device.write_labels d ~sector:4 [ { Label.uid = 5L; page = 1; kind = Label.Data } ];
  Device.damage d 9;
  let file = Filename.temp_file "cedar" ".img" in
  let oc = open_out_bin file in
  Device.dump d oc;
  close_out oc;
  let ic = open_in_bin file in
  let d' = Device.load ~clock:(Simclock.create ()) ic in
  close_in ic;
  Sys.remove file;
  check Alcotest.string "data survived" "persisted"
    (String.sub (Bytes.to_string (Device.read d' 4)) 0 9);
  check bool "label survived" true
    (Label.equal (Device.read_label d' 4) { Label.uid = 5L; page = 1; kind = Label.Data });
  check bool "damage survived" true (Device.is_damaged d' 9)

let test_observer () =
  let _, d = mk () in
  let g = Device.geometry d in
  let events = ref [] in
  Device.set_observer d (Some (fun ~rw ~sector ~count -> events := (rw, sector, count) :: !events));
  Device.write d 3 (sector_of_string g "x");
  ignore (Device.read d 3);
  Device.set_observer d None;
  ignore (Device.read d 3);
  check int "two observed events" 2 (List.length !events)

let test_timing_invariants () =
  let clock, d = mk () in
  let g = Device.geometry d in
  let rng = Rng.create 17 in
  for _ = 1 to 200 do
    let s = Rng.int rng (Geometry.total_sectors g) in
    if Rng.bool rng then ignore (Device.read d s)
    else Device.write d s (Bytes.make g.Geometry.sector_bytes 'x')
  done;
  let st = Device.stats d in
  check bool "busy time <= elapsed" true (st.Iostats.busy_us <= Simclock.now clock);
  check bool "busy = seek+rot+xfer" true
    (st.Iostats.busy_us = st.Iostats.seek_us + st.Iostats.rotation_us + st.Iostats.transfer_us);
  check int "ios = reads + writes" st.Iostats.ios (st.Iostats.reads + st.Iostats.writes)

let test_same_cylinder_no_seek () =
  let _, d = mk () in
  let g = Device.geometry d in
  ignore (Device.read d 0);
  let seeks0 = (Device.stats d).Iostats.seeks in
  (* stay within cylinder 0 *)
  for s = 1 to Geometry.sectors_per_cylinder g - 1 do
    ignore (Device.read d s)
  done;
  check int "no arm movement within a cylinder" seeks0 (Device.stats d).Iostats.seeks

(* ------------------------------------------------------------------ *)
(* Request queue: scheduling policies                                  *)

(* Hand-computed elevator service order. Head starts at cylinder 0,
   sweeping up; requests arrive for cylinders 10, 2, 5 (in that order).
   The elevator sweeps 0 -> 2 -> 5 -> 10 while FIFO pays 10 -> 2 -> 5,
   so the totals are exact, known seek sums. *)
let test_elevator_hand_computed () =
  let g = Geometry.small_test in
  let per_cyl = Geometry.sectors_per_cylinder g in
  let run policy =
    let _, d = mk () in
    Device.set_queue d ~policy ~depth:4;
    List.iter (fun c -> ignore (Device.read d (c * per_cyl))) [ 10; 2; 5 ];
    ignore (Device.busy_until d : int);
    (Device.stats d).Iostats.seek_us
  in
  let sk = Geometry.seek_us g in
  check int "elevator: 0->2->5->10" (sk 2 + sk 3 + sk 5) (run Device.Elevator);
  check int "sstf picks the same sweep here" (sk 2 + sk 3 + sk 5)
    (run Device.Sstf);
  check int "fifo: 0->10->2->5" (sk 10 + sk 8 + sk 3) (run Device.Fifo);
  check bool "elevator strictly beats fifo" true
    (sk 2 + sk 3 + sk 5 < sk 10 + sk 8 + sk 3)

(* SSTF aging: a request at the far edge of the disk must not starve
   behind a stream of near-cylinder requests. With the aging bound it is
   serviced within [sstf_age_limit] passes, i.e. well before the tail of
   the stream; without it, nearest-first would service it dead last. *)
let test_sstf_starvation_bound () =
  let g = Geometry.small_test in
  let per_cyl = Geometry.sectors_per_cylinder g in
  let _, d = mk () in
  Device.set_queue d ~policy:Device.Sstf ~depth:4;
  (* Request 1: the far edge. Then 40 requests hugging cylinder 0. *)
  ignore (Device.read d ((g.Geometry.cylinders - 1) * per_cyl));
  for i = 1 to 40 do
    ignore (Device.read d (i mod per_cyl))
  done;
  ignore (Device.busy_until d : int);
  (* Service completion times are monotone in service order, so "done
     before request 20" means the far request was picked within ~12
     services (queue depth 4 + aging bound 8) of arriving. *)
  check bool "far request services within the aging bound" true
    (Device.request_done_at d 1 < Device.request_done_at d 20);
  check bool "far request is not serviced last" true
    (Device.request_done_at d 1 < Device.request_done_at d 41)

(* The determinism pin for the scheduler seam: a device with a FIFO
   queue of depth 1 is byte-identical to one with no queue at all —
   same clock, same stats, same completion horizon. *)
let test_fifo_depth1_identical_to_sync () =
  let run with_queue =
    let clock, d = mk () in
    if with_queue then Device.set_queue d ~policy:Device.Fifo ~depth:1;
    let g = Device.geometry d in
    let rng = Rng.create 99 in
    for _ = 1 to 200 do
      let s = Rng.int rng (Geometry.total_sectors g) in
      if Rng.bool rng then ignore (Device.read d s)
      else Device.write d s (Bytes.make g.Geometry.sector_bytes 'q')
    done;
    (Simclock.now clock, Device.busy_until d, Iostats.copy (Device.stats d))
  in
  let now_q, busy_q, st_q = run true in
  let now_s, busy_s, st_s = run false in
  check int "clock identical" now_s now_q;
  check int "busy_until identical" busy_s busy_q;
  let d = Iostats.diff ~after:st_q ~before:st_s in
  check bool "iostats identical" true
    (d.Iostats.ios = 0 && d.Iostats.busy_us = 0 && d.Iostats.seek_us = 0
    && d.Iostats.rotation_us = 0 && d.Iostats.transfer_us = 0
    && d.Iostats.seeks = 0)

(* A full queue blocks the host: the depth cap forces a service to free
   a slot, so occupancy never exceeds the configured depth. *)
let test_queue_depth_cap () =
  let g = Geometry.small_test in
  let per_cyl = Geometry.sectors_per_cylinder g in
  let _, d = mk () in
  Device.set_queue d ~policy:Device.Elevator ~depth:3;
  for i = 0 to 9 do
    ignore (Device.read d (i * 7 mod (per_cyl * 4)));
    check bool "occupancy bounded by depth" true (Device.queue_length d <= 3)
  done;
  ignore (Device.busy_until d : int);
  check int "drained" 0 (Device.queue_length d);
  check int "every command charged" 10 (Device.stats d).Iostats.reads

let suite =
  [
    ("geometry chs roundtrip", `Quick, test_geometry_chs_roundtrip);
    ("geometry seek curve", `Quick, test_geometry_seek_curve);
    ("geometry timing constants", `Quick, test_geometry_timing_constants);
    ("device read/write", `Quick, test_device_read_write);
    ("device run io", `Quick, test_device_run_io);
    ("device timing advances clock", `Quick, test_device_timing_advances_clock);
    ("device sequential vs random", `Quick, test_device_sequential_cheaper_than_random);
    ("device damage", `Quick, test_device_damage);
    ("device write crash", `Quick, test_device_write_crash);
    ("labels verify", `Quick, test_labels);
    ("label codec", `Quick, test_label_codec_roundtrip);
    ("scan labels", `Quick, test_scan_labels);
    ("dump/load", `Quick, test_dump_load_roundtrip);
    ("observer", `Quick, test_observer);
    ("timing invariants", `Quick, test_timing_invariants);
    ("same cylinder needs no seek", `Quick, test_same_cylinder_no_seek);
    ("elevator hand-computed seeks", `Quick, test_elevator_hand_computed);
    ("sstf starvation bound", `Quick, test_sstf_starvation_bound);
    ("fifo depth-1 = synchronous", `Quick, test_fifo_depth1_identical_to_sync);
    ("queue depth cap", `Quick, test_queue_depth_cap);
  ]
