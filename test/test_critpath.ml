(* Per-op latency anatomy (ISSUE 8): the conservation invariant on a
   hand-built two-client script, byte-identical why-JSON across runs,
   and the zero-cost contract of the lifecycle instrumentation when
   tracing is off. *)

open Cedar_util
open Cedar_disk
open Cedar_fsd
module C = Cedar_workload.Concurrent
module S = Cedar_server.Server
module Obs = Cedar_obs
module Crit = Cedar_obs.Critpath

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let fresh_fs () =
  let clock = Simclock.create () in
  let device = Device.create ~clock Geometry.small_test in
  let params = Params.for_geometry Geometry.small_test in
  Fsd.format device params;
  let fs, _ = Fsd.boot device in
  fs

(* Two clients with deliberate structure: both creates arrive together
   at t=1ms (so one queues behind the other's execute, and both park for
   the group commit), then a read and a delete arrive far later, alone.
   The waits this script is built to produce: parked+append > 0 for the
   creates (they are mutations and must wait for a force), parked =
   append = 0 for the read (always-durable, acked at execute end), and
   queue > 0 for whichever create the single-threaded scheduler reaches
   second. *)
let scripts =
  [|
    [
      C.At 1_000;
      C.Op (C.Create { name = "c00/a"; bytes = 512; fill = 1 });
      C.At 2_000_000;
      C.Op (C.Read "c00/a");
    ];
    [
      C.At 1_000;
      C.Op (C.Create { name = "c01/b"; bytes = 512; fill = 2 });
      C.At 2_000_000;
      C.Op (C.Delete "c01/b");
    ];
  |]

let traced_run () =
  let fs = fresh_fs () in
  let tr = Fsd.trace fs in
  Obs.Trace.enable ~capacity:(1 lsl 16) tr;
  let report = S.serve fs scripts in
  Obs.Trace.disable tr;
  (report, Crit.fold (Obs.Trace.to_list tr))

let find_op t ~client ~opseq =
  List.find
    (fun (o : Crit.op_record) -> o.Crit.client = client && o.Crit.opseq = opseq)
    t.Crit.ops

let test_conservation () =
  let report, t = traced_run () in
  check int "every scripted op completed" 4 report.S.total_ops;
  check int "all four lifecycles folded" 4 (List.length t.Crit.ops);
  check int "no orphans" 0 t.Crit.orphans;
  check int "no unfinished lifecycles" 0 t.Crit.unfinished;
  check bool "fold reports conservation" true t.Crit.all_conserved;
  List.iter
    (fun (o : Crit.op_record) ->
      let sum =
        o.Crit.queue_us + o.Crit.admission_us + o.Crit.execute_us
        + o.Crit.append_us + o.Crit.parked_us
      in
      check int
        (Printf.sprintf "client %d op %d: phases sum to end-to-end" o.Crit.client
           o.Crit.opseq)
        (Crit.total_us o) sum;
      check bool "conserved predicate agrees" true (Crit.conserved o);
      check bool "device time fits inside execute" true
        (o.Crit.seek_us + o.Crit.transfer_us <= o.Crit.execute_us))
    t.Crit.ops

let test_known_waits () =
  let _, t = traced_run () in
  let c0 = find_op t ~client:0 ~opseq:1 in
  let c1 = find_op t ~client:1 ~opseq:1 in
  let r0 = find_op t ~client:0 ~opseq:2 in
  check bool "create (client 0) waited for the force" true
    (c0.Crit.append_us + c0.Crit.parked_us > 0);
  check bool "create (client 1) waited for the force" true
    (c1.Crit.append_us + c1.Crit.parked_us > 0);
  check bool "one create queued behind the other's execute" true
    (c0.Crit.queue_us > 0 || c1.Crit.queue_us > 0);
  check int "read is acked at execute end: no append" 0 r0.Crit.append_us;
  check int "read is acked at execute end: no park" 0 r0.Crit.parked_us;
  check bool "read did real device work" true (r0.Crit.execute_us > 0)

(* Deferred-mode trace stamps (ISSUE 10 bugfix): on a two-volume set the
   devices run deferred, so commands are stamped at service start (the
   busy horizon), not issue time. Commands on one device must therefore
   never overlap each other, and the per-op seek/transfer sub-split must
   still fit inside execute. *)
let test_deferred_no_overlap () =
  let clock = Simclock.create () in
  let vset =
    Cedar_volumes.Volume_set.create_fresh ~geom:Geometry.small_test ~clock 2
  in
  let tr = Cedar_volumes.Volume_set.trace vset in
  Obs.Trace.enable ~capacity:(1 lsl 16) tr;
  let mk vid tag =
    let dir = Cedar_fsbase.Fname.shard_dir ~shards:2 vid in
    List.concat_map
      (fun i ->
        [
          C.Think 3_000;
          C.Op
            (C.Create
               {
                 name = Printf.sprintf "%s/%s/f%02d" dir tag i;
                 bytes = 900;
                 fill = i;
               });
        ])
      (List.init 6 Fun.id)
  in
  let report = S.serve_volumes vset [| mk 0 "a"; mk 1 "b" |] in
  Obs.Trace.disable tr;
  check int "all creates acked" 12 report.S.mutations_acked;
  let entries = Obs.Trace.to_list tr in
  (* Per device: Dev_read/Dev_write intervals [at, at+us] never overlap.
     (Dev_seek shares its command's start by design — it is part of the
     command — so only the commands themselves are checked.) *)
  let seen_dev = Hashtbl.create 4 in
  let last_end = Hashtbl.create 4 in
  List.iter
    (fun (e : Obs.Trace.entry) ->
      match e.Obs.Trace.event with
      | Obs.Trace.Dev_read { dev; us; _ } | Obs.Trace.Dev_write { dev; us; _ }
        ->
        Hashtbl.replace seen_dev dev ();
        let prev = Option.value ~default:0 (Hashtbl.find_opt last_end dev) in
        check bool
          (Printf.sprintf "dev %d: command at %d starts after previous end %d"
             dev e.Obs.Trace.at_us prev)
          true
          (e.Obs.Trace.at_us >= prev);
        Hashtbl.replace last_end dev (e.Obs.Trace.at_us + us)
      | _ -> ())
    entries;
  check int "both devices appear in the trace" 2 (Hashtbl.length seen_dev);
  (* Re-check the seek/transfer sub-split under service-start stamping:
     phase conservation must still hold, and the charges stay coherent
     (transfer is the command total minus seeks, never negative; the
     creates did real device work). Containment inside [execute_us] is a
     synchronous-mode invariant only — on a backed-up deferred device a
     command is serviced at the busy horizon, after the issuing op's
     execute window has already closed, so the sub-split may legally
     exceed execute here. *)
  let t = Crit.fold entries in
  check bool "lifecycles folded" true (List.length t.Crit.ops > 0);
  check bool "phase conservation holds under deferred stamping" true
    t.Crit.all_conserved;
  let dev_total = ref 0 in
  List.iter
    (fun (o : Crit.op_record) ->
      check bool
        (Printf.sprintf "client %d op %d: sub-split non-negative" o.Crit.client
           o.Crit.opseq)
        true
        (o.Crit.seek_us >= 0 && o.Crit.transfer_us >= 0);
      dev_total := !dev_total + o.Crit.seek_us + o.Crit.transfer_us)
    t.Crit.ops;
  check bool "ops were charged real device time" true (!dev_total > 0)

let test_json_deterministic () =
  let _, a = traced_run () in
  let _, b = traced_run () in
  let ja = Obs.Jsonb.to_string (Crit.to_json a) in
  let jb = Obs.Jsonb.to_string (Crit.to_json b) in
  check bool "why --json is byte-identical across runs" true
    (String.equal ja jb)

(* The zero-cost contract: with tracing off, the lifecycle
   instrumentation must add nothing — the trace stays empty, the kind
   labels are shared constants (no per-op string allocation), and the
   run's allocation profile is pinned: two identical tracing-off runs
   allocate exactly the same number of bytes, and turning tracing on
   strictly increases it (i.e. the [Trace.enabled] guard really skips
   event construction rather than building and discarding it). *)
let serve_words ~trace =
  let fs = fresh_fs () in
  let tr = Fsd.trace fs in
  if trace then Obs.Trace.enable ~capacity:(1 lsl 16) tr;
  Gc.full_major ();
  let before = Gc.allocated_bytes () in
  let report = S.serve fs scripts in
  let after = Gc.allocated_bytes () in
  check int "run completed" 4 report.S.total_ops;
  check bool "trace emptiness matches the switch" true
    (trace <> (Obs.Trace.to_list tr = []));
  after -. before

let test_zero_cost_when_off () =
  let op = C.Create { name = "x"; bytes = 1; fill = 0 } in
  check bool "op_kind returns a shared constant, not a fresh string" true
    (C.op_kind op == C.op_kind op);
  let off1 = serve_words ~trace:false in
  let off2 = serve_words ~trace:false in
  let on = serve_words ~trace:true in
  check bool
    (Printf.sprintf "tracing-off allocation is pinned (%.0f = %.0f bytes)" off1
       off2)
    true (off1 = off2);
  check bool
    (Printf.sprintf "tracing allocates strictly more (%.0f off vs %.0f on)"
       off1 on)
    true (on > off1)

let suite =
  [
    ("conservation: phases sum exactly to end-to-end", `Quick, test_conservation);
    ("known waits: park/append vs queue vs read", `Quick, test_known_waits);
    ( "deferred 2-volume: per-device commands never overlap",
      `Quick,
      test_deferred_no_overlap );
    ("why --json byte-identical across runs", `Quick, test_json_deterministic);
    ("tracing off allocates nothing new (pinned)", `Quick, test_zero_cost_when_off);
  ]
