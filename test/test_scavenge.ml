(* The scavenger of last resort and the online scrub demon.

   The scavenger's contract: with both copies of FNT pages destroyed,
   every file with a surviving leader and data pages comes back readable
   byte-identical, [Fsd.check] passes, and the next boot replays nothing.
   The scrubber's contract: a lone bad copy of an FNT page or a leader is
   repaired in place during idle ticks, before any client read needs it. *)

open Cedar_util
open Cedar_disk
open Cedar_fsbase
open Cedar_fsd

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let geom = Geometry.tiny_test
let content n seed = Bytes.init n (fun i -> Char.chr ((i + seed) mod 251))

let fresh () =
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  Fsd.format device (Params.for_geometry geom);
  (device, fst (Fsd.boot device))

(* Destroy both home copies of every name-table page. *)
let destroy_fnt device layout =
  let ps = layout.Layout.params.Params.fnt_page_sectors in
  for page = 0 to layout.Layout.params.Params.fnt_pages - 1 do
    let a = Layout.fnt_sector_a layout ~page in
    let b = Layout.fnt_sector_b layout ~page in
    for k = 0 to ps - 1 do
      Device.damage device (a + k);
      Device.damage device (b + k)
    done
  done

let find_uid fs name =
  Fsd.fold_entries fs ~init:None ~f:(fun acc ~name:n ~version:_ e ->
      if String.equal n name then Some e.Entry.uid else acc)

(* ------------------------------------------------------------------ *)

let test_total_fnt_loss () =
  let device, fs = fresh () in
  let files =
    List.init 8 (fun i -> (Printf.sprintf "dir/f%d" i, content (150 * (i + 1)) i))
  in
  List.iter (fun (name, data) -> ignore (Fsd.create fs ~name data)) files;
  Fsd.shutdown fs;
  let layout = Fsd.layout fs in
  (* Empty the log first: the leaders must carry the rebuild alone. *)
  Log.format device layout;
  destroy_fnt device layout;
  (match Fsd.try_boot device with
  | `Needs_scavenge _ -> ()
  | `Ok _ -> Alcotest.fail "boot succeeded on a destroyed name table");
  let r = Scavenge.run device in
  check int "entries rebuilt from leaders" (List.length files) r.Scavenge.entries_rebuilt;
  check int "no surviving fnt entries" 0 r.Scavenge.entries_kept;
  check bool "page pairs reported lost" true (r.Scavenge.fnt_pages_lost > 0);
  check int "no conflicts" 0 r.Scavenge.conflicts;
  let fs2, report = Fsd.boot device in
  check int "nothing to replay after scavenge" 0 report.Fsd.replayed_records;
  List.iter
    (fun (name, data) ->
      check bool ("byte-identical: " ^ name) true
        (Bytes.equal data (Fsd.read_all fs2 ~name)))
    files;
  check bool "structural check ok" true (Fsd.check fs2 = Ok ());
  Fsd.shutdown fs2

let test_partial_fnt_loss () =
  let device, fs = fresh () in
  let files =
    List.init 10 (fun i -> (Printf.sprintf "p/f%02d" i, content (120 * (i + 1)) i))
  in
  List.iter (fun (name, data) -> ignore (Fsd.create fs ~name data)) files;
  Fsd.shutdown fs;
  let layout = Fsd.layout fs in
  (* Kill both copies of one in-use page; the rest of the table survives. *)
  let store = Fnt_store.attach device layout in
  let victim = ref (-1) in
  for page = 0 to layout.Layout.params.Params.fnt_pages - 1 do
    if Fnt_store.page_in_use store page then victim := page
  done;
  check bool "found an in-use page" true (!victim >= 0);
  let ps = layout.Layout.params.Params.fnt_page_sectors in
  for k = 0 to ps - 1 do
    Device.damage device (Layout.fnt_sector_a layout ~page:!victim + k);
    Device.damage device (Layout.fnt_sector_b layout ~page:!victim + k)
  done;
  (* Force boot to walk the table (VAM reconstruction) so the damage is
     discovered at boot rather than first use. *)
  Vam.invalidate_saved layout device;
  (match Fsd.try_boot device with
  | `Needs_scavenge _ -> ()
  | `Ok _ -> Alcotest.fail "boot succeeded over a lost page pair");
  let r = Scavenge.run device in
  check int "every file accounted for" (List.length files)
    (r.Scavenge.entries_kept + r.Scavenge.entries_rebuilt);
  let fs2, report = Fsd.boot device in
  check int "nothing to replay after scavenge" 0 report.Fsd.replayed_records;
  List.iter
    (fun (name, data) ->
      check bool ("byte-identical: " ^ name) true
        (Bytes.equal data (Fsd.read_all fs2 ~name)))
    files;
  check bool "structural check ok" true (Fsd.check fs2 = Ok ());
  Fsd.shutdown fs2

(* A leader of a deleted file must not resurrect it when the surviving
   name table is complete (it proves the deletion). *)
let test_stale_leader_not_resurrected () =
  let device, fs = fresh () in
  ignore (Fsd.create fs ~name:"old" (content 400 1));
  ignore (Fsd.create fs ~name:"live" (content 500 2));
  Fsd.delete fs ~name:"old";
  Fsd.shutdown fs;
  let r = Scavenge.run device in
  check bool "stale leader dropped" true (r.Scavenge.stale_leaders >= 1);
  check int "nothing rebuilt" 0 r.Scavenge.entries_rebuilt;
  check int "live entry kept" 1 r.Scavenge.entries_kept;
  let fs2, _ = Fsd.boot device in
  check bool "deleted file stays deleted" false (Fsd.exists fs2 ~name:"old");
  check bool "live file intact" true
    (Bytes.equal (content 500 2) (Fsd.read_all fs2 ~name:"live"));
  check bool "structural check ok" true (Fsd.check fs2 = Ok ());
  Fsd.shutdown fs2

(* Two leaders claiming the same name!version: the newer uid wins and the
   loser's sectors are quarantined, not handed back to the allocator. *)
let test_conflicting_leaders_newer_uid_wins () =
  let device, fs = fresh () in
  ignore (Fsd.create fs ~name:"dup" (content 500 3));
  let uid = match find_uid fs "dup" with Some u -> u | None -> assert false in
  Fsd.shutdown fs;
  let layout = Fsd.layout fs in
  (* Forge a stale leader for the same key with an older uid, placed in a
     free region — exactly what a deleted-and-recreated file leaves
     behind when its old pages were never reused. *)
  let rec find_free s =
    if Fsd.sector_is_free fs s && Fsd.sector_is_free fs (s + 1) then s
    else find_free (s + 1)
  in
  let s = find_free layout.Layout.big_lo in
  let forged =
    Entry.local ~uid:(Int64.sub uid 1L) ~keep:0 ~byte_size:512 ~created:0
      ~runs:(Run_table.of_runs [ { Run_table.start = s + 1; len = 1 } ])
      ~anchor:s
  in
  Device.write device s
    (Leader.encode
       (Leader.of_entry ~name:"dup" ~version:1 forged)
       ~sector_bytes:geom.Geometry.sector_bytes);
  Log.format device layout;
  destroy_fnt device layout;
  let r = Scavenge.run device in
  check int "one winner" 1 r.Scavenge.entries_rebuilt;
  check bool "conflict counted" true (r.Scavenge.conflicts >= 1);
  check int "loser's sectors quarantined" 2 r.Scavenge.quarantined_sectors;
  let fs2, _ = Fsd.boot device in
  check bool "newest version's bytes" true
    (Bytes.equal (content 500 3) (Fsd.read_all fs2 ~name:"dup"));
  check bool "structural check ok" true (Fsd.check fs2 = Ok ());
  (* Quarantined sectors stay out of the free pool. *)
  check bool "forged leader sector not free" false (Fsd.sector_is_free fs2 s);
  check bool "forged data sector not free" false (Fsd.sector_is_free fs2 (s + 1));
  Fsd.shutdown fs2

(* New uids after a scavenge must stay above every recovered uid. *)
let test_uid_floor_after_scavenge () =
  let device, fs = fresh () in
  for i = 0 to 5 do
    ignore (Fsd.create fs ~name:(Printf.sprintf "u/f%d" i) (content 200 i))
  done;
  Fsd.shutdown fs;
  let layout = Fsd.layout fs in
  Log.format device layout;
  destroy_fnt device layout;
  ignore (Scavenge.run device : Scavenge.report);
  let fs2, _ = Fsd.boot device in
  let max_recovered =
    Fsd.fold_entries fs2 ~init:0L ~f:(fun m ~name:_ ~version:_ e ->
        if Int64.compare e.Entry.uid m > 0 then e.Entry.uid else m)
  in
  ignore (Fsd.create fs2 ~name:"u/new" (content 100 9));
  let new_uid = match find_uid fs2 "u/new" with Some u -> u | None -> assert false in
  check bool "fresh uid above every recovered uid" true
    (Int64.compare new_uid max_recovered > 0);
  Fsd.shutdown fs2

(* Scavenging a healthy volume is semantically a no-op. *)
let test_scavenge_healthy_volume () =
  let device, fs = fresh () in
  let files = List.init 5 (fun i -> (Printf.sprintf "h/f%d" i, content (250 * (i + 1)) i)) in
  List.iter (fun (name, data) -> ignore (Fsd.create fs ~name data)) files;
  Fsd.shutdown fs;
  let r = Scavenge.run device in
  check int "all entries kept" (List.length files) r.Scavenge.entries_kept;
  check int "nothing rebuilt" 0 r.Scavenge.entries_rebuilt;
  check int "no conflicts" 0 r.Scavenge.conflicts;
  check int "no pages lost" 0 r.Scavenge.fnt_pages_lost;
  let fs2, report = Fsd.boot device in
  check int "nothing to replay" 0 report.Fsd.replayed_records;
  List.iter
    (fun (name, data) ->
      check bool ("byte-identical: " ^ name) true
        (Bytes.equal data (Fsd.read_all fs2 ~name)))
    files;
  check bool "structural check ok" true (Fsd.check fs2 = Ok ());
  Fsd.shutdown fs2

let test_scavenge_empty_volume () =
  let device, fs = fresh () in
  Fsd.shutdown fs;
  let layout = Fsd.layout fs in
  destroy_fnt device layout;
  let r = Scavenge.run device in
  check int "no entries" 0 (r.Scavenge.entries_kept + r.Scavenge.entries_rebuilt);
  let fs2, _ = Fsd.boot device in
  check int "volume is empty" 0 (List.length (Fsd.list fs2 ~prefix:""));
  check bool "structural check ok" true (Fsd.check fs2 = Ok ());
  Fsd.shutdown fs2

(* ------------------------------------------------------------------ *)
(* The online scrub demon. *)

let scrub_interval = (Params.for_geometry geom).Params.scrub_interval_us

(* Enough passes to cover every FNT page pair and every leader. *)
let run_scrub_to_completion fs =
  for _ = 1 to 12 do
    Fsd.tick fs ~us:(scrub_interval + 1)
  done

let test_scrub_repairs_fnt_copy_before_read () =
  let device, fs = fresh () in
  for i = 0 to 7 do
    ignore (Fsd.create fs ~name:(Printf.sprintf "s/f%d" i) (content (180 * (i + 1)) i))
  done;
  Fsd.force fs;
  Fsd.drop_caches fs;
  let layout = Fsd.layout fs in
  (* Silently corrupt one live copy-A sector. *)
  let rng = Rng.create 99 in
  let corrupted = ref false in
  (try
     for s = layout.Layout.fnt_a_start to
         layout.Layout.fnt_a_start + layout.Layout.fnt_sectors - 1 do
       if (not !corrupted) && Device.written_ever device s then begin
         Device.corrupt device s ~rng;
         corrupted := true;
         raise Exit
       end
     done
   with Exit -> ());
  check bool "corrupted a live sector" true !corrupted;
  run_scrub_to_completion fs;
  let c = Fsd.counters fs in
  check bool "scrubber repaired the bad copy" true (c.Fsd.scrub_fnt_repairs >= 1);
  (* The client now reads from clean twins: no read-path repair fires. *)
  Fsd.drop_caches fs;
  let repairs_before_reads = Fsd.fnt_repairs fs in
  for i = 0 to 7 do
    let name = Printf.sprintf "s/f%d" i in
    check bool ("byte-identical: " ^ name) true
      (Bytes.equal (content (180 * (i + 1)) i) (Fsd.read_all fs ~name))
  done;
  check int "no repair needed on the read path" repairs_before_reads
    (Fsd.fnt_repairs fs);
  check bool "structural check ok" true (Fsd.check fs = Ok ());
  Fsd.shutdown fs

let test_scrub_rewrites_corrupt_leader () =
  let device, fs = fresh () in
  ignore (Fsd.create fs ~name:"lead/a" (content 700 4));
  ignore (Fsd.create fs ~name:"lead/b" (content 300 5));
  Fsd.force fs;
  let anchor =
    Fsd.fold_entries fs ~init:(-1) ~f:(fun acc ~name ~version:_ e ->
        if String.equal name "lead/a" then e.Entry.anchor else acc)
  in
  check bool "found the leader sector" true (anchor >= 0);
  Device.corrupt device anchor ~rng:(Rng.create 7);
  run_scrub_to_completion fs;
  let c = Fsd.counters fs in
  check bool "scrubber rewrote the leader" true (c.Fsd.scrub_leader_repairs >= 1);
  (* check re-reads every leader from disk and cross-checks the table. *)
  check bool "leader/table mutual check ok" true (Fsd.check fs = Ok ());
  check bool "data untouched" true
    (Bytes.equal (content 700 4) (Fsd.read_all fs ~name:"lead/a"));
  Fsd.shutdown fs

(* A repair must surface through BOTH channels: the metrics registry
   (fsd.scrub_fnt_repairs) and a Scrub_repair trace event. *)
let test_scrub_repair_emits_metric_and_trace () =
  let device, fs = fresh () in
  for i = 0 to 7 do
    ignore (Fsd.create fs ~name:(Printf.sprintf "t/f%d" i) (content (150 * (i + 1)) i))
  done;
  Fsd.force fs;
  Fsd.drop_caches fs;
  let layout = Fsd.layout fs in
  let rng = Rng.create 42 in
  let corrupted = ref false in
  (try
     for s = layout.Layout.fnt_a_start to
         layout.Layout.fnt_a_start + layout.Layout.fnt_sectors - 1 do
       if (not !corrupted) && Device.written_ever device s then begin
         Device.corrupt device s ~rng;
         corrupted := true;
         raise Exit
       end
     done
   with Exit -> ());
  check bool "corrupted a live sector" true !corrupted;
  let tr = Device.trace device in
  Cedar_obs.Trace.enable tr;
  run_scrub_to_completion fs;
  Cedar_obs.Trace.disable tr;
  let c = Fsd.counters fs in
  check bool "counter incremented" true (c.Fsd.scrub_fnt_repairs >= 1);
  check (Alcotest.option int) "registry view agrees"
    (Some c.Fsd.scrub_fnt_repairs)
    (Cedar_obs.Metrics.read (Device.metrics device) "fsd.scrub_fnt_repairs");
  let repair_events =
    List.filter
      (fun e ->
        match e.Cedar_obs.Trace.event with
        | Cedar_obs.Trace.Scrub_repair { target = "fnt-page"; _ } -> true
        | _ -> false)
      (Cedar_obs.Trace.to_list tr)
  in
  check int "one trace event per repair" c.Fsd.scrub_fnt_repairs
    (List.length repair_events);
  Fsd.shutdown fs

let test_scrub_counts_passes () =
  let _device, fs = fresh () in
  ignore (Fsd.create fs ~name:"tickfile" (content 100 1));
  Fsd.force fs;
  let before = (Fsd.counters fs).Fsd.scrub_passes in
  Fsd.tick fs ~us:(scrub_interval + 1);
  Fsd.tick fs ~us:(scrub_interval + 1);
  check int "two passes" (before + 2) (Fsd.counters fs).Fsd.scrub_passes;
  check bool "clean volume needs no repairs" true
    ((Fsd.counters fs).Fsd.scrub_fnt_repairs = 0
    && (Fsd.counters fs).Fsd.scrub_leader_repairs = 0);
  Fsd.shutdown fs

let suite =
  [
    ("total FNT loss: rebuild from leaders", `Quick, test_total_fnt_loss);
    ("partial FNT loss: merge table and leaders", `Quick, test_partial_fnt_loss);
    ("stale leader not resurrected", `Quick, test_stale_leader_not_resurrected);
    ("conflicting leaders: newer uid wins", `Quick, test_conflicting_leaders_newer_uid_wins);
    ("uid floor survives scavenge", `Quick, test_uid_floor_after_scavenge);
    ("scavenge on a healthy volume", `Quick, test_scavenge_healthy_volume);
    ("scavenge on an empty volume", `Quick, test_scavenge_empty_volume);
    ("scrub repairs FNT copy before any read", `Quick, test_scrub_repairs_fnt_copy_before_read);
    ("scrub rewrites a corrupt leader", `Quick, test_scrub_rewrites_corrupt_leader);
    ("scrub repair: counter + trace event", `Quick, test_scrub_repair_emits_metric_and_trace);
    ("scrub pass counter", `Quick, test_scrub_counts_passes);
  ]
