(* Log-wrap endurance (ISSUE 6): churn determinism across executions,
   clean-shutdown durability mid-wrap, twin repair observability while
   home writes are flowing, and the third-boundary fill regression. *)

open Cedar_util
open Cedar_disk
open Cedar_fsd
module C = Cedar_workload.Concurrent
module E = Cedar_server.Endurance
module O = Cedar_server.Oracle
module S = Cedar_server.Server
module Obs = Cedar_obs

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let fresh_fs ?(geom = Geometry.tiny_test) () =
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  Fsd.format device (Params.for_geometry geom);
  let fs, _ = Fsd.boot device in
  (device, fs, clock)

(* ------------------------------------------------------------------ *)
(* Churn determinism: two executions, >= 3 full wraps, byte-identical   *)

let test_churn_deterministic () =
  let cfg =
    { E.clients = 2; spec = { C.default_churn with C.churn_ops = 150 } }
  in
  let run () = E.run ~geom:Geometry.tiny_test cfg in
  let a = run () in
  check bool ">= 3 full wraps" true (a.E.e_third_entries >= 9);
  check bool "clean" true (E.clean a);
  let b = run () in
  let render r = Obs.Jsonb.to_string_pretty (E.report_json r) in
  check bool "byte-identical endurance reports" true
    (String.equal (render a) (render b))

(* ------------------------------------------------------------------ *)
(* Every acked mutation survives a clean shutdown taken mid-wrap        *)

let test_acked_survive_clean_reboot () =
  let device, fs, _ = fresh_fs () in
  let spec = { C.default_churn with C.churn_ops = 120 } in
  let clients = 2 in
  let scripts = C.churn_scripts spec ~clients in
  let r = S.serve fs scripts in
  check int "no errors" 0 r.S.total_errors;
  check int "no drops" 0 r.S.total_dropped;
  let wrapped = (Fsd.log_stats fs).Log.third_entries in
  check bool "log wrapped before the shutdown" true (wrapped >= 4);
  let keep = (Fsd.params fs).Params.default_keep in
  Fsd.shutdown fs;
  let fs2, br = Fsd.boot device in
  check int "clean shutdown replays nothing" 0 br.Fsd.replayed_records;
  Array.iteri
    (fun client script ->
      let muts = O.muts_of_script script in
      let names = O.mut_names muts in
      let state = O.state_after ~keep muts (List.length muts) in
      match O.diff fs2 state names with
      | [] -> ()
      | v :: _ -> Alcotest.failf "client %d after reboot: %s" client v)
    scripts;
  (match Fsd.check fs2 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "structural check after reboot: %s" m);
  Fsd.shutdown fs2

(* ------------------------------------------------------------------ *)
(* Twin repair while home writes flow: counter + trace event            *)

let test_twin_repair_observable () =
  let device, fs, _ = fresh_fs () in
  (* Enough churn through the server to enter thirds repeatedly, so FNT
     pages are being written home (bursts and third-entry flushes). *)
  let spec = { C.default_churn with C.churn_ops = 60 } in
  let r = S.serve fs (C.churn_scripts spec ~clients:1) in
  check int "no errors" 0 r.S.total_errors;
  check bool "home writes happened" true (Fsd.fnt_home_writes fs > 0);
  let layout = Fsd.layout fs in
  Fsd.shutdown fs;
  (* Smash copy B of name-table page 0; copy A stays authoritative. *)
  let n = layout.Layout.params.Params.fnt_page_sectors in
  let sb = layout.Layout.geom.Geometry.sector_bytes in
  Device.write_run device
    ~sector:(Layout.fnt_sector_b layout ~page:0)
    (Bytes.make (n * sb) 'Z');
  let tr = Device.trace device in
  Obs.Trace.enable tr;
  let fs2, _ = Fsd.boot device in
  (match Fsd.check fs2 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "structural check: %s" m);
  Obs.Trace.disable tr;
  check bool "twin repair counted" true (Fsd.fnt_repairs fs2 >= 1);
  let repaired = ref 0 in
  Obs.Trace.iter tr (fun e ->
      match e.Obs.Trace.event with
      | Obs.Trace.Scrub_repair { target = "fnt-twin"; _ } -> incr repaired
      | _ -> ());
  check bool "fnt-twin repair traced" true (!repaired >= 1)

(* ------------------------------------------------------------------ *)
(* third_fill reads exactly 1.0 on the boundary, never wraps to 0.0     *)

let leader_unit layout sector fill =
  let sbytes = layout.Layout.geom.Geometry.sector_bytes in
  { Log.kind = Log.Leader_page sector; image = Bytes.make sbytes fill }

let test_third_fill_boundary () =
  let geom = Geometry.tiny_test in
  let layout = Layout.compute geom (Params.for_geometry geom) in
  let third = (layout.Layout.log_sectors - 3) / 3 in
  check int "tiny third size pinned" 37 third;
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  Log.format device layout;
  let entered = ref [] in
  let log =
    Log.attach device layout ~boot_count:1 ~next_record_no:1_000_000L
      ~write_off:0
      ~on_enter_third:(fun j -> entered := j :: !entered)
  in
  let one = [ leader_unit layout 500 'a' ] in
  let two = [ leader_unit layout 501 'b'; leader_unit layout 502 'c' ] in
  check int "single-leader record is 7 sectors" 7
    (Log.record_total_sectors layout one);
  check int "double-leader record is 9 sectors" 9
    (Log.record_total_sectors layout two);
  (* 4 x 7 + 9 = 37: the last record ends exactly on the boundary. *)
  for _ = 1 to 4 do
    ignore (Log.append log one : int)
  done;
  check bool "fill below 1.0 before the boundary" true
    (Log.third_fill log < 1.0);
  ignore (Log.append log two : int);
  check bool "fill reads exactly 1.0 on the boundary" true
    (Log.third_fill log = 1.0);
  check int "still in third 0 (entry is on the next append)" 0
    (Log.current_third log);
  check bool "no third entered yet" true (!entered = []);
  ignore (Log.append log one : int);
  check int "next append enters third 1" 1 (Log.current_third log);
  check bool "entry callback fired for third 1" true (!entered = [ 1 ]);
  let fill = Log.third_fill log in
  check bool "fill restarts from the new third's own base" true
    (fill > 0.0 && fill < 1.0)

let test_commit_due_at_sane () =
  let _device, fs, clock = fresh_fs () in
  ignore
    (Fsd.create fs ~name:"due/f0" (Bytes.make 300 'x')
      : Cedar_fsbase.Fs_ops.info);
  Fsd.force fs;
  let interval = (Fsd.params fs).Params.commit_interval_us in
  check int "commit_due_at = last force + commit interval"
    (Simclock.now clock + interval)
    (Fsd.commit_due_at fs)

let suite =
  [
    Alcotest.test_case "churn wraps >=3x, byte-identical" `Slow
      test_churn_deterministic;
    Alcotest.test_case "acked mutations survive clean reboot mid-wrap" `Quick
      test_acked_survive_clean_reboot;
    Alcotest.test_case "twin repair emits counter and trace event" `Quick
      test_twin_repair_observable;
    Alcotest.test_case "third_fill boundary reads 1.0" `Quick
      test_third_fill_boundary;
    Alcotest.test_case "commit_due_at tracks the last force" `Quick
      test_commit_due_at_sane;
  ]
