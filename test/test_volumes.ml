(* Multi-volume file server (sharded FNT, per-volume group commit):
   shard-map stability and balance, the per-volume metrics namespace
   (no clobbering between volumes, unprefixed compatibility for the
   single-volume degenerate case), whole-set determinism, and — the
   §5.4 point of per-volume logs — recovery independence: a planted
   crash on one volume of a two-volume set quarantines just that
   volume; the survivor completes; the crashed one reboots with every
   acknowledged mutation intact and routing unchanged. *)

open Cedar_util
open Cedar_disk
open Cedar_fsbase
open Cedar_fsd
module C = Cedar_workload.Concurrent
module S = Cedar_server.Server
module V = Cedar_volumes.Volume_set
module Sm = Cedar_volumes.Shard_map
module Obs = Cedar_obs

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* A script of [creates] files for one client, every name nested under
   the top-level directory that routes to volume [vid] — deterministic
   placement, creates only, so the §5.4 oracle below is just "every
   acked name exists after reboot". *)
let creates_on ~volumes ~vid ~tag ~creates ~bytes ~think =
  let dir = Fname.shard_dir ~shards:volumes vid in
  List.concat_map
    (fun i ->
      [
        C.Think think;
        C.Op
          (C.Create
             {
               name = Printf.sprintf "%s/%s/f%03d" dir tag i;
               bytes;
               fill = i;
             });
      ])
    (List.init creates (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Shard map                                                           *)

let test_shard_map_stable_and_balanced () =
  let map = Sm.create ~shards:4 in
  let names =
    List.init 200 (fun i -> Printf.sprintf "dir%02d/sub/f%03d" (i mod 37) i)
  in
  let hits = Array.make 4 0 in
  List.iter
    (fun n ->
      let s = Sm.route map n in
      check int "route is stable" s (Sm.route map n);
      check int "route matches Fname.shard" s (Fname.shard ~shards:4 n);
      hits.(s) <- hits.(s) + 1)
    names;
  Array.iteri
    (fun i h ->
      check bool (Printf.sprintf "shard %d gets a share (%d)" i h) true (h > 10))
    hits;
  (* Only the first path component decides, so a client's whole
     namespace stays on one volume. *)
  check int "routing ignores the tail"
    (Sm.route map "dir00/a")
    (Sm.route map "dir00/completely/different/tail");
  check int "one shard routes everything" 0 (Fname.shard ~shards:1 "anything")

let test_shard_dir_routes_home () =
  List.iter
    (fun shards ->
      for k = 0 to shards - 1 do
        let d = Fname.shard_dir ~shards k in
        check int
          (Printf.sprintf "shard_dir ~shards:%d %d routes to %d" shards k k)
          k
          (Fname.shard ~shards (d ^ "/any/file"))
      done)
    [ 1; 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* Per-volume metrics namespace (satellite: registry collision fix)    *)

let test_two_volume_metrics_no_clobber () =
  let clock = Simclock.create () in
  let vset = V.create_fresh ~geom:Geometry.small_test ~clock 2 in
  let scripts =
    [|
      creates_on ~volumes:2 ~vid:0 ~tag:"a" ~creates:3 ~bytes:600 ~think:20_000;
      creates_on ~volumes:2 ~vid:1 ~tag:"b" ~creates:5 ~bytes:600 ~think:20_000;
    |]
  in
  let r = S.serve_volumes vset scripts in
  check int "all mutations acked" 8 r.S.mutations_acked;
  let m = V.metrics vset in
  (* Each volume's instruments live under its own prefix in the shared
     root registry — distinct cells, so the asymmetric workload must
     read back asymmetrically. *)
  check (Alcotest.option int) "vol0 acked counter" (Some 3)
    (Obs.Metrics.read m "vol0.server.acked");
  check (Alcotest.option int) "vol1 acked counter" (Some 5)
    (Obs.Metrics.read m "vol1.server.acked");
  check (Alcotest.option int) "no unprefixed counter to clobber" None
    (Obs.Metrics.read m "server.acked");
  check bool "vol0 device counters present" true
    (Obs.Metrics.read m "vol0.device.sectors_written" <> None);
  check bool "vol1 device counters present" true
    (Obs.Metrics.read m "vol1.device.sectors_written" <> None);
  (* And the scoped views strip their prefix, so per-volume code reads
     historical names unchanged. *)
  let v1 = Obs.Metrics.scoped m "vol1." in
  check (Alcotest.option int) "scoped view, unqualified name" (Some 5)
    (Obs.Metrics.read v1 "server.acked")

let test_single_volume_keeps_bare_names () =
  let clock = Simclock.create () in
  let vset = V.create_fresh ~geom:Geometry.small_test ~clock 1 in
  let scripts =
    [| creates_on ~volumes:1 ~vid:0 ~tag:"a" ~creates:4 ~bytes:600 ~think:20_000 |]
  in
  let r = S.serve_volumes vset scripts in
  check int "acked" 4 r.S.mutations_acked;
  let m = V.metrics vset in
  check (Alcotest.option int) "bare historical name" (Some 4)
    (Obs.Metrics.read m "server.acked");
  check (Alcotest.option int) "no vol0 prefix with one volume" None
    (Obs.Metrics.read m "vol0.server.acked")

(* ------------------------------------------------------------------ *)
(* Determinism across the whole set                                    *)

let run_two_volume_report () =
  let clock = Simclock.create () in
  let vset = V.create_fresh ~geom:Geometry.small_test ~clock 2 in
  let spec = { C.default_spec with C.modules = 4; rounds = 1; think_us = 30_000 } in
  let scripts = C.shard_scripts (C.makedo_scripts spec ~clients:4) ~volumes:2 in
  let r = S.serve_volumes vset scripts in
  Obs.Jsonb.to_string (S.report_json r)

let test_two_volume_determinism () =
  let a = run_two_volume_report () in
  let b = run_two_volume_report () in
  check bool "same seed, byte-identical reports" true (String.equal a b);
  (* The multi-volume report carries the per-volume array. *)
  check bool "per-volume section present" true
    (let rec contains i =
       i + 9 <= String.length a
       && (String.sub a i 9 = "\"volumes\"" || contains (i + 1))
     in
     contains 0)

(* ------------------------------------------------------------------ *)
(* Recovery independence (satellite: per-volume crash containment)     *)

let test_recovery_independence () =
  let clock = Simclock.create () in
  let vset = V.create_fresh ~geom:Geometry.small_test ~clock 2 in
  let scripts =
    [|
      creates_on ~volumes:2 ~vid:0 ~tag:"w" ~creates:20 ~bytes:700 ~think:20_000;
      creates_on ~volumes:2 ~vid:1 ~tag:"x" ~creates:20 ~bytes:700 ~think:20_000;
      creates_on ~volumes:2 ~vid:0 ~tag:"y" ~creates:20 ~bytes:700 ~think:20_000;
      creates_on ~volumes:2 ~vid:1 ~tag:"z" ~creates:20 ~bytes:700 ~think:20_000;
    |]
  in
  (* Arm a torn write partway into volume 1's log. Volume 0 never sees
     it. *)
  Device.plan_write_crash (V.device vset 1) ~after_sectors:80 ~damage_tail:1;
  let t = S.create_volumes vset scripts in
  let r = S.run t in
  check (Alcotest.list int) "only volume 1 crashed" [ 1 ] (S.crashed_volumes t);
  let vr0 = List.nth r.S.per_volume 0 and vr1 = List.nth r.S.per_volume 1 in
  check bool "volume 0 alive" false vr0.S.vr_crashed;
  check bool "volume 1 quarantined" true vr1.S.vr_crashed;
  (* The survivor finished its whole workload. *)
  let s0 = List.nth r.S.per_session 0 and s2 = List.nth r.S.per_session 2 in
  check bool "vol-0 sessions not aborted" true
    (s0.S.r_aborted = None && s2.S.r_aborted = None);
  check int "vol-0 sessions fully acked" 40
    (s0.S.r_mutations + s2.S.r_mutations);
  check int "volume 0 acked everything" 40 vr0.S.vr_acked;
  check bool "volume 1 lost some work" true (vr1.S.vr_acked < 40);
  (* §5.4 oracle: every mutation the server acknowledged on the crashed
     volume must survive its reboot. *)
  let acked1 =
    List.filter_map
      (fun (_, op) ->
        match op with
        | C.Create { name; _ } when V.route vset name = 1 -> Some name
        | _ -> None)
      (S.acked t)
  in
  check bool "volume 1 had acked work to check" true (List.length acked1 > 0);
  (match Fsd.try_boot (V.device vset 1) with
  | `Needs_scavenge reason ->
    Alcotest.fail ("crashed volume failed to reboot: " ^ reason)
  | `Ok (fs1, _report) ->
    check int "reboot keeps the shard id" 1 (Fsd.shard fs1);
    List.iter
      (fun name ->
        check bool (Printf.sprintf "acked %s survives reboot" name) true
          (Fsd.exists fs1 ~name))
      acked1;
    (* Put the rebooted volume back and serve again: routing is
       unchanged, both volumes take work. *)
    V.replace vset 1 fs1;
    let again =
      [|
        creates_on ~volumes:2 ~vid:0 ~tag:"post0" ~creates:3 ~bytes:600
          ~think:20_000;
        creates_on ~volumes:2 ~vid:1 ~tag:"post1" ~creates:3 ~bytes:600
          ~think:20_000;
      |]
    in
    let r2 = S.serve_volumes vset again in
    check int "post-reboot run fully acked" 6 r2.S.mutations_acked;
    check int "no aborts after reboot" 0 r2.S.total_aborted;
    let vr0' = List.nth r2.S.per_volume 0 and vr1' = List.nth r2.S.per_volume 1 in
    check int "volume 0 still serving" 3 vr0'.S.vr_acked;
    check int "rebooted volume serving again" 3 vr1'.S.vr_acked)

let suite =
  [
    ("shard map: stable, balanced, prefix-keyed", `Quick,
     test_shard_map_stable_and_balanced);
    ("shard_dir routes to its own shard", `Quick, test_shard_dir_routes_home);
    ("two volumes: metrics never clobber", `Quick,
     test_two_volume_metrics_no_clobber);
    ("one volume: bare metric names", `Quick, test_single_volume_keeps_bare_names);
    ("two volumes: byte-identical reports", `Quick, test_two_volume_determinism);
    ("crash on one volume leaves the other serving", `Quick,
     test_recovery_independence);
  ]
