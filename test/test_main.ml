let () =
  Alcotest.run "cedar"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("disk", Test_disk.suite);
      ("btree", Test_btree.suite);
      ("model", Test_model.suite);
      ("fsbase", Test_fsbase.suite);
      ("fsd-log", Test_fsd_log.suite);
      ("fsd", Test_fsd.suite);
      ("cfs", Test_cfs.suite);
      ("unixfs", Test_ufs.suite);
      ("fsd-store", Test_fsd_store.suite);
      ("fsd-vamlog", Test_fsd_vamlog.suite);
      ("blackbox", Test_blackbox.suite);
      ("fault-sweep", Test_fault_sweep.suite);
      ("faultsweep-server", Test_faultsweep.suite);
      ("scavenge", Test_scavenge.suite);
      ("properties", Test_props.suite);
      ("negative", Test_negative.suite);
      ("workload", Test_workload.suite);
      ("server", Test_server.suite);
      ("integration", Test_integration.suite);
      ("wrap", Test_wrap.suite);
      ("monitor", Test_monitor.suite);
      ("critpath", Test_critpath.suite);
      ("volumes", Test_volumes.suite);
    ]
