(* Property-based tests over the core data structures and codecs, beyond
   the per-module suites: random-value roundtrips, reference-model
   equivalence, and order-preservation laws. *)

open Cedar_util
open Cedar_disk
open Cedar_fsbase

(* ------------------------------------------------------------------ *)
(* Bytebuf: a random sequence of typed values roundtrips. *)

type field =
  | F_u8 of int
  | F_u16 of int
  | F_u32 of int
  | F_u64 of int64
  | F_bool of bool
  | F_string of string
  | F_fixed of string

let field_gen =
  let open QCheck.Gen in
  oneof
    [
      map (fun n -> F_u8 (n land 0xff)) small_nat;
      map (fun n -> F_u16 (n land 0xffff)) nat;
      map (fun n -> F_u32 (n land 0xffffffff)) nat;
      map (fun n -> F_u64 (Int64.of_int n)) nat;
      map (fun b -> F_bool b) bool;
      map (fun s -> F_string s) (string_size (0 -- 40));
      map
        (fun s -> F_fixed (String.map (fun c -> if c = '\000' then 'x' else c) s))
        (string_size (0 -- 8));
    ]

let prop_bytebuf_roundtrip =
  QCheck.Test.make ~name:"bytebuf: random field sequences roundtrip" ~count:200
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 30) field_gen))
    (fun fields ->
      let w = Bytebuf.Writer.create () in
      List.iter
        (function
          | F_u8 v -> Bytebuf.Writer.u8 w v
          | F_u16 v -> Bytebuf.Writer.u16 w v
          | F_u32 v -> Bytebuf.Writer.u32 w v
          | F_u64 v -> Bytebuf.Writer.u64 w v
          | F_bool v -> Bytebuf.Writer.bool w v
          | F_string v -> Bytebuf.Writer.string w v
          | F_fixed v -> Bytebuf.Writer.fixed_string w ~width:10 v)
        fields;
      let r = Bytebuf.Reader.of_bytes (Bytebuf.Writer.contents w) in
      List.for_all
        (function
          | F_u8 v -> Bytebuf.Reader.u8 r = v
          | F_u16 v -> Bytebuf.Reader.u16 r = v
          | F_u32 v -> Bytebuf.Reader.u32 r = v
          | F_u64 v -> Bytebuf.Reader.u64 r = v
          | F_bool v -> Bytebuf.Reader.bool r = v
          | F_string v -> Bytebuf.Reader.string r = v
          | F_fixed v -> Bytebuf.Reader.fixed_string r ~width:10 = v)
        fields
      && Bytebuf.Reader.remaining r = 0)

(* ------------------------------------------------------------------ *)
(* LRU vs a reference model (association list with recency). *)

let prop_lru_vs_reference =
  QCheck.Test.make ~name:"lru: equivalent to a recency-list model" ~count:150
    QCheck.(list (pair (int_bound 20) (option (int_bound 99))))
    (fun ops ->
      let capacity = 4 in
      let cache = Lru.create ~capacity in
      (* model: most-recent-first assoc list, never longer than capacity *)
      let model = ref [] in
      let model_find k =
        match List.assoc_opt k !model with
        | Some v ->
          model := (k, v) :: List.remove_assoc k !model;
          Some v
        | None -> None
      in
      let model_add k v =
        model := (k, v) :: List.remove_assoc k !model;
        if List.length !model > capacity then
          model := List.filteri (fun i _ -> i < capacity) !model
      in
      List.for_all
        (fun (k, op) ->
          match op with
          | Some v ->
            ignore (Lru.add cache k (string_of_int v));
            model_add k (string_of_int v);
            true
          | None ->
            let got = Lru.find cache k and expected = model_find k in
            got = expected)
        ops
      && List.for_all (fun (k, v) -> Lru.peek cache k = Some v) !model
      && Lru.size cache = List.length !model)

(* ------------------------------------------------------------------ *)
(* Fname: key order equals (name, version) order. *)

let name_gen =
  QCheck.Gen.(
    map
      (fun (a, b) -> Printf.sprintf "%c%s" (char_range 'a' 'z' |> generate1) (string_of_int (a mod 50) ^ b))
      (pair nat (oneofl [ ""; ".mesa"; ".bcd"; "/sub" ])))

let prop_fname_order =
  QCheck.Test.make ~name:"fname: key order = (name, version) order" ~count:300
    QCheck.(
      pair
        (pair (make name_gen) (int_range 1 999_999))
        (pair (make name_gen) (int_range 1 999_999)))
    (fun (((n1, v1)), ((n2, v2))) ->
      QCheck.assume (Fname.validate n1 = Ok () && Fname.validate n2 = Ok ());
      let k1 = Fname.key ~name:n1 ~version:v1 in
      let k2 = Fname.key ~name:n2 ~version:v2 in
      let expected = compare (n1, v1) (n2, v2) in
      compare (String.compare k1 k2) 0 = compare expected 0)

let prop_fname_bounds_bracket =
  QCheck.Test.make ~name:"fname: bounds bracket exactly the name's versions" ~count:300
    QCheck.(pair (make name_gen) (pair (make name_gen) (int_range 1 999_999)))
    (fun (bound_name, (key_name, v)) ->
      QCheck.assume (Fname.validate bound_name = Ok () && Fname.validate key_name = Ok ());
      let lo, hi = Fname.bounds ~name:bound_name in
      let k = Fname.key ~name:key_name ~version:v in
      let inside = String.compare lo k <= 0 && String.compare k hi < 0 in
      inside = String.equal bound_name key_name)

(* ------------------------------------------------------------------ *)
(* Entry and Header codecs under random contents. *)

let runs_gen =
  QCheck.Gen.(
    map
      (fun pieces ->
        let _, runs =
          List.fold_left
            (fun (base, acc) (gap, len) ->
              let start = base + gap in
              (start + len, { Run_table.start; len } :: acc))
            (10, [])
            pieces
        in
        Run_table.of_runs (List.rev runs))
      (list_size (0 -- 6) (pair (int_range 1 50) (int_range 1 30))))

let entry_gen =
  QCheck.Gen.(
    map
      (fun ((uid, keep, size), (runs, kind_pick, server)) ->
        let kind =
          match kind_pick with
          | 0 -> Entry.Local
          | 1 -> Entry.Symlink { target = server }
          | _ -> Entry.Cached { server; last_used = size * 3 }
        in
        {
          Entry.uid = Int64.of_int uid;
          keep = keep mod 10;
          byte_size = size;
          created = size * 7;
          runs;
          anchor = (if kind_pick = 1 then -1 else 9 + uid mod 1000);
          kind;
        })
      (pair (triple nat nat nat) (triple runs_gen (int_bound 2) (string_size (1 -- 12)))))

let prop_entry_roundtrip =
  QCheck.Test.make ~name:"entry: random entries roundtrip" ~count:300
    (QCheck.make entry_gen)
    (fun e -> Entry.equal e (Entry.decode (Entry.encode e)))

let prop_entry_decode_never_crashes =
  QCheck.Test.make ~name:"entry: random bytes decode or raise cleanly" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_range 0 80))
    (fun s ->
      match Entry.decode s with
      | _ -> true
      | exception Bytebuf.Decode_error _ -> true
      | exception Invalid_argument _ -> true)

let prop_leader_matches_entry =
  QCheck.Test.make ~name:"leader: of_entry always matches its entry" ~count:200
    (QCheck.make entry_gen)
    (fun e ->
      let open Cedar_fsd in
      let l = Leader.of_entry ~name:"prop/file" ~version:7 e in
      let b = Leader.encode l ~sector_bytes:512 in
      match Leader.decode b with
      | Some l' -> Leader.matches l' ~name:"prop/file" ~version:7 e
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Device: dump/load preserves everything observable. *)

let prop_device_dump_load =
  QCheck.Test.make ~name:"device: dump/load roundtrips content, labels, damage"
    ~count:40
    QCheck.(list (triple (int_bound 767) (int_bound 2) small_nat))
    (fun ops ->
      let geom = Geometry.tiny_test in
      let d = Device.create ~clock:(Simclock.create ()) geom in
      let sb = geom.Geometry.sector_bytes in
      List.iter
        (fun (sector, op, seed) ->
          match op with
          | 0 -> Device.write d sector (Bytes.make sb (Char.chr (seed mod 256)))
          | 1 ->
            Device.write_labels d ~sector
              [ { Label.uid = Int64.of_int seed; page = seed mod 7; kind = Label.Data } ]
          | _ -> Device.damage d sector)
        ops;
      let file = Filename.temp_file "cedarprop" ".img" in
      let oc = open_out_bin file in
      Device.dump d oc;
      close_out oc;
      let ic = open_in_bin file in
      let d' = Device.load ~clock:(Simclock.create ()) ic in
      close_in ic;
      Sys.remove file;
      List.for_all
        (fun (sector, _, _) ->
          Device.is_damaged d sector = Device.is_damaged d' sector
          && (Device.is_damaged d sector
             || (Bytes.equal (Device.read d sector) (Device.read d' sector)
                && Label.equal (Device.read_label d sector) (Device.read_label d' sector))))
        ops)

(* ------------------------------------------------------------------ *)
(* Log: random batches of records, then random 1-2 sector damage, still
   recover every record with the right final images. *)

let prop_log_random_batches_with_damage =
  QCheck.Test.make ~name:"log: random batches survive random 1-2 sector damage"
    ~count:40
    QCheck.(triple (int_bound 10_000) (int_range 1 12) (int_bound 3))
    (fun (seed, nrecords, damage_count) ->
      let open Cedar_fsd in
      let geom = Geometry.small_test in
      let layout = Layout.compute geom (Params.for_geometry geom) in
      let device = Device.create ~clock:(Simclock.create ()) geom in
      Log.format device layout;
      let log =
        Log.attach device layout ~boot_count:1 ~next_record_no:1_000_000L ~write_off:0
          ~on_enter_third:(fun _ -> ())
      in
      let rng = Rng.create (seed + 7) in
      let expected : (Log.unit_kind, char) Hashtbl.t = Hashtbl.create 16 in
      let first_off = ref None in
      let last_end = ref 0 in
      for _ = 1 to nrecords do
        let nunits = 1 + Rng.int rng 3 in
        let units =
          List.init nunits (fun _ ->
              let fill = Char.chr (97 + Rng.int rng 26) in
              let kind, sectors =
                if Rng.bool rng then (Log.Fnt_page (Rng.int rng 20), layout.Layout.params.Params.fnt_page_sectors)
                else (Log.Leader_page (5000 + Rng.int rng 50), 1)
              in
              Hashtbl.replace expected kind fill;
              { Log.kind; image = Bytes.make (sectors * 512) fill })
        in
        let size = Log.record_total_sectors layout units in
        (match !first_off with None -> first_off := Some 0 | Some _ -> ());
        ignore (Log.append log units : int);
        last_end := !last_end + size
      done;
      (* random damage inside the written region, 1-2 consecutive *)
      let body = layout.Layout.log_start + 3 in
      for _ = 1 to damage_count do
        let pos = Rng.int rng (max 1 !last_end) in
        Device.damage device (body + pos);
        if Rng.bool rng && pos + 1 < !last_end then Device.damage device (body + pos + 1)
      done;
      (* NOTE: the failure model is one fault at a time; with several
         random faults two copies of the same sector can die, so only
         require: every record recovered when damage is light. *)
      let r = Log.recover device layout in
      if damage_count <= 1 then
        r.Log.replayed_records = nrecords
        && Hashtbl.fold
             (fun kind fill acc ->
               acc
               && List.exists
                    (fun (k, img, _) -> k = kind && Bytes.get img 0 = fill)
                    r.Log.images)
             expected true
      else r.Log.replayed_records <= nrecords)

(* ------------------------------------------------------------------ *)
(* Bitmap run-search laws. *)

let prop_bitmap_find_run_correct =
  QCheck.Test.make ~name:"bitmap: find_run_set returns the lowest valid window"
    ~count:200
    QCheck.(pair (list (int_bound 99)) (int_range 1 6))
    (fun (set_bits, len) ->
      let b = Bitmap.create 100 in
      List.iter (Bitmap.set b) set_bits;
      let reference =
        let rec go pos =
          if pos + len > 100 then None
          else if Bitmap.all_set_in_run b ~pos ~len then Some pos
          else go (pos + 1)
        in
        go 0
      in
      Bitmap.find_run_set b ~from:0 ~upto:100 ~len = reference)

let prop_bitmap_find_run_down_correct =
  QCheck.Test.make ~name:"bitmap: find_run_set_down returns the highest valid window"
    ~count:200
    QCheck.(pair (list (int_bound 99)) (int_range 1 6))
    (fun (set_bits, len) ->
      let b = Bitmap.create 100 in
      List.iter (Bitmap.set b) set_bits;
      let reference =
        let rec go pos =
          if pos < 0 then None
          else if Bitmap.all_set_in_run b ~pos ~len then Some pos
          else go (pos - 1)
        in
        go (100 - len)
      in
      Bitmap.find_run_set_down b ~from:99 ~downto_:0 ~len = reference)

(* ------------------------------------------------------------------ *)
(* Geometry: chs mapping is a bijection for random geometries. *)

let prop_geometry_chs_bijection =
  QCheck.Test.make ~name:"geometry: sector<->chs bijection" ~count:60
    QCheck.(triple (int_range 2 30) (int_range 1 8) (int_range 4 40))
    (fun (cylinders, heads, sectors_per_track) ->
      let g =
        {
          Geometry.cylinders;
          heads;
          sectors_per_track;
          sector_bytes = 512;
          rpm = 3600;
          min_seek_us = 1000;
          avg_seek_us = 5000;
          max_seek_us = 9000;
          head_switch_us = 100;
        }
      in
      let total = Geometry.total_sectors g in
      let ok = ref true in
      for s = 0 to total - 1 do
        if Geometry.of_chs g (Geometry.to_chs g s) <> s then ok := false
      done;
      !ok)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_bytebuf_roundtrip;
      prop_lru_vs_reference;
      prop_fname_order;
      prop_fname_bounds_bracket;
      prop_entry_roundtrip;
      prop_entry_decode_never_crashes;
      prop_leader_matches_entry;
      prop_device_dump_load;
      prop_log_random_batches_with_damage;
      prop_bitmap_find_run_correct;
      prop_bitmap_find_run_down_correct;
      prop_geometry_chs_bijection;
    ]
